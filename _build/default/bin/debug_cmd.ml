(** Calibration introspection: per-design model breakdowns and the kernel
    feature vector at evaluation scale. *)

let pp_ops fmt (o : Analysis.Opcount.t) =
  Format.fprintf fmt
    "fadd %.1f fmul %.1f fdiv %.1f sqrt %.1f exp %.1f trig %.1f pow %.1f \
     int %.1f ld %.1f st %.1f"
    o.fadd o.fmul o.fdiv o.sqrt o.exp_log o.trig o.power o.int_ops o.loads
    o.stores

let pp_features fmt (f : Analysis.Features.t) =
  Format.fprintf fmt
    "kernel %s: calls=%d outer_trip=%.3g@.  flops/call=%.4g sfu/call=%.4g \
     bytes_acc=%.4g in=%.4g out=%.4g cpu_cyc=%.4g@.  regs=%d locals=%d \
     gather=%.2f gathered=[%s] inner_read=%dB@.  ops/iter: %a@.  hw_ops: \
     %a@.  inner loops: %s@.  args: %s"
    f.kernel f.calls f.outer_trip f.flops_per_call f.sfu_per_call
    f.bytes_accessed_per_call f.bytes_in_per_call f.bytes_out_per_call
    f.cpu_cycles_per_call f.regs_estimate f.locals_count f.gather_fraction
    (String.concat "," f.gathered_args)
    f.inner_read_bytes pp_ops f.ops_per_iter pp_ops f.hw_ops_per_iter
    (String.concat "; "
       (List.map
          (fun (il : Analysis.Features.inner_loop) ->
            Printf.sprintf
              "#%d trip=%.1f iters/outer=%.1f %s%s%s%s" il.il_sid
              il.il_mean_trip il.il_iters_per_outer
              (if il.il_innermost then "innermost " else "")
              (if il.il_parallel then "par " else "dep ")
              (if il.il_has_reduction then "red " else "")
              (if il.il_fully_unrollable then "unrollable" else ""))
          f.inner_loops))
    (String.concat "; "
       (List.map
          (fun (a : Analysis.Features.arg_feat) ->
            Printf.sprintf "%s fp=%dB in=%.3g out=%.3g" a.af_name
              a.af_footprint a.af_bytes_in a.af_bytes_out)
          f.args))

let pp_detail fmt (r : Devices.Simulate.result) =
  match r.detail with
  | Devices.Simulate.Cpu_detail c ->
      Format.fprintf fmt "threads=%d t1=%.4g tN=%.4g eff=%.3f" c.threads
        c.t_single c.t_parallel c.efficiency
  | Devices.Simulate.Gpu_detail g ->
      Format.fprintf fmt
        "bs=%d blocks=%d bps=%d occ=%.3f eff=%.3f tail=%.2f@.    \
         t_compute=%.4g t_mem=%.4g t_kernel=%.4g t_transfer=%.4g \
         t_call=%.4g total=%.4g"
        r.design.blocksize g.blocks g.blocks_per_sm g.occupancy g.eff g.tail
        g.t_compute g.t_mem g.t_kernel g.t_transfer g.t_call g.total
  | Devices.Simulate.Fpga_detail f ->
      Format.fprintf fmt
        "unroll=%d alm=%.1f%% dsp=%.1f%% bram=%dB util=%.1f%% ii=%.3g@.    \
         t_pipe=%.4g t_mem=%.4g t_transfer=%.4g t_call=%.4g total=%.4g"
        r.design.unroll_factor
        (100.0 *. f.res.alm_util)
        (100.0 *. f.res.dsp_util)
        f.res.bram_used
        (100.0 *. f.res.utilization)
        f.ii_effective f.t_pipe f.t_mem f.t_transfer f.t_call f.total

let run bench =
  let app = Benchmarks.Registry.find bench in
  let ctx = Benchmarks.Bench_app.context app in
  let outcome = Psa.Std_flow.run_uninformed ctx in
  (match outcome.contexts with
  | c :: _ ->
      Format.printf "=== features (eval scale) ===@.%a@.@." pp_features
        (Psa.Context.eval_features_exn c)
  | [] -> ());
  Format.printf "=== designs ===@.";
  List.iter
    (fun (r : Devices.Simulate.result) ->
      Format.printf "%-20s %10.4g s  %8.1fx  %s@.  %a@." r.design.name
        r.seconds r.speedup
        (if r.feasible then "" else "(infeasible)")
        pp_detail r)
    outcome.results;
  (* reference seconds *)
  match outcome.contexts with
  | c :: _ ->
      let f = Psa.Context.eval_features_exn c in
      Format.printf "@.reference (1-thread): %.4g s@."
        (Devices.Cpu_model.reference_seconds f)
  | [] -> ()
