bin/debug_cmd.ml: Analysis Benchmarks Devices Format List Printf Psa String
