bin/psaflow.mli:
