bin/psaflow.ml: Arg Benchmarks Cmd Cmdliner Codegen Debug_cmd Devices Format List Psa String Term
