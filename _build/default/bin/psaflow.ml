(** psaflow — command-line driver for the PSA-flow toolchain.

    Subcommands:
    - [run BENCH]: run the PSA-flow (informed by default; [--uninformed]
      generates all five designs) and print the flow log and timed
      results;
    - [list]: list benchmarks and the task repository;
    - [export BENCH DESIGN]: print a generated design's source;
    - [analyze BENCH]: print the hotspot, kernel features and the Fig. 3
      strategy decision. *)

open Cmdliner

let bench_arg =
  let doc =
    "Benchmark application: " ^ String.concat ", " Benchmarks.Registry.ids
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH" ~doc)

let x_arg =
  let doc = "FLOPs/byte threshold X of the PSA strategy (Fig. 3)." in
  Arg.(value & opt float 2.0 & info [ "x-threshold"; "x" ] ~doc)

let print_results results =
  Format.printf "@.%a" Psa.Report.pp_results results;
  match Psa.Report.best results with
  | Some b ->
      Format.printf "@.best: %s (%.1fx)@." b.design.name b.speedup
  | None -> Format.printf "@.no feasible design@."

(* ------------------------------------------------------------------ *)

let run_cmd =
  let uninformed =
    Arg.(
      value & flag
      & info [ "uninformed" ]
          ~doc:"Select all paths at branch point A (generate all designs).")
  in
  let budget =
    Arg.(
      value
      & opt (some float) None
      & info [ "budget" ] ~doc:"Cost budget in dollars per run (Fig. 3 feedback).")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the flow event log.")
  in
  let run bench uninformed budget x verbose =
    let app = Benchmarks.Registry.find bench in
    let ctx = Benchmarks.Bench_app.context ~x_threshold:x ?budget app in
    Format.printf "running %s PSA-flow on %s (profile n=%d, eval n=%d)@."
      (if uninformed then "uninformed" else "informed")
      app.name app.profile_n app.eval_n;
    let outcome =
      if uninformed then Psa.Std_flow.run_uninformed ~x_threshold:x ctx
      else Psa.Std_flow.run_informed ~x_threshold:x ?budget ctx
    in
    if verbose then
      List.iter (fun l -> Format.printf "  %s@." l) outcome.log;
    print_results outcome.results
  in
  Cmd.v (Cmd.info "run" ~doc:"Run the PSA-flow on a benchmark.")
    Term.(const run $ bench_arg $ uninformed $ budget $ x_arg $ verbose)

let list_cmd =
  let run () =
    Format.printf "benchmarks (the paper's five):@.";
    List.iter
      (fun (b : Benchmarks.Bench_app.t) ->
        Format.printf "  %-12s %s — %s@." b.id b.name b.description)
      Benchmarks.Registry.all;
    Format.printf "@.extra applications:@.";
    List.iter
      (fun (b : Benchmarks.Bench_app.t) ->
        Format.printf "  %-12s %s — %s@." b.id b.name b.description)
      Benchmarks.Registry.extras;
    Format.printf "@.task repository (Fig. 4):@.%a" Psa.Report.pp_repository ()
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List benchmarks and the design-flow task repository.")
    Term.(const run $ const ())

let analyze_cmd =
  let run bench x =
    let app = Benchmarks.Registry.find bench in
    let ctx = Benchmarks.Bench_app.context ~x_threshold:x app in
    let ctxs = Psa.Flow.run Psa.Std_flow.target_independent ctx in
    List.iter
      (fun c ->
        List.iter (fun l -> Format.printf "  %s@." l) (Psa.Context.events c);
        let e = Psa.Strategy.fig3_explain c in
        Format.printf "@.strategy: %a@." Psa.Strategy.pp_explanation e)
      ctxs
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Run the target-independent analyses and print the PSA decision.")
    Term.(const run $ bench_arg $ x_arg)

let export_cmd =
  let design_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"DESIGN"
          ~doc:
            "Design name, e.g. omp_epyc7543, hip_rtx2080ti, oneapi_stratix10.")
  in
  let run bench design_name =
    let app = Benchmarks.Registry.find bench in
    let ctx = Benchmarks.Bench_app.context app in
    let outcome = Psa.Std_flow.run_uninformed ctx in
    match
      List.find_opt
        (fun (r : Devices.Simulate.result) -> r.design.name = design_name)
        outcome.results
    with
    | Some r -> print_string (Codegen.Design.export r.design)
    | None ->
        Format.eprintf "no design %s; available: %s@." design_name
          (String.concat ", "
             (List.map
                (fun (r : Devices.Simulate.result) -> r.design.name)
                outcome.results));
        exit 1
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Print the generated source of one design.")
    Term.(const run $ bench_arg $ design_arg)

let debug_cmd_t =
  Cmd.v
    (Cmd.info "debug"
       ~doc:"Print model breakdowns and features for calibration.")
    Term.(const Debug_cmd.run $ bench_arg)

let flow_cmd =
  let dot =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz dot instead of ASCII.")
  in
  let run dot =
    let flow = Psa.Std_flow.flow () in
    if dot then print_string (Psa.Report.flow_to_dot flow)
    else print_string (Psa.Report.flow_to_ascii flow)
  in
  Cmd.v
    (Cmd.info "flow"
       ~doc:"Render the standard PSA-flow (the paper's Fig. 4) as a diagram.")
    Term.(const run $ dot)

let () =
  let info = Cmd.info "psaflow" ~doc:"Auto-generating diverse heterogeneous designs." in
  exit
    (Cmd.eval
       (Cmd.group info
          [ run_cmd; list_cmd; analyze_cmd; export_cmd; debug_cmd_t; flow_cmd ]))
