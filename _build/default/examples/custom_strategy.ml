(** Custom PSA strategies — the paper's extensibility claim.

    Run with: [dune exec examples/custom_strategy.exe]

    Section II-B: "while this strategy has proven effective empirically
    ... it could be adjusted to support different domains or target
    types", and branch-point mechanisms range from quick heuristics to
    "performance estimation, bit-accurate simulation, or full compilation
    and synthesis".

    This example plugs three different strategies into branch point A of
    the standard flow and compares their choices on every benchmark:

    - the paper's Fig. 3 heuristic (analysis-driven);
    - a "GPU zealot" strategy (always offload to the GPU) — what a naive
      porting guide would do;
    - a cost-aware strategy that weighs predicted performance by cloud
      prices and picks the cheapest target (Section IV-D's direction). *)

let gpu_zealot _ctx = Psa.Flow.Paths [ "gpu" ]

(** The library's model-based PSA (performance estimation at the branch
    point), pointed at monetary cost instead of speed. *)
let cheapest_target ctx =
  Psa.Strategy.model_based ~objective:Psa.Strategy.Monetary_cost ctx

let run_with name select ctx =
  let flow = Psa.Std_flow.flow ~select_a:select () in
  let outcome = Psa.Std_flow.run_flow flow ctx in
  match Psa.Report.best outcome.results with
  | Some best ->
      Printf.printf "  %-12s -> %-18s %8.1fx  $%.6f/run\n" name
        best.design.name best.speedup
        (Psa.Cost.of_result best)
  | None -> Printf.printf "  %-12s -> no feasible design\n" name

let () =
  List.iter
    (fun (app : Benchmarks.Bench_app.t) ->
      Printf.printf "%s (%s)\n" app.name app.id;
      let fresh () = Benchmarks.Bench_app.context app in
      run_with "fig3" Psa.Strategy.fig3 (fresh ());
      run_with "gpu-zealot" gpu_zealot (fresh ());
      run_with "cheapest" cheapest_target (fresh ());
      print_newline ())
    Benchmarks.Registry.all;
  print_endline
    "Note how the GPU zealot loses on K-Means (memory-bound) and\n\
     AdPredictor (the FPGA's pipelined gathers win), while the cost-aware\n\
     strategy sometimes trades speed for dollars."
