examples/quickstart.ml: Codegen Format List Minic Psa String
