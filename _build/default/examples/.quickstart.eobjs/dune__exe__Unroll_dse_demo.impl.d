examples/unroll_dse_demo.ml: Benchmarks Codegen Devices Dse List Printf Psa String
