examples/cost_tradeoff.ml: Benchmarks Devices List Option Printf Psa
