examples/custom_strategy.ml: Benchmarks List Printf Psa
