examples/unroll_dse_demo.mli:
