examples/quickstart.mli:
