(** The unroll-until-overmap meta-program of the paper's Fig. 2, end to
    end.

    Run with: [dune exec examples/unroll_dse_demo.exe]

    The figure's pseudocode: query the AST for the kernel's outermost
    loops, insert [#pragma unroll n], ask the FPGA toolchain for a
    resource report, double [n] until LUT utilisation exceeds 90%, and
    export the last fitting design.  Here the resource model stands in
    for the vendor report; everything else is literal, including the
    exported, still-readable source. *)

let contains_sub haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else go (i + 1)
  in
  nn = 0 || go 0

let () =
  (* AdPredictor is the paper's unrolling champion: fixed, fully
     unrollable inner loops with II=1, outer loop unrolled until the
     device fills up *)
  let app = Benchmarks.Registry.find "adpredictor" in
  let ctx = Benchmarks.Bench_app.context app in

  (* run the flow up to and including the FPGA-path tasks, stopping
     before device-specific DSE, by driving the pieces directly *)
  let program, kernel, _ =
    Psa.Std_flow.prepare_kernel ctx.Psa.Context.program
  in
  let ctx = { ctx with Psa.Context.program; kernel = Some kernel } in
  let ctx = Psa.Std_flow.ensure_features ctx in
  let features = Psa.Context.eval_features_exn ctx in
  let data = Psa.Std_flow.data_of_features (Psa.Context.features_exn ctx) in

  let design = Codegen.Oneapi_gen.generate ~data program ~kernel in
  let design = Codegen.Oneapi_gen.unroll_fixed_loops design in
  let design = Codegen.Oneapi_gen.employ_single_precision design in

  List.iter
    (fun device_id ->
      Printf.printf "\n=== unroll_until_overmap on the %s ===\n"
        (Devices.Spec.name (Devices.Spec.find device_id));
      let d = { design with Codegen.Design.device_id } in
      let result = Dse.Unroll_dse.run d features in
      Printf.printf "%8s %14s %10s %10s\n" "factor" "utilisation" "ALM" "DSP";
      List.iter
        (fun (s : Dse.Unroll_dse.step) ->
          Printf.printf "%8d %13.1f%% %9.1f%% %9.1f%%  %s\n" s.factor
            (100.0 *. s.utilization)
            (100.0 *. s.alm_util)
            (100.0 *. s.dsp_util)
            (if s.overmapped then "<- overmapped, stop" else ""))
        result.steps;
      if result.synthesizable then (
        Printf.printf "chosen factor: %d\n" result.chosen_factor;
        (* the exported design still carries the pragma, human-readable *)
        let src = Codegen.Design.export result.design in
        String.split_on_char '\n' src
        |> List.filter (fun l ->
               contains_sub l "#pragma unroll"
               || contains_sub l "void hotspot_kernel_fpga")
        |> List.iter (fun l -> print_endline ("  | " ^ String.trim l)))
      else print_endline "design overmaps the device even at factor 1")
    [ "arria10"; "stratix10" ];

  (* contrast: Rush Larsen's huge kernel cannot fit at all — the paper's
     "no CPU+FPGA results" outcome *)
  print_endline "\n=== the Rush Larsen outcome ===";
  let rl = Benchmarks.Registry.find "rush_larsen" in
  let rl_ctx = Benchmarks.Bench_app.context rl in
  let rl_prog, rl_kernel, _ =
    Psa.Std_flow.prepare_kernel rl_ctx.Psa.Context.program
  in
  let rl_ctx = { rl_ctx with Psa.Context.program = rl_prog; kernel = Some rl_kernel } in
  let rl_ctx = Psa.Std_flow.ensure_features rl_ctx in
  let rl_features = Psa.Context.eval_features_exn rl_ctx in
  let rl_design =
    Codegen.Oneapi_gen.generate
      ~data:(Psa.Std_flow.data_of_features (Psa.Context.features_exn rl_ctx))
      rl_prog ~kernel:rl_kernel
    |> Codegen.Oneapi_gen.employ_single_precision
  in
  List.iter
    (fun device_id ->
      let d = { rl_design with Codegen.Design.device_id } in
      let r = Dse.Unroll_dse.run d rl_features in
      let first = List.hd r.steps in
      Printf.printf "  %-12s factor 1 already at %.0f%% utilisation -> %s\n"
        device_id
        (100.0 *. first.utilization)
        (if r.synthesizable then "ships without unroll"
         else "not synthesizable (matches the paper)"))
    [ "arria10"; "stratix10" ]
