(** Quickstart: take an unoptimised high-level source, run the full
    PSA-flow on it, and look at what comes out.

    Run with: [dune exec examples/quickstart.exe]

    This is the library's core promise in ~60 lines: you write ONE
    technology-agnostic source; the flow finds the hotspot, extracts it,
    analyses it, picks a target, applies the target's optimisation tasks
    and device DSE, and hands you timed, human-readable designs. *)

(* an unoptimised high-level application: nobody annotated anything *)
let my_app =
  {|
int main() {
  int n = 512;
  int reps = 24;
  double xs[n];
  double ys[n];
  for (int i = 0; i < n; i++) {
    xs[i] = rand01();
  }
  for (int i = 0; i < n; i++) {
    double x = xs[i];
    double acc = 0.0;
    for (int k = 0; k < reps; k++) {
      acc = acc + sqrt(x + (double)k) * exp(0.05 * x) + x * x;
    }
    ys[i] = acc;
  }
  double sum = 0.0;
  for (int i = 0; i < n; i++) {
    sum += ys[i];
  }
  print_float(sum);
  return 0;
}
|}

let () =
  (* 1. parse the technology-agnostic source *)
  let program = Minic.Parser.parse_program my_app in
  Minic.Typecheck.check_program program;

  (* 2. build a flow context; the sizes drive profiling + extrapolation *)
  let ctx =
    Psa.Context.make ~benchmark:"quickstart" ~profile_n:512
      ~secondary:(1024, Minic.Parser.parse_program my_app)
      (* (here the app is not size-parameterised, so we reuse it) *)
      program
  in

  (* 3. run the informed PSA-flow: branch point A uses the paper's Fig. 3
        strategy *)
  let outcome = Psa.Std_flow.run_informed ctx in

  (* 4. what did the flow do? *)
  print_endline "--- flow event log ---";
  List.iter (fun l -> print_endline ("  " ^ l)) outcome.log;

  (* 5. the timed designs it produced *)
  print_endline "";
  print_endline "--- generated designs ---";
  Format.printf "%a" Psa.Report.pp_results outcome.results;

  (* 6. export the winning design's human-readable source *)
  match Psa.Report.best outcome.results with
  | Some best ->
      Format.printf "@.--- source of %s (excerpt) ---@." best.design.name;
      let src = Codegen.Design.export best.design in
      String.split_on_char '\n' src
      |> List.filteri (fun i _ -> i < 25)
      |> List.iter print_endline;
      print_endline "  ..."
  | None -> print_endline "no feasible design"
