(** Cost/performance trade-offs in a heterogeneous cloud — Section IV-D
    and Fig. 6.

    Run with: [dune exec examples/cost_tradeoff.exe]

    With the uninformed flow's full set of diverse designs in hand, a
    cloud scheduler can pick per-request placements that minimise dollars
    rather than seconds.  This example sweeps the FPGA:GPU price ratio
    and reports, for each benchmark, which platform a cost-minimising
    mapper would choose — reproducing the paper's observation that the
    fastest design is not always the cheapest. *)

let () =
  let ratios = [ 0.25; 0.5; 1.0; 1.5; 2.0; 3.0; 4.0 ] in
  Printf.printf "%-13s %10s %10s" "benchmark" "t_fpga(s)" "t_gpu(s)";
  List.iter (fun r -> Printf.printf "  F$=%.2fG$" r) ratios;
  print_newline ();
  List.iter
    (fun (app : Benchmarks.Bench_app.t) ->
      let ctx = Benchmarks.Bench_app.context app in
      let outcome = Psa.Std_flow.run_uninformed ctx in
      let time name =
        List.find_opt
          (fun (r : Devices.Simulate.result) -> r.design.name = name)
          outcome.results
        |> Option.map (fun (r : Devices.Simulate.result) ->
               if r.feasible then Some r.seconds else None)
        |> Option.join
      in
      match (time "oneapi_stratix10", time "hip_rtx2080ti") with
      | Some t_f, Some t_g ->
          Printf.printf "%-13s %10.4g %10.4g" app.id t_f t_g;
          List.iter
            (fun pr ->
              let rel =
                Psa.Cost.relative_cost ~price_ratio:pr ~seconds_a:t_f
                  ~seconds_b:t_g
              in
              Printf.printf "  %8s" (if rel < 1.0 then "FPGA" else "GPU"))
            ratios;
          print_newline ()
      | _ ->
          Printf.printf "%-13s (no synthesizable FPGA design; GPU/CPU only)\n"
            app.id)
    Benchmarks.Registry.all;
  print_newline ();
  print_endline
    "AdPredictor mirrors the paper: the Stratix10 is the fastest platform\n\
     outright, yet once its hourly price exceeds ~3x the GPU's, the\n\
     cost-minimising choice flips to the 2080 Ti.";
  print_endline
    "Energy-style analyses follow the same pattern with watts in place of\n\
     dollars (see `dune exec bench/main.exe -- energy`)."
