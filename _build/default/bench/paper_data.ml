(** The paper's published numbers, used as reference columns in the
    reproduction reports (DESIGN.md §4 documents the reconstruction of
    Fig. 5's per-bar values from the figure and its caption). *)

type fig5_row = {
  bench : string;  (** benchmark id *)
  omp : float option;
  hip_1080 : float option;
  hip_2080 : float option;
  oneapi_a10 : float option;  (** None = not synthesizable in the paper *)
  oneapi_s10 : float option;
  auto_target : string;  (** winning target family of the Auto-Selected bar *)
}

(** Fig. 5: hotspot speedups vs the single-thread reference. *)
let fig5 : fig5_row list =
  [
    {
      bench = "rush_larsen";
      omp = Some 28.0;
      hip_1080 = Some 63.0;
      hip_2080 = Some 98.0;
      oneapi_a10 = None;
      oneapi_s10 = None;
      auto_target = "CPU+GPU";
    };
    {
      bench = "nbody";
      omp = Some 30.0;
      hip_1080 = Some 337.0;
      hip_2080 = Some 751.0;
      oneapi_a10 = Some 1.1;
      oneapi_s10 = Some 1.4;
      auto_target = "CPU+GPU";
    };
    {
      bench = "bezier";
      omp = Some 28.0;
      hip_1080 = Some 63.0;
      hip_2080 = Some 67.0;
      oneapi_a10 = Some 23.0;
      oneapi_s10 = Some 27.0;
      auto_target = "CPU+GPU";
    };
    {
      bench = "adpredictor";
      omp = Some 29.0;
      hip_1080 = Some 10.0;
      hip_2080 = Some 10.0;
      oneapi_a10 = Some 14.0;
      oneapi_s10 = Some 32.0;
      auto_target = "CPU+FPGA";
    };
    {
      bench = "kmeans";
      omp = Some 29.0;
      hip_1080 = Some 19.0;
      hip_2080 = Some 24.0;
      oneapi_a10 = Some 7.0;
      oneapi_s10 = Some 13.0;
      auto_target = "multi-thread CPU";
    };
  ]

type table1_row = {
  t1_bench : string;
  t1_omp : float option;  (** added LOC, % of the reference *)
  t1_hip : float option;  (** same for both GPUs in the paper *)
  t1_a10 : float option;
  t1_s10 : float option;
  t1_total : float option;  (** all five designs *)
}

(** Table I: added lines of code per design, % of the reference source.
    Rush Larsen's FPGA designs are excluded (unsynthesizable). *)
let table1 : table1_row list =
  [
    { t1_bench = "rush_larsen"; t1_omp = Some 0.4; t1_hip = Some 6.0;
      t1_a10 = None; t1_s10 = None; t1_total = None };
    { t1_bench = "nbody"; t1_omp = Some 2.0; t1_hip = Some 37.0;
      t1_a10 = Some 52.0; t1_s10 = Some 69.0; t1_total = Some 197.0 };
    { t1_bench = "bezier"; t1_omp = Some 2.0; t1_hip = Some 26.0;
      t1_a10 = Some 34.0; t1_s10 = Some 42.0; t1_total = Some 130.0 };
    { t1_bench = "adpredictor"; t1_omp = Some 2.0; t1_hip = Some 31.0;
      t1_a10 = Some 42.0; t1_s10 = Some 63.0; t1_total = Some 169.0 };
    { t1_bench = "kmeans"; t1_omp = Some 4.0; t1_hip = Some 81.0;
      t1_a10 = Some 101.0; t1_s10 = Some 147.0; t1_total = Some 414.0 };
  ]

(** Fig. 6 crossover price ratios (FPGA $/h over GPU $/h at which the two
    platforms cost the same). *)
let fig6_crossovers = [ ("adpredictor", 3.2); ("bezier", 0.4) ]

let opt_str = function Some v -> Printf.sprintf "%.1f" v | None -> "n/a"
