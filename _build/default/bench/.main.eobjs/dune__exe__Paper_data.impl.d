bench/paper_data.ml: Printf
