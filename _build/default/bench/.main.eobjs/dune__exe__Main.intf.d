bench/main.mli:
