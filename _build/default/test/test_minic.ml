(** Tests for the MiniC language substrate: lexer, parser, pretty-printer
    round-trips, type checker, builtins and LOC accounting. *)

open Minic

let check_tokens src expected () =
  let toks = Lexer.tokenize src |> List.map fst in
  Alcotest.(check int) "token count" (List.length expected) (List.length toks);
  List.iter2
    (fun a b -> Alcotest.(check bool) (Token.describe a) true (Token.equal a b))
    expected toks

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let lexer_tests =
  [
    Alcotest.test_case "keywords and idents" `Quick
      (check_tokens "int foo while"
         Token.[ KW_INT; IDENT "foo"; KW_WHILE; EOF ]);
    Alcotest.test_case "integer literal" `Quick
      (check_tokens "42" Token.[ INT_LIT 42; EOF ]);
    Alcotest.test_case "double literal" `Quick
      (check_tokens "3.25" Token.[ FLOAT_LIT (3.25, Ast.Double); EOF ]);
    Alcotest.test_case "single-precision literal" `Quick
      (check_tokens "3.25f" Token.[ FLOAT_LIT (3.25, Ast.Single); EOF ]);
    Alcotest.test_case "scientific literal" `Quick
      (check_tokens "1.5e3" Token.[ FLOAT_LIT (1500.0, Ast.Double); EOF ]);
    Alcotest.test_case "compound operators" `Quick
      (check_tokens "+= -= *= /= ++ -- == != <= >= && ||"
         Token.[
           PLUS_EQ; MINUS_EQ; STAR_EQ; SLASH_EQ; PLUS_PLUS; MINUS_MINUS;
           EQ_EQ; NE; LE; GE; AMP_AMP; BAR_BAR; EOF ]);
    Alcotest.test_case "line comments skipped" `Quick
      (check_tokens "1 // comment here\n2" Token.[ INT_LIT 1; INT_LIT 2; EOF ]);
    Alcotest.test_case "block comments skipped" `Quick
      (check_tokens "1 /* a \n b */ 2" Token.[ INT_LIT 1; INT_LIT 2; EOF ]);
    Alcotest.test_case "pragma captured as one token" `Quick
      (check_tokens "#pragma omp parallel for\nint"
         Token.[ PRAGMA [ "omp"; "parallel"; "for" ]; KW_INT; EOF ]);
    Alcotest.test_case "locations track lines" `Quick (fun () ->
        let toks = Lexer.tokenize "int\nfoo" in
        let _, loc2 = List.nth toks 1 in
        Alcotest.(check int) "line of foo" 2 loc2.Loc.line);
    Alcotest.test_case "unterminated comment raises" `Quick (fun () ->
        match Lexer.tokenize "1 /* oops" with
        | exception Lexer.Lex_error (msg, _) ->
            Alcotest.(check string) "message" "unterminated block comment" msg
        | _ -> Alcotest.fail "expected a lex error");
    Alcotest.test_case "unexpected character raises" `Quick (fun () ->
        match Lexer.tokenize "a $ b" with
        | exception Lexer.Lex_error _ -> ()
        | _ -> Alcotest.fail "expected a lex error");
  ]

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let parse_main_body src =
  let p = Parser.parse_program ("int main() {" ^ src ^ "}") in
  (Ast.find_func p "main").fbody

let parser_tests =
  [
    Alcotest.test_case "empty program" `Quick (fun () ->
        let p = Parser.parse_program "" in
        Alcotest.(check int) "funcs" 0 (List.length p.funcs));
    Alcotest.test_case "function with params" `Quick (fun () ->
        let p = Parser.parse_program "void f(double* a, int n) { return; }" in
        let f = Ast.find_func p "f" in
        Alcotest.(check int) "params" 2 (List.length f.fparams);
        Alcotest.(check bool) "ptr type" true
          ((List.hd f.fparams).ptyp = Ast.Tptr Ast.Tdouble));
    Alcotest.test_case "global declaration" `Quick (fun () ->
        let p = Parser.parse_program "double g = 1.0;" in
        Alcotest.(check int) "globals" 1 (List.length p.globals));
    Alcotest.test_case "precedence: mul over add" `Quick (fun () ->
        match parse_main_body "int x = 1 + 2 * 3;" with
        | [ { snode = Ast.Decl { dinit = Some e; _ }; _ } ] ->
            Alcotest.(check string) "expr" "1 + 2 * 3"
              (Pretty.expr_to_string e);
            (* structure: Add(1, Mul(2,3)) *)
            (match e.enode with
            | Ast.Binop (Ast.Add, _, { enode = Ast.Binop (Ast.Mul, _, _); _ })
              -> ()
            | _ -> Alcotest.fail "wrong precedence structure")
        | _ -> Alcotest.fail "unexpected body");
    Alcotest.test_case "parens override precedence" `Quick (fun () ->
        match parse_main_body "int x = (1 + 2) * 3;" with
        | [ { snode = Ast.Decl { dinit = Some e; _ }; _ } ] -> (
            match e.enode with
            | Ast.Binop (Ast.Mul, { enode = Ast.Binop (Ast.Add, _, _); _ }, _)
              -> ()
            | _ -> Alcotest.fail "wrong structure")
        | _ -> Alcotest.fail "unexpected body");
    Alcotest.test_case "canonical for loop" `Quick (fun () ->
        match parse_main_body "for (int i = 0; i < 10; i++) { }" with
        | [ { snode = Ast.For (h, _); _ } ] ->
            Alcotest.(check string) "index" "i" h.index;
            Alcotest.(check bool) "exclusive" false h.inclusive
        | _ -> Alcotest.fail "expected a for loop");
    Alcotest.test_case "for with += step" `Quick (fun () ->
        match parse_main_body "for (int i = 0; i <= 10; i += 2) { }" with
        | [ { snode = Ast.For (h, _); _ } ] ->
            Alcotest.(check bool) "inclusive" true h.inclusive;
            Alcotest.(check string) "step" "2" (Pretty.expr_to_string h.step)
        | _ -> Alcotest.fail "expected a for loop");
    Alcotest.test_case "for with i = i + e step" `Quick (fun () ->
        match parse_main_body "for (int i = 0; i < 10; i = i + 3) { }" with
        | [ { snode = Ast.For (h, _); _ } ] ->
            Alcotest.(check string) "step" "3" (Pretty.expr_to_string h.step)
        | _ -> Alcotest.fail "expected a for loop");
    Alcotest.test_case "non-canonical for rejected" `Quick (fun () ->
        match parse_main_body "for (int i = 0; j < 10; i++) { }" with
        | exception Parser.Parse_error _ -> ()
        | _ -> Alcotest.fail "expected a parse error");
    Alcotest.test_case "if/else" `Quick (fun () ->
        match parse_main_body "if (1 < 2) { return 1; } else { return 0; }" with
        | [ { snode = Ast.If (_, _, Some _); _ } ] -> ()
        | _ -> Alcotest.fail "expected if/else");
    Alcotest.test_case "dangling else binds inner" `Quick (fun () ->
        match
          parse_main_body "if (true) if (false) return 1; else return 2;"
        with
        | [ { snode = Ast.If (_, [ inner ], None); _ } ] -> (
            match inner.snode with
            | Ast.If (_, _, Some _) -> ()
            | _ -> Alcotest.fail "else should bind to inner if")
        | _ -> Alcotest.fail "unexpected structure");
    Alcotest.test_case "pragma attaches to next statement" `Quick (fun () ->
        match parse_main_body "#pragma unroll 4\nfor (int i = 0; i < 4; i++) { }" with
        | [ { snode = Ast.For _; pragmas = [ p ]; _ } ] ->
            Alcotest.(check string) "name" "unroll" p.pname;
            Alcotest.(check (list string)) "args" [ "4" ] p.pargs
        | _ -> Alcotest.fail "pragma not attached");
    Alcotest.test_case "array declaration" `Quick (fun () ->
        match parse_main_body "double a[10];" with
        | [ { snode = Ast.Decl { dsize = Some _; dtyp = Ast.Tdouble; _ }; _ } ] -> ()
        | _ -> Alcotest.fail "expected array decl");
    Alcotest.test_case "x++ desugars to += 1" `Quick (fun () ->
        match parse_main_body "int x = 0; x++;" with
        | [ _; { snode = Ast.Assign (Ast.Lvar "x", Ast.AddEq, e); _ } ] ->
            Alcotest.(check string) "one" "1" (Pretty.expr_to_string e)
        | _ -> Alcotest.fail "expected desugared increment");
    Alcotest.test_case "cast expression" `Quick (fun () ->
        match parse_main_body "double x = (double)3;" with
        | [ { snode = Ast.Decl { dinit = Some { enode = Ast.Cast (Ast.Tdouble, _); _ }; _ }; _ } ]
          -> ()
        | _ -> Alcotest.fail "expected a cast");
    Alcotest.test_case "missing semicolon is an error" `Quick (fun () ->
        match Parser.parse_program "int main() { int x = 1 }" with
        | exception Parser.Parse_error _ -> ()
        | _ -> Alcotest.fail "expected parse error");
    Alcotest.test_case "node ids are unique" `Quick (fun () ->
        let p = Parser.parse_program Helpers.vec_scale_src in
        Alcotest.(check bool) "no duplicate ids" false (Ast.has_duplicate_ids p));
  ]

(* ------------------------------------------------------------------ *)
(* Pretty-printer round trips                                          *)
(* ------------------------------------------------------------------ *)

let strip_ws s =
  String.to_seq s
  |> Seq.filter (fun c -> c <> ' ' && c <> '\n' && c <> '\t')
  |> String.of_seq

let roundtrip_stable src () =
  let p1 = Parser.parse_program src in
  let s1 = Pretty.program_to_string p1 in
  let p2 = Parser.parse_program s1 in
  let s2 = Pretty.program_to_string p2 in
  Alcotest.(check string) "print . parse . print is stable" s1 s2

let pretty_tests =
  [
    Alcotest.test_case "vec_scale round trip" `Quick
      (roundtrip_stable Helpers.vec_scale_src);
    Alcotest.test_case "kernel round trip" `Quick
      (roundtrip_stable Helpers.kernel_src);
    Alcotest.test_case "histogram round trip" `Quick
      (roundtrip_stable Helpers.histogram_src);
    Alcotest.test_case "single literal keeps f suffix" `Quick (fun () ->
        let p = Parser.parse_program "int main() { float x = 2.5f; return 0; }" in
        let s = Pretty.program_to_string p in
        Alcotest.(check bool) "has 2.5f" true
          (Astring_contains.contains s "2.5f"));
    Alcotest.test_case "pragmas survive round trip" `Quick (fun () ->
        let src = "int main() {\n#pragma omp parallel for\nfor (int i = 0; i < 4; i++) { }\nreturn 0; }" in
        let s = Pretty.program_to_string (Parser.parse_program src) in
        Alcotest.(check bool) "pragma printed" true
          (Astring_contains.contains s "#pragma omp parallel for"));
    Helpers.qtest "random exprs: print/parse round trip" Helpers.arb_expr
      (fun e ->
        let s = Pretty.expr_to_string e in
        let e2 = Parser.parse_expr_string s in
        strip_ws (Pretty.expr_to_string e2) = strip_ws s);
    Helpers.qtest ~count:50
      "random exprs: round trip preserves evaluated value" Helpers.arb_expr
      (fun e ->
        let p1 = Helpers.program_of_expr e in
        let p2 =
          Parser.parse_program (Pretty.program_to_string p1)
        in
        let r1 = Minic_interp.Eval.run p1 in
        let r2 = Minic_interp.Eval.run p2 in
        r1.output = r2.output);
  ]

(* ------------------------------------------------------------------ *)
(* Type checker                                                        *)
(* ------------------------------------------------------------------ *)

let well_typed src = Typecheck.is_well_typed (Parser.parse_program src)

let typecheck_tests =
  [
    Alcotest.test_case "benchmark fixtures are well-typed" `Quick (fun () ->
        List.iter
          (fun src -> Alcotest.(check bool) "well typed" true (well_typed src))
          [ Helpers.vec_scale_src; Helpers.kernel_src; Helpers.histogram_src ]);
    Alcotest.test_case "undeclared variable rejected" `Quick (fun () ->
        Alcotest.(check bool) "ill typed" false
          (well_typed "int main() { return x; }"));
    Alcotest.test_case "indexing a scalar rejected" `Quick (fun () ->
        Alcotest.(check bool) "ill typed" false
          (well_typed "int main() { int x = 0; return x[0]; }"));
    Alcotest.test_case "float index rejected" `Quick (fun () ->
        Alcotest.(check bool) "ill typed" false
          (well_typed "int main() { double a[4]; return (int)a[1.5]; }"));
    Alcotest.test_case "wrong arity rejected" `Quick (fun () ->
        Alcotest.(check bool) "ill typed" false
          (well_typed "int main() { double x = sqrt(1.0, 2.0); return 0; }"));
    Alcotest.test_case "unknown call rejected by default" `Quick (fun () ->
        Alcotest.(check bool) "ill typed" false
          (well_typed "int main() { frobnicate(); return 0; }"));
    Alcotest.test_case "unknown call allowed in lenient mode" `Quick (fun () ->
        let p = Parser.parse_program "int main() { frobnicate(); return 0; }" in
        Alcotest.(check bool) "lenient ok" true
          (Typecheck.is_well_typed ~allow_unknown_calls:true p));
    Alcotest.test_case "modulo requires ints" `Quick (fun () ->
        Alcotest.(check bool) "ill typed" false
          (well_typed "int main() { double x = 1.5 % 2.0; return 0; }"));
    Alcotest.test_case "numeric widening accepted" `Quick (fun () ->
        Alcotest.(check bool) "well typed" true
          (well_typed "int main() { double x = 1 + 2.5; return 0; }"));
    Alcotest.test_case "return type mismatch rejected" `Quick (fun () ->
        Alcotest.(check bool) "ill typed" false
          (well_typed "double* f() { return 1.0; } int main() { return 0; }"));
    Alcotest.test_case "condition must be boolean" `Quick (fun () ->
        Alcotest.(check bool) "ill typed" false
          (well_typed
             "int main() { double a[2]; if (a) { return 1; } return 0; }"));
  ]

(* ------------------------------------------------------------------ *)
(* Builtins and LOC                                                    *)
(* ------------------------------------------------------------------ *)

let misc_tests =
  [
    Alcotest.test_case "sp variant mapping" `Quick (fun () ->
        Alcotest.(check (option string)) "sqrt -> sqrtf" (Some "sqrtf")
          (Builtins.to_single_variant "sqrt");
        Alcotest.(check (option string)) "rand01 has none" None
          (Builtins.to_single_variant "rand01"));
    Alcotest.test_case "gpu intrinsic mapping" `Quick (fun () ->
        Alcotest.(check (option string)) "expf -> __expf" (Some "__expf")
          (Builtins.to_gpu_intrinsic "expf");
        Alcotest.(check (option string)) "powf has no intrinsic" None
          (Builtins.to_gpu_intrinsic "powf"));
    Alcotest.test_case "cost classes" `Quick (fun () ->
        Alcotest.(check bool) "exp classed" true
          (Builtins.cost_class "exp" = Some Builtins.Exp_log);
        Alcotest.(check bool) "expf classed like exp" true
          (Builtins.cost_class "expf" = Some Builtins.Exp_log);
        Alcotest.(check bool) "print has no class" true
          (Builtins.cost_class "print_int" = None));
    Alcotest.test_case "LOC ignores blanks and comments" `Quick (fun () ->
        Alcotest.(check int) "counted" 2
          (Loc_count.count_source "int x;\n\n// comment\n  \nint y;\n"));
    Alcotest.test_case "LOC of canonical form is format-insensitive" `Quick
      (fun () ->
        let a = Parser.parse_program "int main() { return 0; }" in
        let b = Parser.parse_program "int   main( )  {\n\n return 0;\n }" in
        Alcotest.(check int) "same LOC"
          (Loc_count.count_program a) (Loc_count.count_program b));
    Alcotest.test_case "LOC delta positive when code is added" `Quick (fun () ->
        let reference = Parser.parse_program Helpers.kernel_src in
        let bigger =
          Parser.parse_program
            (Helpers.kernel_src ^ "\nvoid extra() { print_int(1); }\n")
        in
        Alcotest.(check bool) "delta > 0" true
          (Loc_count.delta ~reference ~design:bigger > 0));
    Alcotest.test_case "sizeof" `Quick (fun () ->
        Alcotest.(check int) "double" 8 (Ast.sizeof Ast.Tdouble);
        Alcotest.(check int) "float" 4 (Ast.sizeof Ast.Tfloat);
        Alcotest.(check int) "ptr" 8 (Ast.sizeof (Ast.Tptr Ast.Tint)));
    Alcotest.test_case "static trip count" `Quick (fun () ->
        let body = parse_main_body "for (int i = 2; i <= 10; i += 2) { }" in
        match body with
        | [ s ] ->
            Alcotest.(check (option int)) "trips" (Some 5)
              (Artisan.Query.static_trip_count s)
        | _ -> Alcotest.fail "expected one stmt");
  ]

let () =
  Alcotest.run "minic"
    [
      ("lexer", lexer_tests);
      ("parser", parser_tests);
      ("pretty", pretty_tests);
      ("typecheck", typecheck_tests);
      ("misc", misc_tests);
    ]
