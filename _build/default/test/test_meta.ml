(** Tests for the Artisan-analog meta-programming layer: the query engine,
    instrumentation by node id, and the rewriting primitives. *)

open Artisan
open Minic

let parse = Minic.Parser.parse_program

let nested_src =
  {|
void knl(double* a, int n) {
  for (int i = 0; i < n; i++) {
    for (int j = 0; j < 4; j++) {
      a[i] += (double)j;
    }
  }
}

int main() {
  double a[8];
  for (int i = 0; i < 8; i++) {
    a[i] = 0.0;
  }
  knl(a, 8);
  while (a[0] < 0.0) {
    a[0] += 1.0;
  }
  return 0;
}
|}

let query_tests =
  [
    Alcotest.test_case "all for loops found" `Quick (fun () ->
        let p = parse nested_src in
        Alcotest.(check int) "3 for loops" 3
          (List.length Query.(stmts ~where:is_for p)));
    Alcotest.test_case "while loops found" `Quick (fun () ->
        let p = parse nested_src in
        Alcotest.(check int) "1 while" 1
          (List.length Query.(stmts ~where:is_while p)));
    Alcotest.test_case "the paper's Fig. 2 query: outermost loops of a kernel"
      `Quick (fun () ->
        let p = parse nested_src in
        let ms =
          Query.(
            stmts
              ~where:(is_for &&& in_function "knl" &&& is_outermost_loop)
              p)
        in
        Alcotest.(check int) "exactly the i loop" 1 (List.length ms);
        match (List.hd ms).stmt.snode with
        | Ast.For (h, _) -> Alcotest.(check string) "index" "i" h.index
        | _ -> Alcotest.fail "not a for");
    Alcotest.test_case "innermost loop predicate" `Quick (fun () ->
        let p = parse nested_src in
        let ms =
          Query.(stmts_in ~where:(is_for &&& is_innermost_loop) p "knl")
        in
        Alcotest.(check int) "only the j loop" 1 (List.length ms);
        match (List.hd ms).stmt.snode with
        | Ast.For (h, _) -> Alcotest.(check string) "index" "j" h.index
        | _ -> Alcotest.fail "not a for");
    Alcotest.test_case "loop depth and enclosure" `Quick (fun () ->
        let p = parse nested_src in
        let inner =
          List.hd Query.(stmts_in ~where:(is_for &&& is_innermost_loop) p "knl")
        in
        Alcotest.(check int) "depth 1" 1 (Query.loop_depth inner);
        Alcotest.(check bool) "enclosed" true (Query.enclosed_by_loop inner));
    Alcotest.test_case "combinators: not and or" `Quick (fun () ->
        let p = parse nested_src in
        let loops = Query.(stmts ~where:is_loop p) in
        let fors = Query.(stmts ~where:is_for p) in
        let whiles = Query.(stmts ~where:is_while p) in
        Alcotest.(check int) "for + while = loop"
          (List.length loops)
          (List.length fors + List.length whiles);
        let not_loops = Query.(stmts ~where:(not_ is_loop) p) in
        let all = Query.stmts p in
        Alcotest.(check int) "complement"
          (List.length all)
          (List.length loops + List.length not_loops));
    Alcotest.test_case "fixed bound predicate" `Quick (fun () ->
        let p = parse nested_src in
        let fixed = Query.(stmts_in ~where:has_fixed_bound p "knl") in
        Alcotest.(check int) "only j loop is fixed" 1 (List.length fixed));
    Alcotest.test_case "expression query: calls" `Quick (fun () ->
        let p = parse Helpers.kernel_src in
        let calls = Query.exprs ~where:(Query.is_call ~name:"exp") p in
        Alcotest.(check int) "one exp call" 1 (List.length calls));
    Alcotest.test_case "callees of main" `Quick (fun () ->
        let p = parse Helpers.kernel_src in
        let cs = Query.callees p "main" in
        Alcotest.(check bool) "calls work" true (List.mem "work" cs);
        Alcotest.(check bool) "calls rand01" true (List.mem "rand01" cs));
    Alcotest.test_case "double literal query" `Quick (fun () ->
        let p = parse "int main() { float x = 1.5f; double y = 2.5; return 0; }" in
        Alcotest.(check int) "one double literal" 1
          (List.length (Query.exprs ~where:Query.is_double_literal p)));
  ]

(* ------------------------------------------------------------------ *)
(* Instrumentation                                                     *)
(* ------------------------------------------------------------------ *)

let first_loop p fname =
  (List.hd Query.(stmts_in ~where:is_for p fname)).Query.stmt

let instrument_tests =
  [
    Alcotest.test_case "insert_before places statement" `Quick (fun () ->
        let p = parse Helpers.kernel_src in
        let loop = first_loop p "work" in
        let marker = Builder.call_stmt "print_int" [ Builder.int 42 ] in
        let p' = Instrument.insert_before ~target:loop.sid marker p in
        let f = Ast.find_func p' "work" in
        (match f.fbody with
        | { snode = Ast.Expr_stmt _; _ } :: { snode = Ast.For _; _ } :: _ -> ()
        | _ -> Alcotest.fail "marker not before loop");
        Alcotest.(check bool) "ids still unique" false
          (Ast.has_duplicate_ids p'));
    Alcotest.test_case "insert_after places statement" `Quick (fun () ->
        let p = parse Helpers.kernel_src in
        let loop = first_loop p "work" in
        let marker = Builder.call_stmt "print_int" [ Builder.int 42 ] in
        let p' = Instrument.insert_after ~target:loop.sid marker p in
        let f = Ast.find_func p' "work" in
        match List.rev f.fbody with
        | { snode = Ast.Expr_stmt _; _ } :: _ -> ()
        | _ -> Alcotest.fail "marker not after loop");
    Alcotest.test_case "replace deletes with empty list" `Quick (fun () ->
        let p = parse Helpers.kernel_src in
        let loop = first_loop p "work" in
        let p' = Instrument.replace ~target:loop.sid [] p in
        Alcotest.(check int) "work body empty" 0
          (List.length (Ast.find_func p' "work").fbody));
    Alcotest.test_case "unknown target raises" `Quick (fun () ->
        let p = parse Helpers.kernel_src in
        Alcotest.check_raises "not found" (Instrument.Not_found_id 999999)
          (fun () ->
            ignore
              (Instrument.insert_before ~target:999999
                 (Builder.return_void) p)));
    Alcotest.test_case "add_pragma like Fig. 2's unroll insertion" `Quick
      (fun () ->
        let p = parse Helpers.kernel_src in
        let loop = first_loop p "work" in
        let p' =
          Instrument.add_pragma ~target:loop.sid
            (Builder.pragma "unroll" ~args:[ "4" ])
            p
        in
        let s = Instrument.export p' in
        Alcotest.(check bool) "pragma in source" true
          (Astring_contains.contains s "#pragma unroll 4"));
    Alcotest.test_case "set_pragma replaces same-name pragma" `Quick (fun () ->
        let p = parse Helpers.kernel_src in
        let loop = first_loop p "work" in
        let p' =
          Instrument.set_pragma ~target:loop.sid
            (Builder.pragma "unroll" ~args:[ "2" ]) p
        in
        let p'' =
          Instrument.set_pragma ~target:loop.sid
            (Builder.pragma "unroll" ~args:[ "8" ]) p'
        in
        let s = Instrument.export p'' in
        Alcotest.(check bool) "updated" true
          (Astring_contains.contains s "#pragma unroll 8");
        Alcotest.(check bool) "old factor gone" false
          (Astring_contains.contains s "#pragma unroll 2"));
    Alcotest.test_case "wrap_with_timer is observable" `Quick (fun () ->
        let p = parse Helpers.kernel_src in
        let loop = first_loop p "work" in
        let p' = Instrument.wrap_with_timer ~target:loop.sid ~key:5 p in
        let r = Minic_interp.Eval.run p' in
        Alcotest.(check bool) "timer recorded" true
          (Minic_interp.Profile.timer_total r.profile 5 > 0.0));
    Alcotest.test_case "instrumentation preserves program behaviour" `Quick
      (fun () ->
        let p = parse Helpers.kernel_src in
        let loop = first_loop p "work" in
        let p' = Instrument.wrap_with_timer ~target:loop.sid ~key:1 p in
        let r = Minic_interp.Eval.run p in
        let r' = Minic_interp.Eval.run p' in
        Alcotest.(check string) "same output" r.output r'.output);
    Alcotest.test_case "rename_func updates calls" `Quick (fun () ->
        let p = parse Helpers.kernel_src in
        let p' = Instrument.rename_func ~from:"work" ~into:"kernel0" p in
        Alcotest.(check bool) "new function exists" true
          (Ast.find_func_opt p' "kernel0" <> None);
        Alcotest.(check bool) "old name gone" true
          (Ast.find_func_opt p' "work" = None);
        (* still runs correctly *)
        let r = Minic_interp.Eval.run p' in
        let r0 = Minic_interp.Eval.run p in
        Alcotest.(check string) "same output" r0.output r.output);
    Alcotest.test_case "add_func makes function callable" `Quick (fun () ->
        let p = parse "int main() { helper(); return 0; }" in
        let helper =
          Builder.func "helper" [] [ Builder.call_stmt "print_int" [ Builder.int 9 ] ]
        in
        let p' = Instrument.add_func helper p in
        let r = Minic_interp.Eval.run p' in
        Alcotest.(check string) "prints 9" "9\n" r.output);
  ]

(* ------------------------------------------------------------------ *)
(* Rewriting                                                           *)
(* ------------------------------------------------------------------ *)

let rewrite_tests =
  [
    Alcotest.test_case "map_exprs preserves untouched node ids" `Quick
      (fun () ->
        let p = parse Helpers.kernel_src in
        let ids_before = Ast.all_stmt_ids p in
        let p' = Rewrite.map_exprs (fun e -> e) p in
        Alcotest.(check (list int)) "stmt ids unchanged" ids_before
          (Ast.all_stmt_ids p'));
    Alcotest.test_case "map_exprs rewrites calls" `Quick (fun () ->
        let p = parse Helpers.kernel_src in
        let p' =
          Rewrite.map_exprs
            (fun e ->
              match e.Ast.enode with
              | Ast.Call ("exp", args) -> { e with Ast.enode = Ast.Call ("expf", args) }
              | _ -> e)
            p
        in
        let s = Minic.Pretty.program_to_string p' in
        Alcotest.(check bool) "expf present" true
          (Astring_contains.contains s "expf(");
        Alcotest.(check bool) "exp( gone" false
          (Astring_contains.contains s " exp("));
    Alcotest.test_case "map_exprs_in limits scope to one function" `Quick
      (fun () ->
        let src =
          "void f() { double x = exp(1.0); }\nvoid g() { double y = exp(2.0); }\nint main() { return 0; }"
        in
        let p = parse src in
        let p' =
          Rewrite.map_exprs_in
            (fun e ->
              match e.Ast.enode with
              | Ast.Call ("exp", args) ->
                  { e with Ast.enode = Ast.Call ("expf", args) }
              | _ -> e)
            "f" p
        in
        let f_src = Minic.Pretty.program_to_string { p' with Ast.funcs = [ Ast.find_func p' "f" ] } in
        let g_src = Minic.Pretty.program_to_string { p' with Ast.funcs = [ Ast.find_func p' "g" ] } in
        Alcotest.(check bool) "f rewritten" true
          (Astring_contains.contains f_src "expf(");
        Alcotest.(check bool) "g untouched" false
          (Astring_contains.contains g_src "expf("));
    Alcotest.test_case "edit_stmts can duplicate with fresh ids" `Quick
      (fun () ->
        let p = parse "int main() { print_int(1); return 0; }" in
        let p' =
          Rewrite.edit_stmts
            (fun s ->
              match s.Ast.snode with
              | Ast.Expr_stmt _ -> [ s; Rewrite.refresh_stmt s ]
              | _ -> [ s ])
            p
        in
        Alcotest.(check bool) "no duplicate ids" false (Ast.has_duplicate_ids p');
        let r = Minic_interp.Eval.run p' in
        Alcotest.(check string) "prints twice" "1\n1\n" r.output);
    Alcotest.test_case "refresh_stmt gives fresh ids, same meaning" `Quick
      (fun () ->
        let p = parse Helpers.kernel_src in
        let loop = first_loop p "work" in
        let copy = Rewrite.refresh_stmt loop in
        Alcotest.(check bool) "different id" true (copy.sid <> loop.sid);
        Alcotest.(check string) "same source"
          (Minic.Pretty.stmt_to_string loop)
          (Minic.Pretty.stmt_to_string copy));
    Alcotest.test_case "subst_var substitutes everywhere" `Quick (fun () ->
        let e = Minic.Parser.parse_expr_string "x * x + x" in
        let e' =
          Rewrite.subst_var ~name:"x" ~by:(Builder.int 3) e
        in
        Alcotest.(check string) "substituted" "3 * 3 + 3"
          (Minic.Pretty.expr_to_string e'));
    Alcotest.test_case "subst_var leaves other variables" `Quick (fun () ->
        let e = Minic.Parser.parse_expr_string "x + y" in
        let e' = Rewrite.subst_var ~name:"x" ~by:(Builder.int 1) e in
        Alcotest.(check string) "only x" "1 + y" (Minic.Pretty.expr_to_string e'));
    Helpers.qtest ~count:60 "random exprs: identity map preserves printing"
      Helpers.arb_expr (fun e ->
        Minic.Pretty.expr_to_string (Rewrite.map_expr (fun x -> x) e)
        = Minic.Pretty.expr_to_string e);
    Helpers.qtest ~count:60 "random exprs: refresh preserves printing"
      Helpers.arb_expr (fun e ->
        Minic.Pretty.expr_to_string (Rewrite.refresh_expr e)
        = Minic.Pretty.expr_to_string e);
  ]

let () =
  Alcotest.run "meta"
    [
      ("query", query_tests);
      ("instrument", instrument_tests);
      ("rewrite", rewrite_tests);
    ]
