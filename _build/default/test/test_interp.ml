(** Tests for the MiniC interpreter/profiler: evaluation semantics, the
    virtual-cycle cost model, loop statistics, timers, kernel-focus
    observations and determinism. *)

open Minic_interp

let eval_main body = Helpers.float_output ("int main() {" ^ body ^ "}")

let eval_int body =
  int_of_string (Helpers.first_output ("int main() {" ^ body ^ "}"))

let semantics_tests =
  [
    Alcotest.test_case "integer arithmetic" `Quick (fun () ->
        Alcotest.(check int) "17" 17
          (eval_int "print_int(2 + 3 * 5); return 0;"));
    Alcotest.test_case "float arithmetic" `Quick (fun () ->
        Alcotest.(check (float 1e-9)) "2.5" 2.5
          (eval_main "print_float(10.0 / 4.0); return 0;"));
    Alcotest.test_case "modulo" `Quick (fun () ->
        Alcotest.(check int) "2" 2 (eval_int "print_int(17 % 5); return 0;"));
    Alcotest.test_case "comparison and logic" `Quick (fun () ->
        Alcotest.(check int) "1" 1
          (eval_int
             "if (1 < 2 && !(3 <= 2)) { print_int(1); } else { print_int(0); } return 0;"));
    Alcotest.test_case "short-circuit && skips rhs" `Quick (fun () ->
        Alcotest.(check int) "0" 0
          (eval_int
             "int z = 0; if (false && 1 / z == 0) { print_int(1); } else { print_int(0); } return 0;"));
    Alcotest.test_case "short-circuit || skips rhs" `Quick (fun () ->
        Alcotest.(check int) "1" 1
          (eval_int
             "int z = 0; if (true || 1 / z == 0) { print_int(1); } else { print_int(0); } return 0;"));
    Alcotest.test_case "while loop" `Quick (fun () ->
        Alcotest.(check int) "10" 10
          (eval_int "int i = 0; while (i < 10) { i++; } print_int(i); return 0;"));
    Alcotest.test_case "for loop with step" `Quick (fun () ->
        Alcotest.(check int) "20" 20
          (eval_int
             "int s = 0; for (int i = 0; i < 10; i += 2) { s += i; } print_int(s); return 0;"));
    Alcotest.test_case "inclusive for bound" `Quick (fun () ->
        Alcotest.(check int) "55" 55
          (eval_int
             "int s = 0; for (int i = 1; i <= 10; i++) { s += i; } print_int(s); return 0;"));
    Alcotest.test_case "arrays store and load" `Quick (fun () ->
        Alcotest.(check (float 1e-9)) "6.0" 6.0
          (eval_main
             "double a[3]; a[0] = 1.0; a[1] = 2.0; a[2] = 3.0; print_float(a[0] + a[1] + a[2]); return 0;"));
    Alcotest.test_case "compound array assignment" `Quick (fun () ->
        Alcotest.(check (float 1e-9)) "7.0" 7.0
          (eval_main
             "double a[1]; a[0] = 3.0; a[0] += 4.0; print_float(a[0]); return 0;"));
    Alcotest.test_case "pointer passing mutates caller array" `Quick (fun () ->
        let src =
          {|
void fill(double* a, int n) {
  for (int i = 0; i < n; i++) { a[i] = (double)i; }
}
int main() {
  double a[4];
  fill(a, 4);
  print_float(a[3]);
  return 0;
}
|}
        in
        Alcotest.(check (float 1e-9)) "3.0" 3.0 (Helpers.float_output src));
    Alcotest.test_case "recursion" `Quick (fun () ->
        let src =
          {|
int fact(int n) {
  if (n <= 1) { return 1; }
  return n * fact(n - 1);
}
int main() { print_int(fact(6)); return 0; }
|}
        in
        Alcotest.(check string) "720" "720" (Helpers.first_output src));
    Alcotest.test_case "math builtins" `Quick (fun () ->
        Alcotest.(check (float 1e-9)) "3.0" 3.0
          (eval_main "print_float(sqrt(9.0)); return 0;");
        Alcotest.(check (float 1e-6)) "exp(0)=1" 1.0
          (eval_main "print_float(exp(0.0)); return 0;");
        Alcotest.(check (float 1e-9)) "fmax" 4.0
          (eval_main "print_float(fmax(2.0, 4.0)); return 0;"));
    Alcotest.test_case "single-precision variants evaluate" `Quick (fun () ->
        Alcotest.(check (float 1e-6)) "sqrtf" 2.0
          (eval_main "print_float(sqrtf(4.0f)); return 0;"));
    Alcotest.test_case "gpu intrinsics evaluate" `Quick (fun () ->
        Alcotest.(check (float 1e-5)) "__expf(1)" (Float.exp 1.0)
          (eval_main "print_float(__expf(1.0f)); return 0;"));
    Alcotest.test_case "casts" `Quick (fun () ->
        Alcotest.(check int) "3" 3 (eval_int "print_int((int)3.9); return 0;"));
    Alcotest.test_case "globals visible in functions" `Quick (fun () ->
        let src =
          "double g = 2.0;\nvoid bump() { g += 1.0; }\nint main() { bump(); bump(); print_float(g); return 0; }"
        in
        Alcotest.(check (float 1e-9)) "4.0" 4.0 (Helpers.float_output src));
  ]

let error_tests =
  [
    Alcotest.test_case "out-of-bounds read raises" `Quick (fun () ->
        match
          Helpers.run_ok
            "int main() { double a[2]; print_float(a[5]); return 0; }"
        with
        | exception Value.Runtime_error _ -> ()
        | _ -> Alcotest.fail "expected runtime error");
    Alcotest.test_case "out-of-bounds write raises" `Quick (fun () ->
        match
          Helpers.run_ok "int main() { double a[2]; a[2] = 1.0; return 0; }"
        with
        | exception Value.Runtime_error _ -> ()
        | _ -> Alcotest.fail "expected runtime error");
    Alcotest.test_case "negative index raises" `Quick (fun () ->
        match
          Helpers.run_ok
            "int main() { double a[2]; int i = 0 - 1; a[i] = 1.0; return 0; }"
        with
        | exception Value.Runtime_error _ -> ()
        | _ -> Alcotest.fail "expected runtime error");
    Alcotest.test_case "integer division by zero raises" `Quick (fun () ->
        match
          Helpers.run_ok "int main() { int z = 0; print_int(1 / z); return 0; }"
        with
        | exception Value.Runtime_error _ -> ()
        | _ -> Alcotest.fail "expected runtime error");
    Alcotest.test_case "float division by zero yields inf (C semantics)" `Quick
      (fun () ->
        Alcotest.(check string) "inf" "inf"
          (Helpers.first_output
             "int main() { double z = 0.0; print_float(1.0 / z); return 0; }"));
    Alcotest.test_case "fuel guards against infinite loops" `Quick (fun () ->
        let p =
          Minic.Parser.parse_program
            "int main() { while (true) { } return 0; }"
        in
        match Eval.run ~fuel:10_000 p with
        | exception Value.Runtime_error _ -> ()
        | _ -> Alcotest.fail "expected fuel exhaustion");
    Alcotest.test_case "missing main raises" `Quick (fun () ->
        let p = Minic.Parser.parse_program "void f() { return; }" in
        match Eval.run p with
        | exception Value.Runtime_error _ -> ()
        | _ -> Alcotest.fail "expected runtime error");
    Alcotest.test_case "timer stop without start raises" `Quick (fun () ->
        match Helpers.run_ok "int main() { __timer_stop(1); return 0; }" with
        | exception Value.Runtime_error _ -> ()
        | _ -> Alcotest.fail "expected runtime error");
  ]

let profile_tests =
  [
    Alcotest.test_case "cycles are monotone in work" `Quick (fun () ->
        let cycles body =
          (Helpers.run_ok ("int main() {" ^ body ^ "return 0; }")).profile
            .cycles
        in
        let small =
          cycles
            "double s = 0.0; for (int i = 0; i < 10; i++) { s += sqrt((double)i); }"
        in
        let large =
          cycles
            "double s = 0.0; for (int i = 0; i < 100; i++) { s += sqrt((double)i); }"
        in
        Alcotest.(check bool) "more work costs more" true (large > small *. 5.0));
    Alcotest.test_case "flop counting" `Quick (fun () ->
        let r =
          Helpers.run_ok
            "int main() { double x = 1.5 + 2.5; double y = x * 2.0; return 0; }"
        in
        Alcotest.(check int) "2 flops" 2 r.profile.flops);
    Alcotest.test_case "sfu ops counted for math calls" `Quick (fun () ->
        let r =
          Helpers.run_ok
            "int main() { double x = sqrt(2.0) + exp(1.0); return 0; }"
        in
        Alcotest.(check int) "2 sfu ops" 2 r.profile.sfu_ops);
    Alcotest.test_case "byte accounting by element type" `Quick (fun () ->
        let r =
          Helpers.run_ok
            "int main() { double a[2]; int b[2]; a[0] = 1.0; b[0] = 1; double x = a[0]; int y = b[0]; return 0; }"
        in
        Alcotest.(check int) "writes: 8 + 4" 12 r.profile.bytes_written;
        Alcotest.(check int) "reads: 8 + 4" 12 r.profile.bytes_read);
    Alcotest.test_case "loop stats: trips and invocations" `Quick (fun () ->
        let p =
          Minic.Parser.parse_program
            {|
int main() {
  for (int i = 0; i < 3; i++) {
    for (int j = 0; j < 5; j++) {
      int x = i * j;
    }
  }
  return 0;
}
|}
        in
        let r = Eval.run p in
        let stats =
          Hashtbl.fold (fun _ s acc -> s :: acc) r.profile.loops []
          |> List.sort (fun (a : Profile.loop_stat) b ->
                 compare a.iterations b.iterations)
        in
        match stats with
        | [ outer; inner ] ->
            Alcotest.(check int) "outer iterations" 3 outer.iterations;
            Alcotest.(check int) "outer invocations" 1 outer.invocations;
            Alcotest.(check int) "inner iterations" 15 inner.iterations;
            Alcotest.(check int) "inner invocations" 3 inner.invocations;
            Alcotest.(check int) "inner min trip" 5 inner.min_trip;
            Alcotest.(check int) "inner max trip" 5 inner.max_trip
        | _ -> Alcotest.fail "expected two loops");
    Alcotest.test_case "timers bracket the timed region" `Quick (fun () ->
        let src =
          {|
int main() {
  __timer_start(7);
  double s = 0.0;
  for (int i = 0; i < 50; i++) { s += sqrt((double)i); }
  __timer_stop(7);
  return 0;
}
|}
        in
        let r = Helpers.run_ok src in
        let t = Profile.timer_total r.profile 7 in
        Alcotest.(check bool) "timer > 0" true (t > 0.0);
        Alcotest.(check bool) "timer <= total" true (t <= r.profile.cycles));
    Alcotest.test_case "timers_by_cost sorts descending" `Quick (fun () ->
        let src =
          {|
int main() {
  __timer_start(1);
  for (int i = 0; i < 5; i++) { double x = sqrt((double)i); }
  __timer_stop(1);
  __timer_start(2);
  for (int i = 0; i < 500; i++) { double x = sqrt((double)i); }
  __timer_stop(2);
  return 0;
}
|}
        in
        let r = Helpers.run_ok src in
        match Profile.timers_by_cost r.profile with
        | (2, _) :: (1, _) :: _ -> ()
        | _ -> Alcotest.fail "expected timer 2 first");
    Alcotest.test_case "determinism: identical runs, identical profiles" `Quick
      (fun () ->
        let r1 = Helpers.run_ok Helpers.vec_scale_src in
        let r2 = Helpers.run_ok Helpers.vec_scale_src in
        Alcotest.(check string) "same output" r1.output r2.output;
        Alcotest.(check (float 0.0)) "same cycles" r1.profile.cycles
          r2.profile.cycles);
    Alcotest.test_case "rand01 stays in [0,1)" `Quick (fun () ->
        let src =
          {|
int main() {
  double mn = 1.0;
  double mx = 0.0;
  for (int i = 0; i < 1000; i++) {
    double r = rand01();
    mn = fmin(mn, r);
    mx = fmax(mx, r);
  }
  print_float(mn);
  print_float(mx);
  return 0;
}
|}
        in
        let r = Helpers.run_ok src in
        match String.split_on_char '\n' r.output with
        | mn :: mx :: _ ->
            Alcotest.(check bool) "min >= 0" true (float_of_string mn >= 0.0);
            Alcotest.(check bool) "max < 1" true (float_of_string mx < 1.0)
        | _ -> Alcotest.fail "expected two outputs");
  ]

let focus_tests =
  [
    Alcotest.test_case "kernel observations collected" `Quick (fun () ->
        let r = Helpers.run_ok ~focus:"work" Helpers.kernel_src in
        match r.profile.kernel with
        | None -> Alcotest.fail "no kernel obs"
        | Some k ->
            Alcotest.(check int) "one call" 1 k.calls;
            Alcotest.(check bool) "kernel cycles positive" true
              (k.k_cycles > 0.0);
            Alcotest.(check bool) "kernel cycles below total" true
              (k.k_cycles < r.profile.cycles));
    Alcotest.test_case "data in/out classification" `Quick (fun () ->
        let r = Helpers.run_ok ~focus:"work" Helpers.kernel_src in
        match r.profile.kernel with
        | Some k ->
            let a = k.args.(0) and b = k.args.(1) in
            Alcotest.(check string) "arg a" "a" a.arg_name;
            Alcotest.(check int) "a bytes in" (32 * 8) a.bytes_in;
            Alcotest.(check int) "a bytes out" 0 a.bytes_out;
            Alcotest.(check int) "b bytes in" 0 b.bytes_in;
            Alcotest.(check int) "b bytes out" (32 * 8) b.bytes_out
        | None -> Alcotest.fail "no kernel obs");
    Alcotest.test_case "read-modify-write counts as in and out" `Quick
      (fun () ->
        let src =
          {|
void incr(double* a, int n) {
  for (int i = 0; i < n; i++) { a[i] += 1.0; }
}
int main() {
  double a[8];
  incr(a, 8);
  print_float(a[0]);
  return 0;
}
|}
        in
        let r = Helpers.run_ok ~focus:"incr" src in
        match r.profile.kernel with
        | Some k ->
            Alcotest.(check int) "in" 64 k.args.(0).bytes_in;
            Alcotest.(check int) "out" 64 k.args.(0).bytes_out
        | None -> Alcotest.fail "no kernel obs");
    Alcotest.test_case "write-before-read is out-only" `Quick (fun () ->
        let src =
          {|
void scratch(double* a, int n) {
  for (int i = 0; i < n; i++) {
    a[i] = 2.0;
    double x = a[i];
  }
}
int main() {
  double a[8];
  scratch(a, 8);
  return 0;
}
|}
        in
        let r = Helpers.run_ok ~focus:"scratch" src in
        match r.profile.kernel with
        | Some k ->
            Alcotest.(check int) "no transfer in" 0 k.args.(0).bytes_in;
            Alcotest.(check int) "out" 64 k.args.(0).bytes_out
        | None -> Alcotest.fail "no kernel obs");
    Alcotest.test_case "per-call accumulation across invocations" `Quick
      (fun () ->
        let src =
          {|
void touch(double* a, int n) {
  for (int i = 0; i < n; i++) { double x = a[i]; }
}
int main() {
  double a[4];
  touch(a, 4);
  touch(a, 4);
  touch(a, 4);
  return 0;
}
|}
        in
        let r = Helpers.run_ok ~focus:"touch" src in
        match r.profile.kernel with
        | Some k ->
            Alcotest.(check int) "3 calls" 3 k.calls;
            Alcotest.(check int) "in accumulates per call" (3 * 32)
              k.args.(0).bytes_in
        | None -> Alcotest.fail "no kernel obs");
    Alcotest.test_case "touched ranges recorded" `Quick (fun () ->
        let src =
          {|
void part(double* a, int n) {
  for (int i = 2; i < 5; i++) { a[i] = 1.0; }
}
int main() {
  double a[10];
  part(a, 10);
  return 0;
}
|}
        in
        let r = Helpers.run_ok ~focus:"part" src in
        match r.profile.kernel with
        | Some k -> (
            match k.args.(0).regions_touched with
            | [ (_, lo, hi) ] ->
                Alcotest.(check int) "lo" 2 lo;
                Alcotest.(check int) "hi" 4 hi
            | _ -> Alcotest.fail "expected one region")
        | None -> Alcotest.fail "no kernel obs");
  ]

let () =
  Alcotest.run "interp"
    [
      ("semantics", semantics_tests);
      ("errors", error_tests);
      ("profile", profile_tests);
      ("focus", focus_tests);
    ]
