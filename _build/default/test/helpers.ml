(** Shared fixtures and generators for the test suites. *)

let parse = Minic.Parser.parse_program

(** Small self-contained program with one clear hotspot loop and a
    kernel-shaped structure (used across meta/analysis/transform tests). *)
let vec_scale_src =
  {|
int main() {
  int n = 64;
  double a[n];
  double b[n];
  for (int i = 0; i < n; i++) {
    a[i] = rand01();
  }
  for (int i = 0; i < n; i++) {
    b[i] = sqrt(a[i]) * 2.0 + 1.0;
  }
  double s = 0.0;
  for (int i = 0; i < n; i++) {
    s += b[i];
  }
  print_float(s);
  return 0;
}
|}

(** Program with an already-extracted kernel function. *)
let kernel_src =
  {|
void work(double* a, double* b, int n) {
  for (int i = 0; i < n; i++) {
    b[i] = exp(a[i]) + 0.5;
  }
}

int main() {
  int n = 32;
  double a[n];
  double b[n];
  for (int i = 0; i < n; i++) {
    a[i] = rand01();
  }
  work(a, b, n);
  double s = 0.0;
  for (int i = 0; i < n; i++) {
    s += b[i];
  }
  print_float(s);
  return 0;
}
|}

(** Kernel with an array-reduction dependence (histogram pattern). *)
let histogram_src =
  {|
void hist(int* bins, double* x, int n) {
  for (int i = 0; i < n; i++) {
    int b = (int)(x[i] * 8.0);
    bins[b] += 1;
  }
}

int main() {
  int n = 128;
  double x[n];
  int bins[8];
  for (int i = 0; i < n; i++) {
    x[i] = 0.99 * rand01();
  }
  for (int b = 0; b < 8; b++) {
    bins[b] = 0;
  }
  hist(bins, x, n);
  int total = 0;
  for (int b = 0; b < 8; b++) {
    total += bins[b];
  }
  print_int(total);
  return 0;
}
|}

(** Kernel whose loop carries a true dependence (prefix sum). *)
let prefix_src =
  {|
void prefix(double* a, int n) {
  for (int i = 1; i < n; i++) {
    a[i] = a[i] + a[i - 1];
  }
}

int main() {
  int n = 16;
  double a[n];
  for (int i = 0; i < n; i++) {
    a[i] = 1.0;
  }
  prefix(a, n);
  print_float(a[15]);
  return 0;
}
|}

let run_ok ?focus src =
  let p = parse src in
  Minic.Typecheck.check_program p;
  Minic_interp.Eval.run ?focus p

(** First line of the program's printed output. *)
let first_output ?focus src =
  let r = run_ok ?focus src in
  match String.split_on_char '\n' r.output with
  | line :: _ -> line
  | [] -> ""

let float_output ?focus src = float_of_string (first_output ?focus src)

(* ------------------------------------------------------------------ *)
(* QCheck generators                                                    *)
(* ------------------------------------------------------------------ *)

(** Generator of random well-formed arithmetic expressions over variables
    [x] (double) and [k] (int), used for parser/printer round-trips. *)
let rec gen_expr_depth fuel =
  let open QCheck.Gen in
  if fuel = 0 then
    oneof
      [
        map (fun n -> Minic.Builder.int (abs n mod 1000)) int;
        map
          (fun f -> Minic.Builder.flt (Float.abs (Float.of_int (int_of_float (f *. 100.0))) /. 100.0))
          (float_bound_inclusive 10.0);
        return (Minic.Builder.var "x");
      ]
  else
    frequency
      [
        (2, gen_expr_depth 0);
        ( 3,
          map2
            (fun op (a, b) -> Minic.Builder.binop op a b)
            (oneofl Minic.Ast.[ Add; Sub; Mul ])
            (pair (gen_expr_depth (fuel - 1)) (gen_expr_depth (fuel - 1))) );
        ( 1,
          map
            (fun a -> Minic.Builder.call "sqrt" [ a ])
            (gen_expr_depth (fuel - 1)) );
        (1, map Minic.Builder.neg (gen_expr_depth (fuel - 1)));
      ]

let arb_expr =
  QCheck.make ~print:Minic.Pretty.expr_to_string
    (QCheck.Gen.sized_size (QCheck.Gen.int_bound 4) gen_expr_depth)

(** Wrap an expression into a complete program that evaluates it. *)
let program_of_expr e =
  let open Minic.Builder in
  program
    [
      func "main" ~ret:Minic.Ast.Tint []
        [
          decl Minic.Ast.Tdouble "x" ~init:(flt 1.5);
          decl Minic.Ast.Tdouble "r" ~init:e;
          call_stmt "print_float" [ var "r" ];
          return_ (int 0);
        ];
    ]

let qtest ?(count = 100) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb prop)
