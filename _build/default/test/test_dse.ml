(** Tests for the design-space exploration tasks: thread-count sweep,
    blocksize sweep, and the unroll-until-overmap loop of the paper's
    Fig. 2. *)

let omp_design () =
  Feat_fixtures.design ~target:Codegen.Design.Cpu_openmp ~device_id:"epyc7543"
    ()

let gpu_design device_id = Feat_fixtures.design ~device_id ()

let fpga_design device_id =
  Feat_fixtures.design ~target:Codegen.Design.Fpga_oneapi ~device_id ()

let threads_tests =
  [
    Alcotest.test_case "embarrassingly parallel picks max threads" `Quick
      (fun () ->
        let f = Feat_fixtures.make () in
        let r = Dse.Threads_dse.run (omp_design ()) f in
        Alcotest.(check int) "32 threads" 32 r.chosen_threads);
    Alcotest.test_case "chosen point is optimal over the sweep" `Quick
      (fun () ->
        let f = Feat_fixtures.make () in
        let r = Dse.Threads_dse.run (omp_design ()) f in
        let best_seconds =
          List.fold_left (fun acc (s : Dse.Threads_dse.step) ->
              Float.min acc s.seconds)
            infinity r.steps
        in
        let chosen =
          List.find
            (fun (s : Dse.Threads_dse.step) -> s.threads = r.chosen_threads)
            r.steps
        in
        Alcotest.(check (float 1e-12)) "optimal" best_seconds chosen.seconds);
    Alcotest.test_case "design knob updated" `Quick (fun () ->
        let f = Feat_fixtures.make () in
        let r = Dse.Threads_dse.run (omp_design ()) f in
        Alcotest.(check int) "knob" 32 r.design.num_threads);
    Alcotest.test_case "sweep includes 1 and the core count" `Quick (fun () ->
        let f = Feat_fixtures.make () in
        let r = Dse.Threads_dse.run (omp_design ()) f in
        let threads = List.map (fun (s : Dse.Threads_dse.step) -> s.threads) r.steps in
        Alcotest.(check bool) "has 1" true (List.mem 1 threads);
        Alcotest.(check bool) "has 32" true (List.mem 32 threads));
  ]

let blocksize_tests =
  [
    Alcotest.test_case "chosen blocksize is optimal over the sweep" `Quick
      (fun () ->
        let f = Feat_fixtures.make () in
        let r = Dse.Blocksize_dse.run (gpu_design "rtx2080ti") f in
        let feasible =
          List.filter (fun (s : Dse.Blocksize_dse.step) -> s.feasible) r.steps
        in
        let best =
          List.fold_left (fun acc (s : Dse.Blocksize_dse.step) ->
              Float.min acc s.seconds)
            infinity feasible
        in
        let chosen =
          List.find
            (fun (s : Dse.Blocksize_dse.step) ->
              s.blocksize = r.chosen_blocksize)
            r.steps
        in
        Alcotest.(check (float 1e-12)) "optimal" best chosen.seconds);
    Alcotest.test_case "register-heavy kernels avoid big blocks" `Quick
      (fun () ->
        let f = Feat_fixtures.make ~regs:255 () in
        let r = Dse.Blocksize_dse.run (gpu_design "rtx2080ti") f in
        (* 255 regs * 512 threads would blow the register file *)
        Alcotest.(check bool) "small block chosen" true
          (r.chosen_blocksize <= 256));
    Alcotest.test_case "devices can choose different blocksizes" `Quick
      (fun () ->
        (* not asserting inequality (they may agree), asserting both valid *)
        let f = Feat_fixtures.make ~regs:128 () in
        let r1 = Dse.Blocksize_dse.run (gpu_design "gtx1080ti") f in
        let r2 = Dse.Blocksize_dse.run (gpu_design "rtx2080ti") f in
        Alcotest.(check bool) "1080 valid" true (r1.chosen_blocksize >= 32);
        Alcotest.(check bool) "2080 valid" true (r2.chosen_blocksize >= 32));
    Alcotest.test_case "sweep is bounded by the device maximum" `Quick
      (fun () ->
        let f = Feat_fixtures.make () in
        let r = Dse.Blocksize_dse.run (gpu_design "rtx2080ti") f in
        List.iter
          (fun (s : Dse.Blocksize_dse.step) ->
            Alcotest.(check bool) "<= 1024" true (s.blocksize <= 1024))
          r.steps);
  ]

let unroll_tests =
  [
    Alcotest.test_case "doubles until overmap and keeps the last fit" `Quick
      (fun () ->
        let f = Feat_fixtures.make () in
        let r = Dse.Unroll_dse.run (fpga_design "stratix10") f in
        Alcotest.(check bool) "synthesizable" true r.synthesizable;
        (* last step overmapped, chosen factor is half of it *)
        let last = List.nth r.steps (List.length r.steps - 1) in
        Alcotest.(check bool) "stopped on overmap" true last.overmapped;
        Alcotest.(check int) "chosen is previous power of two"
          (last.factor / 2) r.chosen_factor);
    Alcotest.test_case "factors double like Fig. 2" `Quick (fun () ->
        let f = Feat_fixtures.make () in
        let r = Dse.Unroll_dse.run (fpga_design "stratix10") f in
        let factors = List.map (fun (s : Dse.Unroll_dse.step) -> s.factor) r.steps in
        let rec check_doubling = function
          | a :: b :: rest ->
              Alcotest.(check int) "doubles" (a * 2) b;
              check_doubling (b :: rest)
          | _ -> ()
        in
        check_doubling factors);
    Alcotest.test_case "bigger device sustains a bigger factor" `Quick
      (fun () ->
        let f = Feat_fixtures.make () in
        let ra = Dse.Unroll_dse.run (fpga_design "arria10") f in
        let rs = Dse.Unroll_dse.run (fpga_design "stratix10") f in
        Alcotest.(check bool) "S10 >= A10" true
          (rs.chosen_factor >= ra.chosen_factor));
    Alcotest.test_case "design annotated with chosen factor" `Quick (fun () ->
        let f = Feat_fixtures.make () in
        let r = Dse.Unroll_dse.run (fpga_design "stratix10") f in
        Alcotest.(check int) "knob" r.chosen_factor r.design.unroll_factor);
    Alcotest.test_case "monster kernel is unsynthesizable" `Quick (fun () ->
        let f =
          Feat_fixtures.make ~locals:80
            ~ops_per_iter:(Feat_fixtures.ops ~exp_log:60.0 ~fdiv:30.0 ())
            ()
        in
        let r = Dse.Unroll_dse.run (fpga_design "arria10") f in
        Alcotest.(check bool) "not synthesizable" false r.synthesizable;
        Alcotest.(check bool) "design flagged" false
          r.design.synthesizable);
    Alcotest.test_case "90-100% single-pipeline design still ships" `Quick
      (fun () ->
        (* dense enough that u=1 is over 90% but under 100% on the A10 *)
        let f =
          Feat_fixtures.make ~locals:22
            ~ops_per_iter:
              (Feat_fixtures.ops ~fadd:380.0 ~fmul:320.0 ~fdiv:8.0
                 ~loads:120.0 ())
            ()
        in
        let r = Dse.Unroll_dse.run (fpga_design "arria10") f in
        let first = List.hd r.steps in
        if first.overmapped && first.utilization <= 1.0 then (
          Alcotest.(check bool) "synthesizable at factor 1" true
            r.synthesizable;
          Alcotest.(check int) "factor 1" 1 r.chosen_factor)
        else Alcotest.(check bool) "fixture should be 90-100%" false true);
  ]

let () =
  Alcotest.run "dse"
    [
      ("threads", threads_tests);
      ("blocksize", blocksize_tests);
      ("unroll", unroll_tests);
    ]
