(** Tests for the five benchmark applications: every source parses,
    type-checks and runs deterministically at both profiling sizes, the
    analyses classify each the way the paper describes, and the informed
    PSA-flow picks the paper's winning target. *)

open Benchmarks

let all = Registry.all

let parse_run_tests =
  List.concat_map
    (fun (b : Bench_app.t) ->
      [
        Alcotest.test_case (b.id ^ ": parses and typechecks") `Quick (fun () ->
            List.iter
              (fun n ->
                let p = Bench_app.program b ~n in
                Minic.Typecheck.check_program p;
                Alcotest.(check bool) "unique ids" false
                  (Minic.Ast.has_duplicate_ids p))
              [ b.profile_n; b.secondary_n ]);
        Alcotest.test_case (b.id ^ ": runs to a finite checksum") `Slow
          (fun () ->
            let r = Minic_interp.Eval.run (Bench_app.program b ~n:b.profile_n) in
            match String.split_on_char '\n' r.output with
            | line :: _ ->
                Alcotest.(check bool) "finite checksum" true
                  (Float.is_finite (float_of_string line))
            | [] -> Alcotest.fail "no output");
        Alcotest.test_case (b.id ^ ": deterministic") `Slow (fun () ->
            let p = Bench_app.program b ~n:b.profile_n in
            let r1 = Minic_interp.Eval.run p in
            let r2 = Minic_interp.Eval.run p in
            Alcotest.(check string) "same output" r1.output r2.output);
      ])
    all

let registry_tests =
  [
    Alcotest.test_case "five benchmarks registered" `Quick (fun () ->
        Alcotest.(check int) "5" 5 (List.length all));
    Alcotest.test_case "find by id" `Quick (fun () ->
        Alcotest.(check string) "nbody" "N-Body Simulation"
          (Registry.find "nbody").name);
    Alcotest.test_case "unknown id raises" `Quick (fun () ->
        match Registry.find "linpack" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "profile sizes are tractable, eval sizes are not"
      `Quick (fun () ->
        List.iter
          (fun (b : Bench_app.t) ->
            Alcotest.(check bool) "profile < secondary" true
              (b.profile_n < b.secondary_n);
            Alcotest.(check bool) "secondary < eval" true
              (b.secondary_n < b.eval_n))
          all);
  ]

(* full informed flow per benchmark: checks the paper's Auto-Selected
   winners (Fig. 5) *)
let expected_winner = function
  | "rush_larsen" | "nbody" | "bezier" -> Codegen.Design.Gpu_hip
  | "adpredictor" -> Codegen.Design.Fpga_oneapi
  | "kmeans" -> Codegen.Design.Cpu_openmp
  | id -> Alcotest.failf "unknown benchmark %s" id

let winner_tests =
  List.map
    (fun (b : Bench_app.t) ->
      Alcotest.test_case
        (Printf.sprintf "%s: informed flow selects the paper's target" b.id)
        `Slow
        (fun () ->
          let o = Psa.Std_flow.run_informed (Bench_app.context b) in
          match Psa.Report.best o.results with
          | Some best ->
              Alcotest.(check string) "winning target"
                (Codegen.Design.target_to_string (expected_winner b.id))
                (Codegen.Design.target_to_string best.design.target)
          | None -> Alcotest.fail "no feasible design"))
    all

let characterization_tests =
  [
    Alcotest.test_case "rush larsen: FPGA designs are unsynthesizable" `Slow
      (fun () ->
        let o =
          Psa.Std_flow.run_uninformed (Bench_app.context (Registry.find "rush_larsen"))
        in
        List.iter
          (fun (r : Devices.Simulate.result) ->
            if r.design.target = Codegen.Design.Fpga_oneapi then
              Alcotest.(check bool) "infeasible" false r.feasible)
          o.results);
    Alcotest.test_case "kmeans: OMP wins even among all five designs" `Slow
      (fun () ->
        let o =
          Psa.Std_flow.run_uninformed (Bench_app.context (Registry.find "kmeans"))
        in
        match Psa.Report.best o.results with
        | Some best ->
            Alcotest.(check string) "omp wins" "omp_epyc7543" best.design.name
        | None -> Alcotest.fail "no result");
    Alcotest.test_case "adpredictor: stratix10 wins among all five" `Slow
      (fun () ->
        let o =
          Psa.Std_flow.run_uninformed
            (Bench_app.context (Registry.find "adpredictor"))
        in
        match Psa.Report.best o.results with
        | Some best ->
            Alcotest.(check string) "s10 wins" "oneapi_stratix10"
              best.design.name
        | None -> Alcotest.fail "no result");
    Alcotest.test_case "nbody: 2080 Ti dominates and FPGAs barely matter"
      `Slow (fun () ->
        let o =
          Psa.Std_flow.run_uninformed (Bench_app.context (Registry.find "nbody"))
        in
        let speedup name =
          match
            List.find_opt
              (fun (r : Devices.Simulate.result) -> r.design.name = name)
              o.results
          with
          | Some r -> r.speedup
          | None -> 0.0
        in
        Alcotest.(check bool) "2080 > 300x" true
          (speedup "hip_rtx2080ti" > 300.0);
        Alcotest.(check bool) "2080 > 1080" true
          (speedup "hip_rtx2080ti" > speedup "hip_gtx1080ti");
        Alcotest.(check bool) "A10 around 1x" true
          (speedup "oneapi_arria10" < 5.0));
  ]

let () =
  Alcotest.run "benchmarks"
    [
      ("registry", registry_tests);
      ("programs", parse_run_tests);
      ("winners", winner_tests);
      ("characterization", characterization_tests);
    ]
