(** Tests for the analysis tasks: hotspot detection (including the
    descend-into-parallel-work heuristic), dependence classification,
    trip counts, intensity, data movement, aliasing, the feature vector
    and workload extrapolation. *)

open Analysis

let parse = Minic.Parser.parse_program

let hotspot_tests =
  [
    Alcotest.test_case "picks the dominant loop" `Quick (fun () ->
        let p = parse Helpers.vec_scale_src in
        match Hotspot.detect p with
        | None -> Alcotest.fail "no hotspot"
        | Some h ->
            (* the sqrt loop dominates the init and sum loops *)
            Alcotest.(check bool) "majority share" true (h.share > 0.4);
            Alcotest.(check string) "in main" "main" h.func_name);
    Alcotest.test_case "no loops -> none" `Quick (fun () ->
        let p = parse "int main() { return 0; }" in
        Alcotest.(check bool) "none" true (Hotspot.detect p = None));
    Alcotest.test_case "descends through a sequential driver loop" `Quick
      (fun () ->
        let src =
          {|
int main() {
  int n = 64;
  double a[n];
  double b[n];
  for (int i = 0; i < n; i++) { a[i] = rand01(); }
  for (int t = 0; t < 5; t++) {
    for (int i = 0; i < n; i++) {
      b[i] = sqrt(a[i]) + (double)t;
    }
    b[0] = 0.0;
  }
  print_float(b[1]);
  return 0;
}
|}
        in
        let p = parse src in
        match Hotspot.detect p with
        | None -> Alcotest.fail "no hotspot"
        | Some h ->
            Alcotest.(check int) "descended once" 1
              (List.length h.descended_from);
            (* the chosen loop must be parallel *)
            let chosen =
              List.find
                (fun (m : Artisan.Query.match_ctx) -> m.stmt.sid = h.loop_sid)
                (Artisan.Query.stmts p ~where:Artisan.Query.is_for)
            in
            let info = Dependence.analyze_loop chosen.stmt in
            Alcotest.(check bool) "parallel" true info.parallel_with_reductions);
    Alcotest.test_case "stays on a parallel outermost loop" `Quick (fun () ->
        let p = parse Helpers.vec_scale_src in
        match Hotspot.detect p with
        | Some h -> Alcotest.(check int) "no descent" 0 (List.length h.descended_from)
        | None -> Alcotest.fail "no hotspot");
    Alcotest.test_case "instrumentation does not change behaviour" `Quick
      (fun () ->
        let p = parse Helpers.vec_scale_src in
        let r0 = Minic_interp.Eval.run p in
        let r1 = Minic_interp.Eval.run (Hotspot.instrument p) in
        Alcotest.(check string) "same output" r0.output r1.output);
  ]

(* ------------------------------------------------------------------ *)
(* Dependence                                                          *)
(* ------------------------------------------------------------------ *)

let loop_info_of src fname =
  let p = parse src in
  match Dependence.outermost p fname with
  | Some i -> i
  | None -> Alcotest.fail "no outermost loop"

let dependence_tests =
  [
    Alcotest.test_case "independent map loop is parallel" `Quick (fun () ->
        let i = loop_info_of Helpers.kernel_src "work" in
        Alcotest.(check bool) "parallel" true i.parallel;
        Alcotest.(check int) "no deps" 0 (List.length i.carried));
    Alcotest.test_case "prefix sum carries a dependence" `Quick (fun () ->
        let i = loop_info_of Helpers.prefix_src "prefix" in
        Alcotest.(check bool) "not parallel" false i.parallel_with_reductions;
        Alcotest.(check bool) "carried dep on a" true
          (List.exists (fun (d : Dependence.dep) -> d.var = "a") i.carried));
    Alcotest.test_case "histogram write is an array reduction" `Quick (fun () ->
        let i = loop_info_of Helpers.histogram_src "hist" in
        Alcotest.(check bool) "parallel with reductions" true
          i.parallel_with_reductions;
        Alcotest.(check bool) "not plainly parallel" false i.parallel;
        match i.reductions with
        | [ { kind = Dependence.Array_reduction Minic.Ast.AddEq; var = "bins"; _ } ] -> ()
        | _ -> Alcotest.fail "expected bins array reduction");
    Alcotest.test_case "scalar accumulation is a scalar reduction" `Quick
      (fun () ->
        let src =
          {|
void total(double* s, double* a, int n) {
  double acc = 0.0;
  for (int i = 0; i < n; i++) {
    acc += a[i];
  }
  s[0] = acc;
}
int main() { double s[1]; double a[4]; total(s, a, 4); return 0; }
|}
        in
        let i = loop_info_of src "total" in
        match i.reductions with
        | [ { kind = Dependence.Scalar_reduction Minic.Ast.AddEq; var = "acc"; _ } ] ->
            Alcotest.(check bool) "parallel with reductions" true
              i.parallel_with_reductions
        | _ -> Alcotest.fail "expected acc scalar reduction");
    Alcotest.test_case "locals declared inside are private" `Quick (fun () ->
        let src =
          {|
void f(double* b, double* a, int n) {
  for (int i = 0; i < n; i++) {
    double t = a[i] * 2.0;
    t = t + 1.0;
    b[i] = t;
  }
}
int main() { double a[4]; double b[4]; f(b, a, 4); return 0; }
|}
        in
        let i = loop_info_of src "f" in
        Alcotest.(check bool) "parallel" true i.parallel);
    Alcotest.test_case "scalar overwritten each iteration is carried" `Quick
      (fun () ->
        let src =
          {|
void f(double* b, double* a, int n) {
  double last = 0.0;
  for (int i = 0; i < n; i++) {
    b[i] = last;
    last = a[i];
  }
}
int main() { double a[4]; double b[4]; f(b, a, 4); return 0; }
|}
        in
        let i = loop_info_of src "f" in
        Alcotest.(check bool) "not parallel" false i.parallel_with_reductions);
    Alcotest.test_case "read and write at different indices is carried" `Quick
      (fun () ->
        let src =
          {|
void stencil(double* a, int n) {
  for (int i = 0; i < n - 1; i++) {
    a[i] = a[i + 1] * 0.5;
  }
}
int main() { double a[8]; stencil(a, 8); return 0; }
|}
        in
        let i = loop_info_of src "stencil" in
        Alcotest.(check bool) "not parallel" false i.parallel_with_reductions);
    Alcotest.test_case "strided linearised write stays parallel" `Quick
      (fun () ->
        let src =
          {|
void f(double* a, int n) {
  for (int i = 0; i < n; i++) {
    for (int d = 0; d < 3; d++) {
      a[i * 3 + d] = (double)(i + d);
    }
  }
}
int main() { double a[24]; f(a, 8); return 0; }
|}
        in
        let i = loop_info_of src "f" in
        Alcotest.(check bool) "parallel" true i.parallel);
    Alcotest.test_case "affine coefficient extraction" `Quick (fun () ->
        let coeff s =
          Dependence.affine_coeff "i" (Minic.Parser.parse_expr_string s)
        in
        Alcotest.(check (option int)) "i" (Some 1) (coeff "i");
        Alcotest.(check (option int)) "3*i+2" (Some 3) (coeff "3 * i + 2");
        Alcotest.(check (option int)) "i*4-j" (Some 4) (coeff "i * 4 - j");
        Alcotest.(check (option int)) "j" (Some 0) (coeff "j");
        Alcotest.(check (option int)) "i*i" None (coeff "i * i");
        Alcotest.(check (option int)) "a[i]" None (coeff "a[i]"));
    Alcotest.test_case "inner loops listed separately" `Quick (fun () ->
        let p = parse Helpers.histogram_src in
        Alcotest.(check int) "hist has no inner loops" 0
          (List.length (Dependence.inner_loops p "hist")));
  ]

(* ------------------------------------------------------------------ *)
(* Trip counts / intensity / data / alias                              *)
(* ------------------------------------------------------------------ *)

let tripcount_tests =
  [
    Alcotest.test_case "fixed trips are fixed" `Quick (fun () ->
        let p = parse Helpers.kernel_src in
        let t = Trip_count.analyze p in
        let loop = (List.hd Artisan.Query.(stmts_in ~where:is_for p "work")).stmt in
        match Trip_count.find t loop.sid with
        | Some s ->
            Alcotest.(check bool) "fixed" true s.fixed;
            Alcotest.(check int) "trips" 32 s.max_trip
        | None -> Alcotest.fail "no stats");
    Alcotest.test_case "variable trips are not fixed" `Quick (fun () ->
        let src =
          {|
int main() {
  double a[10];
  for (int i = 0; i < 10; i++) {
    for (int j = 0; j < i; j++) {
      a[j] = 1.0;
    }
  }
  return 0;
}
|}
        in
        let p = parse src in
        let t = Trip_count.analyze p in
        let inner =
          (List.hd
             Artisan.Query.(
               stmts_in ~where:(is_for &&& is_innermost_loop) p "main"))
            .stmt
        in
        match Trip_count.find t inner.sid with
        | Some s ->
            Alcotest.(check bool) "not fixed" false s.fixed;
            Alcotest.(check int) "min 0" 0 s.min_trip;
            Alcotest.(check int) "max 9" 9 s.max_trip;
            Alcotest.(check int) "invocations" 10 s.invocations
        | None -> Alcotest.fail "no stats");
  ]

let intensity_tests =
  [
    Alcotest.test_case "math-heavy kernel beats copy kernel" `Quick (fun () ->
        let copy_src =
          {|
void copy(double* b, double* a, int n) {
  for (int i = 0; i < n; i++) { b[i] = a[i]; }
}
int main() { double a[4]; double b[4]; copy(b, a, 4); return 0; }
|}
        in
        let math = Intensity.analyze (parse Helpers.kernel_src) "work" in
        let copy = Intensity.analyze (parse copy_src) "copy" in
        Alcotest.(check bool) "math > copy" true
          (math.flops_per_byte > copy.flops_per_byte));
    Alcotest.test_case "fixed inner loops multiply work" `Quick (fun () ->
        let one =
          Intensity.analyze
            (parse
               "void f(double* a) { for (int i = 0; i < 1; i++) { a[0] += 1.0; } }\nint main() { double a[1]; f(a); return 0; }")
            "f"
        in
        let many =
          Intensity.analyze
            (parse
               "void f(double* a) { for (int i = 0; i < 64; i++) { a[0] += 1.0; } }\nint main() { double a[1]; f(a); return 0; }")
            "f"
        in
        Alcotest.(check bool) "64x flops" true (many.flops > one.flops *. 32.0));
  ]

let data_alias_tests =
  [
    Alcotest.test_case "data in/out totals" `Quick (fun () ->
        let d = Data_inout.analyze (parse Helpers.kernel_src) ~kernel:"work" in
        Alcotest.(check int) "in" (32 * 8) d.total_in;
        Alcotest.(check int) "out" (32 * 8) d.total_out;
        Alcotest.(check int) "calls" 1 d.calls);
    Alcotest.test_case "no alias for distinct arrays" `Quick (fun () ->
        let a = Alias.analyze (parse Helpers.kernel_src) ~kernel:"work" in
        Alcotest.(check bool) "no alias" true a.no_alias);
    Alcotest.test_case "aliasing detected when same array passed twice" `Quick
      (fun () ->
        let src =
          {|
void f(double* a, double* b, int n) {
  for (int i = 0; i < n; i++) { b[i] = a[i] + 1.0; }
}
int main() {
  double x[8];
  f(x, x, 8);
  return 0;
}
|}
        in
        let a = Alias.analyze (parse src) ~kernel:"f" in
        Alcotest.(check bool) "alias" false a.no_alias;
        Alcotest.(check bool) "overlap recorded" true (a.overlaps <> []));
    Alcotest.test_case "disjoint halves of one array do not alias" `Quick
      (fun () ->
        let src =
          {|
void f(double* a, double* b, int n) {
  for (int i = 0; i < n; i++) { b[i] = a[i] + 1.0; }
}
int main() {
  double x[8];
  double y[8];
  f(x, y, 8);
  return 0;
}
|}
        in
        let a = Alias.analyze (parse src) ~kernel:"f" in
        Alcotest.(check bool) "no alias" true a.no_alias);
  ]

(* ------------------------------------------------------------------ *)
(* Features + extrapolation                                            *)
(* ------------------------------------------------------------------ *)

let features_tests =
  [
    Alcotest.test_case "feature vector of a simple kernel" `Quick (fun () ->
        let f = Features.analyze (parse Helpers.kernel_src) ~kernel:"work" in
        Alcotest.(check int) "calls" 1 f.calls;
        Alcotest.(check (float 0.01)) "outer trip" 32.0 f.outer_trip;
        Alcotest.(check bool) "parallel" true f.outer_parallel;
        Alcotest.(check bool) "no gathers" true (f.gather_fraction = 0.0);
        Alcotest.(check int) "two pointer args" 2 (List.length f.args);
        Alcotest.(check bool) "flops positive" true (f.flops_per_call > 0.0));
    Alcotest.test_case "register estimate grows with locals" `Quick (fun () ->
        let small = Features.analyze (parse Helpers.kernel_src) ~kernel:"work" in
        let big_src =
          {|
void work(double* a, double* b, int n) {
  for (int i = 0; i < n; i++) {
    double t1 = a[i] + 1.0;
    double t2 = t1 * 2.0;
    double t3 = exp(t2);
    double t4 = t3 - t1;
    double t5 = t4 * t4;
    double t6 = sqrt(t5 + 1.0);
    double t7 = t6 / (t2 + 0.1);
    double t8 = t7 + t3;
    b[i] = t8;
  }
}
int main() {
  double a[8]; double b[8];
  work(a, b, 8);
  return 0;
}
|}
        in
        let big = Features.analyze (parse big_src) ~kernel:"work" in
        Alcotest.(check bool) "more regs" true
          (big.regs_estimate > small.regs_estimate));
    Alcotest.test_case "gathers detected through index arrays" `Quick (fun () ->
        let src =
          {|
void g(double* out, double* table, int* idx, int n) {
  for (int i = 0; i < n; i++) {
    out[i] = table[idx[i]];
  }
}
int main() {
  double out[8]; double table[16]; int idx[8];
  for (int i = 0; i < 8; i++) { idx[i] = rand_int(16); }
  g(out, table, idx, 8);
  return 0;
}
|}
        in
        let f = Features.analyze (parse src) ~kernel:"g" in
        Alcotest.(check bool) "gather fraction positive" true
          (f.gather_fraction > 0.0);
        Alcotest.(check (list string)) "gathered args" [ "table" ]
          f.gathered_args);
    Alcotest.test_case "inner loop features" `Quick (fun () ->
        let src =
          {|
void k(double* out, double* w, int n) {
  for (int i = 0; i < n; i++) {
    double s = 0.0;
    for (int j = 0; j < 8; j++) {
      s += w[j];
    }
    out[i] = s;
  }
}
int main() {
  double out[16]; double w[8];
  k(out, w, 16);
  return 0;
}
|}
        in
        let f = Features.analyze (parse src) ~kernel:"k" in
        match f.inner_loops with
        | [ il ] ->
            Alcotest.(check (option int)) "static trip" (Some 8) il.il_static_trip;
            Alcotest.(check bool) "innermost" true il.il_innermost;
            Alcotest.(check bool) "has reduction" true il.il_has_reduction;
            Alcotest.(check bool) "fully unrollable" true il.il_fully_unrollable;
            Alcotest.(check (float 0.01)) "iters per outer" 8.0
              il.il_iters_per_outer;
            Alcotest.(check bool) "w is an inner-read table" true
              (f.inner_read_bytes = 64)
        | _ -> Alcotest.fail "expected one inner loop");
    Alcotest.test_case "offload intensity" `Quick (fun () ->
        let f = Features.analyze (parse Helpers.kernel_src) ~kernel:"work" in
        let expected = f.flops_per_call /. (f.bytes_in_per_call +. f.bytes_out_per_call) in
        Alcotest.(check (float 1e-9)) "ratio" expected
          (Features.offload_intensity f));
  ]

let extrapolate_tests =
  [
    Alcotest.test_case "exponent fitting" `Quick (fun () ->
        Alcotest.(check (float 1e-9)) "linear" 1.0
          (Extrapolate.fit_exponent ~n1:10 ~n2:20 10.0 20.0);
        Alcotest.(check (float 1e-9)) "quadratic" 2.0
          (Extrapolate.fit_exponent ~n1:10 ~n2:20 100.0 400.0);
        Alcotest.(check (float 1e-9)) "constant" 0.0
          (Extrapolate.fit_exponent ~n1:10 ~n2:20 7.0 7.0));
    Alcotest.test_case "scaling evaluates the power law" `Quick (fun () ->
        Alcotest.(check (float 1e-6)) "linear to 40" 40.0
          (Extrapolate.scale ~n1:10 ~n2:20 ~n:40 10.0 20.0);
        Alcotest.(check (float 1e-6)) "quadratic to 40" 1600.0
          (Extrapolate.scale ~n1:10 ~n2:20 ~n:40 100.0 400.0));
    Helpers.qtest ~count:50 "scale interpolates endpoints"
      QCheck.(pair (float_range 1.0 100.0) (float_range 1.0 100.0))
      (fun (v1, v2) ->
        let at n = Extrapolate.scale ~n1:8 ~n2:16 ~n v1 v2 in
        Float.abs (at 8 -. v1) < 1e-6 *. v1
        && Float.abs (at 16 -. v2) < 1e-6 *. v2);
    Alcotest.test_case "feature extrapolation matches a direct profile" `Quick
      (fun () ->
        (* profile the same kernel at two sizes, extrapolate to a third,
           compare against directly profiling the third *)
        let src n =
          Printf.sprintf
            {|
void work(double* a, double* b, int n) {
  for (int i = 0; i < n; i++) {
    b[i] = sqrt(a[i]) + 2.0;
  }
}
int main() {
  int n = %d;
  double a[n]; double b[n];
  for (int i = 0; i < n; i++) { a[i] = rand01(); }
  work(a, b, n);
  return 0;
}
|}
            n
        in
        let feat n = Features.analyze (parse (src n)) ~kernel:"work" in
        let f8 = feat 8 and f16 = feat 16 and f64 = feat 64 in
        let fx = Extrapolate.features ~n1:8 f8 ~n2:16 f16 ~n:64 in
        let close a b = Float.abs (a -. b) <= 0.02 *. Float.max a b +. 1e-9 in
        Alcotest.(check bool) "outer trip" true (close fx.outer_trip f64.outer_trip);
        Alcotest.(check bool) "flops" true
          (close fx.flops_per_call f64.flops_per_call);
        Alcotest.(check bool) "bytes in" true
          (close fx.bytes_in_per_call f64.bytes_in_per_call);
        Alcotest.(check bool) "cpu cycles" true
          (close fx.cpu_cycles_per_call f64.cpu_cycles_per_call));
  ]

let () =
  Alcotest.run "analysis"
    [
      ("hotspot", hotspot_tests);
      ("dependence", dependence_tests);
      ("trip_count", tripcount_tests);
      ("intensity", intensity_tests);
      ("data_alias", data_alias_tests);
      ("features", features_tests);
      ("extrapolate", extrapolate_tests);
    ]
