test/test_transforms.ml: Alcotest Analysis Artisan Astring_contains Extract Helpers List Minic Minic_interp Omp_pragmas Option Reduction Sp_math String Transforms Unroll
