test/test_minic.ml: Alcotest Artisan Ast Astring_contains Builtins Helpers Lexer List Loc Loc_count Minic Minic_interp Parser Pretty Seq String Token Typecheck
