test/test_devices.ml: Alcotest Analysis Codegen Cpu_model Devices Feat_fixtures Float Fpga_model Gpu_model Helpers List QCheck Simulate Spec Transfer
