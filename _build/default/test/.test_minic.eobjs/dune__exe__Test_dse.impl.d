test/test_dse.ml: Alcotest Codegen Dse Feat_fixtures Float List
