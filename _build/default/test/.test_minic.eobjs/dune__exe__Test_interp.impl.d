test/test_interp.ml: Alcotest Array Eval Float Hashtbl Helpers List Minic Minic_interp Profile String Value
