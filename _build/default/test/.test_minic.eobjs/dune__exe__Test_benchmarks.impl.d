test/test_benchmarks.ml: Alcotest Bench_app Benchmarks Codegen Devices Float List Minic Minic_interp Printf Psa Registry String
