test/test_analysis.ml: Alcotest Alias Analysis Artisan Data_inout Dependence Extrapolate Features Float Helpers Hotspot Intensity List Minic Minic_interp Printf QCheck Trip_count
