test/test_codegen.ml: Alcotest Analysis Artisan Astring_contains Codegen Design Helpers Hip_gen List Minic Oneapi_gen Openmp_gen Option Transforms
