test/test_psa.mli:
