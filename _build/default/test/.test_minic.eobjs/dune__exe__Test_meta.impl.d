test/test_meta.ml: Alcotest Artisan Ast Astring_contains Builder Helpers Instrument List Minic Minic_interp Query Rewrite
