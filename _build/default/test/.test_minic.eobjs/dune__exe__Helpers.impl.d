test/helpers.ml: Float Minic Minic_interp QCheck QCheck_alcotest String
