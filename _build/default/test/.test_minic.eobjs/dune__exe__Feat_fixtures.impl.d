test/feat_fixtures.ml: Analysis Codegen Features Intensity Minic Opcount Option
