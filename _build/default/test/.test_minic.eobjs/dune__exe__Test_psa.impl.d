test/test_psa.ml: Alcotest Analysis Astring_contains Benchmarks Codegen Devices Feat_fixtures List Minic Printf Psa
