(** Tests for the device models: CPU scaling, GPU occupancy/roofline
    behaviour, FPGA resources and pipeline timing, transfer estimation —
    including qcheck properties (monotonicity, bounds). *)

open Devices

let epyc = Spec.epyc7543
let p2080 = Spec.rtx2080ti
let p1080 = Spec.gtx1080ti
let a10 = Spec.arria10
let s10 = Spec.stratix10

let spec_tests =
  [
    Alcotest.test_case "registry finds every device" `Quick (fun () ->
        List.iter
          (fun id ->
            Alcotest.(check string) "roundtrip" id (Spec.id (Spec.find id)))
          [ "epyc7543"; "gtx1080ti"; "rtx2080ti"; "arria10"; "stratix10" ]);
    Alcotest.test_case "unknown device raises" `Quick (fun () ->
        Alcotest.(check bool) "none" true (Spec.find_opt "tpu" = None));
    Alcotest.test_case "typed accessors reject wrong kind" `Quick (fun () ->
        match Spec.find_gpu "epyc7543" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "paper devices have paper-shaped parameters" `Quick
      (fun () ->
        Alcotest.(check int) "EPYC cores" 32 epyc.cores;
        Alcotest.(check bool) "2080 Ti has more SMs" true (p2080.sms > p1080.sms);
        Alcotest.(check bool) "S10 is the bigger FPGA" true (s10.alms > a10.alms);
        Alcotest.(check bool) "only S10 supports USM" true
          (s10.supports_usm && not a10.supports_usm));
  ]

let cpu_tests =
  [
    Alcotest.test_case "single thread equals reference" `Quick (fun () ->
        let f = Feat_fixtures.make () in
        let r = Cpu_model.time epyc f ~threads:1 in
        Alcotest.(check (float 1e-9)) "t1 = tN at 1 thread" r.t_single
          r.t_parallel);
    Alcotest.test_case "32 threads gives 28-30x on parallel loops" `Quick
      (fun () ->
        let f = Feat_fixtures.make () in
        let r = Cpu_model.time epyc f ~threads:32 in
        Alcotest.(check bool) "paper range" true
          (r.speedup >= 28.0 && r.speedup <= 30.5));
    Alcotest.test_case "sequential loop cannot scale" `Quick (fun () ->
        let f = Feat_fixtures.make ~outer_parallel:false () in
        let r = Cpu_model.time epyc f ~threads:32 in
        Alcotest.(check int) "clamped to 1 thread" 1 r.threads;
        Alcotest.(check (float 1e-6)) "no speedup" 1.0 r.speedup);
    Alcotest.test_case "thread count clamped to cores" `Quick (fun () ->
        let f = Feat_fixtures.make () in
        let r = Cpu_model.time epyc f ~threads:1000 in
        Alcotest.(check int) "32" 32 r.threads);
    Helpers.qtest ~count:50 "speedup is monotone in threads"
      QCheck.(int_range 1 31)
      (fun t ->
        let f = Feat_fixtures.make () in
        let a = Cpu_model.time epyc f ~threads:t in
        let b = Cpu_model.time epyc f ~threads:(t + 1) in
        b.speedup >= a.speedup *. 0.99);
  ]

let gpu_tests =
  [
    Alcotest.test_case "occupancy within [0,1]" `Quick (fun () ->
        let f = Feat_fixtures.make () in
        let r = Gpu_model.time p2080 (Feat_fixtures.design ()) f in
        Alcotest.(check bool) "bounds" true
          (r.occupancy >= 0.0 && r.occupancy <= 1.0));
    Alcotest.test_case "register pressure lowers occupancy" `Quick (fun () ->
        let light = Feat_fixtures.make ~regs:32 () in
        let heavy = Feat_fixtures.make ~regs:255 () in
        let d = Feat_fixtures.design ~blocksize:256 () in
        let rl = Gpu_model.time p2080 d light in
        let rh = Gpu_model.time p2080 d heavy in
        Alcotest.(check bool) "heavy occupancy lower" true
          (rh.occupancy < rl.occupancy);
        Alcotest.(check bool) "heavy not meaningfully faster" true
          (rh.total >= rl.total *. 0.9));
    Alcotest.test_case "huge blocksize with huge registers is infeasible"
      `Quick (fun () ->
        let f = Feat_fixtures.make ~regs:255 () in
        let d = Feat_fixtures.design ~blocksize:1024 () in
        let r = Gpu_model.time p2080 d f in
        Alcotest.(check bool) "infeasible" false r.feasible);
    Alcotest.test_case "small grids underutilise the device" `Quick (fun () ->
        let big = Feat_fixtures.make ~outer_trip:1_000_000.0 () in
        let small = Feat_fixtures.make ~outer_trip:1_000.0 () in
        let d = Feat_fixtures.design () in
        let rb = Gpu_model.time p2080 d big in
        let rs = Gpu_model.time p2080 d small in
        Alcotest.(check bool) "speedup collapses on small grids" true
          (rs.speedup < rb.speedup /. 2.0));
    Alcotest.test_case "pinned memory speeds transfers" `Quick (fun () ->
        let f = Feat_fixtures.make ~bytes_in_per_iter:64.0 () in
        let fast = Gpu_model.time p2080 (Feat_fixtures.design ~pinned:true ()) f in
        let slow = Gpu_model.time p2080 (Feat_fixtures.design ~pinned:false ()) f in
        Alcotest.(check bool) "pinned faster" true
          (fast.t_transfer < slow.t_transfer));
    Alcotest.test_case "intrinsics speed exp-heavy kernels" `Quick (fun () ->
        let f =
          Feat_fixtures.make
            ~ops_per_iter:(Feat_fixtures.ops ~exp_log:10.0 ~fadd:5.0 ())
            ()
        in
        let fast = Gpu_model.time p2080 (Feat_fixtures.design ~intrinsics:true ()) f in
        let slow = Gpu_model.time p2080 (Feat_fixtures.design ~intrinsics:false ()) f in
        Alcotest.(check bool) "intrinsics faster" true
          (fast.t_compute < slow.t_compute));
    Alcotest.test_case "double precision pays the consumer penalty" `Quick
      (fun () ->
        let f = Feat_fixtures.make () in
        let sp = Gpu_model.time p2080 (Feat_fixtures.design ~sp:true ()) f in
        let dp = Gpu_model.time p2080 (Feat_fixtures.design ~sp:false ()) f in
        Alcotest.(check bool) "dp much slower" true
          (dp.t_compute > sp.t_compute *. 8.0));
    Alcotest.test_case "atomics serialise reductions" `Quick (fun () ->
        let f =
          Feat_fixtures.make
            ~ops_per_iter:(Feat_fixtures.ops ~fadd:5.0 ~stores:10.0 ())
            ()
        in
        let plain = Gpu_model.time p2080 (Feat_fixtures.design ~reductions:false ()) f in
        let atomics = Gpu_model.time p2080 (Feat_fixtures.design ~reductions:true ()) f in
        Alcotest.(check bool) "atomics slower" true
          (atomics.t_kernel > plain.t_kernel));
    Alcotest.test_case "gathers outside smem are penalised" `Quick (fun () ->
        let coalesced = Feat_fixtures.make ~bytes_in_per_iter:64.0 () in
        let gathered =
          Feat_fixtures.make ~bytes_in_per_iter:64.0 ~gather_fraction:0.8
            ~gathered_args:[ "t" ]
            ~args:
              [
                {
                  Analysis.Features.af_name = "t";
                  af_footprint = 8_000_000;
                  af_bytes_in = 0.0;
                  af_bytes_out = 0.0;
                };
              ]
            ()
        in
        let d = Feat_fixtures.design () in
        let rc = Gpu_model.time p2080 d coalesced in
        let rg = Gpu_model.time p2080 d gathered in
        Alcotest.(check bool) "gathers slower" true (rg.t_mem > rc.t_mem *. 4.0));
    Helpers.qtest ~count:40 "time positive and finite for feasible designs"
      QCheck.(int_range 5 10)
      (fun log_trip ->
        let f =
          Feat_fixtures.make ~outer_trip:(Float.of_int (1 lsl log_trip)) ()
        in
        let r = Gpu_model.time p2080 (Feat_fixtures.design ()) f in
        (not r.feasible) || (r.total > 0.0 && Float.is_finite r.total));
  ]

let fpga_tests =
  [
    Alcotest.test_case "resources grow linearly with unroll" `Quick (fun () ->
        let f = Feat_fixtures.make () in
        let d = Feat_fixtures.design ~target:Codegen.Design.Fpga_oneapi ~device_id:"stratix10" () in
        let r1 = Fpga_model.resources s10 d f ~unroll:1 in
        let r2 = Fpga_model.resources s10 d f ~unroll:2 in
        let r4 = Fpga_model.resources s10 d f ~unroll:4 in
        Alcotest.(check bool) "monotone" true
          (r1.alms_used < r2.alms_used && r2.alms_used < r4.alms_used));
    Alcotest.test_case "sp costs less area than dp" `Quick (fun () ->
        let f = Feat_fixtures.make () in
        let dsp = Feat_fixtures.design ~target:Codegen.Design.Fpga_oneapi ~sp:true () in
        let ddp = Feat_fixtures.design ~target:Codegen.Design.Fpga_oneapi ~sp:false () in
        let rs = Fpga_model.resources s10 dsp f ~unroll:1 in
        let rd = Fpga_model.resources s10 ddp f ~unroll:1 in
        Alcotest.(check bool) "sp smaller" true (rs.alms_used < rd.alms_used));
    Alcotest.test_case "exp-heavy deep kernels overmap (Rush Larsen shape)"
      `Quick (fun () ->
        let f =
          Feat_fixtures.make ~locals:60
            ~ops_per_iter:
              (Feat_fixtures.ops ~exp_log:30.0 ~fdiv:15.0 ~fadd:80.0
                 ~fmul:60.0 ())
            ()
        in
        let d = Feat_fixtures.design ~target:Codegen.Design.Fpga_oneapi ~sp:true () in
        let ra = Fpga_model.resources a10 d f ~unroll:1 in
        Alcotest.(check bool) "A10 does not fit" false ra.fits);
    Alcotest.test_case "unroll speeds the pipeline" `Quick (fun () ->
        let f = Feat_fixtures.make () in
        let d u = Feat_fixtures.design ~target:Codegen.Design.Fpga_oneapi ~unroll:u () in
        let t1 = (Fpga_model.time s10 (d 1) f).t_pipe in
        let t4 = (Fpga_model.time s10 (d 4) f).t_pipe in
        Alcotest.(check bool) "4x unroll ~4x faster pipe" true
          (t4 < t1 /. 2.0));
    Alcotest.test_case "non-unrollable inner reduction raises II" `Quick
      (fun () ->
        let inner =
          {
            Analysis.Features.il_sid = 1;
            il_static_trip = None;
            il_mean_trip = 100.0;
            il_iters_per_outer = 100.0;
            il_innermost = true;
            il_parallel = false;
            il_has_reduction = true;
            il_fully_unrollable = false;
          }
        in
        let flat = Feat_fixtures.make () in
        let nested = Feat_fixtures.make ~inner_loops:[ inner ] () in
        Alcotest.(check (float 1e-9)) "flat II" 1.0
          (Fpga_model.effective_ii s10 flat);
        Alcotest.(check (float 1e-9)) "nested II" (100.0 *. 6.0)
          (Fpga_model.effective_ii s10 nested));
    Alcotest.test_case "fully unrollable inner loops keep II=1" `Quick
      (fun () ->
        let inner =
          {
            Analysis.Features.il_sid = 1;
            il_static_trip = Some 16;
            il_mean_trip = 16.0;
            il_iters_per_outer = 16.0;
            il_innermost = true;
            il_parallel = false;
            il_has_reduction = true;
            il_fully_unrollable = true;
          }
        in
        let f = Feat_fixtures.make ~inner_loops:[ inner ] () in
        Alcotest.(check (float 1e-9)) "II stays 1" 1.0
          (Fpga_model.effective_ii s10 f));
    Alcotest.test_case "zero-copy overlaps transfer on the S10" `Quick
      (fun () ->
        let f = Feat_fixtures.make ~bytes_in_per_iter:64.0 () in
        let buf = Feat_fixtures.design ~target:Codegen.Design.Fpga_oneapi ~zero_copy:false () in
        let usm = Feat_fixtures.design ~target:Codegen.Design.Fpga_oneapi ~zero_copy:true () in
        let rb = Fpga_model.time s10 buf f in
        let ru = Fpga_model.time s10 usm f in
        Alcotest.(check bool) "zero-copy faster" true (ru.t_call < rb.t_call));
    Alcotest.test_case "unsynthesizable design reports infinite time" `Quick
      (fun () ->
        let f =
          Feat_fixtures.make ~locals:80
            ~ops_per_iter:(Feat_fixtures.ops ~exp_log:60.0 ~fdiv:30.0 ())
            ()
        in
        let d = Feat_fixtures.design ~target:Codegen.Design.Fpga_oneapi ~device_id:"arria10" () in
        let r = Fpga_model.time a10 d f in
        Alcotest.(check bool) "infinite" true (r.total = infinity);
        Alcotest.(check (float 0.0)) "no speedup" 0.0 r.speedup);
    Alcotest.test_case "BRAM replication limits unroll via utilisation" `Quick
      (fun () ->
        let f = Feat_fixtures.make ~inner_read_bytes:4_000_000 () in
        let d = Feat_fixtures.design ~target:Codegen.Design.Fpga_oneapi () in
        let r1 = Fpga_model.resources a10 d f ~unroll:1 in
        let r2 = Fpga_model.resources a10 d f ~unroll:2 in
        Alcotest.(check bool) "u=1 fits" true r1.fits;
        Alcotest.(check bool) "u=2 does not" false r2.fits);
    Helpers.qtest ~count:30 "utilization consistent with fits flag"
      QCheck.(int_range 1 64)
      (fun u ->
        let f = Feat_fixtures.make () in
        let d = Feat_fixtures.design ~target:Codegen.Design.Fpga_oneapi () in
        let r = Fpga_model.resources s10 d f ~unroll:u in
        r.fits = (r.utilization <= 1.0));
  ]

let transfer_tests =
  [
    Alcotest.test_case "estimated seconds scale with bytes" `Quick (fun () ->
        let small = Feat_fixtures.make ~bytes_in_per_iter:8.0 () in
        let big = Feat_fixtures.make ~bytes_in_per_iter:80.0 () in
        Alcotest.(check bool) "more bytes, more time" true
          (Transfer.estimated_seconds big > Transfer.estimated_seconds small));
    Alcotest.test_case "transfer dominates cheap kernels" `Quick (fun () ->
        let cheap =
          Feat_fixtures.make ~cpu_cycles_per_iter:5.0 ~bytes_in_per_iter:800.0
            ()
        in
        Alcotest.(check bool) "dominates" true (Transfer.transfer_dominates cheap);
        let heavy =
          Feat_fixtures.make ~cpu_cycles_per_iter:10_000.0
            ~bytes_in_per_iter:8.0 ()
        in
        Alcotest.(check bool) "does not dominate" false
          (Transfer.transfer_dominates heavy));
  ]

let simulate_tests =
  [
    Alcotest.test_case "dispatch selects the right model" `Quick (fun () ->
        let f = Feat_fixtures.make () in
        let cpu_r =
          Simulate.run
            (Feat_fixtures.design ~target:Codegen.Design.Cpu_openmp
               ~device_id:"epyc7543" ())
            f
        in
        (match cpu_r.detail with
        | Simulate.Cpu_detail _ -> ()
        | _ -> Alcotest.fail "expected cpu detail");
        let gpu_r = Simulate.run (Feat_fixtures.design ()) f in
        match gpu_r.detail with
        | Simulate.Gpu_detail _ -> ()
        | _ -> Alcotest.fail "expected gpu detail");
    Alcotest.test_case "unsynthesizable designs are infeasible" `Quick
      (fun () ->
        let f = Feat_fixtures.make () in
        let d =
          Feat_fixtures.design ~target:Codegen.Design.Fpga_oneapi
            ~device_id:"arria10" ()
        in
        let d = { d with Codegen.Design.synthesizable = false } in
        let r = Simulate.run d f in
        Alcotest.(check bool) "infeasible" false r.feasible);
    Alcotest.test_case "speedup consistency: ref / seconds" `Quick (fun () ->
        let f = Feat_fixtures.make () in
        let r = Simulate.run (Feat_fixtures.design ()) f in
        let expected = Simulate.reference_seconds f /. r.seconds in
        Alcotest.(check (float 1e-6)) "consistent" expected r.speedup);
  ]

let () =
  Alcotest.run "devices"
    [
      ("spec", spec_tests);
      ("cpu", cpu_tests);
      ("gpu", gpu_tests);
      ("fpga", fpga_tests);
      ("transfer", transfer_tests);
      ("simulate", simulate_tests);
    ]
