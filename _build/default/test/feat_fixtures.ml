(** Synthetic kernel feature vectors for device-model and DSE tests. *)

open Analysis

let ops ?(fadd = 0.0) ?(fmul = 0.0) ?(fdiv = 0.0) ?(sqrt = 0.0)
    ?(exp_log = 0.0) ?(trig = 0.0) ?(power = 0.0) ?(int_ops = 0.0)
    ?(loads = 0.0) ?(stores = 0.0) ?(cheap = 0.0) () : Opcount.t =
  {
    fadd;
    fmul;
    fdiv;
    sqrt;
    exp_log;
    trig;
    power;
    int_ops;
    loads;
    stores;
    cheap_math = cheap;
  }

(** A plain compute-bound parallel kernel: N iterations, modest per-iter
    work, small transfers. *)
let make ?(kernel = "k") ?(calls = 1) ?(outer_trip = 1_000_000.0)
    ?(flops_per_iter = 50.0) ?(bytes_in_per_iter = 8.0)
    ?(bytes_out_per_iter = 8.0) ?(cpu_cycles_per_iter = 100.0)
    ?(regs = 40) ?(locals = 6) ?(gather_fraction = 0.0) ?(gathered_args = [])
    ?(inner_loops = []) ?(outer_parallel = true)
    ?(outer_has_reductions = false) ?(ops_per_iter = ops ~fadd:25.0 ~fmul:25.0 ~loads:2.0 ~stores:1.0 ())
    ?hw_ops ?(inner_read_bytes = 0) ?(args = []) () : Features.t =
  let calls_f = float_of_int calls in
  ignore calls_f;
  {
    kernel;
    calls;
    outer_trip;
    flops_per_call = flops_per_iter *. outer_trip;
    sfu_per_call = 0.0;
    bytes_accessed_per_call =
      (bytes_in_per_iter +. bytes_out_per_iter) *. outer_trip;
    bytes_in_per_call = bytes_in_per_iter *. outer_trip;
    bytes_out_per_call = bytes_out_per_iter *. outer_trip;
    cpu_cycles_per_call = cpu_cycles_per_iter *. outer_trip;
    ops_per_iter;
    hw_ops_per_iter = Option.value hw_ops ~default:ops_per_iter;
    inner_read_bytes;
    outer_parallel;
    outer_has_reductions;
    inner_loops;
    regs_estimate = regs;
    locals_count = locals;
    gather_fraction;
    gathered_args;
    args;
    intensity =
      {
        Intensity.flops = flops_per_iter;
        bytes = bytes_in_per_iter +. bytes_out_per_iter;
        flops_per_byte =
          flops_per_iter /. (bytes_in_per_iter +. bytes_out_per_iter);
      };
    no_alias = true;
  }

(** A design record for timing tests without running a generator. *)
let design ?(target = Codegen.Design.Gpu_hip) ?(device_id = "rtx2080ti")
    ?(blocksize = 256) ?(unroll = 1) ?(threads = 32) ?(sp = true)
    ?(pinned = true) ?(zero_copy = false) ?(smem = false)
    ?(intrinsics = true) ?(reductions = false) () : Codegen.Design.t =
  (* a real (tiny) program so source-editing DSE helpers have a kernel
     loop to annotate *)
  let p =
    Minic.Parser.parse_program
      {|
void k(double* a, int n) {
  for (int i = 0; i < n; i++) {
    a[i] = a[i] + 1.0;
  }
}
int main() {
  double a[4];
  k(a, 4);
  return 0;
}
|}
  in
  let d =
    Codegen.Design.make ~name:"test" ~target ~device_id ~program:p ~kernel:"k"
      ~device_kernel:"k"
  in
  {
    d with
    Codegen.Design.blocksize;
    unroll_factor = unroll;
    num_threads = threads;
    single_precision = sp;
    pinned_memory = pinned;
    zero_copy;
    shared_mem = smem;
    gpu_intrinsics = intrinsics;
    reductions_removed = reductions;
  }
