(** Tests for the PSA core: flow combinators, branch points, the Fig. 3
    strategy, cost/budget evaluation, and the standard flow end-to-end on
    small programs. *)

let parse = Minic.Parser.parse_program

(* small fast application for end-to-end flow runs: a compute-bound
   parallel hotspot that the Fig. 3 strategy sends to the GPU *)
let app_src n =
  Printf.sprintf
    {|
int main() {
  int n = %d;
  double a[n];
  double b[n];
  for (int i = 0; i < n; i++) { a[i] = rand01(); }
  for (int i = 0; i < n; i++) {
    double t = a[i];
    double acc = 0.0;
    for (int r = 0; r < 32; r++) {
      acc = acc + t * t + sqrt(t + (double)r) + exp(t * 0.1);
    }
    b[i] = acc;
  }
  double s = 0.0;
  for (int i = 0; i < n; i++) { s += b[i]; }
  print_float(s);
  return 0;
}
|}
    n

let ctx ?x_threshold ?budget () =
  Psa.Context.make ~benchmark:"testapp" ~profile_n:32
    ~secondary:(64, parse (app_src 64))
    ~eval_n:100000 ?x_threshold ?budget (parse (app_src 32))

(* ------------------------------------------------------------------ *)
(* Flow combinators                                                    *)
(* ------------------------------------------------------------------ *)

let mark name =
  Psa.Task.make name Psa.Task.Transform (fun c -> Psa.Context.log name c)

let flow_tests =
  [
    Alcotest.test_case "seq threads the context" `Quick (fun () ->
        let f = Psa.Flow.seq [ Psa.Flow.task (mark "a"); Psa.Flow.task (mark "b") ] in
        match Psa.Flow.run f (ctx ()) with
        | [ c ] ->
            let ev = Psa.Context.events c in
            Alcotest.(check bool) "a then b" true
              (List.mem "a" ev && List.mem "b" ev)
        | _ -> Alcotest.fail "expected one context");
    Alcotest.test_case "uninformed branch fans out" `Quick (fun () ->
        let f =
          Psa.Flow.branch "X" ~select:Psa.Flow.select_all
            [ ("p", Psa.Flow.task (mark "p")); ("q", Psa.Flow.task (mark "q")) ]
        in
        Alcotest.(check int) "two leaves" 2
          (List.length (Psa.Flow.run f (ctx ()))));
    Alcotest.test_case "informed branch takes one path" `Quick (fun () ->
        let f =
          Psa.Flow.branch "X"
            ~select:(fun _ -> Psa.Flow.Paths [ "q" ])
            [ ("p", Psa.Flow.task (mark "p")); ("q", Psa.Flow.task (mark "q")) ]
        in
        match Psa.Flow.run f (ctx ()) with
        | [ c ] ->
            Alcotest.(check bool) "took q" true
              (List.mem "q" (Psa.Context.events c))
        | _ -> Alcotest.fail "expected one context");
    Alcotest.test_case "stop terminates without running paths" `Quick
      (fun () ->
        let f =
          Psa.Flow.branch "X"
            ~select:(fun _ -> Psa.Flow.Stop "nothing profits")
            [ ("p", Psa.Flow.task (mark "p")) ]
        in
        match Psa.Flow.run f (ctx ()) with
        | [ c ] ->
            Alcotest.(check bool) "p not run" false
              (List.mem "p" (Psa.Context.events c))
        | _ -> Alcotest.fail "expected one context");
    Alcotest.test_case "unknown path raises" `Quick (fun () ->
        let f =
          Psa.Flow.branch "X"
            ~select:(fun _ -> Psa.Flow.Paths [ "nope" ])
            [ ("p", Psa.Flow.task (mark "p")) ]
        in
        match Psa.Flow.run f (ctx ()) with
        | exception Psa.Flow.Unknown_path ("X", "nope") -> ()
        | _ -> Alcotest.fail "expected Unknown_path");
    Alcotest.test_case "override_selection rewires a named branch" `Quick
      (fun () ->
        let f =
          Psa.Flow.branch "X" ~select:Psa.Flow.select_all
            [ ("p", Psa.Flow.task (mark "p")); ("q", Psa.Flow.task (mark "q")) ]
        in
        let f' =
          Psa.Flow.override_selection ~name:"X"
            ~select:(fun _ -> Psa.Flow.Paths [ "p" ])
            f
        in
        Alcotest.(check int) "one leaf now" 1
          (List.length (Psa.Flow.run f' (ctx ()))));
    Alcotest.test_case "tasks lists the whole repository" `Quick (fun () ->
        let names =
          List.map (fun (t : Psa.Task.t) -> t.name)
            (Psa.Flow.tasks (Psa.Std_flow.flow ()))
        in
        List.iter
          (fun expected ->
            Alcotest.(check bool) expected true (List.mem expected names))
          [
            "Identify Hotspot Loops";
            "Generate HIP Design";
            "Generate oneAPI Design";
            "Generate OpenMP Design";
            "Zero-Copy Data Transfer";
            "OMP Num. Threads DSE";
          ]);
  ]

(* ------------------------------------------------------------------ *)
(* Strategy                                                            *)
(* ------------------------------------------------------------------ *)

let strategy_ctx f =
  {
    (ctx ()) with
    Psa.Context.eval_features = Some f;
    features = Some f;
    kernel = Some "k";
  }

let il ~unrollable ~trip =
  {
    Analysis.Features.il_sid = 1;
    il_static_trip = (if unrollable then Some trip else None);
    il_mean_trip = float_of_int trip;
    il_iters_per_outer = float_of_int trip;
    il_innermost = true;
    il_parallel = false;
    il_has_reduction = true;
    il_fully_unrollable = unrollable;
  }

let decision f =
  (Psa.Strategy.fig3_explain (strategy_ctx f)).Psa.Strategy.decision

let strategy_tests =
  [
    Alcotest.test_case "memory-bound parallel -> CPU" `Quick (fun () ->
        let f =
          Feat_fixtures.make ~flops_per_iter:5.0 ~bytes_in_per_iter:100.0 ()
        in
        Alcotest.(check bool) "cpu" true (decision f = Psa.Strategy.Cpu_path));
    Alcotest.test_case "memory-bound sequential -> no offload" `Quick
      (fun () ->
        let f =
          Feat_fixtures.make ~flops_per_iter:5.0 ~bytes_in_per_iter:100.0
            ~outer_parallel:false ()
        in
        match decision f with
        | Psa.Strategy.No_offload _ -> ()
        | d ->
            Alcotest.failf "expected no offload, got %s"
              (Psa.Strategy.decision_to_string d));
    Alcotest.test_case "compute-bound parallel, no inner deps -> GPU" `Quick
      (fun () ->
        let f = Feat_fixtures.make ~flops_per_iter:500.0 () in
        Alcotest.(check bool) "gpu" true (decision f = Psa.Strategy.Gpu_path));
    Alcotest.test_case
      "compute-bound with fully unrollable dependent inner loops -> FPGA"
      `Quick (fun () ->
        let f =
          Feat_fixtures.make ~flops_per_iter:500.0
            ~inner_loops:[ il ~unrollable:true ~trip:16 ]
            ()
        in
        Alcotest.(check bool) "fpga" true (decision f = Psa.Strategy.Fpga_path));
    Alcotest.test_case
      "compute-bound with non-unrollable inner loops -> GPU" `Quick (fun () ->
        let f =
          Feat_fixtures.make ~flops_per_iter:500.0
            ~inner_loops:[ il ~unrollable:false ~trip:1000 ]
            ()
        in
        Alcotest.(check bool) "gpu" true (decision f = Psa.Strategy.Gpu_path));
    Alcotest.test_case "sequential compute-bound -> FPGA" `Quick (fun () ->
        let f =
          Feat_fixtures.make ~flops_per_iter:500.0 ~outer_parallel:false ()
        in
        Alcotest.(check bool) "fpga" true (decision f = Psa.Strategy.Fpga_path));
    Alcotest.test_case "transfer domination forces CPU" `Quick (fun () ->
        (* flop-rich per transferred byte, but so little work per call that
           transfer time exceeds CPU time *)
        let f =
          Feat_fixtures.make ~flops_per_iter:500.0 ~cpu_cycles_per_iter:1.0
            ~bytes_in_per_iter:2000.0 ()
        in
        let e = Psa.Strategy.fig3_explain (strategy_ctx f) in
        Alcotest.(check bool) "transfer dominates" true e.transfer_dominates;
        Alcotest.(check bool) "cpu" true (e.decision = Psa.Strategy.Cpu_path));
    Alcotest.test_case "threshold X is honoured" `Quick (fun () ->
        let f =
          Feat_fixtures.make ~flops_per_iter:50.0 ~bytes_in_per_iter:8.0
            ~bytes_out_per_iter:2.0 ()
        in
        (* intensity = 5 *)
        let low = { (strategy_ctx f) with Psa.Context.x_threshold = 2.0 } in
        let high = { (strategy_ctx f) with Psa.Context.x_threshold = 20.0 } in
        Alcotest.(check bool) "above X: offload" true
          ((Psa.Strategy.fig3_explain low).decision = Psa.Strategy.Gpu_path);
        Alcotest.(check bool) "below X: cpu" true
          ((Psa.Strategy.fig3_explain high).decision = Psa.Strategy.Cpu_path));
  ]

(* ------------------------------------------------------------------ *)
(* Cost                                                                *)
(* ------------------------------------------------------------------ *)

let cost_tests =
  [
    Alcotest.test_case "cost = price * seconds" `Quick (fun () ->
        let f = Feat_fixtures.make () in
        let r = Devices.Simulate.run (Feat_fixtures.design ()) f in
        let c = Psa.Cost.of_result r in
        Alcotest.(check (float 1e-12)) "price model"
          (Psa.Cost.price_per_second "rtx2080ti" *. r.seconds)
          c);
    Alcotest.test_case "breakeven ratio matches relative cost" `Quick
      (fun () ->
        let seconds_a = 2.0 and seconds_b = 5.0 in
        let ratio = Psa.Cost.breakeven_ratio ~seconds_a ~seconds_b in
        Alcotest.(check (float 1e-9)) "2.5" 2.5 ratio;
        Alcotest.(check (float 1e-9)) "equal cost at breakeven" 1.0
          (Psa.Cost.relative_cost ~price_ratio:ratio ~seconds_a ~seconds_b));
    Alcotest.test_case "budget verdicts" `Quick (fun () ->
        let f = Feat_fixtures.make () in
        let r = Devices.Simulate.run (Feat_fixtures.design ()) f in
        let c = { (ctx ()) with Psa.Context.budget = Some 1e9 } in
        (match Psa.Cost.check_budget c r with
        | Psa.Cost.Within_budget _ -> ()
        | _ -> Alcotest.fail "expected within budget");
        let c = { (ctx ()) with Psa.Context.budget = Some 1e-18 } in
        match Psa.Cost.check_budget c r with
        | Psa.Cost.Over_budget _ -> ()
        | _ -> Alcotest.fail "expected over budget");
    Alcotest.test_case "table II: this work covers P, M, O, multi-target"
      `Quick (fun () ->
        let this =
          List.find
            (fun (r : Psa.Report.approach_row) -> r.approach = "This Work")
            Psa.Report.table2
        in
        Alcotest.(check bool) "P" true this.partition;
        Alcotest.(check bool) "M" true this.map;
        Alcotest.(check bool) "O" true this.optimise;
        Alcotest.(check bool) "multi" true this.multiple_targets;
        Alcotest.(check string) "scope" "Full App." this.scope);
  ]

(* ------------------------------------------------------------------ *)
(* End-to-end standard flow                                            *)
(* ------------------------------------------------------------------ *)

let std_flow_tests =
  [
    Alcotest.test_case "uninformed flow emits all five designs" `Slow
      (fun () ->
        let o = Psa.Std_flow.run_uninformed (ctx ()) in
        let names =
          List.map (fun (r : Devices.Simulate.result) -> r.design.name)
            o.results
        in
        List.iter
          (fun d -> Alcotest.(check bool) d true (List.mem d names))
          [
            "omp_epyc7543"; "hip_gtx1080ti"; "hip_rtx2080ti";
            "oneapi_arria10"; "oneapi_stratix10";
          ]);
    Alcotest.test_case "informed flow selects one target family" `Slow
      (fun () ->
        let o = Psa.Std_flow.run_informed (ctx ()) in
        let targets =
          List.sort_uniq compare
            (List.map
               (fun (r : Devices.Simulate.result) -> r.design.target)
               o.results)
        in
        Alcotest.(check int) "one family" 1 (List.length targets));
    Alcotest.test_case "generated designs carry applied-task flags" `Slow
      (fun () ->
        let o = Psa.Std_flow.run_uninformed (ctx ()) in
        List.iter
          (fun (r : Devices.Simulate.result) ->
            match r.design.target with
            | Codegen.Design.Gpu_hip ->
                Alcotest.(check bool) "pinned" true r.design.pinned_memory;
                Alcotest.(check bool) "sp" true r.design.single_precision
            | Codegen.Design.Fpga_oneapi ->
                Alcotest.(check bool) "sp" true r.design.single_precision;
                if r.design.device_id = "stratix10" then
                  Alcotest.(check bool) "zero copy" true r.design.zero_copy
            | Codegen.Design.Cpu_openmp ->
                Alcotest.(check bool) "threads chosen" true
                  (r.design.num_threads > 1))
          o.results);
    Alcotest.test_case "budget feedback falls back to a cheaper target" `Slow
      (fun () ->
        (* informed choice is the GPU; an impossibly small budget forces
           the feedback edge to revise the decision *)
        let o = Psa.Std_flow.run_informed ~budget:1e-15 (ctx ()) in
        Alcotest.(check bool) "feedback logged" true
          (List.exists
             (fun l ->
               Astring_contains.contains l "budget feedback")
             o.log));
    Alcotest.test_case "every design's source exports and reparses" `Slow
      (fun () ->
        let o = Psa.Std_flow.run_uninformed (ctx ()) in
        List.iter
          (fun (r : Devices.Simulate.result) ->
            let s = Codegen.Design.export r.design in
            ignore (Minic.Parser.parse_program s))
          o.results);
  ]

(* ------------------------------------------------------------------ *)
(* Model-based strategy                                                *)
(* ------------------------------------------------------------------ *)

let model_tests =
  [
    Alcotest.test_case "probes cover feasible targets" `Quick (fun () ->
        let f = Feat_fixtures.make ~flops_per_iter:500.0 () in
        let probes = Psa.Strategy.probe_targets (strategy_ctx f) in
        let paths = List.map fst probes in
        List.iter
          (fun p ->
            Alcotest.(check bool) (p ^ " probed") true (List.mem p paths))
          [ "cpu"; "gpu"; "fpga" ]);
    Alcotest.test_case "performance objective picks the fastest probe" `Quick
      (fun () ->
        let f = Feat_fixtures.make ~flops_per_iter:500.0 () in
        let ctx = strategy_ctx f in
        let probes = Psa.Strategy.probe_targets ctx in
        let fastest =
          List.fold_left
            (fun (bp, bs) (p, (r : Devices.Simulate.result)) ->
              if r.seconds < bs then (p, r.seconds) else (bp, bs))
            ("", infinity) probes
          |> fst
        in
        match Psa.Strategy.model_based ctx with
        | Psa.Flow.Paths [ p ] -> Alcotest.(check string) "fastest" fastest p
        | _ -> Alcotest.fail "expected one path");
    Alcotest.test_case "objectives can disagree" `Quick (fun () ->
        (* scoring the same result differs across objectives *)
        let f = Feat_fixtures.make () in
        let r = Devices.Simulate.run (Feat_fixtures.design ()) f in
        let perf = Psa.Strategy.score Psa.Strategy.Performance r in
        let cost = Psa.Strategy.score Psa.Strategy.Monetary_cost r in
        let energy = Psa.Strategy.score Psa.Strategy.Energy r in
        Alcotest.(check (float 1e-12)) "cost = price * s"
          (Psa.Cost.of_result r) cost;
        Alcotest.(check (float 1e-12)) "energy = watts * s"
          (Devices.Spec.board_watts_of_id "rtx2080ti" *. perf)
          energy);
    Alcotest.test_case "agrees with Fig. 3 on the five benchmarks" `Slow
      (fun () ->
        (* the paper's heuristic matches model-based performance selection
           on all five benchmark feature vectors *)
        List.iter
          (fun (app : Benchmarks.Bench_app.t) ->
            let base = Benchmarks.Bench_app.context app in
            let ctxs = Psa.Flow.run Psa.Std_flow.target_independent base in
            let c = List.hd ctxs in
            let fig3 = Psa.Strategy.fig3 c in
            let model = Psa.Strategy.model_based c in
            Alcotest.(check bool)
              (app.id ^ ": strategies agree")
              true (fig3 = model))
          Benchmarks.Registry.all);
  ]

(* ------------------------------------------------------------------ *)
(* Flow visualisation                                                  *)
(* ------------------------------------------------------------------ *)

let report_tests =
  [
    Alcotest.test_case "ascii rendering shows tasks and branches" `Quick
      (fun () ->
        let s = Psa.Report.flow_to_ascii (Psa.Std_flow.flow ()) in
        List.iter
          (fun needle ->
            Alcotest.(check bool) needle true
              (Astring_contains.contains s needle))
          [
            "<branch A>"; "<branch B>"; "<branch C>";
            "[A*] Identify Hotspot Loops"; "[CG] Generate HIP Design";
            "[O] RTX 2080 Blocksize DSE"; "fpga:"; "cpu:"; "gpu:";
          ]);
    Alcotest.test_case "dot rendering is a digraph with branch diamonds"
      `Quick (fun () ->
        let s = Psa.Report.flow_to_dot (Psa.Std_flow.flow ()) in
        Alcotest.(check bool) "digraph" true
          (Astring_contains.contains s "digraph psa_flow {");
        Alcotest.(check bool) "diamond" true
          (Astring_contains.contains s "shape=diamond");
        Alcotest.(check bool) "closed" true
          (Astring_contains.contains s "}"));
    Alcotest.test_case "extra app jacobi hits the terminate leaf" `Slow
      (fun () ->
        let app = Benchmarks.Registry.find "jacobi" in
        let o = Psa.Std_flow.run_informed (Benchmarks.Bench_app.context app) in
        Alcotest.(check int) "no designs" 0 (List.length o.results);
        Alcotest.(check bool) "stop logged" true
          (List.exists
             (fun l -> Astring_contains.contains l "branch A: stop")
             o.log));
  ]

let () =
  Alcotest.run "psa"
    [
      ("flow", flow_tests);
      ("strategy", strategy_tests);
      ("model_based", model_tests);
      ("cost", cost_tests);
      ("report", report_tests);
      ("std_flow", std_flow_tests);
    ]
