(** Tests for the code generators: the OpenMP, HIP and oneAPI designs must
    be structurally complete, lenient-well-typed, re-parseable, and carry
    the right knobs/flags; Table I's LOC deltas must behave. *)

open Codegen

let parse = Minic.Parser.parse_program

(** Extracted-kernel fixture shared by the generator tests. *)
let fixture () =
  let p = parse Helpers.vec_scale_src in
  let h = Option.get (Analysis.Hotspot.detect p) in
  let ex = Transforms.Extract.hotspot p ~loop_sid:h.loop_sid in
  (p, ex.program, ex.kernel_name)

let data_for p kernel = Analysis.Data_inout.analyze p ~kernel

let well_formed (d : Design.t) =
  (* lenient typing (management calls are unknown) and re-parse *)
  Minic.Typecheck.check_program ~allow_unknown_calls:true d.program;
  let s = Design.export d in
  let p2 = Minic.Parser.parse_program s in
  Alcotest.(check int) "function count survives reparse"
    (List.length d.program.funcs)
    (List.length p2.funcs)

let openmp_tests =
  [
    Alcotest.test_case "design is well-formed" `Quick (fun () ->
        let _, ex, kernel = fixture () in
        well_formed (Openmp_gen.generate ex ~kernel));
    Alcotest.test_case "pragma present and runtime setup inserted" `Quick
      (fun () ->
        let _, ex, kernel = fixture () in
        let d = Openmp_gen.generate ex ~kernel in
        let s = Design.export d in
        Alcotest.(check bool) "parallel for" true
          (Astring_contains.contains s "#pragma omp parallel for");
        Alcotest.(check bool) "omp_set_dynamic" true
          (Astring_contains.contains s "omp_set_dynamic"));
    Alcotest.test_case "omp design adds very few lines (Table I)" `Quick
      (fun () ->
        let reference, ex, kernel = fixture () in
        let d = Openmp_gen.generate ex ~kernel in
        let pct = Design.loc_delta_percent ~reference d in
        Alcotest.(check bool) "positive" true (pct > 0.0);
        Alcotest.(check bool) "small (< 30%)" true (pct < 30.0));
    Alcotest.test_case "set_num_threads updates knob and source" `Quick
      (fun () ->
        let _, ex, kernel = fixture () in
        let d = Openmp_gen.set_num_threads (Openmp_gen.generate ex ~kernel) 32 in
        Alcotest.(check int) "knob" 32 d.num_threads;
        Alcotest.(check bool) "clause in source" true
          (Astring_contains.contains (Design.export d) "num_threads(32)"));
  ]

let hip_tests =
  [
    Alcotest.test_case "design is well-formed" `Quick (fun () ->
        let _, ex, kernel = fixture () in
        well_formed (Hip_gen.generate ~data:(data_for ex kernel) ex ~kernel));
    Alcotest.test_case "device kernel and wrapper structure" `Quick (fun () ->
        let _, ex, kernel = fixture () in
        let d = Hip_gen.generate ~data:(data_for ex kernel) ex ~kernel in
        Alcotest.(check string) "device kernel name" (kernel ^ "_gpu")
          d.device_kernel;
        let s = Design.export d in
        Alcotest.(check bool) "thread id" true
          (Astring_contains.contains s "hip_global_thread_id()");
        Alcotest.(check bool) "malloc" true
          (Astring_contains.contains s "hipMalloc");
        Alcotest.(check bool) "launch" true
          (Astring_contains.contains s "hipLaunchKernelGGL_");
        Alcotest.(check bool) "sync" true
          (Astring_contains.contains s "hipDeviceSynchronize");
        Alcotest.(check bool) "free" true
          (Astring_contains.contains s "hipFree"));
    Alcotest.test_case "transfers follow data analysis" `Quick (fun () ->
        (* a: read-only -> HtoD only; b: write-only -> DtoH only *)
        let _, ex, kernel = fixture () in
        let d = Hip_gen.generate ~data:(data_for ex kernel) ex ~kernel in
        let s = Design.export d in
        Alcotest.(check bool) "copies in a" true
          (Astring_contains.contains s "hipMemcpyHtoD(d_a, a");
        Alcotest.(check bool) "does not copy in b" false
          (Astring_contains.contains s "hipMemcpyHtoD(d_b, b");
        Alcotest.(check bool) "copies out b" true
          (Astring_contains.contains s "hipMemcpyDtoH(b, d_b");
        Alcotest.(check bool) "does not copy out a" false
          (Astring_contains.contains s "hipMemcpyDtoH(a, d_a"));
    Alcotest.test_case "main is untouched (wrapper keeps the name)" `Quick
      (fun () ->
        let _, ex, kernel = fixture () in
        let d = Hip_gen.generate ~data:(data_for ex kernel) ex ~kernel in
        Alcotest.(check bool) "main still calls the kernel name" true
          (List.mem kernel (Artisan.Query.callees d.program "main")));
    Alcotest.test_case "pinned memory task adds registration" `Quick (fun () ->
        let _, ex, kernel = fixture () in
        let d = Hip_gen.generate ~data:(data_for ex kernel) ex ~kernel in
        let d' = Hip_gen.employ_pinned_memory d in
        Alcotest.(check bool) "flag" true d'.pinned_memory;
        let s = Design.export d' in
        Alcotest.(check bool) "register" true
          (Astring_contains.contains s "hipHostRegister");
        Alcotest.(check bool) "unregister" true
          (Astring_contains.contains s "hipHostUnregister"));
    Alcotest.test_case "shared-mem staging targets broadcast arrays" `Quick
      (fun () ->
        (* kernel reading a table with a non-thread index gets staged *)
        let src =
          {|
void k(double* out, double* w, int n) {
  for (int i = 0; i < n; i++) {
    double s = 0.0;
    for (int j = 0; j < 8; j++) {
      s += w[j];
    }
    out[i] = s;
  }
}
int main() {
  double out[16]; double w[8];
  for (int j = 0; j < 8; j++) { w[j] = rand01(); }
  k(out, w, 16);
  print_float(out[0]);
  return 0;
}
|}
        in
        let p = parse src in
        let d = Hip_gen.generate ~data:(data_for p "k") p ~kernel:"k" in
        let d' = Hip_gen.introduce_shared_mem d in
        Alcotest.(check bool) "flag" true d'.shared_mem;
        let s = Design.export d' in
        Alcotest.(check bool) "smem buffer" true
          (Astring_contains.contains s "__smem_w");
        Alcotest.(check bool) "syncthreads" true
          (Astring_contains.contains s "hip_syncthreads"));
    Alcotest.test_case "no staging when every read is thread-indexed" `Quick
      (fun () ->
        let _, ex, kernel = fixture () in
        let d = Hip_gen.generate ~data:(data_for ex kernel) ex ~kernel in
        let d' = Hip_gen.introduce_shared_mem d in
        Alcotest.(check bool) "no smem" false d'.shared_mem);
    Alcotest.test_case "atomics for annotated array reductions" `Quick
      (fun () ->
        let p = parse Helpers.histogram_src in
        let p, _ =
          Transforms.Reduction.remove_array_dependencies p ~kernel:"hist"
        in
        let d = Hip_gen.generate ~data:(data_for p "hist") p ~kernel:"hist" in
        Alcotest.(check bool) "flag" true d.reductions_removed;
        Alcotest.(check bool) "atomic add call" true
          (Astring_contains.contains (Design.export d) "hip_atomic_add(bins"));
    Alcotest.test_case "set_blocksize rewrites the constant" `Quick (fun () ->
        let _, ex, kernel = fixture () in
        let d = Hip_gen.generate ~data:(data_for ex kernel) ex ~kernel in
        let d' = Hip_gen.set_blocksize d 512 in
        Alcotest.(check int) "knob" 512 d'.blocksize;
        Alcotest.(check bool) "source updated" true
          (Astring_contains.contains (Design.export d') "__blocksize = 512"));
    Alcotest.test_case "sp + intrinsics pipeline on device kernel" `Quick
      (fun () ->
        let p = parse Helpers.kernel_src in
        let d = Hip_gen.generate ~data:(data_for p "work") p ~kernel:"work" in
        let d = Hip_gen.employ_single_precision d in
        let d = Hip_gen.employ_intrinsics d in
        Alcotest.(check bool) "sp flag" true d.single_precision;
        Alcotest.(check bool) "intrinsics flag" true d.gpu_intrinsics;
        Alcotest.(check bool) "__expf used" true
          (Astring_contains.contains (Design.export d) "__expf("));
  ]

let oneapi_tests =
  [
    Alcotest.test_case "design is well-formed" `Quick (fun () ->
        let _, ex, kernel = fixture () in
        well_formed (Oneapi_gen.generate ~data:(data_for ex kernel) ex ~kernel));
    Alcotest.test_case "queue, buffers, submit, teardown" `Quick (fun () ->
        let _, ex, kernel = fixture () in
        let d = Oneapi_gen.generate ~data:(data_for ex kernel) ex ~kernel in
        let s = Design.export d in
        List.iter
          (fun needle ->
            Alcotest.(check bool) needle true
              (Astring_contains.contains s needle))
          [
            "sycl_fpga_queue_create";
            "sycl_buffer_create";
            "sycl_submit_";
            "sycl_event_wait";
            "sycl_buffer_copy_back";
            "sycl_buffer_destroy";
            "sycl_queue_destroy";
          ]);
    Alcotest.test_case "fpga kernel keeps the pipelined loop" `Quick (fun () ->
        let _, ex, kernel = fixture () in
        let d = Oneapi_gen.generate ~data:(data_for ex kernel) ex ~kernel in
        let s = Design.export d in
        Alcotest.(check bool) "pipeline pragma" true
          (Astring_contains.contains s "#pragma fpga pipeline");
        let f = Minic.Ast.find_func d.program d.device_kernel in
        match f.fbody with
        | [ { snode = Minic.Ast.For _; _ } ] -> ()
        | _ -> Alcotest.fail "kernel loop not preserved");
    Alcotest.test_case "zero-copy swaps buffers for USM" `Quick (fun () ->
        let _, ex, kernel = fixture () in
        let d = Oneapi_gen.generate ~data:(data_for ex kernel) ex ~kernel in
        let d' = Oneapi_gen.employ_zero_copy ~data:(data_for ex kernel) d in
        Alcotest.(check bool) "flag" true d'.zero_copy;
        let s = Design.export d' in
        Alcotest.(check bool) "usm register" true
          (Astring_contains.contains s "sycl_usm_host_register");
        Alcotest.(check bool) "no buffer copies" false
          (Astring_contains.contains s "sycl_buffer_copy_back"));
    Alcotest.test_case "set_unroll_factor annotates kernel loop" `Quick
      (fun () ->
        let _, ex, kernel = fixture () in
        let d = Oneapi_gen.generate ~data:(data_for ex kernel) ex ~kernel in
        let d' = Oneapi_gen.set_unroll_factor d 16 in
        Alcotest.(check int) "knob" 16 d'.unroll_factor;
        Alcotest.(check bool) "pragma in source" true
          (Astring_contains.contains (Design.export d') "#pragma unroll 16"));
    Alcotest.test_case "unroll-fixed-loops task annotates inner loops" `Quick
      (fun () ->
        let src =
          {|
void k(double* out, double* w, int n) {
  for (int i = 0; i < n; i++) {
    double s = 0.0;
    for (int j = 0; j < 4; j++) { s += w[j]; }
    out[i] = s;
  }
}
int main() { double out[8]; double w[4]; k(out, w, 8); return 0; }
|}
        in
        let p = parse src in
        let d = Oneapi_gen.generate ~data:(data_for p "k") p ~kernel:"k" in
        let d' = Oneapi_gen.unroll_fixed_loops d in
        (* the inner loop survives in source, carrying a full-unroll pragma *)
        let inner =
          Artisan.Query.(
            stmts_in
              ~where:(is_for &&& not_ is_outermost_loop)
              d'.program d'.device_kernel)
        in
        match inner with
        | [ m ] ->
            Alcotest.(check bool) "pragma unroll attached" true
              (List.exists
                 (fun (pr : Minic.Ast.pragma) -> pr.pname = "unroll")
                 m.Artisan.Query.stmt.pragmas)
        | _ -> Alcotest.fail "expected the inner loop to survive");
    Alcotest.test_case "oneapi adds more LOC than hip (Table I shape)" `Quick
      (fun () ->
        let reference, ex, kernel = fixture () in
        let data = data_for ex kernel in
        let omp = Openmp_gen.generate ex ~kernel in
        let hip = Hip_gen.generate ~data ex ~kernel in
        let one = Oneapi_gen.generate ~data ex ~kernel in
        let pct d = Design.loc_delta_percent ~reference d in
        Alcotest.(check bool) "omp < hip" true (pct omp < pct hip);
        Alcotest.(check bool) "hip <= oneapi" true (pct hip <= pct one));
  ]

let design_tests =
  [
    Alcotest.test_case "notes accumulate" `Quick (fun () ->
        let _, ex, kernel = fixture () in
        let d = Openmp_gen.generate ex ~kernel |> Design.note "extra" in
        Alcotest.(check bool) "note recorded" true
          (List.mem "extra" d.notes));
    Alcotest.test_case "target naming" `Quick (fun () ->
        Alcotest.(check string) "omp" "OpenMP"
          (Design.target_framework Design.Cpu_openmp);
        Alcotest.(check string) "hip" "HIP"
          (Design.target_framework Design.Gpu_hip);
        Alcotest.(check string) "oneapi" "oneAPI"
          (Design.target_framework Design.Fpga_oneapi));
  ]

let () =
  Alcotest.run "codegen"
    [
      ("openmp", openmp_tests);
      ("hip", hip_tests);
      ("oneapi", oneapi_tests);
      ("design", design_tests);
    ]
