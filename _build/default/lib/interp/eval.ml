(** The MiniC interpreter.

    Executes a program starting at [main], charging virtual cycles per
    {!Profile.Cost} and recording the observations that the dynamic
    design-flow tasks consume.  Passing [~focus:"kernel_fn"] additionally
    profiles every call to that function as an accelerator-offload
    candidate: per-argument transfer requirements and touched ranges.

    Determinism: [rand01]/[rand_int] use a fixed-seed LCG, so repeated
    runs (and runs of instrumented variants) see identical inputs — the
    property the paper relies on when it compares designs generated from
    the same reference source. *)

open Value

exception Return_exc of Value.t

type frame = (string, Value.t ref) Hashtbl.t

type state = {
  prog : Minic.Ast.program;
  mem : Memory.t;
  prof : Profile.t;
  globals : frame;
  out : Buffer.t;
  mutable rng : int;
  focus : string option;
  mutable focus_depth : int;
  (* region id -> kernel argument indices it is reachable from *)
  focus_args : (int, int list) Hashtbl.t;
  (* region id -> per-element first-access state: 0 untouched, 1 read, 2 written *)
  focus_state : (int, Bytes.t) Hashtbl.t;
  mutable fuel : int;  (** remaining statement budget, guards against hangs *)
}

let charge st c = st.prof.cycles <- st.prof.cycles +. c

(* ------------------------------------------------------------------ *)
(* Deterministic pseudo-random inputs                                  *)
(* ------------------------------------------------------------------ *)

let lcg_next st =
  st.rng <- ((1103515245 * st.rng) + 12345) land 0x3FFFFFFF;
  st.rng

let rand01 st = float_of_int (lcg_next st) /. 1073741824.0
let rand_int st n = if n <= 0 then 0 else lcg_next st mod n

(* ------------------------------------------------------------------ *)
(* Kernel-focus access tracking                                        *)
(* ------------------------------------------------------------------ *)

let kernel_obs st =
  match st.prof.kernel with
  | Some k -> k
  | None ->
      let k =
        {
          Profile.calls = 0;
          k_cycles = 0.0;
          k_flops = 0;
          k_sfu = 0;
          k_bytes_read = 0;
          k_bytes_written = 0;
          args = [||];
        }
      in
      st.prof.kernel <- Some k;
      k

let update_range (obs : Profile.arg_obs) region_id off =
  let rec go = function
    | [] -> [ (region_id, off, off) ]
    | (id, lo, hi) :: rest when id = region_id ->
        (id, min lo off, max hi off) :: rest
    | entry :: rest -> entry :: go rest
  in
  obs.regions_touched <- go obs.regions_touched

let track_focus_access st (p : Value.ptr) ~write =
  if st.focus_depth > 0 then
    match Hashtbl.find_opt st.focus_args p.mem_id with
    | None -> ()
    | Some arg_idxs -> (
        let k = kernel_obs st in
        List.iter
          (fun i ->
            if i < Array.length k.args then update_range k.args.(i) p.mem_id p.off)
          arg_idxs;
        match Hashtbl.find_opt st.focus_state p.mem_id with
        | None -> ()
        | Some state ->
            let elem = Memory.elem_bytes st.mem p.mem_id in
            let attribute f =
              match arg_idxs with
              | i :: _ when i < Array.length k.args -> f k.args.(i)
              | _ -> ()
            in
            let s = Bytes.get_uint8 state p.off in
            if write then (
              (* first write of this element: it is produced on-device and
                 must be copied back *)
              if s land 2 = 0 then (
                Bytes.set_uint8 state p.off (s lor 2);
                attribute (fun a ->
                    a.Profile.bytes_out <- a.Profile.bytes_out + elem)))
            else if s = 0 then (
              (* first access is a read: the element must be transferred in *)
              Bytes.set_uint8 state p.off 1;
              attribute (fun a ->
                  a.Profile.bytes_in <- a.Profile.bytes_in + elem)))

let mem_load st p =
  let v = Memory.load st.mem p in
  let bytes = Memory.elem_bytes st.mem p.mem_id in
  charge st Profile.Cost.load;
  st.prof.loads <- st.prof.loads + 1;
  st.prof.bytes_read <- st.prof.bytes_read + bytes;
  track_focus_access st p ~write:false;
  v

let mem_store st p v =
  Memory.store st.mem p v;
  let bytes = Memory.elem_bytes st.mem p.mem_id in
  charge st Profile.Cost.store;
  st.prof.stores <- st.prof.stores + 1;
  st.prof.bytes_written <- st.prof.bytes_written + bytes;
  track_focus_access st p ~write:true

(* ------------------------------------------------------------------ *)
(* Variable lookup                                                     *)
(* ------------------------------------------------------------------ *)

let lookup st frame name =
  match Hashtbl.find_opt frame name with
  | Some r -> r
  | None -> (
      match Hashtbl.find_opt st.globals name with
      | Some r -> r
      | None -> err "undefined variable '%s'" name)

let bind frame name v = Hashtbl.replace frame name (ref v)

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                               *)
(* ------------------------------------------------------------------ *)

let eval_binop st op a b =
  let fl = is_float a || is_float b in
  let open Minic.Ast in
  let charge_arith c =
    charge st c;
    if fl then st.prof.flops <- st.prof.flops + 1
    else st.prof.int_ops <- st.prof.int_ops + 1
  in
  match op with
  | Add ->
      if fl then (
        charge_arith Profile.Cost.float_add;
        VFloat (to_float a +. to_float b))
      else (
        charge_arith Profile.Cost.int_op;
        VInt (to_int a + to_int b))
  | Sub ->
      if fl then (
        charge_arith Profile.Cost.float_add;
        VFloat (to_float a -. to_float b))
      else (
        charge_arith Profile.Cost.int_op;
        VInt (to_int a - to_int b))
  | Mul ->
      if fl then (
        charge_arith Profile.Cost.float_mul;
        VFloat (to_float a *. to_float b))
      else (
        charge_arith Profile.Cost.int_op;
        VInt (to_int a * to_int b))
  | Div ->
      if fl then (
        charge_arith Profile.Cost.float_div;
        let d = to_float b in
        VFloat (to_float a /. d))
      else (
        charge_arith Profile.Cost.int_op;
        let d = to_int b in
        if d = 0 then err "integer division by zero";
        VInt (to_int a / d))
  | Mod ->
      charge_arith Profile.Cost.int_op;
      let d = to_int b in
      if d = 0 then err "integer modulo by zero";
      VInt (to_int a mod d)
  | Lt ->
      charge st Profile.Cost.int_op;
      VBool (if fl then to_float a < to_float b else to_int a < to_int b)
  | Le ->
      charge st Profile.Cost.int_op;
      VBool (if fl then to_float a <= to_float b else to_int a <= to_int b)
  | Gt ->
      charge st Profile.Cost.int_op;
      VBool (if fl then to_float a > to_float b else to_int a > to_int b)
  | Ge ->
      charge st Profile.Cost.int_op;
      VBool (if fl then to_float a >= to_float b else to_int a >= to_int b)
  | Eq ->
      charge st Profile.Cost.int_op;
      VBool (if fl then to_float a = to_float b else to_int a = to_int b)
  | Ne ->
      charge st Profile.Cost.int_op;
      VBool (if fl then to_float a <> to_float b else to_int a <> to_int b)
  | LAnd ->
      charge st Profile.Cost.int_op;
      VBool (to_bool a && to_bool b)
  | LOr ->
      charge st Profile.Cost.int_op;
      VBool (to_bool a || to_bool b)

let eval_math st name args =
  match Minic.Builtins.cost_class name with
  | None -> None
  | Some cls ->
      charge st (Profile.Cost.math_call cls);
      st.prof.sfu_ops <- st.prof.sfu_ops + 1;
      st.prof.flops <- st.prof.flops + Minic.Builtins.flops_of_class cls;
      let f1 g = g (to_float (List.nth args 0)) in
      let f2 g = g (to_float (List.nth args 0)) (to_float (List.nth args 1)) in
      (* drop the '__' prefix of GPU intrinsics and the 'f' single-precision
         suffix to recover the base math function *)
      let strip n =
        let n =
          if String.length n > 2 && String.sub n 0 2 = "__" then
            String.sub n 2 (String.length n - 2)
          else n
        in
        if String.length n > 1 && n.[String.length n - 1] = 'f' then
          String.sub n 0 (String.length n - 1)
        else n
      in
      let base = strip name in
      let v =
        match base with
        | "sqrt" | "fsqrt" -> f1 Float.sqrt
        | "exp" -> f1 Float.exp
        | "log" -> f1 Float.log
        | "sin" -> f1 Float.sin
        | "cos" -> f1 Float.cos
        | "tanh" -> f1 Float.tanh
        | "pow" -> f2 Float.pow
        | "fabs" -> f1 Float.abs
        | "floor" -> f1 Float.floor
        | "fmin" -> f2 Float.min
        | "fmax" -> f2 Float.max
        | "fdivide" -> f2 ( /. )
        | other -> err "unimplemented math builtin '%s'" other
      in
      Some (VFloat v)

let rec eval_expr st frame (e : Minic.Ast.expr) : Value.t =
  let open Minic.Ast in
  match e.enode with
  | Int_lit n -> VInt n
  | Float_lit (f, _) -> VFloat f
  | Bool_lit b -> VBool b
  | Var v -> !(lookup st frame v)
  | Unop (Neg, a) -> (
      charge st Profile.Cost.int_op;
      match eval_expr st frame a with
      | VInt n -> VInt (-n)
      | VFloat f ->
          st.prof.flops <- st.prof.flops + 1;
          VFloat (-.f)
      | _ -> err "negation of a non-numeric value")
  | Unop (Not, a) ->
      charge st Profile.Cost.int_op;
      VBool (not (to_bool (eval_expr st frame a)))
  | Binop (op, a, b) ->
      (* && and || short-circuit like C *)
      if op = LAnd then (
        charge st Profile.Cost.int_op;
        if to_bool (eval_expr st frame a) then
          VBool (to_bool (eval_expr st frame b))
        else VBool false)
      else if op = LOr then (
        charge st Profile.Cost.int_op;
        if to_bool (eval_expr st frame a) then VBool true
        else VBool (to_bool (eval_expr st frame b)))
      else
        let va = eval_expr st frame a in
        let vb = eval_expr st frame b in
        eval_binop st op va vb
  | Index (a, i) ->
      let p = to_ptr (eval_expr st frame a) in
      let i = to_int (eval_expr st frame i) in
      charge st Profile.Cost.int_op;
      mem_load st { p with off = p.off + i }
  | Cast (t, a) -> (
      let v = eval_expr st frame a in
      match t with
      | Tint -> VInt (to_int v)
      | Tfloat | Tdouble -> VFloat (to_float v)
      | Tbool -> VBool (to_bool v)
      | _ -> v)
  | Call (fname, args) -> eval_call st frame fname args

and eval_call st frame fname arg_exprs =
  let args = List.map (eval_expr st frame) arg_exprs in
  match Minic.Ast.find_func_opt st.prog fname with
  | Some f -> eval_user_call st f args
  | None -> eval_builtin st fname args

and eval_builtin st fname args =
  match eval_math st fname args with
  | Some v -> v
  | None -> (
      match (fname, args) with
      | "rand01", [] ->
          charge st Profile.Cost.call;
          VFloat (rand01 st)
      | "rand_int", [ n ] ->
          charge st Profile.Cost.call;
          VInt (rand_int st (to_int n))
      | "print_int", [ v ] ->
          Buffer.add_string st.out (string_of_int (to_int v) ^ "\n");
          VUnit
      | "print_float", [ v ] ->
          Buffer.add_string st.out (Printf.sprintf "%.6g\n" (to_float v));
          VUnit
      | "__timer_start", [ k ] ->
          Profile.timer_start st.prof (to_int k);
          VUnit
      | "__timer_stop", [ k ] ->
          Profile.timer_stop st.prof (to_int k);
          VUnit
      | _ -> err "call to unknown function '%s'" fname)

and eval_user_call st (f : Minic.Ast.func) args =
  charge st Profile.Cost.call;
  if List.length args <> List.length f.fparams then
    err "call to '%s' with wrong arity" f.fname;
  let callee_frame : frame = Hashtbl.create 16 in
  List.iter2
    (fun (p : Minic.Ast.param) v -> bind callee_frame p.pname_ v)
    f.fparams args;
  let is_focus = st.focus = Some f.fname && st.focus_depth = 0 in
  if is_focus then enter_focus st f args;
  let snapshot =
    (st.prof.cycles, st.prof.flops, st.prof.sfu_ops, st.prof.bytes_read,
     st.prof.bytes_written)
  in
  let result =
    try
      eval_block st callee_frame f.fbody;
      VUnit
    with Return_exc v -> v
  in
  if is_focus then exit_focus st snapshot;
  result

and enter_focus st (f : Minic.Ast.func) args =
  let ptr_params =
    List.filteri
      (fun _ ((p : Minic.Ast.param), _) ->
        match p.ptyp with Minic.Ast.Tptr _ -> true | _ -> false)
      (List.combine f.fparams args)
  in
  let k = kernel_obs st in
  if Array.length k.args = 0 then
    k.args <-
      Array.of_list
        (List.mapi
           (fun i ((p : Minic.Ast.param), _) ->
             {
               Profile.arg_index = i;
               arg_name = p.pname_;
               regions_touched = [];
               bytes_in = 0;
               bytes_out = 0;
             })
           ptr_params);
  Hashtbl.reset st.focus_args;
  Hashtbl.reset st.focus_state;
  List.iteri
    (fun i (_, v) ->
      match v with
      | VPtr p ->
          let existing =
            Option.value ~default:[] (Hashtbl.find_opt st.focus_args p.mem_id)
          in
          Hashtbl.replace st.focus_args p.mem_id (existing @ [ i ]);
          if not (Hashtbl.mem st.focus_state p.mem_id) then
            Hashtbl.replace st.focus_state p.mem_id
              (Bytes.make (Memory.length st.mem p.mem_id) '\000')
      | _ -> ())
    ptr_params;
  st.focus_depth <- st.focus_depth + 1

and exit_focus st (c0, f0, s0, br0, bw0) =
  st.focus_depth <- st.focus_depth - 1;
  let k = kernel_obs st in
  k.calls <- k.calls + 1;
  k.k_cycles <- k.k_cycles +. (st.prof.cycles -. c0);
  k.k_flops <- k.k_flops + (st.prof.flops - f0);
  k.k_sfu <- k.k_sfu + (st.prof.sfu_ops - s0);
  k.k_bytes_read <- k.k_bytes_read + (st.prof.bytes_read - br0);
  k.k_bytes_written <- k.k_bytes_written + (st.prof.bytes_written - bw0)

(* ------------------------------------------------------------------ *)
(* Statement evaluation                                                *)
(* ------------------------------------------------------------------ *)

and eval_stmt st frame (s : Minic.Ast.stmt) =
  let open Minic.Ast in
  st.fuel <- st.fuel - 1;
  if st.fuel <= 0 then err "execution budget exhausted (infinite loop?)";
  match s.snode with
  | Decl d -> (
      match d.dsize with
      | Some size_e ->
          let n = to_int (eval_expr st frame size_e) in
          let v = Memory.alloc st.mem ~name:d.dname ~elem_typ:d.dtyp n in
          bind frame d.dname v
      | None ->
          let v =
            match d.dinit with
            | Some e -> coerce d.dtyp (eval_expr st frame e)
            | None -> Value.zero_of_typ d.dtyp
          in
          bind frame d.dname v)
  | Assign (lv, op, e) -> (
      let rhs = eval_expr st frame e in
      match lv with
      | Lvar v ->
          let r = lookup st frame v in
          r := apply_assign st op !r rhs
      | Lindex (a, i) ->
          let p = to_ptr (eval_expr st frame a) in
          let i = to_int (eval_expr st frame i) in
          charge st Profile.Cost.int_op;
          let p = { p with off = p.off + i } in
          let v =
            if op = Set then coerce_region st p rhs
            else
              let old = mem_load st p in
              apply_assign st op old rhs
          in
          mem_store st p v)
  | Expr_stmt e -> ignore (eval_expr st frame e)
  | If (c, b1, b2) ->
      charge st Profile.Cost.branch;
      if to_bool (eval_expr st frame c) then eval_block st frame b1
      else Option.iter (eval_block st frame) b2
  | While (c, b) ->
      let stat = Profile.loop_stat st.prof s.sid in
      stat.invocations <- stat.invocations + 1;
      let t0 = st.prof.cycles in
      let trips = ref 0 in
      charge st Profile.Cost.branch;
      while to_bool (eval_expr st frame c) do
        incr trips;
        stat.iterations <- stat.iterations + 1;
        st.fuel <- st.fuel - 1;
        if st.fuel <= 0 then err "execution budget exhausted (infinite loop?)";
        charge st (Profile.Cost.loop_iter +. Profile.Cost.branch);
        eval_block st frame b
      done;
      stat.min_trip <- min stat.min_trip !trips;
      stat.max_trip <- max stat.max_trip !trips;
      stat.cycles <- stat.cycles +. (st.prof.cycles -. t0)
  | For (h, b) ->
      let stat = Profile.loop_stat st.prof s.sid in
      stat.invocations <- stat.invocations + 1;
      let t0 = st.prof.cycles in
      let i0 = to_int (eval_expr st frame h.init) in
      let idx = ref (VInt i0) in
      bind frame h.index !idx;
      let r = lookup st frame h.index in
      let trips = ref 0 in
      let continue () =
        charge st Profile.Cost.branch;
        let bound = to_int (eval_expr st frame h.bound) in
        let i = to_int !r in
        if h.inclusive then i <= bound else i < bound
      in
      while continue () do
        incr trips;
        stat.iterations <- stat.iterations + 1;
        st.fuel <- st.fuel - 1;
        if st.fuel <= 0 then err "execution budget exhausted (infinite loop?)";
        charge st (Profile.Cost.loop_iter +. Profile.Cost.int_op);
        eval_block st frame b;
        let step = to_int (eval_expr st frame h.step) in
        r := VInt (to_int !r + step)
      done;
      stat.min_trip <- min stat.min_trip !trips;
      stat.max_trip <- max stat.max_trip !trips;
      stat.cycles <- stat.cycles +. (st.prof.cycles -. t0)
  | Return eo ->
      let v =
        match eo with Some e -> eval_expr st frame e | None -> VUnit
      in
      raise (Return_exc v)
  | Block b -> eval_block st frame b

and eval_block st frame b = List.iter (eval_stmt st frame) b

and apply_assign st op old rhs =
  match op with
  | Minic.Ast.Set -> rhs
  | Minic.Ast.AddEq -> eval_binop st Minic.Ast.Add old rhs
  | Minic.Ast.SubEq -> eval_binop st Minic.Ast.Sub old rhs
  | Minic.Ast.MulEq -> eval_binop st Minic.Ast.Mul old rhs
  | Minic.Ast.DivEq -> eval_binop st Minic.Ast.Div old rhs

and coerce typ v =
  match typ with
  | Minic.Ast.Tint -> VInt (to_int v)
  | Minic.Ast.Tfloat | Minic.Ast.Tdouble -> VFloat (to_float v)
  | Minic.Ast.Tbool -> VBool (to_bool v)
  | _ -> v

and coerce_region st (p : Value.ptr) v =
  coerce (Memory.region st.mem p.mem_id).elem_typ v

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

(** Result of running a program. *)
type run = {
  profile : Profile.t;
  output : string;  (** everything printed by [print_int]/[print_float] *)
  return_value : Value.t;
}

(** Run [program] from [main].

    @param focus name of the kernel function to profile as an offload
      candidate (collects {!Profile.kernel_obs})
    @param fuel statement-execution budget; the default (200 million) is a
      safety net against accidental infinite loops in transformed code *)
let run ?focus ?(fuel = 200_000_000) (program : Minic.Ast.program) : run =
  let st =
    {
      prog = program;
      mem = Memory.create ();
      prof = Profile.create ();
      globals = Hashtbl.create 16;
      out = Buffer.create 256;
      rng = 123456789;
      focus;
      focus_depth = 0;
      focus_args = Hashtbl.create 8;
      focus_state = Hashtbl.create 8;
      fuel;
    }
  in
  (* globals evaluate in the global frame *)
  List.iter (eval_stmt st st.globals) program.globals;
  let main =
    match Minic.Ast.find_func_opt program "main" with
    | Some f -> f
    | None -> err "program has no 'main' function"
  in
  let return_value = eval_user_call st main [] in
  { profile = st.prof; output = Buffer.contents st.out; return_value }
