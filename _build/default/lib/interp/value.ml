(** Runtime values of the MiniC interpreter.

    Floating point is evaluated in double precision regardless of the
    static type: precision only affects the *cost* models (SP operations
    are cheaper on accelerators), not the interpreter's arithmetic, which
    keeps reference outputs stable across the SP-literal transforms. *)

type t =
  | VUnit
  | VBool of bool
  | VInt of int
  | VFloat of float
  | VPtr of ptr

(** A pointer into a runtime array: array identity plus element offset. *)
and ptr = { mem_id : int; off : int }

exception Runtime_error of string

let err fmt = Printf.ksprintf (fun m -> raise (Runtime_error m)) fmt

let to_int = function
  | VInt n -> n
  | VBool b -> if b then 1 else 0
  | VFloat f -> int_of_float f
  | VUnit | VPtr _ -> err "expected an integer value"

let to_float = function
  | VFloat f -> f
  | VInt n -> float_of_int n
  | VBool b -> if b then 1.0 else 0.0
  | VUnit | VPtr _ -> err "expected a numeric value"

let to_bool = function
  | VBool b -> b
  | VInt n -> n <> 0
  | VFloat f -> f <> 0.0
  | VUnit | VPtr _ -> err "expected a boolean value"

let to_ptr = function VPtr p -> p | _ -> err "expected a pointer value"

let is_float = function VFloat _ -> true | _ -> false

let to_string = function
  | VUnit -> "()"
  | VBool b -> string_of_bool b
  | VInt n -> string_of_int n
  | VFloat f -> Printf.sprintf "%.6g" f
  | VPtr p -> Printf.sprintf "<ptr %d+%d>" p.mem_id p.off

(** Default value for a declared type. *)
let zero_of_typ = function
  | Minic.Ast.Tbool -> VBool false
  | Minic.Ast.Tint -> VInt 0
  | Minic.Ast.Tfloat | Minic.Ast.Tdouble -> VFloat 0.0
  | Minic.Ast.Tptr _ -> VPtr { mem_id = -1; off = 0 }
  | Minic.Ast.Tvoid -> VUnit
