lib/interp/eval.mli: Minic Profile Value
