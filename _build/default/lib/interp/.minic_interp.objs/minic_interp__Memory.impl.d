lib/interp/memory.ml: Array Hashtbl Minic Value
