lib/interp/profile.ml: Hashtbl List Minic Value
