lib/interp/value.ml: Minic Printf
