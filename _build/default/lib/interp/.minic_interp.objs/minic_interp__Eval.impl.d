lib/interp/eval.ml: Array Buffer Bytes Float Hashtbl List Memory Minic Option Printf Profile String Value
