(** Array storage for the MiniC interpreter.

    Each array declaration allocates a [region]; pointers are (region id,
    offset) pairs.  Regions remember their element type so the profiler can
    charge the correct number of bytes per access, and optionally carry an
    access-state map used by the data-in/out analysis to classify each
    element's first access inside the kernel. *)

type region = {
  id : int;
  name : string;  (** declaring variable, for diagnostics *)
  elem_typ : Minic.Ast.typ;
  elem_bytes : int;
  data : Value.t array;
}

type t = {
  mutable regions : region list;
  mutable next_id : int;
  tbl : (int, region) Hashtbl.t;
}

let create () = { regions = []; next_id = 0; tbl = Hashtbl.create 32 }

(** Allocate a region of [n] elements of type [elem_typ], zero-filled. *)
let alloc t ~name ~elem_typ n =
  if n < 0 then Value.err "negative array size %d for '%s'" n name;
  let id = t.next_id in
  t.next_id <- id + 1;
  let region =
    {
      id;
      name;
      elem_typ;
      elem_bytes = Minic.Ast.sizeof elem_typ;
      data = Array.make n (Value.zero_of_typ elem_typ);
    }
  in
  t.regions <- region :: t.regions;
  Hashtbl.replace t.tbl id region;
  Value.VPtr { mem_id = id; off = 0 }

let region t id =
  match Hashtbl.find_opt t.tbl id with
  | Some r -> r
  | None -> Value.err "dangling pointer (region %d)" id

let load t (p : Value.ptr) =
  let r = region t p.mem_id in
  if p.off < 0 || p.off >= Array.length r.data then
    Value.err "out-of-bounds read of '%s' at index %d (size %d)" r.name p.off
      (Array.length r.data);
  r.data.(p.off)

let store t (p : Value.ptr) v =
  let r = region t p.mem_id in
  if p.off < 0 || p.off >= Array.length r.data then
    Value.err "out-of-bounds write of '%s' at index %d (size %d)" r.name p.off
      (Array.length r.data);
  r.data.(p.off) <- v

let length t id = Array.length (region t id).data
let elem_bytes t id = (region t id).elem_bytes
