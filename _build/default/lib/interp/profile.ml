(** Execution profile collected by the MiniC interpreter.

    The interpreter charges *virtual cycles* modelling one thread of the
    reference CPU (the paper's baseline: a single EPYC 7543 core).  All
    dynamic design-flow tasks read their observations from here:

    - hotspot detection reads the per-timer cycle totals produced by the
      [__timer_start]/[__timer_stop] hooks it instruments into the source;
    - loop trip-count analysis reads per-loop iteration statistics, which
      the interpreter records keyed by the loop statement's node id;
    - data in/out analysis reads per-kernel-argument transfer requirements;
    - pointer alias analysis reads per-argument touched ranges.

    FLOP / special-function / byte counters additionally feed the
    analytical device models in [lib/devices]. *)

(** Virtual cycle costs of one reference CPU thread.  These constants
    define the baseline all Fig. 5 speedups are measured against. *)
module Cost = struct
  let int_op = 1.0
  let float_add = 1.0
  let float_mul = 1.0
  let float_div = 8.0
  let load = 4.0
  let store = 4.0
  let branch = 1.0
  let loop_iter = 2.0
  let call = 5.0

  (** Cycles for a math builtin of the given cost class. *)
  let math_call (c : Minic.Builtins.cost_class) =
    match c with
    | Cheap -> 2.0
    | Sqrt_div -> 20.0
    | Exp_log -> 40.0
    | Trig -> 40.0
    | Power -> 80.0
end

type loop_stat = {
  mutable invocations : int;  (** times the loop statement was entered *)
  mutable iterations : int;  (** total body executions *)
  mutable min_trip : int;  (** fewest iterations of one invocation *)
  mutable max_trip : int;
  mutable cycles : float;  (** inclusive virtual cycles spent in the loop *)
}

type timer = { mutable total : float; mutable started_at : float option }

(** Per-pointer-argument observations for the kernel focus function. *)
type arg_obs = {
  arg_index : int;
  arg_name : string;
  mutable regions_touched : (int * int * int) list;
      (** (region id, min offset, max offset) touched through this arg *)
  mutable bytes_in : int;
      (** elements whose first kernel access is a read, i.e. data that a
          host->device transfer must supply *)
  mutable bytes_out : int;  (** elements written, i.e. device->host data *)
}

(** Aggregated observations of the focus (kernel) function. *)
type kernel_obs = {
  mutable calls : int;
  mutable k_cycles : float;
  mutable k_flops : int;
  mutable k_sfu : int;
  mutable k_bytes_read : int;
  mutable k_bytes_written : int;
  mutable args : arg_obs array;
}

type t = {
  mutable cycles : float;
  mutable flops : int;
  mutable sfu_ops : int;  (** special-function evaluations (exp, sqrt, ...) *)
  mutable int_ops : int;
  mutable loads : int;
  mutable stores : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
  loops : (int, loop_stat) Hashtbl.t;
  timers : (int, timer) Hashtbl.t;
  mutable kernel : kernel_obs option;
}

let create () =
  {
    cycles = 0.0;
    flops = 0;
    sfu_ops = 0;
    int_ops = 0;
    loads = 0;
    stores = 0;
    bytes_read = 0;
    bytes_written = 0;
    loops = Hashtbl.create 32;
    timers = Hashtbl.create 8;
    kernel = None;
  }

let loop_stat t sid =
  match Hashtbl.find_opt t.loops sid with
  | Some s -> s
  | None ->
      let s =
        {
          invocations = 0;
          iterations = 0;
          min_trip = max_int;
          max_trip = 0;
          cycles = 0.0;
        }
      in
      Hashtbl.replace t.loops sid s;
      s

let timer t key =
  match Hashtbl.find_opt t.timers key with
  | Some tm -> tm
  | None ->
      let tm = { total = 0.0; started_at = None } in
      Hashtbl.replace t.timers key tm;
      tm

let timer_start t key = (timer t key).started_at <- Some t.cycles

let timer_stop t key =
  let tm = timer t key in
  match tm.started_at with
  | Some s ->
      tm.total <- tm.total +. (t.cycles -. s);
      tm.started_at <- None
  | None -> Value.err "__timer_stop(%d) without a matching start" key

(** Total cycles attributed to timer [key]. *)
let timer_total t key =
  match Hashtbl.find_opt t.timers key with Some tm -> tm.total | None -> 0.0

(** All timers as (key, cycles) sorted by descending cycles. *)
let timers_by_cost t =
  Hashtbl.fold (fun k tm acc -> (k, tm.total) :: acc) t.timers []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

(** Wall-clock seconds of the modelled single-thread reference CPU. *)
let seconds ?(clock_hz = 2.8e9) t = t.cycles /. clock_hz

(** Trip statistics of the loop with node id [sid], if it ever ran. *)
let loop_stat_opt t sid = Hashtbl.find_opt t.loops sid

let mean_trip (s : loop_stat) =
  if s.invocations = 0 then 0.0
  else float_of_int s.iterations /. float_of_int s.invocations
