(** Generic AST rewriting with stable node identities.

    All transforms are built on two primitives:

    - {!edit_stmts}: a statement editor [stmt -> stmt list] applied
      top-down; returning [[s]] keeps the statement, [[]] deletes it, and
      any other list replaces it (insertion = returning the new statement
      alongside the original).  Children of whatever the editor returns
      are then edited recursively.
    - {!map_exprs}: a bottom-up expression map.

    Both preserve the node ids of untouched nodes, so analysis results
    keyed by id stay valid across passes — the property the paper's
    design-flows rely on when analyses and transforms interleave. *)

open Minic

(** Rebuild a statement with its sub-blocks passed through [f], keeping
    its id, pragmas, and location. *)
let map_stmt_blocks f (s : Ast.stmt) : Ast.stmt =
  let snode =
    match s.snode with
    | Ast.If (c, b1, b2) -> Ast.If (c, f b1, Option.map f b2)
    | Ast.For (h, b) -> Ast.For (h, f b)
    | Ast.While (c, b) -> Ast.While (c, f b)
    | Ast.Block b -> Ast.Block (f b)
    | (Ast.Decl _ | Ast.Assign _ | Ast.Expr_stmt _ | Ast.Return _) as n -> n
  in
  { s with snode }

(** Apply editor [f] to every statement, top-down.  [f] maps one statement
    to its replacement list; children of the replacements are edited in
    turn. *)
let rec edit_stmt f (s : Ast.stmt) : Ast.stmt list =
  f s |> List.map (map_stmt_blocks (edit_block f))

and edit_block f (b : Ast.block) : Ast.block = List.concat_map (edit_stmt f) b

let edit_func f (fn : Ast.func) = { fn with fbody = edit_block f fn.fbody }

(** Edit every statement of every function (globals are left alone: they
    are declarations only). *)
let edit_stmts f (p : Ast.program) : Ast.program =
  { p with funcs = List.map (edit_func f) p.funcs }

(** Edit statements of one function only. *)
let edit_stmts_in f fname (p : Ast.program) : Ast.program =
  {
    p with
    funcs =
      List.map
        (fun fn -> if fn.Ast.fname = fname then edit_func f fn else fn)
        p.funcs;
  }

(* ------------------------------------------------------------------ *)
(* Expression rewriting                                                *)
(* ------------------------------------------------------------------ *)

(** Bottom-up expression map: children first, then [f] on the rebuilt
    node.  The rebuilt node keeps its original id. *)
let rec map_expr f (e : Ast.expr) : Ast.expr =
  let rebuilt =
    match e.enode with
    | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Bool_lit _ | Ast.Var _ -> e
    | Ast.Unop (op, a) -> { e with enode = Ast.Unop (op, map_expr f a) }
    | Ast.Binop (op, a, b) ->
        { e with enode = Ast.Binop (op, map_expr f a, map_expr f b) }
    | Ast.Index (a, i) ->
        { e with enode = Ast.Index (map_expr f a, map_expr f i) }
    | Ast.Call (name, args) ->
        { e with enode = Ast.Call (name, List.map (map_expr f) args) }
    | Ast.Cast (t, a) -> { e with enode = Ast.Cast (t, map_expr f a) }
  in
  f rebuilt

let map_lvalue f = function
  | Ast.Lvar v -> Ast.Lvar v
  | Ast.Lindex (a, i) -> Ast.Lindex (map_expr f a, map_expr f i)

(** Map every expression of a statement (including nested statements). *)
let rec map_stmt_exprs f (s : Ast.stmt) : Ast.stmt =
  let snode =
    match s.snode with
    | Ast.Decl d ->
        Ast.Decl
          {
            d with
            dsize = Option.map (map_expr f) d.dsize;
            dinit = Option.map (map_expr f) d.dinit;
          }
    | Ast.Assign (lv, op, e) -> Ast.Assign (map_lvalue f lv, op, map_expr f e)
    | Ast.Expr_stmt e -> Ast.Expr_stmt (map_expr f e)
    | Ast.If (c, b1, b2) ->
        Ast.If
          ( map_expr f c,
            List.map (map_stmt_exprs f) b1,
            Option.map (List.map (map_stmt_exprs f)) b2 )
    | Ast.For (h, b) ->
        Ast.For
          ( {
              h with
              init = map_expr f h.init;
              bound = map_expr f h.bound;
              step = map_expr f h.step;
            },
            List.map (map_stmt_exprs f) b )
    | Ast.While (c, b) -> Ast.While (map_expr f c, List.map (map_stmt_exprs f) b)
    | Ast.Return eo -> Ast.Return (Option.map (map_expr f) eo)
    | Ast.Block b -> Ast.Block (List.map (map_stmt_exprs f) b)
  in
  { s with snode }

(** Map every expression of every function body. *)
let map_exprs f (p : Ast.program) : Ast.program =
  {
    p with
    funcs =
      List.map
        (fun fn -> { fn with Ast.fbody = List.map (map_stmt_exprs f) fn.Ast.fbody })
        p.funcs;
  }

(** Map expressions within one function only. *)
let map_exprs_in f fname (p : Ast.program) : Ast.program =
  {
    p with
    funcs =
      List.map
        (fun fn ->
          if fn.Ast.fname = fname then
            { fn with Ast.fbody = List.map (map_stmt_exprs f) fn.Ast.fbody }
          else fn)
        p.funcs;
  }

(* ------------------------------------------------------------------ *)
(* Fresh copies                                                        *)
(* ------------------------------------------------------------------ *)

(** Deep-copy an expression with fresh node ids (used when a transform
    duplicates code, e.g. loop unrolling). *)
let rec refresh_expr (e : Ast.expr) : Ast.expr =
  let enode =
    match e.enode with
    | (Ast.Int_lit _ | Ast.Float_lit _ | Ast.Bool_lit _ | Ast.Var _) as n -> n
    | Ast.Unop (op, a) -> Ast.Unop (op, refresh_expr a)
    | Ast.Binop (op, a, b) -> Ast.Binop (op, refresh_expr a, refresh_expr b)
    | Ast.Index (a, i) -> Ast.Index (refresh_expr a, refresh_expr i)
    | Ast.Call (name, args) -> Ast.Call (name, List.map refresh_expr args)
    | Ast.Cast (t, a) -> Ast.Cast (t, refresh_expr a)
  in
  Ast.mk_expr ~loc:e.eloc enode

let refresh_lvalue = function
  | Ast.Lvar v -> Ast.Lvar v
  | Ast.Lindex (a, i) -> Ast.Lindex (refresh_expr a, refresh_expr i)

(** Deep-copy a statement with fresh node ids throughout. *)
let rec refresh_stmt (s : Ast.stmt) : Ast.stmt =
  let snode =
    match s.snode with
    | Ast.Decl d ->
        Ast.Decl
          {
            d with
            dsize = Option.map refresh_expr d.dsize;
            dinit = Option.map refresh_expr d.dinit;
          }
    | Ast.Assign (lv, op, e) ->
        Ast.Assign (refresh_lvalue lv, op, refresh_expr e)
    | Ast.Expr_stmt e -> Ast.Expr_stmt (refresh_expr e)
    | Ast.If (c, b1, b2) ->
        Ast.If
          ( refresh_expr c,
            List.map refresh_stmt b1,
            Option.map (List.map refresh_stmt) b2 )
    | Ast.For (h, b) ->
        Ast.For
          ( {
              h with
              init = refresh_expr h.init;
              bound = refresh_expr h.bound;
              step = refresh_expr h.step;
            },
            List.map refresh_stmt b )
    | Ast.While (c, b) -> Ast.While (refresh_expr c, List.map refresh_stmt b)
    | Ast.Return eo -> Ast.Return (Option.map refresh_expr eo)
    | Ast.Block b -> Ast.Block (List.map refresh_stmt b)
  in
  Ast.mk_stmt ~loc:s.sloc ~pragmas:s.pragmas snode

let refresh_block b = List.map refresh_stmt b

(** Substitute variable [name] by expression [by] (fresh-id copies)
    throughout an expression. *)
let rec subst_var ~name ~by (e : Ast.expr) : Ast.expr =
  match e.enode with
  | Ast.Var v when v = name -> refresh_expr by
  | _ ->
      let enode =
        match e.enode with
        | (Ast.Int_lit _ | Ast.Float_lit _ | Ast.Bool_lit _ | Ast.Var _) as n -> n
        | Ast.Unop (op, a) -> Ast.Unop (op, subst_var ~name ~by a)
        | Ast.Binop (op, a, b) ->
            Ast.Binop (op, subst_var ~name ~by a, subst_var ~name ~by b)
        | Ast.Index (a, i) ->
            Ast.Index (subst_var ~name ~by a, subst_var ~name ~by i)
        | Ast.Call (f, args) -> Ast.Call (f, List.map (subst_var ~name ~by) args)
        | Ast.Cast (t, a) -> Ast.Cast (t, subst_var ~name ~by a)
      in
      { e with enode }

(** Substitute a variable in a whole statement, rebuilding in place
    (ids preserved except where [by] is spliced in). *)
let rec subst_var_stmt ~name ~by (s : Ast.stmt) : Ast.stmt =
  let sub = subst_var ~name ~by in
  let snode =
    match s.snode with
    | Ast.Decl d ->
        Ast.Decl
          { d with dsize = Option.map sub d.dsize; dinit = Option.map sub d.dinit }
    | Ast.Assign (lv, op, e) ->
        let lv =
          match lv with
          | Ast.Lvar v -> Ast.Lvar v
          | Ast.Lindex (a, i) -> Ast.Lindex (sub a, sub i)
        in
        Ast.Assign (lv, op, sub e)
    | Ast.Expr_stmt e -> Ast.Expr_stmt (sub e)
    | Ast.If (c, b1, b2) ->
        Ast.If
          ( sub c,
            List.map (subst_var_stmt ~name ~by) b1,
            Option.map (List.map (subst_var_stmt ~name ~by)) b2 )
    | Ast.For (h, b) ->
        Ast.For
          ( { h with init = sub h.init; bound = sub h.bound; step = sub h.step },
            List.map (subst_var_stmt ~name ~by) b )
    | Ast.While (c, b) -> Ast.While (sub c, List.map (subst_var_stmt ~name ~by) b)
    | Ast.Return eo -> Ast.Return (Option.map sub eo)
    | Ast.Block b -> Ast.Block (List.map (subst_var_stmt ~name ~by) b)
  in
  { s with snode }
