(** AST query engine — the analogue of Artisan's [query] mechanism.

    The paper's meta-programs select nodes with predicate queries such as

    {v query(∀loop,fn ∈ ast: loop.isForStmt ∧ fn.name = kernel_name
             ∧ fn.encloses(loop) ∧ loop.is_outermost) v}

    Here a query is a predicate over a {!match_ctx}, which packages a
    statement (or expression) together with its enclosing function and the
    stack of enclosing statements, so predicates like [is_outermost_loop]
    or [enclosed_by_loop] are directly expressible.  Predicates compose
    with {!(&&&)}, {!(|||)} and {!not_}. *)

open Minic

(** A statement match: the matched statement, its enclosing function, and
    the statements enclosing it (innermost first). *)
type match_ctx = {
  func : Ast.func;
  path : Ast.stmt list;  (** enclosing statements, innermost first *)
  stmt : Ast.stmt;
}

type pred = match_ctx -> bool

let ( &&& ) p q ctx = p ctx && q ctx
let ( ||| ) p q ctx = p ctx || q ctx
let not_ p ctx = not (p ctx)
let always _ = true

(* ------------------------------------------------------------------ *)
(* Statement predicates                                                *)
(* ------------------------------------------------------------------ *)

let is_for ctx =
  match ctx.stmt.snode with Ast.For _ -> true | _ -> false

let is_while ctx =
  match ctx.stmt.snode with Ast.While _ -> true | _ -> false

let is_loop = is_for ||| is_while

let is_stmt_loop (s : Ast.stmt) =
  match s.snode with Ast.For _ | Ast.While _ -> true | _ -> false

(** The matched node is in the function named [name]. *)
let in_function name ctx = ctx.func.fname = name

(** No enclosing statement (within the same function) is a loop. *)
let is_outermost_loop ctx =
  is_loop ctx && not (List.exists is_stmt_loop ctx.path)

(** Matched loop contains no nested loop. *)
let is_innermost_loop ctx =
  is_loop ctx
  &&
  let nested = ref false in
  List.iter
    (fun b ->
      Ast.iter_block (fun s -> if is_stmt_loop s then nested := true) b)
    (Ast.stmt_blocks ctx.stmt);
  not !nested

(** Some enclosing statement is a loop. *)
let enclosed_by_loop ctx = List.exists is_stmt_loop ctx.path

(** Loop nesting depth of the matched statement (0 = not inside a loop). *)
let loop_depth ctx =
  List.length (List.filter is_stmt_loop ctx.path)

let has_pragma name ctx =
  List.exists (fun (p : Ast.pragma) -> p.pname = name) ctx.stmt.pragmas

(** For-loop whose bound is a compile-time integer literal ("fixed"),
    the precondition of the FPGA "unroll fixed loops" transform. *)
let has_fixed_bound ctx =
  match ctx.stmt.snode with
  | Ast.For (h, _) -> (
      (match h.bound.enode with Ast.Int_lit _ -> true | _ -> false)
      && match h.init.enode with Ast.Int_lit _ -> true | _ -> false)
  | _ -> false

(** Trip count of a fixed-bound canonical loop, when statically known. *)
let static_trip_count (s : Ast.stmt) =
  match s.snode with
  | Ast.For (h, _) -> (
      match (h.init.enode, h.bound.enode, h.step.enode) with
      | Ast.Int_lit i0, Ast.Int_lit b, Ast.Int_lit st when st > 0 ->
          let span = if h.inclusive then b - i0 + 1 else b - i0 in
          Some (max 0 ((span + st - 1) / st))
      | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Running statement queries                                           *)
(* ------------------------------------------------------------------ *)

(** All statement matches of [pred] in [p], pre-order within each
    function. *)
let stmts ?(where = always) (p : Ast.program) : match_ctx list =
  let results = ref [] in
  let rec walk func path (s : Ast.stmt) =
    let ctx = { func; path; stmt = s } in
    if where ctx then results := ctx :: !results;
    List.iter
      (fun b -> List.iter (walk func (s :: path)) b)
      (Ast.stmt_blocks s)
  in
  List.iter (fun f -> List.iter (walk f []) f.fbody) p.funcs;
  List.rev !results

(** First match of [pred], if any. *)
let first ?where p = match stmts ?where p with [] -> None | m :: _ -> Some m

(** Matches restricted to one function. *)
let stmts_in ?(where = always) p fname =
  stmts ~where:(in_function fname &&& where) p

(* ------------------------------------------------------------------ *)
(* Expression queries                                                  *)
(* ------------------------------------------------------------------ *)

(** An expression match: the expression plus the statement and function
    containing it. *)
type expr_ctx = { efunc : Ast.func; estmt : Ast.stmt; expr : Ast.expr }

type epred = expr_ctx -> bool

let is_call ?name ctx =
  match ctx.expr.enode with
  | Ast.Call (f, _) -> ( match name with None -> true | Some n -> n = f)
  | _ -> false

let is_float_literal ctx =
  match ctx.expr.enode with Ast.Float_lit _ -> true | _ -> false

let is_double_literal ctx =
  match ctx.expr.enode with
  | Ast.Float_lit (_, Ast.Double) -> true
  | _ -> false

(** All expression matches in [p]. *)
let exprs ?(where = fun (_ : expr_ctx) -> true) (p : Ast.program) :
    expr_ctx list =
  let results = ref [] in
  let walk_func (f : Ast.func) =
    Ast.iter_func
      (fun s ->
        List.iter
          (fun root ->
            Ast.iter_expr
              (fun e ->
                let ctx = { efunc = f; estmt = s; expr = e } in
                if where ctx then results := ctx :: !results)
              root)
          (Ast.stmt_exprs s))
      f
  in
  List.iter walk_func p.funcs;
  List.rev !results

(** Expression matches within one function. *)
let exprs_in ?(where = fun (_ : expr_ctx) -> true) p fname =
  exprs ~where:(fun ctx -> ctx.efunc.fname = fname && where ctx) p

(** Names of all functions called within function [fname]. *)
let callees p fname =
  exprs_in p fname
    ~where:(fun ctx ->
      match ctx.expr.enode with Ast.Call _ -> true | _ -> false)
  |> List.filter_map (fun ctx ->
         match ctx.expr.enode with Ast.Call (f, _) -> Some f | _ -> None)
  |> List.sort_uniq compare
