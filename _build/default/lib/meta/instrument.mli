(** Instrumentation — the analogue of Artisan's [instrument] mechanism.

    Operations address statements by node id (obtained from a
    {!Query.match_ctx}) and rebuild the program functionally, mirroring
    [instrument(before, loop, #pragma unroll $n)] from the paper's
    Fig. 2 meta-program.  Untouched nodes keep their ids. *)

open Minic

(** Raised when the target node id does not occur in the program. *)
exception Not_found_id of int

(** Insert a statement immediately before the statement with id [target]. *)
val insert_before : target:int -> Ast.stmt -> Ast.program -> Ast.program

(** Insert a statement immediately after the statement with id [target]. *)
val insert_after : target:int -> Ast.stmt -> Ast.program -> Ast.program

(** Replace the statement with id [target] by a list (empty = delete). *)
val replace : target:int -> Ast.stmt list -> Ast.program -> Ast.program

(** Rewrite the statement with id [target] through a function
    (id-preserving if the function is). *)
val update : target:int -> (Ast.stmt -> Ast.stmt) -> Ast.program -> Ast.program

(** Append a pragma to the statement with id [target]. *)
val add_pragma : target:int -> Ast.pragma -> Ast.program -> Ast.program

(** Remove all pragmas named [name] from the statement with id [target]. *)
val remove_pragma : target:int -> string -> Ast.program -> Ast.program

(** Replace the same-name pragma, or add it. *)
val set_pragma : target:int -> Ast.pragma -> Ast.program -> Ast.program

(** Wrap the statement with id [target] in [__timer_start key] /
    [__timer_stop key] calls — the hotspot-detection instrumentation. *)
val wrap_with_timer : target:int -> key:int -> Ast.program -> Ast.program

(** Add a function to the program. *)
val add_func : Ast.func -> Ast.program -> Ast.program

(** Replace the function named [name]. *)
val replace_func : name:string -> Ast.func -> Ast.program -> Ast.program

(** Rename a function and every call to it. *)
val rename_func : from:string -> into:string -> Ast.program -> Ast.program

(** Render the (possibly instrumented) program back to source text —
    Artisan's [ast.export(mod_src)]. *)
val export : Ast.program -> string

(** Export to a file. *)
val export_file : Ast.program -> string -> unit
