lib/meta/query.mli: Ast Minic
