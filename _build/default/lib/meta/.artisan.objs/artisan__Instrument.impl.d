lib/meta/instrument.ml: Ast Builder List Minic Pretty Rewrite
