lib/meta/rewrite.ml: Ast List Minic Option
