lib/meta/query.ml: Ast List Minic
