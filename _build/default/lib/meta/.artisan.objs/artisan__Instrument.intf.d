lib/meta/instrument.mli: Ast Minic
