(** Instrumentation — the analogue of Artisan's [instrument] mechanism.

    Operations address statements by node id (obtained from a
    {!Query.match_ctx}) and modify the program in place, mirroring
    [instrument(before, loop, #pragma unroll $n)] from the paper's Fig. 2
    meta-program. *)

open Minic

exception Not_found_id of int

let check_found target found =
  if not !found then raise (Not_found_id target)

(** Insert [new_stmt] immediately before the statement with id [target]. *)
let insert_before ~target new_stmt (p : Ast.program) : Ast.program =
  let found = ref false in
  let p =
    Rewrite.edit_stmts
      (fun s ->
        if s.Ast.sid = target then (
          found := true;
          [ new_stmt; s ])
        else [ s ])
      p
  in
  check_found target found;
  p

(** Insert [new_stmt] immediately after the statement with id [target]. *)
let insert_after ~target new_stmt (p : Ast.program) : Ast.program =
  let found = ref false in
  let p =
    Rewrite.edit_stmts
      (fun s ->
        if s.Ast.sid = target then (
          found := true;
          [ s; new_stmt ])
        else [ s ])
      p
  in
  check_found target found;
  p

(** Replace the statement with id [target] by [stmts] (empty = delete). *)
let replace ~target stmts (p : Ast.program) : Ast.program =
  let found = ref false in
  let p =
    Rewrite.edit_stmts
      (fun s ->
        if s.Ast.sid = target then (
          found := true;
          stmts)
        else [ s ])
      p
  in
  check_found target found;
  p

(** Rewrite the statement with id [target] through [f] (id-preserving if
    [f] is). *)
let update ~target f (p : Ast.program) : Ast.program =
  let found = ref false in
  let p =
    Rewrite.edit_stmts
      (fun s ->
        if s.Ast.sid = target then (
          found := true;
          [ f s ])
        else [ s ])
      p
  in
  check_found target found;
  p

(** Attach a pragma to the statement with id [target], e.g.
    [add_pragma ~target { pname = "unroll"; pargs = ["4"] }]. *)
let add_pragma ~target pragma (p : Ast.program) : Ast.program =
  update ~target (fun s -> { s with Ast.pragmas = s.Ast.pragmas @ [ pragma ] }) p

(** Remove all pragmas named [name] from the statement with id [target]. *)
let remove_pragma ~target name (p : Ast.program) : Ast.program =
  update ~target
    (fun s ->
      {
        s with
        Ast.pragmas =
          List.filter (fun (pr : Ast.pragma) -> pr.pname <> name) s.Ast.pragmas;
      })
    p

(** Replace the pragma named [name] (first occurrence) or add it. *)
let set_pragma ~target (pragma : Ast.pragma) (p : Ast.program) : Ast.program =
  update ~target
    (fun s ->
      let rest =
        List.filter
          (fun (pr : Ast.pragma) -> pr.pname <> pragma.pname)
          s.Ast.pragmas
      in
      { s with Ast.pragmas = rest @ [ pragma ] })
    p

(** Wrap the statement with id [target] in [__timer_start k] /
    [__timer_stop k] calls — the loop-timer instrumentation used by the
    hotspot-detection task. *)
let wrap_with_timer ~target ~key (p : Ast.program) : Ast.program =
  let start = Builder.call_stmt "__timer_start" [ Builder.int key ] in
  let stop = Builder.call_stmt "__timer_stop" [ Builder.int key ] in
  let found = ref false in
  let p =
    Rewrite.edit_stmts
      (fun s ->
        if s.Ast.sid = target then (
          found := true;
          [ start; s; stop ])
        else [ s ])
      p
  in
  check_found target found;
  p

(** Add a function to the program (before existing ones that call it is
    irrelevant: MiniC resolves calls by name over the whole unit). *)
let add_func fn (p : Ast.program) : Ast.program =
  { p with Ast.funcs = fn :: p.Ast.funcs }

(** Replace the function named [name]. *)
let replace_func ~name fn (p : Ast.program) : Ast.program =
  {
    p with
    Ast.funcs =
      List.map (fun f -> if f.Ast.fname = name then fn else f) p.Ast.funcs;
  }

(** Rename a function and all calls to it. *)
let rename_func ~from ~into (p : Ast.program) : Ast.program =
  let p =
    Rewrite.map_exprs
      (fun e ->
        match e.Ast.enode with
        | Ast.Call (f, args) when f = from ->
            { e with Ast.enode = Ast.Call (into, args) }
        | _ -> e)
      p
  in
  {
    p with
    Ast.funcs =
      List.map
        (fun f -> if f.Ast.fname = from then { f with Ast.fname = into } else f)
        p.Ast.funcs;
  }

(** Export: render the (possibly instrumented) program back to source
    text — Artisan's [ast.export(mod_src)]. *)
let export (p : Ast.program) : string = Pretty.program_to_string p

(** Export to a file. *)
let export_file (p : Ast.program) path =
  let oc = open_out path in
  output_string oc (export p);
  close_out oc
