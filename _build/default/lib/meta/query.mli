(** AST query engine — the analogue of Artisan's [query] mechanism.

    A query is a predicate over a {!match_ctx} (a statement with its
    enclosing function and statement stack) or an {!expr_ctx}.
    Predicates compose with {!(&&&)}, {!(|||)} and {!not_}, mirroring the
    paper's Fig. 2 pseudocode:

    {v query(∀loop,fn ∈ ast: loop.isForStmt ∧ fn.name = kernel_name
             ∧ fn.encloses(loop) ∧ loop.is_outermost) v} *)

open Minic

(** A statement match: the matched statement, its enclosing function, and
    the statements enclosing it (innermost first). *)
type match_ctx = {
  func : Ast.func;
  path : Ast.stmt list;  (** enclosing statements, innermost first *)
  stmt : Ast.stmt;
}

type pred = match_ctx -> bool

(** Predicate conjunction. *)
val ( &&& ) : pred -> pred -> pred

(** Predicate disjunction. *)
val ( ||| ) : pred -> pred -> pred

val not_ : pred -> pred

(** Matches everything. *)
val always : pred

(** {1 Statement predicates} *)

val is_for : pred
val is_while : pred
val is_loop : pred

(** Raw statement test used by other analyses. *)
val is_stmt_loop : Ast.stmt -> bool

(** The matched node is in the function named [name]. *)
val in_function : string -> pred

(** No enclosing statement (within the same function) is a loop. *)
val is_outermost_loop : pred

(** Matched loop contains no nested loop. *)
val is_innermost_loop : pred

(** Some enclosing statement is a loop. *)
val enclosed_by_loop : pred

(** Loop nesting depth of the matched statement (0 = not inside a loop). *)
val loop_depth : match_ctx -> int

val has_pragma : string -> pred

(** For-loop whose bounds are compile-time integer literals ("fixed"),
    the precondition of the FPGA "unroll fixed loops" transform. *)
val has_fixed_bound : pred

(** Trip count of a fixed-bound canonical loop, when statically known. *)
val static_trip_count : Ast.stmt -> int option

(** {1 Running statement queries} *)

(** All statement matches of [where] in the program, pre-order within
    each function. *)
val stmts : ?where:pred -> Ast.program -> match_ctx list

(** First match, if any. *)
val first : ?where:pred -> Ast.program -> match_ctx option

(** Matches restricted to one function. *)
val stmts_in : ?where:pred -> Ast.program -> string -> match_ctx list

(** {1 Expression queries} *)

(** An expression match: the expression plus the statement and function
    containing it. *)
type expr_ctx = { efunc : Ast.func; estmt : Ast.stmt; expr : Ast.expr }

type epred = expr_ctx -> bool

(** Matches calls; [?name] restricts to one callee. *)
val is_call : ?name:string -> epred

val is_float_literal : epred
val is_double_literal : epred

(** All expression matches in the program. *)
val exprs : ?where:epred -> Ast.program -> expr_ctx list

(** Expression matches within one function. *)
val exprs_in : ?where:epred -> Ast.program -> string -> expr_ctx list

(** Names of all functions called within function [fname], sorted and
    deduplicated. *)
val callees : Ast.program -> string -> string list
