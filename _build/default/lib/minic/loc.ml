(** Source locations for MiniC programs.

    Locations are carried on every AST node so that analyses and the
    pretty-printer can report positions in the original source, mirroring
    how Artisan ASTs track source ranges. *)

type t = {
  line : int;  (** 1-based line number *)
  col : int;  (** 0-based column *)
}
[@@deriving show, eq, ord]

(** Location used for synthesised nodes (inserted by transforms). *)
let none = { line = 0; col = 0 }

let make ~line ~col = { line; col }

let is_synthetic t = t.line = 0

let pp_short fmt t =
  if is_synthetic t then Format.fprintf fmt "<gen>"
  else Format.fprintf fmt "%d:%d" t.line t.col
