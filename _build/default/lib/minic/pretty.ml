(** Source export for MiniC programs.

    The paper stresses that Artisan ASTs "closely mirror the source-code as
    written without lowering", so generated designs stay human-readable and
    hand-tunable.  This printer is the analogue: it emits compilable MiniC
    text from any AST, preserving pragmas, and is the basis of the LOC
    accounting used in Table I ({!module:Loc_count}). *)

open Ast

let rec binop_prec = function
  | LOr -> 1
  | LAnd -> 2
  | Eq | Ne -> 3
  | Lt | Le | Gt | Ge -> 4
  | Add | Sub -> 5
  | Mul | Div | Mod -> 6

and binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="
  | LAnd -> "&&"
  | LOr -> "||"

(** Print a float literal the way a C programmer would write it: the
    shortest decimal form that round-trips to the same value. *)
let float_lit_str f kind =
  let body =
    if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.1f" f
    else
      let rec shortest p =
        if p > 17 then Printf.sprintf "%.17g" f
        else
          let s = Printf.sprintf "%.*g" p f in
          if float_of_string s = f then s else shortest (p + 1)
      in
      shortest 6
  in
  match kind with Single -> body ^ "f" | Double -> body

let rec pp_expr ?(prec = 0) buf e =
  match e.enode with
  | Int_lit n -> Buffer.add_string buf (string_of_int n)
  | Float_lit (f, k) -> Buffer.add_string buf (float_lit_str f k)
  | Bool_lit b -> Buffer.add_string buf (if b then "true" else "false")
  | Var v -> Buffer.add_string buf v
  | Unop (op, a) ->
      Buffer.add_string buf (match op with Neg -> "-" | Not -> "!");
      (* parenthesise a negative operand: "--x" would lex as decrement *)
      let starts_negative =
        match a.enode with
        | Unop (Neg, _) -> true
        | Int_lit n -> n < 0
        | Float_lit (f, _) -> f < 0.0
        | _ -> false
      in
      if op = Neg && starts_negative then (
        Buffer.add_char buf '(';
        pp_expr buf a;
        Buffer.add_char buf ')')
      else pp_expr ~prec:10 buf a
  | Binop (op, a, b) ->
      let p = binop_prec op in
      let need_parens = p < prec in
      if need_parens then Buffer.add_char buf '(';
      pp_expr ~prec:p buf a;
      Buffer.add_string buf (" " ^ binop_str op ^ " ");
      pp_expr ~prec:(p + 1) buf b;
      if need_parens then Buffer.add_char buf ')'
  | Index (a, i) ->
      pp_expr ~prec:10 buf a;
      Buffer.add_char buf '[';
      pp_expr buf i;
      Buffer.add_char buf ']'
  | Call (f, args) ->
      Buffer.add_string buf f;
      Buffer.add_char buf '(';
      List.iteri
        (fun k a ->
          if k > 0 then Buffer.add_string buf ", ";
          pp_expr buf a)
        args;
      Buffer.add_char buf ')'
  | Cast (t, a) ->
      Buffer.add_string buf ("(" ^ string_of_typ t ^ ")");
      pp_expr ~prec:10 buf a

let expr_to_string e =
  let buf = Buffer.create 64 in
  pp_expr buf e;
  Buffer.contents buf

let pp_lvalue buf = function
  | Lvar v -> Buffer.add_string buf v
  | Lindex (a, i) ->
      pp_expr ~prec:10 buf a;
      Buffer.add_char buf '[';
      pp_expr buf i;
      Buffer.add_char buf ']'

let assign_op_str = function
  | Set -> "="
  | AddEq -> "+="
  | SubEq -> "-="
  | MulEq -> "*="
  | DivEq -> "/="

let indent buf n = Buffer.add_string buf (String.make (n * 2) ' ')

let pp_pragma buf ind (p : pragma) =
  indent buf ind;
  Buffer.add_string buf ("#pragma " ^ String.concat " " (p.pname :: p.pargs));
  Buffer.add_char buf '\n'

let rec pp_stmt buf ind s =
  List.iter (pp_pragma buf ind) s.pragmas;
  match s.snode with
  | Decl d ->
      indent buf ind;
      Buffer.add_string buf (string_of_typ d.dtyp ^ " " ^ d.dname);
      (match d.dsize with
      | Some e ->
          Buffer.add_char buf '[';
          pp_expr buf e;
          Buffer.add_char buf ']'
      | None -> ());
      (match d.dinit with
      | Some e ->
          Buffer.add_string buf " = ";
          pp_expr buf e
      | None -> ());
      Buffer.add_string buf ";\n"
  | Assign (lv, op, e) ->
      indent buf ind;
      pp_lvalue buf lv;
      Buffer.add_string buf (" " ^ assign_op_str op ^ " ");
      pp_expr buf e;
      Buffer.add_string buf ";\n"
  | Expr_stmt e ->
      indent buf ind;
      pp_expr buf e;
      Buffer.add_string buf ";\n"
  | If (c, b1, b2) -> (
      indent buf ind;
      Buffer.add_string buf "if (";
      pp_expr buf c;
      Buffer.add_string buf ") {\n";
      pp_block buf (ind + 1) b1;
      indent buf ind;
      match b2 with
      | None -> Buffer.add_string buf "}\n"
      | Some b ->
          Buffer.add_string buf "} else {\n";
          pp_block buf (ind + 1) b;
          indent buf ind;
          Buffer.add_string buf "}\n")
  | For (h, b) ->
      indent buf ind;
      Buffer.add_string buf ("for (int " ^ h.index ^ " = ");
      pp_expr buf h.init;
      Buffer.add_string buf ("; " ^ h.index ^ (if h.inclusive then " <= " else " < "));
      pp_expr buf h.bound;
      Buffer.add_string buf ("; " ^ h.index);
      (match h.step.enode with
      | Int_lit 1 -> Buffer.add_string buf "++"
      | _ ->
          Buffer.add_string buf " += ";
          pp_expr buf h.step);
      Buffer.add_string buf ") {\n";
      pp_block buf (ind + 1) b;
      indent buf ind;
      Buffer.add_string buf "}\n"
  | While (c, b) ->
      indent buf ind;
      Buffer.add_string buf "while (";
      pp_expr buf c;
      Buffer.add_string buf ") {\n";
      pp_block buf (ind + 1) b;
      indent buf ind;
      Buffer.add_string buf "}\n"
  | Return None ->
      indent buf ind;
      Buffer.add_string buf "return;\n"
  | Return (Some e) ->
      indent buf ind;
      Buffer.add_string buf "return ";
      pp_expr buf e;
      Buffer.add_string buf ";\n"
  | Block b ->
      indent buf ind;
      Buffer.add_string buf "{\n";
      pp_block buf (ind + 1) b;
      indent buf ind;
      Buffer.add_string buf "}\n"

and pp_block buf ind b = List.iter (pp_stmt buf ind) b

let pp_func buf (f : func) =
  Buffer.add_string buf (string_of_typ f.fret ^ " " ^ f.fname ^ "(");
  List.iteri
    (fun k (p : param) ->
      if k > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (string_of_typ p.ptyp ^ " " ^ p.pname_))
    f.fparams;
  Buffer.add_string buf ") {\n";
  pp_block buf 1 f.fbody;
  Buffer.add_string buf "}\n"

(** Render a whole program as MiniC source text. The output re-parses to
    a structurally identical program (round-trip property tested in
    [test/test_minic.ml]). *)
let program_to_string (p : program) =
  let buf = Buffer.create 4096 in
  List.iter (fun g -> pp_stmt buf 0 g) p.globals;
  if p.globals <> [] then Buffer.add_char buf '\n';
  List.iteri
    (fun k f ->
      if k > 0 then Buffer.add_char buf '\n';
      pp_func buf f)
    p.funcs;
  Buffer.contents buf

let stmt_to_string s =
  let buf = Buffer.create 128 in
  pp_stmt buf 0 s;
  Buffer.contents buf
