(** Recursive-descent parser for MiniC.

    The grammar is a small C subset; [for] loops must be in canonical
    counted form ([for (int i = e0; i < e1; i++ | i += e2 | i = i + e2)]),
    which is what the loop analyses reason about.  Pragma lines bind to
    the next statement. *)

(** Raised on syntax errors, with a message and location. *)
exception Parse_error of string * Loc.t

(** Parse MiniC source text into a program.
    @raise Lexer.Lex_error on lexical errors
    @raise Parse_error on syntax errors *)
val parse_program : string -> Ast.program

(** Parse a single expression (tests and textual transform inputs). *)
val parse_expr_string : string -> Ast.expr
