(** Lines-of-code metric used for the Table I productivity evaluation.

    Matches the paper's methodology: LOC of the pretty-printed source,
    counting non-blank, non-comment lines.  The "added LOC" of a generated
    design is its LOC minus the reference source's LOC. *)

let is_blank line = String.trim line = ""

let is_comment line =
  let t = String.trim line in
  String.length t >= 2 && String.sub t 0 2 = "//"

(** Count non-blank, non-comment lines in source text. *)
let count_source src =
  String.split_on_char '\n' src
  |> List.filter (fun l -> (not (is_blank l)) && not (is_comment l))
  |> List.length

(** LOC of a program, measured on its canonical pretty-printed form so the
    metric is insensitive to input formatting. *)
let count_program p = count_source (Pretty.program_to_string p)

(** Added lines of a generated design relative to a reference program. *)
let delta ~reference ~design = count_program design - count_program reference

(** Added LOC as a percentage of the reference LOC, as reported in
    Table I (e.g. [+36.2]). *)
let delta_percent ~reference ~design =
  let ref_loc = count_program reference in
  if ref_loc = 0 then 0.0
  else 100.0 *. float_of_int (delta ~reference ~design) /. float_of_int ref_loc
