(** Convenience constructors for building MiniC fragments programmatically.

    Used by the transform and code-generation tasks, which synthesise new
    statements (kernel wrappers, management code) to splice into programs. *)

open Ast

let int n = mk_expr (Int_lit n)
let flt ?(kind = Double) f = mk_expr (Float_lit (f, kind))
let var v = mk_expr (Var v)
let call f args = mk_expr (Call (f, args))
let idx a i = mk_expr (Index (a, i))
let cast t e = mk_expr (Cast (t, e))
let neg e = mk_expr (Unop (Neg, e))
let binop op a b = mk_expr (Binop (op, a, b))
let ( +: ) a b = binop Add a b
let ( -: ) a b = binop Sub a b
let ( *: ) a b = binop Mul a b
let ( /: ) a b = binop Div a b
let ( <: ) a b = binop Lt a b
let ( <=: ) a b = binop Le a b

let decl ?size ?init typ name =
  mk_stmt (Decl { dtyp = typ; dname = name; dsize = size; dinit = init })

let assign ?(op = Set) lv e = mk_stmt (Assign (lv, op, e))
let set v e = assign (Lvar v) e
let set_idx a i e = assign (Lindex (a, i)) e
let add_eq v e = assign ~op:AddEq (Lvar v) e
let expr_stmt e = mk_stmt (Expr_stmt e)
let call_stmt f args = expr_stmt (call f args)
let return_ e = mk_stmt (Return (Some e))
let return_void = mk_stmt (Return None)
let if_ c b1 b2 = mk_stmt (If (c, b1, b2))
let while_ c b = mk_stmt (While (c, b))
let block b = mk_stmt (Block b)

(** Canonical counted loop [for (int index = init; index < bound; index += step)]. *)
let for_ ?(inclusive = false) ?(step = int 1) index ~init ~bound body =
  mk_stmt (For ({ index; init; bound; inclusive; step }, body))

let pragma ?(args = []) name = { pname = name; pargs = args }

(** Attach extra pragmas to an existing statement (keeps its id). *)
let with_pragmas ps (s : stmt) = { s with pragmas = s.pragmas @ ps }

let func ?(ret = Tvoid) name params body =
  {
    fname = name;
    fret = ret;
    fparams = List.map (fun (t, n) -> { ptyp = t; pname_ = n }) params;
    fbody = body;
    floc = Loc.none;
  }

let program ?(globals = []) funcs = { globals; funcs }
