(** Hand-written lexer for MiniC.

    Supports C-style line ([//]) and block ([/* */]) comments, [#pragma]
    lines (lexed as a single token carrying the pragma words), decimal
    integer literals, and floating literals with an optional [f] suffix
    marking single precision. *)

exception Lex_error of string * Loc.t

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (** offset of beginning of current line *)
}

let make src = { src; pos = 0; line = 1; bol = 0 }

let loc st = Loc.make ~line:st.line ~col:(st.pos - st.bol)

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.bol <- st.pos + 1
  | _ -> ());
  st.pos <- st.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let rec skip_ws_and_comments st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_ws_and_comments st
  | Some '/' when peek2 st = Some '/' ->
      let rec to_eol () =
        match peek st with
        | Some '\n' | None -> ()
        | Some _ ->
            advance st;
            to_eol ()
      in
      to_eol ();
      skip_ws_and_comments st
  | Some '/' when peek2 st = Some '*' ->
      advance st;
      advance st;
      let rec to_close () =
        match (peek st, peek2 st) with
        | Some '*', Some '/' ->
            advance st;
            advance st
        | None, _ -> raise (Lex_error ("unterminated block comment", loc st))
        | Some _, _ ->
            advance st;
            to_close ()
      in
      to_close ();
      skip_ws_and_comments st
  | _ -> ()

let lex_number st =
  let start = st.pos in
  let consume_digits () =
    while (match peek st with Some c -> is_digit c | None -> false) do
      advance st
    done
  in
  consume_digits ();
  let is_float = ref false in
  (match peek st with
  | Some '.' ->
      is_float := true;
      advance st;
      consume_digits ()
  | _ -> ());
  (match peek st with
  | Some ('e' | 'E') ->
      is_float := true;
      advance st;
      (match peek st with Some ('+' | '-') -> advance st | _ -> ());
      consume_digits ()
  | _ -> ());
  let text = String.sub st.src start (st.pos - start) in
  match peek st with
  | Some ('f' | 'F') ->
      advance st;
      Token.FLOAT_LIT (float_of_string text, Ast.Single)
  | _ ->
      if !is_float then Token.FLOAT_LIT (float_of_string text, Ast.Double)
      else Token.INT_LIT (int_of_string text)

let lex_ident st =
  let start = st.pos in
  while (match peek st with Some c -> is_ident_char c | None -> false) do
    advance st
  done;
  let text = String.sub st.src start (st.pos - start) in
  match text with
  | "void" -> Token.KW_VOID
  | "bool" -> Token.KW_BOOL
  | "int" -> Token.KW_INT
  | "float" -> Token.KW_FLOAT
  | "double" -> Token.KW_DOUBLE
  | "if" -> Token.KW_IF
  | "else" -> Token.KW_ELSE
  | "for" -> Token.KW_FOR
  | "while" -> Token.KW_WHILE
  | "return" -> Token.KW_RETURN
  | "true" -> Token.KW_TRUE
  | "false" -> Token.KW_FALSE
  | _ -> Token.IDENT text

(** Lex a [#pragma ...] line into its whitespace-separated words. *)
let lex_pragma st =
  (* at '#' *)
  let start = st.pos in
  let rec to_eol () =
    match peek st with
    | Some '\n' | None -> ()
    | Some _ ->
        advance st;
        to_eol ()
  in
  to_eol ();
  let text = String.sub st.src start (st.pos - start) in
  let words =
    String.split_on_char ' ' text
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun w -> w <> "")
  in
  match words with
  | "#pragma" :: rest -> Token.PRAGMA rest
  | _ -> raise (Lex_error ("malformed directive: " ^ text, loc st))

(** Produce the next token together with its starting location. *)
let next st : Token.t * Loc.t =
  skip_ws_and_comments st;
  let l = loc st in
  match peek st with
  | None -> (Token.EOF, l)
  | Some c -> (
      match c with
      | '#' -> (lex_pragma st, l)
      | c when is_digit c -> (lex_number st, l)
      | c when is_ident_start c -> (lex_ident st, l)
      | '(' -> advance st; (Token.LPAREN, l)
      | ')' -> advance st; (Token.RPAREN, l)
      | '{' -> advance st; (Token.LBRACE, l)
      | '}' -> advance st; (Token.RBRACE, l)
      | '[' -> advance st; (Token.LBRACKET, l)
      | ']' -> advance st; (Token.RBRACKET, l)
      | ';' -> advance st; (Token.SEMI, l)
      | ',' -> advance st; (Token.COMMA, l)
      | '%' -> advance st; (Token.PERCENT, l)
      | '+' ->
          advance st;
          (match peek st with
          | Some '=' -> advance st; (Token.PLUS_EQ, l)
          | Some '+' -> advance st; (Token.PLUS_PLUS, l)
          | _ -> (Token.PLUS, l))
      | '-' ->
          advance st;
          (match peek st with
          | Some '=' -> advance st; (Token.MINUS_EQ, l)
          | Some '-' -> advance st; (Token.MINUS_MINUS, l)
          | _ -> (Token.MINUS, l))
      | '*' ->
          advance st;
          (match peek st with
          | Some '=' -> advance st; (Token.STAR_EQ, l)
          | _ -> (Token.STAR, l))
      | '/' ->
          advance st;
          (match peek st with
          | Some '=' -> advance st; (Token.SLASH_EQ, l)
          | _ -> (Token.SLASH, l))
      | '=' ->
          advance st;
          (match peek st with
          | Some '=' -> advance st; (Token.EQ_EQ, l)
          | _ -> (Token.ASSIGN, l))
      | '<' ->
          advance st;
          (match peek st with
          | Some '=' -> advance st; (Token.LE, l)
          | _ -> (Token.LT, l))
      | '>' ->
          advance st;
          (match peek st with
          | Some '=' -> advance st; (Token.GE, l)
          | _ -> (Token.GT, l))
      | '!' ->
          advance st;
          (match peek st with
          | Some '=' -> advance st; (Token.NE, l)
          | _ -> (Token.BANG, l))
      | '&' ->
          advance st;
          (match peek st with
          | Some '&' -> advance st; (Token.AMP_AMP, l)
          | _ -> raise (Lex_error ("unexpected '&'", l)))
      | '|' ->
          advance st;
          (match peek st with
          | Some '|' -> advance st; (Token.BAR_BAR, l)
          | _ -> raise (Lex_error ("unexpected '|'", l)))
      | c -> raise (Lex_error (Printf.sprintf "unexpected character '%c'" c, l)))

(** Lex an entire source string into a token list (including final EOF). *)
let tokenize src =
  let st = make src in
  let rec go acc =
    let t, l = next st in
    if t = Token.EOF then List.rev ((t, l) :: acc) else go ((t, l) :: acc)
  in
  go []
