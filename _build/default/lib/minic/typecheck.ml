(** Static type checker for MiniC programs.

    Checks that every reference program and every generated design is
    well-typed: variables are declared before use, array indexing applies
    to pointers, call arities match, conditions are boolean/integer, and
    arithmetic only combines numeric operands (with the usual C widening
    int -> float -> double).

    Generated designs contain calls to target-runtime management functions
    (e.g. [hipMemcpy]) that MiniC does not model; pass
    [~allow_unknown_calls:true] when checking those. *)

open Ast

exception Type_error of string * Loc.t

type env = {
  vars : (string, typ) Hashtbl.t;
  funcs : (string, typ list * typ) Hashtbl.t;
  allow_unknown_calls : bool;
  ret : typ;
}

let err loc fmt = Printf.ksprintf (fun m -> raise (Type_error (m, loc))) fmt

let is_numeric = function Tint | Tfloat | Tdouble -> true | _ -> false

(** C-style usual arithmetic conversion. *)
let join loc a b =
  if not (is_numeric a && is_numeric b) then
    err loc "cannot combine %s and %s" (string_of_typ a) (string_of_typ b)
  else if a = Tdouble || b = Tdouble then Tdouble
  else if a = Tfloat || b = Tfloat then Tfloat
  else Tint

(** [b] is assignable to a location of type [a]. *)
let assignable a b =
  equal_typ a b || (is_numeric a && is_numeric b)
  || (match (a, b) with Tbool, Tint -> true | _ -> false)

let rec type_expr env (e : expr) : typ =
  match e.enode with
  | Int_lit _ -> Tint
  | Float_lit (_, Single) -> Tfloat
  | Float_lit (_, Double) -> Tdouble
  | Bool_lit _ -> Tbool
  | Var v -> (
      match Hashtbl.find_opt env.vars v with
      | Some t -> t
      | None -> err e.eloc "undeclared variable '%s'" v)
  | Unop (Neg, a) ->
      let t = type_expr env a in
      if is_numeric t then t else err e.eloc "negation of non-numeric value"
  | Unop (Not, a) ->
      let t = type_expr env a in
      if t = Tbool || t = Tint then Tbool
      else err e.eloc "logical not of non-boolean value"
  | Binop (op, a, b) -> (
      let ta = type_expr env a and tb = type_expr env b in
      match op with
      | Add | Sub | Mul | Div ->
          if is_numeric ta && is_numeric tb then join e.eloc ta tb
          else err e.eloc "arithmetic on non-numeric operands"
      | Mod ->
          if ta = Tint && tb = Tint then Tint
          else err e.eloc "'%%' requires integer operands"
      | Lt | Le | Gt | Ge ->
          if is_numeric ta && is_numeric tb then Tbool
          else err e.eloc "comparison of non-numeric operands"
      | Eq | Ne ->
          if (is_numeric ta && is_numeric tb) || equal_typ ta tb then Tbool
          else err e.eloc "equality between incompatible types"
      | LAnd | LOr ->
          let ok t = t = Tbool || t = Tint in
          if ok ta && ok tb then Tbool
          else err e.eloc "logical operator on non-boolean operands")
  | Index (a, i) -> (
      let ta = type_expr env a and ti = type_expr env i in
      if ti <> Tint then err e.eloc "array index must be an int";
      match ta with
      | Tptr t -> t
      | t -> err e.eloc "indexing a non-pointer value of type %s" (string_of_typ t))
  | Cast (t, a) ->
      let ta = type_expr env a in
      if is_numeric t && is_numeric ta then t
      else if equal_typ t ta then t
      else err e.eloc "invalid cast from %s to %s" (string_of_typ ta) (string_of_typ t)
  | Call (f, args) -> (
      let arg_types = List.map (type_expr env) args in
      match Hashtbl.find_opt env.funcs f with
      | Some (params, ret) ->
          if List.length params <> List.length args then
            err e.eloc "call to '%s' with %d arguments, expected %d" f
              (List.length args) (List.length params);
          List.iteri
            (fun k (expected, got) ->
              if not (assignable expected got) then
                err e.eloc "argument %d of '%s': expected %s, got %s" (k + 1)
                  f (string_of_typ expected) (string_of_typ got))
            (List.combine params arg_types);
          ret
      | None -> (
          match Builtins.lookup f with
          | Some s ->
              if List.length s.args <> List.length args then
                err e.eloc "builtin '%s' applied to %d arguments, expected %d"
                  f (List.length args) (List.length s.args);
              List.iteri
                (fun k (expected, got) ->
                  if not (assignable expected got) then
                    err e.eloc "argument %d of builtin '%s': expected %s, got %s"
                      (k + 1) f (string_of_typ expected) (string_of_typ got))
                (List.combine s.args arg_types);
              s.ret
          | None ->
              if env.allow_unknown_calls then Tint
              else err e.eloc "call to unknown function '%s'" f))

let type_cond env e =
  let t = type_expr env e in
  if t <> Tbool && t <> Tint then
    err e.eloc "condition must be boolean, got %s" (string_of_typ t)

let declared_type d =
  match d.dsize with Some _ -> Tptr d.dtyp | None -> d.dtyp

let rec check_stmt env (s : stmt) =
  match s.snode with
  | Decl d ->
      (match d.dsize with
      | Some e ->
          if type_expr env e <> Tint then
            err s.sloc "array size of '%s' must be an int" d.dname
      | None -> ());
      (match d.dinit with
      | Some e ->
          let t = type_expr env e in
          if not (assignable d.dtyp t) then
            err s.sloc "initialiser of '%s': expected %s, got %s" d.dname
              (string_of_typ d.dtyp) (string_of_typ t)
      | None -> ());
      Hashtbl.replace env.vars d.dname (declared_type d)
  | Assign (lv, op, e) ->
      let tl =
        match lv with
        | Lvar v -> (
            match Hashtbl.find_opt env.vars v with
            | Some t -> t
            | None -> err s.sloc "assignment to undeclared variable '%s'" v)
        | Lindex (a, i) -> (
            let ti = type_expr env i in
            if ti <> Tint then err s.sloc "array index must be an int";
            match type_expr env a with
            | Tptr t -> t
            | t -> err s.sloc "indexing non-pointer of type %s" (string_of_typ t))
      in
      let te = type_expr env e in
      if not (assignable tl te) then
        err s.sloc "assignment: expected %s, got %s" (string_of_typ tl)
          (string_of_typ te);
      if op <> Set && not (is_numeric tl) then
        err s.sloc "compound assignment requires a numeric target"
  | Expr_stmt e -> ignore (type_expr env e)
  | If (c, b1, b2) ->
      type_cond env c;
      check_block env b1;
      Option.iter (check_block env) b2
  | While (c, b) ->
      type_cond env c;
      check_block env b
  | For (h, b) ->
      let check_int name e =
        if type_expr env e <> Tint then
          err s.sloc "for-loop %s must be an int" name
      in
      Hashtbl.replace env.vars h.index Tint;
      check_int "initialiser" h.init;
      check_int "bound" h.bound;
      check_int "step" h.step;
      check_block env b
  | Return None ->
      if env.ret <> Tvoid then err s.sloc "missing return value"
  | Return (Some e) ->
      let t = type_expr env e in
      if not (assignable env.ret t) then
        err s.sloc "return type mismatch: expected %s, got %s"
          (string_of_typ env.ret) (string_of_typ t)
  | Block b -> check_block env b

(* Scoping is simplified: a block does not pop declarations.  Benchmark
   sources never reuse a name in sibling scopes, and the transforms only
   generate fresh names, so this does not affect any analysis. *)
and check_block env b = List.iter (check_stmt env) b

(** Type-check a whole program.
    @raise Type_error on the first violation found. *)
let check_program ?(allow_unknown_calls = false) (p : program) =
  let funcs = Hashtbl.create 16 in
  List.iter
    (fun f ->
      Hashtbl.replace funcs f.fname
        (List.map (fun (pr : param) -> pr.ptyp) f.fparams, f.fret))
    p.funcs;
  let global_vars = Hashtbl.create 16 in
  let genv =
    { vars = global_vars; funcs; allow_unknown_calls; ret = Tvoid }
  in
  List.iter (check_stmt genv) p.globals;
  List.iter
    (fun f ->
      let vars = Hashtbl.copy global_vars in
      List.iter (fun (pr : param) -> Hashtbl.replace vars pr.pname_ pr.ptyp) f.fparams;
      let env = { genv with vars; ret = f.fret } in
      check_block env f.fbody)
    p.funcs

(** [true] if the program type-checks. *)
let is_well_typed ?allow_unknown_calls p =
  match check_program ?allow_unknown_calls p with
  | () -> true
  | exception Type_error _ -> false
