(** Lines-of-code metric for the Table I productivity evaluation:
    non-blank, non-comment lines of the canonical pretty-printed form,
    so the metric is insensitive to input formatting. *)

(** Count non-blank, non-comment lines in source text. *)
val count_source : string -> int

(** LOC of a program, measured on its pretty-printed form. *)
val count_program : Ast.program -> int

(** Added lines of a generated design relative to a reference program. *)
val delta : reference:Ast.program -> design:Ast.program -> int

(** Added LOC as a percentage of the reference LOC, as in Table I. *)
val delta_percent : reference:Ast.program -> design:Ast.program -> float
