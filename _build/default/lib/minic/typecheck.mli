(** Static type checker for MiniC programs. *)

(** Raised on the first violation found, with a message and location. *)
exception Type_error of string * Loc.t

(** Type-check a whole program.

    @param allow_unknown_calls accept calls to functions MiniC does not
      know (the target-runtime management calls in generated designs);
      default false
    @raise Type_error on the first violation *)
val check_program : ?allow_unknown_calls:bool -> Ast.program -> unit

(** [true] iff the program type-checks. *)
val is_well_typed : ?allow_unknown_calls:bool -> Ast.program -> bool
