(** Recursive-descent parser for MiniC.

    The grammar is a small C subset.  [for] loops must be in canonical
    counted form

    {v for (int i = e0; i < e1; i++ | i += e2 | i = i + e2) { ... } v}

    which is the form all five benchmark applications use and the form the
    loop analyses reason about.  Pragma lines bind to the next statement. *)

exception Parse_error of string * Loc.t

type state = { mutable toks : (Token.t * Loc.t) list }

let make toks = { toks }

let peek st =
  match st.toks with [] -> (Token.EOF, Loc.none) | t :: _ -> t

let peek_tok st = fst (peek st)

let peek2_tok st =
  match st.toks with _ :: (t, _) :: _ -> t | _ -> Token.EOF

let advance st = match st.toks with [] -> () | _ :: r -> st.toks <- r

let error st msg =
  let tok, l = peek st in
  raise
    (Parse_error
       (Printf.sprintf "%s (found %s)" msg (Token.describe tok), l))

let expect st tok msg =
  if Token.equal (peek_tok st) tok then advance st else error st msg

let expect_ident st msg =
  match peek st with
  | Token.IDENT s, _ ->
      advance st;
      s
  | _ -> error st msg

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

let base_typ_of_tok = function
  | Token.KW_VOID -> Some Ast.Tvoid
  | Token.KW_BOOL -> Some Ast.Tbool
  | Token.KW_INT -> Some Ast.Tint
  | Token.KW_FLOAT -> Some Ast.Tfloat
  | Token.KW_DOUBLE -> Some Ast.Tdouble
  | _ -> None

let starts_typ st = base_typ_of_tok (peek_tok st) <> None

(** Parse a type: base type followed by zero or more ['*']. *)
let parse_typ st =
  match base_typ_of_tok (peek_tok st) with
  | None -> error st "expected a type"
  | Some base ->
      advance st;
      let rec stars t =
        if Token.equal (peek_tok st) Token.STAR then (
          advance st;
          stars (Ast.Tptr t))
        else t
      in
      stars base

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec parse_expr st = parse_lor st

and parse_lor st =
  let rec go lhs =
    match peek st with
    | Token.BAR_BAR, loc ->
        advance st;
        let rhs = parse_land st in
        go (Ast.mk_expr ~loc (Ast.Binop (Ast.LOr, lhs, rhs)))
    | _ -> lhs
  in
  go (parse_land st)

and parse_land st =
  let rec go lhs =
    match peek st with
    | Token.AMP_AMP, loc ->
        advance st;
        let rhs = parse_equality st in
        go (Ast.mk_expr ~loc (Ast.Binop (Ast.LAnd, lhs, rhs)))
    | _ -> lhs
  in
  go (parse_equality st)

and parse_equality st =
  let rec go lhs =
    match peek st with
    | Token.EQ_EQ, loc ->
        advance st;
        go (Ast.mk_expr ~loc (Ast.Binop (Ast.Eq, lhs, parse_rel st)))
    | Token.NE, loc ->
        advance st;
        go (Ast.mk_expr ~loc (Ast.Binop (Ast.Ne, lhs, parse_rel st)))
    | _ -> lhs
  in
  go (parse_rel st)

and parse_rel st =
  let rec go lhs =
    match peek st with
    | Token.LT, loc ->
        advance st;
        go (Ast.mk_expr ~loc (Ast.Binop (Ast.Lt, lhs, parse_additive st)))
    | Token.LE, loc ->
        advance st;
        go (Ast.mk_expr ~loc (Ast.Binop (Ast.Le, lhs, parse_additive st)))
    | Token.GT, loc ->
        advance st;
        go (Ast.mk_expr ~loc (Ast.Binop (Ast.Gt, lhs, parse_additive st)))
    | Token.GE, loc ->
        advance st;
        go (Ast.mk_expr ~loc (Ast.Binop (Ast.Ge, lhs, parse_additive st)))
    | _ -> lhs
  in
  go (parse_additive st)

and parse_additive st =
  let rec go lhs =
    match peek st with
    | Token.PLUS, loc ->
        advance st;
        go (Ast.mk_expr ~loc (Ast.Binop (Ast.Add, lhs, parse_mul st)))
    | Token.MINUS, loc ->
        advance st;
        go (Ast.mk_expr ~loc (Ast.Binop (Ast.Sub, lhs, parse_mul st)))
    | _ -> lhs
  in
  go (parse_mul st)

and parse_mul st =
  let rec go lhs =
    match peek st with
    | Token.STAR, loc ->
        advance st;
        go (Ast.mk_expr ~loc (Ast.Binop (Ast.Mul, lhs, parse_unary st)))
    | Token.SLASH, loc ->
        advance st;
        go (Ast.mk_expr ~loc (Ast.Binop (Ast.Div, lhs, parse_unary st)))
    | Token.PERCENT, loc ->
        advance st;
        go (Ast.mk_expr ~loc (Ast.Binop (Ast.Mod, lhs, parse_unary st)))
    | _ -> lhs
  in
  go (parse_unary st)

and parse_unary st =
  match peek st with
  | Token.MINUS, loc ->
      advance st;
      Ast.mk_expr ~loc (Ast.Unop (Ast.Neg, parse_unary st))
  | Token.BANG, loc ->
      advance st;
      Ast.mk_expr ~loc (Ast.Unop (Ast.Not, parse_unary st))
  | Token.LPAREN, loc when starts_typ_after_lparen st ->
      (* cast: '(' typ ')' unary *)
      advance st;
      let t = parse_typ st in
      expect st Token.RPAREN "expected ')' after cast type";
      Ast.mk_expr ~loc (Ast.Cast (t, parse_unary st))
  | _ -> parse_postfix st

and starts_typ_after_lparen st =
  Token.equal (peek_tok st) Token.LPAREN
  && base_typ_of_tok (peek2_tok st) <> None

and parse_postfix st =
  let rec go e =
    match peek st with
    | Token.LBRACKET, loc ->
        advance st;
        let idx = parse_expr st in
        expect st Token.RBRACKET "expected ']'";
        go (Ast.mk_expr ~loc (Ast.Index (e, idx)))
    | _ -> e
  in
  go (parse_primary st)

and parse_primary st =
  match peek st with
  | Token.INT_LIT n, loc ->
      advance st;
      Ast.mk_expr ~loc (Ast.Int_lit n)
  | Token.FLOAT_LIT (f, k), loc ->
      advance st;
      Ast.mk_expr ~loc (Ast.Float_lit (f, k))
  | Token.KW_TRUE, loc ->
      advance st;
      Ast.mk_expr ~loc (Ast.Bool_lit true)
  | Token.KW_FALSE, loc ->
      advance st;
      Ast.mk_expr ~loc (Ast.Bool_lit false)
  | Token.IDENT name, loc ->
      advance st;
      if Token.equal (peek_tok st) Token.LPAREN then (
        advance st;
        let args =
          if Token.equal (peek_tok st) Token.RPAREN then []
          else
            let rec go acc =
              let a = parse_expr st in
              if Token.equal (peek_tok st) Token.COMMA then (
                advance st;
                go (a :: acc))
              else List.rev (a :: acc)
            in
            go []
        in
        expect st Token.RPAREN "expected ')' after call arguments";
        Ast.mk_expr ~loc (Ast.Call (name, args)))
      else Ast.mk_expr ~loc (Ast.Var name)
  | Token.LPAREN, _ ->
      advance st;
      let e = parse_expr st in
      expect st Token.RPAREN "expected ')'";
      e
  | _ -> error st "expected an expression"

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let parse_pragmas st =
  let rec go acc =
    match peek st with
    | Token.PRAGMA words, _ -> (
        advance st;
        match words with
        | [] -> go acc
        | name :: args -> go ({ Ast.pname = name; pargs = args } :: acc))
    | _ -> List.rev acc
  in
  go []

let lvalue_of_expr st (e : Ast.expr) =
  match e.enode with
  | Ast.Var v -> Ast.Lvar v
  | Ast.Index (a, i) -> Ast.Lindex (a, i)
  | _ -> error st "expected an assignable expression"

let rec parse_stmt st : Ast.stmt =
  let pragmas = parse_pragmas st in
  let s = parse_core_stmt st in
  { s with pragmas = pragmas @ s.pragmas }

and parse_core_stmt st : Ast.stmt =
  match peek st with
  | Token.LBRACE, loc ->
      let b = parse_block st in
      Ast.mk_stmt ~loc (Ast.Block b)
  | Token.KW_IF, loc ->
      advance st;
      expect st Token.LPAREN "expected '(' after if";
      let c = parse_expr st in
      expect st Token.RPAREN "expected ')' after if condition";
      let then_b = parse_stmt_as_block st in
      let else_b =
        match peek_tok st with
        | Token.KW_ELSE ->
            advance st;
            Some (parse_stmt_as_block st)
        | _ -> None
      in
      Ast.mk_stmt ~loc (Ast.If (c, then_b, else_b))
  | Token.KW_WHILE, loc ->
      advance st;
      expect st Token.LPAREN "expected '(' after while";
      let c = parse_expr st in
      expect st Token.RPAREN "expected ')' after while condition";
      let b = parse_stmt_as_block st in
      Ast.mk_stmt ~loc (Ast.While (c, b))
  | Token.KW_FOR, loc ->
      advance st;
      let header = parse_for_header st in
      let b = parse_stmt_as_block st in
      Ast.mk_stmt ~loc (Ast.For (header, b))
  | Token.KW_RETURN, loc ->
      advance st;
      if Token.equal (peek_tok st) Token.SEMI then (
        advance st;
        Ast.mk_stmt ~loc (Ast.Return None))
      else
        let e = parse_expr st in
        expect st Token.SEMI "expected ';' after return";
        Ast.mk_stmt ~loc (Ast.Return (Some e))
  | _, loc when starts_typ st ->
      let d = parse_decl st in
      expect st Token.SEMI "expected ';' after declaration";
      Ast.mk_stmt ~loc (Ast.Decl d)
  | _, loc ->
      let s = parse_assign_or_expr st in
      expect st Token.SEMI "expected ';' after statement";
      { s with sloc = loc }

(** A declaration [typ name([size])? (= init)?], without the ';'. *)
and parse_decl st : Ast.decl =
  let dtyp = parse_typ st in
  let dname = expect_ident st "expected a name in declaration" in
  let dsize =
    if Token.equal (peek_tok st) Token.LBRACKET then (
      advance st;
      let e = parse_expr st in
      expect st Token.RBRACKET "expected ']' in array declaration";
      Some e)
    else None
  in
  let dinit =
    if Token.equal (peek_tok st) Token.ASSIGN then (
      advance st;
      Some (parse_expr st))
    else None
  in
  { Ast.dtyp; dname; dsize; dinit }

and parse_assign_or_expr st : Ast.stmt =
  let loc = snd (peek st) in
  let e = parse_expr st in
  let mk_assign op =
    advance st;
    let rhs = parse_expr st in
    Ast.mk_stmt ~loc (Ast.Assign (lvalue_of_expr st e, op, rhs))
  in
  match peek_tok st with
  | Token.ASSIGN -> mk_assign Ast.Set
  | Token.PLUS_EQ -> mk_assign Ast.AddEq
  | Token.MINUS_EQ -> mk_assign Ast.SubEq
  | Token.STAR_EQ -> mk_assign Ast.MulEq
  | Token.SLASH_EQ -> mk_assign Ast.DivEq
  | Token.PLUS_PLUS ->
      advance st;
      let one = Ast.mk_expr (Ast.Int_lit 1) in
      Ast.mk_stmt ~loc (Ast.Assign (lvalue_of_expr st e, Ast.AddEq, one))
  | Token.MINUS_MINUS ->
      advance st;
      let one = Ast.mk_expr (Ast.Int_lit 1) in
      Ast.mk_stmt ~loc (Ast.Assign (lvalue_of_expr st e, Ast.SubEq, one))
  | _ -> Ast.mk_stmt ~loc (Ast.Expr_stmt e)

(** Canonical for header: [( int? i = e; i <|<= e; i++ | i += e | i = i + e )]. *)
and parse_for_header st : Ast.for_header =
  expect st Token.LPAREN "expected '(' after for";
  (match peek_tok st with
  | Token.KW_INT -> advance st
  | _ -> ());
  let index = expect_ident st "expected loop index variable" in
  expect st Token.ASSIGN "expected '=' in for initialiser";
  let init = parse_expr st in
  expect st Token.SEMI "expected ';' after for initialiser";
  let index2 = expect_ident st "expected loop index in for condition" in
  if index2 <> index then
    error st
      (Printf.sprintf "for condition must test loop index '%s'" index);
  let inclusive =
    match peek_tok st with
    | Token.LT ->
        advance st;
        false
    | Token.LE ->
        advance st;
        true
    | _ -> error st "expected '<' or '<=' in for condition"
  in
  let bound = parse_expr st in
  expect st Token.SEMI "expected ';' after for condition";
  let index3 = expect_ident st "expected loop index in for step" in
  if index3 <> index then
    error st (Printf.sprintf "for step must update loop index '%s'" index);
  let step =
    match peek_tok st with
    | Token.PLUS_PLUS ->
        advance st;
        Ast.mk_expr (Ast.Int_lit 1)
    | Token.PLUS_EQ ->
        advance st;
        parse_expr st
    | Token.ASSIGN -> (
        advance st;
        (* i = i + e *)
        let e = parse_expr st in
        match e.enode with
        | Ast.Binop (Ast.Add, { enode = Ast.Var v; _ }, rhs) when v = index ->
            rhs
        | Ast.Binop (Ast.Add, lhs, { enode = Ast.Var v; _ }) when v = index ->
            lhs
        | _ -> error st "for step must be of the form i = i + e")
    | _ -> error st "expected '++', '+=' or '=' in for step"
  in
  expect st Token.RPAREN "expected ')' after for header";
  { Ast.index; init; bound; inclusive; step }

and parse_stmt_as_block st : Ast.block =
  if Token.equal (peek_tok st) Token.LBRACE then parse_block st
  else [ parse_stmt st ]

and parse_block st : Ast.block =
  expect st Token.LBRACE "expected '{'";
  let rec go acc =
    if Token.equal (peek_tok st) Token.RBRACE then (
      advance st;
      List.rev acc)
    else if Token.equal (peek_tok st) Token.EOF then
      error st "unexpected end of input in block"
    else go (parse_stmt st :: acc)
  in
  go []

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

let parse_params st =
  expect st Token.LPAREN "expected '(' in function definition";
  if Token.equal (peek_tok st) Token.RPAREN then (
    advance st;
    [])
  else
    let rec go acc =
      let ptyp = parse_typ st in
      let pname_ = expect_ident st "expected parameter name" in
      let acc = { Ast.ptyp; pname_ } :: acc in
      if Token.equal (peek_tok st) Token.COMMA then (
        advance st;
        go acc)
      else (
        expect st Token.RPAREN "expected ')' after parameters";
        List.rev acc)
    in
    go []

(** Parse a full translation unit. *)
let parse_program_tokens toks : Ast.program =
  let st = make toks in
  let globals = ref [] in
  let funcs = ref [] in
  let rec go () =
    match peek st with
    | Token.EOF, _ -> ()
    | _, loc when starts_typ st ->
        let t = parse_typ st in
        let name = expect_ident st "expected a top-level name" in
        if Token.equal (peek_tok st) Token.LPAREN then (
          let fparams = parse_params st in
          let fbody = parse_block st in
          funcs :=
            { Ast.fname = name; fret = t; fparams; fbody; floc = loc }
            :: !funcs;
          go ())
        else
          let dsize =
            if Token.equal (peek_tok st) Token.LBRACKET then (
              advance st;
              let e = parse_expr st in
              expect st Token.RBRACKET "expected ']'";
              Some e)
            else None
          in
          let dinit =
            if Token.equal (peek_tok st) Token.ASSIGN then (
              advance st;
              Some (parse_expr st))
            else None
          in
          expect st Token.SEMI "expected ';' after global declaration";
          globals :=
            Ast.mk_stmt ~loc
              (Ast.Decl { Ast.dtyp = t; dname = name; dsize; dinit })
            :: !globals;
          go ()
    | _ -> error st "expected a type at top level"
  in
  go ();
  { Ast.globals = List.rev !globals; funcs = List.rev !funcs }

(** Parse MiniC source text into a program.
    @raise Lexer.Lex_error on lexical errors
    @raise Parse_error on syntax errors *)
let parse_program src = parse_program_tokens (Lexer.tokenize src)

(** Parse a single expression (used by tests and by transforms that build
    small expressions from text). *)
let parse_expr_string src =
  let st = make (Lexer.tokenize src) in
  let e = parse_expr st in
  expect st Token.EOF "trailing input after expression";
  e
