(** Tokens produced by the MiniC lexer. *)

type t =
  | INT_LIT of int
  | FLOAT_LIT of float * Ast.fkind
  | IDENT of string
  | KW_VOID
  | KW_BOOL
  | KW_INT
  | KW_FLOAT
  | KW_DOUBLE
  | KW_IF
  | KW_ELSE
  | KW_FOR
  | KW_WHILE
  | KW_RETURN
  | KW_TRUE
  | KW_FALSE
  | PRAGMA of string list  (** [#pragma w1 w2 ...], one token per line *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | STAR
  | PLUS
  | MINUS
  | SLASH
  | PERCENT
  | ASSIGN
  | PLUS_EQ
  | MINUS_EQ
  | STAR_EQ
  | SLASH_EQ
  | PLUS_PLUS
  | MINUS_MINUS
  | LT
  | LE
  | GT
  | GE
  | EQ_EQ
  | NE
  | AMP_AMP
  | BAR_BAR
  | BANG
  | EOF
[@@deriving show { with_path = false }, eq]

(** Human-readable token name for parse-error messages. *)
let describe = function
  | INT_LIT n -> Printf.sprintf "integer literal %d" n
  | FLOAT_LIT (f, _) -> Printf.sprintf "float literal %g" f
  | IDENT s -> Printf.sprintf "identifier '%s'" s
  | PRAGMA ws -> Printf.sprintf "#pragma %s" (String.concat " " ws)
  | EOF -> "end of input"
  | t -> show t
