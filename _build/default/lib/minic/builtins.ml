(** Builtin functions known to MiniC.

    Three families:
    - math builtins in double and single precision (the "employ SP math
      functions" transform rewrites [sqrt] to [sqrtf], etc.);
    - GPU specialised intrinsics ([__expf], ...) introduced by the
      "employ specialised math fns" GPU transform;
    - runtime helpers used by the benchmarks themselves (deterministic
      pseudo-random input generation, printing, and the loop-timer hooks
      that the hotspot-detection task inserts). *)

open Ast

type signature = { args : typ list; ret : typ }

(** FLOP cost class of a math builtin, used by the interpreter's virtual
    cycle/FLOP accounting and by the FPGA resource estimator. *)
type cost_class =
  | Cheap  (** fabs, floor, fmin, fmax: ~1 flop *)
  | Trig  (** sin, cos, tanh: expensive elementary function *)
  | Exp_log  (** exp, log *)
  | Sqrt_div  (** sqrt *)
  | Power  (** pow *)

let d = Tdouble
let f = Tfloat

let math_table =
  (* name, double signature; the 'f'-suffixed single variant is derived *)
  [
    ("sqrt", [ d ], Sqrt_div);
    ("exp", [ d ], Exp_log);
    ("log", [ d ], Exp_log);
    ("sin", [ d ], Trig);
    ("cos", [ d ], Trig);
    ("tanh", [ d ], Trig);
    ("pow", [ d; d ], Power);
    ("fabs", [ d ], Cheap);
    ("floor", [ d ], Cheap);
    ("fmin", [ d; d ], Cheap);
    ("fmax", [ d; d ], Cheap);
  ]

(** GPU fast-math intrinsics: single precision, hardware special function
    units.  Introduced only on the GPU branch of the design-flow. *)
(* no __powf: pow has no hardware special-function path on these parts *)
let gpu_intrinsics =
  [ ("__expf", [ f ], Exp_log); ("__logf", [ f ], Exp_log);
    ("__sinf", [ f ], Trig); ("__cosf", [ f ], Trig);
    ("__tanhf", [ f ], Trig);
    ("__fsqrtf", [ f ], Sqrt_div); ("__fdividef", [ f; f ], Sqrt_div) ]

let runtime_table =
  [
    (* deterministic pseudo-random generators for self-contained inputs *)
    ("rand01", { args = []; ret = Tdouble });
    ("rand_int", { args = [ Tint ]; ret = Tint });
    (* output *)
    ("print_int", { args = [ Tint ]; ret = Tvoid });
    ("print_float", { args = [ Tdouble ]; ret = Tvoid });
    (* loop-timer hooks inserted by the hotspot-detection task *)
    ("__timer_start", { args = [ Tint ]; ret = Tvoid });
    ("__timer_stop", { args = [ Tint ]; ret = Tvoid });
  ]

(** Full signature table. *)
let signatures : (string, signature) Hashtbl.t =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (name, args, _) ->
      Hashtbl.replace tbl name { args; ret = Tdouble };
      Hashtbl.replace tbl (name ^ "f")
        { args = List.map (fun _ -> Tfloat) args; ret = Tfloat })
    math_table;
  List.iter
    (fun (name, args, _) -> Hashtbl.replace tbl name { args; ret = Tfloat })
    gpu_intrinsics;
  List.iter (fun (name, s) -> Hashtbl.replace tbl name s) runtime_table;
  tbl

let lookup name = Hashtbl.find_opt signatures name
let is_builtin name = Hashtbl.mem signatures name

(** Cost class of a math builtin (single- or double-precision name),
    [None] for non-math builtins. *)
let cost_class name =
  let base =
    if String.length name > 1 && name.[String.length name - 1] = 'f'
       && Hashtbl.mem signatures (String.sub name 0 (String.length name - 1))
    then String.sub name 0 (String.length name - 1)
    else name
  in
  match List.assoc_opt base (List.map (fun (n, _, c) -> (n, c)) math_table) with
  | Some c -> Some c
  | None ->
      List.assoc_opt name (List.map (fun (n, _, c) -> (n, c)) gpu_intrinsics)

(** True for the double-precision math builtins that have an 'f' variant:
    the set the SP-math transform rewrites. *)
let has_single_variant name =
  List.mem_assoc name (List.map (fun (n, a, _) -> (n, a)) math_table)

(** Map a double-precision math builtin to its single-precision variant. *)
let to_single_variant name =
  if has_single_variant name then Some (name ^ "f") else None

(** Map a single-precision math builtin to the GPU specialised intrinsic,
    when one exists (e.g. [expf] -> [__expf]). *)
let to_gpu_intrinsic name =
  let candidate = "__" ^ name in
  if List.mem_assoc candidate (List.map (fun (n, a, _) -> (n, a)) gpu_intrinsics)
  then Some candidate
  else None

(** Approximate FLOPs charged for one evaluation of a math builtin. *)
let flops_of_class = function
  | Cheap -> 1
  | Sqrt_div -> 4
  | Exp_log -> 8
  | Trig -> 8
  | Power -> 16
