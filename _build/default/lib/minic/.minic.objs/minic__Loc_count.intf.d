lib/minic/loc_count.pp.mli: Ast
