lib/minic/parser.pp.ml: Ast Lexer List Loc Printf Token
