lib/minic/ast.pp.ml: Hashtbl List Loc Option Ppx_deriving_runtime
