lib/minic/typecheck.pp.ml: Ast Builtins Hashtbl List Loc Option Printf
