lib/minic/typecheck.pp.mli: Ast Loc
