lib/minic/token.pp.ml: Ast List Ppx_deriving_runtime Printf String
