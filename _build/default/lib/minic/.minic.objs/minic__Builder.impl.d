lib/minic/builder.pp.ml: Ast List Loc
