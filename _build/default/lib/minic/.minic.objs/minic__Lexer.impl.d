lib/minic/lexer.pp.ml: Ast List Loc Printf String Token
