lib/minic/builtins.pp.ml: Ast Hashtbl List String
