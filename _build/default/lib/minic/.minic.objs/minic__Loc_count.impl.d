lib/minic/loc_count.pp.ml: List Pretty String
