(** Jacobi-style Gauss-Seidel sweep — an extra (non-paper) application
    that exercises the Fig. 3 strategy's terminal leaf.

    The in-place sweep reads each cell's left neighbour written in the
    same iteration: a genuine loop-carried dependence.  Combined with a
    memory-bound profile (one add and one multiply per 16 transferred
    bytes), no target profits: the strategy answers "terminate without
    modifying the input", the paper's fourth outcome. *)

let source ~n =
  Printf.sprintf
    {|
int main() {
  int n = %d;
  int sweeps = 4;
  double grid[n];
  double rhs[n];

  for (int i = 0; i < n; i++) {
    grid[i] = rand01();
    rhs[i] = 0.01 * rand01();
  }

  for (int s = 0; s < sweeps; s++) {
    // in-place sweep: reads the value written at i-1 this very sweep,
    // so iterations cannot run in parallel
    for (int i = 1; i < n; i++) {
      grid[i] = 0.5 * (grid[i - 1] + grid[i]) + rhs[i];
    }
  }

  double check = 0.0;
  for (int i = 0; i < n; i++) {
    check += grid[i];
  }
  print_float(check);
  return 0;
}
|}
    n

let app : Bench_app.t =
  {
    id = "jacobi";
    name = "Gauss-Seidel Sweep (extra)";
    source;
    profile_n = 4096;
    secondary_n = 8192;
    eval_n = 4_000_000;
    description =
      "sequential in-place relaxation sweep; memory-bound with a true \
       loop-carried dependence — the PSA strategy's 'no target profits' \
       terminal case";
  }
