(** The paper's five HPC and AI benchmark applications, plus extras
    demonstrating flow outcomes the five never reach. *)

let all : Bench_app.t list =
  [ Rush_larsen.app; Nbody.app; Bezier.app; Adpredictor.app; Kmeans.app ]

(** Applications beyond the paper's five (not part of the Fig. 5/Table I
    reproduction). *)
let extras : Bench_app.t list = [ Jacobi.app ]

let find id =
  match
    List.find_opt (fun (b : Bench_app.t) -> b.id = id) (all @ extras)
  with
  | Some b -> b
  | None -> invalid_arg ("unknown benchmark: " ^ id)

let ids = List.map (fun (b : Bench_app.t) -> b.id) (all @ extras)
