(** K-Means Classification.

    Lloyd's algorithm: a sequential convergence loop drives a parallel
    assignment pass (each point finds its nearest centroid and
    accumulates into per-cluster sums — array reductions, the "Remove
    Array += Dependency" target) followed by a cheap centroid update.
    The assignment hotspot is memory-bound (FLOPs/B below the X
    threshold), so the Fig. 3 strategy selects the multi-thread CPU
    branch — the best performer, as in the paper. *)

(* K = 3 clusters, D = 48 dimensions (compile-time literals so the
   per-centroid loops are fixed; the memory-bound character comes from
   streaming the D-dimensional points). *)

let source ~n =
  Printf.sprintf
    {|
int main() {
  int n = %d;
  int iterations = 10;
  double x[n * 48];
  double cent[144];
  double sums[144];
  double counts[3];
  int assign[n];

  for (int i = 0; i < n * 48; i++) {
    x[i] = rand01();
  }
  for (int z = 0; z < 144; z++) {
    cent[z] = rand01();
  }

  for (int it = 0; it < iterations; it++) {
    for (int z = 0; z < 144; z++) {
      sums[z] = 0.0;
    }
    for (int c = 0; c < 3; c++) {
      counts[c] = 0.0;
    }

    // assignment + accumulation pass (the hotspot)
    for (int i = 0; i < n; i++) {
      double bestd = 1.0e30;
      int best = 0;
      for (int c = 0; c < 3; c++) {
        double d2 = 0.0;
        for (int d = 0; d < 48; d++) {
          double diff = x[i * 48 + d] - cent[c * 48 + d];
          d2 += diff * diff;
        }
        if (d2 < bestd) {
          bestd = d2;
          best = c;
        }
      }
      assign[i] = best;
      for (int d = 0; d < 48; d++) {
        sums[best * 48 + d] += x[i * 48 + d];
      }
      counts[best] += 1.0;
    }

    // centroid update
    for (int c = 0; c < 3; c++) {
      if (counts[c] > 0.0) {
        for (int d = 0; d < 48; d++) {
          cent[c * 48 + d] = sums[c * 48 + d] / counts[c];
        }
      }
    }
  }

  // reporting: cluster sizes, within-cluster scatter and a checksum
  double scatter = 0.0;
  for (int i = 0; i < n; i++) {
    int c = assign[i];
    double d2 = 0.0;
    for (int d = 0; d < 48; d++) {
      double diff = x[i * 48 + d] - cent[c * 48 + d];
      d2 += diff * diff;
    }
    scatter += d2;
  }
  int largest = 0;
  int smallest = n;
  for (int c = 0; c < 3; c++) {
    int size = (int)counts[c];
    if (size > largest) {
      largest = size;
    }
    if (size < smallest) {
      smallest = size;
    }
  }
  double check = 0.0;
  for (int z = 0; z < 144; z++) {
    check += cent[z];
  }
  for (int i = 0; i < n; i++) {
    check += 0.0001 * (double)assign[i];
  }
  print_float(check);
  print_float(scatter / (double)n);
  print_int(largest);
  print_int(smallest);
  return 0;
}
|}
    n

let app : Bench_app.t =
  {
    id = "kmeans";
    name = "K-Means Classification";
    source;
    profile_n = 1024;
    secondary_n = 2048;
    eval_n = 4_000_000;
    description =
      "Lloyd's algorithm; memory-bound assignment pass with array \
       reductions, driven by a sequential convergence loop";
  }
