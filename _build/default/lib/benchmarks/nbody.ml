(** N-Body Simulation.

    All-pairs gravitational step: for each body, accumulate the force
    from every other body, update its velocity and (double-buffered)
    position.  The hotspot's outer loop is parallel; the inner loop over
    interaction partners carries a scalar reduction and has a
    runtime-dependent bound ("double outer loop nest with bounds unknown
    at compile time"), so the Fig. 3 strategy maps it to the GPU — where
    it is strongly compute-bound and saturates both devices. *)

let source ~n =
  Printf.sprintf
    {|
int main() {
  int n = %d;
  double dt = 0.01;
  double softening = 0.0001;
  double px[n]; double py[n]; double pz[n];
  double vx[n]; double vy[n]; double vz[n];
  double npx[n]; double npy[n]; double npz[n];
  double mass[n];

  // initial conditions: a deterministic random plummer-ish cloud
  for (int i = 0; i < n; i++) {
    px[i] = 2.0 * rand01() - 1.0;
    py[i] = 2.0 * rand01() - 1.0;
    pz[i] = 2.0 * rand01() - 1.0;
    vx[i] = 0.1 * (rand01() - 0.5);
    vy[i] = 0.1 * (rand01() - 0.5);
    vz[i] = 0.1 * (rand01() - 0.5);
    mass[i] = 0.5 + rand01();
  }

  // force computation and integration step (the hotspot)
  for (int i = 0; i < n; i++) {
    double ax = 0.0;
    double ay = 0.0;
    double az = 0.0;
    for (int j = 0; j < n; j++) {
      double dx = px[j] - px[i];
      double dy = py[j] - py[i];
      double dz = pz[j] - pz[i];
      double d2 = dx * dx + dy * dy + dz * dz + softening;
      double inv = 1.0 / sqrt(d2 * d2 * d2);
      double s = mass[j] * inv;
      ax += dx * s;
      ay += dy * s;
      az += dz * s;
    }
    vx[i] += dt * ax;
    vy[i] += dt * ay;
    vz[i] += dt * az;
    npx[i] = px[i] + dt * vx[i];
    npy[i] = py[i] + dt * vy[i];
    npz[i] = pz[i] + dt * vz[i];
  }

  // diagnostics: centre of mass drift and momentum balance
  double total_mass = 0.0;
  double cmx = 0.0;
  double cmy = 0.0;
  double cmz = 0.0;
  for (int i = 0; i < n; i++) {
    total_mass += mass[i];
    cmx += mass[i] * npx[i];
    cmy += mass[i] * npy[i];
    cmz += mass[i] * npz[i];
  }
  cmx = cmx / total_mass;
  cmy = cmy / total_mass;
  cmz = cmz / total_mass;
  double px_total = 0.0;
  double py_total = 0.0;
  double pz_total = 0.0;
  for (int i = 0; i < n; i++) {
    px_total += mass[i] * vx[i];
    py_total += mass[i] * vy[i];
    pz_total += mass[i] * vz[i];
  }
  // kinetic energy and the fastest body, for sanity reporting
  double kinetic = 0.0;
  double vmax2 = 0.0;
  for (int i = 0; i < n; i++) {
    double v2 = vx[i] * vx[i] + vy[i] * vy[i] + vz[i] * vz[i];
    kinetic += 0.5 * mass[i] * v2;
    vmax2 = fmax(vmax2, v2);
  }
  double check = cmx + cmy + cmz + px_total + py_total + pz_total;
  print_float(check);
  print_float(kinetic);
  print_float(sqrt(vmax2));
  return 0;
}
|}
    n

let app : Bench_app.t =
  {
    id = "nbody";
    name = "N-Body Simulation";
    source;
    profile_n = 160;
    secondary_n = 288;
    eval_n = 126000;
    description =
      "all-pairs gravitational interaction; compute-bound, parallel outer \
       loop, runtime-bound inner reduction loop";
  }
