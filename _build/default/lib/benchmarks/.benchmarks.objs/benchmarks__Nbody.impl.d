lib/benchmarks/nbody.ml: Bench_app Printf
