lib/benchmarks/bench_app.ml: Minic Psa
