lib/benchmarks/adpredictor.ml: Bench_app Printf
