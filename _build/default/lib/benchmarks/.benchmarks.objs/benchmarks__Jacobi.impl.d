lib/benchmarks/jacobi.ml: Bench_app Printf
