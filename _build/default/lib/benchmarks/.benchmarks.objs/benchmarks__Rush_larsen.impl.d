lib/benchmarks/rush_larsen.ml: Bench_app Printf
