lib/benchmarks/registry.ml: Adpredictor Bench_app Bezier Jacobi Kmeans List Nbody Rush_larsen
