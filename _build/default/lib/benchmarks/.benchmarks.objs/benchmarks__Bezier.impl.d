lib/benchmarks/bezier.ml: Bench_app Printf
