lib/benchmarks/kmeans.ml: Bench_app Printf
