(** Rush Larsen ODE Solver.

    Cardiac-cell membrane gating (Luo-Rudy style rate functions): each
    timestep updates every cell's m/h/j gates with the Rush-Larsen
    exponential integrator.  The per-cell body is a huge straight line of
    exponential rationals — extreme register pressure (saturating the
    GTX 1080 Ti in the paper) and an FPGA pipeline so large it overmaps
    both devices even at unroll 1, which is why the paper reports no
    CPU+FPGA results for this benchmark.  The timestep loop is a
    sequential driver; the cell loop inside it is the extracted hotspot,
    invoked (and transferred) once per step. *)

let source ~n =
  Printf.sprintf
    {|
int main() {
  int n = %d;
  int steps = 4;
  double dt = 0.02;
  double vm[n];
  double mgate[n];
  double hgate[n];
  double jgate[n];

  for (int i = 0; i < n; i++) {
    vm[i] = 0.0 - 85.0 + 50.0 * rand01();
    mgate[i] = 0.01 + 0.02 * rand01();
    hgate[i] = 0.97 - 0.02 * rand01();
    jgate[i] = 0.98 - 0.02 * rand01();
  }

  for (int t = 0; t < steps; t++) {
    // gate update over all cells (the hotspot)
    for (int i = 0; i < n; i++) {
      double v = vm[i];
      double vs = v + 47.13;
      // m gate rate functions
      double am1 = 0.32 * vs / (1.0 - exp(0.0 - 0.1 * vs));
      double am2 = 0.08 * exp(0.0 - v / 11.0);
      double am3 = 1.0 / (1.0 + exp(0.0 - (v + 40.0) / 7.5));
      double alpham = am1 * am3 + 0.005 * am2;
      double bm1 = 0.08 * exp(0.0 - v / 11.0);
      double bm2 = 1.0 / (1.0 + exp((v + 35.0) / 9.0));
      double bm3 = 0.13 * exp(0.0 - (v + 10.66) / 11.1);
      double betam = bm1 * bm2 + 0.02 * bm3;
      // h gate rate functions
      double ah1 = 0.135 * exp(0.0 - (v + 80.0) / 6.8);
      double ah2 = 1.0 / (1.0 + exp((v + 41.0) / 5.5));
      double alphah = ah1 * ah2;
      double bh1 = 3.56 * exp(0.079 * v);
      double bh2 = 310000.0 * exp(0.35 * v);
      double bh3 = 1.0 / (0.13 * (1.0 + exp(0.0 - (v + 10.66) / 11.1)));
      double betah = (bh1 + 0.001 * bh2) * 0.001 + 0.7 * bh3 * 0.001;
      // j gate rate functions
      double aj1 = 0.0 - 127140.0 * exp(0.2444 * v);
      double aj2 = 0.00003474 * exp(0.0 - 0.04391 * v);
      double aj3 = (v + 37.78) / (1.0 + exp(0.311 * (v + 79.23)));
      double alphaj = (aj1 * 0.0000001 - aj2) * aj3 * 0.01;
      double bj1 = 0.1212 * exp(0.0 - 0.01052 * v);
      double bj2 = 1.0 / (1.0 + exp(0.0 - 0.1378 * (v + 40.14)));
      double bj3 = 0.3 * exp(0.0 - 0.0000002535 * v);
      double bj4 = 1.0 / (1.0 + exp(0.0 - 0.1 * (v + 32.0)));
      double betaj = bj1 * bj2 + 0.002 * bj3 * bj4;
      // steady states and time constants
      double taum = 1.0 / (alpham + betam);
      double minf = alpham * taum;
      double tauh = 1.0 / (alphah + betah);
      double hinf = alphah * tauh;
      double tauj = 1.0 / (alphaj + betaj + 0.001);
      double jinf = fabs(alphaj) * tauj;
      // rush-larsen exponential integration
      double em = exp(0.0 - dt / taum);
      double eh = exp(0.0 - dt / tauh);
      double ej = exp(0.0 - dt / (tauj + 0.0001));
      double m2 = minf + (mgate[i] - minf) * em;
      double h2 = hinf + (hgate[i] - hinf) * eh;
      double j2 = jinf + (jgate[i] - jinf) * ej;
      // sodium current drives a small membrane update
      double gna = 23.0 * m2 * m2 * m2 * h2 * j2;
      double ena = 54.4;
      double ina = gna * (v - ena);
      // auxiliary currents (keeps the body realistic and register-heavy)
      double ak1 = 1.02 / (1.0 + exp(0.2385 * (v + 87.0 - 59.215)));
      double bk1a = 0.49124 * exp(0.08032 * (v + 87.0 + 5.476));
      double bk1b = exp(0.06175 * (v + 87.0 - 594.31));
      double bk1c = 1.0 + exp(0.0 - 0.5143 * (v + 87.0 + 4.753));
      double bk1 = (bk1a + bk1b) / bk1c;
      double ik1 = 0.6047 * (ak1 / (ak1 + bk1)) * (v + 87.0);
      double ikp1 = 1.0 / (1.0 + exp((7.488 - v) / 5.98));
      double ikp = 0.0183 * ikp1 * (v + 87.0);
      double ib = 0.03921 * (v + 59.87);
      double istim = 0.5 * exp(0.0 - (v + 30.0) * (v + 30.0) * 0.001);
      double dv = 0.0 - (ina + ik1 + ikp + ib - istim) * dt * 0.01;
      mgate[i] = m2;
      hgate[i] = h2;
      jgate[i] = j2;
      vm[i] = v + dv;
    }
  }

  // physiological sanity report: gate ranges must stay in [0,1] and the
  // membrane potential within plausible bounds
  double check = 0.0;
  for (int i = 0; i < n; i++) {
    check += vm[i] + mgate[i] + hgate[i] + jgate[i];
  }
  double gmin = 1.0;
  double gmax = 0.0;
  for (int i = 0; i < n; i++) {
    gmin = fmin(gmin, fmin(mgate[i], fmin(hgate[i], jgate[i])));
    gmax = fmax(gmax, fmax(mgate[i], fmax(hgate[i], jgate[i])));
  }
  double vmean = 0.0;
  for (int i = 0; i < n; i++) {
    vmean += vm[i];
  }
  vmean = vmean / (double)n;
  int out_of_range = 0;
  for (int i = 0; i < n; i++) {
    if (vm[i] < 0.0 - 150.0 || vm[i] > 80.0) {
      out_of_range += 1;
    }
  }
  print_float(check);
  print_float(gmin);
  print_float(gmax);
  print_float(vmean);
  print_int(out_of_range);
  return 0;
}
|}
    n

let app : Bench_app.t =
  {
    id = "rush_larsen";
    name = "Rush Larsen ODE Solver";
    source;
    profile_n = 1500;
    secondary_n = 3000;
    eval_n = 2_000_000;
    description =
      "cardiac gating ODEs with Rush-Larsen integration; huge \
       register-hungry straight-line body of exponential rationals";
  }
