(** AdPredictor (Bayesian click-through-rate inference).

    For each impression, gather the belief (mean, variance) of its 16
    active features from large weight tables, combine them, and push the
    result through a probit-style link evaluated with polynomial series —
    flop-dense straight-line math over very few transferred bytes per
    impression.  The fixed-bound inner loops carry reductions and fully
    unroll, so the Fig. 3 strategy selects the FPGA branch, where the
    weight tables bank into BRAM and the Stratix10's zero-copy streaming
    makes it the overall winner (the paper's 32x headline for oneAPI). *)

(* F = 16 active features per impression (compile-time literal), weight
   table of 65536 entries (gathered: indices are data). *)

let source ~n =
  Printf.sprintf
    {|
int main() {
  int n = %d;
  int m = 65536;
  double beta2 = 1.0;
  double wmean[m];
  double wvar[m];
  double lut[256];
  int idx[n * 16];
  double prob[n];

  for (int w = 0; w < m; w++) {
    wmean[w] = 0.2 * (rand01() - 0.5);
    wvar[w] = 0.5 + 0.5 * rand01();
  }
  for (int u = 0; u < 256; u++) {
    lut[u] = 0.001 * rand01();
  }
  for (int k = 0; k < n * 16; k++) {
    idx[k] = rand_int(m);
  }

  // per-impression inference (the hotspot)
  for (int i = 0; i < n; i++) {
    double s = 0.0;
    double v = beta2;
    for (int j = 0; j < 16; j++) {
      int ix = idx[i * 16 + j];
      s += wmean[ix];
      v += wvar[ix];
    }
    double t = s / sqrt(v);
    double t2 = t * t;
    // rational series for the gaussian cdf (flop-dense, cheap ops)
    double num = t * (0.3989422 + t2 * (0.1329807 + t2 * (0.0114153 + t2 * 0.0003458)));
    double den = 1.0 + t2 * (0.2734568 + t2 * (0.0334427 + t2 * (0.0021411 + t2 * 0.0000811)));
    double ratio = num / den;
    double pdf = 0.3989422804014327 * exp(0.0 - 0.5 * t2);
    double cdf = 0.5 + ratio * (1.0 - pdf);
    // newton refinement with table-based correction terms
    for (int r = 0; r < 16; r++) {
      double e1 = cdf * (1.0 - cdf);
      double g1 = t - 2.0 * cdf + 1.0;
      int b1 = (int)(fmin(0.999, fmax(0.0, cdf)) * 255.0);
      cdf = cdf + 0.0625 * e1 * g1 + lut[b1] - 0.001 * cdf * cdf * cdf;
    }
    // halley polish of the working probability (division-free update)
    double w0 = pdf / fmax(cdf, 0.000001);
    for (int q = 0; q < 16; q++) {
      double hq = w0 * cdf + 0.001;
      int b2 = (int)(fmin(0.999, fmax(0.0, hq - floor(hq))) * 255.0);
      w0 = 0.5 * (w0 + pdf * (2.0 - hq)) + lut[b2] * (1.0 - w0 * 0.01);
    }
    // smoothing series over the calibration table
    double acc = 0.0;
    for (int z = 0; z < 16; z++) {
      int b3 = (int)(fmin(0.999, fmax(0.0, cdf * 0.0625 * (double)(z + 1))) * 255.0);
      acc = acc + lut[b3] * (1.0 - acc) + 0.0001 * (double)z * cdf;
    }
    prob[i] = fmin(1.0, fmax(0.0, cdf + 0.01 * w0 * (1.0 - cdf) + acc));
  }

  // calibration report: mean prediction, histogram of confidence bands,
  // and extremes
  double mean = 0.0;
  for (int i = 0; i < n; i++) {
    mean += prob[i];
  }
  mean = mean / (double)n;
  double var = 0.0;
  double pmin = 1.0;
  double pmax = 0.0;
  for (int i = 0; i < n; i++) {
    double d = prob[i] - mean;
    var += d * d;
    pmin = fmin(pmin, prob[i]);
    pmax = fmax(pmax, prob[i]);
  }
  int bands[10];
  for (int b = 0; b < 10; b++) {
    bands[b] = 0;
  }
  for (int i = 0; i < n; i++) {
    int b = (int)(fmin(0.999, prob[i]) * 10.0);
    bands[b] += 1;
  }
  int modal = 0;
  for (int b = 0; b < 10; b++) {
    if (bands[b] > bands[modal]) {
      modal = b;
    }
  }
  print_float(mean);
  print_float(var / (double)n);
  print_float(pmin);
  print_float(pmax);
  print_int(modal);
  return 0;
}
|}
    n

let app : Bench_app.t =
  {
    id = "adpredictor";
    name = "AdPredictor";
    source;
    profile_n = 3000;
    secondary_n = 6000;
    eval_n = 4_000_000;
    description =
      "Bayesian CTR inference; gathered weight tables, fully unrollable \
       fixed-bound inner loops, flop-dense link function";
  }
