(** Bezier Surface Generation.

    Evaluates an animated bicubic-style Bezier surface on a g x g grid of
    parameter points: per frame, every grid point accumulates the tensor
    product of Bernstein basis polynomials over an nc x nc control net —
    the paper's "complex multi-nested inner loop structure".  The control
    net size is a runtime value, so the inner loops cannot fully unroll
    and the Fig. 3 strategy maps the (compute-bound, parallel) hotspot to
    the GPU.  The frame loop is a sequential driver: the surface kernel
    is offloaded once per frame. *)

let source ~n =
  Printf.sprintf
    {|
int main() {
  int g = %d;
  int frames = 3;
  int nc = 8;
  double cx[nc * nc];
  double cy[nc * nc];
  double cz[nc * nc];
  double binom[nc];
  double surfx[g * g];
  double surfy[g * g];
  double surfz[g * g];

  // control net
  for (int e = 0; e < nc * nc; e++) {
    cx[e] = rand01();
    cy[e] = rand01();
    cz[e] = 2.0 * rand01() - 1.0;
  }
  // binomial coefficients, row nc-1 of pascal's triangle
  binom[0] = 1.0;
  for (int k = 1; k < nc; k++) {
    binom[k] = binom[k - 1] * (double)(nc - k) / (double)k;
  }

  for (int f = 0; f < frames; f++) {
    // surface evaluation over the parameter grid (the hotspot)
    for (int p = 0; p < g * g; p++) {
      int ui = p / g;
      int vi = p %% g;
      double u = ((double)ui + 0.5) / (double)g;
      double v = ((double)vi + 0.5) / (double)g;
      double sx = 0.0;
      double sy = 0.0;
      double sz = 0.0;
      for (int a = 0; a < nc; a++) {
        double fa = binom[a] * pow(u, (double)a) * pow(1.0 - u, (double)(nc - 1 - a));
        for (int b = 0; b < nc; b++) {
          double fb = binom[b] * pow(v, (double)b) * pow(1.0 - v, (double)(nc - 1 - b));
          double w = fa * fb;
          sx += w * cx[a * nc + b];
          sy += w * cy[a * nc + b];
          sz += w * cz[a * nc + b];
        }
      }
      surfx[p] = sx;
      surfy[p] = sy;
      surfz[p] = sz;
    }
    // animate the control net between frames
    for (int e = 0; e < nc * nc; e++) {
      cz[e] = cz[e] + 0.01 * sin(0.3 * (double)f + 0.1 * (double)e);
    }
  }

  // mesh quality report: bounding box and mean patch height
  double check = 0.0;
  for (int p = 0; p < g * g; p++) {
    check += surfx[p] + surfy[p] + surfz[p];
  }
  double zmin = 1000000.0;
  double zmax = 0.0 - 1000000.0;
  double zmean = 0.0;
  for (int p = 0; p < g * g; p++) {
    zmin = fmin(zmin, surfz[p]);
    zmax = fmax(zmax, surfz[p]);
    zmean += surfz[p];
  }
  zmean = zmean / (double)(g * g);
  // surface roughness along the u direction
  double rough = 0.0;
  for (int p = 0; p < g * g - 1; p++) {
    double dz = surfz[p + 1] - surfz[p];
    rough += dz * dz;
  }
  print_float(check);
  print_float(zmin);
  print_float(zmax);
  print_float(zmean);
  print_float(rough);
  return 0;
}
|}
    n

let app : Bench_app.t =
  {
    id = "bezier";
    name = "Bezier Surface Generation";
    source;
    profile_n = 14;
    secondary_n = 20;
    eval_n = 40;
    description =
      "animated Bezier surface over an nc x nc control net; complex \
       multi-nested runtime-bound inner loops, compute-bound";
  }
