(** Host<->accelerator transfer estimation used by the PSA strategy.

    Fig. 3's first test compares the estimated data-transfer time
    (from data-movement analysis volumes and "known device transfer
    bandwidths") against the hotspot's single-thread CPU time. *)

(** Representative transfer bandwidth for the offload decision: the best
    sustained host<->accelerator link available in the machine (pinned
    PCIe to the GPUs, which is also the FPGA boards' ballpark). *)
let decision_bandwidth = 12.0e9

(** Estimated seconds to move the hotspot's data in and out, per the
    data-movement analysis, over the whole run. *)
let estimated_seconds ?(bandwidth = decision_bandwidth)
    (f : Analysis.Features.t) =
  (f.bytes_in_per_call +. f.bytes_out_per_call)
  *. float_of_int f.calls /. bandwidth

(** The Fig. 3 test: would moving the data cost more than just computing
    on the CPU? *)
let transfer_dominates (f : Analysis.Features.t) =
  estimated_seconds f > Cpu_model.reference_seconds f
