(** FPGA performance and resource model (oneAPI designs): replaces the
    vendor HLS report and board execution.  Resources price per-operator
    area plus pipeline state, replicated per unroll, and banked BRAM for
    on-chip tables; throughput follows the loop pipeline's initiation
    interval; memory streams inputs/outputs with BRAM-served gathers;
    transfers use buffer copies or overlapped USM streaming (Stratix10).
    See DESIGN.md §5 for the calibration. *)

type resources = {
  alms_used : int;
  dsps_used : int;
  bram_used : int;
  alm_util : float;
  dsp_util : float;
  utilization : float;  (** max of ALM / DSP / BRAM utilisation *)
  overmapped : bool;  (** exceeds the 90% DSE cutoff *)
  fits : bool;  (** physically placeable (<= 100%) *)
}

type breakdown = {
  res : resources;
  ii_effective : float;  (** cycles between successive outer iterations *)
  t_pipe : float;  (** per call *)
  t_mem : float;
  t_transfer : float;
  t_call : float;
  total : float;
  speedup : float;
}

(** Bytes of on-chip tables one pipeline replica banks into BRAM. *)
val bram_per_pipe : Analysis.Features.t -> int

(** Resource estimate for an unroll factor — the "high-level design
    report" the unroll-until-overmap DSE inspects. *)
val resources :
  Spec.fpga -> Codegen.Design.t -> Analysis.Features.t -> unroll:int ->
  resources

(** Cycles between successive outer-loop initiations of one pipeline. *)
val effective_ii : Spec.fpga -> Analysis.Features.t -> float

(** Full model; an unsynthesizable design reports infinite time. *)
val time : Spec.fpga -> Codegen.Design.t -> Analysis.Features.t -> breakdown
