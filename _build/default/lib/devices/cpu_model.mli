(** CPU performance model.

    The single-thread reference time is the interpreter's virtual-cycle
    profile by definition; the OpenMP model applies near-linear scaling
    with a per-thread efficiency loss and fork/join overhead — 28-30x on
    32 cores for embarrassingly parallel loops, as in the paper. *)

type t = {
  threads : int;  (** threads actually used (clamped; 1 if sequential) *)
  t_single : float;  (** single-thread seconds *)
  t_parallel : float;
  speedup : float;
  efficiency : float;
}

(** Single-thread reference seconds for the profiled hotspot. *)
val reference_seconds : Analysis.Features.t -> float

(** Parallel efficiency at the given thread count. *)
val efficiency : Spec.cpu -> threads:int -> float

(** Time of the OpenMP design at a thread count.  A loop that is not
    parallel cannot use more than one thread. *)
val time : Spec.cpu -> Analysis.Features.t -> threads:int -> t
