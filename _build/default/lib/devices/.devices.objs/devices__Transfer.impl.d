lib/devices/transfer.ml: Analysis Cpu_model
