lib/devices/gpu_model.mli: Analysis Codegen Spec
