lib/devices/fpga_model.mli: Analysis Codegen Spec
