lib/devices/cpu_model.mli: Analysis Spec
