lib/devices/spec.ml: List
