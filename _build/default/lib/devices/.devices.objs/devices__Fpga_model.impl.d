lib/devices/fpga_model.ml: Analysis Codegen Cpu_model Float List Spec
