lib/devices/transfer.mli: Analysis
