lib/devices/simulate.mli: Analysis Codegen Cpu_model Format Fpga_model Gpu_model
