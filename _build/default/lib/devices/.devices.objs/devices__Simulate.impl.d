lib/devices/simulate.ml: Analysis Codegen Cpu_model Format Fpga_model Gpu_model Spec
