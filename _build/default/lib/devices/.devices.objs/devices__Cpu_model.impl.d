lib/devices/cpu_model.ml: Analysis Spec
