(** Host<->accelerator transfer estimation used by the PSA strategy:
    Fig. 3's first test compares estimated data-transfer time against
    the hotspot's single-thread CPU time. *)

(** Representative host<->accelerator bandwidth for the offload
    decision, B/s. *)
val decision_bandwidth : float

(** Estimated seconds to move the hotspot's data in and out over the
    whole run. *)
val estimated_seconds : ?bandwidth:float -> Analysis.Features.t -> float

(** The Fig. 3 test: would moving the data cost more than computing on
    the CPU? *)
val transfer_dominates : Analysis.Features.t -> bool
