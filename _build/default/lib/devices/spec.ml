(** Device parameter sheets.

    Architectural parameters come from public spec sheets of the paper's
    testbed devices (AMD EPYC 7543; NVIDIA GeForce GTX 1080 Ti and RTX
    2080 Ti; Intel PAC Arria10 GX and Stratix10 SX).  Per-architecture
    efficiency constants are global calibration knobs (one set per
    device, never per benchmark) documented in DESIGN.md §5. *)

type cpu = {
  c_id : string;
  c_name : string;
  cores : int;
  c_clock_hz : float;
  (* calibration *)
  parallel_alpha : float;
      (** per-extra-thread efficiency loss: eff(t) = 1/(1+alpha*(t-1)) *)
  omp_fork_cycles : float;  (** parallel-region fork/join overhead *)
}

type gpu = {
  g_id : string;
  g_name : string;
  sms : int;
  cores_per_sm : int;
  sfu_per_sm : int;
  g_clock_hz : float;
  regfile_per_sm : int;  (** 32-bit registers *)
  max_threads_per_sm : int;
  max_blocks_per_sm : int;
  max_blocksize : int;
  mem_bw : float;  (** device memory bandwidth, B/s *)
  smem_per_sm : int;  (** shared memory bytes per SM *)
  pcie_bw_pageable : float;
  pcie_bw_pinned : float;
  transfer_latency_s : float;  (** per-call DMA setup latency *)
  launch_latency_s : float;
  (* calibration: eff = issue_eff * max(floor, min(1, occ/sat)^exp) where
     occ is machine-wide thread occupancy *)
  issue_eff : float;  (** achievable fraction of peak issue at full occupancy *)
  occ_saturation : float;  (** occupancy above which issue_eff is reached *)
  occ_exponent : float;
      (** shape of the latency-hiding curve below saturation (Pascal
          degrades sub-linearly, Turing linearly) *)
  occ_floor : float;  (** minimum occupancy ratio credited *)
  gather_penalty : float;  (** bandwidth divisor for uncoalesced access *)
  dp_penalty : float;  (** FP64 throughput divisor (consumer parts) *)
  atomic_throughput : float;
      (** contended global atomics per second (few hot addresses) *)
}

type fpga = {
  f_id : string;
  f_name : string;
  alms : int;
  dsps : int;
  bram_bytes : int;
  f_clock_hz : float;  (** achieved pipeline clock *)
  ddr_bw : float;
  f_pcie_bw : float;
  supports_usm : bool;  (** zero-copy host memory (Stratix10 only) *)
  usm_bw : float;
  reduction_ii : int;  (** initiation interval of a float accumulation *)
  pipeline_fill : float;  (** pipeline depth fill overhead, cycles *)
  infra_alm_fraction : float;  (** shell/BSP share of the device *)
  f_transfer_latency_s : float;
}

type t = Cpu of cpu | Gpu of gpu | Fpga of fpga

(* ------------------------------------------------------------------ *)
(* The paper's testbed                                                 *)
(* ------------------------------------------------------------------ *)

let epyc7543 =
  {
    c_id = "epyc7543";
    c_name = "AMD EPYC 7543 32-Core @ 2.8 GHz";
    cores = 32;
    c_clock_hz = 2.8e9;
    parallel_alpha = 0.0022;
    omp_fork_cycles = 40_000.0;
  }

let gtx1080ti =
  {
    g_id = "gtx1080ti";
    g_name = "NVIDIA GeForce GTX 1080 Ti (Pascal)";
    sms = 28;
    cores_per_sm = 128;
    sfu_per_sm = 32;
    g_clock_hz = 1.58e9;
    regfile_per_sm = 65536;
    max_threads_per_sm = 2048;
    max_blocks_per_sm = 32;
    max_blocksize = 1024;
    mem_bw = 484.0e9;
    smem_per_sm = 96 * 1024;
    pcie_bw_pageable = 6.0e9;
    pcie_bw_pinned = 12.0e9;
    transfer_latency_s = 12.0e-6;
    launch_latency_s = 8.0e-6;
    issue_eff = 0.12;
    occ_saturation = 0.50;
    occ_exponent = 0.6;
    occ_floor = 0.02;
    gather_penalty = 128.0;
    dp_penalty = 16.0;
    atomic_throughput = 1.0e9;
  }

let rtx2080ti =
  {
    g_id = "rtx2080ti";
    g_name = "NVIDIA GeForce RTX 2080 Ti (Turing)";
    sms = 68;
    cores_per_sm = 64;
    sfu_per_sm = 16;
    g_clock_hz = 1.545e9;
    regfile_per_sm = 65536;
    max_threads_per_sm = 1024;
    max_blocks_per_sm = 16;
    max_blocksize = 1024;
    mem_bw = 616.0e9;
    smem_per_sm = 64 * 1024;
    pcie_bw_pageable = 6.4e9;
    pcie_bw_pinned = 12.6e9;
    transfer_latency_s = 10.0e-6;
    launch_latency_s = 6.0e-6;
    issue_eff = 0.22;
    occ_saturation = 0.25;
    occ_exponent = 1.0;
    occ_floor = 0.02;
    gather_penalty = 128.0;
    dp_penalty = 16.0;
    atomic_throughput = 1.5e9;
  }

let arria10 =
  {
    f_id = "arria10";
    f_name = "Intel PAC Arria10 GX 1150";
    alms = 427_200;
    dsps = 1_518;
    bram_bytes = 6_600_000;
    f_clock_hz = 240.0e6;
    ddr_bw = 34.0e9;
    (* sustained oneAPI buffer-transfer rate on the PAC boards is far
       below the PCIe electrical limit *)
    f_pcie_bw = 2.5e9;
    supports_usm = false;
    usm_bw = 0.0;
    reduction_ii = 8;
    pipeline_fill = 200.0;
    infra_alm_fraction = 0.18;
    f_transfer_latency_s = 30.0e-6;
  }

let stratix10 =
  {
    f_id = "stratix10";
    f_name = "Intel PAC Stratix10 SX 2800";
    alms = 933_120;
    dsps = 5_760;
    bram_bytes = 28_000_000;
    f_clock_hz = 350.0e6;
    ddr_bw = 76.0e9;
    f_pcie_bw = 3.0e9;
    supports_usm = true;
    usm_bw = 4.0e9;
    reduction_ii = 6;
    pipeline_fill = 300.0;
    infra_alm_fraction = 0.15;
    f_transfer_latency_s = 25.0e-6;
  }

let all : t list =
  [ Cpu epyc7543; Gpu gtx1080ti; Gpu rtx2080ti; Fpga arria10; Fpga stratix10 ]

let id = function
  | Cpu c -> c.c_id
  | Gpu g -> g.g_id
  | Fpga f -> f.f_id

let name = function
  | Cpu c -> c.c_name
  | Gpu g -> g.g_name
  | Fpga f -> f.f_name

(** Look a device up by id.
    @raise Not_found for unknown ids. *)
let find device_id = List.find (fun d -> id d = device_id) all

let find_opt device_id = List.find_opt (fun d -> id d = device_id) all

let find_gpu device_id =
  match find device_id with
  | Gpu g -> g
  | _ -> invalid_arg (device_id ^ " is not a GPU")

let find_fpga device_id =
  match find device_id with
  | Fpga f -> f
  | _ -> invalid_arg (device_id ^ " is not an FPGA")

let find_cpu device_id =
  match find device_id with
  | Cpu c -> c
  | _ -> invalid_arg (device_id ^ " is not a CPU")

(** Reference single-thread clock: all Fig. 5 baselines run on one
    EPYC 7543 core. *)
let reference_clock_hz = epyc7543.c_clock_hz

(** Board-level power draw under load, watts — used by the
    energy-efficiency analysis the paper sketches in Section IV-D. *)
let board_watts = function
  | Cpu _ -> 225.0 (* EPYC 7543 TDP *)
  | Gpu g -> if g.g_id = "gtx1080ti" then 250.0 else 260.0
  | Fpga f -> if f.f_id = "arria10" then 66.0 else 215.0 (* PAC boards *)

let board_watts_of_id id = board_watts (find id)
