(** GPU performance model (HIP designs): an analytic occupancy/roofline
    model replacing execution on the real GeForce parts.  Occupancy is
    machine-wide (registers, block caps, grid underfill), issue
    efficiency follows a per-architecture latency-hiding curve, memory
    prices coalesced vs gathered traffic with shared-memory staging, and
    transfers price PCIe per kernel invocation.  See the module body and
    DESIGN.md §5 for the calibration. *)

type breakdown = {
  feasible : bool;  (** false when the launch configuration is invalid *)
  blocks : int;
  blocks_per_sm : int;
  occupancy : float;  (** machine-wide thread occupancy, [0,1] *)
  eff : float;  (** achieved fraction of peak issue *)
  tail : float;  (** wave-quantisation factor, >= 1 *)
  t_compute : float;  (** per call, seconds *)
  t_mem : float;
  t_kernel : float;
  t_transfer : float;
  t_call : float;
  total : float;  (** all calls *)
  speedup : float;  (** vs single-thread reference *)
}

(** Issue cycles of one outer iteration on one thread (per-op costs;
    intrinsics and precision from the design's flags). *)
val cycles_per_iteration :
  Spec.gpu -> Codegen.Design.t -> Analysis.Opcount.t -> float

(** DRAM traffic time per call given staging/coalescing. *)
val memory_time :
  Spec.gpu -> Codegen.Design.t -> Analysis.Features.t -> float

(** Full model: time of a design with the given features. *)
val time : Spec.gpu -> Codegen.Design.t -> Analysis.Features.t -> breakdown
