(** CPU performance model.

    The single-thread reference time comes directly from the
    interpreter's virtual-cycle profile (that is its definition).  The
    OpenMP model applies near-linear scaling with a small per-thread
    efficiency loss plus a fork/join overhead per kernel invocation —
    matching the paper's observation of 28-30x on 32 cores for
    embarrassingly parallel loops. *)

type t = {
  threads : int;
  t_single : float;  (** single-thread seconds *)
  t_parallel : float;
  speedup : float;
  efficiency : float;
}

(** Single-thread reference seconds for the profiled hotspot. *)
let reference_seconds (f : Analysis.Features.t) =
  f.cpu_cycles_per_call *. float_of_int f.calls /. Spec.reference_clock_hz

(** Parallel efficiency at [threads] threads. *)
let efficiency (cpu : Spec.cpu) ~threads =
  1.0 /. (1.0 +. (cpu.parallel_alpha *. float_of_int (threads - 1)))

(** Time of the OpenMP design at a given thread count.

    A loop that is not parallel cannot use more than one thread. *)
let time (cpu : Spec.cpu) (f : Analysis.Features.t) ~threads : t =
  let threads = max 1 (min threads cpu.cores) in
  let threads = if f.outer_parallel then threads else 1 in
  let t_single = reference_seconds f in
  let eff = efficiency cpu ~threads in
  let fork =
    if threads = 1 then 0.0
    else cpu.omp_fork_cycles *. float_of_int f.calls /. cpu.c_clock_hz
  in
  (* reduction merge cost grows with thread count *)
  let merge =
    if f.outer_has_reductions && threads > 1 then
      1.0e-6 *. float_of_int threads *. float_of_int f.calls
    else 0.0
  in
  let t_parallel =
    (t_single /. (float_of_int threads *. eff)) +. fork +. merge
  in
  {
    threads;
    t_single;
    t_parallel;
    speedup = t_single /. t_parallel;
    efficiency = eff;
  }
