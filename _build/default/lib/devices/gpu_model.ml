(** GPU performance model (HIP designs).

    An analytic occupancy/roofline model replacing execution on the real
    GeForce parts:

    - {b occupancy}: concurrent blocks per SM are limited by the blocksize,
      the register file (register pressure estimated from the kernel —
      the Rush Larsen effect), and the architectural block limit;
    - {b issue efficiency} grows with occupancy up to an
      architecture-specific saturation point (Turing tolerates low
      occupancy better than Pascal — the paper's 2080-vs-1080 behaviour);
    - {b compute time} prices the kernel's per-iteration operation census
      at per-op issue costs (special functions are far cheaper once the
      "specialised math fns" task mapped them to hardware intrinsics);
    - {b memory time} prices DRAM traffic, with a penalty for uncoalesced
      gathers unless the gathered tables fit in shared memory, and a
      traffic reduction when the shared-memory staging task ran;
    - {b transfer time} prices PCIe copies (pageable vs pinned) per kernel
      invocation, using the data-movement analysis volumes;
    - {b wave quantisation}: partially filled final waves waste SMs.

    All constants are per-device calibration (Spec), never per benchmark. *)

type breakdown = {
  feasible : bool;
  blocks : int;
  blocks_per_sm : int;
  occupancy : float;
  eff : float;
  tail : float;
  t_compute : float;  (** per call, seconds *)
  t_mem : float;
  t_kernel : float;
  t_transfer : float;
  t_call : float;
  total : float;  (** all calls *)
  speedup : float;  (** vs single-thread reference *)
}

let infeasible =
  {
    feasible = false;
    blocks = 0;
    blocks_per_sm = 0;
    occupancy = 0.0;
    eff = 0.0;
    tail = 1.0;
    t_compute = infinity;
    t_mem = infinity;
    t_kernel = infinity;
    t_transfer = infinity;
    t_call = infinity;
    total = infinity;
    speedup = 0.0;
  }

(** Issue cycles of one outer iteration on one thread. *)
let cycles_per_iteration (g : Spec.gpu) (d : Codegen.Design.t)
    (ops : Analysis.Opcount.t) =
  let sfu_cost = if d.gpu_intrinsics then 8.0 else 32.0 in
  let pow_cost = if d.gpu_intrinsics then 16.0 else 64.0 in
  let float_cycles =
    ops.fadd +. ops.fmul +. (8.0 *. ops.fdiv) +. (8.0 *. ops.sqrt)
    +. (sfu_cost *. (ops.exp_log +. ops.trig))
    +. (pow_cost *. ops.power)
    +. (2.0 *. ops.cheap_math)
  in
  let float_cycles =
    if d.single_precision then float_cycles else float_cycles *. g.dp_penalty
  in
  float_cycles +. ops.int_ops +. (2.0 *. (ops.loads +. ops.stores))

(** DRAM traffic per call, given the staging/coalescing situation. *)
let memory_time (g : Spec.gpu) (d : Codegen.Design.t)
    (f : Analysis.Features.t) =
  let accessed = f.bytes_accessed_per_call in
  let gathered_footprint =
    List.fold_left
      (fun acc (a : Analysis.Features.arg_feat) ->
        if List.mem a.af_name f.gathered_args then acc + a.af_footprint
        else acc)
      0 f.args
  in
  let gathers_onchip =
    d.shared_mem && gathered_footprint > 0
    && gathered_footprint <= g.smem_per_sm
  in
  let gather_bytes = accessed *. f.gather_fraction in
  let linear_bytes = accessed -. gather_bytes in
  (* shared-memory staging turns per-thread re-reads of broadcast arrays
     into one fetch per block: traffic shrinks toward one pass over the
     data *)
  let linear_bytes =
    if d.shared_mem then
      Float.max
        (f.bytes_in_per_call +. f.bytes_out_per_call)
        (linear_bytes /. float_of_int (max 1 d.blocksize))
    else linear_bytes
  in
  let t_linear = linear_bytes /. g.mem_bw in
  let t_gather =
    if gathers_onchip then gather_bytes /. g.mem_bw /. 4.0
    else gather_bytes /. (g.mem_bw /. g.gather_penalty)
  in
  t_linear +. t_gather

(** Full model: time of design [d] with features [f] on GPU [g]. *)
let time (g : Spec.gpu) (d : Codegen.Design.t) (f : Analysis.Features.t) :
    breakdown =
  let bs = max 32 (min g.max_blocksize d.blocksize) in
  let iters = Float.max 1.0 f.outer_trip in
  let blocks = int_of_float (ceil (iters /. float_of_int bs)) in
  let by_threads = g.max_threads_per_sm / bs in
  let by_regs =
    if f.regs_estimate <= 0 then g.max_blocks_per_sm
    else g.regfile_per_sm / (f.regs_estimate * bs)
  in
  let blocks_per_sm = min g.max_blocks_per_sm (min by_threads by_regs) in
  if blocks_per_sm <= 0 then infeasible
  else
    let slots = blocks_per_sm * g.sms in
    (* machine-wide thread occupancy: threads actually in flight over the
       device's full latency-hiding capacity.  Captures both per-SM
       limits (registers, block caps) and whole-device underfill when the
       grid is small. *)
    let occupancy =
      float_of_int (min blocks slots * bs)
      /. float_of_int (g.sms * g.max_threads_per_sm)
    in
    let eff =
      g.issue_eff
      *. Float.max g.occ_floor
           (Float.min 1.0 (occupancy /. g.occ_saturation) ** g.occ_exponent)
    in
    let cyc = cycles_per_iteration g d f.ops_per_iter in
    let throughput =
      float_of_int (g.sms * g.cores_per_sm) *. g.g_clock_hz *. eff
    in
    let t_compute = iters *. cyc /. throughput in
    let t_mem = memory_time g d f in
    (* wave quantisation: a partially filled final wave wastes SMs.
       Whole-device underfill (blocks < slots) is already priced by the
       machine-wide occupancy. *)
    let waves = ceil (float_of_int blocks /. float_of_int slots) in
    let ideal_waves = float_of_int blocks /. float_of_int slots in
    let tail =
      if blocks <= slots || ideal_waves <= 0.0 then 1.0
      else waves /. ideal_waves
    in
    (* array reductions lowered to atomics serialise on their few hot
       addresses — the classic K-Means-on-GPU bottleneck *)
    let t_atomic =
      if d.reductions_removed then
        iters *. f.ops_per_iter.stores /. g.atomic_throughput
      else 0.0
    in
    let t_kernel =
      (Float.max t_compute t_mem *. tail) +. t_atomic +. g.launch_latency_s
    in
    let pcie = if d.pinned_memory then g.pcie_bw_pinned else g.pcie_bw_pageable in
    let t_transfer =
      ((f.bytes_in_per_call +. f.bytes_out_per_call) /. pcie)
      +. g.transfer_latency_s
    in
    let t_call = t_kernel +. t_transfer in
    let total = t_call *. float_of_int f.calls in
    let t_ref = Cpu_model.reference_seconds f in
    {
      feasible = true;
      blocks;
      blocks_per_sm;
      occupancy;
      eff;
      tail;
      t_compute;
      t_mem;
      t_kernel;
      t_transfer;
      t_call;
      total;
      speedup = t_ref /. total;
    }
