(** Unified design timing: dispatch a generated design to the matching
    device model and report seconds and speedup against the single-thread
    reference — the "run the design on the platform" step of the
    evaluation, with analytic models standing in for the testbed. *)

type result = {
  design : Codegen.Design.t;
  seconds : float;
  speedup : float;  (** vs the single-thread reference *)
  feasible : bool;  (** false for unsynthesizable / invalid designs *)
  detail : detail;
}

and detail =
  | Cpu_detail of Cpu_model.t
  | Gpu_detail of Gpu_model.breakdown
  | Fpga_detail of Fpga_model.breakdown

(** Time a design under the given kernel features. *)
val run : Codegen.Design.t -> Analysis.Features.t -> result

(** Single-thread reference seconds (the Fig. 5 baseline denominator). *)
val reference_seconds : Analysis.Features.t -> float

val pp_result : Format.formatter -> result -> unit
