(** FPGA performance and resource model (oneAPI designs).

    Replaces the vendor HLS report and board execution:

    - {b resources}: each operation in the kernel's per-iteration census
      costs ALMs/DSPs (single precision a fraction of double — why the
      "SP math fns" task matters on this path); pipeline state (live
      scalar locals shifted through the pipeline depth) adds area — deep
      ODE kernels like Rush Larsen blow past the device even at unroll 1.
      One pipeline replica per unroll factor, plus the shell/BSP share.
      The resulting utilisation report is what the unroll-until-overmap
      DSE (paper Fig. 2) reads, with its >90 % cutoff;
    - {b throughput}: a pipeline initiates one outer iteration per cycle
      (II=1) when inner loops are fully unrolled; a non-unrollable inner
      loop multiplies the initiation interval by its trip count, and a
      loop-carried reduction by the accumulator latency;
    - {b memory}: inputs/outputs stream once over DDR; gathered tables are
      served from BRAM when they fit, else pay a random-access penalty;
    - {b transfer}: buffer copies over PCIe, or overlapped USM streaming
      when the zero-copy task ran (Stratix10 only). *)

type resources = {
  alms_used : int;
  dsps_used : int;
  bram_used : int;
  alm_util : float;
  dsp_util : float;
  utilization : float;  (** max of ALM and DSP utilisation *)
  overmapped : bool;  (** exceeds the 90 % DSE cutoff *)
  fits : bool;  (** physically placeable (<= 100 %) *)
}

type breakdown = {
  res : resources;
  ii_effective : float;  (** cycles between successive outer iterations *)
  t_pipe : float;  (** per call *)
  t_mem : float;
  t_transfer : float;
  t_call : float;
  total : float;
  speedup : float;
}

(* ------------------------------------------------------------------ *)
(* Per-operation area costs                                            *)
(* ------------------------------------------------------------------ *)

(** ALM cost of one operator instance. *)
let alm_cost ~sp (ops : Analysis.Opcount.t) =
  let c sp_c dp_c = if sp then sp_c else dp_c in
  (ops.fadd *. c 450.0 1_000.0)
  +. (ops.fmul *. c 150.0 550.0)
  +. (ops.fdiv *. c 3_200.0 9_500.0)
  +. (ops.sqrt *. c 3_000.0 9_000.0)
  +. (ops.exp_log *. c 18_000.0 48_000.0)
  +. (ops.trig *. c 17_000.0 48_000.0)
  +. (ops.power *. c 33_000.0 95_000.0)
  +. (ops.int_ops *. 40.0)
  +. ((ops.loads +. ops.stores) *. 220.0)
  +. (ops.cheap_math *. c 300.0 700.0)

(** DSP cost of one operator instance. *)
let dsp_cost ~sp (ops : Analysis.Opcount.t) =
  let c sp_c dp_c = if sp then sp_c else dp_c in
  (ops.fadd *. c 1.0 4.0)
  +. (ops.fmul *. c 1.0 4.0)
  +. (ops.fdiv *. c 2.0 8.0)
  +. (ops.sqrt *. c 2.0 8.0)
  +. (ops.exp_log *. c 8.0 26.0)
  +. (ops.trig *. c 10.0 30.0)
  +. (ops.power *. c 18.0 56.0)

(** Latency (cycles) of the operator chain — pipeline depth proxy. *)
let depth_estimate (ops : Analysis.Opcount.t) =
  0.5
  *. (ops.fadd +. ops.fmul
     +. (8.0 *. ops.fdiv)
     +. (15.0 *. ops.sqrt)
     +. (20.0 *. (ops.exp_log +. ops.trig))
     +. (40.0 *. ops.power))

(** Bytes of on-chip tables one pipeline replica banks into BRAM: arrays
    re-read inside inner loops plus gathered lookup tables (each pipeline
    needs its own ports, hence its own copy). *)
let bram_per_pipe (f : Analysis.Features.t) =
  let gathered =
    List.fold_left
      (fun acc (a : Analysis.Features.arg_feat) ->
        if List.mem a.af_name f.gathered_args then acc + a.af_footprint
        else acc)
      0 f.args
  in
  (* the two sets typically overlap (gathered tables are read in inner
     loops); take the larger rather than double-counting.  The 1.6x
     factor covers double-buffered banks and port-replication overhead. *)
  int_of_float (1.6 *. float_of_int (max f.inner_read_bytes gathered))

(** Resource estimate for unroll factor [unroll] — the content of the
    "high level design report" the DSE inspects. *)
let resources (fp : Spec.fpga) (d : Codegen.Design.t)
    (f : Analysis.Features.t) ~unroll : resources =
  let sp = d.single_precision in
  let u = float_of_int (max 1 unroll) in
  (* the hardware census counts operator instances to place: fully
     unrolled fixed inner loops replicate, unbounded loops reuse *)
  let pipe_alm = alm_cost ~sp f.hw_ops_per_iter in
  let depth = depth_estimate f.hw_ops_per_iter in
  (* live scalar state shifted along the pipeline: ~width/2 ALMs per
     stage per live value *)
  let state_alm =
    float_of_int f.locals_count *. depth *. (if sp then 8.0 else 16.0)
  in
  let infra = fp.infra_alm_fraction *. float_of_int fp.alms in
  let alms_used =
    int_of_float (infra +. (u *. (pipe_alm +. state_alm)))
  in
  let dsps_used = int_of_float (u *. dsp_cost ~sp f.hw_ops_per_iter) in
  let bram_used = int_of_float (u *. float_of_int (bram_per_pipe f)) in
  let alm_util = float_of_int alms_used /. float_of_int fp.alms in
  let dsp_util = float_of_int dsps_used /. float_of_int fp.dsps in
  let bram_util = float_of_int bram_used /. float_of_int fp.bram_bytes in
  let utilization = Float.max (Float.max alm_util dsp_util) bram_util in
  {
    alms_used;
    dsps_used;
    bram_used;
    alm_util;
    dsp_util;
    utilization;
    overmapped = utilization > 0.9;
    fits = utilization <= 1.0;
  }

(* ------------------------------------------------------------------ *)
(* Timing                                                              *)
(* ------------------------------------------------------------------ *)

(** Cycles between successive outer-loop initiations of one pipeline:
    fully unrolled inner loops contribute flat hardware (no cycles);
    every iteration of a non-unrollable innermost loop costs its
    initiation interval — the accumulator latency when it carries a
    reduction. *)
let effective_ii (fp : Spec.fpga) (f : Analysis.Features.t) =
  let inner_cost =
    List.fold_left
      (fun acc (il : Analysis.Features.inner_loop) ->
        if il.il_fully_unrollable || not il.il_innermost then acc
        else
          let ii =
            if il.il_has_reduction || not il.il_parallel then
              float_of_int fp.reduction_ii
            else 1.0
          in
          acc +. (il.il_iters_per_outer *. ii))
      0.0 f.inner_loops
  in
  Float.max 1.0 inner_cost

(** Full model: time of design [d] with features [f] on FPGA [fp].
    An unsynthesizable design (resources beyond the device) reports
    infinite time — the PSA cost evaluation rejects it. *)
let time (fp : Spec.fpga) (d : Codegen.Design.t) (f : Analysis.Features.t) :
    breakdown =
  let unroll = max 1 d.unroll_factor in
  let res = resources fp d f ~unroll in
  let ii = effective_ii fp f in
  if not res.fits then
    {
      res;
      ii_effective = ii;
      t_pipe = infinity;
      t_mem = infinity;
      t_transfer = infinity;
      t_call = infinity;
      total = infinity;
      speedup = 0.0;
    }
  else
    let cycles =
      (Float.max 1.0 f.outer_trip *. ii /. float_of_int unroll)
      +. fp.pipeline_fill
      +. depth_estimate f.ops_per_iter
    in
    let t_pipe = cycles /. fp.f_clock_hz in
    (* memory: stream inputs and outputs once; gathered tables that do not
       fit BRAM pay a random-access penalty on their traffic *)
    let gathered_footprint =
      List.fold_left
        (fun acc (a : Analysis.Features.arg_feat) ->
          if List.mem a.af_name f.gathered_args then acc + a.af_footprint
          else acc)
        0 f.args
    in
    let gathers_onchip =
      f.gathered_args = [] || gathered_footprint <= fp.bram_bytes
    in
    let stream_bytes = f.bytes_in_per_call +. f.bytes_out_per_call in
    let t_mem =
      if gathers_onchip then stream_bytes /. fp.ddr_bw
      else
        (stream_bytes /. fp.ddr_bw)
        +. (f.bytes_accessed_per_call *. f.gather_fraction
            /. (fp.ddr_bw /. 8.0))
    in
    let t_call =
      if d.zero_copy && fp.supports_usm then
        (* USM: kernel streams host memory directly; transfer and compute
           overlap, the slowest channel dominates *)
        Float.max (Float.max t_pipe t_mem) (stream_bytes /. fp.usm_bw)
        +. fp.f_transfer_latency_s
      else
        Float.max t_pipe t_mem
        +. (stream_bytes /. fp.f_pcie_bw)
        +. fp.f_transfer_latency_s
    in
    let t_transfer =
      if d.zero_copy && fp.supports_usm then stream_bytes /. fp.usm_bw
      else stream_bytes /. fp.f_pcie_bw
    in
    let total = t_call *. float_of_int f.calls in
    let t_ref = Cpu_model.reference_seconds f in
    {
      res;
      ii_effective = ii;
      t_pipe;
      t_mem;
      t_transfer;
      t_call;
      total;
      speedup = t_ref /. total;
    }
