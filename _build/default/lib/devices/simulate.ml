(** Unified design timing: dispatch a generated design to the matching
    device model and report seconds and speedup against the single-thread
    reference.  This is the "run the design on the platform" step of the
    evaluation, with the analytic models standing in for the testbed. *)

type result = {
  design : Codegen.Design.t;
  seconds : float;
  speedup : float;
  feasible : bool;
  detail : detail;
}

and detail =
  | Cpu_detail of Cpu_model.t
  | Gpu_detail of Gpu_model.breakdown
  | Fpga_detail of Fpga_model.breakdown

(** Time [design] under kernel features [f]. *)
let run (design : Codegen.Design.t) (f : Analysis.Features.t) : result =
  match design.target with
  | Codegen.Design.Cpu_openmp ->
      let cpu = Spec.find_cpu design.device_id in
      let threads =
        if design.num_threads > 0 then design.num_threads else cpu.cores
      in
      let r = Cpu_model.time cpu f ~threads in
      {
        design;
        seconds = r.t_parallel;
        speedup = r.speedup;
        feasible = true;
        detail = Cpu_detail r;
      }
  | Codegen.Design.Gpu_hip ->
      let gpu = Spec.find_gpu design.device_id in
      let r = Gpu_model.time gpu design f in
      {
        design;
        seconds = r.total;
        speedup = r.speedup;
        feasible = r.feasible;
        detail = Gpu_detail r;
      }
  | Codegen.Design.Fpga_oneapi ->
      let fpga = Spec.find_fpga design.device_id in
      let r = Fpga_model.time fpga design f in
      {
        design;
        seconds = (if design.synthesizable then r.total else infinity);
        speedup = (if design.synthesizable then r.speedup else 0.0);
        feasible = design.synthesizable && r.res.fits;
        detail = Fpga_detail r;
      }

(** Single-thread reference seconds (Fig. 5 baseline). *)
let reference_seconds = Cpu_model.reference_seconds

let pp_result fmt r =
  Format.fprintf fmt "%-22s %s %10.4g s  speedup %7.1fx" r.design.name
    (if r.feasible then "ok " else "n/a")
    r.seconds r.speedup
