lib/dse/threads_dse.mli: Analysis Codegen
