lib/dse/blocksize_dse.mli: Analysis Codegen
