lib/dse/blocksize_dse.ml: Analysis Codegen Devices List
