lib/dse/unroll_dse.ml: Analysis Codegen Devices List
