lib/dse/unroll_dse.mli: Analysis Codegen
