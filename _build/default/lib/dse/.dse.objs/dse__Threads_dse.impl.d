lib/dse/threads_dse.ml: Analysis Codegen Devices List
