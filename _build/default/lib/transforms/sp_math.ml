(** "Employ SP Math Fns" and "Employ SP Numeric Literals" —
    accelerator-path transforms.

    Accelerators pay heavily for double precision (GPU FP64 throughput,
    FPGA resource cost), so the GPU and FPGA branches rewrite the kernel
    to single precision: [sqrt] becomes [sqrtf], [2.0] becomes [2.0f], and
    the kernel's [double] declarations and pointer parameters become
    [float].  The host keeps doubles; the management code generated later
    converts at the boundary.

    "Employ Specialised Math Fns" additionally maps SP math calls to the
    GPU's hardware intrinsics ([expf] -> [__expf]): cheaper and slightly
    less accurate, applied only on the GPU branch. *)

open Minic

(** Rewrite double-precision math builtins to their 'f' variants within
    the kernel function. *)
let employ_sp_math (p : Ast.program) ~kernel : Ast.program =
  Artisan.Rewrite.map_exprs_in
    (fun e ->
      match e.Ast.enode with
      | Ast.Call (f, args) -> (
          match Minic.Builtins.to_single_variant f with
          | Some f' -> { e with Ast.enode = Ast.Call (f', args) }
          | None -> e)
      | _ -> e)
    kernel p

(** Rewrite double literals to single-precision literals within the
    kernel function. *)
let employ_sp_literals (p : Ast.program) ~kernel : Ast.program =
  Artisan.Rewrite.map_exprs_in
    (fun e ->
      match e.Ast.enode with
      | Ast.Float_lit (v, Ast.Double) ->
          { e with Ast.enode = Ast.Float_lit (v, Ast.Single) }
      | _ -> e)
    kernel p

(** Demote the kernel's [double] declarations and parameters to [float]. *)
let demote_kernel_types (p : Ast.program) ~kernel : Ast.program =
  let demote = function
    | Ast.Tdouble -> Ast.Tfloat
    | Ast.Tptr Ast.Tdouble -> Ast.Tptr Ast.Tfloat
    | t -> t
  in
  let funcs =
    List.map
      (fun (f : Ast.func) ->
        if f.fname <> kernel then f
        else
          let fparams =
            List.map
              (fun (pr : Ast.param) -> { pr with Ast.ptyp = demote pr.ptyp })
              f.fparams
          in
          let fbody =
            Artisan.Rewrite.edit_block
              (fun s ->
                match s.Ast.snode with
                | Ast.Decl d ->
                    [ { s with Ast.snode = Ast.Decl { d with dtyp = demote d.dtyp } } ]
                | _ -> [ s ])
              f.fbody
          in
          { f with fparams; fbody })
      p.Ast.funcs
  in
  { p with Ast.funcs }

(** Full single-precision conversion of the kernel: SP math + SP literals
    + demoted types. *)
let to_single_precision (p : Ast.program) ~kernel : Ast.program =
  demote_kernel_types (employ_sp_literals (employ_sp_math p ~kernel) ~kernel)
    ~kernel

(** Map SP math calls in the kernel to GPU hardware intrinsics
    ([expf] -> [__expf], ...).  Returns the program and how many call
    sites were specialised. *)
let employ_gpu_intrinsics (p : Ast.program) ~kernel : Ast.program * int =
  let count = ref 0 in
  let p =
    Artisan.Rewrite.map_exprs_in
      (fun e ->
        match e.Ast.enode with
        | Ast.Call (f, args) -> (
            match Minic.Builtins.to_gpu_intrinsic f with
            | Some f' ->
                incr count;
                { e with Ast.enode = Ast.Call (f', args) }
            | None -> e)
        | _ -> e)
      kernel p
  in
  (p, !count)
