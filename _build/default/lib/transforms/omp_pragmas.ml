(** "Multi-Thread Parallel Loops" — OpenMP-path transform.

    Attaches [#pragma omp parallel for] (with [reduction] clauses for any
    dependences the reduction-removal task annotated, and a
    [num_threads] clause once the thread-count DSE has chosen one) to the
    kernel's outermost parallel loop. *)

open Minic

exception Not_parallel of string

(** The OpenMP reduction clause corresponding to a [psa reduction]
    annotation clause: scalar clauses pass through, array clauses use the
    OpenMP 4.5 array-section syntax. *)
let omp_reduction_clause c =
  match String.index_opt c ':' with
  | Some i ->
      let op = String.sub c 0 i in
      let var = String.sub c (i + 1) (String.length c - i - 1) in
      let var =
        (* "sums[]" -> "sums[:]" array section *)
        match String.index_opt var '[' with
        | Some j -> String.sub var 0 j ^ "[:]"
        | None -> var
      in
      Printf.sprintf "reduction(%s:%s)" op var
  | None -> Printf.sprintf "reduction(+:%s)" c

(** Annotate the outermost loop of [kernel] with
    [#pragma omp parallel for ...].

    @raise Not_parallel if dependence analysis finds a non-reduction
      carried dependence. *)
let parallelize_kernel_loop ?num_threads (p : Ast.program) ~kernel :
    Ast.program =
  match Analysis.Dependence.outermost p kernel with
  | None -> raise (Not_parallel ("no loop in kernel " ^ kernel))
  | Some info when not info.parallel_with_reductions ->
      let reasons =
        info.carried
        |> List.map (fun (d : Analysis.Dependence.dep) ->
               d.var ^ ": " ^ Analysis.Dependence.dep_kind_to_string d.kind)
        |> String.concat "; "
      in
      raise (Not_parallel ("loop carries dependences: " ^ reasons))
  | Some info ->
      let loop_stmt =
        Artisan.Query.(
          stmts_in ~where:(fun ctx -> ctx.stmt.sid = info.loop_sid) p kernel)
        |> List.hd
      in
      let red_clauses =
        Reduction.clauses_of loop_stmt.Artisan.Query.stmt
        |> List.map omp_reduction_clause
      in
      let nt_clause =
        match num_threads with
        | Some n -> [ Printf.sprintf "num_threads(%d)" n ]
        | None -> []
      in
      Artisan.Instrument.set_pragma ~target:info.loop_sid
        {
          Ast.pname = "omp";
          pargs = [ "parallel"; "for" ] @ red_clauses @ nt_clause;
        }
        p

(** Thread count from the [num_threads] clause on the kernel's outer
    loop, if set. *)
let annotated_num_threads (p : Ast.program) ~kernel : int option =
  match
    Artisan.Query.(stmts_in ~where:(is_for &&& is_outermost_loop) p kernel)
  with
  | m :: _ ->
      List.find_map
        (fun (pr : Ast.pragma) ->
          if pr.pname <> "omp" then None
          else
            List.find_map
              (fun arg ->
                if
                  String.length arg > 12
                  && String.sub arg 0 12 = "num_threads("
                then
                  int_of_string_opt
                    (String.sub arg 12 (String.length arg - 13))
                else None)
              pr.pargs)
        m.Artisan.Query.stmt.pragmas
  | [] -> None
