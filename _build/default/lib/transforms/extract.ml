(** Hotspot loop extraction — target-independent transform.

    "Once a hotspot is identified, it is extracted into an isolated
    function for further analysis and eventual offloading, replacing the
    original loop with a function call."

    The extracted kernel takes every free variable of the loop as a
    parameter: arrays as pointers, scalars by value.  Extraction refuses
    loops that write free scalars (the benchmarks' hotspots write arrays
    only; the paper's flow has the same by-construction property since
    offloaded kernels return results through buffers). *)

open Minic

exception Not_extractable of string

(** Default name given to the extracted kernel. *)
let default_kernel_name = "hotspot_kernel"

(* ------------------------------------------------------------------ *)
(* Free-variable analysis                                              *)
(* ------------------------------------------------------------------ *)

(** Variables used by [stmt] but not declared within it (nor a loop index
    of a loop inside it), in first-use order. *)
let free_vars (stmt : Ast.stmt) : string list =
  let declared = Hashtbl.create 16 in
  let order = ref [] in
  let seen = Hashtbl.create 16 in
  let use v =
    if (not (Hashtbl.mem declared v)) && not (Hashtbl.mem seen v) then (
      Hashtbl.replace seen v ();
      order := v :: !order)
  in
  let use_expr e =
    Ast.iter_expr
      (fun sub -> match sub.Ast.enode with Ast.Var v -> use v | _ -> ())
      e
  in
  let rec walk (s : Ast.stmt) =
    (* declarations bind for the remainder of the body: visit uses of a
       statement before registering its binder only for initialisers *)
    (match s.snode with
    | Ast.Decl d ->
        Option.iter use_expr d.dsize;
        Option.iter use_expr d.dinit;
        Hashtbl.replace declared d.dname ()
    | Ast.For (h, _) ->
        use_expr h.init;
        use_expr h.bound;
        use_expr h.step;
        Hashtbl.replace declared h.index ()
    | Ast.Assign (lv, _, e) ->
        (match lv with
        | Ast.Lvar v -> use v
        | Ast.Lindex (a, i) ->
            use_expr a;
            use_expr i);
        use_expr e
    | _ -> List.iter use_expr (Ast.stmt_exprs s));
    List.iter (fun b -> List.iter walk b) (Ast.stmt_blocks s)
  in
  walk stmt;
  List.rev !order

(** Free scalar variables written (not just read) by the statement. *)
let written_free_scalars (stmt : Ast.stmt) =
  let free = free_vars stmt in
  let written = ref [] in
  Ast.iter_stmt
    (fun s ->
      match s.Ast.snode with
      | Ast.Assign (Ast.Lvar v, _, _) when List.mem v free ->
          if not (List.mem v !written) then written := v :: !written
      | _ -> ())
    stmt;
  List.rev !written

(* ------------------------------------------------------------------ *)
(* Type environment of the enclosing function                          *)
(* ------------------------------------------------------------------ *)

let var_types (p : Ast.program) (f : Ast.func) =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (g : Ast.stmt) ->
      match g.snode with
      | Ast.Decl d ->
          Hashtbl.replace tbl d.dname
            (match d.dsize with Some _ -> Ast.Tptr d.dtyp | None -> d.dtyp)
      | _ -> ())
    p.globals;
  List.iter
    (fun (pr : Ast.param) -> Hashtbl.replace tbl pr.pname_ pr.ptyp)
    f.fparams;
  Ast.iter_func
    (fun s ->
      match s.Ast.snode with
      | Ast.Decl d ->
          Hashtbl.replace tbl d.dname
            (match d.dsize with Some _ -> Ast.Tptr d.dtyp | None -> d.dtyp)
      | Ast.For (h, _) -> Hashtbl.replace tbl h.index Ast.Tint
      | _ -> ())
    f;
  tbl

(* ------------------------------------------------------------------ *)
(* Extraction                                                          *)
(* ------------------------------------------------------------------ *)

type result = {
  program : Ast.program;  (** program with the kernel function added *)
  kernel_name : string;
  params : (Ast.typ * string) list;
  loop_sid : int;  (** the hotspot loop's id, preserved inside the kernel *)
}

(** Extract the loop with node id [loop_sid] (a hotspot found by
    {!Analysis.Hotspot.detect}) out of function [func] into a new kernel
    function.

    @raise Not_extractable if the loop writes free scalars or cannot be
      found. *)
let hotspot ?(kernel_name = default_kernel_name) ?(func = "main")
    (p : Ast.program) ~loop_sid : result =
  let host =
    match Ast.find_func_opt p func with
    | Some f -> f
    | None -> raise (Not_extractable ("no function " ^ func))
  in
  let loop =
    let found = ref None in
    Ast.iter_func
      (fun s -> if s.Ast.sid = loop_sid then found := Some s)
      host;
    match !found with
    | Some s -> s
    | None ->
        raise
          (Not_extractable
             (Printf.sprintf "loop #%d not found in %s" loop_sid func))
  in
  (match written_free_scalars loop with
  | [] -> ()
  | vs ->
      raise
        (Not_extractable
           ("hotspot writes free scalars: " ^ String.concat ", " vs)));
  let types = var_types p host in
  let params =
    free_vars loop
    |> List.filter (fun v -> not (Minic.Builtins.is_builtin v))
    |> List.map (fun v ->
           match Hashtbl.find_opt types v with
           | Some t -> (t, v)
           | None ->
               raise
                 (Not_extractable
                    (Printf.sprintf "cannot type free variable '%s'" v)))
  in
  let kernel = Builder.func kernel_name params [ loop ] in
  let call =
    Builder.call_stmt kernel_name
      (List.map (fun (_, v) -> Builder.var v) params)
  in
  let p = Artisan.Instrument.replace ~target:loop_sid [ call ] p in
  let p = Artisan.Instrument.add_func kernel p in
  { program = p; kernel_name; params; loop_sid }

(** Convenience: detect the hotspot of [p] and extract it in one step. *)
let detect_and_extract ?kernel_name ?func (p : Ast.program) : result option =
  match Analysis.Hotspot.detect ?func p with
  | None -> None
  | Some h -> Some (hotspot ?kernel_name ?func p ~loop_sid:h.loop_sid)
