(** "Remove Array += Dependency" — target-independent transform.

    Accumulations into shared arrays ([sums[c] += x]) carry a dependence
    that blocks naive parallelisation.  This task detects them with the
    dependence analysis and annotates the loop so each backend can apply
    its removal strategy:

    - OpenMP: array/scalar [reduction] clauses,
    - HIP: atomic updates,
    - oneAPI/FPGA: replicated local accumulators merged after the loop.

    The annotation is the pragma [#pragma psa reduction <op>:<var> ...]
    attached to the loop statement, and the loop is thereafter treated as
    parallel by the flow (its [parallel_with_reductions] classification). *)

open Minic

let op_symbol = function
  | Ast.AddEq -> "+"
  | Ast.SubEq -> "-"
  | Ast.MulEq -> "*"
  | Ast.DivEq -> "/"
  | Ast.Set -> "="

(** Pragma spelling for one reduction dependence. *)
let clause (d : Analysis.Dependence.dep) =
  match d.kind with
  | Analysis.Dependence.Scalar_reduction op -> op_symbol op ^ ":" ^ d.var
  | Analysis.Dependence.Array_reduction op -> op_symbol op ^ ":" ^ d.var ^ "[]"
  | Analysis.Dependence.Carried _ -> assert false

(** Annotate every loop of [kernel] that carries removable reduction
    dependences.  Returns the transformed program and the number of loops
    annotated. *)
let remove_array_dependencies (p : Ast.program) ~kernel : Ast.program * int =
  let infos = Analysis.Dependence.analyze_function p kernel in
  List.fold_left
    (fun (p, n) (info : Analysis.Dependence.loop_info) ->
      if info.reductions = [] then (p, n)
      else
        let args = List.map clause info.reductions in
        ( Artisan.Instrument.set_pragma ~target:info.loop_sid
            { Ast.pname = "psa"; pargs = "reduction" :: args }
            p,
          n + 1 ))
    (p, 0) infos

(** Reduction clauses previously annotated on a statement. *)
let clauses_of (s : Ast.stmt) : string list =
  List.concat_map
    (fun (pr : Ast.pragma) ->
      match pr.pargs with
      | "reduction" :: rest when pr.pname = "psa" -> rest
      | _ -> [])
    s.pragmas

let has_annotation s = clauses_of s <> []
