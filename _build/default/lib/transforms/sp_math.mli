(** Single-precision conversion transforms ("Employ SP Math Fns",
    "Employ SP Numeric Literals", "Employ Specialised Math Fns").

    Accelerators pay heavily for double precision; the GPU and FPGA
    branches rewrite the kernel to single precision, and the GPU branch
    additionally maps SP math onto hardware intrinsics. *)

open Minic

(** Rewrite double-precision math builtins to their 'f' variants within
    the kernel function. *)
val employ_sp_math : Ast.program -> kernel:string -> Ast.program

(** Rewrite double literals to single-precision literals within the
    kernel function. *)
val employ_sp_literals : Ast.program -> kernel:string -> Ast.program

(** Demote the kernel's [double] declarations and parameters to [float]. *)
val demote_kernel_types : Ast.program -> kernel:string -> Ast.program

(** Full SP conversion: SP math + SP literals + demoted types. *)
val to_single_precision : Ast.program -> kernel:string -> Ast.program

(** Map SP math calls in the kernel to GPU hardware intrinsics
    ([expf] -> [__expf], ...).  Returns the program and the number of
    call sites specialised. *)
val employ_gpu_intrinsics : Ast.program -> kernel:string -> Ast.program * int
