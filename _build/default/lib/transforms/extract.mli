(** Hotspot loop extraction — target-independent transform.

    Extracts an identified hotspot loop into an isolated kernel function
    (free variables become parameters: arrays as pointers, scalars by
    value) and replaces the loop with a call, as the paper's partitioning
    stage describes. *)

open Minic

exception Not_extractable of string

(** Default name given to the extracted kernel ("hotspot_kernel"). *)
val default_kernel_name : string

(** Variables used by the statement but not declared within it, in
    first-use order. *)
val free_vars : Ast.stmt -> string list

(** Free scalar variables the statement writes (extraction blockers). *)
val written_free_scalars : Ast.stmt -> string list

type result = {
  program : Ast.program;  (** program with the kernel function added *)
  kernel_name : string;
  params : (Ast.typ * string) list;
  loop_sid : int;  (** the hotspot loop's id, preserved inside the kernel *)
}

(** Extract the loop with node id [loop_sid] out of [func] (default
    ["main"]) into a new kernel function.
    @raise Not_extractable if the loop writes free scalars or cannot be
      found *)
val hotspot :
  ?kernel_name:string -> ?func:string -> Ast.program -> loop_sid:int -> result

(** Detect the hotspot and extract it in one step. *)
val detect_and_extract :
  ?kernel_name:string -> ?func:string -> Ast.program -> result option
