(** Loop unrolling — FPGA-path transforms.

    Three forms: literal replication of fixed-bound loops, HLS-style
    full-unroll annotation of fixed inner loops ("Unroll Fixed Loops"),
    and the factor annotation the unroll-until-overmap DSE iterates
    (the paper's Fig. 2). *)

open Minic

exception Cannot_unroll of string

(** Literally replace a fixed-bound canonical loop by its fully unrolled
    body, the index substituted by its constant value (fresh node ids).
    @raise Cannot_unroll on runtime bounds or non-loops *)
val full_unroll_stmt : Ast.stmt -> Ast.block

(** Literally unroll every fixed-bound inner loop of [kernel] with trip
    count at most [threshold].  Returns the program and the number of
    loops unrolled. *)
val unroll_fixed_inner_loops :
  ?threshold:int -> Ast.program -> kernel:string -> Ast.program * int

(** Annotate every fixed-bound inner loop with a bare [#pragma unroll]
    (HLS full-unroll convention, keeps the exported source compact).
    Returns the program and the number of loops annotated. *)
val annotate_fixed_inner_loops :
  ?threshold:int -> Ast.program -> kernel:string -> Ast.program * int

(** Attach (or update) [#pragma unroll N] on the statement with id
    [target]. *)
val annotate_unroll : target:int -> factor:int -> Ast.program -> Ast.program

(** The unroll factor annotated on a statement, if any. *)
val annotated_factor : Ast.stmt -> int option

(** Unroll factor annotated on the kernel's outermost loop (1 if none). *)
val kernel_unroll_factor : Ast.program -> kernel:string -> int
