(** Loop unrolling — FPGA-path transforms.

    Two forms, as in the paper:

    - {!full_unroll}: literally replicate the body of a fixed-bound loop
      ("Unroll Fixed Loops"), used for small inner loops so the FPGA
      pipeline has no inner control flow;
    - {!annotate_unroll}: attach [#pragma unroll N] to a loop, the form
      the "Unroll Until Overmap" DSE iterates (Fig. 2) — the HLS
      compiler (here: the FPGA resource model) interprets the factor. *)

open Minic

exception Cannot_unroll of string

(** Replace a fixed-bound canonical loop by its fully unrolled body: one
    copy of the body per iteration, the index substituted by its constant
    value.  Fresh node ids are given to the copies. *)
let full_unroll_stmt (s : Ast.stmt) : Ast.block =
  match s.snode with
  | Ast.For (h, body) -> (
      match (h.init.enode, h.bound.enode, h.step.enode) with
      | Ast.Int_lit i0, Ast.Int_lit bound, Ast.Int_lit step when step > 0 ->
          let last = if h.inclusive then bound else bound - 1 in
          let copies = ref [] in
          let i = ref i0 in
          while !i <= last do
            let value = Builder.int !i in
            let copy =
              List.map
                (fun st ->
                  Artisan.Rewrite.subst_var_stmt ~name:h.index ~by:value
                    (Artisan.Rewrite.refresh_stmt st))
                body
            in
            copies := copy :: !copies;
            i := !i + step
          done;
          List.concat (List.rev !copies)
      | _ -> raise (Cannot_unroll "loop bounds are not compile-time constants"))
  | _ -> raise (Cannot_unroll "not a for loop")

(** Fully unroll every fixed-bound inner loop of [kernel] whose trip
    count is at most [threshold].  Returns the program and the number of
    loops unrolled ("Unroll Fixed Loops" task). *)
let unroll_fixed_inner_loops ?(threshold = Analysis.Features.full_unroll_threshold)
    (p : Ast.program) ~kernel : Ast.program * int =
  (* iterate to fixpoint: unrolling can expose further fixed loops *)
  let count = ref 0 in
  let rec go p =
    let target =
      Artisan.Query.(
        stmts_in
          ~where:
            (is_for &&& not_ is_outermost_loop
            &&& fun ctx ->
            match static_trip_count ctx.stmt with
            | Some n -> n <= threshold
            | None -> false)
          p kernel)
    in
    match target with
    | [] -> p
    | m :: _ ->
        incr count;
        let unrolled = full_unroll_stmt m.Artisan.Query.stmt in
        go (Artisan.Instrument.replace ~target:m.Artisan.Query.stmt.sid unrolled p)
  in
  let p = go p in
  (p, !count)

(** Annotate every fixed-bound inner loop of [kernel] with a full-unroll
    pragma ([#pragma unroll] with no factor, HLS convention).  The
    generated source stays compact and readable; the FPGA resource model
    prices the replicated operators from the loop's static trip count.
    Returns the program and the number of loops annotated. *)
let annotate_fixed_inner_loops
    ?(threshold = Analysis.Features.full_unroll_threshold) (p : Ast.program)
    ~kernel : Ast.program * int =
  let targets =
    Artisan.Query.(
      stmts_in
        ~where:
          (is_for &&& not_ is_outermost_loop
          &&& fun ctx ->
          match static_trip_count ctx.stmt with
          | Some n -> n <= threshold
          | None -> false)
        p kernel)
  in
  ( List.fold_left
      (fun acc (m : Artisan.Query.match_ctx) ->
        Artisan.Instrument.set_pragma ~target:m.stmt.sid
          { Ast.pname = "unroll"; pargs = [] }
          acc)
      p targets,
    List.length targets )

(** Attach (or update) [#pragma unroll N] on the statement with id
    [target] — the primitive the unroll-until-overmap DSE iterates. *)
let annotate_unroll ~target ~factor (p : Ast.program) : Ast.program =
  Artisan.Instrument.set_pragma ~target
    { Ast.pname = "unroll"; pargs = [ string_of_int factor ] }
    p

(** The unroll factor annotated on a statement, if any. *)
let annotated_factor (s : Ast.stmt) : int option =
  List.find_map
    (fun (pr : Ast.pragma) ->
      match (pr.pname, pr.pargs) with
      | "unroll", [ n ] -> int_of_string_opt n
      | _ -> None)
    s.pragmas

(** Unroll factor annotated on the outermost loop of [kernel] (1 if
    none). *)
let kernel_unroll_factor (p : Ast.program) ~kernel : int =
  match
    Artisan.Query.(stmts_in ~where:(is_for &&& is_outermost_loop) p kernel)
  with
  | m :: _ -> Option.value ~default:1 (annotated_factor m.Artisan.Query.stmt)
  | [] -> 1
