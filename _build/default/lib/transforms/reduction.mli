(** "Remove Array += Dependency" — target-independent transform.

    Detects accumulations into shared arrays/scalars with the dependence
    analysis and annotates the loop ([#pragma psa reduction op:var ...])
    so each backend applies its removal strategy: OpenMP reduction
    clauses, HIP atomics, FPGA accumulator replication. *)

open Minic

(** Pragma clause spelling ("+:var" scalar, "+:var[]" array) for one
    reduction dependence.
    @raise Assert_failure on carried (non-reduction) dependences *)
val clause : Analysis.Dependence.dep -> string

(** Annotate every loop of [kernel] carrying removable reductions.
    Returns the transformed program and the number of loops annotated. *)
val remove_array_dependencies :
  Ast.program -> kernel:string -> Ast.program * int

(** Reduction clauses previously annotated on a statement. *)
val clauses_of : Ast.stmt -> string list

val has_annotation : Ast.stmt -> bool
