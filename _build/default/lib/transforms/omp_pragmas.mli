(** "Multi-Thread Parallel Loops" — OpenMP-path transform.

    Attaches [#pragma omp parallel for] (with reduction clauses derived
    from the reduction-removal annotations, and a [num_threads] clause
    once the thread-count DSE has chosen one) to the kernel's outermost
    parallel loop. *)

open Minic

exception Not_parallel of string

(** The OpenMP reduction clause for a [psa reduction] annotation clause
    (array clauses use the OpenMP 4.5 array-section syntax). *)
val omp_reduction_clause : string -> string

(** Annotate the kernel's outermost loop.
    @raise Not_parallel if dependence analysis finds a non-reduction
      carried dependence, or the kernel has no loop *)
val parallelize_kernel_loop :
  ?num_threads:int -> Ast.program -> kernel:string -> Ast.program

(** Thread count from the [num_threads] clause, if set. *)
val annotated_num_threads : Ast.program -> kernel:string -> int option
