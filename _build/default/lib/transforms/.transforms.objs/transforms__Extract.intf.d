lib/transforms/extract.mli: Ast Minic
