lib/transforms/extract.ml: Analysis Artisan Ast Builder Hashtbl List Minic Option Printf String
