lib/transforms/unroll.ml: Analysis Artisan Ast Builder List Minic Option
