lib/transforms/omp_pragmas.mli: Ast Minic
