lib/transforms/omp_pragmas.ml: Analysis Artisan Ast List Minic Printf Reduction String
