lib/transforms/reduction.mli: Analysis Ast Minic
