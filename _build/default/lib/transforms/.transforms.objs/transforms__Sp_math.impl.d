lib/transforms/sp_math.ml: Artisan Ast List Minic
