lib/transforms/sp_math.mli: Ast Minic
