lib/transforms/reduction.ml: Analysis Artisan Ast List Minic
