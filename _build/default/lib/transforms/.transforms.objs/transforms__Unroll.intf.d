lib/transforms/unroll.mli: Ast Minic
