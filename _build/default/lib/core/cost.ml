(** Analytical cost evaluation and budget feedback (Fig. 3's bottom box,
    Section IV-D's cost/performance trade-offs).

    Cloud resources are priced per provisioned time; the monetary cost of
    a run is [price_per_second * execution_seconds].  With a budget set
    on the context, the standard flow evaluates the selected design's
    predicted cost; over budget, the PSA-flow feeds back and revises the
    decision (falls back to the cheapest feasible target). *)

(** On-demand $/hour for platforms carrying each device, in the spirit of
    the AWS EC2 instance families the paper cites (c6a / p3-class /
    f1-class).  The Fig. 6 experiment sweeps the FPGA:GPU ratio instead
    of trusting any single snapshot. *)
let default_hourly_prices =
  [
    ("epyc7543", 1.22);
    ("gtx1080ti", 2.35);
    ("rtx2080ti", 3.06);
    ("arria10", 1.65);
    ("stratix10", 2.20);
  ]

let price_per_second ?(prices = default_hourly_prices) device_id =
  match List.assoc_opt device_id prices with
  | Some hourly -> hourly /. 3600.0
  | None -> 0.0

(** Monetary cost of one timed run of a design. *)
let of_result ?prices (r : Devices.Simulate.result) =
  price_per_second ?prices r.design.device_id *. r.seconds

(** Relative cost of running design [a] vs design [b] when [a]'s device
    price per unit time is [price_ratio] times [b]'s: the quantity Fig. 6
    plots as the price ratio sweeps. [< 1.] means [a] is more cost
    effective. *)
let relative_cost ~price_ratio ~seconds_a ~seconds_b =
  if seconds_b <= 0.0 then Float.infinity
  else price_ratio *. seconds_a /. seconds_b

(** Price ratio at which the two designs cost the same: above it, [b] is
    more cost effective.  (Fig. 6's crossover points: ~3.2 for
    AdPredictor, ~2.5 for Bezier.) *)
let breakeven_ratio ~seconds_a ~seconds_b =
  if seconds_a <= 0.0 then Float.infinity else seconds_b /. seconds_a

(** Joules of one timed run of a design — the energy analogue of
    {!of_result} (Section IV-D: "similar analysis could be used to
    identify the most energy efficient implementation"). *)
let energy_of_result (r : Devices.Simulate.result) =
  Devices.Spec.board_watts_of_id r.design.device_id *. r.seconds

type verdict = Within_budget of float | Over_budget of float

(** Budget check for Fig. 3's feedback edge. *)
let check_budget (ctx : Context.t) (r : Devices.Simulate.result) =
  let c = of_result r in
  match ctx.budget with
  | Some b when c > b -> Over_budget c
  | _ -> Within_budget c
