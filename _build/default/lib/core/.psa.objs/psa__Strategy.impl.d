lib/core/strategy.ml: Analysis Codegen Context Cost Devices Dse Flow Format Fun List Printf
