lib/core/flow.mli: Context Task
