lib/core/strategy.mli: Context Devices Flow Format
