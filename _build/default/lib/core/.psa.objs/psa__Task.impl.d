lib/core/task.ml: Context Format
