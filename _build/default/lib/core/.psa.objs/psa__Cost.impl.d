lib/core/cost.ml: Context Devices Float List
