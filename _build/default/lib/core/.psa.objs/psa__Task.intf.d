lib/core/task.mli: Context Format
