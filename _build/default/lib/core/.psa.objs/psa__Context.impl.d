lib/core/context.ml: Analysis Ast Codegen Devices List Minic Printf
