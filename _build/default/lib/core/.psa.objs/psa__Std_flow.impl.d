lib/core/std_flow.ml: Analysis Codegen Context Cost Devices Dse Flow List Minic Strategy String Task Transforms
