lib/core/report.ml: Buffer Devices Flow Format List Printf Std_flow String Task
