lib/core/flow.ml: Context List Task
