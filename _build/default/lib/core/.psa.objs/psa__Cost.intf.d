lib/core/cost.mli: Context Devices
