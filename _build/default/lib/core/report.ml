(** Reporting: human-readable flow outcomes and the paper's qualitative
    comparison table (Table II). *)

let pp_results fmt (results : Devices.Simulate.result list) =
  Format.fprintf fmt "%-22s %-28s %12s %10s@."
    "design" "device" "time" "speedup";
  List.iter
    (fun (r : Devices.Simulate.result) ->
      Format.fprintf fmt "%-22s %-28s %12s %10s@."
        r.design.name
        (Devices.Spec.name (Devices.Spec.find r.design.device_id))
        (if r.feasible then Printf.sprintf "%.4g s" r.seconds else "n/a")
        (if r.feasible then Printf.sprintf "%.1fx" r.speedup else "n/a"))
    results

(** Fastest feasible result — the paper's Auto-Selected bar takes the
    fastest of the devices generated on the selected path. *)
let best (results : Devices.Simulate.result list) =
  List.fold_left
    (fun acc (r : Devices.Simulate.result) ->
      if not r.feasible then acc
      else
        match acc with
        | Some (b : Devices.Simulate.result) when b.seconds <= r.seconds -> acc
        | _ -> Some r)
    None results

(** One row of the paper's Table II. *)
type approach_row = {
  approach : string;
  partition : bool;
  map : bool;
  optimise : bool;
  multiple_targets : bool;
  scope : string;
}

(** Table II verbatim, with this work's row derivable from the
    implemented capabilities. *)
let table2 : approach_row list =
  [
    { approach = "Cross-Platform Frameworks [1-3]"; partition = false;
      map = false; optimise = false; multiple_targets = true;
      scope = "Full App." };
    { approach = "HeteroCL [10]"; partition = false; map = false;
      optimise = true; multiple_targets = false; scope = "Kernel" };
    { approach = "Halide [11]"; partition = false; map = false;
      optimise = true; multiple_targets = false; scope = "Kernel" };
    { approach = "Delite [12]"; partition = false; map = false;
      optimise = true; multiple_targets = true; scope = "Full App." };
    { approach = "MLIR [13]"; partition = false; map = false;
      optimise = true; multiple_targets = true; scope = "Full App." };
    { approach = "HLS DSE [14-16,19]"; partition = false; map = false;
      optimise = true; multiple_targets = false; scope = "Kernel" };
    { approach = "StreamBlocks [20]"; partition = true; map = false;
      optimise = false; multiple_targets = false; scope = "Full App." };
    { approach = "GenMat [21]"; partition = false; map = true;
      optimise = true; multiple_targets = true; scope = "Kernel" };
    { approach = "Design-Flow Patterns [5]"; partition = true; map = false;
      optimise = true; multiple_targets = false; scope = "Full App." };
    { approach = "This Work"; partition = true; map = true; optimise = true;
      multiple_targets = true; scope = "Full App." };
  ]

let pp_table2 fmt () =
  let mark b = if b then "yes" else "-" in
  Format.fprintf fmt "%-34s %-4s %-4s %-4s %-8s %s@." "Approach" "P" "M" "O"
    "Multi" "Scope";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-34s %-4s %-4s %-4s %-8s %s@." r.approach
        (mark r.partition) (mark r.map) (mark r.optimise)
        (mark r.multiple_targets) r.scope)
    table2

(** The repository listing (Fig. 4 left column). *)
let pp_repository fmt () =
  List.iter
    (fun (group, t) ->
      Format.fprintf fmt "%-10s %a@." group Task.pp t)
    Std_flow.repository_tasks

(* ------------------------------------------------------------------ *)
(* Flow visualisation (the paper's Fig. 1 / Fig. 4 diagrams)           *)
(* ------------------------------------------------------------------ *)

(** Render a flow as an ASCII tree: tasks as leaves with their A/T/CG/O
    classification (dynamic tasks marked [*]), branch points as fan-outs
    with their path names. *)
let flow_to_ascii (flow : Flow.t) : string =
  let buf = Buffer.create 1024 in
  let rec go indent = function
    | Flow.Task (t : Task.t) ->
        Buffer.add_string buf
          (Printf.sprintf "%s[%s%s] %s\n" indent
             (Task.classification_letter t.classification)
             (if t.dynamic then "*" else "")
             t.name)
    | Flow.Seq fs -> List.iter (go indent) fs
    | Flow.Branch bp ->
        Buffer.add_string buf
          (Printf.sprintf "%s<branch %s>\n" indent bp.bp_name);
        List.iter
          (fun (name, f) ->
            Buffer.add_string buf (Printf.sprintf "%s +- %s:\n" indent name);
            go (indent ^ " |   ") f)
          bp.paths
  in
  go "" flow;
  Buffer.contents buf

(** Render a flow as a Graphviz dot digraph (tasks as boxes, branch
    points as diamonds) for documentation diagrams. *)
let flow_to_dot ?(name = "psa_flow") (flow : Flow.t) : string =
  let buf = Buffer.create 1024 in
  let counter = ref 0 in
  let fresh prefix =
    incr counter;
    Printf.sprintf "%s_%d" prefix !counter
  in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n  rankdir=TB;\n" name);
  (* returns (entry node, exit nodes) of the sub-flow *)
  let rec emit = function
    | Flow.Task (t : Task.t) ->
        let id = fresh "task" in
        Buffer.add_string buf
          (Printf.sprintf "  %s [shape=box, label=\"%s (%s%s)\"];\n" id
             (String.map (fun c -> if c = '"' then '\'' else c) t.name)
             (Task.classification_letter t.classification)
             (if t.dynamic then "*" else ""));
        (id, [ id ])
    | Flow.Seq fs ->
        let parts = List.map emit fs in
        let rec link = function
          | (_, outs) :: ((entry, _) :: _ as rest) ->
              List.iter
                (fun o ->
                  Buffer.add_string buf (Printf.sprintf "  %s -> %s;\n" o entry))
                outs;
              link rest
          | _ -> ()
        in
        link parts;
        (match (parts, List.rev parts) with
        | (entry, _) :: _, (_, outs) :: _ -> (entry, outs)
        | _ ->
            let id = fresh "empty" in
            Buffer.add_string buf
              (Printf.sprintf "  %s [shape=point];\n" id);
            (id, [ id ]))
    | Flow.Branch bp ->
        let id = fresh "branch" in
        Buffer.add_string buf
          (Printf.sprintf
             "  %s [shape=diamond, style=filled, fillcolor=gold, label=\"%s\"];\n"
             id bp.bp_name);
        let exits =
          List.concat_map
            (fun (pname, f) ->
              let entry, outs = emit f in
              Buffer.add_string buf
                (Printf.sprintf "  %s -> %s [label=\"%s\"];\n" id entry pname);
              outs)
            bp.paths
        in
        (id, exits)
  in
  ignore (emit flow);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
