(** Analytical cost evaluation and budget feedback (Fig. 3's bottom box,
    Section IV-D's cost/performance trade-offs). *)

(** Default on-demand $/hour per device platform. *)
val default_hourly_prices : (string * float) list

(** $/second for the platform carrying [device_id] (0 if unknown). *)
val price_per_second : ?prices:(string * float) list -> string -> float

(** Monetary cost of one timed run of a design. *)
val of_result : ?prices:(string * float) list -> Devices.Simulate.result -> float

(** Relative cost of running design [a] vs design [b] when [a]'s device
    price per unit time is [price_ratio] times [b]'s — the quantity
    Fig. 6 plots.  [< 1.] means [a] is more cost effective. *)
val relative_cost :
  price_ratio:float -> seconds_a:float -> seconds_b:float -> float

(** Price ratio at which the two designs cost the same (Fig. 6's
    crossover points). *)
val breakeven_ratio : seconds_a:float -> seconds_b:float -> float

(** Joules of one timed run — the energy analogue of {!of_result}
    (Section IV-D). *)
val energy_of_result : Devices.Simulate.result -> float

type verdict = Within_budget of float | Over_budget of float

(** Budget check for Fig. 3's feedback edge; the carried float is the
    evaluated cost. *)
val check_budget : Context.t -> Devices.Simulate.result -> verdict
