(** Codified design-flow tasks.

    Each task encapsulates one self-contained analysis, transformation,
    code generation or optimisation step — the A/T/CG/O classification of
    the paper's Fig. 4 — plus whether it is {e dynamic} (requires program
    execution; the clock marker in the paper's figures). *)

type classification =
  | Analysis_task
  | Transform
  | Code_generation
  | Optimisation

(** "A" / "T" / "CG" / "O". *)
val classification_letter : classification -> string

type t = {
  name : string;
  classification : classification;
  dynamic : bool;  (** requires program execution *)
  run : Context.t -> Context.t;
}

val make :
  ?dynamic:bool -> string -> classification -> (Context.t -> Context.t) -> t

(** Apply a task, logging its execution into the context. *)
val apply : t -> Context.t -> Context.t

val pp : Format.formatter -> t -> unit
