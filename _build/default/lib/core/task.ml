(** Codified design-flow tasks.

    Each task encapsulates one self-contained analysis, transformation,
    code generation or optimisation step (the A/T/CG/O classification of
    the paper's Fig. 4), plus whether it is {e dynamic} — requires
    program execution, marked with a clock in the paper's figures.  Tasks
    compose into flows ({!Flow}); the repository of tasks lives in
    {!Std_flow.Repository}. *)

type classification =
  | Analysis_task
  | Transform
  | Code_generation
  | Optimisation

let classification_letter = function
  | Analysis_task -> "A"
  | Transform -> "T"
  | Code_generation -> "CG"
  | Optimisation -> "O"

type t = {
  name : string;
  classification : classification;
  dynamic : bool;  (** requires program execution *)
  run : Context.t -> Context.t;
}

let make ?(dynamic = false) name classification run =
  { name; classification; dynamic; run }

(** Apply a task, logging its execution. *)
let apply (t : t) (ctx : Context.t) : Context.t =
  let ctx =
    Context.logf ctx "[%s%s] %s"
      (classification_letter t.classification)
      (if t.dynamic then "*" else "")
      t.name
  in
  t.run ctx

let pp fmt t =
  Format.fprintf fmt "%-35s %-2s%s" t.name
    (classification_letter t.classification)
    (if t.dynamic then " (dynamic)" else "")
