(** "Generate HIP Design" — GPU-path code generation, plus the GPU-path
    optimisation tasks ("Employ HIP Pinned Memory", "Introduce Shared Mem
    Buf", "Employ SP Math Fns/Literals", "Employ Specialised Math Fns").

    Generation restructures the extracted kernel into

    - a device kernel [<kernel>_gpu]: the outer loop becomes a per-thread
      guarded body indexed by the global thread id;
    - a host wrapper keeping the kernel's original name so the rest of
      the application is untouched: device allocation, host->device
      copies for arguments the data-movement analysis showed are read,
      the launch, synchronisation, device->host copies for produced
      arguments, and cleanup — each guarded by [hipCheck], as generated
      management code must be.

    Array reductions annotated by the reduction-removal task become
    atomic updates in the device kernel. *)

open Minic

exception Codegen_error of string

let find_kernel_func (p : Ast.program) kernel =
  match Ast.find_func_opt p kernel with
  | Some f -> f
  | None -> raise (Codegen_error ("no kernel function " ^ kernel))

let outer_loop_of (f : Ast.func) =
  match f.fbody with
  | [ ({ snode = Ast.For (h, body); _ } as s) ] -> (s, h, body)
  | _ ->
      raise
        (Codegen_error
           ("kernel " ^ f.fname ^ " is not a single outer loop"))

(** Parse "op:var" / "op:var[]" reduction clauses into (var, op). *)
let parse_clauses clauses =
  List.filter_map
    (fun c ->
      match String.index_opt c ':' with
      | Some i ->
          let op = String.sub c 0 i in
          let var = String.sub c (i + 1) (String.length c - i - 1) in
          let var =
            match String.index_opt var '[' with
            | Some j -> String.sub var 0 j
            | None -> var
          in
          Some (var, op)
      | None -> None)
    clauses

(* ------------------------------------------------------------------ *)
(* Device kernel                                                       *)
(* ------------------------------------------------------------------ *)

(** Turn array-reduction writes to [vars] into atomic calls:
    [sums[c] += v] becomes [hip_atomic_add(sums, c, v)]. *)
let atomicize_reductions vars (body : Ast.block) : Ast.block =
  Artisan.Rewrite.edit_block
    (fun s ->
      match s.Ast.snode with
      | Ast.Assign (Ast.Lindex ({ enode = Ast.Var a; _ }, idx), op, rhs)
        when List.mem_assoc a vars && op <> Ast.Set ->
          let callee =
            match op with
            | Ast.AddEq -> "hip_atomic_add"
            | Ast.SubEq -> "hip_atomic_sub"
            | Ast.MulEq | Ast.DivEq | Ast.Set -> "hip_atomic_exch"
          in
          [ Builder.call_stmt callee [ Builder.var a; idx; rhs ] ]
      | _ -> [ s ])
    body

(** Build the device kernel function from the extracted kernel. *)
let make_device_kernel (f : Ast.func) : Ast.func * string =
  let loop_stmt, h, body = outer_loop_of f in
  let gpu_name = f.fname ^ "_gpu" in
  let clauses = Transforms.Reduction.clauses_of loop_stmt in
  let body =
    if clauses = [] then body
    else atomicize_reductions (parse_clauses clauses) body
  in
  let tid_decl =
    Builder.decl Ast.Tint "__tid"
      ~init:(Builder.call "hip_global_thread_id" [])
    |> Builder.with_pragmas [ Builder.pragma "hip" ~args:[ "global_kernel" ] ]
  in
  let index_decl =
    Builder.decl Ast.Tint h.index
      ~init:
        Builder.(
          Artisan.Rewrite.refresh_expr h.init
          +: (var "__tid" *: Artisan.Rewrite.refresh_expr h.step))
  in
  let cmp = if h.inclusive then Ast.Le else Ast.Lt in
  let guard =
    Builder.if_
      (Builder.binop cmp (Builder.var h.index)
         (Artisan.Rewrite.refresh_expr h.bound))
      body None
  in
  ( Builder.func gpu_name
      (List.map (fun (pr : Ast.param) -> (pr.ptyp, pr.pname_)) f.fparams)
      [ tid_decl; index_decl; guard ],
    gpu_name )

(* ------------------------------------------------------------------ *)
(* Host wrapper                                                        *)
(* ------------------------------------------------------------------ *)

let check call = Builder.call_stmt "hipCheck" [ call ]

let buffer_bytes name = Builder.call "hip_buffer_bytes" [ Builder.var name ]

(** Transfer behaviour of each pointer parameter, from the data-movement
    analysis (absent args are conservatively both in and out). *)
let transfer_of (data : Analysis.Data_inout.t option) name =
  match data with
  | None -> (true, true)
  | Some d -> (
      match List.find_opt (fun (a : Analysis.Data_inout.arg) -> a.name = name) d.args with
      | Some a -> (a.bytes_in > 0, a.bytes_out > 0)
      | None -> (true, true))

let make_host_wrapper (f : Ast.func) ~gpu_name ~blocksize ~data : Ast.func =
  let h = match outer_loop_of f with _, h, _ -> h in
  let ptr_params, scalar_params =
    List.partition
      (fun (pr : Ast.param) ->
        match pr.ptyp with Ast.Tptr _ -> true | _ -> false)
      f.fparams
  in
  let dev_name n = "d_" ^ n in
  let decls =
    List.map
      (fun (pr : Ast.param) -> Builder.decl pr.ptyp (dev_name pr.pname_))
      ptr_params
  in
  let allocs =
    List.map
      (fun (pr : Ast.param) ->
        check
          (Builder.call "hipMalloc"
             [ Builder.var (dev_name pr.pname_); buffer_bytes pr.pname_ ]))
      ptr_params
  in
  let copies_in =
    List.filter_map
      (fun (pr : Ast.param) ->
        let needs_in, _ = transfer_of data pr.pname_ in
        if needs_in then
          Some
            (check
               (Builder.call "hipMemcpyHtoD"
                  [
                    Builder.var (dev_name pr.pname_);
                    Builder.var pr.pname_;
                    buffer_bytes pr.pname_;
                  ]))
        else None)
      ptr_params
  in
  let trip =
    (* iterations = (bound - init + step - 1) / step *)
    Builder.(
      (Artisan.Rewrite.refresh_expr h.bound
      -: Artisan.Rewrite.refresh_expr h.init
      +: Artisan.Rewrite.refresh_expr h.step
      -: int (if h.inclusive then 0 else 1))
      /: Artisan.Rewrite.refresh_expr h.step)
  in
  let bs_decl = Builder.decl Ast.Tint "__blocksize" ~init:(Builder.int blocksize) in
  let grid_decl =
    Builder.decl Ast.Tint "__grid"
      ~init:
        Builder.(
          (trip +: var "__blocksize" -: int 1) /: var "__blocksize")
  in
  let launch_args =
    [ Builder.var "__grid"; Builder.var "__blocksize" ]
    @ List.map
        (fun (pr : Ast.param) ->
          if List.memq pr ptr_params then Builder.var (dev_name pr.pname_)
          else Builder.var pr.pname_)
        f.fparams
  in
  ignore scalar_params;
  let launch = Builder.call_stmt ("hipLaunchKernelGGL_" ^ gpu_name) launch_args in
  let sync = check (Builder.call "hipDeviceSynchronize" []) in
  let copies_out =
    List.filter_map
      (fun (pr : Ast.param) ->
        let _, needs_out = transfer_of data pr.pname_ in
        if needs_out then
          Some
            (check
               (Builder.call "hipMemcpyDtoH"
                  [
                    Builder.var pr.pname_;
                    Builder.var (dev_name pr.pname_);
                    buffer_bytes pr.pname_;
                  ]))
        else None)
      ptr_params
  in
  let frees =
    List.map
      (fun (pr : Ast.param) ->
        check (Builder.call "hipFree" [ Builder.var (dev_name pr.pname_) ]))
      ptr_params
  in
  Builder.func f.fname
    (List.map (fun (pr : Ast.param) -> (pr.ptyp, pr.pname_)) f.fparams)
    (decls @ allocs @ copies_in
    @ [ bs_decl; grid_decl; launch; sync ]
    @ copies_out @ frees)

(* ------------------------------------------------------------------ *)
(* Generation entry point                                              *)
(* ------------------------------------------------------------------ *)

(** Generate the HIP CPU+GPU design from the extracted program.

    @param data data-movement analysis of the kernel, used to emit only
      the transfers the kernel actually needs *)
let generate ?(device_id = "gtx1080ti") ?(blocksize = 256) ?data
    (p : Ast.program) ~kernel : Design.t =
  let f = find_kernel_func p kernel in
  let loop_stmt, _, _ = outer_loop_of f in
  let reductions = Transforms.Reduction.clauses_of loop_stmt <> [] in
  let device_fn, gpu_name = make_device_kernel f in
  let wrapper = make_host_wrapper f ~gpu_name ~blocksize ~data in
  let p =
    { p with Ast.funcs =
        List.concat_map
          (fun (fn : Ast.func) ->
            if fn.fname = kernel then [ device_fn; wrapper ] else [ fn ])
          p.Ast.funcs }
  in
  let d =
    Design.make ~name:("hip_" ^ device_id) ~target:Design.Gpu_hip ~device_id
      ~program:p ~kernel ~device_kernel:gpu_name
  in
  { d with Design.blocksize; reductions_removed = reductions }
  |> Design.note "generated HIP device kernel and host management code"
  |> fun d ->
  if reductions then Design.note "array reductions lowered to atomics" d
  else d

(* ------------------------------------------------------------------ *)
(* GPU-path optimisation tasks                                         *)
(* ------------------------------------------------------------------ *)

(** "Employ HIP Pinned Memory": page-lock the transferred host buffers so
    DMA runs at full PCIe bandwidth. *)
let employ_pinned_memory (d : Design.t) : Design.t =
  let f = find_kernel_func d.program d.kernel in
  let ptr_params =
    List.filter
      (fun (pr : Ast.param) ->
        match pr.ptyp with Ast.Tptr _ -> true | _ -> false)
      f.fparams
  in
  let registers =
    List.map
      (fun (pr : Ast.param) ->
        check
          (Builder.call "hipHostRegister"
             [ Builder.var pr.pname_; buffer_bytes pr.pname_ ]))
      ptr_params
  in
  let unregisters =
    List.map
      (fun (pr : Ast.param) ->
        check (Builder.call "hipHostUnregister" [ Builder.var pr.pname_ ]))
      ptr_params
  in
  let f' = { f with Ast.fbody = registers @ f.fbody @ unregisters } in
  let p = Artisan.Instrument.replace_func ~name:d.kernel f' d.program in
  { d with Design.program = p; pinned_memory = true }
  |> Design.note "host buffers page-locked (pinned) for fast DMA"

(** "Introduce Shared Mem Buf": stage arrays that every thread re-reads
    (read-only arrays whose index does not depend on the thread's own
    index) through block-shared memory. *)
let introduce_shared_mem (d : Design.t) : Design.t =
  let f = find_kernel_func d.program d.device_kernel in
  (* thread index variable: second declaration of the device kernel *)
  let thread_index =
    match f.fbody with
    | _ :: { snode = Ast.Decl dd; _ } :: _ -> dd.dname
    | _ -> "__tid"
  in
  (* read-only pointer params whose reads never depend on thread_index *)
  let written = Hashtbl.create 8 in
  Ast.iter_func
    (fun s ->
      match s.Ast.snode with
      | Ast.Assign (Ast.Lindex ({ enode = Ast.Var a; _ }, _), _, _) ->
          Hashtbl.replace written a ()
      | _ -> ())
    f;
  let candidates = ref [] in
  Ast.iter_func
    (fun s ->
      List.iter
        (fun e ->
          Ast.iter_expr
            (fun sub ->
              match sub.Ast.enode with
              | Ast.Index ({ enode = Ast.Var a; _ }, idx)
                when (not (Hashtbl.mem written a))
                     && (not (Analysis.Dependence.mentions_var thread_index idx))
                     && List.exists
                          (fun (pr : Ast.param) ->
                            pr.pname_ = a
                            && match pr.ptyp with Ast.Tptr _ -> true | _ -> false)
                          f.fparams
                     && not (List.mem a !candidates) ->
                  candidates := a :: !candidates
              | _ -> ())
            e)
        (Ast.stmt_exprs s))
    f;
  match List.rev !candidates with
  | [] -> d
  | arrays ->
      let tiles =
        List.concat_map
          (fun a ->
            let elem =
              match
                List.find_opt (fun (pr : Ast.param) -> pr.pname_ = a) f.fparams
              with
              | Some { ptyp = Ast.Tptr t; _ } -> t
              | _ -> Ast.Tdouble
            in
            [
              Builder.decl elem ("__smem_" ^ a)
                ~size:(Builder.call "hip_block_dim" [])
              |> Builder.with_pragmas
                   [ Builder.pragma "hip" ~args:[ "shared" ] ];
              Builder.call_stmt "hip_block_stage"
                [ Builder.var ("__smem_" ^ a); Builder.var a ];
            ])
          arrays
        @ [ Builder.call_stmt "hip_syncthreads" [] ]
      in
      let f' = { f with Ast.fbody = tiles @ f.fbody } in
      let p = Artisan.Instrument.replace_func ~name:d.device_kernel f' d.program in
      { d with Design.program = p; shared_mem = true }
      |> Design.note
           ("staged through shared memory: " ^ String.concat ", " arrays)

(** "Employ SP Math Fns" + "Employ SP Numeric Literals" on the device
    kernel. *)
let employ_single_precision (d : Design.t) : Design.t =
  let p =
    Transforms.Sp_math.to_single_precision d.program ~kernel:d.device_kernel
  in
  { d with Design.program = p; single_precision = true }
  |> Design.note "device kernel converted to single precision"

(** "Employ Specialised Math Fns": GPU hardware intrinsics. *)
let employ_intrinsics (d : Design.t) : Design.t =
  let p, n =
    Transforms.Sp_math.employ_gpu_intrinsics d.program ~kernel:d.device_kernel
  in
  if n = 0 then d
  else
    { d with Design.program = p; gpu_intrinsics = true }
    |> Design.note (Printf.sprintf "%d math calls use GPU intrinsics" n)

(** Set the launch blocksize chosen by the blocksize DSE: updates the
    knob and the [__blocksize] constant in the generated source. *)
let set_blocksize (d : Design.t) n : Design.t =
  let p =
    Artisan.Rewrite.edit_stmts_in
      (fun s ->
        match s.Ast.snode with
        | Ast.Decl dd when dd.dname = "__blocksize" ->
            [
              {
                s with
                Ast.snode =
                  Ast.Decl { dd with dinit = Some (Builder.int n) };
              };
            ]
        | _ -> [ s ])
      d.kernel d.program
  in
  { d with Design.program = p; blocksize = n }
