(** "Generate OpenMP Design" — CPU-path code generation.

    The OpenMP design is the lightest of the three: the extracted kernel
    loop is annotated with [#pragma omp parallel for] (with reduction
    clauses derived from the reduction-removal annotations) and the host
    gains a thread-count setup call.  This is why Table I reports only
    ~+2 % added LOC for the OMP designs. *)

open Minic

(** Generate the multi-thread CPU design from an extracted program.

    @param device_id CPU device key (default ["epyc7543"])
    @param num_threads initial thread count; the "OMP Num Threads DSE"
      task refines it afterwards *)
let generate ?(device_id = "epyc7543") ?(num_threads = 0)
    (p : Ast.program) ~kernel : Design.t =
  let nt = if num_threads > 0 then Some num_threads else None in
  let p = Transforms.Omp_pragmas.parallelize_kernel_loop ?num_threads:nt p ~kernel in
  (* host-side runtime setup, inserted before the first kernel call *)
  let p =
    match
      Artisan.Query.exprs_in p "main" ~where:(Artisan.Query.is_call ~name:kernel)
    with
    | ctx :: _ ->
        let setup =
          Builder.call_stmt "omp_set_dynamic" [ Builder.int 0 ]
        in
        Artisan.Instrument.insert_before ~target:ctx.Artisan.Query.estmt.sid
          setup p
    | [] -> p
  in
  Design.make ~name:("omp_" ^ device_id) ~target:Design.Cpu_openmp ~device_id
    ~program:p ~kernel ~device_kernel:kernel
  |> (fun d -> { d with Design.num_threads = max 1 num_threads })
  |> Design.note "parallelised outer kernel loop with OpenMP"

(** Set the thread count chosen by the DSE: updates both the design knob
    and the [num_threads] clause in the source. *)
let set_num_threads (d : Design.t) n : Design.t =
  let p =
    Transforms.Omp_pragmas.parallelize_kernel_loop ~num_threads:n d.program
      ~kernel:d.kernel
  in
  { d with Design.program = p; num_threads = n }
