(** A generated design: one concrete implementation of the application
    for one target, produced by a PSA-flow path — the generated source,
    the tuning knobs the device-specific DSE set, and the flags the
    optimisation transforms recorded. *)

open Minic

type target = Cpu_openmp | Gpu_hip | Fpga_oneapi

(** e.g. "HIP CPU+GPU". *)
val target_to_string : target -> string

(** e.g. "HIP". *)
val target_framework : target -> string

type t = {
  name : string;  (** e.g. ["hip_rtx2080ti"] *)
  target : target;
  device_id : string;  (** key into {!Devices.Spec} *)
  program : Ast.program;  (** the generated, human-readable source *)
  kernel : string;  (** host-side kernel entry point *)
  device_kernel : string;  (** device-side kernel function name *)
  unroll_factor : int;
  blocksize : int;
  num_threads : int;
  single_precision : bool;
  pinned_memory : bool;
  zero_copy : bool;
  shared_mem : bool;
  gpu_intrinsics : bool;
  reductions_removed : bool;
  synthesizable : bool;
      (** false when the DSE found the design overmaps its device even
          at the minimum configuration (the paper's Rush Larsen case) *)
  notes : string list;  (** human-readable log of applied tasks *)
}

(** Fresh design with default knobs and no flags. *)
val make :
  name:string ->
  target:target ->
  device_id:string ->
  program:Ast.program ->
  kernel:string ->
  device_kernel:string ->
  t

(** Append a human-readable note. *)
val note : string -> t -> t

(** Added lines of code relative to the reference program (Table I). *)
val loc_delta : reference:Ast.program -> t -> int

val loc_delta_percent : reference:Ast.program -> t -> float

(** Export the generated source text. *)
val export : t -> string

val pp_summary : Format.formatter -> t -> unit
