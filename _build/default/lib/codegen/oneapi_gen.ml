(** "Generate oneAPI Design" — FPGA-path code generation, plus the
    FPGA-path optimisation tasks ("Zero-Copy Data Transfer" for devices
    with unified-shared-memory support).

    The FPGA design keeps the kernel's loop structure (the loop pipeline
    is the execution model; the unroll tasks widen it) and wraps it in
    oneAPI/SYCL-style management code: queue construction against the
    FPGA selector, buffer creation per transferred argument, kernel
    submission, event synchronisation, copy-back and teardown — all
    guarded by [sycl_check], which is why oneAPI designs add the most
    lines in Table I. *)

open Minic

exception Codegen_error of string

let find_kernel_func (p : Ast.program) kernel =
  match Ast.find_func_opt p kernel with
  | Some f -> f
  | None -> raise (Codegen_error ("no kernel function " ^ kernel))

let check e = Builder.call_stmt "sycl_check" [ e ]
let check_var v = Builder.call_stmt "sycl_check" [ Builder.var v ]
let buffer_bytes name = Builder.call "sycl_buffer_bytes" [ Builder.var name ]

let transfer_of (data : Analysis.Data_inout.t option) name =
  match data with
  | None -> (true, true)
  | Some d -> (
      match
        List.find_opt (fun (a : Analysis.Data_inout.arg) -> a.name = name) d.args
      with
      | Some a -> (a.bytes_in > 0, a.bytes_out > 0)
      | None -> (true, true))

let ptr_params_of (f : Ast.func) =
  List.filter
    (fun (pr : Ast.param) ->
      match pr.ptyp with Ast.Tptr _ -> true | _ -> false)
    f.fparams

(* ------------------------------------------------------------------ *)
(* Host wrapper                                                        *)
(* ------------------------------------------------------------------ *)

(** Build the host wrapper in buffer mode (default) or USM zero-copy mode
    (Stratix10-class devices). *)
let make_host_wrapper (f : Ast.func) ~fpga_name ~usm ~data : Ast.func =
  let ptr_params = ptr_params_of f in
  let queue_decl =
    Builder.decl Ast.Tint "__q"
      ~init:(Builder.call "sycl_fpga_queue_create" [])
  in
  let queue_check = check_var "__q" in
  let handle n = (if usm then "__usm_" else "__buf_") ^ n in
  let per_array_setup =
    List.concat_map
      (fun (pr : Ast.param) ->
        let n = pr.pname_ in
        if usm then
          [
            (* zero-copy host allocations need alignment checks and
               access-pattern advice to stream at full rate *)
            check (Builder.call "sycl_assert_usm_aligned" [ Builder.var n ]);
            Builder.decl Ast.Tint (handle n)
              ~init:
                (Builder.call "sycl_usm_host_register"
                   [ Builder.var n; buffer_bytes n ]);
            check_var (handle n);
            check
              (Builder.call "sycl_mem_advise"
                 [ Builder.var "__q"; Builder.var (handle n) ]);
          ]
        else
          let needs_in, _ = transfer_of data n in
          [
            Builder.decl Ast.Tint (handle n)
              ~init:
                (Builder.call
                   (if needs_in then "sycl_buffer_create_from"
                    else "sycl_buffer_create_uninit")
                   [ Builder.var "__q"; Builder.var n; buffer_bytes n ]);
            check_var (handle n);
            check
              (Builder.call "sycl_buffer_bind"
                 [ Builder.var "__q"; Builder.var (handle n) ]);
          ])
      ptr_params
  in
  let submit_args =
    Builder.var "__q"
    :: List.map
         (fun (pr : Ast.param) ->
           match pr.ptyp with
           | Ast.Tptr _ ->
               if usm then Builder.var pr.pname_
               else Builder.var (handle pr.pname_)
           | _ -> Builder.var pr.pname_)
         f.fparams
  in
  let submit =
    Builder.decl Ast.Tint "__evt"
      ~init:(Builder.call ("sycl_submit_" ^ fpga_name) submit_args)
  in
  let wait =
    [
      check_var "__evt";
      check (Builder.call "sycl_queue_flush" [ Builder.var "__q" ]);
      check (Builder.call "sycl_event_wait" [ Builder.var "__evt" ]);
    ]
  in
  let copy_back =
    if usm then []
    else
      List.filter_map
        (fun (pr : Ast.param) ->
          let _, needs_out = transfer_of data pr.pname_ in
          if needs_out then
            Some
              (check
                 (Builder.call "sycl_buffer_copy_back"
                    [
                      Builder.var (handle pr.pname_);
                      Builder.var pr.pname_;
                      buffer_bytes pr.pname_;
                    ]))
          else None)
        ptr_params
  in
  let teardown =
    List.map
      (fun (pr : Ast.param) ->
        check
          (Builder.call
             (if usm then "sycl_usm_host_unregister" else "sycl_buffer_destroy")
             [ Builder.var (handle pr.pname_) ]))
      ptr_params
    @ [ check (Builder.call "sycl_queue_destroy" [ Builder.var "__q" ]) ]
  in
  Builder.func f.fname
    (List.map (fun (pr : Ast.param) -> (pr.ptyp, pr.pname_)) f.fparams)
    ([ queue_decl; queue_check ] @ per_array_setup @ [ submit ] @ wait
    @ copy_back @ teardown)

(* ------------------------------------------------------------------ *)
(* Generation entry point                                              *)
(* ------------------------------------------------------------------ *)

(** Generate the oneAPI CPU+FPGA design from the extracted program. *)
let generate ?(device_id = "arria10") ?data (p : Ast.program) ~kernel :
    Design.t =
  let f = find_kernel_func p kernel in
  let fpga_name = kernel ^ "_fpga" in
  (* device kernel: same loop, marked as the FPGA pipeline *)
  let device_fn =
    {
      f with
      Ast.fname = fpga_name;
      fbody =
        (match f.fbody with
        | [ loop ] ->
            [
              Builder.with_pragmas
                [ Builder.pragma "fpga" ~args:[ "pipeline" ] ]
                loop;
            ]
        | body -> body);
    }
  in
  let wrapper = make_host_wrapper f ~fpga_name ~usm:false ~data in
  let p =
    { p with Ast.funcs =
        List.concat_map
          (fun (fn : Ast.func) ->
            if fn.fname = kernel then [ device_fn; wrapper ] else [ fn ])
          p.Ast.funcs }
  in
  let d =
    Design.make ~name:("oneapi_" ^ device_id) ~target:Design.Fpga_oneapi
      ~device_id ~program:p ~kernel ~device_kernel:fpga_name
  in
  Design.note "generated oneAPI FPGA kernel and host management code" d

(* ------------------------------------------------------------------ *)
(* FPGA-path optimisation tasks                                        *)
(* ------------------------------------------------------------------ *)

(** "Unroll Fixed Loops": fully unroll small fixed-bound inner loops of
    the FPGA kernel so the pipeline has no inner control flow.  Uses the
    HLS convention of a bare [#pragma unroll] so the exported source
    stays readable; the resource model replicates the operators from the
    static trip count. *)
let unroll_fixed_loops (d : Design.t) : Design.t =
  let p, n =
    Transforms.Unroll.annotate_fixed_inner_loops d.program
      ~kernel:d.device_kernel
  in
  if n = 0 then d
  else
    { d with Design.program = p }
    |> Design.note (Printf.sprintf "%d fixed inner loops fully unrolled" n)

(** "Employ SP Math Fns" + "Employ SP Numeric Literals" on the FPGA
    kernel (single-precision pipelines cost a fraction of the area). *)
let employ_single_precision (d : Design.t) : Design.t =
  let p =
    Transforms.Sp_math.to_single_precision d.program ~kernel:d.device_kernel
  in
  { d with Design.program = p; single_precision = true }
  |> Design.note "FPGA kernel converted to single precision"

(** "Zero-Copy Data Transfer": rebuild the host wrapper in USM mode so the
    kernel reads host memory directly — supported on Stratix10-class
    parts only; the caller (device branch) is responsible for applying it
    to the right device. *)
let employ_zero_copy ?data (d : Design.t) : Design.t =
  let f = find_kernel_func d.program d.device_kernel in
  (* recover the original host signature from the device kernel *)
  let host_sig = { f with Ast.fname = d.kernel } in
  let wrapper =
    make_host_wrapper host_sig ~fpga_name:d.device_kernel ~usm:true ~data
  in
  let p = Artisan.Instrument.replace_func ~name:d.kernel wrapper d.program in
  { d with Design.program = p; zero_copy = true }
  |> Design.note "zero-copy host memory via USM (no buffer transfers)"

(** Set the outer-loop unroll factor chosen by the unroll-until-overmap
    DSE: annotates the kernel's outermost loop and records the knob. *)
let set_unroll_factor (d : Design.t) factor : Design.t =
  match
    Artisan.Query.(
      stmts_in ~where:(is_for &&& is_outermost_loop) d.program
        d.device_kernel)
  with
  | m :: _ ->
      let p =
        Transforms.Unroll.annotate_unroll ~target:m.Artisan.Query.stmt.sid
          ~factor d.program
      in
      { d with Design.program = p; unroll_factor = factor }
  | [] -> { d with Design.unroll_factor = factor }
