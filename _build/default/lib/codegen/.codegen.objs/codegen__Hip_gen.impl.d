lib/codegen/hip_gen.ml: Analysis Artisan Ast Builder Design Hashtbl List Minic Printf String Transforms
