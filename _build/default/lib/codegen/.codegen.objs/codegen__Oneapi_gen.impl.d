lib/codegen/oneapi_gen.ml: Analysis Artisan Ast Builder Design List Minic Printf Transforms
