lib/codegen/design.mli: Ast Format Minic
