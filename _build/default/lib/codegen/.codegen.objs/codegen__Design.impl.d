lib/codegen/design.ml: Ast Format Loc_count Minic Pretty String
