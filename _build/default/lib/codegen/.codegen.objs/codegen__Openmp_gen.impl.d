lib/codegen/openmp_gen.ml: Artisan Ast Builder Design Minic Transforms
