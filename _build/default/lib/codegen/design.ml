(** A generated design: one concrete implementation of the application for
    one target, produced by a PSA-flow path.

    A design bundles the generated source (a full MiniC program with
    target management code), the tuning knobs the device-specific DSE
    tasks set, and the flags the optimisation transforms recorded — the
    information the device performance models price. *)

open Minic

type target = Cpu_openmp | Gpu_hip | Fpga_oneapi

let target_to_string = function
  | Cpu_openmp -> "OpenMP multi-thread CPU"
  | Gpu_hip -> "HIP CPU+GPU"
  | Fpga_oneapi -> "oneAPI CPU+FPGA"

let target_framework = function
  | Cpu_openmp -> "OpenMP"
  | Gpu_hip -> "HIP"
  | Fpga_oneapi -> "oneAPI"

type t = {
  name : string;  (** e.g. ["hip_rtx2080ti"] *)
  target : target;
  device_id : string;  (** key into {!Devices.Spec} *)
  program : Ast.program;  (** the generated, human-readable source *)
  kernel : string;  (** host-side kernel entry point *)
  device_kernel : string;  (** device-side kernel function name *)
  (* tuning knobs, set by device-specific DSE *)
  unroll_factor : int;
  blocksize : int;
  num_threads : int;
  (* optimisation flags recorded by transforms *)
  single_precision : bool;
  pinned_memory : bool;
  zero_copy : bool;
  shared_mem : bool;
  gpu_intrinsics : bool;
  reductions_removed : bool;
  synthesizable : bool;
      (** false when the DSE found the design overmaps its device even at
          the minimum configuration (the paper's Rush Larsen FPGA case) *)
  notes : string list;  (** human-readable log of applied tasks *)
}

let make ~name ~target ~device_id ~program ~kernel ~device_kernel =
  {
    name;
    target;
    device_id;
    program;
    kernel;
    device_kernel;
    unroll_factor = 1;
    blocksize = 256;
    num_threads = 1;
    single_precision = false;
    pinned_memory = false;
    zero_copy = false;
    shared_mem = false;
    gpu_intrinsics = false;
    reductions_removed = false;
    synthesizable = true;
    notes = [];
  }

let note msg d = { d with notes = d.notes @ [ msg ] }

(** Added lines of code of the design relative to the reference program
    (Table I's metric). *)
let loc_delta ~reference d = Loc_count.delta ~reference ~design:d.program

let loc_delta_percent ~reference d =
  Loc_count.delta_percent ~reference ~design:d.program

(** Export the generated source text. *)
let export d = Pretty.program_to_string d.program

let pp_summary fmt d =
  Format.fprintf fmt "%s [%s on %s]%s" d.name
    (target_to_string d.target)
    d.device_id
    (if d.notes = [] then ""
     else ": " ^ String.concat "; " d.notes)
