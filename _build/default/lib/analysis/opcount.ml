(** Static operation census of a kernel body.

    Counts, per execution of the kernel function body, how many operations
    of each class are performed, weighting statements inside loops by the
    loop trip count (static when the bound is a literal, otherwise a
    dynamic mean supplied by the caller from trip-count analysis).

    The FPGA model prices pipeline resources from these counts; the GPU
    model derives instruction mix from them. *)

open Minic

type t = {
  fadd : float;  (** float add/sub *)
  fmul : float;
  fdiv : float;
  sqrt : float;
  exp_log : float;
  trig : float;
  power : float;
  int_ops : float;
  loads : float;
  stores : float;
  cheap_math : float;  (** fabs/floor/fmin/fmax *)
}

let zero =
  {
    fadd = 0.0;
    fmul = 0.0;
    fdiv = 0.0;
    sqrt = 0.0;
    exp_log = 0.0;
    trig = 0.0;
    power = 0.0;
    int_ops = 0.0;
    loads = 0.0;
    stores = 0.0;
    cheap_math = 0.0;
  }

let add a b =
  {
    fadd = a.fadd +. b.fadd;
    fmul = a.fmul +. b.fmul;
    fdiv = a.fdiv +. b.fdiv;
    sqrt = a.sqrt +. b.sqrt;
    exp_log = a.exp_log +. b.exp_log;
    trig = a.trig +. b.trig;
    power = a.power +. b.power;
    int_ops = a.int_ops +. b.int_ops;
    loads = a.loads +. b.loads;
    stores = a.stores +. b.stores;
    cheap_math = a.cheap_math +. b.cheap_math;
  }

let scale k a =
  {
    fadd = k *. a.fadd;
    fmul = k *. a.fmul;
    fdiv = k *. a.fdiv;
    sqrt = k *. a.sqrt;
    exp_log = k *. a.exp_log;
    trig = k *. a.trig;
    power = k *. a.power;
    int_ops = k *. a.int_ops;
    loads = k *. a.loads;
    stores = k *. a.stores;
    cheap_math = k *. a.cheap_math;
  }

(** Total floating-point operations (weighted as in {!Minic.Builtins}). *)
let total_flops t =
  t.fadd +. t.fmul +. (4.0 *. t.fdiv) +. (4.0 *. t.sqrt)
  +. (8.0 *. t.exp_log) +. (8.0 *. t.trig) +. (16.0 *. t.power)
  +. t.cheap_math

(** Special-function operations (use dedicated units on GPUs, large cores
    on FPGAs). *)
let total_sfu t = t.sqrt +. t.exp_log +. t.trig +. t.power +. t.fdiv

let rec count_expr vars (e : Ast.expr) : t =
  match e.enode with
  | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Bool_lit _ | Ast.Var _ -> zero
  | Ast.Unop (_, a) | Ast.Cast (_, a) -> count_expr vars a
  | Ast.Binop (op, a, b) ->
      let c = add (count_expr vars a) (count_expr vars b) in
      let fl = Intensity.expr_is_floaty vars a || Intensity.expr_is_floaty vars b in
      (match op with
      | Ast.Add | Ast.Sub ->
          if fl then { c with fadd = c.fadd +. 1.0 }
          else { c with int_ops = c.int_ops +. 1.0 }
      | Ast.Mul ->
          if fl then { c with fmul = c.fmul +. 1.0 }
          else { c with int_ops = c.int_ops +. 1.0 }
      | Ast.Div ->
          if fl then { c with fdiv = c.fdiv +. 1.0 }
          else { c with int_ops = c.int_ops +. 1.0 }
      | _ -> { c with int_ops = c.int_ops +. 1.0 })
  | Ast.Index (a, i) ->
      let c = add (count_expr vars a) (count_expr vars i) in
      { c with loads = c.loads +. 1.0; int_ops = c.int_ops +. 1.0 }
  | Ast.Call (f, args) ->
      let c =
        List.fold_left (fun acc a -> add acc (count_expr vars a)) zero args
      in
      (match Minic.Builtins.cost_class f with
      | Some Minic.Builtins.Sqrt_div -> { c with sqrt = c.sqrt +. 1.0 }
      | Some Minic.Builtins.Exp_log -> { c with exp_log = c.exp_log +. 1.0 }
      | Some Minic.Builtins.Trig -> { c with trig = c.trig +. 1.0 }
      | Some Minic.Builtins.Power -> { c with power = c.power +. 1.0 }
      | Some Minic.Builtins.Cheap -> { c with cheap_math = c.cheap_math +. 1.0 }
      | None -> c)

let count_lvalue vars = function
  | Ast.Lvar _ -> zero
  | Ast.Lindex (a, i) ->
      let c = add (count_expr vars a) (count_expr vars i) in
      { c with stores = c.stores +. 1.0; int_ops = c.int_ops +. 1.0 }

(** [trip_of sid static] resolves a loop's weight: static trip count if
    known, else the dynamic mean supplied by [dyn_trip]. *)
let rec count_stmt vars ~dyn_trip (s : Ast.stmt) : t =
  match s.snode with
  | Ast.Decl d ->
      Hashtbl.replace vars d.dname
        (match d.dsize with Some _ -> Ast.Tptr d.dtyp | None -> d.dtyp);
      (match d.dinit with Some e -> count_expr vars e | None -> zero)
  | Ast.Assign (lv, op, e) ->
      let c = add (count_lvalue vars lv) (count_expr vars e) in
      if op = Ast.Set then c
      else
        (* compound assignment re-reads and combines *)
        let fl =
          match lv with
          | Ast.Lindex (a, _) -> Intensity.expr_is_floaty vars a
          | Ast.Lvar v -> (
              match Hashtbl.find_opt vars v with
              | Some (Ast.Tfloat | Ast.Tdouble) -> true
              | _ -> false)
        in
        let c =
          match lv with
          | Ast.Lindex _ -> { c with loads = c.loads +. 1.0 }
          | Ast.Lvar _ -> c
        in
        if fl then { c with fadd = c.fadd +. 1.0 }
        else { c with int_ops = c.int_ops +. 1.0 }
  | Ast.Expr_stmt e -> count_expr vars e
  | Ast.Return (Some e) -> count_expr vars e
  | Ast.Return None -> zero
  | Ast.If (c, b1, b2) ->
      let cc = count_expr vars c in
      let c1 = count_block vars ~dyn_trip b1 in
      let c2 =
        match b2 with Some b -> count_block vars ~dyn_trip b | None -> zero
      in
      add cc (scale 0.5 (add c1 c2))
  | Ast.While (c, b) ->
      add (count_expr vars c) (count_block vars ~dyn_trip b)
  | Ast.For (h, b) ->
      Hashtbl.replace vars h.index Ast.Tint;
      let trips =
        match Artisan.Query.static_trip_count s with
        | Some n -> float_of_int n
        | None -> dyn_trip s.sid
      in
      scale trips (count_block vars ~dyn_trip b)
  | Ast.Block b -> count_block vars ~dyn_trip b

and count_block vars ~dyn_trip b =
  List.fold_left (fun acc s -> add acc (count_stmt vars ~dyn_trip s)) zero b

(** Operation census of one execution of [fname]'s body.

    @param dyn_trip resolves unknown loop bounds to a dynamic mean trip
      count (default: weight 1) *)
let of_function ?(dyn_trip = fun _ -> 1.0) (p : Ast.program) fname : t =
  let f = Ast.find_func p fname in
  let vars = Hashtbl.create 16 in
  List.iter
    (fun (pr : Ast.param) -> Hashtbl.replace vars pr.pname_ pr.ptyp)
    f.fparams;
  count_block vars ~dyn_trip f.fbody

(** Census of one iteration of the outermost loop of [fname]: the body of
    the kernel's outer loop, with inner loops weighted. *)
let per_outer_iteration ?(dyn_trip = fun _ -> 1.0) (p : Ast.program) fname : t =
  match
    Artisan.Query.(
      stmts_in ~where:(is_for &&& is_outermost_loop) p fname)
  with
  | m :: _ -> (
      match m.Artisan.Query.stmt.snode with
      | Ast.For (h, body) ->
          let f = Ast.find_func p fname in
          let vars = Hashtbl.create 16 in
          List.iter
            (fun (pr : Ast.param) -> Hashtbl.replace vars pr.pname_ pr.ptyp)
            f.fparams;
          Hashtbl.replace vars h.index Ast.Tint;
          count_block vars ~dyn_trip body
      | _ -> of_function ~dyn_trip p fname)
  | [] -> of_function ~dyn_trip p fname
