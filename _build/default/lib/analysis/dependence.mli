(** Static loop dependence analysis.

    Classifies each canonical [for] loop as parallel or not: private
    (inside-declared) writes are free; compound assignments to shared
    scalars or to array elements whose index does not advance with the
    loop are {e reductions} (removable dependences — the "Remove Array
    += Dependency" targets); everything else is a carried dependence.
    The affinity test is syntactic and exact for the benchmark
    applications' access patterns (see DESIGN.md). *)

open Minic

type dep_kind =
  | Scalar_reduction of Ast.assign_op
  | Array_reduction of Ast.assign_op
  | Carried of string  (** human-readable reason *)

type dep = {
  var : string;  (** written variable or array *)
  kind : dep_kind;
  sid : int;  (** statement performing the write *)
}

type loop_info = {
  loop_sid : int;
  index : string;
  parallel : bool;  (** no dependences at all *)
  parallel_with_reductions : bool;  (** parallel once reductions handled *)
  reductions : dep list;
  carried : dep list;
}

val dep_kind_to_string : dep_kind -> string

(** [true] iff the expression reads the variable. *)
val mentions_var : string -> Ast.expr -> bool

(** [affine_coeff i e] is [Some c] when [e] = [c*i + rest] with [rest]
    independent of [i] and [c] a compile-time integer; [None] otherwise
    (including indirect indexing through array reads). *)
val affine_coeff : string -> Ast.expr -> int option

(** Analyse one canonical [for] loop statement.
    @raise Invalid_argument on non-loop statements *)
val analyze_loop : Ast.stmt -> loop_info

(** Analyse every [for] loop of the named function. *)
val analyze_function : Ast.program -> string -> loop_info list

(** Info for the function's outermost loop, when it exists. *)
val outermost : Ast.program -> string -> loop_info option

(** Inner (non-outermost) loops of the function. *)
val inner_loops : Ast.program -> string -> loop_info list
