lib/analysis/trip_count.mli: Ast Hashtbl Minic Minic_interp
