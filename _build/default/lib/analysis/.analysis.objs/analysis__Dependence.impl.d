lib/analysis/dependence.ml: Artisan Ast Hashtbl List Minic Option Pretty
