lib/analysis/extrapolate.mli: Features
