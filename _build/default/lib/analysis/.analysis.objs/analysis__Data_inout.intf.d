lib/analysis/data_inout.mli: Ast Format Minic
