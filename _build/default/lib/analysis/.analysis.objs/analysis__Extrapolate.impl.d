lib/analysis/extrapolate.ml: Features Float Intensity List Opcount
