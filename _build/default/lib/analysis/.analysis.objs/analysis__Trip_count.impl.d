lib/analysis/trip_count.ml: Ast Hashtbl Minic Minic_interp
