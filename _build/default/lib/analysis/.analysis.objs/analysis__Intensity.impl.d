lib/analysis/intensity.ml: Array Artisan Ast Float Hashtbl List Minic Minic_interp
