lib/analysis/alias.ml: Array Ast List Minic Minic_interp
