lib/analysis/data_inout.ml: Array Ast Format List Minic Minic_interp
