lib/analysis/hotspot.mli: Artisan Ast Format Minic
