lib/analysis/hotspot.ml: Artisan Ast Dependence Format List Minic Minic_interp Option
