lib/analysis/dependence.mli: Ast Minic
