lib/analysis/alias.mli: Ast Minic Minic_interp
