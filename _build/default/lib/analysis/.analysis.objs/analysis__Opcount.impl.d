lib/analysis/opcount.ml: Artisan Ast Hashtbl Intensity List Minic
