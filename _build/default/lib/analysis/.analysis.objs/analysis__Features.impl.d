lib/analysis/features.ml: Alias Array Artisan Ast Dependence Float Hashtbl Intensity List Minic Minic_interp Opcount Option Trip_count
