(** Workload extrapolation of kernel features.

    The interpreter profiles at tractable sizes; the paper's evaluation
    runs at hardware scale.  Each numeric feature is fitted to a power
    law from two profiled sizes and evaluated at the target size;
    structural features are size-invariant.  Validated against direct
    profiling in the test suite. *)

(** Exponent of the power law through [(n1, v1)] and [(n2, v2)]
    (0 for non-positive values or equal sizes). *)
val fit_exponent : n1:int -> n2:int -> float -> float -> float

(** Evaluate the fitted power law at [n]. *)
val scale : n1:int -> n2:int -> n:int -> float -> float -> float

val scale_int : n1:int -> n2:int -> n:int -> int -> int -> int

(** Extrapolate a feature vector to problem size [n] from two profiles of
    the same benchmark (structurally identical vectors). *)
val features :
  n1:int -> Features.t -> n2:int -> Features.t -> n:int -> Features.t
