(** Hotspot loop detection — dynamic design-flow task.

    Instruments candidate loops with timers, executes the program, and
    identifies the most time-consuming loop as the acceleration
    candidate, descending through sequential driver loops (convergence
    iterations, ODE timestepping) to the parallel work loop inside. *)

open Minic

type t = {
  loop_sid : int;  (** node id of the hotspot loop in the original AST *)
  func_name : string;
  cycles : float;  (** virtual cycles spent in the loop (inclusive) *)
  total_cycles : float;
  share : float;  (** fraction of program time spent in the loop *)
  descended_from : int list;  (** enclosing loops skipped as sequential *)
}

val pp : Format.formatter -> t -> unit

(** Fraction of a parent loop's time a nested loop must capture for the
    selection to descend into it. *)
val descend_threshold : float

(** All candidate loops of [func] (default ["main"]), any depth. *)
val candidates : ?func:string -> Ast.program -> Artisan.Query.match_ctx list

(** Instrument each candidate loop with a timer keyed by its node id. *)
val instrument : ?func:string -> Ast.program -> Ast.program

(** Detect the hotspot loop by instrumented execution; [None] when the
    function contains no loop. *)
val detect : ?func:string -> Ast.program -> t option
