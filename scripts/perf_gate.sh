#!/bin/sh
# Perf-regression gate: run the quick perf bench and the quick daemon
# replay (same code paths as the full runs, reduced repetitions), then
# gate the fresh numbers against the *rolling median* of recent runs
# recorded in BENCH_history.jsonl — one noisy datapoint can neither
# fail the gate by itself nor poison the baseline for later runs.
#
# Fails when:
#   - any outputs_identical check in the fresh BENCH_psaflow.json is
#     false (an engine, optimizer pass, domain-sharded run or a daemon
#     result diverged from the reference bytes), or
#   - a gated metric regressed against the rolling median of the last
#     K comparable (quick-scale, other-commit) history entries:
#       interp.threaded.mcycles_per_s   >= 70% of median
#       interp.bytecode.mcycles_per_s   >= 70% of median
#       dse.simulate_call_reduction     >= 90% of median
#       service.throughput_rps          >= 50% of median
#       service.p99_ms                  <= 4x median
#     (K = PSAFLOW_HISTORY_K, default 5, min 3.)
#   - the guided-DSE simulate-call saving falls below its hard 10x
#     floor (call counts are deterministic, so this is not noise).
#
# Fewer than 3 comparable history entries skips that metric's check
# with a notice — a young history cannot block a merge.  After gating,
# the fresh numbers are appended to the history as one commit-keyed
# datapoint, so every CI run grows the baseline.
#
# Run from anywhere; operates on the repo this script lives in.
set -eu

cd "$(dirname "$0")/.."

dune exec bench/main.exe -- perf --quick

# Quick daemon replay: exits non-zero by itself when any sampled daemon
# result is not byte-identical to direct execution or when unexpected
# errors appear, so a mismatch hard-fails the gate before any
# throughput comparison.
dune exec bench/main.exe -- svc-load --quick

# Variant-traffic replay: same sources resubmitted under different
# (mode, strategy, x-threshold, budget).  Exits non-zero by itself if
# any sampled variant result differs from memo-off direct execution.
dune exec bench/main.exe -- svc-load --quick --mix variants

if grep -q '"outputs_identical": false' BENCH_psaflow.json; then
  echo "FAIL: perf bench reports non-identical outputs"; exit 1
fi
grep -q '"outputs_identical": true' BENCH_psaflow.json \
  || { echo "FAIL: perf bench reports no output-identity checks"; exit 1; }

# Guided DSE floor: the bench already asserted (via the dse section's
# outputs_identical, covered above) that guided and exhaustive sweeps
# picked identical winners on every benchmark; the warm guided pass must
# also make at least 10x fewer simulate calls.  Call counts are
# deterministic, so this is a hard floor, not a noisy measurement.
DSE_REDUCTION=$(sed -n 's/.*"simulate_call_reduction": *\([0-9.]*\).*/\1/p' BENCH_psaflow.json | head -n1)
[ -n "$DSE_REDUCTION" ] \
  || { echo "FAIL: BENCH_psaflow.json reports no dse simulate_call_reduction"; exit 1; }
awk "BEGIN { exit !($DSE_REDUCTION >= 10) }" \
  || { echo "FAIL: guided DSE saves only ${DSE_REDUCTION}x simulate calls (floor 10x)"; exit 1; }
echo "guided DSE: ${DSE_REDUCTION}x fewer simulate calls (floor 10x)"

# Stage-memo floors.  A cold variant (same source, different
# parameters) must cost at most 40% of a cold full flow — that is the
# point of cross-request memoization — and the phase-B stage-memo hit
# rate must stay above 50% (the schedule is deterministic, so a lower
# rate means stage keys stopped matching, not noise).
MEMO_RATIO=$(sed -n 's/.*"latency_ratio": *\([0-9.e-]*\).*/\1/p' BENCH_psaflow.json | head -n1)
[ -n "$MEMO_RATIO" ] \
  || { echo "FAIL: BENCH_psaflow.json reports no variants latency_ratio"; exit 1; }
awk "BEGIN { exit !($MEMO_RATIO <= 0.40) }" \
  || { echo "FAIL: cold variant costs ${MEMO_RATIO}x of a cold full flow (ceiling 0.40)"; exit 1; }
MEMO_RATE=$(sed -n 's/.*"memo_hit_rate": *\([0-9.e-]*\).*/\1/p' BENCH_psaflow.json | head -n1)
[ -n "$MEMO_RATE" ] \
  || { echo "FAIL: BENCH_psaflow.json reports no variants memo_hit_rate"; exit 1; }
awk "BEGIN { exit !($MEMO_RATE >= 0.5) }" \
  || { echo "FAIL: variant replay memo hit rate ${MEMO_RATE} (floor 0.5)"; exit 1; }
echo "stage memo: cold variant at ${MEMO_RATIO}x of cold full flow, ${MEMO_RATE} hit rate"

# Rolling-median regression gate (exit 1 on any GATE FAIL line).
dune exec bench/main.exe -- gate-history --quick

# Record this run for future gates.
dune exec bench/main.exe -- history-append --quick

echo "perf gate: outputs identical, no regression vs rolling median"
