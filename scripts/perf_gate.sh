#!/bin/sh
# Perf-regression gate: run the quick perf bench (same code paths as the
# full run, reduced repetitions) and compare the threaded-interpreter
# throughput against the committed BENCH_psaflow.json baseline.
#
# Fails when:
#   - any outputs_identical check in the fresh BENCH_psaflow.json is
#     false (an engine or optimizer pass diverged from the reference
#     walker), or
#   - interp.threaded.mcycles_per_s regressed more than 30% against the
#     committed baseline (skipped with a notice when HEAD has no
#     baseline, e.g. on the first commit of the format).
#
# Run from anywhere; operates on the repo this script lives in.
set -eu

cd "$(dirname "$0")/.."

# The committed baseline, captured before the bench overwrites the
# working-tree file.
BASELINE=$(git show HEAD:BENCH_psaflow.json 2>/dev/null || true)

dune exec bench/main.exe -- perf --quick

# interp.threaded.mcycles_per_s: the first "mcycles_per_s" after the
# "threaded" key (the pretty-printed field order is stable).
threaded_mcycles() {
  awk '/"threaded"/ { t = 1 }
       t && /"mcycles_per_s"/ {
         match($0, /[0-9][0-9.eE+-]*/)
         print substr($0, RSTART, RLENGTH)
         exit
       }'
}

if grep -q '"outputs_identical": false' BENCH_psaflow.json; then
  echo "FAIL: perf bench reports non-identical outputs"; exit 1
fi
grep -q '"outputs_identical": true' BENCH_psaflow.json \
  || { echo "FAIL: perf bench reports no output-identity checks"; exit 1; }

NEW=$(threaded_mcycles <BENCH_psaflow.json)
[ -n "$NEW" ] \
  || { echo "FAIL: BENCH_psaflow.json has no interp.threaded.mcycles_per_s"; exit 1; }

BASE=$(printf '%s\n' "$BASELINE" | threaded_mcycles)
if [ -z "$BASE" ]; then
  echo "perf gate: no committed baseline (new BENCH format?); skipping \
regression check (measured $NEW Mcycles/s)"
  exit 0
fi

# regression > 30%  <=>  NEW < 0.7 * BASE
if awk -v new="$NEW" -v base="$BASE" 'BEGIN { exit !(new < 0.7 * base) }'; then
  echo "FAIL: interp.threaded.mcycles_per_s regressed >30%: $NEW vs baseline $BASE"
  exit 1
fi
echo "perf gate: $NEW Mcycles/s vs baseline $BASE (>= 70% required), outputs identical"
