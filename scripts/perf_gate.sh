#!/bin/sh
# Perf-regression gate: run the quick perf bench (same code paths as the
# full run, reduced repetitions) and compare interpreter throughput
# against the committed BENCH_psaflow.json baseline.
#
# Fails when:
#   - any outputs_identical check in the fresh BENCH_psaflow.json is
#     false (an engine, optimizer pass or domain-sharded run diverged
#     from the reference walker), or
#   - a gated throughput field regressed more than 30% against the
#     committed baseline.
#
# Gated fields: interp.threaded.mcycles_per_s and
# interp.bytecode.mcycles_per_s, plus the daemon's
# service.throughput_rps and service.p99_ms from the quick svc-load
# replay.  A field absent from the committed baseline (older BENCH
# format) is skipped with a notice rather than failed, so the gate
# stays usable across format growth; a field absent from the fresh
# file is a hard failure.
#
# Run from anywhere; operates on the repo this script lives in.
set -eu

cd "$(dirname "$0")/.."

# The committed baseline, captured before the bench overwrites the
# working-tree file.
BASELINE=$(git show HEAD:BENCH_psaflow.json 2>/dev/null || true)

dune exec bench/main.exe -- perf --quick

# Quick daemon replay: exits non-zero by itself when any sampled daemon
# result is not byte-identical to direct execution or when unexpected
# errors appear, so a mismatch hard-fails the gate before any
# throughput comparison.
dune exec bench/main.exe -- svc-load --quick

# interp.<engine>.mcycles_per_s: the first "mcycles_per_s" after the
# engine key (the pretty-printed field order is stable).
engine_mcycles() {
  awk -v key="\"$1\"" 'index($0, key) { t = 1 }
       t && /"mcycles_per_s"/ {
         match($0, /[0-9][0-9.eE+-]*/)
         print substr($0, RSTART, RLENGTH)
         exit
       }'
}

if grep -q '"outputs_identical": false' BENCH_psaflow.json; then
  echo "FAIL: perf bench reports non-identical outputs"; exit 1
fi
grep -q '"outputs_identical": true' BENCH_psaflow.json \
  || { echo "FAIL: perf bench reports no output-identity checks"; exit 1; }

FAILED=0
for engine in threaded bytecode; do
  NEW=$(engine_mcycles "$engine" <BENCH_psaflow.json)
  if [ -z "$NEW" ]; then
    echo "FAIL: BENCH_psaflow.json has no interp.$engine.mcycles_per_s"
    FAILED=1
    continue
  fi
  BASE=$(printf '%s\n' "$BASELINE" | engine_mcycles "$engine")
  if [ -z "$BASE" ]; then
    echo "perf gate: interp.$engine not in committed baseline; skipping \
regression check (measured $NEW Mcycles/s)"
    continue
  fi
  # regression > 30%  <=>  NEW < 0.7 * BASE
  if awk -v new="$NEW" -v base="$BASE" 'BEGIN { exit !(new < 0.7 * base) }'
  then
    echo "FAIL: interp.$engine.mcycles_per_s regressed >30%: $NEW vs \
baseline $BASE"
    FAILED=1
  else
    echo "perf gate: interp.$engine $NEW Mcycles/s vs baseline $BASE \
(>= 70% required)"
  fi
done
# service.<field>: the first <field> after the "service" key.  The
# value is taken after the colon so numeric field names (p99_ms) don't
# match themselves.
service_field() {
  awk -v field="\"$1\"" 'index($0, "\"service\"") { t = 1 }
       t && index($0, field) {
         sub(/^[^:]*: */, "")
         match($0, /[0-9][0-9.eE+-]*/)
         print substr($0, RSTART, RLENGTH)
         exit
       }'
}

NEW_RPS=$(service_field throughput_rps <BENCH_psaflow.json)
NEW_P99=$(service_field p99_ms <BENCH_psaflow.json)
if [ -z "$NEW_RPS" ] || [ -z "$NEW_P99" ]; then
  echo "FAIL: BENCH_psaflow.json has no service.throughput_rps / service.p99_ms"
  exit 1
fi
BASE_RPS=$(printf '%s\n' "$BASELINE" | service_field throughput_rps)
BASE_P99=$(printf '%s\n' "$BASELINE" | service_field p99_ms)
if [ -z "$BASE_RPS" ] || [ -z "$BASE_P99" ]; then
  echo "perf gate: no service section in committed baseline; skipping \
service regression check (measured $NEW_RPS req/s, p99 ${NEW_P99} ms)"
else
  # The committed baseline is the full replay (8 connections, ~21k
  # requests); the gate replays the quick mix (4 connections, ~2k), so
  # the thresholds are deliberately loose: >= 50% of baseline
  # throughput, p99 within 4x.
  if awk -v new="$NEW_RPS" -v base="$BASE_RPS" \
       'BEGIN { exit !(new < 0.5 * base) }'
  then
    echo "FAIL: service.throughput_rps fell below 50% of baseline: \
$NEW_RPS vs $BASE_RPS"
    FAILED=1
  elif awk -v new="$NEW_P99" -v base="$BASE_P99" \
       'BEGIN { exit !(new > 4.0 * base) }'
  then
    echo "FAIL: service.p99_ms exceeds 4x baseline: $NEW_P99 vs $BASE_P99"
    FAILED=1
  else
    echo "perf gate: service $NEW_RPS req/s (baseline $BASE_RPS, >= 50% \
required), p99 $NEW_P99 ms (baseline $BASE_P99, <= 4x allowed)"
  fi
fi

[ "$FAILED" -eq 0 ] || exit 1
echo "perf gate: outputs identical, no >30% regression"
