#!/bin/sh
# Repo health check: full build, full test suite, perf smoke.
# Run from anywhere; operates on the repo this script lives in.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build @all

echo "== dune runtest =="
dune runtest

echo "== perf smoke (bench/main.exe perf --quick) =="
dune exec bench/main.exe -- perf --quick

echo "OK"
