#!/bin/sh
# Repo health check: full build, full test suite, perf smoke, service smoke.
# Run from anywhere; operates on the repo this script lives in.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build @all

echo "== dune runtest =="
dune runtest

echo "== perf gate (perf --quick + svc-load --quick + regression check) =="
# Runs the quick perf bench and the quick svc-load daemon replay,
# checks every outputs_identical flag (including the service replay's
# byte-identity against direct execution) and fails on a regression
# against the rolling median of recent runs in BENCH_history.jsonl
# (then appends this run's numbers to the history).
sh scripts/perf_gate.sh

# The fused single-pass profile bounds the cold flow at one interpreter
# execution per (benchmark, workload point, focus) request: 3 per
# benchmark, 15 across the five-benchmark evaluation.  A higher count
# means an analysis went back to running its own interpreter pass.
INTERP_RUNS=$(sed -n 's/.*"interp_runs": *\([0-9]*\).*/\1/p' BENCH_psaflow.json | head -n1)
[ -n "$INTERP_RUNS" ] \
  || { echo "FAIL: BENCH_psaflow.json reports no interp_runs"; exit 1; }
[ "$INTERP_RUNS" -le 15 ] \
  || { echo "FAIL: cold flow took $INTERP_RUNS interpreter runs (budget 15)"; exit 1; }
echo "interp_runs=$INTERP_RUNS (budget 15)"

echo "== report smoke (psaflow report --json --strict) =="
# The freshly written BENCH_psaflow.json must satisfy the strict report:
# no missing/stale perf fields degraded to null.
_build/default/bin/psaflow.exe report --json --strict >/dev/null \
  || { echo "FAIL: report --json --strict rejected fresh perf data"; exit 1; }

echo "== trend smoke (psaflow report --trend) =="
# perf_gate.sh above appended at least one datapoint, so the trend
# report must render a non-empty table (and valid JSON) from
# BENCH_history.jsonl.
_build/default/bin/psaflow.exe report --trend | grep -q 'service.throughput_rps' \
  || { echo "FAIL: report --trend shows no service throughput series"; exit 1; }
_build/default/bin/psaflow.exe report --trend --json | grep -q '"metric"' \
  || { echo "FAIL: report --trend --json emitted no metric rows"; exit 1; }

PSAFLOW=_build/default/bin/psaflow.exe
SOCK=$(mktemp -u "${TMPDIR:-/tmp}/psaflow-check-XXXXXX.sock")
TMP=$(mktemp -d "${TMPDIR:-/tmp}/psaflow-check-XXXXXX")
SERVE_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
  rm -rf "$TMP" "$SOCK"
}
trap cleanup EXIT INT TERM

echo "== trace & explain smoke (all five benchmarks) =="
for b in rush_larsen nbody bezier adpredictor kmeans; do
  # --trace re-parses the export with the service Json parser before
  # writing and exits non-zero on invalid JSON, so success here means
  # the document is well-formed
  "$PSAFLOW" run "$b" --trace "$TMP/$b.trace.json" >/dev/null \
    || { echo "FAIL: $b: traced run failed"; exit 1; }
  grep -q '"traceEvents"' "$TMP/$b.trace.json" \
    || { echo "FAIL: $b: not a Chrome trace document"; exit 1; }
  for cat in branch analysis dse task; do
    grep -q "\"cat\":\"$cat\"" "$TMP/$b.trace.json" \
      || { echo "FAIL: $b: no $cat spans in trace"; exit 1; }
  done
  "$PSAFLOW" explain "$b" >"$TMP/$b.explain.txt" \
    || { echo "FAIL: $b: explain failed"; exit 1; }
  grep -q 'branch A \[' "$TMP/$b.explain.txt" \
    || { echo "FAIL: $b: explain reports no branch A decision"; exit 1; }
  grep -q 'outcome:' "$TMP/$b.explain.txt" \
    || { echo "FAIL: $b: explain reports no outcome"; exit 1; }
  # the surrogate records one sweep decision per design (branch D.*);
  # the flow's winner must be backed by such a decision — i.e. the
  # design the outcome names went through a provenance-recorded sweep
  grep -q 'branch D\.' "$TMP/$b.explain.txt" \
    || { echo "FAIL: $b: explain reports no surrogate sweep decision"; exit 1; }
  WINNER=$(sed -n 's/^outcome: \([^ ]*\).*/\1/p' "$TMP/$b.explain.txt" | head -n1)
  [ -n "$WINNER" ] \
    || { echo "FAIL: $b: outcome names no winning design"; exit 1; }
  grep -q "branch D\\.$WINNER \\[surrogate\\]" "$TMP/$b.explain.txt" \
    || { echo "FAIL: $b: winner $WINNER has no surrogate sweep decision"; exit 1; }
done

echo "== service smoke (psaflow serve/submit/svc-metrics) =="

"$PSAFLOW" serve --socket "$SOCK" &
SERVE_PID=$!
i=0
while [ ! -S "$SOCK" ] && [ "$i" -lt 100 ]; do
  sleep 0.1
  i=$((i + 1))
done
[ -S "$SOCK" ] || { echo "FAIL: daemon did not come up"; exit 1; }

# a service result must be byte-identical to a direct CLI run
"$PSAFLOW" run adpredictor | tail -n +2 >"$TMP/direct.txt"
"$PSAFLOW" submit adpredictor --wait --socket "$SOCK" \
  >"$TMP/svc.txt" 2>"$TMP/disp1.txt"
diff "$TMP/direct.txt" "$TMP/svc.txt" \
  || { echo "FAIL: service report diverges from direct run"; exit 1; }
grep -q fresh "$TMP/disp1.txt" \
  || { echo "FAIL: first submission not fresh"; exit 1; }

# duplicate submission: served from the content-addressed store
"$PSAFLOW" submit adpredictor --wait --socket "$SOCK" \
  >"$TMP/svc2.txt" 2>"$TMP/disp2.txt"
grep -q cached "$TMP/disp2.txt" \
  || { echo "FAIL: duplicate submission not served from store"; exit 1; }
diff "$TMP/direct.txt" "$TMP/svc2.txt" \
  || { echo "FAIL: cached report diverges"; exit 1; }

# variant resubmission: same benchmark, different strategy — a store
# miss (fresh job), but the stage memo must serve every
# interpreter-level artifact, so the engine's interp_runs counter may
# not move
"$PSAFLOW" svc-metrics --socket "$SOCK" >"$TMP/metrics0.json"
RUNS1=$(sed -n 's/.*"interp_runs": *\([0-9]*\).*/\1/p' "$TMP/metrics0.json" | head -n1)
[ -n "$RUNS1" ] \
  || { echo "FAIL: svc-metrics reports no interp_runs"; exit 1; }
"$PSAFLOW" submit adpredictor --strategy model_perf --wait --socket "$SOCK" \
  >/dev/null 2>"$TMP/disp3.txt"
grep -q fresh "$TMP/disp3.txt" \
  || { echo "FAIL: variant submission (new strategy) should be a store miss"; exit 1; }
"$PSAFLOW" svc-metrics --socket "$SOCK" >"$TMP/metrics.json"
RUNS2=$(sed -n 's/.*"interp_runs": *\([0-9]*\).*/\1/p' "$TMP/metrics.json" | head -n1)
[ "$RUNS1" = "$RUNS2" ] \
  || { echo "FAIL: variant resubmission re-ran the interpreter ($RUNS1 -> $RUNS2)"; exit 1; }
echo "variant resubmission: fresh job, interp_runs unchanged at $RUNS2"
grep -q jobs_completed "$TMP/metrics.json" \
  || { echo "FAIL: svc-metrics missing jobs_completed"; exit 1; }
grep -q '"engine"' "$TMP/metrics.json" \
  || { echo "FAIL: svc-metrics missing engine registry"; exit 1; }
grep -q profile_cache "$TMP/metrics.json" \
  || { echo "FAIL: engine registry missing profile-cache counters"; exit 1; }
for m in memo_ast_hits memo_extract_hits memo_features_hits; do
  grep -q "$m" "$TMP/metrics.json" \
    || { echo "FAIL: engine registry missing stage-memo counter $m"; exit 1; }
done
grep -q dse_simulate_calls "$TMP/metrics.json" \
  || { echo "FAIL: engine registry missing dse_simulate_calls"; exit 1; }
grep -q surrogate_predictions "$TMP/metrics.json" \
  || { echo "FAIL: engine registry missing surrogate counters"; exit 1; }

# the executed submission's trace must be retrievable with its request
# id intact: the first fresh job of a daemon is always sampled
"$PSAFLOW" svc-trace --socket "$SOCK" >"$TMP/traces.txt"
grep -q 'c-' "$TMP/traces.txt" \
  || { echo "FAIL: svc-trace shows no client-minted request id"; exit 1; }
"$PSAFLOW" svc-trace --json --socket "$SOCK" >"$TMP/traces.json"
grep -q '"request_id"' "$TMP/traces.json" \
  || { echo "FAIL: svc-trace --json missing request_id"; exit 1; }
grep -q '"traceEvents"' "$TMP/traces.json" \
  || { echo "FAIL: svc-trace --json missing embedded trace documents"; exit 1; }

# error paths must exit non-zero with a one-line diagnostic
if "$PSAFLOW" run no-such-benchmark 2>/dev/null; then
  echo "FAIL: unknown benchmark must exit non-zero"; exit 1
fi
printf 'int main( {\n' >"$TMP/bad.c"
if "$PSAFLOW" submit --file "$TMP/bad.c" --socket "$SOCK" 2>/dev/null; then
  echo "FAIL: MiniC parse error must exit non-zero"; exit 1
fi

"$PSAFLOW" svc-shutdown --socket "$SOCK"
wait "$SERVE_PID"
SERVE_PID=""

echo "OK"
