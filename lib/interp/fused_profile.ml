(** Fused single-pass profiling.

    One interpreter execution per distinct [(program, focus)] request —
    the workload size is baked into the program source — collects
    everything the five dynamic analyses consume:

    - per-loop cycle totals ({!Profile.loop_stat}, projected by hotspot
      detection — no timer instrumentation needed, because the
      interpreter's loop accounting and the timer wrappers measure the
      same quantity bit-identically);
    - per-loop invocation/iteration observations (trip-count analysis
      and the feature vector);
    - per-argument touched ranges and first-access transfer bytes
      ({!Profile.kernel_obs}, projected by alias, data in/out and
      feature analysis — only collected when [focus] is set).

    The analyses in [lib/analysis] are pure projections of this record:
    requesting several of them for the same [(program, focus)] costs one
    interpreter run, and the underlying {!Profile_cache} (keyed on the
    same request) dedupes the run across analysis call sites, flow
    branches, DSE candidates and service jobs process-wide.

    The run behind a fused profile executes on the production engine —
    slot IR optimized by {!Opt} (constant folding through kernel
    specialization), then threaded ({!Eval.compile}).  Every optimizer
    pass preserves bit-identity with the reference walker
    ({!Eval.run_ir}), so the projections are unaffected by
    [PSAFLOW_NO_OPT] and by which passes ran — asserted per benchmark
    and per pass by the test suite. *)

type t = {
  source : Minic.Ast.program;  (** the program that was executed *)
  focus : string option;  (** kernel under offload observation, if any *)
  run : Eval.run;
}

(** Fused profile of [p]: one (cached) interpreter execution collecting
    every dynamic observation the analyses project.  Pass [~focus] to
    additionally observe a kernel's offload behaviour. *)
let get ?focus (p : Minic.Ast.program) : t =
  { source = p; focus; run = Profile_cache.run ?focus p }

(** Wrap an existing run as a fused profile (tests, replay). *)
let of_run ?focus (source : Minic.Ast.program) (run : Eval.run) : t =
  { source; focus; run }

let profile t = t.run.profile
let output t = t.run.output

(** Whole-program virtual cycles. *)
let total_cycles t = t.run.profile.Profile.cycles

(** Inclusive virtual cycles spent in loop [sid]; [0.] if it never ran. *)
let loop_cycles t sid =
  match Profile.loop_stat_opt t.run.profile sid with
  | Some s -> s.Profile.cycles
  | None -> 0.0

(** Offload observations of the focus kernel, when one was set and was
    actually called. *)
let kernel_obs t = t.run.profile.Profile.kernel
