(** The MiniC interpreter.

    Executes a program starting at [main], charging virtual cycles per
    {!Profile.Cost} and recording the observations that the dynamic
    design-flow tasks consume.  Passing [~focus:"kernel_fn"] additionally
    profiles every call to that function as an accelerator-offload
    candidate: per-argument transfer requirements and touched ranges.

    Programs are first lowered to the slot IR of {!Resolve} (array-indexed
    variable slots, pre-resolved callees, per-group batched static cycle
    charges), and the IR is then compiled once more into {e threaded
    code}: a tree of pre-bound OCaml closures, one per statement and
    expression node, so the hot loop performs no per-statement constructor
    dispatch at all.  Two code variants are compiled lazily per program —
    a non-focus fast path whose memory accessors carry no kernel-tracking
    test, and a focus-tracking variant — so profiling runs without a
    focus pay nothing for the offload instrumentation.

    The original tree walker over the slot IR is kept as {!run_ir}: a
    reference implementation the test suite (and the perf harness's
    before/after comparison) checks the threaded code against,
    bit-identically — same charge order, same counter updates, same fuel
    accounting, same error points.

    Determinism: [rand01]/[rand_int] use a fixed-seed LCG, so repeated
    runs (and runs of instrumented variants) see identical inputs — the
    property the paper relies on when it compares designs generated from
    the same reference source. *)

open Value

exception Return_exc of Value.t

(* Per-region tracking record for the active kernel-focus call.  The
   hot per-access path only bumps the lo/hi bounds and flips the
   per-element first-access state; the (allocating) range-list
   maintenance is replayed once at focus exit. *)
type focus_track = {
  ft_idxs : int list;
      (* kernel argument indices this region is reachable from *)
  ft_state : Bytes.t;
      (* per-element first-access state: 0 untouched, 1 read, 2 written *)
  mutable ft_lo : int;  (* min touched offset; [max_int] when untouched *)
  mutable ft_hi : int;  (* max touched offset; [-1] when untouched *)
}

type state = {
  cprog : Resolve.t;
  mem : Memory.t;
  prof : Profile.t;
  cyc : float array;
      (** the running virtual-cycle total, as a 1-element flat float
          array: [Profile.t] is a mixed record, so bumping
          [prof.cycles] directly would box a fresh float (plus a write
          barrier) on every charge — the single hottest operation of a
          run.  Synced back into [prof.cycles] at timer calls and at
          run end ({!sync_cycles}). *)
  garray : Value.t array;  (** global frame *)
  out : Buffer.t;
  mutable rng : int;
  focus_idx : int;  (** index of the focus function, [-1] for none *)
  mutable focus_depth : int;
  mutable focus_track : focus_track option array;
      (** per-region tracking for the active focus call, indexed by
          region id (dense: region ids are allocation order).  [None]
          for regions not reachable from a kernel pointer argument —
          including any allocated after the call began. *)
  mutable focus_order : int list;
      (** region ids in reverse first-touch order within the active
          focus call; {!exit_focus} replays the [regions_touched] range
          updates in this order so the per-argument region lists come
          out exactly as if they had been maintained per access. *)
  mutable fuel : int;  (** remaining statement budget, guards against hangs *)
  mutable loop_cache : Profile.loop_stat option array;
      (** per-run memo of {!Profile.loop_stat} records, indexed by the
          dense loop number threaded code assigns at compile time — the
          profile's Hashtbl is only consulted on a loop's first
          invocation.  Sized by {!run_compiled}; unused (empty) on the
          reference walker path. *)
  mutable bulk_cycles : float;
      (** virtual cycles charged in bulk by specialized loop kernels
          this run; surfaced as the [interp_bulk_cycles] metric. *)
}

let[@inline] cached_loop_stat st lidx sid =
  match Array.unsafe_get st.loop_cache lidx with
  | Some s -> s
  | None ->
      let s = Profile.loop_stat st.prof sid in
      Array.unsafe_set st.loop_cache lidx (Some s);
      s

let[@inline] charge st c =
  Array.unsafe_set st.cyc 0 (Array.unsafe_get st.cyc 0 +. c)

let[@inline] cycles st = Array.unsafe_get st.cyc 0

(* [Profile.timer_start]/[timer_stop] read [prof.cycles]; bring it up to
   date before handing the profile over. *)
let[@inline] sync_cycles st = st.prof.cycles <- cycles st

let[@inline] spend_fuel st =
  st.fuel <- st.fuel - 1;
  if st.fuel <= 0 then err "execution budget exhausted (infinite loop?)"

(* ------------------------------------------------------------------ *)
(* Deterministic pseudo-random inputs                                  *)
(* ------------------------------------------------------------------ *)

let lcg_next st =
  st.rng <- ((1103515245 * st.rng) + 12345) land 0x3FFFFFFF;
  st.rng

let rand01 st = float_of_int (lcg_next st) /. 1073741824.0
let rand_int st n = if n <= 0 then 0 else lcg_next st mod n

(* ------------------------------------------------------------------ *)
(* Kernel-focus access tracking                                        *)
(* ------------------------------------------------------------------ *)

let kernel_obs st =
  match st.prof.kernel with
  | Some k -> k
  | None ->
      let k =
        {
          Profile.calls = 0;
          k_cycles = 0.0;
          k_flops = 0;
          k_sfu = 0;
          k_bytes_read = 0;
          k_bytes_written = 0;
          args = [||];
        }
      in
      st.prof.kernel <- Some k;
      k

let update_range (obs : Profile.arg_obs) region_id off =
  let rec go = function
    | [] -> [ (region_id, off, off) ]
    | (id, lo, hi) :: rest when id = region_id ->
        (id, min lo off, max hi off) :: rest
    | entry :: rest -> entry :: go rest
  in
  obs.regions_touched <- go obs.regions_touched

(* Attribute a transfer to the first kernel argument reaching the
   region (aliased arguments would double-count the same bytes). *)
let attribute st (tr : focus_track) f =
  let k = kernel_obs st in
  match tr.ft_idxs with
  | i :: _ when i < Array.length k.args -> f k.args.(i)
  | _ -> ()

(* Called only with [focus_depth > 0]; [elem] is the region's element
   size in bytes.  Hot path: bound updates and the first-access byte
   classification only — the [regions_touched] list maintenance is
   deferred to {!exit_focus}. *)
let track_focus_access st ~write mem_id off elem =
  let a = st.focus_track in
  if mem_id < Array.length a then
    match Array.unsafe_get a mem_id with
    | None -> ()
    | Some tr ->
        if off < tr.ft_lo then (
          if tr.ft_hi < 0 then st.focus_order <- mem_id :: st.focus_order;
          tr.ft_lo <- off);
        if off > tr.ft_hi then tr.ft_hi <- off;
        let s = Bytes.get_uint8 tr.ft_state off in
        if write then (
          (* first write of this element: it is produced on-device and
             must be copied back *)
          if s land 2 = 0 then (
            Bytes.set_uint8 tr.ft_state off (s lor 2);
            attribute st tr (fun a ->
                a.Profile.bytes_out <- a.Profile.bytes_out + elem)))
        else if s = 0 then (
          (* first access is a read: the element must be transferred in *)
          Bytes.set_uint8 tr.ft_state off 1;
          attribute st tr (fun a ->
              a.Profile.bytes_in <- a.Profile.bytes_in + elem))

(* Load/store with the region record already fetched: bounds check,
   access counters, byte accounting, and (on the tracking path) the
   focus classification — one region fetch per access.  The
   [Cost.load]/[Cost.store] cycles themselves are statically known and
   batched by the resolver. *)

let load_r st (r : Memory.region) off =
  if off < 0 || off >= Array.length r.data then
    err "out-of-bounds read of '%s' at index %d (size %d)" r.name off
      (Array.length r.data);
  st.prof.loads <- st.prof.loads + 1;
  st.prof.bytes_read <- st.prof.bytes_read + r.elem_bytes;
  Array.unsafe_get r.data off

let store_r st (r : Memory.region) off v =
  if off < 0 || off >= Array.length r.data then
    err "out-of-bounds write of '%s' at index %d (size %d)" r.name off
      (Array.length r.data);
  Array.unsafe_set r.data off v;
  st.prof.stores <- st.prof.stores + 1;
  st.prof.bytes_written <- st.prof.bytes_written + r.elem_bytes

let load_r_tracked st r off =
  let v = load_r st r off in
  if st.focus_depth > 0 then
    track_focus_access st ~write:false r.Memory.id off r.elem_bytes;
  v

let store_r_tracked st r off v =
  store_r st r off v;
  if st.focus_depth > 0 then
    track_focus_access st ~write:true r.Memory.id off r.elem_bytes

(* Pointer-based accessors for the reference tree walker. *)
let mem_load st (p : Value.ptr) = load_r_tracked st (Memory.region st.mem p.mem_id) p.off

let mem_store st (p : Value.ptr) v =
  store_r_tracked st (Memory.region st.mem p.mem_id) p.off v

(* ------------------------------------------------------------------ *)
(* Slot access                                                         *)
(* ------------------------------------------------------------------ *)

let get_var st frame = function
  | Resolve.Local i -> frame.(i)
  | Resolve.Global i -> st.garray.(i)
  | Resolve.Unbound n -> err "undefined variable '%s'" n

let set_var st frame r v =
  match r with
  | Resolve.Local i -> frame.(i) <- v
  | Resolve.Global i -> st.garray.(i) <- v
  | Resolve.Unbound n -> err "undefined variable '%s'" n

(* ------------------------------------------------------------------ *)
(* Arithmetic with dynamic residues                                    *)
(* ------------------------------------------------------------------ *)

(* Add/Sub/Mul: the resolver pre-charged [Cost.int_op]; [fresid] is the
   difference to the float cost, charged when the operands turn out to
   be floating-point. *)
let do_arith st op fresid a b =
  let open Minic.Ast in
  if is_float a || is_float b then (
    if fresid <> 0.0 then charge st fresid;
    st.prof.flops <- st.prof.flops + 1;
    match op with
    | Add -> VFloat (to_float a +. to_float b)
    | Sub -> VFloat (to_float a -. to_float b)
    | Mul -> VFloat (to_float a *. to_float b)
    | _ -> assert false)
  else (
    st.prof.int_ops <- st.prof.int_ops + 1;
    match op with
    | Add -> VInt (to_int a + to_int b)
    | Sub -> VInt (to_int a - to_int b)
    | Mul -> VInt (to_int a * to_int b)
    | _ -> assert false)

(* Division cost depends on the operand kinds: charged fully at run
   time. *)
let do_div st a b =
  if is_float a || is_float b then (
    charge st Profile.Cost.float_div;
    st.prof.flops <- st.prof.flops + 1;
    VFloat (to_float a /. to_float b))
  else (
    charge st Profile.Cost.int_op;
    st.prof.int_ops <- st.prof.int_ops + 1;
    let d = to_int b in
    if d = 0 then err "integer division by zero";
    VInt (to_int a / d))

(* Mod: [Cost.int_op] pre-charged; only the counter is dynamic. *)
let do_mod st a b =
  if is_float a || is_float b then st.prof.flops <- st.prof.flops + 1
  else st.prof.int_ops <- st.prof.int_ops + 1;
  let d = to_int b in
  if d = 0 then err "integer modulo by zero";
  VInt (to_int a mod d)

let do_cmp op fl a b =
  let open Minic.Ast in
  match op with
  | Lt -> if fl then to_float a < to_float b else to_int a < to_int b
  | Le -> if fl then to_float a <= to_float b else to_int a <= to_int b
  | Gt -> if fl then to_float a > to_float b else to_int a > to_int b
  | Ge -> if fl then to_float a >= to_float b else to_int a >= to_int b
  | Eq -> if fl then to_float a = to_float b else to_int a = to_int b
  | Ne -> if fl then to_float a <> to_float b else to_int a <> to_int b
  | _ -> assert false

let coerce typ v =
  match typ with
  | Minic.Ast.Tint -> VInt (to_int v)
  | Minic.Ast.Tfloat | Minic.Ast.Tdouble -> VFloat (to_float v)
  | Minic.Ast.Tbool -> VBool (to_bool v)
  | _ -> v

let coerce_region st (p : Value.ptr) v =
  coerce (Memory.region st.mem p.mem_id).elem_typ v

let arith_fresid = Profile.Cost.float_add -. Profile.Cost.int_op
let mul_fresid = Profile.Cost.float_mul -. Profile.Cost.int_op

let apply_assign st op old rhs =
  match op with
  | Minic.Ast.Set -> rhs
  | Minic.Ast.AddEq -> do_arith st Minic.Ast.Add arith_fresid old rhs
  | Minic.Ast.SubEq -> do_arith st Minic.Ast.Sub arith_fresid old rhs
  | Minic.Ast.MulEq -> do_arith st Minic.Ast.Mul mul_fresid old rhs
  | Minic.Ast.DivEq -> do_div st old rhs

(* ------------------------------------------------------------------ *)
(* Focus-call bracketing                                               *)
(* ------------------------------------------------------------------ *)

let enter_focus st (f : Resolve.cfunc) args =
  let ptr_params =
    List.filteri
      (fun _ ((p : Minic.Ast.param), _) ->
        match p.ptyp with Minic.Ast.Tptr _ -> true | _ -> false)
      (List.combine f.cf_params args)
  in
  let k = kernel_obs st in
  if Array.length k.args = 0 then
    k.args <-
      Array.of_list
        (List.mapi
           (fun i ((p : Minic.Ast.param), _) ->
             {
               Profile.arg_index = i;
               arg_name = p.pname_;
               regions_touched = [];
               bytes_in = 0;
               bytes_out = 0;
             })
           ptr_params);
  st.focus_order <- [];
  st.focus_track <- Array.make (max 1 st.mem.Memory.next_id) None;
  List.iteri
    (fun i (_, v) ->
      match v with
      | VPtr p -> (
          match st.focus_track.(p.mem_id) with
          | Some tr ->
              (* aliased arguments share the region's first-access
                 state; transfers attribute to the first of them *)
              st.focus_track.(p.mem_id) <-
                Some { tr with ft_idxs = tr.ft_idxs @ [ i ] }
          | None ->
              st.focus_track.(p.mem_id) <-
                Some
                  {
                    ft_idxs = [ i ];
                    ft_state =
                      Bytes.make (Memory.length st.mem p.mem_id) '\000';
                    ft_lo = max_int;
                    ft_hi = -1;
                  })
      | _ -> ())
    ptr_params;
  st.focus_depth <- st.focus_depth + 1

let exit_focus st (c0, f0, s0, br0, bw0) =
  st.focus_depth <- st.focus_depth - 1;
  let k = kernel_obs st in
  (* replay the deferred [regions_touched] range updates in first-touch
     order: merging each region's lo then hi bound is exactly the fold
     the per-access updates would have produced *)
  List.iter
    (fun mem_id ->
      match st.focus_track.(mem_id) with
      | Some tr when tr.ft_hi >= 0 ->
          List.iter
            (fun i ->
              if i < Array.length k.args then (
                update_range k.args.(i) mem_id tr.ft_lo;
                update_range k.args.(i) mem_id tr.ft_hi))
            tr.ft_idxs
      | _ -> ())
    (List.rev st.focus_order);
  k.calls <- k.calls + 1;
  k.k_cycles <- k.k_cycles +. (cycles st -. c0);
  k.k_flops <- k.k_flops + (st.prof.flops - f0);
  k.k_sfu <- k.k_sfu + (st.prof.sfu_ops - s0);
  k.k_bytes_read <- k.k_bytes_read + (st.prof.bytes_read - br0);
  k.k_bytes_written <- k.k_bytes_written + (st.prof.bytes_written - bw0)

let counters_snapshot st =
  ( cycles st,
    st.prof.flops,
    st.prof.sfu_ops,
    st.prof.bytes_read,
    st.prof.bytes_written )

(* ================================================================== *)
(* Threaded-code compilation                                           *)
(* ================================================================== *)

(* Raised by a specialized kernel's entry protocol — strictly before any
   state mutation — when a precondition fails (non-numeric bounds,
   non-float region, out-of-range access, insufficient fuel).  The
   fused statement then falls back to its faithfully compiled loop. *)
exception Kernel_unfit

(* Compiled expression / statement: a pre-bound closure over the run
   state and the current frame.  Compilation happens once per program;
   execution performs no constructor dispatch. *)
type ecode = state -> Value.t array -> Value.t
type scode = state -> Value.t array -> unit

(** One compiled code variant: per-function body closures plus the
    globals block.  [v_nloops] is the number of loop statements the
    variant numbered (densely, in compilation order) for the per-run
    loop-stat cache. *)
type variant = { v_bodies : scode array; v_globals : scode; v_nloops : int }

(** A threaded-code program: the slot IR plus its two lazily compiled
    closure variants.  [plain] is the non-focus fast path — its memory
    accessors carry no kernel-tracking test and its call sites no focus
    check; [tracking] is used whenever a run has a focus function. *)
type compiled = {
  cp : Resolve.t;
  plain : variant Lazy.t;
  tracking : variant Lazy.t;
  vm : Bytecode.program Lazy.t;
      (** flat register-bytecode lowering, the {!run_compiled} default
          engine unless [PSAFLOW_NO_VM] is set *)
}

let seq2 s1 s2 st fr = s1 st fr; s2 st fr

let rec seq_codes : scode list -> scode = function
  | [] -> fun _ _ -> ()
  | [ s ] -> s
  | [ s1; s2 ] -> fun st fr -> s1 st fr; s2 st fr
  | [ s1; s2; s3 ] ->
      fun st fr ->
        s1 st fr;
        s2 st fr;
        s3 st fr
  | [ s1; s2; s3; s4 ] ->
      fun st fr ->
        s1 st fr;
        s2 st fr;
        s3 st fr;
        s4 st fr
  | s1 :: s2 :: s3 :: s4 :: rest ->
      let k = seq_codes rest in
      fun st fr ->
        s1 st fr;
        s2 st fr;
        s3 st fr;
        s4 st fr;
        k st fr

(* Evaluate a compiled argument list left to right, exactly like the
   reference walker's [List.map]. *)
let rec eval_args (cs : ecode list) st fr =
  match cs with
  | [] -> []
  | c :: rest ->
      let v = c st fr in
      v :: eval_args rest st fr

let getter = function
  | Resolve.Local i -> fun _st fr -> Array.unsafe_get fr i
  | Resolve.Global i -> fun st _fr -> Array.unsafe_get st.garray i
  | Resolve.Unbound n ->
      fun _ _ -> err "undefined variable '%s'" n

let setter = function
  | Resolve.Local i -> fun _st fr v -> Array.unsafe_set fr i v
  | Resolve.Global i -> fun st _fr v -> Array.unsafe_set st.garray i v
  | Resolve.Unbound n -> fun _ _ _ -> err "undefined variable '%s'" n

let vtrue = VBool true
let vfalse = VBool false
let vbool b = if b then vtrue else vfalse

let compile_variant (cp : Resolve.t) ~track : variant =
  (* filled below; [User] call sites look their callee up at run time so
     recursion needs no compile-time knot *)
  let bodies = Array.make (Array.length cp.cfuncs) (fun _ _ -> ()) in
  (* dense loop numbering for the per-run loop-stat cache; plain and
     tracking variants compile the same IR in the same order, so their
     numberings agree *)
  let nloops = ref 0 in
  let fresh_loop_idx () =
    let i = !nloops in
    incr nloops;
    i
  in
  let load_at : state -> Memory.region -> int -> Value.t =
    if track then load_r_tracked else load_r
  in
  let store_at : state -> Memory.region -> int -> Value.t -> unit =
    if track then store_r_tracked else store_r
  in
  let rec cexpr (e : Resolve.expr) : ecode =
    match e.e with
    | ELit v -> fun _ _ -> v
    | EVar r -> getter r
    | ENeg a ->
        let ca = cexpr a in
        fun st fr -> (
          match ca st fr with
          | VInt n -> VInt (-n)
          | VFloat f ->
              st.prof.flops <- st.prof.flops + 1;
              VFloat (-.f)
          | _ -> err "negation of a non-numeric value")
    | ENot a ->
        let ca = cexpr a in
        fun st fr -> vbool (not (to_bool (ca st fr)))
    | EArith (op, fresid, a, b) ->
        let ca = cexpr a and cb = cexpr b in
        (match op with
        | Minic.Ast.Add ->
            fun st fr ->
              let va = ca st fr in
              let vb = cb st fr in
              if is_float va || is_float vb then (
                if fresid <> 0.0 then charge st fresid;
                st.prof.flops <- st.prof.flops + 1;
                VFloat (to_float va +. to_float vb))
              else (
                st.prof.int_ops <- st.prof.int_ops + 1;
                VInt (to_int va + to_int vb))
        | Minic.Ast.Sub ->
            fun st fr ->
              let va = ca st fr in
              let vb = cb st fr in
              if is_float va || is_float vb then (
                if fresid <> 0.0 then charge st fresid;
                st.prof.flops <- st.prof.flops + 1;
                VFloat (to_float va -. to_float vb))
              else (
                st.prof.int_ops <- st.prof.int_ops + 1;
                VInt (to_int va - to_int vb))
        | Minic.Ast.Mul ->
            fun st fr ->
              let va = ca st fr in
              let vb = cb st fr in
              if is_float va || is_float vb then (
                if fresid <> 0.0 then charge st fresid;
                st.prof.flops <- st.prof.flops + 1;
                VFloat (to_float va *. to_float vb))
              else (
                st.prof.int_ops <- st.prof.int_ops + 1;
                VInt (to_int va * to_int vb))
        | op ->
            fun st fr ->
              let va = ca st fr in
              let vb = cb st fr in
              do_arith st op fresid va vb)
    | EDiv (a, b) ->
        let ca = cexpr a and cb = cexpr b in
        fun st fr ->
          let va = ca st fr in
          let vb = cb st fr in
          do_div st va vb
    | EMod (a, b) ->
        let ca = cexpr a and cb = cexpr b in
        fun st fr ->
          let va = ca st fr in
          let vb = cb st fr in
          do_mod st va vb
    | ECmp (op, a, b) -> (
        let ca = cexpr a and cb = cexpr b in
        match op with
        | Minic.Ast.Lt ->
            fun st fr ->
              let va = ca st fr in
              let vb = cb st fr in
              vbool
                (if is_float va || is_float vb then to_float va < to_float vb
                 else to_int va < to_int vb)
        | Minic.Ast.Le ->
            fun st fr ->
              let va = ca st fr in
              let vb = cb st fr in
              vbool
                (if is_float va || is_float vb then to_float va <= to_float vb
                 else to_int va <= to_int vb)
        | Minic.Ast.Gt ->
            fun st fr ->
              let va = ca st fr in
              let vb = cb st fr in
              vbool
                (if is_float va || is_float vb then to_float va > to_float vb
                 else to_int va > to_int vb)
        | Minic.Ast.Ge ->
            fun st fr ->
              let va = ca st fr in
              let vb = cb st fr in
              vbool
                (if is_float va || is_float vb then to_float va >= to_float vb
                 else to_int va >= to_int vb)
        | Minic.Ast.Eq ->
            fun st fr ->
              let va = ca st fr in
              let vb = cb st fr in
              vbool
                (if is_float va || is_float vb then to_float va = to_float vb
                 else to_int va = to_int vb)
        | Minic.Ast.Ne ->
            fun st fr ->
              let va = ca st fr in
              let vb = cb st fr in
              vbool
                (if is_float va || is_float vb then to_float va <> to_float vb
                 else to_int va <> to_int vb)
        | op ->
            fun st fr ->
              let va = ca st fr in
              let vb = cb st fr in
              vbool (do_cmp op (is_float va || is_float vb) va vb))
    | EAnd (a, b) ->
        (* && and || short-circuit like C *)
        let ca = cexpr a and cb = cexpr b in
        let bcost = b.ecost in
        fun st fr ->
          if to_bool (ca st fr) then (
            charge st bcost;
            vbool (to_bool (cb st fr)))
          else vfalse
    | EOr (a, b) ->
        let ca = cexpr a and cb = cexpr b in
        let bcost = b.ecost in
        fun st fr ->
          if to_bool (ca st fr) then vtrue
          else (
            charge st bcost;
            vbool (to_bool (cb st fr)))
    | EIndex (a, i) ->
        let ca = cexpr a and ci = cexpr i in
        fun st fr ->
          let p = to_ptr (ca st fr) in
          let i = to_int (ci st fr) in
          load_at st (Memory.region st.mem p.mem_id) (p.off + i)
    | ECast (t, a) -> (
        let ca = cexpr a in
        match t with
        | Minic.Ast.Tint -> fun st fr -> VInt (to_int (ca st fr))
        | Minic.Ast.Tfloat | Minic.Ast.Tdouble ->
            fun st fr -> VFloat (to_float (ca st fr))
        | Minic.Ast.Tbool -> fun st fr -> vbool (to_bool (ca st fr))
        | _ -> ca)
    | ECall { callee; cargs } -> ccall callee cargs
    | EFolded { fval; f_flops; f_int_ops; f_dyn } ->
        (* optimizer-built: yield the folded constant while replaying
           the folded subtree's exact counter bumps and charges *)
        fun st _fr ->
          if f_dyn <> 0.0 then charge st f_dyn;
          if f_flops <> 0 then st.prof.flops <- st.prof.flops + f_flops;
          if f_int_ops <> 0 then st.prof.int_ops <- st.prof.int_ops + f_int_ops;
          fval
    | EArithF (op, fresid, a, b) -> (
        let ca = cexpr a and cb = cexpr b in
        match op with
        | Minic.Ast.Add ->
            fun st fr ->
              let va = ca st fr in
              let vb = cb st fr in
              if fresid <> 0.0 then charge st fresid;
              st.prof.flops <- st.prof.flops + 1;
              VFloat (to_float va +. to_float vb)
        | Minic.Ast.Sub ->
            fun st fr ->
              let va = ca st fr in
              let vb = cb st fr in
              if fresid <> 0.0 then charge st fresid;
              st.prof.flops <- st.prof.flops + 1;
              VFloat (to_float va -. to_float vb)
        | Minic.Ast.Mul ->
            fun st fr ->
              let va = ca st fr in
              let vb = cb st fr in
              if fresid <> 0.0 then charge st fresid;
              st.prof.flops <- st.prof.flops + 1;
              VFloat (to_float va *. to_float vb)
        | _ -> assert false)
    | EArithI (op, a, b) -> (
        let ca = cexpr a and cb = cexpr b in
        match op with
        | Minic.Ast.Add ->
            fun st fr ->
              let va = ca st fr in
              let vb = cb st fr in
              st.prof.int_ops <- st.prof.int_ops + 1;
              VInt (to_int va + to_int vb)
        | Minic.Ast.Sub ->
            fun st fr ->
              let va = ca st fr in
              let vb = cb st fr in
              st.prof.int_ops <- st.prof.int_ops + 1;
              VInt (to_int va - to_int vb)
        | Minic.Ast.Mul ->
            fun st fr ->
              let va = ca st fr in
              let vb = cb st fr in
              st.prof.int_ops <- st.prof.int_ops + 1;
              VInt (to_int va * to_int vb)
        | _ -> assert false)
    | EDivF (a, b) ->
        let ca = cexpr a and cb = cexpr b in
        fun st fr ->
          let va = ca st fr in
          let vb = cb st fr in
          charge st Profile.Cost.float_div;
          st.prof.flops <- st.prof.flops + 1;
          VFloat (to_float va /. to_float vb)
    | EDivI (a, b) ->
        let ca = cexpr a and cb = cexpr b in
        fun st fr ->
          let va = ca st fr in
          let vb = cb st fr in
          charge st Profile.Cost.int_op;
          st.prof.int_ops <- st.prof.int_ops + 1;
          let d = to_int vb in
          if d = 0 then err "integer division by zero";
          VInt (to_int va / d)
    | ECmpF (op, a, b) -> (
        let ca = cexpr a and cb = cexpr b in
        match op with
        | Minic.Ast.Lt ->
            fun st fr ->
              let va = ca st fr in
              let vb = cb st fr in
              vbool (to_float va < to_float vb)
        | Minic.Ast.Le ->
            fun st fr ->
              let va = ca st fr in
              let vb = cb st fr in
              vbool (to_float va <= to_float vb)
        | Minic.Ast.Gt ->
            fun st fr ->
              let va = ca st fr in
              let vb = cb st fr in
              vbool (to_float va > to_float vb)
        | Minic.Ast.Ge ->
            fun st fr ->
              let va = ca st fr in
              let vb = cb st fr in
              vbool (to_float va >= to_float vb)
        | Minic.Ast.Eq ->
            fun st fr ->
              let va = ca st fr in
              let vb = cb st fr in
              vbool (to_float va = to_float vb)
        | Minic.Ast.Ne ->
            fun st fr ->
              let va = ca st fr in
              let vb = cb st fr in
              vbool (to_float va <> to_float vb)
        | _ -> assert false)
    | ECmpI (op, a, b) -> (
        let ca = cexpr a and cb = cexpr b in
        match op with
        | Minic.Ast.Lt ->
            fun st fr ->
              let va = ca st fr in
              let vb = cb st fr in
              vbool (to_int va < to_int vb)
        | Minic.Ast.Le ->
            fun st fr ->
              let va = ca st fr in
              let vb = cb st fr in
              vbool (to_int va <= to_int vb)
        | Minic.Ast.Gt ->
            fun st fr ->
              let va = ca st fr in
              let vb = cb st fr in
              vbool (to_int va > to_int vb)
        | Minic.Ast.Ge ->
            fun st fr ->
              let va = ca st fr in
              let vb = cb st fr in
              vbool (to_int va >= to_int vb)
        | Minic.Ast.Eq ->
            fun st fr ->
              let va = ca st fr in
              let vb = cb st fr in
              vbool (to_int va = to_int vb)
        | Minic.Ast.Ne ->
            fun st fr ->
              let va = ca st fr in
              let vb = cb st fr in
              vbool (to_int va <> to_int vb)
        | _ -> assert false)
    | EHoisted { hslot; h_flops; h_sfu; h_dyn; horig } -> (
        let ch = cexpr horig in
        fun st fr ->
          match Array.unsafe_get fr hslot with
          | VFloat _ as v ->
              (* cache hit: replay the subtree's counted effects *)
              if h_dyn <> 0.0 then charge st h_dyn;
              if h_flops <> 0 then st.prof.flops <- st.prof.flops + h_flops;
              if h_sfu <> 0 then st.prof.sfu_ops <- st.prof.sfu_ops + h_sfu;
              v
          | _ ->
              (* first evaluation this loop invocation; errors are never
                 cached, so a failing subtree fails on every iteration *)
              let v = ch st fr in
              Array.unsafe_set fr hslot v;
              v)
  and ccall callee cargs : ecode =
    let cas = List.map cexpr cargs in
    match callee with
    | Resolve.User idx -> (
        let f = cp.cfuncs.(idx) in
        if List.length cargs <> List.length f.cf_params then
          (* static arity mismatch: fails when (and only when) executed,
             like the reference walker *)
          fun st fr ->
           ignore (eval_args cas st fr);
           err "call to '%s' with wrong arity" f.cf_name
        else
          let nslots = max 1 f.cf_nslots in
          let param_slots = f.cf_param_slots in
          let bind frame args =
            List.iteri
              (fun i v ->
                Array.unsafe_set frame (Array.unsafe_get param_slots i) v)
              args
          in
          if not track then fun st fr ->
            (* non-focus fast path: no focus test per call *)
            let args = eval_args cas st fr in
            let frame = Array.make nslots VUnit in
            bind frame args;
            try
              (Array.unsafe_get bodies idx) st frame;
              VUnit
            with Return_exc v -> v
          else fun st fr ->
            let args = eval_args cas st fr in
            let frame = Array.make nslots VUnit in
            bind frame args;
            let is_focus = idx = st.focus_idx && st.focus_depth = 0 in
            if is_focus then enter_focus st f args;
            let snapshot = counters_snapshot st in
            let result =
              try
                (Array.unsafe_get bodies idx) st frame;
                VUnit
              with Return_exc v -> v
            in
            if is_focus then exit_focus st snapshot;
            result)
    | Resolve.Math { mimpl = M1 g; mflops } -> (
        match cas with
        | [ ca ] ->
            fun st fr ->
              let v = ca st fr in
              st.prof.sfu_ops <- st.prof.sfu_ops + 1;
              st.prof.flops <- st.prof.flops + mflops;
              VFloat (g (to_float v))
        | _ -> (
            fun st fr ->
              let args = eval_args cas st fr in
              st.prof.sfu_ops <- st.prof.sfu_ops + 1;
              st.prof.flops <- st.prof.flops + mflops;
              match args with
              | a :: _ -> VFloat (g (to_float a))
              | [] -> err "math builtin called with too few arguments"))
    | Resolve.Math { mimpl = M2 g; mflops } -> (
        match cas with
        | [ ca; cb ] ->
            fun st fr ->
              let va = ca st fr in
              let vb = cb st fr in
              st.prof.sfu_ops <- st.prof.sfu_ops + 1;
              st.prof.flops <- st.prof.flops + mflops;
              VFloat (g (to_float va) (to_float vb))
        | _ -> (
            fun st fr ->
              let args = eval_args cas st fr in
              st.prof.sfu_ops <- st.prof.sfu_ops + 1;
              st.prof.flops <- st.prof.flops + mflops;
              match args with
              | a :: b :: _ -> VFloat (g (to_float a) (to_float b))
              | _ -> err "math builtin called with too few arguments"))
    | Resolve.Math_unimpl base ->
        fun st fr ->
          ignore (eval_args cas st fr);
          err "unimplemented math builtin '%s'" base
    | Resolve.Rand01 ->
        fun st fr ->
          ignore (eval_args cas st fr);
          VFloat (rand01 st)
    | Resolve.Rand_int -> (
        match cas with
        | [ ca ] ->
            fun st fr ->
              let v = ca st fr in
              VInt (rand_int st (to_int v))
        | _ ->
            fun st fr ->
              VInt (rand_int st (to_int (List.hd (eval_args cas st fr)))))
    | Resolve.Print_int -> (
        match cas with
        | [ ca ] ->
            fun st fr ->
              let v = ca st fr in
              Buffer.add_string st.out (string_of_int (to_int v) ^ "\n");
              VUnit
        | _ ->
            fun st fr ->
              Buffer.add_string st.out
                (string_of_int (to_int (List.hd (eval_args cas st fr))) ^ "\n");
              VUnit)
    | Resolve.Print_float -> (
        match cas with
        | [ ca ] ->
            fun st fr ->
              let v = ca st fr in
              Buffer.add_string st.out (Printf.sprintf "%.6g\n" (to_float v));
              VUnit
        | _ ->
            fun st fr ->
              Buffer.add_string st.out
                (Printf.sprintf "%.6g\n"
                   (to_float (List.hd (eval_args cas st fr))));
              VUnit)
    | Resolve.Timer_start -> (
        match cas with
        | [ ca ] ->
            fun st fr ->
              let v = ca st fr in
              sync_cycles st;
              Profile.timer_start st.prof (to_int v);
              VUnit
        | _ ->
            fun st fr ->
              let v = List.hd (eval_args cas st fr) in
              sync_cycles st;
              Profile.timer_start st.prof (to_int v);
              VUnit)
    | Resolve.Timer_stop -> (
        match cas with
        | [ ca ] ->
            fun st fr ->
              let v = ca st fr in
              sync_cycles st;
              Profile.timer_stop st.prof (to_int v);
              VUnit
        | _ ->
            fun st fr ->
              let v = List.hd (eval_args cas st fr) in
              sync_cycles st;
              Profile.timer_stop st.prof (to_int v);
              VUnit)
    | Resolve.Unknown fname ->
        fun st fr ->
          ignore (eval_args cas st fr);
          err "call to unknown function '%s'" fname
  and cstmt (s : Resolve.stmt) : scode =
    match s with
    | SDeclVar { slot; typ; init } -> (
        let set = setter slot in
        match init with
        | Some e ->
            let ce = cexpr e in
            let co =
              match typ with
              | Minic.Ast.Tint -> fun v -> VInt (to_int v)
              | Minic.Ast.Tfloat | Minic.Ast.Tdouble ->
                  fun v -> VFloat (to_float v)
              | Minic.Ast.Tbool -> fun v -> vbool (to_bool v)
              | _ -> Fun.id
            in
            fun st fr ->
              spend_fuel st;
              set st fr (co (ce st fr))
        | None ->
            let z = Value.zero_of_typ typ in
            fun st fr ->
              spend_fuel st;
              set st fr z)
    | SDeclArr { slot; typ; name; size } ->
        let set = setter slot in
        let csize = cexpr size in
        fun st fr ->
          spend_fuel st;
          let n = to_int (csize st fr) in
          set st fr (Memory.alloc st.mem ~name ~elem_typ:typ n)
    | SAssign { slot; aop; rhs } -> (
        let set = setter slot in
        let crhs = cexpr rhs in
        match aop with
        | Minic.Ast.Set ->
            fun st fr ->
              spend_fuel st;
              set st fr (crhs st fr)
        | aop ->
            let get = getter slot in
            fun st fr ->
              spend_fuel st;
              let rhs = crhs st fr in
              set st fr (apply_assign st aop (get st fr) rhs))
    | SStore { arr; idx; aop; rhs } -> (
        let crhs = cexpr rhs and carr = cexpr arr and cidx = cexpr idx in
        match aop with
        | Minic.Ast.Set ->
            fun st fr ->
              spend_fuel st;
              let rhs = crhs st fr in
              let p = to_ptr (carr st fr) in
              let i = to_int (cidx st fr) in
              let r = Memory.region st.mem p.mem_id in
              store_at st r (p.off + i) (coerce r.elem_typ rhs)
        | aop ->
            fun st fr ->
              spend_fuel st;
              let rhs = crhs st fr in
              let p = to_ptr (carr st fr) in
              let i = to_int (cidx st fr) in
              let r = Memory.region st.mem p.mem_id in
              let off = p.off + i in
              let v = apply_assign st aop (load_at st r off) rhs in
              store_at st r off v)
    | SExpr e ->
        let ce = cexpr e in
        fun st fr ->
          spend_fuel st;
          ignore (ce st fr)
    | SIf (c, b1, b2) -> (
        let cc = cexpr c in
        let cb1 = cblock b1 in
        match b2 with
        | None ->
            fun st fr ->
              spend_fuel st;
              if to_bool (cc st fr) then cb1 st fr
        | Some b2 ->
            let cb2 = cblock b2 in
            fun st fr ->
              spend_fuel st;
              if to_bool (cc st fr) then cb1 st fr else cb2 st fr)
    | SWhile { wsid; cond; body } ->
        let lidx = fresh_loop_idx () in
        let ccond = cexpr cond in
        let cbody = cblock body in
        let ccost = cond.ecost in
        let iter_cost = Profile.Cost.loop_iter +. Profile.Cost.branch in
        fun st fr ->
          spend_fuel st;
          let stat = cached_loop_stat st lidx wsid in
          stat.invocations <- stat.invocations + 1;
          let t0 = cycles st in
          let trips = ref 0 in
          charge st Profile.Cost.branch;
          while
            charge st ccost;
            to_bool (ccond st fr)
          do
            incr trips;
            stat.iterations <- stat.iterations + 1;
            spend_fuel st;
            charge st iter_cost;
            cbody st fr
          done;
          stat.min_trip <- min stat.min_trip !trips;
          stat.max_trip <- max stat.max_trip !trips;
          stat.cycles <- stat.cycles +. (cycles st -. t0)
    | SFor { fsid; slot; init; bound; inclusive; step; body } ->
        compile_for (fresh_loop_idx ()) ~fsid ~slot ~init ~bound ~inclusive
          ~step ~body
    | SReturn eo -> (
        match eo with
        | Some e ->
            let ce = cexpr e in
            fun st fr ->
              spend_fuel st;
              raise (Return_exc (ce st fr))
        | None ->
            fun st _fr ->
              spend_fuel st;
              raise (Return_exc VUnit))
    | SBlock b ->
        let cb = cblock b in
        fun st fr ->
          spend_fuel st;
          cb st fr
    | SDrop { dtyp; drhs } -> (
        (* optimizer-built residue of a dead write: evaluate the rhs for
           its effects, replay the declaration coercion's error check,
           discard the value *)
        match drhs with
        | None -> fun st _fr -> spend_fuel st
        | Some e ->
            let ce = cexpr e in
            let chk : Value.t -> unit =
              match dtyp with
              | Some Minic.Ast.Tint -> fun v -> ignore (to_int v)
              | Some (Minic.Ast.Tfloat | Minic.Ast.Tdouble) ->
                  fun v -> ignore (to_float v)
              | Some Minic.Ast.Tbool -> fun v -> ignore (to_bool v)
              | Some _ | None -> ignore
            in
            fun st fr ->
              spend_fuel st;
              chk (ce st fr))
    | SHoistReset slots ->
        (* synthetic bookkeeping: invalidate {!EHoisted} caches — free
           of fuel and cycles, invisible to the profile *)
        let slots = Array.of_list slots in
        fun _st fr ->
          Array.iter (fun i -> Array.unsafe_set fr i VUnit) slots
    | SFused { forig; kern } -> (
        match forig with
        | SFor { fsid; slot; init; bound; inclusive; step; body } ->
            (* the kernel and its fallback loop share one loop-stat
               identity (and one dense cache index) *)
            let lidx = fresh_loop_idx () in
            let generic =
              compile_for lidx ~fsid ~slot ~init ~bound ~inclusive ~step ~body
            in
            let kexec = ckernel lidx kern in
            fun st fr -> (
              try kexec st fr with Kernel_unfit -> generic st fr)
        | s ->
            (* the optimizer only fuses for-loops *)
            cstmt s)
  and compile_for lidx ~fsid ~slot ~init ~bound ~inclusive ~step ~body : scode
      =
    let cinit = cexpr init
    and cbound = cexpr bound
    and cstep = cexpr step in
    let cbody = cblock body in
    let get = getter slot and set = setter slot in
    let icost = (init : Resolve.expr).ecost
    and bcost = Profile.Cost.branch +. (bound : Resolve.expr).ecost
    and scost = (step : Resolve.expr).ecost in
    let iter_cost = Profile.Cost.loop_iter +. Profile.Cost.int_op in
    fun st fr ->
      spend_fuel st;
      let stat = cached_loop_stat st lidx fsid in
      stat.invocations <- stat.invocations + 1;
      let t0 = cycles st in
      charge st icost;
      let i0 = to_int (cinit st fr) in
      set st fr (VInt i0);
      let trips = ref 0 in
      while
        charge st bcost;
        let b = to_int (cbound st fr) in
        let i = to_int (get st fr) in
        if inclusive then i <= b else i < b
      do
        incr trips;
        stat.iterations <- stat.iterations + 1;
        spend_fuel st;
        charge st iter_cost;
        cbody st fr;
        charge st scost;
        let stepv = to_int (cstep st fr) in
        set st fr (VInt (to_int (get st fr) + stepv))
      done;
      stat.min_trip <- min stat.min_trip !trips;
      stat.max_trip <- max stat.max_trip !trips;
      stat.cycles <- stat.cycles +. (cycles st -. t0)
  and ckernel lidx (k : Resolve.kernel) : scode =
    let iter_cost = Profile.Cost.loop_iter +. Profile.Cost.int_op in
    let per_iter =
      k.k_bcost +. iter_cost +. k.k_gcost +. k.k_dyn_cycles +. k.k_scost
    in
    let body = k.k_body in
    let nbody = Array.length body in
    let nsites = Array.length k.k_sites in
    let loads_per_iter = Array.fold_left ( + ) 0 k.k_site_loads in
    let stores_per_iter = Array.fold_left ( + ) 0 k.k_site_stores in
    let fuel_per_iter = 1 + k.k_nstmts in
    fun st fr ->
      (* ---- entry protocol: every check aborts with [Kernel_unfit]
         strictly before any state mutation, so the generic fallback
         reproduces semantics (and error points) exactly ---- *)
      let rec ieval iv (ie : Resolve.iexpr) =
        match ie with
        | Resolve.ILit n -> n
        | Resolve.IIdx -> iv
        | Resolve.ISlot i -> (
            (* the optimizer typed this slot int/bool; anything else
               means the static claim misfired — fall back *)
            match Array.unsafe_get fr i with
            | VInt n -> n
            | VBool b -> if b then 1 else 0
            | VFloat _ | VUnit | VPtr _ -> raise Kernel_unfit)
        | Resolve.IAdd (a, b) -> ieval iv a + ieval iv b
        | Resolve.ISub (a, b) -> ieval iv a - ieval iv b
        | Resolve.IMul (a, b) -> ieval iv a * ieval iv b
        | Resolve.INeg a -> -ieval iv a
      in
      let i0 = ieval 0 k.k_init in
      let b = ieval 0 k.k_bound in
      let s = ieval 0 k.k_step in
      (* keep index arithmetic far from native-int wrap so the closed
         forms below are exact *)
      let sane v = -0x4000_0000_0000 < v && v < 0x4000_0000_0000 in
      if s <= 0 || not (sane i0 && sane b && sane s) then raise Kernel_unfit;
      let n =
        if k.k_inclusive then if i0 <= b then ((b - i0) / s) + 1 else 0
        else if i0 < b then (b - i0 + s - 1) / s
        else 0
      in
      if n >= st.fuel then raise Kernel_unfit;
      let fuel_used = 1 + (n * fuel_per_iter) in
      (* the generic loop errs out of fuel iff it starts with <= D;
         reproduce the exact exhaustion point there *)
      if st.fuel <= fuel_used then raise Kernel_unfit;
      if n = 0 then (
        (* empty loop: init + one failing bound check *)
        st.fuel <- st.fuel - 1;
        let stat = cached_loop_stat st lidx k.k_fsid in
        stat.invocations <- stat.invocations + 1;
        let t0 = cycles st in
        charge st (k.k_icost +. k.k_bcost);
        st.prof.int_ops <-
          st.prof.int_ops + k.k_init_int_ops + k.k_bound_int_ops;
        Array.unsafe_set fr k.k_idx_slot (VInt i0);
        stat.min_trip <- min stat.min_trip 0;
        stat.max_trip <- max stat.max_trip 0;
        stat.cycles <- stat.cycles +. (cycles st -. t0))
      else (
        (* resolve each access site: float region, first and last
           touched offsets in bounds, per-iteration stride *)
        let datas = Array.make nsites [||] in
        let offs = Array.make nsites 0 in
        let deltas = Array.make nsites 0 in
        let elems = Array.make nsites 0 in
        let ids = Array.make nsites 0 in
        let bytes_r = ref 0 and bytes_w = ref 0 in
        for si = 0 to nsites - 1 do
          let site = k.k_sites.(si) in
          match Array.unsafe_get fr site.Resolve.ks_base with
          | VPtr p ->
              if p.mem_id < 0 || p.mem_id >= st.mem.Memory.next_id then
                raise Kernel_unfit;
              let r = Array.unsafe_get st.mem.Memory.regions p.mem_id in
              (match r.Memory.elem_typ with
              | Minic.Ast.Tfloat | Minic.Ast.Tdouble -> ()
              | _ -> raise Kernel_unfit);
              let len = Array.length r.Memory.data in
              let o0 = p.off + ieval i0 site.Resolve.ks_idx in
              let olast =
                p.off + ieval (i0 + ((n - 1) * s)) site.Resolve.ks_idx
              in
              if o0 < 0 || o0 >= len || olast < 0 || olast >= len then
                raise Kernel_unfit;
              datas.(si) <- r.Memory.data;
              offs.(si) <- o0;
              deltas.(si) <-
                (if n > 1 then p.off + ieval (i0 + s) site.Resolve.ks_idx - o0
                 else 0);
              elems.(si) <- r.Memory.elem_bytes;
              ids.(si) <- p.mem_id;
              bytes_r := !bytes_r + (k.k_site_loads.(si) * r.Memory.elem_bytes);
              bytes_w := !bytes_w + (k.k_site_stores.(si) * r.Memory.elem_bytes)
          | _ -> raise Kernel_unfit
        done;
        let fregs = Array.make (max 1 k.k_nfregs) 0.0 in
        Array.iter
          (fun (slot, reg) ->
            match Array.unsafe_get fr slot with
            | VFloat f -> Array.unsafe_set fregs reg f
            | VInt n -> Array.unsafe_set fregs reg (float_of_int n)
            | VBool b -> Array.unsafe_set fregs reg (if b then 1.0 else 0.0)
            | VUnit | VPtr _ -> raise Kernel_unfit)
          k.k_in;
        (* ---- committed: bulk accounting, then the fused body ---- *)
        st.fuel <- st.fuel - fuel_used;
        let stat = cached_loop_stat st lidx k.k_fsid in
        stat.invocations <- stat.invocations + 1;
        let t0 = cycles st in
        let total = k.k_icost +. k.k_bcost +. (float_of_int n *. per_iter) in
        charge st total;
        st.bulk_cycles <- st.bulk_cycles +. total;
        st.prof.int_ops <-
          st.prof.int_ops + k.k_init_int_ops
          + ((n + 1) * k.k_bound_int_ops)
          + (n * (k.k_step_int_ops + k.k_int_ops));
        st.prof.flops <- st.prof.flops + (n * k.k_flops);
        if k.k_sfu > 0 then st.prof.sfu_ops <- st.prof.sfu_ops + (n * k.k_sfu);
        if loads_per_iter > 0 then (
          st.prof.loads <- st.prof.loads + (n * loads_per_iter);
          st.prof.bytes_read <- st.prof.bytes_read + (n * !bytes_r));
        if stores_per_iter > 0 then (
          st.prof.stores <- st.prof.stores + (n * stores_per_iter);
          st.prof.bytes_written <- st.prof.bytes_written + (n * !bytes_w));
        stat.iterations <- stat.iterations + n;
        let do_track = track && st.focus_depth > 0 in
        (* read-modify-write store, tracking in the generic order:
           read, track read, write, track write *)
        let rmw fop si r =
          let off = Array.unsafe_get offs si in
          let data = Array.unsafe_get datas si in
          let old =
            match Array.unsafe_get data off with
            | VFloat f -> f
            | v -> to_float v
          in
          if do_track then
            track_focus_access st ~write:false (Array.unsafe_get ids si) off
              (Array.unsafe_get elems si);
          Array.unsafe_set data off
            (VFloat (fop old (Array.unsafe_get fregs r)));
          if do_track then
            track_focus_access st ~write:true (Array.unsafe_get ids si) off
              (Array.unsafe_get elems si)
        in
        let iv = ref i0 in
        for _ = 1 to n do
          for pc = 0 to nbody - 1 do
            match Array.unsafe_get body pc with
            | Resolve.KLit (d, x) -> Array.unsafe_set fregs d x
            | Resolve.KMov (d, a) ->
                Array.unsafe_set fregs d (Array.unsafe_get fregs a)
            | Resolve.KAdd (d, a, b) ->
                Array.unsafe_set fregs d
                  (Array.unsafe_get fregs a +. Array.unsafe_get fregs b)
            | Resolve.KSub (d, a, b) ->
                Array.unsafe_set fregs d
                  (Array.unsafe_get fregs a -. Array.unsafe_get fregs b)
            | Resolve.KMul (d, a, b) ->
                Array.unsafe_set fregs d
                  (Array.unsafe_get fregs a *. Array.unsafe_get fregs b)
            | Resolve.KDiv (d, a, b) ->
                Array.unsafe_set fregs d
                  (Array.unsafe_get fregs a /. Array.unsafe_get fregs b)
            | Resolve.KNeg (d, a) ->
                Array.unsafe_set fregs d (-.Array.unsafe_get fregs a)
            | Resolve.KItoF d ->
                Array.unsafe_set fregs d (float_of_int !iv)
            | Resolve.KMath1 (d, g, a) ->
                Array.unsafe_set fregs d (g (Array.unsafe_get fregs a))
            | Resolve.KMath2 (d, g, a, b) ->
                Array.unsafe_set fregs d
                  (g (Array.unsafe_get fregs a) (Array.unsafe_get fregs b))
            | Resolve.KLoad (d, si) ->
                let off = Array.unsafe_get offs si in
                (match Array.unsafe_get (Array.unsafe_get datas si) off with
                | VFloat f -> Array.unsafe_set fregs d f
                | v -> Array.unsafe_set fregs d (to_float v));
                if do_track then
                  track_focus_access st ~write:false (Array.unsafe_get ids si)
                    off (Array.unsafe_get elems si)
            | Resolve.KStore (si, r) ->
                let off = Array.unsafe_get offs si in
                Array.unsafe_set (Array.unsafe_get datas si) off
                  (VFloat (Array.unsafe_get fregs r));
                if do_track then
                  track_focus_access st ~write:true (Array.unsafe_get ids si)
                    off (Array.unsafe_get elems si)
            | Resolve.KStoreAdd (si, r) -> rmw ( +. ) si r
            | Resolve.KStoreSub (si, r) -> rmw ( -. ) si r
            | Resolve.KStoreMul (si, r) -> rmw ( *. ) si r
            | Resolve.KStoreDiv (si, r) -> rmw ( /. ) si r
          done;
          for si = 0 to nsites - 1 do
            Array.unsafe_set offs si
              (Array.unsafe_get offs si + Array.unsafe_get deltas si)
          done;
          iv := !iv + s
        done;
        Array.iter
          (fun (slot, reg) ->
            Array.unsafe_set fr slot (VFloat (Array.unsafe_get fregs reg)))
          k.k_out;
        Array.unsafe_set fr k.k_idx_slot (VInt (i0 + (n * s)));
        stat.min_trip <- min stat.min_trip n;
        stat.max_trip <- max stat.max_trip n;
        stat.cycles <- stat.cycles +. (cycles st -. t0))
  and cgroup (g : Resolve.group) : scode =
    let body = seq_codes (List.map cstmt g.gstmts) in
    if g.gcost = 0.0 then body
    else
      let c = g.gcost in
      fun st fr ->
        charge st c;
        body st fr
  and cblock (b : Resolve.block) : scode = seq_codes (List.map cgroup b) in
  Array.iteri (fun i (f : Resolve.cfunc) -> bodies.(i) <- cblock f.cf_body) cp.cfuncs;
  let globals = cblock cp.cglobals in
  { v_bodies = bodies; v_globals = globals; v_nloops = !nloops }

let _ = seq2 (* grouped chaining helper kept for clarity of intent *)

(* Call a compiled function through a variant: the entry path for [main]
   (expression call sites use their own pre-bound closures). *)
let call_user (v : variant) st idx args =
  let f = st.cprog.cfuncs.(idx) in
  if List.length args <> List.length f.cf_params then
    err "call to '%s' with wrong arity" f.cf_name;
  let frame = Array.make (max 1 f.cf_nslots) VUnit in
  List.iteri (fun i x -> frame.(f.cf_param_slots.(i)) <- x) args;
  let is_focus = idx = st.focus_idx && st.focus_depth = 0 in
  if is_focus then enter_focus st f args;
  let snapshot = counters_snapshot st in
  let result =
    try
      v.v_bodies.(idx) st frame;
      VUnit
    with Return_exc r -> r
  in
  if is_focus then exit_focus st snapshot;
  result

(* ================================================================== *)
(* Reference tree walker over the slot IR                              *)
(* ================================================================== *)

(* The pre-threaded-code interpreter, kept verbatim as the semantic
   reference: the test suite asserts the threaded code reproduces its
   profiles bit-identically, and the perf harness reports its throughput
   as the "before" number. *)
module Ir_walk = struct
  let rec eval_expr st frame (e : Resolve.expr) : Value.t =
    match e.e with
    | ELit v -> v
    | EVar r -> get_var st frame r
    | ENeg a -> (
        match eval_expr st frame a with
        | VInt n -> VInt (-n)
        | VFloat f ->
            st.prof.flops <- st.prof.flops + 1;
            VFloat (-.f)
        | _ -> err "negation of a non-numeric value")
    | ENot a -> VBool (not (to_bool (eval_expr st frame a)))
    | EArith (op, fresid, a, b) ->
        let va = eval_expr st frame a in
        let vb = eval_expr st frame b in
        do_arith st op fresid va vb
    | EDiv (a, b) ->
        let va = eval_expr st frame a in
        let vb = eval_expr st frame b in
        do_div st va vb
    | EMod (a, b) ->
        let va = eval_expr st frame a in
        let vb = eval_expr st frame b in
        do_mod st va vb
    | ECmp (op, a, b) ->
        let va = eval_expr st frame a in
        let vb = eval_expr st frame b in
        VBool (do_cmp op (is_float va || is_float vb) va vb)
    | EAnd (a, b) ->
        (* && and || short-circuit like C *)
        if to_bool (eval_expr st frame a) then (
          charge st b.ecost;
          VBool (to_bool (eval_expr st frame b)))
        else VBool false
    | EOr (a, b) ->
        if to_bool (eval_expr st frame a) then VBool true
        else (
          charge st b.ecost;
          VBool (to_bool (eval_expr st frame b)))
    | EIndex (a, i) ->
        let p = to_ptr (eval_expr st frame a) in
        let i = to_int (eval_expr st frame i) in
        mem_load st { p with off = p.off + i }
    | ECast (t, a) -> coerce t (eval_expr st frame a)
    | ECall { callee; cargs } -> (
        let args = List.map (eval_expr st frame) cargs in
        match callee with
        | User idx -> eval_user_call st idx args
        | Math { mimpl; mflops } -> (
            st.prof.sfu_ops <- st.prof.sfu_ops + 1;
            st.prof.flops <- st.prof.flops + mflops;
            match (mimpl, args) with
            | M1 g, a :: _ -> VFloat (g (to_float a))
            | M2 g, a :: b :: _ -> VFloat (g (to_float a) (to_float b))
            | _ -> err "math builtin called with too few arguments")
        | Math_unimpl base -> err "unimplemented math builtin '%s'" base
        | Rand01 -> VFloat (rand01 st)
        | Rand_int -> VInt (rand_int st (to_int (List.hd args)))
        | Print_int ->
            Buffer.add_string st.out
              (string_of_int (to_int (List.hd args)) ^ "\n");
            VUnit
        | Print_float ->
            Buffer.add_string st.out
              (Printf.sprintf "%.6g\n" (to_float (List.hd args)));
            VUnit
        | Timer_start ->
            sync_cycles st;
            Profile.timer_start st.prof (to_int (List.hd args));
            VUnit
        | Timer_stop ->
            sync_cycles st;
            Profile.timer_stop st.prof (to_int (List.hd args));
            VUnit
        | Unknown fname -> err "call to unknown function '%s'" fname)
    | EFolded { fval; f_flops; f_int_ops; f_dyn } ->
        if f_dyn <> 0.0 then charge st f_dyn;
        if f_flops <> 0 then st.prof.flops <- st.prof.flops + f_flops;
        if f_int_ops <> 0 then st.prof.int_ops <- st.prof.int_ops + f_int_ops;
        fval
    | EArithF (op, fresid, a, b) ->
        let va = eval_expr st frame a in
        let vb = eval_expr st frame b in
        if fresid <> 0.0 then charge st fresid;
        st.prof.flops <- st.prof.flops + 1;
        VFloat
          (match op with
          | Minic.Ast.Add -> to_float va +. to_float vb
          | Minic.Ast.Sub -> to_float va -. to_float vb
          | Minic.Ast.Mul -> to_float va *. to_float vb
          | _ -> assert false)
    | EArithI (op, a, b) ->
        let va = eval_expr st frame a in
        let vb = eval_expr st frame b in
        st.prof.int_ops <- st.prof.int_ops + 1;
        VInt
          (match op with
          | Minic.Ast.Add -> to_int va + to_int vb
          | Minic.Ast.Sub -> to_int va - to_int vb
          | Minic.Ast.Mul -> to_int va * to_int vb
          | _ -> assert false)
    | EDivF (a, b) ->
        let va = eval_expr st frame a in
        let vb = eval_expr st frame b in
        charge st Profile.Cost.float_div;
        st.prof.flops <- st.prof.flops + 1;
        VFloat (to_float va /. to_float vb)
    | EDivI (a, b) ->
        let va = eval_expr st frame a in
        let vb = eval_expr st frame b in
        charge st Profile.Cost.int_op;
        st.prof.int_ops <- st.prof.int_ops + 1;
        let d = to_int vb in
        if d = 0 then err "integer division by zero";
        VInt (to_int va / d)
    | ECmpF (op, a, b) ->
        let va = eval_expr st frame a in
        let vb = eval_expr st frame b in
        VBool (do_cmp op true va vb)
    | ECmpI (op, a, b) ->
        let va = eval_expr st frame a in
        let vb = eval_expr st frame b in
        VBool (do_cmp op false va vb)
    | EHoisted { hslot; h_flops; h_sfu; h_dyn; horig } -> (
        match frame.(hslot) with
        | VFloat _ as v ->
            if h_dyn <> 0.0 then charge st h_dyn;
            if h_flops <> 0 then st.prof.flops <- st.prof.flops + h_flops;
            if h_sfu <> 0 then st.prof.sfu_ops <- st.prof.sfu_ops + h_sfu;
            v
        | _ ->
            let v = eval_expr st frame horig in
            frame.(hslot) <- v;
            v)

  and eval_user_call st idx args =
    (* the call's [Cost.call] cycles were batched by the caller's group
       (or charged by the entry point for the root call to [main]) *)
    let f = st.cprog.cfuncs.(idx) in
    if List.length args <> List.length f.cf_params then
      err "call to '%s' with wrong arity" f.cf_name;
    let frame = Array.make (max 1 f.cf_nslots) VUnit in
    List.iteri (fun i v -> frame.(f.cf_param_slots.(i)) <- v) args;
    let is_focus = idx = st.focus_idx && st.focus_depth = 0 in
    if is_focus then enter_focus st f args;
    let snapshot = counters_snapshot st in
    let result =
      try
        exec_block st frame f.cf_body;
        VUnit
      with Return_exc v -> v
    in
    if is_focus then exit_focus st snapshot;
    result

  and exec_stmt st frame (s : Resolve.stmt) =
    match s with
    | SHoistReset slots ->
        (* synthetic bookkeeping: free of fuel and cycles *)
        List.iter (fun i -> frame.(i) <- VUnit) slots
    | SFused { forig; _ } ->
        (* the walker is the semantic reference: always run the loop *)
        exec_stmt st frame forig
    | s -> exec_plain_stmt st frame s

  and exec_plain_stmt st frame (s : Resolve.stmt) =
    spend_fuel st;
    match s with
    | SDeclVar { slot; typ; init } ->
        let v =
          match init with
          | Some e -> coerce typ (eval_expr st frame e)
          | None -> Value.zero_of_typ typ
        in
        set_var st frame slot v
    | SDeclArr { slot; typ; name; size } ->
        let n = to_int (eval_expr st frame size) in
        set_var st frame slot (Memory.alloc st.mem ~name ~elem_typ:typ n)
    | SAssign { slot; aop; rhs } -> (
        let rhs = eval_expr st frame rhs in
        match aop with
        | Set -> set_var st frame slot rhs
        | _ ->
            set_var st frame slot
              (apply_assign st aop (get_var st frame slot) rhs))
    | SStore { arr; idx; aop; rhs } ->
        let rhs = eval_expr st frame rhs in
        let p = to_ptr (eval_expr st frame arr) in
        let i = to_int (eval_expr st frame idx) in
        let p = { p with off = p.off + i } in
        let v =
          if aop = Minic.Ast.Set then coerce_region st p rhs
          else apply_assign st aop (mem_load st p) rhs
        in
        mem_store st p v
    | SExpr e -> ignore (eval_expr st frame e)
    | SIf (c, b1, b2) ->
        if to_bool (eval_expr st frame c) then exec_block st frame b1
        else Option.iter (exec_block st frame) b2
    | SWhile { wsid; cond; body } ->
        let stat = Profile.loop_stat st.prof wsid in
        stat.invocations <- stat.invocations + 1;
        let t0 = cycles st in
        let trips = ref 0 in
        charge st Profile.Cost.branch;
        let rec loop () =
          charge st cond.ecost;
          if to_bool (eval_expr st frame cond) then (
            incr trips;
            stat.iterations <- stat.iterations + 1;
            spend_fuel st;
            charge st (Profile.Cost.loop_iter +. Profile.Cost.branch);
            exec_block st frame body;
            loop ())
        in
        loop ();
        stat.min_trip <- min stat.min_trip !trips;
        stat.max_trip <- max stat.max_trip !trips;
        stat.cycles <- stat.cycles +. (cycles st -. t0)
    | SFor { fsid; slot; init; bound; inclusive; step; body } ->
        let stat = Profile.loop_stat st.prof fsid in
        stat.invocations <- stat.invocations + 1;
        let t0 = cycles st in
        charge st init.ecost;
        let i0 = to_int (eval_expr st frame init) in
        set_var st frame slot (VInt i0);
        let trips = ref 0 in
        let continue_ () =
          charge st (Profile.Cost.branch +. bound.ecost);
          let b = to_int (eval_expr st frame bound) in
          let i = to_int (get_var st frame slot) in
          if inclusive then i <= b else i < b
        in
        while continue_ () do
          incr trips;
          stat.iterations <- stat.iterations + 1;
          spend_fuel st;
          charge st (Profile.Cost.loop_iter +. Profile.Cost.int_op);
          exec_block st frame body;
          charge st step.ecost;
          let stepv = to_int (eval_expr st frame step) in
          set_var st frame slot (VInt (to_int (get_var st frame slot) + stepv))
        done;
        stat.min_trip <- min stat.min_trip !trips;
        stat.max_trip <- max stat.max_trip !trips;
        stat.cycles <- stat.cycles +. (cycles st -. t0)
    | SReturn eo ->
        let v =
          match eo with Some e -> eval_expr st frame e | None -> VUnit
        in
        raise (Return_exc v)
    | SBlock b -> exec_block st frame b
    | SDrop { dtyp; drhs } -> (
        match drhs with
        | None -> ()
        | Some e -> (
            let v = eval_expr st frame e in
            match dtyp with Some t -> ignore (coerce t v) | None -> ()))
    | SHoistReset _ | SFused _ ->
        (* dispatched fuel-free by [exec_stmt] *)
        assert false

  and exec_group st frame (g : Resolve.group) =
    if g.gcost <> 0.0 then charge st g.gcost;
    List.iter (exec_stmt st frame) g.gstmts

  and exec_block st frame (b : Resolve.block) =
    List.iter (exec_group st frame) b
end

(* ================================================================== *)
(* Flat register-bytecode VM                                           *)
(* ================================================================== *)

module B = Bytecode

(* [PSAFLOW_NO_VM] kill switch, following the [Env.flag] grammar like
   [PSAFLOW_NO_OPT]: when set, {!run_compiled} dispatches to the PR-5
   threaded-code engine bit-for-bit. *)
let vm_enabled = ref (not (Flow_obs.Env.flag ~name:"PSAFLOW_NO_VM" ()))
let set_vm_enabled b = vm_enabled := b
let vm_is_enabled () = !vm_enabled

(* Domain budget for sharded kernel execution: explicit override (used
   by tests and the bench harness), then [PSAFLOW_VM_DOMAINS], then the
   machine (capped like [Flow_par.Pool]). *)
let vm_jobs_override : int option ref = ref None

let vm_jobs () =
  match !vm_jobs_override with
  | Some n -> max 1 n
  | None ->
      Flow_obs.Env.int ~name:"PSAFLOW_VM_DOMAINS"
        ~default:(min 8 (Domain.recommended_domain_count ()))
        ~min:1 ()

(* Minimum iteration count before a shardable kernel actually spawns
   domains — below this the fork/join overhead dominates. *)
let vm_shard_min = ref 65536

let while_iter_cost = Profile.Cost.loop_iter +. Profile.Cost.branch
let for_iter_cost = Profile.Cost.loop_iter +. Profile.Cost.int_op

let[@inline] vk_ld datas offs si =
  match
    Array.unsafe_get (Array.unsafe_get datas si) (Array.unsafe_get offs si)
  with
  | VFloat f -> f
  | v -> to_float v

let[@inline] vk_st datas offs si v =
  Array.unsafe_set (Array.unsafe_get datas si) (Array.unsafe_get offs si)
    (VFloat v)

(* Run [count] iterations of a fused kernel micro-program, starting at
   loop index [iv0] with site offsets [offs] (mutated in place).  Only
   the sites in [adv] (nonzero stride) advance.  Pure float/array code:
   all observable accounting was charged in bulk by the caller, so this
   is also the unit of work a shard executes on its own domain. *)
let vkern_iters (ops : B.kop array) (fregs : float array)
    (datas : Value.t array array) (offs : int array) (deltas : int array)
    (adv : int array) ~iv0 ~step ~count =
  let nops = Array.length ops in
  let nadv = Array.length adv in
  let iv = ref iv0 in
  for _ = 1 to count do
    for pc = 0 to nops - 1 do
      match Array.unsafe_get ops pc with
      | B.OLit (d, x) -> Array.unsafe_set fregs d x
      | B.OMov (d, a) -> Array.unsafe_set fregs d (Array.unsafe_get fregs a)
      | B.OAdd (d, a, b) ->
          Array.unsafe_set fregs d
            (Array.unsafe_get fregs a +. Array.unsafe_get fregs b)
      | B.OSub (d, a, b) ->
          Array.unsafe_set fregs d
            (Array.unsafe_get fregs a -. Array.unsafe_get fregs b)
      | B.OMul (d, a, b) ->
          Array.unsafe_set fregs d
            (Array.unsafe_get fregs a *. Array.unsafe_get fregs b)
      | B.ODiv (d, a, b) ->
          Array.unsafe_set fregs d
            (Array.unsafe_get fregs a /. Array.unsafe_get fregs b)
      | B.ONeg (d, a) -> Array.unsafe_set fregs d (-.Array.unsafe_get fregs a)
      | B.OItoF d -> Array.unsafe_set fregs d (float_of_int !iv)
      | B.OMath1 (d, g, a) ->
          Array.unsafe_set fregs d (g (Array.unsafe_get fregs a))
      | B.OMath2 (d, g, a, b) ->
          Array.unsafe_set fregs d
            (g (Array.unsafe_get fregs a) (Array.unsafe_get fregs b))
      | B.OLoad (d, si) -> Array.unsafe_set fregs d (vk_ld datas offs si)
      | B.OStore (si, r) -> vk_st datas offs si (Array.unsafe_get fregs r)
      | B.OStoreAdd (si, r) ->
          vk_st datas offs si (vk_ld datas offs si +. Array.unsafe_get fregs r)
      | B.OStoreSub (si, r) ->
          vk_st datas offs si (vk_ld datas offs si -. Array.unsafe_get fregs r)
      | B.OStoreMul (si, r) ->
          vk_st datas offs si (vk_ld datas offs si *. Array.unsafe_get fregs r)
      | B.OStoreDiv (si, r) ->
          vk_st datas offs si (vk_ld datas offs si /. Array.unsafe_get fregs r)
      | B.OLAddA (d, s, b) ->
          Array.unsafe_set fregs d
            (vk_ld datas offs s +. Array.unsafe_get fregs b)
      | B.OLAddB (d, a, s) ->
          Array.unsafe_set fregs d
            (Array.unsafe_get fregs a +. vk_ld datas offs s)
      | B.OLSubA (d, s, b) ->
          Array.unsafe_set fregs d
            (vk_ld datas offs s -. Array.unsafe_get fregs b)
      | B.OLSubB (d, a, s) ->
          Array.unsafe_set fregs d
            (Array.unsafe_get fregs a -. vk_ld datas offs s)
      | B.OLMulA (d, s, b) ->
          Array.unsafe_set fregs d
            (vk_ld datas offs s *. Array.unsafe_get fregs b)
      | B.OLMulB (d, a, s) ->
          Array.unsafe_set fregs d
            (Array.unsafe_get fregs a *. vk_ld datas offs s)
      | B.OLDivA (d, s, b) ->
          Array.unsafe_set fregs d
            (vk_ld datas offs s /. Array.unsafe_get fregs b)
      | B.OLDivB (d, a, s) ->
          Array.unsafe_set fregs d
            (Array.unsafe_get fregs a /. vk_ld datas offs s)
      | B.OAddAddA (d, a, b, c) ->
          Array.unsafe_set fregs d
            (Array.unsafe_get fregs a +. Array.unsafe_get fregs b
            +. Array.unsafe_get fregs c)
      | B.OAddAddB (d, a, b, c) ->
          Array.unsafe_set fregs d
            (Array.unsafe_get fregs c
            +. (Array.unsafe_get fregs a +. Array.unsafe_get fregs b))
      | B.OAddSubA (d, a, b, c) ->
          Array.unsafe_set fregs d
            (Array.unsafe_get fregs a +. Array.unsafe_get fregs b
            -. Array.unsafe_get fregs c)
      | B.OAddSubB (d, a, b, c) ->
          Array.unsafe_set fregs d
            (Array.unsafe_get fregs c
            -. (Array.unsafe_get fregs a +. Array.unsafe_get fregs b))
      | B.OAddMulA (d, a, b, c) ->
          Array.unsafe_set fregs d
            ((Array.unsafe_get fregs a +. Array.unsafe_get fregs b)
            *. Array.unsafe_get fregs c)
      | B.OAddMulB (d, a, b, c) ->
          Array.unsafe_set fregs d
            (Array.unsafe_get fregs c
            *. (Array.unsafe_get fregs a +. Array.unsafe_get fregs b))
      | B.OSubAddA (d, a, b, c) ->
          Array.unsafe_set fregs d
            (Array.unsafe_get fregs a -. Array.unsafe_get fregs b
            +. Array.unsafe_get fregs c)
      | B.OSubAddB (d, a, b, c) ->
          Array.unsafe_set fregs d
            (Array.unsafe_get fregs c
            +. (Array.unsafe_get fregs a -. Array.unsafe_get fregs b))
      | B.OSubSubA (d, a, b, c) ->
          Array.unsafe_set fregs d
            (Array.unsafe_get fregs a -. Array.unsafe_get fregs b
            -. Array.unsafe_get fregs c)
      | B.OSubSubB (d, a, b, c) ->
          Array.unsafe_set fregs d
            (Array.unsafe_get fregs c
            -. (Array.unsafe_get fregs a -. Array.unsafe_get fregs b))
      | B.OSubMulA (d, a, b, c) ->
          Array.unsafe_set fregs d
            ((Array.unsafe_get fregs a -. Array.unsafe_get fregs b)
            *. Array.unsafe_get fregs c)
      | B.OSubMulB (d, a, b, c) ->
          Array.unsafe_set fregs d
            (Array.unsafe_get fregs c
            *. (Array.unsafe_get fregs a -. Array.unsafe_get fregs b))
      | B.OMulAddA (d, a, b, c) ->
          Array.unsafe_set fregs d
            ((Array.unsafe_get fregs a *. Array.unsafe_get fregs b)
            +. Array.unsafe_get fregs c)
      | B.OMulAddB (d, a, b, c) ->
          Array.unsafe_set fregs d
            (Array.unsafe_get fregs c
            +. (Array.unsafe_get fregs a *. Array.unsafe_get fregs b))
      | B.OMulSubA (d, a, b, c) ->
          Array.unsafe_set fregs d
            ((Array.unsafe_get fregs a *. Array.unsafe_get fregs b)
            -. Array.unsafe_get fregs c)
      | B.OMulSubB (d, a, b, c) ->
          Array.unsafe_set fregs d
            (Array.unsafe_get fregs c
            -. (Array.unsafe_get fregs a *. Array.unsafe_get fregs b))
      | B.OMulMulA (d, a, b, c) ->
          Array.unsafe_set fregs d
            (Array.unsafe_get fregs a *. Array.unsafe_get fregs b
            *. Array.unsafe_get fregs c)
      | B.OMulMulB (d, a, b, c) ->
          Array.unsafe_set fregs d
            (Array.unsafe_get fregs c
            *. (Array.unsafe_get fregs a *. Array.unsafe_get fregs b))
      | B.OGDiv (d, g, a, q) ->
          Array.unsafe_set fregs d
            (g (Array.unsafe_get fregs a) /. Array.unsafe_get fregs q)
      | B.ODivG (d, p, g, a) ->
          Array.unsafe_set fregs d
            (Array.unsafe_get fregs p /. g (Array.unsafe_get fregs a))
      | B.OGMul (d, g, a, q) ->
          Array.unsafe_set fregs d
            (g (Array.unsafe_get fregs a) *. Array.unsafe_get fregs q)
      | B.OMulG (d, p, g, a) ->
          Array.unsafe_set fregs d
            (Array.unsafe_get fregs p *. g (Array.unsafe_get fregs a))
      | B.OAddStore (s, a, b) ->
          vk_st datas offs s
            (Array.unsafe_get fregs a +. Array.unsafe_get fregs b)
      | B.OSubStore (s, a, b) ->
          vk_st datas offs s
            (Array.unsafe_get fregs a -. Array.unsafe_get fregs b)
      | B.OMulStore (s, a, b) ->
          vk_st datas offs s
            (Array.unsafe_get fregs a *. Array.unsafe_get fregs b)
      | B.ODivStore (s, a, b) ->
          vk_st datas offs s
            (Array.unsafe_get fregs a /. Array.unsafe_get fregs b)
      | B.OMulMulAdd (d, a, b, p, q) ->
          Array.unsafe_set fregs d
            ((Array.unsafe_get fregs a *. Array.unsafe_get fregs b)
            +. (Array.unsafe_get fregs p *. Array.unsafe_get fregs q))
      | B.ODot3 (d, a, b, p, q, x, y) ->
          Array.unsafe_set fregs d
            ((Array.unsafe_get fregs a *. Array.unsafe_get fregs b)
            +. (Array.unsafe_get fregs p *. Array.unsafe_get fregs q)
            +. (Array.unsafe_get fregs x *. Array.unsafe_get fregs y))
      | B.ODot3Add (d, a, b, p, q, x, y, e) ->
          Array.unsafe_set fregs d
            ((Array.unsafe_get fregs a *. Array.unsafe_get fregs b)
            +. (Array.unsafe_get fregs p *. Array.unsafe_get fregs q)
            +. (Array.unsafe_get fregs x *. Array.unsafe_get fregs y)
            +. Array.unsafe_get fregs e)
    done;
    for j = 0 to nadv - 1 do
      let si = Array.unsafe_get adv j in
      Array.unsafe_set offs si
        (Array.unsafe_get offs si + Array.unsafe_get deltas si)
    done;
    iv := !iv + step
  done

(* Specialized-kernel execution for the VM.  The entry protocol, the
   bulk accounting and every [Kernel_unfit] abort point are copied
   verbatim from the threaded engine's [ckernel]; only the committed
   body differs — the fused micro-program runs instead of the kinstr
   loop (and, when safe, is split across domains).  The focus-tracking
   path needs per-access hooks in generic order, so it runs the
   original kinstr body exactly like [ckernel]. *)
let vkernel st ~track fr lidx (kp : B.kprog) =
  let k = kp.B.kp_kern in
  let iter_cost = Profile.Cost.loop_iter +. Profile.Cost.int_op in
  let per_iter =
    k.Resolve.k_bcost +. iter_cost +. k.Resolve.k_gcost
    +. k.Resolve.k_dyn_cycles +. k.Resolve.k_scost
  in
  let body = k.Resolve.k_body in
  let nbody = Array.length body in
  let nsites = Array.length k.Resolve.k_sites in
  let loads_per_iter = Array.fold_left ( + ) 0 k.Resolve.k_site_loads in
  let stores_per_iter = Array.fold_left ( + ) 0 k.Resolve.k_site_stores in
  let fuel_per_iter = 1 + k.Resolve.k_nstmts in
  let rec ieval iv (ie : Resolve.iexpr) =
    match ie with
    | Resolve.ILit n -> n
    | Resolve.IIdx -> iv
    | Resolve.ISlot i -> (
        match Array.unsafe_get fr i with
        | VInt n -> n
        | VBool b -> if b then 1 else 0
        | VFloat _ | VUnit | VPtr _ -> raise Kernel_unfit)
    | Resolve.IAdd (a, b) -> ieval iv a + ieval iv b
    | Resolve.ISub (a, b) -> ieval iv a - ieval iv b
    | Resolve.IMul (a, b) -> ieval iv a * ieval iv b
    | Resolve.INeg a -> -ieval iv a
  in
  let i0 = ieval 0 k.Resolve.k_init in
  let b = ieval 0 k.Resolve.k_bound in
  let s = ieval 0 k.Resolve.k_step in
  let sane v = -0x4000_0000_0000 < v && v < 0x4000_0000_0000 in
  if s <= 0 || not (sane i0 && sane b && sane s) then raise Kernel_unfit;
  let n =
    if k.Resolve.k_inclusive then if i0 <= b then ((b - i0) / s) + 1 else 0
    else if i0 < b then (b - i0 + s - 1) / s
    else 0
  in
  if n >= st.fuel then raise Kernel_unfit;
  let fuel_used = 1 + (n * fuel_per_iter) in
  if st.fuel <= fuel_used then raise Kernel_unfit;
  if n = 0 then (
    st.fuel <- st.fuel - 1;
    let stat = cached_loop_stat st lidx k.Resolve.k_fsid in
    stat.invocations <- stat.invocations + 1;
    let t0 = cycles st in
    charge st (k.Resolve.k_icost +. k.Resolve.k_bcost);
    st.prof.int_ops <-
      st.prof.int_ops + k.Resolve.k_init_int_ops + k.Resolve.k_bound_int_ops;
    Array.unsafe_set fr k.Resolve.k_idx_slot (VInt i0);
    stat.min_trip <- min stat.min_trip 0;
    stat.max_trip <- max stat.max_trip 0;
    stat.cycles <- stat.cycles +. (cycles st -. t0))
  else (
    let datas = Array.make nsites [||] in
    let offs = Array.make nsites 0 in
    let deltas = Array.make nsites 0 in
    let elems = Array.make nsites 0 in
    let ids = Array.make nsites 0 in
    let bytes_r = ref 0 and bytes_w = ref 0 in
    for si = 0 to nsites - 1 do
      let site = k.Resolve.k_sites.(si) in
      match Array.unsafe_get fr site.Resolve.ks_base with
      | VPtr p ->
          if p.mem_id < 0 || p.mem_id >= st.mem.Memory.next_id then
            raise Kernel_unfit;
          let r = Array.unsafe_get st.mem.Memory.regions p.mem_id in
          (match r.Memory.elem_typ with
          | Minic.Ast.Tfloat | Minic.Ast.Tdouble -> ()
          | _ -> raise Kernel_unfit);
          let len = Array.length r.Memory.data in
          let o0 = p.off + ieval i0 site.Resolve.ks_idx in
          let olast =
            p.off + ieval (i0 + ((n - 1) * s)) site.Resolve.ks_idx
          in
          if o0 < 0 || o0 >= len || olast < 0 || olast >= len then
            raise Kernel_unfit;
          datas.(si) <- r.Memory.data;
          offs.(si) <- o0;
          deltas.(si) <-
            (if n > 1 then p.off + ieval (i0 + s) site.Resolve.ks_idx - o0
             else 0);
          elems.(si) <- r.Memory.elem_bytes;
          ids.(si) <- p.mem_id;
          bytes_r :=
            !bytes_r + (k.Resolve.k_site_loads.(si) * r.Memory.elem_bytes);
          bytes_w :=
            !bytes_w + (k.Resolve.k_site_stores.(si) * r.Memory.elem_bytes)
      | _ -> raise Kernel_unfit
    done;
    let fregs = Array.make (max 1 k.Resolve.k_nfregs) 0.0 in
    Array.iter
      (fun (slot, reg) ->
        match Array.unsafe_get fr slot with
        | VFloat f -> Array.unsafe_set fregs reg f
        | VInt n -> Array.unsafe_set fregs reg (float_of_int n)
        | VBool b -> Array.unsafe_set fregs reg (if b then 1.0 else 0.0)
        | VUnit | VPtr _ -> raise Kernel_unfit)
      k.Resolve.k_in;
    (* ---- committed: bulk accounting on the calling domain, exactly
       like [ckernel] — execution below moves no observable, so the
       profile is bit-identical for any shard count ---- *)
    st.fuel <- st.fuel - fuel_used;
    let stat = cached_loop_stat st lidx k.Resolve.k_fsid in
    stat.invocations <- stat.invocations + 1;
    let t0 = cycles st in
    let total =
      k.Resolve.k_icost +. k.Resolve.k_bcost +. (float_of_int n *. per_iter)
    in
    charge st total;
    st.bulk_cycles <- st.bulk_cycles +. total;
    st.prof.int_ops <-
      st.prof.int_ops + k.Resolve.k_init_int_ops
      + ((n + 1) * k.Resolve.k_bound_int_ops)
      + (n * (k.Resolve.k_step_int_ops + k.Resolve.k_int_ops));
    st.prof.flops <- st.prof.flops + (n * k.Resolve.k_flops);
    if k.Resolve.k_sfu > 0 then
      st.prof.sfu_ops <- st.prof.sfu_ops + (n * k.Resolve.k_sfu);
    if loads_per_iter > 0 then (
      st.prof.loads <- st.prof.loads + (n * loads_per_iter);
      st.prof.bytes_read <- st.prof.bytes_read + (n * !bytes_r));
    if stores_per_iter > 0 then (
      st.prof.stores <- st.prof.stores + (n * stores_per_iter);
      st.prof.bytes_written <- st.prof.bytes_written + (n * !bytes_w));
    stat.iterations <- stat.iterations + n;
    let do_track = track && st.focus_depth > 0 in
    if do_track then (
      (* focus tracking: run the original kinstr body with per-access
         hooks in generic order, verbatim from [ckernel] *)
      let rmw fop si r =
        let off = Array.unsafe_get offs si in
        let data = Array.unsafe_get datas si in
        let old =
          match Array.unsafe_get data off with
          | VFloat f -> f
          | v -> to_float v
        in
        track_focus_access st ~write:false (Array.unsafe_get ids si) off
          (Array.unsafe_get elems si);
        Array.unsafe_set data off
          (VFloat (fop old (Array.unsafe_get fregs r)));
        track_focus_access st ~write:true (Array.unsafe_get ids si) off
          (Array.unsafe_get elems si)
      in
      let iv = ref i0 in
      for _ = 1 to n do
        for pc = 0 to nbody - 1 do
          match Array.unsafe_get body pc with
          | Resolve.KLit (d, x) -> Array.unsafe_set fregs d x
          | Resolve.KMov (d, a) ->
              Array.unsafe_set fregs d (Array.unsafe_get fregs a)
          | Resolve.KAdd (d, a, b) ->
              Array.unsafe_set fregs d
                (Array.unsafe_get fregs a +. Array.unsafe_get fregs b)
          | Resolve.KSub (d, a, b) ->
              Array.unsafe_set fregs d
                (Array.unsafe_get fregs a -. Array.unsafe_get fregs b)
          | Resolve.KMul (d, a, b) ->
              Array.unsafe_set fregs d
                (Array.unsafe_get fregs a *. Array.unsafe_get fregs b)
          | Resolve.KDiv (d, a, b) ->
              Array.unsafe_set fregs d
                (Array.unsafe_get fregs a /. Array.unsafe_get fregs b)
          | Resolve.KNeg (d, a) ->
              Array.unsafe_set fregs d (-.Array.unsafe_get fregs a)
          | Resolve.KItoF d -> Array.unsafe_set fregs d (float_of_int !iv)
          | Resolve.KMath1 (d, g, a) ->
              Array.unsafe_set fregs d (g (Array.unsafe_get fregs a))
          | Resolve.KMath2 (d, g, a, b) ->
              Array.unsafe_set fregs d
                (g (Array.unsafe_get fregs a) (Array.unsafe_get fregs b))
          | Resolve.KLoad (d, si) ->
              let off = Array.unsafe_get offs si in
              (match Array.unsafe_get (Array.unsafe_get datas si) off with
              | VFloat f -> Array.unsafe_set fregs d f
              | v -> Array.unsafe_set fregs d (to_float v));
              track_focus_access st ~write:false (Array.unsafe_get ids si)
                off (Array.unsafe_get elems si)
          | Resolve.KStore (si, r) ->
              let off = Array.unsafe_get offs si in
              Array.unsafe_set (Array.unsafe_get datas si) off
                (VFloat (Array.unsafe_get fregs r));
              track_focus_access st ~write:true (Array.unsafe_get ids si) off
                (Array.unsafe_get elems si)
          | Resolve.KStoreAdd (si, r) -> rmw ( +. ) si r
          | Resolve.KStoreSub (si, r) -> rmw ( -. ) si r
          | Resolve.KStoreMul (si, r) -> rmw ( *. ) si r
          | Resolve.KStoreDiv (si, r) -> rmw ( /. ) si r
        done;
        for si = 0 to nsites - 1 do
          Array.unsafe_set offs si
            (Array.unsafe_get offs si + Array.unsafe_get deltas si)
        done;
        iv := !iv + s
      done)
    else (
      (* fused micro-program: entry banks first, then the iterations *)
      Array.iter
        (fun (d, x) -> Array.unsafe_set fregs d x)
        kp.B.kp_lits;
      Array.iter
        (fun (d, si) -> Array.unsafe_set fregs d (vk_ld datas offs si))
        kp.B.kp_prefetch;
      let nadv = ref 0 in
      for si = 0 to nsites - 1 do
        if deltas.(si) <> 0 then incr nadv
      done;
      let adv = Array.make !nadv 0 in
      let j = ref 0 in
      for si = 0 to nsites - 1 do
        if deltas.(si) <> 0 then (
          adv.(!j) <- si;
          incr j)
      done;
      (* runtime shard check: every stored region must advance every
         iteration and be touched only through sites with the same
         offset sequence, so iterations own disjoint elements *)
      let shard_ok = ref (kp.B.kp_shardable && n >= !vm_shard_min) in
      let nj = if !shard_ok then vm_jobs () else 1 in
      if nj <= 1 then shard_ok := false;
      if !shard_ok then
        for si = 0 to nsites - 1 do
          if k.Resolve.k_site_stores.(si) > 0 then
            if deltas.(si) = 0 then shard_ok := false
            else
              for sj = 0 to nsites - 1 do
                if
                  sj <> si
                  && ids.(sj) = ids.(si)
                  && not (offs.(sj) = offs.(si) && deltas.(sj) = deltas.(si))
                then shard_ok := false
              done
        done;
      if !shard_ok then (
        let nshards = min nj n in
        let base = n / nshards and rem = n mod nshards in
        let chunks =
          List.init nshards (fun ci ->
              let lo = (ci * base) + min ci rem in
              let sz = base + if ci < rem then 1 else 0 in
              (lo, sz))
        in
        let results =
          Flow_par.Pool.map ~jobs:nshards
            (fun (lo, sz) ->
              let fregs_c = Array.copy fregs in
              let offs_c = Array.make nsites 0 in
              for si = 0 to nsites - 1 do
                offs_c.(si) <- offs.(si) + (lo * deltas.(si))
              done;
              vkern_iters kp.B.kp_ops fregs_c datas offs_c deltas adv
                ~iv0:(i0 + (lo * s)) ~step:s ~count:sz;
              fregs_c)
            chunks
        in
        (* with no loop-carried register dependence, the registers
           after the last iteration are exactly the last chunk's: every
           freg is either an entry value (identical in all chunks) or
           written by the final iteration *)
        (match List.rev results with
        | last :: _ -> Array.blit last 0 fregs 0 (Array.length fregs)
        | [] -> ());
        Flow_obs.Metrics.incr Flow_obs.Metrics.global "vm_sharded_kernels";
        Flow_obs.Metrics.observe Flow_obs.Metrics.global "vm_shard_width"
          (float_of_int nshards))
      else
        vkern_iters kp.B.kp_ops fregs datas offs deltas adv ~iv0:i0 ~step:s
          ~count:n);
    Array.iter
      (fun (slot, reg) ->
        Array.unsafe_set fr slot (VFloat (Array.unsafe_get fregs reg)))
      k.Resolve.k_out;
    Array.unsafe_set fr k.Resolve.k_idx_slot (VInt (i0 + (n * s)));
    stat.min_trip <- min stat.min_trip n;
    stat.max_trip <- max stat.max_trip n;
    stat.cycles <- stat.cycles +. (cycles st -. t0))

(* VM driver: a flat tail-recursive dispatch loop over the instruction
   array.  Every arm replays the matching threaded-engine closure's
   charges, counter bumps, fuel spends and error points — the test
   suite asserts fingerprint identity against both engines. *)

let vset_slot st regs (slot : Resolve.var_ref) v =
  match slot with
  | Resolve.Local i -> Array.unsafe_set regs i v
  | Resolve.Global g -> Array.unsafe_set st.garray g v
  | Resolve.Unbound n -> err "undefined variable '%s'" n

let vget_slot st regs (slot : Resolve.var_ref) =
  match slot with
  | Resolve.Local i -> Array.unsafe_get regs i
  | Resolve.Global g -> Array.unsafe_get st.garray g
  | Resolve.Unbound n -> err "undefined variable '%s'" n

let rec vrun st (bp : B.program) ~track (code : B.instr array)
    (regs : Value.t array) (si : int array) (sf : float array) : Value.t =
  let load_at = if track then load_r_tracked else load_r in
  let store_at = if track then store_r_tracked else store_r in
  let rec go pc =
    match Array.unsafe_get code pc with
    | B.IFuel ->
        spend_fuel st;
        go (pc + 1)
    | B.ICharge c ->
        charge st c;
        go (pc + 1)
    | B.IJmp t -> go t
    | B.IJmpFalse (src, tgt) ->
        if to_bool (Array.unsafe_get regs src) then go (pc + 1) else go tgt
    | B.IBrCmp { op; kind; a; b; tgt } ->
        let va = Array.unsafe_get regs a and vb = Array.unsafe_get regs b in
        let fl =
          match kind with
          | B.KDyn -> is_float va || is_float vb
          | B.KFlt -> true
          | B.KInt -> false
        in
        if do_cmp op fl va vb then go (pc + 1) else go tgt
    | B.IMov (d, a) ->
        Array.unsafe_set regs d (Array.unsafe_get regs a);
        go (pc + 1)
    | B.IGetG (d, g) ->
        Array.unsafe_set regs d (Array.unsafe_get st.garray g);
        go (pc + 1)
    | B.ISetG (g, src) ->
        Array.unsafe_set st.garray g (Array.unsafe_get regs src);
        go (pc + 1)
    | B.IErrVar n -> err "undefined variable '%s'" n
    | B.IErrMsg m -> raise (Value.Runtime_error m)
    | B.IFailHd -> raise (Failure "hd")
    | B.INeg (d, a) ->
        (match Array.unsafe_get regs a with
        | VInt n -> Array.unsafe_set regs d (VInt (-n))
        | VFloat f ->
            st.prof.flops <- st.prof.flops + 1;
            Array.unsafe_set regs d (VFloat (-.f))
        | _ -> err "negation of a non-numeric value");
        go (pc + 1)
    | B.INot (d, a) ->
        Array.unsafe_set regs d
          (vbool (not (to_bool (Array.unsafe_get regs a))));
        go (pc + 1)
    | B.IArith { op; fresid; d; a; b } ->
        Array.unsafe_set regs d
          (do_arith st op fresid (Array.unsafe_get regs a)
             (Array.unsafe_get regs b));
        go (pc + 1)
    | B.IArithF { op; fresid; d; a; b } ->
        let va = Array.unsafe_get regs a and vb = Array.unsafe_get regs b in
        if fresid <> 0.0 then charge st fresid;
        st.prof.flops <- st.prof.flops + 1;
        Array.unsafe_set regs d
          (match op with
          | Minic.Ast.Add -> VFloat (to_float va +. to_float vb)
          | Minic.Ast.Sub -> VFloat (to_float va -. to_float vb)
          | Minic.Ast.Mul -> VFloat (to_float va *. to_float vb)
          | _ -> assert false);
        go (pc + 1)
    | B.IArithI { op; d; a; b } ->
        let va = Array.unsafe_get regs a and vb = Array.unsafe_get regs b in
        st.prof.int_ops <- st.prof.int_ops + 1;
        Array.unsafe_set regs d
          (match op with
          | Minic.Ast.Add -> VInt (to_int va + to_int vb)
          | Minic.Ast.Sub -> VInt (to_int va - to_int vb)
          | Minic.Ast.Mul -> VInt (to_int va * to_int vb)
          | _ -> assert false);
        go (pc + 1)
    | B.IDiv (d, a, b) ->
        Array.unsafe_set regs d
          (do_div st (Array.unsafe_get regs a) (Array.unsafe_get regs b));
        go (pc + 1)
    | B.IDivF (d, a, b) ->
        let va = Array.unsafe_get regs a and vb = Array.unsafe_get regs b in
        charge st Profile.Cost.float_div;
        st.prof.flops <- st.prof.flops + 1;
        Array.unsafe_set regs d (VFloat (to_float va /. to_float vb));
        go (pc + 1)
    | B.IDivI (d, a, b) ->
        let va = Array.unsafe_get regs a and vb = Array.unsafe_get regs b in
        charge st Profile.Cost.int_op;
        st.prof.int_ops <- st.prof.int_ops + 1;
        let dv = to_int vb in
        if dv = 0 then err "integer division by zero";
        Array.unsafe_set regs d (VInt (to_int va / dv));
        go (pc + 1)
    | B.IMod (d, a, b) ->
        Array.unsafe_set regs d
          (do_mod st (Array.unsafe_get regs a) (Array.unsafe_get regs b));
        go (pc + 1)
    | B.ICmp { op; kind; d; a; b } ->
        let va = Array.unsafe_get regs a and vb = Array.unsafe_get regs b in
        let fl =
          match kind with
          | B.KDyn -> is_float va || is_float vb
          | B.KFlt -> true
          | B.KInt -> false
        in
        Array.unsafe_set regs d (vbool (do_cmp op fl va vb));
        go (pc + 1)
    | B.ICastI (d, a) ->
        Array.unsafe_set regs d (VInt (to_int (Array.unsafe_get regs a)));
        go (pc + 1)
    | B.ICastF (d, a) ->
        Array.unsafe_set regs d (VFloat (to_float (Array.unsafe_get regs a)));
        go (pc + 1)
    | B.ICastB (d, a) ->
        Array.unsafe_set regs d (vbool (to_bool (Array.unsafe_get regs a)));
        go (pc + 1)
    | B.IIndex { d; a; i } ->
        let p = to_ptr (Array.unsafe_get regs a) in
        let ii = to_int (Array.unsafe_get regs i) in
        Array.unsafe_set regs d
          (load_at st (Memory.region st.mem p.mem_id) (p.off + ii));
        go (pc + 1)
    | B.IFolded { d; fval; f_flops; f_int_ops; f_dyn } ->
        if f_dyn <> 0.0 then charge st f_dyn;
        if f_flops <> 0 then st.prof.flops <- st.prof.flops + f_flops;
        if f_int_ops <> 0 then st.prof.int_ops <- st.prof.int_ops + f_int_ops;
        Array.unsafe_set regs d fval;
        go (pc + 1)
    | B.IHoisted { glob; hslot; h_flops; h_sfu; h_dyn; d; tgt } -> (
        let bank = if glob then st.garray else regs in
        match Array.unsafe_get bank hslot with
        | VFloat _ as v ->
            if h_dyn <> 0.0 then charge st h_dyn;
            if h_flops <> 0 then st.prof.flops <- st.prof.flops + h_flops;
            if h_sfu <> 0 then st.prof.sfu_ops <- st.prof.sfu_ops + h_sfu;
            Array.unsafe_set regs d v;
            go tgt
        | _ -> go (pc + 1))
    | B.IHoistSave { glob; hslot; d; src } ->
        let v = Array.unsafe_get regs src in
        (if glob then st.garray else regs).(hslot) <- v;
        Array.unsafe_set regs d v;
        go (pc + 1)
    | B.IHoistReset { glob; slots } ->
        let bank = if glob then st.garray else regs in
        Array.iter (fun i -> Array.unsafe_set bank i VUnit) slots;
        go (pc + 1)
    | B.IAndTest { d; src; bcost; tgt } ->
        if to_bool (Array.unsafe_get regs src) then (
          charge st bcost;
          go (pc + 1))
        else (
          Array.unsafe_set regs d vfalse;
          go tgt)
    | B.IOrTest { d; src; bcost; tgt } ->
        if to_bool (Array.unsafe_get regs src) then (
          Array.unsafe_set regs d vtrue;
          go tgt)
        else (
          charge st bcost;
          go (pc + 1))
    | B.ICallUser { d; fidx; args } ->
        Array.unsafe_set regs d (vcall st bp ~track fidx args regs);
        go (pc + 1)
    | B.IMath1 { d; g; mflops; a } ->
        let v = Array.unsafe_get regs a in
        st.prof.sfu_ops <- st.prof.sfu_ops + 1;
        st.prof.flops <- st.prof.flops + mflops;
        Array.unsafe_set regs d (VFloat (g (to_float v)));
        go (pc + 1)
    | B.IMath2 { d; g; mflops; a; b } ->
        let va = Array.unsafe_get regs a and vb = Array.unsafe_get regs b in
        st.prof.sfu_ops <- st.prof.sfu_ops + 1;
        st.prof.flops <- st.prof.flops + mflops;
        Array.unsafe_set regs d (VFloat (g (to_float va) (to_float vb)));
        go (pc + 1)
    | B.IMathGen { d; mimpl; mflops; args } ->
        st.prof.sfu_ops <- st.prof.sfu_ops + 1;
        st.prof.flops <- st.prof.flops + mflops;
        (match (mimpl, Array.length args) with
        | Resolve.M1 g, n when n >= 1 ->
            Array.unsafe_set regs d
              (VFloat (g (to_float (Array.unsafe_get regs args.(0)))))
        | Resolve.M2 g, n when n >= 2 ->
            Array.unsafe_set regs d
              (VFloat
                 (g
                    (to_float (Array.unsafe_get regs args.(0)))
                    (to_float (Array.unsafe_get regs args.(1)))))
        | _ -> err "math builtin called with too few arguments");
        go (pc + 1)
    | B.IRand01 d ->
        Array.unsafe_set regs d (VFloat (rand01 st));
        go (pc + 1)
    | B.IRandInt (d, a) ->
        Array.unsafe_set regs d
          (VInt (rand_int st (to_int (Array.unsafe_get regs a))));
        go (pc + 1)
    | B.IPrintInt src ->
        Buffer.add_string st.out
          (string_of_int (to_int (Array.unsafe_get regs src)) ^ "\n");
        go (pc + 1)
    | B.IPrintFloat src ->
        Buffer.add_string st.out
          (Printf.sprintf "%.6g\n" (to_float (Array.unsafe_get regs src)));
        go (pc + 1)
    | B.ITimerStart src ->
        let v = Array.unsafe_get regs src in
        sync_cycles st;
        Profile.timer_start st.prof (to_int v);
        go (pc + 1)
    | B.ITimerStop src ->
        let v = Array.unsafe_get regs src in
        sync_cycles st;
        Profile.timer_stop st.prof (to_int v);
        go (pc + 1)
    | B.IAlloc { d; typ; name; src } ->
        let n = to_int (Array.unsafe_get regs src) in
        Array.unsafe_set regs d (Memory.alloc st.mem ~name ~elem_typ:typ n);
        go (pc + 1)
    | B.IApplyAssign { d; aop; old; rhs } ->
        Array.unsafe_set regs d
          (apply_assign st aop (Array.unsafe_get regs old)
             (Array.unsafe_get regs rhs));
        go (pc + 1)
    | B.IStore { arr; idx; src } ->
        let rhs = Array.unsafe_get regs src in
        let p = to_ptr (Array.unsafe_get regs arr) in
        let i = to_int (Array.unsafe_get regs idx) in
        let r = Memory.region st.mem p.mem_id in
        store_at st r (p.off + i) (coerce r.elem_typ rhs);
        go (pc + 1)
    | B.IStoreOp { aop; arr; idx; src } ->
        let rhs = Array.unsafe_get regs src in
        let p = to_ptr (Array.unsafe_get regs arr) in
        let i = to_int (Array.unsafe_get regs idx) in
        let r = Memory.region st.mem p.mem_id in
        let off = p.off + i in
        let v = apply_assign st aop (load_at st r off) rhs in
        store_at st r off v;
        go (pc + 1)
    | B.IDropChk { co; src } ->
        let v = Array.unsafe_get regs src in
        (match co with
        | Minic.Ast.Tint -> ignore (to_int v)
        | Minic.Ast.Tfloat | Minic.Ast.Tdouble -> ignore (to_float v)
        | Minic.Ast.Tbool -> ignore (to_bool v)
        | _ -> ());
        go (pc + 1)
    | B.IRet src -> Array.unsafe_get regs src
    | B.IRetRaise src -> raise (Return_exc (Array.unsafe_get regs src))
    | B.ILoopEnterW { lidx; sid; t0; trips } ->
        let stat = cached_loop_stat st lidx sid in
        stat.invocations <- stat.invocations + 1;
        Array.unsafe_set sf t0 (cycles st);
        Array.unsafe_set si trips 0;
        charge st Profile.Cost.branch;
        go (pc + 1)
    | B.ILoopEnterF { lidx; sid; t0; trips; icost } ->
        let stat = cached_loop_stat st lidx sid in
        stat.invocations <- stat.invocations + 1;
        Array.unsafe_set sf t0 (cycles st);
        charge st icost;
        Array.unsafe_set si trips 0;
        go (pc + 1)
    | B.IWhileIter { src; lidx; sid; trips; tgt } ->
        if to_bool (Array.unsafe_get regs src) then (
          Array.unsafe_set si trips (Array.unsafe_get si trips + 1);
          let stat = cached_loop_stat st lidx sid in
          stat.iterations <- stat.iterations + 1;
          spend_fuel st;
          charge st while_iter_cost;
          go (pc + 1))
        else go tgt
    | B.IForInit { slot; src } ->
        vset_slot st regs slot (VInt (to_int (Array.unsafe_get regs src)));
        go (pc + 1)
    | B.IForTest { slot; bound; inclusive; lidx; sid; trips; tgt } ->
        let b = to_int (Array.unsafe_get regs bound) in
        let i = to_int (vget_slot st regs slot) in
        if if inclusive then i <= b else i < b then (
          Array.unsafe_set si trips (Array.unsafe_get si trips + 1);
          let stat = cached_loop_stat st lidx sid in
          stat.iterations <- stat.iterations + 1;
          spend_fuel st;
          charge st for_iter_cost;
          go (pc + 1))
        else go tgt
    | B.IForStep { slot; src } ->
        let stepv = to_int (Array.unsafe_get regs src) in
        vset_slot st regs slot
          (VInt (to_int (vget_slot st regs slot) + stepv));
        go (pc + 1)
    | B.ILoopExit { lidx; sid; t0; trips } ->
        let stat = cached_loop_stat st lidx sid in
        let tr = Array.unsafe_get si trips in
        stat.min_trip <- min stat.min_trip tr;
        stat.max_trip <- max stat.max_trip tr;
        stat.cycles <- stat.cycles +. (cycles st -. Array.unsafe_get sf t0);
        go (pc + 1)
    | B.IKernel { glob; lidx; kp; tgt } -> (
        let fr = if glob then st.garray else regs in
        match vkernel st ~track fr lidx kp with
        | () -> go tgt
        | exception Kernel_unfit -> go (pc + 1))
  in
  go 0

and vcall st (bp : B.program) ~track fidx (argr : int array)
    (caller : Value.t array) : Value.t =
  let f = st.cprog.cfuncs.(fidx) in
  let fn = bp.B.bc_funcs.(fidx) in
  let regs = Array.make fn.B.bc_nregs VUnit in
  Array.blit fn.B.bc_cvals 0 regs fn.B.bc_cbase (Array.length fn.B.bc_cvals);
  Array.iteri
    (fun i r ->
      Array.unsafe_set regs
        (Array.unsafe_get f.Resolve.cf_param_slots i)
        (Array.unsafe_get caller r))
    argr;
  let si = Array.make (max 1 fn.B.bc_nsi) 0 in
  let sf = Array.make (max 1 fn.B.bc_nsf) 0.0 in
  if not track then vrun st bp ~track fn.B.bc_code regs si sf
  else begin
    let is_focus = fidx = st.focus_idx && st.focus_depth = 0 in
    if is_focus then
      enter_focus st f
        (Array.to_list (Array.map (fun r -> caller.(r)) argr));
    let snapshot = counters_snapshot st in
    let result = vrun st bp ~track fn.B.bc_code regs si sf in
    if is_focus then exit_focus st snapshot;
    result
  end

(* Entry path for [main] — mirrors [call_user]: arity check, focus
   bracketing even when the run has no focus (the test is cheap and
   happens once). *)
let vcall_main st (bp : B.program) ~track idx : Value.t =
  let f = st.cprog.cfuncs.(idx) in
  if List.length f.Resolve.cf_params <> 0 then
    err "call to '%s' with wrong arity" f.Resolve.cf_name;
  let fn = bp.B.bc_funcs.(idx) in
  let regs = Array.make fn.B.bc_nregs VUnit in
  Array.blit fn.B.bc_cvals 0 regs fn.B.bc_cbase (Array.length fn.B.bc_cvals);
  let si = Array.make (max 1 fn.B.bc_nsi) 0 in
  let sf = Array.make (max 1 fn.B.bc_nsf) 0.0 in
  let is_focus = idx = st.focus_idx && st.focus_depth = 0 in
  if is_focus then enter_focus st f [];
  let snapshot = counters_snapshot st in
  let result = vrun st bp ~track fn.B.bc_code regs si sf in
  if is_focus then exit_focus st snapshot;
  result

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

(** Result of running a program. *)
type run = {
  profile : Profile.t;
  output : string;  (** everything printed by [print_int]/[print_float] *)
  return_value : Value.t;
}

(** Compile an already-resolved slot IR, without running the
    optimizer — the entry point for per-pass identity tests that supply
    their own (partially) optimized IR.

    @param vm_hot heat oracle for the bytecode lowering's
      superinstruction selector: [vm_hot sid] says whether the fused
      loop with that statement id is worth rewriting (default: all
      hot).  See {!Bytecode.hot_of_profile}. *)
let compile_resolved ?vm_hot (cp : Resolve.t) : compiled =
  {
    cp;
    plain = lazy (compile_variant cp ~track:false);
    tracking = lazy (compile_variant cp ~track:true);
    vm = lazy (Bytecode.lower ?hot:vm_hot cp);
  }

(** Compile a program once; the result can be executed many times with
    {!run_compiled}.  The slot IR is optimized by {!Opt.optimize} first
    unless [PSAFLOW_NO_OPT] is set.  All engine variants (threaded
    closures and register bytecode) are compiled lazily on first use.

    @param vm_profile a profile from a previous run of the same
      program; when given, the bytecode superinstruction selector only
      rewrites kernels whose loops were hot in it *)
let compile ?vm_profile p : compiled =
  Flow_obs.Trace.with_span ~cat:"interp" "interp.compile" (fun () ->
      let cp = Resolve.compile p in
      let cp = if Opt.is_enabled () then Opt.optimize cp else cp in
      compile_resolved
        ?vm_hot:(Option.map Bytecode.hot_of_profile vm_profile)
        cp)

(** Force every lazily compiled engine variant.  [Lazy.force] is not
    safe under concurrent domains, so a [compiled] value that will be
    shared across domains (the compile-stage memo in
    {!Profile_cache}) must have its variants forced eagerly by the
    publishing domain before the value becomes visible to others. *)
let force_engines (c : compiled) : unit =
  ignore (Lazy.force c.plain);
  ignore (Lazy.force c.tracking);
  ignore (Lazy.force c.vm)

let make_state ?focus ~fuel (cp : Resolve.t) =
  let focus_idx =
    match focus with
    | None -> -1
    | Some name -> (
        match Hashtbl.find_opt cp.func_index name with
        | Some i -> i
        | None -> -1)
  in
  {
    cprog = cp;
    mem = Memory.create ();
    prof = Profile.create ();
    garray = Array.make (max 1 cp.nglobals) VUnit;
    out = Buffer.create 256;
    rng = 123456789;
    focus_idx;
    focus_depth = 0;
    focus_track = [||];
    focus_order = [];
    fuel;
    loop_cache = [||];
    bulk_cycles = 0.0;
    cyc = [| 0.0 |];
  }

(** Run an already-compiled program from [main] through the threaded
    closures — the PR-5 engine, kept verbatim and reachable directly
    (or as the [PSAFLOW_NO_VM] fallback of {!run_compiled}). *)
let run_threaded ?focus ?(fuel = 200_000_000) (c : compiled) : run =
  Flow_obs.Trace.with_span ~cat:"interp" "interp.eval" @@ fun () ->
  let st = make_state ?focus ~fuel c.cp in
  let variant =
    Lazy.force (if st.focus_idx >= 0 then c.tracking else c.plain)
  in
  st.loop_cache <- Array.make (max 1 variant.v_nloops) None;
  (* globals evaluate in the global frame *)
  variant.v_globals st st.garray;
  if c.cp.main_idx < 0 then err "program has no 'main' function";
  charge st Profile.Cost.call;
  let return_value = call_user variant st c.cp.main_idx [] in
  sync_cycles st;
  Flow_obs.Metrics.incr Flow_obs.Metrics.global "interp_runs";
  Flow_obs.Metrics.observe Flow_obs.Metrics.global "interp_virtual_cycles"
    st.prof.cycles;
  if st.bulk_cycles > 0.0 then
    Flow_obs.Metrics.observe Flow_obs.Metrics.global "interp_bulk_cycles"
      st.bulk_cycles;
  Flow_obs.Trace.add_args
    [ ("virtual_cycles", Flow_obs.Attr.Float st.prof.cycles) ];
  { profile = st.prof; output = Buffer.contents st.out; return_value }

(** Run an already-compiled program from [main] through the register
    bytecode VM (same observable semantics as {!run_threaded} and
    {!run_ir}, bit for bit — output, return value, full profile). *)
let run_vm ?focus ?(fuel = 200_000_000) (c : compiled) : run =
  Flow_obs.Trace.with_span ~cat:"interp" "interp.eval" @@ fun () ->
  let st = make_state ?focus ~fuel c.cp in
  let bp = Lazy.force c.vm in
  st.loop_cache <- Array.make (max 1 bp.Bytecode.bc_nloops) None;
  let track = st.focus_idx >= 0 in
  (* globals evaluate in the global frame; a stray [return] there
     escapes as [Return_exc], exactly like both reference engines *)
  let g = bp.Bytecode.bc_globals in
  let gregs = Array.make g.Bytecode.bc_nregs VUnit in
  Array.blit g.Bytecode.bc_cvals 0 gregs g.Bytecode.bc_cbase
    (Array.length g.Bytecode.bc_cvals);
  let gsi = Array.make (max 1 g.Bytecode.bc_nsi) 0 in
  let gsf = Array.make (max 1 g.Bytecode.bc_nsf) 0.0 in
  ignore (vrun st bp ~track g.Bytecode.bc_code gregs gsi gsf);
  if c.cp.main_idx < 0 then err "program has no 'main' function";
  charge st Profile.Cost.call;
  let return_value = vcall_main st bp ~track c.cp.main_idx in
  sync_cycles st;
  Flow_obs.Metrics.incr Flow_obs.Metrics.global "interp_runs";
  Flow_obs.Metrics.incr Flow_obs.Metrics.global "interp_vm_runs";
  Flow_obs.Metrics.observe Flow_obs.Metrics.global "interp_virtual_cycles"
    st.prof.cycles;
  if st.bulk_cycles > 0.0 then
    Flow_obs.Metrics.observe Flow_obs.Metrics.global "interp_bulk_cycles"
      st.bulk_cycles;
  Flow_obs.Trace.add_args
    [ ("virtual_cycles", Flow_obs.Attr.Float st.prof.cycles) ];
  { profile = st.prof; output = Buffer.contents st.out; return_value }

(** Run an already-compiled program from [main]: the bytecode VM unless
    [PSAFLOW_NO_VM] disables it, then the threaded closures. *)
let run_compiled ?focus ?fuel (c : compiled) : run =
  if vm_is_enabled () then run_vm ?focus ?fuel c
  else run_threaded ?focus ?fuel c

(** Run the slot IR through the reference tree walker.  Counted as
    [interp_ir_runs] (not [interp_runs]): this path exists for
    bit-identity checking and before/after benchmarking, not for the
    flow. *)
let run_ir ?focus ?(fuel = 200_000_000) (cp : Resolve.t) : run =
  let st = make_state ?focus ~fuel cp in
  Ir_walk.exec_block st st.garray cp.cglobals;
  if cp.main_idx < 0 then err "program has no 'main' function";
  charge st Profile.Cost.call;
  let return_value = Ir_walk.eval_user_call st cp.main_idx [] in
  sync_cycles st;
  Flow_obs.Metrics.incr Flow_obs.Metrics.global "interp_ir_runs";
  { profile = st.prof; output = Buffer.contents st.out; return_value }

(** Run [program] from [main].

    @param focus name of the kernel function to profile as an offload
      candidate (collects {!Profile.kernel_obs})
    @param fuel statement-execution budget; the default (200 million) is a
      safety net against accidental infinite loops in transformed code *)
let run ?focus ?fuel (program : Minic.Ast.program) : run =
  run_compiled ?focus ?fuel (compile program)
