(** The MiniC interpreter.

    Executes a program starting at [main], charging virtual cycles per
    {!Profile.Cost} and recording the observations that the dynamic
    design-flow tasks consume.  Passing [~focus:"kernel_fn"] additionally
    profiles every call to that function as an accelerator-offload
    candidate: per-argument transfer requirements and touched ranges.

    Since the slot-compilation fast path ({!Resolve}), programs are first
    lowered to an IR in which variable accesses are array-indexed slots
    and statically-known cycle charges are batched per straight-line
    group; this module only executes that IR.  Profiles are bit-identical
    to the original per-statement tree walker (see {!Resolve} for the
    argument).

    Determinism: [rand01]/[rand_int] use a fixed-seed LCG, so repeated
    runs (and runs of instrumented variants) see identical inputs — the
    property the paper relies on when it compares designs generated from
    the same reference source. *)

open Value

exception Return_exc of Value.t

type state = {
  cprog : Resolve.t;
  mem : Memory.t;
  prof : Profile.t;
  garray : Value.t array;  (** global frame *)
  out : Buffer.t;
  mutable rng : int;
  focus_idx : int;  (** index of the focus function, [-1] for none *)
  mutable focus_depth : int;
  (* region id -> kernel argument indices it is reachable from *)
  focus_args : (int, int list) Hashtbl.t;
  (* region id -> per-element first-access state: 0 untouched, 1 read, 2 written *)
  focus_state : (int, Bytes.t) Hashtbl.t;
  mutable fuel : int;  (** remaining statement budget, guards against hangs *)
}

let charge st c = st.prof.cycles <- st.prof.cycles +. c

(* ------------------------------------------------------------------ *)
(* Deterministic pseudo-random inputs                                  *)
(* ------------------------------------------------------------------ *)

let lcg_next st =
  st.rng <- ((1103515245 * st.rng) + 12345) land 0x3FFFFFFF;
  st.rng

let rand01 st = float_of_int (lcg_next st) /. 1073741824.0
let rand_int st n = if n <= 0 then 0 else lcg_next st mod n

(* ------------------------------------------------------------------ *)
(* Kernel-focus access tracking                                        *)
(* ------------------------------------------------------------------ *)

let kernel_obs st =
  match st.prof.kernel with
  | Some k -> k
  | None ->
      let k =
        {
          Profile.calls = 0;
          k_cycles = 0.0;
          k_flops = 0;
          k_sfu = 0;
          k_bytes_read = 0;
          k_bytes_written = 0;
          args = [||];
        }
      in
      st.prof.kernel <- Some k;
      k

let update_range (obs : Profile.arg_obs) region_id off =
  let rec go = function
    | [] -> [ (region_id, off, off) ]
    | (id, lo, hi) :: rest when id = region_id ->
        (id, min lo off, max hi off) :: rest
    | entry :: rest -> entry :: go rest
  in
  obs.regions_touched <- go obs.regions_touched

let track_focus_access st (p : Value.ptr) ~write =
  if st.focus_depth > 0 then
    match Hashtbl.find_opt st.focus_args p.mem_id with
    | None -> ()
    | Some arg_idxs -> (
        let k = kernel_obs st in
        List.iter
          (fun i ->
            if i < Array.length k.args then update_range k.args.(i) p.mem_id p.off)
          arg_idxs;
        match Hashtbl.find_opt st.focus_state p.mem_id with
        | None -> ()
        | Some state ->
            let elem = Memory.elem_bytes st.mem p.mem_id in
            let attribute f =
              match arg_idxs with
              | i :: _ when i < Array.length k.args -> f k.args.(i)
              | _ -> ()
            in
            let s = Bytes.get_uint8 state p.off in
            if write then (
              (* first write of this element: it is produced on-device and
                 must be copied back *)
              if s land 2 = 0 then (
                Bytes.set_uint8 state p.off (s lor 2);
                attribute (fun a ->
                    a.Profile.bytes_out <- a.Profile.bytes_out + elem)))
            else if s = 0 then (
              (* first access is a read: the element must be transferred in *)
              Bytes.set_uint8 state p.off 1;
              attribute (fun a ->
                  a.Profile.bytes_in <- a.Profile.bytes_in + elem)))

(* Load/store counters and focus tracking.  The [Cost.load]/[Cost.store]
   cycles themselves are statically known and batched by the resolver. *)
let mem_load st p =
  let v = Memory.load st.mem p in
  st.prof.loads <- st.prof.loads + 1;
  st.prof.bytes_read <- st.prof.bytes_read + Memory.elem_bytes st.mem p.mem_id;
  track_focus_access st p ~write:false;
  v

let mem_store st p v =
  Memory.store st.mem p v;
  st.prof.stores <- st.prof.stores + 1;
  st.prof.bytes_written <-
    st.prof.bytes_written + Memory.elem_bytes st.mem p.mem_id;
  track_focus_access st p ~write:true

(* ------------------------------------------------------------------ *)
(* Slot access                                                         *)
(* ------------------------------------------------------------------ *)

let get_var st frame = function
  | Resolve.Local i -> frame.(i)
  | Resolve.Global i -> st.garray.(i)
  | Resolve.Unbound n -> err "undefined variable '%s'" n

let set_var st frame r v =
  match r with
  | Resolve.Local i -> frame.(i) <- v
  | Resolve.Global i -> st.garray.(i) <- v
  | Resolve.Unbound n -> err "undefined variable '%s'" n

(* ------------------------------------------------------------------ *)
(* Arithmetic with dynamic residues                                    *)
(* ------------------------------------------------------------------ *)

(* Add/Sub/Mul: the resolver pre-charged [Cost.int_op]; [fresid] is the
   difference to the float cost, charged when the operands turn out to
   be floating-point. *)
let do_arith st op fresid a b =
  let open Minic.Ast in
  if is_float a || is_float b then (
    if fresid <> 0.0 then charge st fresid;
    st.prof.flops <- st.prof.flops + 1;
    match op with
    | Add -> VFloat (to_float a +. to_float b)
    | Sub -> VFloat (to_float a -. to_float b)
    | Mul -> VFloat (to_float a *. to_float b)
    | _ -> assert false)
  else (
    st.prof.int_ops <- st.prof.int_ops + 1;
    match op with
    | Add -> VInt (to_int a + to_int b)
    | Sub -> VInt (to_int a - to_int b)
    | Mul -> VInt (to_int a * to_int b)
    | _ -> assert false)

(* Division cost depends on the operand kinds: charged fully at run
   time. *)
let do_div st a b =
  if is_float a || is_float b then (
    charge st Profile.Cost.float_div;
    st.prof.flops <- st.prof.flops + 1;
    VFloat (to_float a /. to_float b))
  else (
    charge st Profile.Cost.int_op;
    st.prof.int_ops <- st.prof.int_ops + 1;
    let d = to_int b in
    if d = 0 then err "integer division by zero";
    VInt (to_int a / d))

(* Mod: [Cost.int_op] pre-charged; only the counter is dynamic. *)
let do_mod st a b =
  if is_float a || is_float b then st.prof.flops <- st.prof.flops + 1
  else st.prof.int_ops <- st.prof.int_ops + 1;
  let d = to_int b in
  if d = 0 then err "integer modulo by zero";
  VInt (to_int a mod d)

let do_cmp op fl a b =
  let open Minic.Ast in
  match op with
  | Lt -> if fl then to_float a < to_float b else to_int a < to_int b
  | Le -> if fl then to_float a <= to_float b else to_int a <= to_int b
  | Gt -> if fl then to_float a > to_float b else to_int a > to_int b
  | Ge -> if fl then to_float a >= to_float b else to_int a >= to_int b
  | Eq -> if fl then to_float a = to_float b else to_int a = to_int b
  | Ne -> if fl then to_float a <> to_float b else to_int a <> to_int b
  | _ -> assert false

let coerce typ v =
  match typ with
  | Minic.Ast.Tint -> VInt (to_int v)
  | Minic.Ast.Tfloat | Minic.Ast.Tdouble -> VFloat (to_float v)
  | Minic.Ast.Tbool -> VBool (to_bool v)
  | _ -> v

let coerce_region st (p : Value.ptr) v =
  coerce (Memory.region st.mem p.mem_id).elem_typ v

let arith_fresid = Profile.Cost.float_add -. Profile.Cost.int_op
let mul_fresid = Profile.Cost.float_mul -. Profile.Cost.int_op

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                               *)
(* ------------------------------------------------------------------ *)

let rec eval_expr st frame (e : Resolve.expr) : Value.t =
  match e.e with
  | ELit v -> v
  | EVar r -> get_var st frame r
  | ENeg a -> (
      match eval_expr st frame a with
      | VInt n -> VInt (-n)
      | VFloat f ->
          st.prof.flops <- st.prof.flops + 1;
          VFloat (-.f)
      | _ -> err "negation of a non-numeric value")
  | ENot a -> VBool (not (to_bool (eval_expr st frame a)))
  | EArith (op, fresid, a, b) ->
      let va = eval_expr st frame a in
      let vb = eval_expr st frame b in
      do_arith st op fresid va vb
  | EDiv (a, b) ->
      let va = eval_expr st frame a in
      let vb = eval_expr st frame b in
      do_div st va vb
  | EMod (a, b) ->
      let va = eval_expr st frame a in
      let vb = eval_expr st frame b in
      do_mod st va vb
  | ECmp (op, a, b) ->
      let va = eval_expr st frame a in
      let vb = eval_expr st frame b in
      VBool (do_cmp op (is_float va || is_float vb) va vb)
  | EAnd (a, b) ->
      (* && and || short-circuit like C *)
      if to_bool (eval_expr st frame a) then (
        charge st b.ecost;
        VBool (to_bool (eval_expr st frame b)))
      else VBool false
  | EOr (a, b) ->
      if to_bool (eval_expr st frame a) then VBool true
      else (
        charge st b.ecost;
        VBool (to_bool (eval_expr st frame b)))
  | EIndex (a, i) ->
      let p = to_ptr (eval_expr st frame a) in
      let i = to_int (eval_expr st frame i) in
      mem_load st { p with off = p.off + i }
  | ECast (t, a) -> coerce t (eval_expr st frame a)
  | ECall { callee; cargs } -> (
      let args = List.map (eval_expr st frame) cargs in
      match callee with
      | User idx -> eval_user_call st idx args
      | Math { mimpl; mflops } -> (
          st.prof.sfu_ops <- st.prof.sfu_ops + 1;
          st.prof.flops <- st.prof.flops + mflops;
          match (mimpl, args) with
          | M1 g, a :: _ -> VFloat (g (to_float a))
          | M2 g, a :: b :: _ -> VFloat (g (to_float a) (to_float b))
          | _ -> err "math builtin called with too few arguments")
      | Math_unimpl base -> err "unimplemented math builtin '%s'" base
      | Rand01 -> VFloat (rand01 st)
      | Rand_int -> VInt (rand_int st (to_int (List.hd args)))
      | Print_int ->
          Buffer.add_string st.out
            (string_of_int (to_int (List.hd args)) ^ "\n");
          VUnit
      | Print_float ->
          Buffer.add_string st.out
            (Printf.sprintf "%.6g\n" (to_float (List.hd args)));
          VUnit
      | Timer_start ->
          Profile.timer_start st.prof (to_int (List.hd args));
          VUnit
      | Timer_stop ->
          Profile.timer_stop st.prof (to_int (List.hd args));
          VUnit
      | Unknown fname -> err "call to unknown function '%s'" fname)

and eval_user_call st idx args =
  (* the call's [Cost.call] cycles were batched by the caller's group
     (or charged by [run_compiled] for the root call to [main]) *)
  let f = st.cprog.cfuncs.(idx) in
  if List.length args <> List.length f.cf_params then
    err "call to '%s' with wrong arity" f.cf_name;
  let frame = Array.make (max 1 f.cf_nslots) VUnit in
  List.iteri (fun i v -> frame.(f.cf_param_slots.(i)) <- v) args;
  let is_focus = idx = st.focus_idx && st.focus_depth = 0 in
  if is_focus then enter_focus st f args;
  let snapshot =
    ( st.prof.cycles,
      st.prof.flops,
      st.prof.sfu_ops,
      st.prof.bytes_read,
      st.prof.bytes_written )
  in
  let result =
    try
      exec_block st frame f.cf_body;
      VUnit
    with Return_exc v -> v
  in
  if is_focus then exit_focus st snapshot;
  result

and enter_focus st (f : Resolve.cfunc) args =
  let ptr_params =
    List.filteri
      (fun _ ((p : Minic.Ast.param), _) ->
        match p.ptyp with Minic.Ast.Tptr _ -> true | _ -> false)
      (List.combine f.cf_params args)
  in
  let k = kernel_obs st in
  if Array.length k.args = 0 then
    k.args <-
      Array.of_list
        (List.mapi
           (fun i ((p : Minic.Ast.param), _) ->
             {
               Profile.arg_index = i;
               arg_name = p.pname_;
               regions_touched = [];
               bytes_in = 0;
               bytes_out = 0;
             })
           ptr_params);
  Hashtbl.reset st.focus_args;
  Hashtbl.reset st.focus_state;
  List.iteri
    (fun i (_, v) ->
      match v with
      | VPtr p ->
          let existing =
            Option.value ~default:[] (Hashtbl.find_opt st.focus_args p.mem_id)
          in
          Hashtbl.replace st.focus_args p.mem_id (existing @ [ i ]);
          if not (Hashtbl.mem st.focus_state p.mem_id) then
            Hashtbl.replace st.focus_state p.mem_id
              (Bytes.make (Memory.length st.mem p.mem_id) '\000')
      | _ -> ())
    ptr_params;
  st.focus_depth <- st.focus_depth + 1

and exit_focus st (c0, f0, s0, br0, bw0) =
  st.focus_depth <- st.focus_depth - 1;
  let k = kernel_obs st in
  k.calls <- k.calls + 1;
  k.k_cycles <- k.k_cycles +. (st.prof.cycles -. c0);
  k.k_flops <- k.k_flops + (st.prof.flops - f0);
  k.k_sfu <- k.k_sfu + (st.prof.sfu_ops - s0);
  k.k_bytes_read <- k.k_bytes_read + (st.prof.bytes_read - br0);
  k.k_bytes_written <- k.k_bytes_written + (st.prof.bytes_written - bw0)

(* ------------------------------------------------------------------ *)
(* Statement evaluation                                                *)
(* ------------------------------------------------------------------ *)

and exec_stmt st frame (s : Resolve.stmt) =
  st.fuel <- st.fuel - 1;
  if st.fuel <= 0 then err "execution budget exhausted (infinite loop?)";
  match s with
  | SDeclVar { slot; typ; init } ->
      let v =
        match init with
        | Some e -> coerce typ (eval_expr st frame e)
        | None -> Value.zero_of_typ typ
      in
      set_var st frame slot v
  | SDeclArr { slot; typ; name; size } ->
      let n = to_int (eval_expr st frame size) in
      set_var st frame slot (Memory.alloc st.mem ~name ~elem_typ:typ n)
  | SAssign { slot; aop; rhs } -> (
      let rhs = eval_expr st frame rhs in
      match aop with
      | Set -> set_var st frame slot rhs
      | _ ->
          set_var st frame slot
            (apply_assign st aop (get_var st frame slot) rhs))
  | SStore { arr; idx; aop; rhs } ->
      let rhs = eval_expr st frame rhs in
      let p = to_ptr (eval_expr st frame arr) in
      let i = to_int (eval_expr st frame idx) in
      let p = { p with off = p.off + i } in
      let v =
        if aop = Minic.Ast.Set then coerce_region st p rhs
        else apply_assign st aop (mem_load st p) rhs
      in
      mem_store st p v
  | SExpr e -> ignore (eval_expr st frame e)
  | SIf (c, b1, b2) ->
      if to_bool (eval_expr st frame c) then exec_block st frame b1
      else Option.iter (exec_block st frame) b2
  | SWhile { wsid; cond; body } ->
      let stat = Profile.loop_stat st.prof wsid in
      stat.invocations <- stat.invocations + 1;
      let t0 = st.prof.cycles in
      let trips = ref 0 in
      charge st Profile.Cost.branch;
      let rec loop () =
        charge st cond.ecost;
        if to_bool (eval_expr st frame cond) then (
          incr trips;
          stat.iterations <- stat.iterations + 1;
          st.fuel <- st.fuel - 1;
          if st.fuel <= 0 then
            err "execution budget exhausted (infinite loop?)";
          charge st (Profile.Cost.loop_iter +. Profile.Cost.branch);
          exec_block st frame body;
          loop ())
      in
      loop ();
      stat.min_trip <- min stat.min_trip !trips;
      stat.max_trip <- max stat.max_trip !trips;
      stat.cycles <- stat.cycles +. (st.prof.cycles -. t0)
  | SFor { fsid; slot; init; bound; inclusive; step; body } ->
      let stat = Profile.loop_stat st.prof fsid in
      stat.invocations <- stat.invocations + 1;
      let t0 = st.prof.cycles in
      charge st init.ecost;
      let i0 = to_int (eval_expr st frame init) in
      set_var st frame slot (VInt i0);
      let trips = ref 0 in
      let continue_ () =
        charge st (Profile.Cost.branch +. bound.ecost);
        let b = to_int (eval_expr st frame bound) in
        let i = to_int (get_var st frame slot) in
        if inclusive then i <= b else i < b
      in
      while continue_ () do
        incr trips;
        stat.iterations <- stat.iterations + 1;
        st.fuel <- st.fuel - 1;
        if st.fuel <= 0 then err "execution budget exhausted (infinite loop?)";
        charge st (Profile.Cost.loop_iter +. Profile.Cost.int_op);
        exec_block st frame body;
        charge st step.ecost;
        let stepv = to_int (eval_expr st frame step) in
        set_var st frame slot (VInt (to_int (get_var st frame slot) + stepv))
      done;
      stat.min_trip <- min stat.min_trip !trips;
      stat.max_trip <- max stat.max_trip !trips;
      stat.cycles <- stat.cycles +. (st.prof.cycles -. t0)
  | SReturn eo ->
      let v =
        match eo with Some e -> eval_expr st frame e | None -> VUnit
      in
      raise (Return_exc v)
  | SBlock b -> exec_block st frame b

and exec_group st frame (g : Resolve.group) =
  if g.gcost <> 0.0 then charge st g.gcost;
  List.iter (exec_stmt st frame) g.gstmts

and exec_block st frame (b : Resolve.block) = List.iter (exec_group st frame) b

and apply_assign st op old rhs =
  match op with
  | Minic.Ast.Set -> rhs
  | Minic.Ast.AddEq -> do_arith st Minic.Ast.Add arith_fresid old rhs
  | Minic.Ast.SubEq -> do_arith st Minic.Ast.Sub arith_fresid old rhs
  | Minic.Ast.MulEq -> do_arith st Minic.Ast.Mul mul_fresid old rhs
  | Minic.Ast.DivEq -> do_div st old rhs

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

(** Result of running a program. *)
type run = {
  profile : Profile.t;
  output : string;  (** everything printed by [print_int]/[print_float] *)
  return_value : Value.t;
}

(** Slot-compile a program once; the result can be executed many times
    with {!run_compiled}. *)
let compile p =
  Flow_obs.Trace.with_span ~cat:"interp" "interp.compile" (fun () ->
      Resolve.compile p)

(** Run an already-compiled program from [main]. *)
let run_compiled ?focus ?(fuel = 200_000_000) (cp : Resolve.t) : run =
  Flow_obs.Trace.with_span ~cat:"interp" "interp.eval" @@ fun () ->
  let focus_idx =
    match focus with
    | None -> -1
    | Some name -> (
        match Hashtbl.find_opt cp.func_index name with
        | Some i -> i
        | None -> -1)
  in
  let st =
    {
      cprog = cp;
      mem = Memory.create ();
      prof = Profile.create ();
      garray = Array.make (max 1 cp.nglobals) VUnit;
      out = Buffer.create 256;
      rng = 123456789;
      focus_idx;
      focus_depth = 0;
      focus_args = Hashtbl.create 8;
      focus_state = Hashtbl.create 8;
      fuel;
    }
  in
  (* globals evaluate in the global frame *)
  exec_block st st.garray cp.cglobals;
  if cp.main_idx < 0 then err "program has no 'main' function";
  charge st Profile.Cost.call;
  let return_value = eval_user_call st cp.main_idx [] in
  Flow_obs.Metrics.incr Flow_obs.Metrics.global "interp_runs";
  Flow_obs.Metrics.observe Flow_obs.Metrics.global "interp_virtual_cycles"
    st.prof.cycles;
  Flow_obs.Trace.add_args
    [ ("virtual_cycles", Flow_obs.Attr.Float st.prof.cycles) ];
  { profile = st.prof; output = Buffer.contents st.out; return_value }

(** Run [program] from [main].

    @param focus name of the kernel function to profile as an offload
      candidate (collects {!Profile.kernel_obs})
    @param fuel statement-execution budget; the default (200 million) is a
      safety net against accidental infinite loops in transformed code *)
let run ?focus ?fuel (program : Minic.Ast.program) : run =
  run_compiled ?focus ?fuel (Resolve.compile program)
