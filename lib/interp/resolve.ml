(** One-time slot resolution: the interpreter fast path.

    Compiles a {!Minic.Ast.program} into an internal representation in
    which

    - every variable reference is an integer index ([Local]/[Global])
      into a pre-sized [Value.t array] frame, replacing the per-access
      [(string, Value.t ref) Hashtbl] lookups of the original tree
      walker;
    - every call site is pre-resolved to a user function index or a
      builtin ([Math]/[Rand01]/[Print_int]/...), eliminating the
      per-call name classification and string surgery;
    - the statically-known virtual-cycle cost of every expression
      ([ecost]) and statement is pre-computed, and straight-line runs of
      statements are batched into {!group}s whose summed cost is charged
      once at group entry instead of operation by operation.

    Batching is observation-safe: cycle totals are read mid-run only at
    timer start/stop hooks, loop entry/exit (per-loop [cycles] deltas)
    and focus-call boundaries.  Groups therefore break after every
    compound statement (If/For/While/Block/Return) and after any
    statement that may fire a timer hook — including statements calling
    a user function that transitively reaches [__timer_start]/
    [__timer_stop] (see {!timer_reach}).  Within a group no observation
    point exists, so moving charges to group entry changes no
    observable.  Because every {!Profile.Cost} constant is an
    integer-valued float, re-associating the additions is exact and the
    resulting profiles are bit-identical to the per-statement charging
    scheme.

    Known (intentional) divergences from the old tree walker, both
    rejected by the type checker and exercised by no benchmark:
    use-before-declaration of a local now reads the slot's [VUnit]
    instead of falling back to a same-named global, and re-declaring a
    [for] index inside its own loop body aliases the loop's slot. *)

module C = Profile.Cost

type var_ref =
  | Local of int  (** index into the current frame *)
  | Global of int  (** index into the global frame *)
  | Unbound of string  (** unknown name: runtime error when accessed *)

type math_impl = M1 of (float -> float) | M2 of (float -> float -> float)

(** Pre-resolved call target. *)
type callee =
  | User of int  (** index into {!t.cfuncs} *)
  | Math of { mimpl : math_impl; mflops : int }
  | Math_unimpl of string  (** math builtin with no interpretation *)
  | Rand01
  | Rand_int
  | Print_int
  | Print_float
  | Timer_start
  | Timer_stop
  | Unknown of string  (** unknown function: runtime error when called *)

(* ------------------------------------------------------------------ *)
(* Optimizer extensions                                                *)
(* ------------------------------------------------------------------ *)

(* The constructors and kernel types below are never produced by
   [compile]; only the slot-IR optimizer ({!Opt}) builds them.  Both
   execution engines (the threaded compiler and the reference walker in
   {!Eval}) interpret them, and every one carries enough statically
   counted information to replay the exact counter bumps and dynamic
   cycle charges of the unoptimized form — see DESIGN.md §13. *)

(** Silent integer expression, evaluated by the specialized-kernel entry
    protocol without charging cycles or bumping counters (those are
    charged in bulk from statically counted totals).  [IIdx] is the
    current loop index; [ISlot] reads a local slot with [Value.to_int]
    semantics and aborts to the generic loop on non-numeric values. *)
type iexpr =
  | ILit of int
  | IIdx
  | ISlot of int
  | IAdd of iexpr * iexpr
  | ISub of iexpr * iexpr
  | IMul of iexpr * iexpr
  | INeg of iexpr

(** One float-register instruction of a specialized loop body.
    Registers index a per-invocation [float array]; memory accesses go
    through numbered {!ksite}s whose element offsets advance by a
    constant stride per iteration. *)
type kinstr =
  | KLit of int * float  (** dst <- constant *)
  | KMov of int * int
  | KAdd of int * int * int  (** dst, a, b *)
  | KSub of int * int * int
  | KMul of int * int * int
  | KDiv of int * int * int
  | KNeg of int * int
  | KItoF of int  (** dst <- float of the current loop index *)
  | KMath1 of int * (float -> float) * int
  | KMath2 of int * (float -> float -> float) * int * int
  | KLoad of int * int  (** dst <- site *)
  | KStore of int * int  (** site <- src ([Set]) *)
  | KStoreAdd of int * int  (** site (+)= src *)
  | KStoreSub of int * int
  | KStoreMul of int * int
  | KStoreDiv of int * int

(** One memory-access site: base-pointer slot plus an element index
    affine in the loop variable. *)
type ksite = { ks_base : int; ks_idx : iexpr }

(** A specialized innermost counted loop: straight-line float body over
    register banks and affine sites.  All per-iteration virtual costs
    are pre-counted so the executor can charge [n] iterations in bulk,
    bit-identically to the generic loop. *)
type kernel = {
  k_body : kinstr array;
  k_nfregs : int;
  k_sites : ksite array;
  k_site_loads : int array;  (** per-iteration load accesses, per site *)
  k_site_stores : int array;  (** per-iteration store accesses, per site *)
  k_in : (int * int) array;  (** (slot, freg) read at loop entry *)
  k_out : (int * int) array;  (** (slot, freg) written back at loop exit *)
  k_idx_slot : int;
  k_fsid : int;
  k_inclusive : bool;
  k_init : iexpr;
  k_bound : iexpr;
  k_step : iexpr;
  k_nstmts : int;  (** body statements: fuel per iteration is [1 + k_nstmts] *)
  k_flops : int;  (** per-iteration flop bumps of the body *)
  k_sfu : int;  (** per-iteration SFU-op bumps *)
  k_int_ops : int;  (** per-iteration int-op bumps (body + index exprs) *)
  k_init_int_ops : int;
  k_bound_int_ops : int;  (** bumped [n+1] times, once per bound check *)
  k_step_int_ops : int;
  k_dyn_cycles : float;  (** per-iteration dynamic cycle charges *)
  k_gcost : float;  (** body group's static cost *)
  k_icost : float;  (** init expression's static cost *)
  k_bcost : float;  (** branch + bound cost, charged [n+1] times *)
  k_scost : float;  (** step expression's static cost *)
}

(** [ecost] is the statically-known cycle cost of evaluating the
    expression once; dynamic residues (float vs int arithmetic, division,
    short-circuit right operands, callee bodies) are charged at run
    time. *)
type expr = { ecost : float; e : enode }

and enode =
  | ELit of Value.t
  | EVar of var_ref
  | ENeg of expr
  | ENot of expr
  | EArith of Minic.Ast.binop * float * expr * expr
      (** Add/Sub/Mul; the [float] is the extra cost charged when the
          operation turns out to be floating-point *)
  | EDiv of expr * expr
  | EMod of expr * expr
  | ECmp of Minic.Ast.binop * expr * expr
  | EAnd of expr * expr
  | EOr of expr * expr
  | EIndex of expr * expr
  | ECast of Minic.Ast.typ * expr
  | ECall of { callee : callee; cargs : expr list }
  | EFolded of { fval : Value.t; f_flops : int; f_int_ops : int; f_dyn : float }
      (** constant-folded subtree: yields [fval] while replaying the
          folded subtree's counter bumps and dynamic cycle charges
          (the static [ecost] of the subtree is kept on the node) *)
  | EArithF of Minic.Ast.binop * float * expr * expr
      (** [EArith] whose float path is statically known to be taken *)
  | EArithI of Minic.Ast.binop * expr * expr
      (** [EArith] whose int path is statically known to be taken *)
  | EDivF of expr * expr
  | EDivI of expr * expr
  | ECmpF of Minic.Ast.binop * expr * expr
  | ECmpI of Minic.Ast.binop * expr * expr
  | EHoisted of {
      hslot : int;  (** hidden cache slot, reset by {!SHoistReset} *)
      h_flops : int;
      h_sfu : int;
      h_dyn : float;
      horig : expr;
    }
      (** loop-invariant float subtree: first evaluation per loop
          invocation runs [horig] and caches the result; later ones
          replay the counted bumps and return the cached value *)

type stmt =
  | SDeclVar of { slot : var_ref; typ : Minic.Ast.typ; init : expr option }
  | SDeclArr of {
      slot : var_ref;
      typ : Minic.Ast.typ;
      name : string;
      size : expr;
    }
  | SAssign of { slot : var_ref; aop : Minic.Ast.assign_op; rhs : expr }
  | SStore of {
      arr : expr;
      idx : expr;
      aop : Minic.Ast.assign_op;
      rhs : expr;
    }
  | SExpr of expr
  | SIf of expr * block * block option
  | SWhile of { wsid : int; cond : expr; body : block }
  | SFor of {
      fsid : int;
      slot : var_ref;
      init : expr;
      bound : expr;
      inclusive : bool;
      step : expr;
      body : block;
    }
  | SReturn of expr option
  | SBlock of block
  | SDrop of { dtyp : Minic.Ast.typ option; drhs : expr option }
      (** dead write, kept for its observable effects only: spends one
          fuel unit, evaluates [drhs], and replays the declaration
          coercion's error check without storing the value *)
  | SHoistReset of int list
      (** invalidate {!EHoisted} cache slots; free of fuel and cycles *)
  | SFused of { forig : stmt; kern : kernel }
      (** specialized loop: [kern] runs when its entry preconditions
          hold, else the faithfully compiled [forig] (an {!SFor}) runs;
          both share one loop-stat identity *)

(** Straight-line run of statements whose static cost [gcost] is charged
    once at group entry. *)
and group = { gcost : float; gstmts : stmt list }

and block = group list

type cfunc = {
  cf_name : string;
  cf_params : Minic.Ast.param list;
  cf_param_slots : int array;  (** slot of the i-th parameter *)
  cf_nslots : int;  (** frame size *)
  cf_body : block;
}

(** A compiled program. *)
type t = {
  source : Minic.Ast.program;
  cfuncs : cfunc array;
  cglobals : block;  (** global declarations, run in the global frame *)
  nglobals : int;
  main_idx : int;  (** index of [main], [-1] if absent *)
  func_index : (string, int) Hashtbl.t;  (** first function of each name *)
}

(* ------------------------------------------------------------------ *)
(* Timer reachability                                                  *)
(* ------------------------------------------------------------------ *)

(* [timer_reach p func_index] marks every function that may execute a
   [__timer_start]/[__timer_stop] hook, directly or through calls.
   Statements invoking such functions must end their charge group so
   that batched charges never cross a timer snapshot. *)
let timer_reach (p : Minic.Ast.program) (func_index : (string, int) Hashtbl.t) :
    bool array =
  let open Minic.Ast in
  let n = List.length p.funcs in
  let reaches = Array.make n false in
  let calls = Array.make n [] in
  List.iteri
    (fun i f ->
      iter_func
        (fun s ->
          List.iter
            (iter_expr (fun e ->
                 match e.enode with
                 | Call (name, _) -> (
                     (* a user function shadows a builtin of the same
                        name, exactly as at run time *)
                     match Hashtbl.find_opt func_index name with
                     | Some j -> calls.(i) <- j :: calls.(i)
                     | None ->
                         if name = "__timer_start" || name = "__timer_stop"
                         then reaches.(i) <- true)
                 | _ -> ()))
            (stmt_exprs s))
        f)
    p.funcs;
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri
      (fun i cs ->
        if (not reaches.(i)) && List.exists (fun j -> reaches.(j)) cs then (
          reaches.(i) <- true;
          changed := true))
      calls
  done;
  reaches

let rec expr_may_time mt (e : expr) =
  match e.e with
  | ELit _ | EVar _ -> false
  | ENeg a | ENot a | ECast (_, a) -> expr_may_time mt a
  | EFolded _ -> false
  | EHoisted h -> expr_may_time mt h.horig
  | EArith (_, _, a, b)
  | EArithF (_, _, a, b)
  | EArithI (_, a, b)
  | EDiv (a, b)
  | EDivF (a, b)
  | EDivI (a, b)
  | EMod (a, b)
  | ECmp (_, a, b)
  | ECmpF (_, a, b)
  | ECmpI (_, a, b)
  | EAnd (a, b)
  | EOr (a, b)
  | EIndex (a, b) ->
      expr_may_time mt a || expr_may_time mt b
  | ECall { callee; cargs } ->
      (match callee with
      | Timer_start | Timer_stop -> true
      | User j -> mt.(j)
      | _ -> false)
      || List.exists (expr_may_time mt) cargs

(* ------------------------------------------------------------------ *)
(* Math builtin resolution                                             *)
(* ------------------------------------------------------------------ *)

(* Drop the '__' prefix of GPU intrinsics and the 'f' single-precision
   suffix to recover the base math function (mirrors the old
   interpreter's per-call string surgery, now done once at compile
   time). *)
let strip_math n =
  let n =
    if String.length n > 2 && String.sub n 0 2 = "__" then
      String.sub n 2 (String.length n - 2)
    else n
  in
  if String.length n > 1 && n.[String.length n - 1] = 'f' then
    String.sub n 0 (String.length n - 1)
  else n

let math_impl = function
  | "sqrt" | "fsqrt" -> Some (M1 Float.sqrt)
  | "exp" -> Some (M1 Float.exp)
  | "log" -> Some (M1 Float.log)
  | "sin" -> Some (M1 Float.sin)
  | "cos" -> Some (M1 Float.cos)
  | "tanh" -> Some (M1 Float.tanh)
  | "pow" -> Some (M2 Float.pow)
  | "fabs" -> Some (M1 Float.abs)
  | "floor" -> Some (M1 Float.floor)
  | "fmin" -> Some (M2 Float.min)
  | "fmax" -> Some (M2 Float.max)
  | "fdivide" -> Some (M2 ( /. ))
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

type scope = {
  sc_locals : (string, int) Hashtbl.t option;  (* None for the globals block *)
  sc_globals : (string, int) Hashtbl.t;
  sc_funcs : (string, int) Hashtbl.t;
  sc_may_time : bool array;
}

let resolve_var sc name =
  let global () =
    match Hashtbl.find_opt sc.sc_globals name with
    | Some i -> Global i
    | None -> Unbound name
  in
  match sc.sc_locals with
  | None -> global ()
  | Some locals -> (
      match Hashtbl.find_opt locals name with
      | Some i -> Local i
      | None -> global ())

let rec compile_expr sc (e : Minic.Ast.expr) : expr =
  let open Minic.Ast in
  match e.enode with
  | Int_lit n -> { ecost = 0.0; e = ELit (Value.VInt n) }
  | Float_lit (f, _) -> { ecost = 0.0; e = ELit (Value.VFloat f) }
  | Bool_lit b -> { ecost = 0.0; e = ELit (Value.VBool b) }
  | Var v -> { ecost = 0.0; e = EVar (resolve_var sc v) }
  | Unop (Neg, a) ->
      let a = compile_expr sc a in
      { ecost = C.int_op +. a.ecost; e = ENeg a }
  | Unop (Not, a) ->
      let a = compile_expr sc a in
      { ecost = C.int_op +. a.ecost; e = ENot a }
  | Binop (LAnd, a, b) ->
      let a = compile_expr sc a and b = compile_expr sc b in
      (* the right operand's cost is charged only if it is evaluated *)
      { ecost = C.int_op +. a.ecost; e = EAnd (a, b) }
  | Binop (LOr, a, b) ->
      let a = compile_expr sc a and b = compile_expr sc b in
      { ecost = C.int_op +. a.ecost; e = EOr (a, b) }
  | Binop (((Add | Sub) as op), a, b) ->
      let a = compile_expr sc a and b = compile_expr sc b in
      {
        ecost = C.int_op +. a.ecost +. b.ecost;
        e = EArith (op, C.float_add -. C.int_op, a, b);
      }
  | Binop (Mul, a, b) ->
      let a = compile_expr sc a and b = compile_expr sc b in
      {
        ecost = C.int_op +. a.ecost +. b.ecost;
        e = EArith (Mul, C.float_mul -. C.int_op, a, b);
      }
  | Binop (Div, a, b) ->
      let a = compile_expr sc a and b = compile_expr sc b in
      (* int vs float division costs differ: charged entirely at run time *)
      { ecost = a.ecost +. b.ecost; e = EDiv (a, b) }
  | Binop (Mod, a, b) ->
      let a = compile_expr sc a and b = compile_expr sc b in
      { ecost = C.int_op +. a.ecost +. b.ecost; e = EMod (a, b) }
  | Binop (((Lt | Le | Gt | Ge | Eq | Ne) as op), a, b) ->
      let a = compile_expr sc a and b = compile_expr sc b in
      { ecost = C.int_op +. a.ecost +. b.ecost; e = ECmp (op, a, b) }
  | Index (a, i) ->
      let a = compile_expr sc a and i = compile_expr sc i in
      { ecost = C.int_op +. C.load +. a.ecost +. i.ecost; e = EIndex (a, i) }
  | Cast (t, a) ->
      let a = compile_expr sc a in
      { ecost = a.ecost; e = ECast (t, a) }
  | Call (fname, args) -> compile_call sc fname args

and compile_call sc fname args =
  let cargs = List.map (compile_expr sc) args in
  let argcost = List.fold_left (fun acc (a : expr) -> acc +. a.ecost) 0.0 cargs in
  let mk ecost callee = { ecost; e = ECall { callee; cargs } } in
  match Hashtbl.find_opt sc.sc_funcs fname with
  | Some idx -> mk (argcost +. C.call) (User idx)
  | None -> (
      match Minic.Builtins.cost_class fname with
      | Some cls -> (
          let base = strip_math fname in
          match math_impl base with
          | Some mimpl ->
              mk
                (argcost +. C.math_call cls)
                (Math { mimpl; mflops = Minic.Builtins.flops_of_class cls })
          | None -> mk argcost (Math_unimpl base))
      | None -> (
          match (fname, List.length cargs) with
          | "rand01", 0 -> mk (argcost +. C.call) Rand01
          | "rand_int", 1 -> mk (argcost +. C.call) Rand_int
          | "print_int", 1 -> mk argcost Print_int
          | "print_float", 1 -> mk argcost Print_float
          | "__timer_start", 1 -> mk argcost Timer_start
          | "__timer_stop", 1 -> mk argcost Timer_stop
          | _ -> mk argcost (Unknown fname)))

(* compile_stmt returns (compiled stmt, static cost, ends-charge-group) *)
let rec compile_stmt sc (s : Minic.Ast.stmt) : stmt * float * bool =
  let open Minic.Ast in
  let mt = sc.sc_may_time in
  match s.snode with
  | Decl d -> (
      let slot = resolve_var sc d.dname in
      match d.dsize with
      | Some size_e ->
          let size = compile_expr sc size_e in
          ( SDeclArr { slot; typ = d.dtyp; name = d.dname; size },
            size.ecost,
            expr_may_time mt size )
      | None ->
          let init = Option.map (compile_expr sc) d.dinit in
          let icost, brk =
            match init with
            | Some e -> (e.ecost, expr_may_time mt e)
            | None -> (0.0, false)
          in
          (SDeclVar { slot; typ = d.dtyp; init }, icost, brk))
  | Assign (Lvar v, aop, e) ->
      let rhs = compile_expr sc e in
      let opc =
        match aop with
        | AddEq | SubEq | MulEq -> C.int_op
        | Set | DivEq -> 0.0
      in
      ( SAssign { slot = resolve_var sc v; aop; rhs },
        rhs.ecost +. opc,
        expr_may_time mt rhs )
  | Assign (Lindex (a, i), aop, e) ->
      let rhs = compile_expr sc e in
      let arr = compile_expr sc a in
      let idx = compile_expr sc i in
      let opc =
        match aop with
        | Set -> 0.0
        | AddEq | SubEq | MulEq -> C.load +. C.int_op
        | DivEq -> C.load
      in
      ( SStore { arr; idx; aop; rhs },
        rhs.ecost +. arr.ecost +. idx.ecost +. C.int_op +. C.store +. opc,
        expr_may_time mt rhs || expr_may_time mt arr || expr_may_time mt idx )
  | Expr_stmt e ->
      let ce = compile_expr sc e in
      (SExpr ce, ce.ecost, expr_may_time mt ce)
  | If (c, b1, b2) ->
      let c = compile_expr sc c in
      ( SIf (c, compile_block sc b1, Option.map (compile_block sc) b2),
        C.branch +. c.ecost,
        true )
  | While (c, b) ->
      (* loops charge internally (entry branch, per-iteration costs) so
         that the per-loop cycle window stays exact *)
      ( SWhile { wsid = s.sid; cond = compile_expr sc c; body = compile_block sc b },
        0.0,
        true )
  | For (h, b) ->
      ( SFor
          {
            fsid = s.sid;
            slot = resolve_var sc h.index;
            init = compile_expr sc h.init;
            bound = compile_expr sc h.bound;
            inclusive = h.inclusive;
            step = compile_expr sc h.step;
            body = compile_block sc b;
          },
        0.0,
        true )
  | Return eo ->
      let ce = Option.map (compile_expr sc) eo in
      (SReturn ce, (match ce with Some e -> e.ecost | None -> 0.0), true)
  | Block b -> (SBlock (compile_block sc b), 0.0, true)

and compile_block sc (b : Minic.Ast.block) : block =
  let groups = ref [] in
  let cur = ref [] in
  let cur_cost = ref 0.0 in
  let flush () =
    if !cur <> [] then (
      groups := { gcost = !cur_cost; gstmts = List.rev !cur } :: !groups;
      cur := [];
      cur_cost := 0.0)
  in
  List.iter
    (fun s ->
      let cs, scost, brk = compile_stmt sc s in
      cur := cs :: !cur;
      cur_cost := !cur_cost +. scost;
      if brk then flush ())
    b;
  flush ();
  List.rev !groups

let compile_func sc_globals sc_funcs mt (f : Minic.Ast.func) : cfunc =
  let locals = Hashtbl.create 16 in
  let n = ref 0 in
  let add name =
    if not (Hashtbl.mem locals name) then (
      Hashtbl.add locals name !n;
      incr n)
  in
  List.iter (fun (p : Minic.Ast.param) -> add p.pname_) f.fparams;
  Minic.Ast.iter_func
    (fun s ->
      match s.snode with
      | Decl d -> add d.dname
      | For (h, _) -> add h.index
      | _ -> ())
    f;
  let sc =
    { sc_locals = Some locals; sc_globals; sc_funcs; sc_may_time = mt }
  in
  {
    cf_name = f.fname;
    cf_params = f.fparams;
    cf_param_slots =
      Array.of_list
        (List.map
           (fun (p : Minic.Ast.param) -> Hashtbl.find locals p.pname_)
           f.fparams);
    cf_nslots = !n;
    cf_body = compile_block sc f.fbody;
  }

let compile (p : Minic.Ast.program) : t =
  let sc_funcs = Hashtbl.create 16 in
  List.iteri
    (fun i (f : Minic.Ast.func) ->
      (* first function of each name wins, like find_func_opt *)
      if not (Hashtbl.mem sc_funcs f.fname) then Hashtbl.add sc_funcs f.fname i)
    p.funcs;
  let mt = timer_reach p sc_funcs in
  let sc_globals = Hashtbl.create 16 in
  let ng = ref 0 in
  let addg name =
    if not (Hashtbl.mem sc_globals name) then (
      Hashtbl.add sc_globals name !ng;
      incr ng)
  in
  List.iter
    (Minic.Ast.iter_stmt (fun s ->
         match s.snode with
         | Decl d -> addg d.dname
         | For (h, _) -> addg h.index
         | _ -> ()))
    p.globals;
  let gsc =
    { sc_locals = None; sc_globals; sc_funcs; sc_may_time = mt }
  in
  let cglobals = compile_block gsc p.globals in
  let cfuncs = Array.of_list (List.map (compile_func sc_globals sc_funcs mt) p.funcs) in
  {
    source = p;
    cfuncs;
    cglobals;
    nglobals = !ng;
    main_idx =
      (match Hashtbl.find_opt sc_funcs "main" with Some i -> i | None -> -1);
    func_index = sc_funcs;
  }
