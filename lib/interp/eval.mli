(** The MiniC interpreter.

    Executes a program from [main], charging virtual cycles per
    {!Profile.Cost} and recording the observations the dynamic
    design-flow tasks consume.  Deterministic: repeated runs (including
    of instrumented variants) see identical pseudo-random inputs.

    Programs are slot-compiled (see {!Resolve}) and then lowered once
    more, to two interchangeable engines:

    - {e threaded code} — pre-bound closures, one per statement and
      expression node (the PR-5 engine, kept verbatim);
    - a {e flat register-bytecode VM} (see {!Bytecode} and DESIGN.md
      §14) — dense instruction arrays over an integer-register frame,
      with profile-guided superinstructions inside fused loop kernels
      and domain-sharded execution of data-parallel loops.

    {!run_compiled} picks the VM unless the [PSAFLOW_NO_VM] environment
    knob disables it.  All engines (including the original tree walker,
    kept as {!run_ir}) are bit-identical in every observable: printed
    output, return value, the full virtual-cycle profile, loop stats,
    error messages and error points.  The test suite asserts this. *)

(** Result of running a program. *)
type run = {
  profile : Profile.t;
  output : string;  (** everything printed by [print_int]/[print_float] *)
  return_value : Value.t;
}

(** A compiled program: the slot IR plus its lazily compiled engine
    variants (threaded closures and register bytecode). *)
type compiled

(** Run [program] from [main].

    @param focus name of the kernel function to profile as an
      accelerator-offload candidate (collects {!Profile.kernel_obs})
    @param fuel statement/iteration budget guarding against hangs
      (default 200 million)
    @raise Value.Runtime_error on runtime faults (out-of-bounds access,
      integer division by zero, fuel exhaustion, missing [main], ...) *)
val run : ?focus:string -> ?fuel:int -> Minic.Ast.program -> run

(** Compile a program once; the result can be executed many times with
    {!run_compiled} without re-resolving or re-compiling.  The slot IR
    is first optimized by {!Opt.optimize} unless the [PSAFLOW_NO_OPT]
    environment knob disables it.

    @param vm_profile a {!Profile.t} from a previous run of the same
      program; when given, the bytecode superinstruction selector only
      rewrites loop kernels that were hot in it (see
      {!Bytecode.hot_of_profile}) *)
val compile : ?vm_profile:Profile.t -> Minic.Ast.program -> compiled

(** Compile an already-resolved slot IR without invoking the optimizer
    stage.  The entry point for per-pass bit-identity tests, which
    optimize with an explicit {!Opt.config} and compare against
    {!run_ir} on the raw IR.

    @param vm_hot heat oracle for the bytecode superinstruction
      selector, keyed by fused-loop statement id (default: everything
      hot) *)
val compile_resolved : ?vm_hot:(int -> bool) -> Resolve.t -> compiled

(** Force every lazily compiled engine variant (threaded plain,
    threaded tracking, register bytecode).  [Lazy.force] is not safe
    under concurrent domains, so a [compiled] value shared across
    domains (the compile-stage memo) must be forced eagerly by the
    publishing domain. *)
val force_engines : compiled -> unit

(** Run an already-compiled program from [main].  Equivalent to {!run}
    on the source program.  Dispatches to {!run_vm} unless
    [PSAFLOW_NO_VM] (or {!set_vm_enabled}[ false]) selects
    {!run_threaded}. *)
val run_compiled : ?focus:string -> ?fuel:int -> compiled -> run

(** Run an already-compiled program through the register-bytecode VM. *)
val run_vm : ?focus:string -> ?fuel:int -> compiled -> run

(** Run an already-compiled program through the threaded-code closures
    (the PR-5 engine, kept verbatim). *)
val run_threaded : ?focus:string -> ?fuel:int -> compiled -> run

(** Run the slot IR through the reference tree walker (the
    pre-threaded-code interpreter).  Profiles, outputs and error points
    are bit-identical to {!run_compiled}; counted under the
    [interp_ir_runs] metric instead of [interp_runs].  Exists for
    bit-identity testing and before/after benchmarking. *)
val run_ir : ?focus:string -> ?fuel:int -> Resolve.t -> run

(** {1 VM execution knobs} *)

(** Whether {!run_compiled} currently dispatches to the VM.  Seeded
    from the [PSAFLOW_NO_VM] environment knob at startup. *)
val vm_is_enabled : unit -> bool

(** Override the VM dispatch at run time (tests, benchmarks). *)
val set_vm_enabled : bool -> unit

(** Worker-domain count for sharded kernel execution.  [None] (the
    default) defers to the [PSAFLOW_VM_DOMAINS] environment knob, and
    past that to [min 8 (Domain.recommended_domain_count ())]. *)
val vm_jobs_override : int option ref

(** Minimum trip count before a shardable kernel is actually split
    across domains; below it the per-domain setup dwarfs the work.
    Tests lower this to force sharding on small inputs. *)
val vm_shard_min : int ref
