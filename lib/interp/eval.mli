(** The MiniC interpreter.

    Executes a program from [main], charging virtual cycles per
    {!Profile.Cost} and recording the observations the dynamic
    design-flow tasks consume.  Deterministic: repeated runs (including
    of instrumented variants) see identical pseudo-random inputs. *)

(** Result of running a program. *)
type run = {
  profile : Profile.t;
  output : string;  (** everything printed by [print_int]/[print_float] *)
  return_value : Value.t;
}

(** Run [program] from [main].

    @param focus name of the kernel function to profile as an
      accelerator-offload candidate (collects {!Profile.kernel_obs})
    @param fuel statement/iteration budget guarding against hangs
      (default 200 million)
    @raise Value.Runtime_error on runtime faults (out-of-bounds access,
      integer division by zero, fuel exhaustion, missing [main], ...) *)
val run : ?focus:string -> ?fuel:int -> Minic.Ast.program -> run

(** Slot-compile a program once (see {!Resolve}); the result can be
    executed many times with {!run_compiled} without re-resolving. *)
val compile : Minic.Ast.program -> Resolve.t

(** Run an already-compiled program from [main].  Equivalent to {!run}
    on the source program. *)
val run_compiled : ?focus:string -> ?fuel:int -> Resolve.t -> run
