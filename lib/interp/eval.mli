(** The MiniC interpreter.

    Executes a program from [main], charging virtual cycles per
    {!Profile.Cost} and recording the observations the dynamic
    design-flow tasks consume.  Deterministic: repeated runs (including
    of instrumented variants) see identical pseudo-random inputs.

    Programs are slot-compiled (see {!Resolve}) and then compiled once
    more to {e threaded code}: pre-bound closures, one per statement and
    expression node, so the hot loop performs no per-statement
    constructor dispatch.  Two variants exist per program — a non-focus
    fast path with no kernel-tracking test on memory accesses, and a
    focus-tracking variant — compiled lazily on first use.  The original
    tree walker over the slot IR is kept as {!run_ir}, the semantic
    reference the test suite checks the threaded code against,
    bit-identically. *)

(** Result of running a program. *)
type run = {
  profile : Profile.t;
  output : string;  (** everything printed by [print_int]/[print_float] *)
  return_value : Value.t;
}

(** A threaded-code program: the slot IR plus its lazily compiled
    closure variants. *)
type compiled

(** Run [program] from [main].

    @param focus name of the kernel function to profile as an
      accelerator-offload candidate (collects {!Profile.kernel_obs})
    @param fuel statement/iteration budget guarding against hangs
      (default 200 million)
    @raise Value.Runtime_error on runtime faults (out-of-bounds access,
      integer division by zero, fuel exhaustion, missing [main], ...) *)
val run : ?focus:string -> ?fuel:int -> Minic.Ast.program -> run

(** Compile a program to threaded code once; the result can be executed
    many times with {!run_compiled} without re-resolving or
    re-compiling.  The slot IR is first optimized by {!Opt.optimize}
    unless the [PSAFLOW_NO_OPT] environment knob disables it. *)
val compile : Minic.Ast.program -> compiled

(** Compile an already-resolved slot IR to threaded code without
    invoking the optimizer stage.  The entry point for per-pass
    bit-identity tests, which optimize with an explicit {!Opt.config}
    and compare against {!run_ir} on the raw IR. *)
val compile_resolved : Resolve.t -> compiled

(** Run an already-compiled program from [main].  Equivalent to {!run}
    on the source program. *)
val run_compiled : ?focus:string -> ?fuel:int -> compiled -> run

(** Run the slot IR through the reference tree walker (the
    pre-threaded-code interpreter).  Profiles, outputs and error points
    are bit-identical to {!run_compiled}; counted under the
    [interp_ir_runs] metric instead of [interp_runs].  Exists for
    bit-identity testing and before/after benchmarking. *)
val run_ir : ?focus:string -> ?fuel:int -> Resolve.t -> run
