(** Shared profile cache.

    Every dynamic design-flow task (hotspot detection, trip counts, data
    in/out, alias analysis, feature extraction) observes a program
    through one fused profiling execution ({!Fused_profile}); this
    module memoizes those runs so all consumers of the same request
    share one execution process-wide.

    Keying.  The key is exactly the fused request [(program, workload,
    focus)]: a digest of the pretty-printed source, the pre-order list
    of loop statement ids, and the focus function name.  Loop ids must
    be part of the key because the profile's per-loop trip statistics
    are keyed by them: two structurally equal programs whose loops carry
    different ids need distinct entries.  Program variants that differ
    textually (e.g. timer-instrumented copies) hash differently from the
    bare program, while re-running the *same* variant hits.  The
    workload size [n] needs no dedicated key component: it is baked into
    the program text.

    Entries are returned by reference; treat cached {!Eval.run} values
    (and their profiles) as read-only.

    The cache is a process-wide table guarded by a mutex so DSE worker
    domains can share it; the interpreter run itself executes outside
    the lock (a racing miss may compute the same entry twice, which is
    harmless because runs are deterministic).

    Capacity is bounded ([PSAFLOW_CACHE_CAP], default 512 entries) with
    insertion-order eviction — within one flow the hot entries are the
    most recent ones, so FIFO loses almost nothing over LRU and needs no
    per-hit bookkeeping.  Hit/miss/eviction counts are mirrored into the
    process-wide metrics registry ({!Flow_obs.Metrics.global}) as
    [profile_cache_hits]/[profile_cache_misses]/
    [profile_cache_evictions], and every cache consultation is a trace
    span carrying its [hit] outcome. *)

let lock = Mutex.create ()
let table : (string, Eval.run) Hashtbl.t = Hashtbl.create 64
let insertion_order : string Queue.t = Queue.create ()

type stats = { mutable hits : int; mutable misses : int; mutable evictions : int }

let counters = { hits = 0; misses = 0; evictions = 0 }

let default_capacity = 512

let capacity =
  ref
    (Flow_obs.Env.int ~name:"PSAFLOW_CACHE_CAP" ~default:default_capacity
       ~min:1 ())

(** Change the entry bound (also settable via [PSAFLOW_CACHE_CAP]).
    Takes effect on the next insertion. *)
let set_capacity c =
  if c < 1 then invalid_arg "Profile_cache.set_capacity: capacity must be >= 1";
  capacity := c

let enabled =
  ref
    (match Sys.getenv_opt "PSAFLOW_NO_CACHE" with
    | Some ("1" | "true" | "yes") -> false
    | _ -> true)

(** Turn the cache off (analyses fall back to fresh runs) or back on.
    Also controlled by the [PSAFLOW_NO_CACHE] env var. *)
let set_enabled b = enabled := b

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(** Drop all entries (keeps the hit/miss/eviction counters). *)
let clear () =
  with_lock (fun () ->
      Hashtbl.reset table;
      Queue.clear insertion_order)

type snapshot = { hits : int; misses : int; evictions : int }

(** Cumulative counts since start or {!reset_stats}. *)
let stats () =
  with_lock (fun () ->
      {
        hits = counters.hits;
        misses = counters.misses;
        evictions = counters.evictions;
      })

let reset_stats () =
  with_lock (fun () ->
      counters.hits <- 0;
      counters.misses <- 0;
      counters.evictions <- 0)

let key ?focus (p : Minic.Ast.program) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Minic.Pretty.program_to_string p);
  Buffer.add_char buf '\000';
  Minic.Ast.iter_program
    ~fs:(fun s ->
      match s.snode with
      | For _ | While _ ->
          Buffer.add_string buf (string_of_int s.sid);
          Buffer.add_char buf ';'
      | _ -> ())
    p;
  (match focus with
  | Some f ->
      Buffer.add_char buf '#';
      Buffer.add_string buf f
  | None -> ());
  Digest.string (Buffer.contents buf)

let gincr name = Flow_obs.Metrics.incr Flow_obs.Metrics.global name

(* Keep the table within [capacity] entries, insertion-order eviction.
   Keys in the queue may already have been dropped by {!clear}; those
   are skipped without counting. *)
let evict_excess_locked () =
  while Hashtbl.length table > !capacity && not (Queue.is_empty insertion_order) do
    let oldest = Queue.pop insertion_order in
    if Hashtbl.mem table oldest then begin
      Hashtbl.remove table oldest;
      counters.evictions <- counters.evictions + 1;
      gincr "profile_cache_evictions"
    end
  done

(** Like {!Eval.run}, but memoized.  Only the default fuel budget is
    cacheable; callers that restrict fuel must use {!Eval.run}
    directly. *)
let run ?focus (p : Minic.Ast.program) : Eval.run =
  if not !enabled then Eval.run ?focus p
  else
    Flow_obs.Trace.with_span ~cat:"interp" "profile_cache.run" @@ fun () ->
    let k = key ?focus p in
    let cached =
      with_lock (fun () ->
          match Hashtbl.find_opt table k with
          | Some r ->
              counters.hits <- counters.hits + 1;
              Some r
          | None ->
              counters.misses <- counters.misses + 1;
              None)
    in
    match cached with
    | Some r ->
        gincr "profile_cache_hits";
        Flow_obs.Trace.add_args [ ("hit", Flow_obs.Attr.Bool true) ];
        r
    | None ->
        gincr "profile_cache_misses";
        Flow_obs.Trace.add_args [ ("hit", Flow_obs.Attr.Bool false) ];
        let r = Eval.run ?focus p in
        with_lock (fun () ->
            if not (Hashtbl.mem table k) then begin
              Hashtbl.add table k r;
              Queue.push k insertion_order;
              evict_excess_locked ()
            end);
        r
