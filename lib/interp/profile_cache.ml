(** Shared profile cache — the fused-profile stage of the memo
    hierarchy.

    Every dynamic design-flow task (hotspot detection, trip counts, data
    in/out, alias analysis, feature extraction) observes a program
    through one fused profiling execution ({!Fused_profile}); this
    module memoizes those runs so all consumers of the same request
    share one execution process-wide.  Since the stage-memo hierarchy
    ({!Flow_memo}) made parse/extract/reduce artifacts stable across
    requests, the same entries are also shared across daemon
    submissions: a variant request (same source, different budget or
    strategy) re-uses the profile runs of the first request.

    Keying.  The key is exactly the fused request [(program, workload,
    focus)]: a digest of the pretty-printed source, the pre-order list
    of loop statement ids, and the focus function name.  Loop ids must
    be part of the key because the profile's per-loop trip statistics
    are keyed by them: two structurally equal programs whose loops carry
    different ids need distinct entries.  Program variants that differ
    textually (e.g. timer-instrumented copies) hash differently from the
    bare program, while re-running the *same* variant hits.  The
    workload size [n] needs no dedicated key component: it is baked into
    the program text.

    Entries are returned by reference; treat cached {!Eval.run} values
    (and their profiles) as read-only.

    The store is a single-shard {!Flow_memo.Cache}: misses are
    single-flight (concurrent domains asking for the same run block on
    one execution instead of duplicating it) and eviction is true LRU —
    every hit re-stamps the entry.  Capacity is bounded by
    [PSAFLOW_MEMO_CAP] (default 512 entries); the pre-hierarchy
    [PSAFLOW_CACHE_CAP] and [PSAFLOW_NO_CACHE] knobs remain as
    deprecated aliases with a once-per-process warning.  This stage is
    exempt from [PSAFLOW_NO_MEMO] (it predates the hierarchy, and
    disabling it would not restore pre-memoization behavior — it would
    regress it).  Hit/miss/eviction counts are mirrored into the
    process-wide metrics registry ({!Flow_obs.Metrics.global}) as
    [profile_cache_hits]/[profile_cache_misses]/
    [profile_cache_evictions], and every cache consultation is a trace
    span carrying its [hit] outcome.

    A second cache level backs the misses: compiled programs (slot IR
    resolved, optimized, all engine variants forced) are memoized per
    (program digest, optimizer fingerprint) so a profile-stage miss
    that only differs in [focus] — or arrives after an eviction — skips
    resolve/optimize/lower and pays only the interpreter run.  The
    compile stage follows the normal hierarchy rules: it honors
    [PSAFLOW_NO_MEMO] and bypasses itself under the global tracer so
    traced runs keep their [interp.compile] spans. *)

let default_capacity = 512

let initial_capacity =
  match Sys.getenv_opt "PSAFLOW_CACHE_CAP" with
  | Some _ ->
      Flow_obs.Env.warn_once "PSAFLOW_CACHE_CAP#deprecated"
        "PSAFLOW_CACHE_CAP is deprecated; use PSAFLOW_MEMO_CAP (still \
         honoring it for the profile stage)";
      Flow_obs.Env.int ~name:"PSAFLOW_CACHE_CAP" ~default:default_capacity
        ~min:1 ()
  | None -> Flow_memo.env_capacity ()

let initially_enabled =
  match Sys.getenv_opt "PSAFLOW_NO_CACHE" with
  | Some _ ->
      Flow_obs.Env.warn_once "PSAFLOW_NO_CACHE#deprecated"
        "PSAFLOW_NO_CACHE is deprecated; use PSAFLOW_NO_MEMO to disable \
         the stage-memo hierarchy (PSAFLOW_NO_CACHE still disables the \
         profile stage alone)";
      not (Flow_obs.Env.flag ~name:"PSAFLOW_NO_CACHE" ())
  | None -> true

(* Single shard on purpose: the interpreter run happens outside the
   shard lock, so striping buys nothing here, and one shard keeps the
   LRU eviction order (and the eviction counter) globally exact — the
   accounting the capacity tests pin down. *)
let cache : Eval.run Flow_memo.Cache.t =
  Flow_memo.Cache.create ~name:"profile" ~metric_prefix:"profile_cache"
    ~cap:initial_capacity ~shards:1 ~trace_bypass:false ~no_memo_exempt:true
    ()

let () = Flow_memo.Cache.set_enabled cache initially_enabled

let compile_cache : Eval.compiled Flow_memo.Cache.t =
  Flow_memo.Cache.create ~name:"compile" ()

(** Change the profile-stage entry bound (also settable via
    [PSAFLOW_MEMO_CAP], or the deprecated [PSAFLOW_CACHE_CAP]).  Takes
    effect on the next insertion. *)
let set_capacity c =
  if c < 1 then invalid_arg "Profile_cache.set_capacity: capacity must be >= 1";
  Flow_memo.Cache.set_capacity cache c

(** Turn the cache off (analyses fall back to fresh runs) or back on.
    Also controlled by the deprecated [PSAFLOW_NO_CACHE] env var. *)
let set_enabled b = Flow_memo.Cache.set_enabled cache b

(** Drop all entries — profile runs and memoized compiles — keeping
    the hit/miss/eviction counters. *)
let clear () =
  Flow_memo.Cache.clear cache;
  Flow_memo.Cache.clear compile_cache

type snapshot = { hits : int; misses : int; evictions : int }

(** Cumulative profile-stage counts since start or {!reset_stats}. *)
let stats () =
  let s = Flow_memo.Cache.stats cache in
  {
    hits = s.Flow_memo.Cache.hits;
    misses = s.Flow_memo.Cache.misses;
    evictions = s.Flow_memo.Cache.evictions;
  }

let reset_stats () = Flow_memo.Cache.reset_stats cache

let key ?focus (p : Minic.Ast.program) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Minic.Pretty.program_to_string p);
  Buffer.add_char buf '\000';
  Minic.Ast.iter_program
    ~fs:(fun s ->
      match s.snode with
      | For _ | While _ ->
          Buffer.add_string buf (string_of_int s.sid);
          Buffer.add_char buf ';'
      | _ -> ())
    p;
  (match focus with
  | Some f ->
      Buffer.add_char buf '#';
      Buffer.add_string buf f
  | None -> ());
  Digest.string (Buffer.contents buf)

(** Like {!Eval.compile}, but memoized per (program digest, optimizer
    fingerprint), with every engine variant forced so the value is
    safe to share across domains.  Only the no-[vm_profile] compile is
    cacheable — exactly the one {!Eval.run} performs. *)
let compile (p : Minic.Ast.program) : Eval.compiled =
  let k =
    Printf.sprintf "%s|opt=%b" (Digest.to_hex (key p)) (Opt.is_enabled ())
  in
  Flow_memo.Cache.find_or_compute compile_cache ~key:k (fun () ->
      let c = Eval.compile p in
      Eval.force_engines c;
      c)

(** Like {!Eval.run}, but memoized.  Only the default fuel budget is
    cacheable; callers that restrict fuel must use {!Eval.run}
    directly. *)
let run ?focus (p : Minic.Ast.program) : Eval.run =
  if not (Flow_memo.Cache.active cache) then Eval.run ?focus p
  else
    Flow_obs.Trace.with_span ~cat:"interp" "profile_cache.run" @@ fun () ->
    let k = key ?focus p in
    Flow_memo.Cache.find_or_compute cache ~key:k
      ~on:(fun hit ->
        Flow_obs.Trace.add_args [ ("hit", Flow_obs.Attr.Bool hit) ])
      (fun () -> Eval.run_compiled ?focus (compile p))
