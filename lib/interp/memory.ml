(** Array storage for the MiniC interpreter.

    Each array declaration allocates a [region]; pointers are (region id,
    offset) pairs.  Regions remember their element type so the profiler can
    charge the correct number of bytes per access.

    Region ids are small sequential integers, so the id -> region table is
    a growable array indexed directly by id — the per-access [Hashtbl]
    lookup of the original implementation was the single hottest
    operation of a profiling run (every load/store consulted it up to
    three times: value access, byte accounting, focus tracking).  The
    interpreter fetches the region record once per access and reads
    everything it needs from it. *)

type region = {
  id : int;
  name : string;  (** declaring variable, for diagnostics *)
  elem_typ : Minic.Ast.typ;
  elem_bytes : int;
  data : Value.t array;
}

type t = {
  mutable regions : region array;  (** index = region id, for id < next_id *)
  mutable next_id : int;
}

let create () = { regions = [||]; next_id = 0 }

(** Allocate a region of [n] elements of type [elem_typ], zero-filled. *)
let alloc t ~name ~elem_typ n =
  if n < 0 then Value.err "negative array size %d for '%s'" n name;
  let id = t.next_id in
  let cap = Array.length t.regions in
  if id >= cap then begin
    let grown =
      Array.make
        (max 8 (2 * cap))
        { id = -1; name = ""; elem_typ; elem_bytes = 0; data = [||] }
    in
    Array.blit t.regions 0 grown 0 cap;
    t.regions <- grown
  end;
  let region =
    {
      id;
      name;
      elem_typ;
      elem_bytes = Minic.Ast.sizeof elem_typ;
      data = Array.make n (Value.zero_of_typ elem_typ);
    }
  in
  t.regions.(id) <- region;
  t.next_id <- id + 1;
  Value.VPtr { mem_id = id; off = 0 }

let region t id =
  if id >= 0 && id < t.next_id then Array.unsafe_get t.regions id
  else Value.err "dangling pointer (region %d)" id

let load t (p : Value.ptr) =
  let r = region t p.mem_id in
  if p.off < 0 || p.off >= Array.length r.data then
    Value.err "out-of-bounds read of '%s' at index %d (size %d)" r.name p.off
      (Array.length r.data);
  r.data.(p.off)

let store t (p : Value.ptr) v =
  let r = region t p.mem_id in
  if p.off < 0 || p.off >= Array.length r.data then
    Value.err "out-of-bounds write of '%s' at index %d (size %d)" r.name p.off
      (Array.length r.data);
  r.data.(p.off) <- v

let length t id = Array.length (region t id).data
let elem_bytes t id = (region t id).elem_bytes
