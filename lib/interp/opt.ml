(** Slot-IR optimizer: the stage between {!Resolve} and the threaded-code
    compiler of {!Eval}.

    Five passes, each individually toggleable and each carrying a
    bit-identity obligation against the reference walker
    ([Eval.run_ir] over the {e unoptimized} IR): same virtual-cycle
    totals, same counter values, same memory effects and focus ranges,
    same output, same error points, same fuel accounting.

    - {b constant folding}: pure constant subtrees collapse to
      {!Resolve.EFolded} nodes that replay the subtree's counter bumps
      and dynamic cycle charges (all folded arithmetic is the same
      in-process IEEE arithmetic the walker would have performed).
    - {b strength reduction}: arithmetic/comparison/division nodes whose
      int-vs-float path is statically known lose their runtime
      [is_float] dispatch ([EArithF]/[EArithI]/...).
    - {b dead-slot elimination}: [Set]-writes to local slots never read
      anywhere in their function become {!Resolve.SDrop}s — the rhs is
      still evaluated and the declaration coercion's error check is
      still applied, but nothing is stored.
    - {b loop-invariant hoisting}: pure float subtrees inside loop
      bodies whose free slots the body never writes are memoized in
      hidden frame slots ({!Resolve.EHoisted}), invalidated per loop
      invocation by a {!Resolve.SHoistReset}.
    - {b kernel specialization}: innermost counted loops whose bodies
      are straight-line float arithmetic over affine memory sites
      (elementwise maps, scaled accumulates/reductions, stencil reads)
      compile to {!Resolve.kernel}s — flat float-register programs whose
      per-iteration virtual costs are charged in bulk.

    Cycle-exactness of bulk charging rests on every {!Profile.Cost}
    constant being an integer-valued float: sums and products of
    integer-valued doubles below 2{^53} are exact, so [n] bulk-charged
    iterations equal [n] individually charged ones bit-for-bit.

    [PSAFLOW_NO_OPT=1] disables the whole stage (mirroring
    [PSAFLOW_NO_CACHE]); {!set_enabled} does the same programmatically. *)

module R = Resolve
module C = Profile.Cost
open Value

type config = {
  fold : bool;
  strength : bool;
  dead : bool;
  hoist : bool;
  specialize : bool;
}

let all_passes =
  { fold = true; strength = true; dead = true; hoist = true; specialize = true }

let no_passes =
  {
    fold = false;
    strength = false;
    dead = false;
    hoist = false;
    specialize = false;
  }

let enabled = ref (not (Flow_obs.Env.flag ~name:"PSAFLOW_NO_OPT" ()))

let set_enabled b = enabled := b
let is_enabled () = !enabled

(** Per-[optimize] pass statistics, also published to
    {!Flow_obs.Metrics.global} as [opt_*] counters. *)
type stats = {
  mutable consts_folded : int;
  mutable ops_strength_reduced : int;
  mutable slots_eliminated : int;
  mutable exprs_hoisted : int;
  mutable kernels_specialized : int;
}

(* ------------------------------------------------------------------ *)
(* Static value types                                                  *)
(* ------------------------------------------------------------------ *)

(* A whole-program flow-insensitive type for each local and global slot:
   the join of every value ever written to it.  [Bot] = never written
   (the slot still holds its initial [VUnit]).  Precision matters only
   for [TFloat] ("definitely a float at runtime") and for the
   definitely-not-float set; everything uncertain joins to [Top]. *)
type ty = Bot | TInt | TBool | TFloat | TUnit | TPtr of Minic.Ast.typ | Top

let join a b =
  if a = b then a else match (a, b) with Bot, x | x, Bot -> x | _ -> Top

let is_f = function TFloat -> true | _ -> false

(* [Value.is_float] is statically false: the int path of arith/cmp/div
   is taken (it may still error on VUnit/VPtr operands — exactly as the
   unoptimized node would). *)
let not_f = function
  | Bot | TInt | TBool | TUnit | TPtr _ -> true
  | TFloat | Top -> false

let ty_of_decl (typ : Minic.Ast.typ) ~(init : ty option) =
  match typ with
  | Minic.Ast.Tint -> TInt
  | Minic.Ast.Tfloat | Minic.Ast.Tdouble -> TFloat
  | Minic.Ast.Tbool -> TBool
  | Minic.Ast.Tptr _ | Minic.Ast.Tvoid -> (
      (* no coercion: the slot gets the init value as-is, or the typ's
         zero value *)
      match init with
      | Some t -> t
      | None -> (
          match typ with
          | Minic.Ast.Tptr t -> TPtr t
          | _ -> TUnit))

let arith_ty a b = if is_f a || is_f b then TFloat else if not_f a && not_f b then TInt else Top

(* Slot-type environment: one [ty array] per function frame plus one for
   the globals.  [tenv.(nfuncs)] is the global array. *)
type tenv = { locals : ty array array; globals : ty array }

let rec ety (env : tenv) (lt : ty array) (e : R.expr) : ty =
  match e.e with
  | R.ELit (VInt _) -> TInt
  | R.ELit (VFloat _) -> TFloat
  | R.ELit (VBool _) -> TBool
  | R.ELit VUnit -> TUnit
  | R.ELit (VPtr _) -> Top
  | R.EVar (R.Local i) -> lt.(i)
  | R.EVar (R.Global i) -> env.globals.(i)
  | R.EVar (R.Unbound _) -> Top
  | R.ENeg a -> (
      match ety env lt a with TFloat -> TFloat | TInt -> TInt | _ -> Top)
  | R.ENot _ -> TBool
  | R.EArith (_, _, a, b) | R.EArithF (_, _, a, b) | R.EArithI (_, a, b) ->
      arith_ty (ety env lt a) (ety env lt b)
  | R.EDiv (a, b) | R.EDivF (a, b) | R.EDivI (a, b) ->
      arith_ty (ety env lt a) (ety env lt b)
  | R.EMod _ -> TInt
  | R.ECmp _ | R.ECmpF _ | R.ECmpI _ -> TBool
  | R.EAnd _ | R.EOr _ -> TBool
  | R.EIndex (a, _) -> (
      (* float regions provably hold only [VFloat]s: allocation
         zero-fills with floats, Set-stores coerce, and compound stores
         on a float produce a float.  Int regions can be polluted by an
         uncoerced compound [/=], so they type as [Top]. *)
      match ety env lt a with
      | TPtr (Minic.Ast.Tfloat | Minic.Ast.Tdouble) -> TFloat
      | _ -> Top)
  | R.ECast (t, a) -> (
      match t with
      | Minic.Ast.Tint -> TInt
      | Minic.Ast.Tfloat | Minic.Ast.Tdouble -> TFloat
      | Minic.Ast.Tbool -> TBool
      | Minic.Ast.Tptr _ | Minic.Ast.Tvoid -> ety env lt a)
  | R.ECall { callee; _ } -> (
      match callee with
      | R.Math _ | R.Rand01 -> TFloat
      | R.Rand_int -> TInt
      | R.Print_int | R.Print_float | R.Timer_start | R.Timer_stop -> TUnit
      | R.User _ | R.Math_unimpl _ | R.Unknown _ -> Top)
  | R.EFolded f -> (
      match f.fval with
      | VInt _ -> TInt
      | VFloat _ -> TFloat
      | VBool _ -> TBool
      | VUnit -> TUnit
      | VPtr _ -> Top)
  | R.EHoisted _ -> TFloat

(* Iterate every expression of a statement (sub-expressions excluded —
   callers recurse via [iter_expr] when needed). *)
let rec stmt_exprs (s : R.stmt) : R.expr list =
  match s with
  | R.SDeclVar { init; _ } -> Option.to_list init
  | R.SDeclArr { size; _ } -> [ size ]
  | R.SAssign { rhs; _ } -> [ rhs ]
  | R.SStore { arr; idx; rhs; _ } -> [ rhs; arr; idx ]
  | R.SExpr e -> [ e ]
  | R.SIf (c, _, _) -> [ c ]
  | R.SWhile { cond; _ } -> [ cond ]
  | R.SFor { init; bound; step; _ } -> [ init; bound; step ]
  | R.SReturn eo -> Option.to_list eo
  | R.SBlock _ -> []
  | R.SDrop { drhs; _ } -> Option.to_list drhs
  | R.SHoistReset _ -> []
  | R.SFused { forig; _ } -> stmt_exprs forig

let rec sub_blocks (s : R.stmt) : R.block list =
  match s with
  | R.SIf (_, b1, b2) -> b1 :: Option.to_list b2
  | R.SWhile { body; _ } | R.SFor { body; _ } -> [ body ]
  | R.SBlock b -> [ b ]
  | R.SFused { forig; _ } -> sub_blocks forig
  | _ -> []

let rec iter_expr f (e : R.expr) =
  f e;
  match e.e with
  | R.ELit _ | R.EVar _ -> ()
  | R.ENeg a | R.ENot a | R.ECast (_, a) -> iter_expr f a
  | R.EArith (_, _, a, b)
  | R.EArithF (_, _, a, b)
  | R.EArithI (_, a, b)
  | R.EDiv (a, b)
  | R.EDivF (a, b)
  | R.EDivI (a, b)
  | R.EMod (a, b)
  | R.ECmp (_, a, b)
  | R.ECmpF (_, a, b)
  | R.ECmpI (_, a, b)
  | R.EAnd (a, b)
  | R.EOr (a, b)
  | R.EIndex (a, b) ->
      iter_expr f a;
      iter_expr f b
  | R.ECall { cargs; _ } -> List.iter (iter_expr f) cargs
  | R.EFolded _ -> ()
  | R.EHoisted h -> iter_expr f h.horig

let rec iter_stmts f (b : R.block) =
  List.iter
    (fun (g : R.group) ->
      List.iter
        (fun s ->
          f s;
          List.iter (iter_stmts f) (sub_blocks s))
        g.gstmts)
    b

(* One fixpoint over the whole program: slot writes join value types,
   user call sites join argument types into callee parameter slots
   (parameter binding does not coerce). *)
let type_program (cp : R.t) : tenv =
  let env =
    {
      locals =
        Array.map (fun (f : R.cfunc) -> Array.make (max 1 f.cf_nslots) Bot) cp.cfuncs;
      globals = Array.make (max 1 cp.nglobals) Bot;
    }
  in
  let changed = ref true in
  let assign_local lt i t =
    let j = join lt.(i) t in
    if j <> lt.(i) then (
      lt.(i) <- j;
      changed := true)
  in
  let assign lt (r : R.var_ref) t =
    match r with
    | R.Local i -> assign_local lt i t
    | R.Global i ->
        let j = join env.globals.(i) t in
        if j <> env.globals.(i) then (
          env.globals.(i) <- j;
          changed := true)
    | R.Unbound _ -> ()
  in
  let visit_calls lt e =
    iter_expr
      (fun (e : R.expr) ->
        match e.e with
        | R.ECall { callee = R.User idx; cargs } ->
            let f = cp.cfuncs.(idx) in
            let flt = env.locals.(idx) in
            if List.length cargs = Array.length f.cf_param_slots then
              List.iteri
                (fun i a -> assign_local flt f.cf_param_slots.(i) (ety env lt a))
                cargs
        | _ -> ())
      e
  in
  let visit_stmt lt (s : R.stmt) =
    List.iter (visit_calls lt) (stmt_exprs s);
    match s with
    | R.SDeclVar { slot; typ; init } ->
        assign lt slot
          (ty_of_decl typ ~init:(Option.map (ety env lt) init))
    | R.SDeclArr { slot; typ; _ } -> assign lt slot (TPtr typ)
    | R.SAssign { slot; aop = Minic.Ast.Set; rhs } -> assign lt slot (ety env lt rhs)
    | R.SAssign { slot; aop = Minic.Ast.DivEq; rhs } ->
        let old =
          match slot with
          | R.Local i -> lt.(i)
          | R.Global i -> env.globals.(i)
          | R.Unbound _ -> Top
        in
        assign lt slot (arith_ty old (ety env lt rhs))
    | R.SAssign { slot; aop = _; rhs } ->
        let old =
          match slot with
          | R.Local i -> lt.(i)
          | R.Global i -> env.globals.(i)
          | R.Unbound _ -> Top
        in
        assign lt slot (arith_ty old (ety env lt rhs))
    | R.SFor { slot; _ } -> assign lt slot TInt
    | _ -> ()
  in
  while !changed do
    changed := false;
    iter_stmts (visit_stmt env.globals) cp.cglobals;
    Array.iteri
      (fun i (f : R.cfunc) -> iter_stmts (visit_stmt env.locals.(i)) f.cf_body)
      cp.cfuncs
  done;
  env

(* ------------------------------------------------------------------ *)
(* Shared rewriting plumbing                                           *)
(* ------------------------------------------------------------------ *)

(* Rewrite every top-level expression and statement of a function body,
   preserving group structure and group costs (no pass changes any
   static cost; dropped/folded work is replayed dynamically). *)
let map_block ~(fe : R.expr -> R.expr) ~(fs : R.stmt -> R.stmt option) :
    R.block -> R.block =
  let rec go_stmt (s : R.stmt) : R.stmt =
    let s =
      match s with
      | R.SDeclVar d -> R.SDeclVar { d with init = Option.map fe d.init }
      | R.SDeclArr d -> R.SDeclArr { d with size = fe d.size }
      | R.SAssign a -> R.SAssign { a with rhs = fe a.rhs }
      | R.SStore st ->
          R.SStore { st with rhs = fe st.rhs; arr = fe st.arr; idx = fe st.idx }
      | R.SExpr e -> R.SExpr (fe e)
      | R.SIf (c, b1, b2) -> R.SIf (fe c, go_block b1, Option.map go_block b2)
      | R.SWhile w -> R.SWhile { w with cond = fe w.cond; body = go_block w.body }
      | R.SFor f ->
          R.SFor
            {
              f with
              init = fe f.init;
              bound = fe f.bound;
              step = fe f.step;
              body = go_block f.body;
            }
      | R.SReturn eo -> R.SReturn (Option.map fe eo)
      | R.SBlock b -> R.SBlock (go_block b)
      | R.SDrop d -> R.SDrop { d with drhs = Option.map fe d.drhs }
      | R.SHoistReset _ -> s
      | R.SFused f -> R.SFused { f with forig = go_stmt f.forig }
    in
    match fs s with Some s' -> s' | None -> s
  and go_block (b : R.block) : R.block =
    List.map
      (fun (g : R.group) -> { g with R.gstmts = List.map go_stmt g.gstmts })
      b
  in
  go_block

let keep (_ : R.stmt) : R.stmt option = None

(* ------------------------------------------------------------------ *)
(* Pass 1: constant folding                                            *)
(* ------------------------------------------------------------------ *)

(* The dynamic effects of evaluating a folded subtree: counter bumps and
   non-static cycle charges, replayed by [EFolded] at the original
   evaluation point (no observation point can fall inside a single
   expression evaluation, so replaying them all at once is exact). *)
type const = { cv : Value.t; c_flops : int; c_int_ops : int; c_dyn : float }

exception Not_const

let fold_pass (stats : stats) (cp : R.t) : R.t =
  (* numeric-only [to_int]/[to_float]/[to_bool]: folding never touches
     VUnit/VPtr operands (those error paths stay dynamic) *)
  let num_int = function
    | VInt n -> n
    | VBool b -> if b then 1 else 0
    | VFloat f -> int_of_float f
    | _ -> raise Not_const
  in
  let num_float = function
    | VFloat f -> f
    | VInt n -> float_of_int n
    | VBool b -> if b then 1.0 else 0.0
    | _ -> raise Not_const
  in
  let num_bool = function
    | VBool b -> b
    | VInt n -> n <> 0
    | VFloat f -> f <> 0.0
    | _ -> raise Not_const
  in
  let flt a b = is_float a || is_float b in
  (* returns the rewritten expr plus its constant descriptor if the
     whole subtree is a foldable constant *)
  let rec fold (e : R.expr) : R.expr * const option =
    let mk en = { e with R.e = en } in
    (* rebuild a non-foldable node over already-folded children *)
    let reify (child : R.expr) (c : const option) =
      match c with
      | Some d when d.c_flops = 0 && d.c_int_ops = 0 && d.c_dyn = 0.0 -> (
          match child.e with
          | R.ELit _ -> child
          | _ ->
              stats.consts_folded <- stats.consts_folded + 1;
              { child with R.e = R.ELit d.cv })
      | Some d -> (
          match child.e with
          | R.EFolded _ | R.ELit _ -> child
          | _ ->
              stats.consts_folded <- stats.consts_folded + 1;
              {
                child with
                R.e =
                  R.EFolded
                    {
                      fval = d.cv;
                      f_flops = d.c_flops;
                      f_int_ops = d.c_int_ops;
                      f_dyn = d.c_dyn;
                    };
              })
      | None -> child
    in
    let reify1 (child, c) = reify child c in
    match e.e with
    | R.ELit v -> (e, Some { cv = v; c_flops = 0; c_int_ops = 0; c_dyn = 0.0 })
    | R.EVar _ | R.EFolded _ | R.EHoisted _ -> (e, None)
    | R.ENeg a -> (
        let a', ca = fold a in
        match ca with
        | Some d -> (
            try
              match d.cv with
              | VInt n ->
                  (mk (R.ENeg a'), Some { d with cv = VInt (-n) })
              | VFloat f ->
                  ( mk (R.ENeg a'),
                    Some { d with cv = VFloat (-.f); c_flops = d.c_flops + 1 }
                  )
              | _ -> raise Not_const
            with Not_const -> (mk (R.ENeg (reify a' ca)), None))
        | None -> (mk (R.ENeg a'), None))
    | R.ENot a -> (
        let a', ca = fold a in
        match ca with
        | Some d -> (
            try (mk (R.ENot a'), Some { d with cv = VBool (not (num_bool d.cv)) })
            with Not_const -> (mk (R.ENot (reify a' ca)), None))
        | None -> (mk (R.ENot a'), None))
    | R.EArith (op, fresid, a, b) -> (
        let a', ca = fold a in
        let b', cb = fold b in
        let rebuilt () = mk (R.EArith (op, fresid, reify a' ca, reify b' cb)) in
        match (ca, cb) with
        | Some da, Some db -> (
            try
              let cv, c_flops, c_int_ops, c_dyn =
                if flt da.cv db.cv then
                  let x = num_float da.cv and y = num_float db.cv in
                  let v =
                    match op with
                    | Minic.Ast.Add -> x +. y
                    | Minic.Ast.Sub -> x -. y
                    | Minic.Ast.Mul -> x *. y
                    | _ -> raise Not_const
                  in
                  ( VFloat v,
                    da.c_flops + db.c_flops + 1,
                    da.c_int_ops + db.c_int_ops,
                    da.c_dyn +. db.c_dyn +. fresid )
                else
                  let x = num_int da.cv and y = num_int db.cv in
                  let v =
                    match op with
                    | Minic.Ast.Add -> x + y
                    | Minic.Ast.Sub -> x - y
                    | Minic.Ast.Mul -> x * y
                    | _ -> raise Not_const
                  in
                  ( VInt v,
                    da.c_flops + db.c_flops,
                    da.c_int_ops + db.c_int_ops + 1,
                    da.c_dyn +. db.c_dyn )
              in
              (rebuilt (), Some { cv; c_flops; c_int_ops; c_dyn })
            with Not_const -> (rebuilt (), None))
        | _ -> (rebuilt (), None))
    | R.EDiv (a, b) -> (
        let a', ca = fold a in
        let b', cb = fold b in
        let rebuilt () = mk (R.EDiv (reify a' ca, reify b' cb)) in
        match (ca, cb) with
        | Some da, Some db -> (
            try
              if flt da.cv db.cv then
                ( rebuilt (),
                  Some
                    {
                      cv = VFloat (num_float da.cv /. num_float db.cv);
                      c_flops = da.c_flops + db.c_flops + 1;
                      c_int_ops = da.c_int_ops + db.c_int_ops;
                      c_dyn = da.c_dyn +. db.c_dyn +. C.float_div;
                    } )
              else
                let d = num_int db.cv in
                if d = 0 then (rebuilt (), None)
                else
                  ( rebuilt (),
                    Some
                      {
                        cv = VInt (num_int da.cv / d);
                        c_flops = da.c_flops + db.c_flops;
                        c_int_ops = da.c_int_ops + db.c_int_ops + 1;
                        c_dyn = da.c_dyn +. db.c_dyn +. C.int_op;
                      } )
            with Not_const -> (rebuilt (), None))
        | _ -> (rebuilt (), None))
    | R.EMod (a, b) -> (
        let a', ca = fold a in
        let b', cb = fold b in
        let rebuilt () = mk (R.EMod (reify a' ca, reify b' cb)) in
        match (ca, cb) with
        | Some da, Some db -> (
            try
              let fl = flt da.cv db.cv in
              let d = num_int db.cv in
              if d = 0 then (rebuilt (), None)
              else
                ( rebuilt (),
                  Some
                    {
                      cv = VInt (num_int da.cv mod d);
                      c_flops = da.c_flops + db.c_flops + (if fl then 1 else 0);
                      c_int_ops =
                        (da.c_int_ops + db.c_int_ops + if fl then 0 else 1);
                      c_dyn = da.c_dyn +. db.c_dyn;
                    } )
            with Not_const -> (rebuilt (), None))
        | _ -> (rebuilt (), None))
    | R.ECmp (op, a, b) -> (
        let a', ca = fold a in
        let b', cb = fold b in
        let rebuilt () = mk (R.ECmp (op, reify a' ca, reify b' cb)) in
        match (ca, cb) with
        | Some da, Some db -> (
            try
              let fl = flt da.cv db.cv in
              let r =
                match op with
                | Minic.Ast.Lt ->
                    if fl then num_float da.cv < num_float db.cv
                    else num_int da.cv < num_int db.cv
                | Minic.Ast.Le ->
                    if fl then num_float da.cv <= num_float db.cv
                    else num_int da.cv <= num_int db.cv
                | Minic.Ast.Gt ->
                    if fl then num_float da.cv > num_float db.cv
                    else num_int da.cv > num_int db.cv
                | Minic.Ast.Ge ->
                    if fl then num_float da.cv >= num_float db.cv
                    else num_int da.cv >= num_int db.cv
                | Minic.Ast.Eq ->
                    if fl then num_float da.cv = num_float db.cv
                    else num_int da.cv = num_int db.cv
                | Minic.Ast.Ne ->
                    if fl then num_float da.cv <> num_float db.cv
                    else num_int da.cv <> num_int db.cv
                | _ -> raise Not_const
              in
              ( rebuilt (),
                Some
                  {
                    cv = VBool r;
                    c_flops = da.c_flops + db.c_flops;
                    c_int_ops = da.c_int_ops + db.c_int_ops;
                    c_dyn = da.c_dyn +. db.c_dyn;
                  } )
            with Not_const -> (rebuilt (), None))
        | _ -> (rebuilt (), None))
    | R.ECast (t, a) -> (
        let a', ca = fold a in
        match ca with
        | Some d -> (
            try
              let cv =
                match t with
                | Minic.Ast.Tint -> VInt (num_int d.cv)
                | Minic.Ast.Tfloat | Minic.Ast.Tdouble -> VFloat (num_float d.cv)
                | Minic.Ast.Tbool -> VBool (num_bool d.cv)
                | _ -> d.cv
              in
              (mk (R.ECast (t, a')), Some { d with cv })
            with Not_const -> (mk (R.ECast (t, reify a' ca)), None))
        | None -> (mk (R.ECast (t, a')), None))
    (* short-circuit operators charge the right operand's [ecost]
       conditionally: fold only inside the operands *)
    | R.EAnd (a, b) -> (mk (R.EAnd (reify1 (fold a), reify1 (fold b))), None)
    | R.EOr (a, b) -> (mk (R.EOr (reify1 (fold a), reify1 (fold b))), None)
    | R.EIndex (a, i) -> (mk (R.EIndex (reify1 (fold a), reify1 (fold i))), None)
    | R.ECall c ->
        ( mk (R.ECall { c with cargs = List.map (fun a -> reify1 (fold a)) c.cargs }),
          None )
    | R.EArithF _ | R.EArithI _ | R.EDivF _ | R.EDivI _ | R.ECmpF _ | R.ECmpI _
      ->
        (e, None)
  in
  let reify_top (e, c) =
    match c with
    | Some d when d.c_flops = 0 && d.c_int_ops = 0 && d.c_dyn = 0.0 -> (
        match e.R.e with
        | R.ELit _ -> e
        | _ ->
            stats.consts_folded <- stats.consts_folded + 1;
            { e with R.e = R.ELit d.cv })
    | Some d -> (
        match e.R.e with
        | R.EFolded _ | R.ELit _ -> e
        | _ ->
            stats.consts_folded <- stats.consts_folded + 1;
            {
              e with
              R.e =
                R.EFolded
                  {
                    fval = d.cv;
                    f_flops = d.c_flops;
                    f_int_ops = d.c_int_ops;
                    f_dyn = d.c_dyn;
                  };
            })
    | None -> e
  in
  let fe e = reify_top (fold e) in
  let rewrite = map_block ~fe ~fs:keep in
  {
    cp with
    R.cglobals = rewrite cp.cglobals;
    cfuncs =
      Array.map (fun (f : R.cfunc) -> { f with R.cf_body = rewrite f.cf_body }) cp.cfuncs;
  }

(* ------------------------------------------------------------------ *)
(* Pass 2: strength reduction                                          *)
(* ------------------------------------------------------------------ *)

let strength_pass (stats : stats) (cp : R.t) : R.t =
  let env = type_program cp in
  let rewrite_body lt =
    let rec fe (e : R.expr) : R.expr =
      let mk en = { e with R.e = en } in
      match e.e with
      | R.EArith (op, fresid, a, b) ->
          let a = fe a and b = fe b in
          let ta = ety env lt a and tb = ety env lt b in
          if is_f ta || is_f tb then (
            stats.ops_strength_reduced <- stats.ops_strength_reduced + 1;
            mk (R.EArithF (op, fresid, a, b)))
          else if not_f ta && not_f tb then (
            stats.ops_strength_reduced <- stats.ops_strength_reduced + 1;
            mk (R.EArithI (op, a, b)))
          else mk (R.EArith (op, fresid, a, b))
      | R.EDiv (a, b) ->
          let a = fe a and b = fe b in
          let ta = ety env lt a and tb = ety env lt b in
          if is_f ta || is_f tb then (
            stats.ops_strength_reduced <- stats.ops_strength_reduced + 1;
            mk (R.EDivF (a, b)))
          else if not_f ta && not_f tb then (
            stats.ops_strength_reduced <- stats.ops_strength_reduced + 1;
            mk (R.EDivI (a, b)))
          else mk (R.EDiv (a, b))
      | R.ECmp (op, a, b) ->
          let a = fe a and b = fe b in
          let ta = ety env lt a and tb = ety env lt b in
          if is_f ta || is_f tb then (
            stats.ops_strength_reduced <- stats.ops_strength_reduced + 1;
            mk (R.ECmpF (op, a, b)))
          else if not_f ta && not_f tb then (
            stats.ops_strength_reduced <- stats.ops_strength_reduced + 1;
            mk (R.ECmpI (op, a, b)))
          else mk (R.ECmp (op, a, b))
      | R.ELit _ | R.EVar _ | R.EFolded _ -> e
      | R.ENeg a -> mk (R.ENeg (fe a))
      | R.ENot a -> mk (R.ENot (fe a))
      | R.ECast (t, a) -> mk (R.ECast (t, fe a))
      | R.EMod (a, b) -> mk (R.EMod (fe a, fe b))
      | R.EAnd (a, b) -> mk (R.EAnd (fe a, fe b))
      | R.EOr (a, b) -> mk (R.EOr (fe a, fe b))
      | R.EIndex (a, b) -> mk (R.EIndex (fe a, fe b))
      | R.ECall c -> mk (R.ECall { c with cargs = List.map fe c.cargs })
      | R.EArithF (op, fr, a, b) -> mk (R.EArithF (op, fr, fe a, fe b))
      | R.EArithI (op, a, b) -> mk (R.EArithI (op, fe a, fe b))
      | R.EDivF (a, b) -> mk (R.EDivF (fe a, fe b))
      | R.EDivI (a, b) -> mk (R.EDivI (fe a, fe b))
      | R.ECmpF (op, a, b) -> mk (R.ECmpF (op, fe a, fe b))
      | R.ECmpI (op, a, b) -> mk (R.ECmpI (op, fe a, fe b))
      | R.EHoisted h -> mk (R.EHoisted { h with horig = fe h.horig })
    in
    map_block ~fe ~fs:keep
  in
  {
    cp with
    R.cglobals = (rewrite_body env.globals) cp.cglobals;
    cfuncs =
      Array.mapi
        (fun i (f : R.cfunc) ->
          { f with R.cf_body = (rewrite_body env.locals.(i)) f.cf_body })
        cp.cfuncs;
  }

(* ------------------------------------------------------------------ *)
(* Pass 3: dead-slot elimination                                       *)
(* ------------------------------------------------------------------ *)

let dead_pass (stats : stats) (cp : R.t) : R.t =
  let rewrite_func (f : R.cfunc) : R.cfunc =
    let read = Array.make (max 1 f.cf_nslots) false in
    (* parameters are bound at every call: treat them as read so a
       dead-parameter frame slot still receives its value (harmless) —
       only non-parameter temporaries are eligible *)
    Array.iter (fun s -> read.(s) <- true) f.cf_param_slots;
    let mark (e : R.expr) =
      iter_expr
        (fun (e : R.expr) ->
          match e.e with
          | R.EVar (R.Local i) -> read.(i) <- true
          | R.EHoisted h -> read.(h.hslot) <- true
          | _ -> ())
        e
    in
    iter_stmts
      (fun s ->
        List.iter mark (stmt_exprs s);
        match s with
        | R.SAssign { slot = R.Local i; aop; _ } when aop <> Minic.Ast.Set ->
            read.(i) <- true (* compound assign reads its own slot *)
        | R.SFor { slot = R.Local i; _ } -> read.(i) <- true
        | R.SFused { kern; _ } ->
            (* conservative: everything a kernel touches counts as read *)
            read.(kern.R.k_idx_slot) <- true;
            Array.iter (fun (s, _) -> read.(s) <- true) kern.R.k_in;
            Array.iter (fun (s, _) -> read.(s) <- true) kern.R.k_out;
            Array.iter (fun (site : R.ksite) -> read.(site.R.ks_base) <- true) kern.R.k_sites
        | _ -> ())
      f.cf_body;
    let fs (s : R.stmt) : R.stmt option =
      match s with
      | R.SDeclVar { slot = R.Local i; typ; init } when not read.(i) ->
          stats.slots_eliminated <- stats.slots_eliminated + 1;
          Some
            (match init with
            | Some e -> R.SDrop { dtyp = Some typ; drhs = Some e }
            | None -> R.SDrop { dtyp = None; drhs = None })
      | R.SAssign { slot = R.Local i; aop = Minic.Ast.Set; rhs } when not read.(i)
        ->
          stats.slots_eliminated <- stats.slots_eliminated + 1;
          Some (R.SDrop { dtyp = None; drhs = Some rhs })
      | _ -> None
    in
    { f with R.cf_body = map_block ~fe:Fun.id ~fs f.cf_body }
  in
  { cp with R.cfuncs = Array.map rewrite_func cp.cfuncs }

(* ------------------------------------------------------------------ *)
(* Pass 4 helper: static counting of float-pure expressions            *)
(* ------------------------------------------------------------------ *)

(* Shared by hoisting and specialization: an expression is "counted
   float-pure" when its evaluation provably takes only float paths whose
   counter bumps and dynamic charges are statically known, touches no
   memory and calls nothing but implemented math builtins. *)
type counted = { n_flops : int; n_sfu : int; n_dyn : float; n_ops : int }

let czero = { n_flops = 0; n_sfu = 0; n_dyn = 0.0; n_ops = 0 }

let cadd a b =
  {
    n_flops = a.n_flops + b.n_flops;
    n_sfu = a.n_sfu + b.n_sfu;
    n_dyn = a.n_dyn +. b.n_dyn;
    n_ops = a.n_ops + b.n_ops;
  }

exception Not_pure

(* [slot_ok i] decides whether reading local slot [i] is allowed (e.g.
   "not written by the loop body" for hoisting). *)
let count_float_pure env lt ~slot_ok (e : R.expr) : counted =
  let rec go (e : R.expr) : counted =
    match e.e with
    | R.ELit (VInt _ | VFloat _ | VBool _) -> czero
    | R.EVar (R.Local i) -> (
        if not (slot_ok i) then raise Not_pure
        else
          match lt.(i) with
          | TFloat | TInt | TBool -> czero
          | _ -> raise Not_pure)
    | R.EArith (_, fresid, a, b) | R.EArithF (_, fresid, a, b) ->
        let ta = ety env lt a and tb = ety env lt b in
        if not (is_f ta || is_f tb) then raise Not_pure;
        cadd
          (cadd (go a) (go b))
          { n_flops = 1; n_sfu = 0; n_dyn = fresid; n_ops = 1 }
    | R.EDiv (a, b) | R.EDivF (a, b) ->
        let ta = ety env lt a and tb = ety env lt b in
        if not (is_f ta || is_f tb) then raise Not_pure;
        cadd
          (cadd (go a) (go b))
          { n_flops = 1; n_sfu = 0; n_dyn = C.float_div; n_ops = 1 }
    | R.ENeg a ->
        if not (is_f (ety env lt a)) then raise Not_pure;
        cadd (go a) { n_flops = 1; n_sfu = 0; n_dyn = 0.0; n_ops = 1 }
    | R.ECast ((Minic.Ast.Tfloat | Minic.Ast.Tdouble), a) -> (
        match ety env lt a with
        | TFloat | TInt | TBool -> go a
        | _ -> raise Not_pure)
    | R.ECall { callee = R.Math { mimpl; mflops }; cargs } ->
        let arity = match mimpl with R.M1 _ -> 1 | R.M2 _ -> 2 in
        if List.length cargs <> arity then raise Not_pure;
        List.fold_left
          (fun acc a -> cadd acc (go a))
          { n_flops = mflops; n_sfu = 1; n_dyn = 0.0; n_ops = 1 }
          cargs
    | _ -> raise Not_pure
  in
  go e

(* ------------------------------------------------------------------ *)
(* Pass 4: loop-invariant hoisting                                     *)
(* ------------------------------------------------------------------ *)

(* Local slots written by a statement (transitively, through nested
   blocks); used for loop-body invariance. *)
let stmt_writes (b : R.block) : (int, unit) Hashtbl.t =
  let w = Hashtbl.create 16 in
  let add = function R.Local i -> Hashtbl.replace w i () | _ -> () in
  iter_stmts
    (fun s ->
      match s with
      | R.SDeclVar { slot; _ } | R.SDeclArr { slot; _ } | R.SAssign { slot; _ }
        ->
          add slot
      | R.SFor { slot; _ } -> add slot
      | R.SHoistReset slots -> List.iter (fun i -> Hashtbl.replace w i ()) slots
      | R.SFused { kern; forig = _ } ->
          Hashtbl.replace w kern.R.k_idx_slot ();
          Array.iter (fun (s, _) -> Hashtbl.replace w s ()) kern.R.k_out
      | _ -> ())
    b;
  w

let hoist_pass (stats : stats) (cp : R.t) : R.t =
  let env = type_program cp in
  let rewrite_func fi (f : R.cfunc) : R.cfunc =
    let lt = env.locals.(fi) in
    let nslots = ref f.cf_nslots in
    (* hoist within one loop body: wrap maximal eligible subtrees.
       [extra] carries slots written by the looping statement itself —
       an [SFor]'s induction variable is updated by the loop header, not
       by any statement inside the body, so [stmt_writes body] alone
       would wrongly treat index-dependent expressions as invariant. *)
    let hoist_in_body ~(extra : R.var_ref list) (body : R.block) :
        R.block * int list =
      let writes = stmt_writes body in
      List.iter
        (function R.Local i -> Hashtbl.replace writes i () | _ -> ())
        extra;
      let slot_ok i =
        (not (Hashtbl.mem writes i)) && i < Array.length lt
      in
      let fresh = ref [] in
      let rec fe (e : R.expr) : R.expr =
        match e.e with
        (* only float-typed subtrees are cacheable (the cache slot
           discriminates hit/miss on the VFloat constructor) *)
        | R.EHoisted _ | R.EFolded _ | R.ELit _ | R.EVar _ -> e
        | _ -> (
            match
              (try
                 if is_f (ety env lt e) then
                   Some (count_float_pure env lt ~slot_ok e)
                 else None
               with Not_pure -> None)
            with
            | Some c when c.n_ops >= 2 ->
                let hslot = !nslots in
                incr nslots;
                fresh := hslot :: !fresh;
                stats.exprs_hoisted <- stats.exprs_hoisted + 1;
                {
                  e with
                  R.e =
                    R.EHoisted
                      {
                        hslot;
                        h_flops = c.n_flops;
                        h_sfu = c.n_sfu;
                        h_dyn = c.n_dyn;
                        horig = e;
                      };
                }
            | _ -> descend e)
      and descend (e : R.expr) : R.expr =
        let mk en = { e with R.e = en } in
        match e.e with
        | R.ELit _ | R.EVar _ | R.EFolded _ | R.EHoisted _ -> e
        | R.ENeg a -> mk (R.ENeg (fe a))
        | R.ENot a -> mk (R.ENot (fe a))
        | R.ECast (t, a) -> mk (R.ECast (t, fe a))
        | R.EArith (op, fr, a, b) -> mk (R.EArith (op, fr, fe a, fe b))
        | R.EArithF (op, fr, a, b) -> mk (R.EArithF (op, fr, fe a, fe b))
        | R.EArithI (op, a, b) -> mk (R.EArithI (op, fe a, fe b))
        | R.EDiv (a, b) -> mk (R.EDiv (fe a, fe b))
        | R.EDivF (a, b) -> mk (R.EDivF (fe a, fe b))
        | R.EDivI (a, b) -> mk (R.EDivI (fe a, fe b))
        | R.EMod (a, b) -> mk (R.EMod (fe a, fe b))
        | R.ECmp (op, a, b) -> mk (R.ECmp (op, fe a, fe b))
        | R.ECmpF (op, a, b) -> mk (R.ECmpF (op, fe a, fe b))
        | R.ECmpI (op, a, b) -> mk (R.ECmpI (op, fe a, fe b))
        | R.EAnd (a, b) -> mk (R.EAnd (fe a, fe b))
        | R.EOr (a, b) -> mk (R.EOr (fe a, fe b))
        | R.EIndex (a, b) -> mk (R.EIndex (fe a, fe b))
        | R.ECall c -> mk (R.ECall { c with cargs = List.map fe c.cargs })
      in
      let body' = map_block ~fe ~fs:keep body in
      (body', !fresh)
    in
    (* rewrite loops bottom-up is unnecessary: each loop's body is
       hoisted against its own write set, outer loops first, and already
       wrapped [EHoisted] nodes are opaque to inner scans *)
    let rec go_block (b : R.block) : R.block =
      List.map
        (fun (g : R.group) ->
          {
            g with
            R.gstmts = List.concat_map go_stmt g.gstmts;
          })
        b
    and go_stmt (s : R.stmt) : R.stmt list =
      match s with
      | R.SFor sf ->
          let body', fresh = hoist_in_body ~extra:[ sf.slot ] sf.body in
          let body' = go_block body' in
          let s' = R.SFor { sf with body = body' } in
          if fresh = [] then [ s' ]
          else [ R.SHoistReset fresh; s' ]
      | R.SWhile sw ->
          let body', fresh = hoist_in_body ~extra:[] sw.body in
          let body' = go_block body' in
          let s' = R.SWhile { sw with body = body' } in
          if fresh = [] then [ s' ]
          else [ R.SHoistReset fresh; s' ]
      | R.SIf (c, b1, b2) -> [ R.SIf (c, go_block b1, Option.map go_block b2) ]
      | R.SBlock b -> [ R.SBlock (go_block b) ]
      | R.SFused _ ->
          (* specialized kernels stay as-is: their fallback body must
             keep matching the kernel's static counts *)
          [ s ]
      | s -> [ s ]
    in
    { f with R.cf_body = go_block f.cf_body; cf_nslots = !nslots }
  in
  { cp with R.cfuncs = Array.mapi rewrite_func cp.cfuncs }

(* ------------------------------------------------------------------ *)
(* Pass 5: kernel specialization                                       *)
(* ------------------------------------------------------------------ *)

exception Not_kernel

(* Affine integer expression in the loop index: conversion + static
   int-op count (one bump per Add/Sub/Mul evaluation; Neg of an int and
   literal/variable reads bump nothing) + affinity degree. *)
let rec affine env lt ~idx_slot (e : R.expr) : R.iexpr * int * int =
  match e.e with
  | R.ELit (VInt n) -> (R.ILit n, 0, 0)
  | R.EVar (R.Local i) when i = idx_slot -> (R.IIdx, 0, 1)
  | R.EVar (R.Local i) -> (
      match lt.(i) with
      | TInt | TBool -> (R.ISlot i, 0, 0)
      | _ -> raise Not_kernel)
  | R.EArith ((Minic.Ast.Add as op), _, a, b)
  | R.EArith ((Minic.Ast.Sub as op), _, a, b)
  | R.EArith ((Minic.Ast.Mul as op), _, a, b)
  | R.EArithI ((Minic.Ast.Add as op), a, b)
  | R.EArithI ((Minic.Ast.Sub as op), a, b)
  | R.EArithI ((Minic.Ast.Mul as op), a, b) -> (
      let ta = ety env lt a and tb = ety env lt b in
      if not (not_f ta && not_f tb) then raise Not_kernel;
      let ia, na, da = affine env lt ~idx_slot a in
      let ib, nb, db = affine env lt ~idx_slot b in
      match op with
      | Minic.Ast.Add -> (R.IAdd (ia, ib), na + nb + 1, max da db)
      | Minic.Ast.Sub -> (R.ISub (ia, ib), na + nb + 1, max da db)
      | Minic.Ast.Mul ->
          if da + db > 1 then raise Not_kernel;
          (R.IMul (ia, ib), na + nb + 1, da + db)
      | _ -> assert false)
  | R.ENeg a -> (
      match ety env lt a with
      | TInt ->
          let ia, na, da = affine env lt ~idx_slot a in
          (R.INeg ia, na, da)
      | _ -> raise Not_kernel)
  | R.EFolded { fval = VInt n; f_flops = 0; f_int_ops; f_dyn = 0.0 } ->
      (R.ILit n, f_int_ops, 0)
  | _ -> raise Not_kernel

(* Degree-0 affine expressions for init/bound/step: may not reference
   the loop's own index. *)
let invariant_int env lt ~idx_slot (e : R.expr) =
  let ie, nops, deg = affine env lt ~idx_slot e in
  if deg <> 0 then raise Not_kernel;
  (ie, nops)

let rec iexpr_slots acc = function
  | R.ILit _ | R.IIdx -> acc
  | R.ISlot i -> i :: acc
  | R.IAdd (a, b) | R.ISub (a, b) | R.IMul (a, b) ->
      iexpr_slots (iexpr_slots acc a) b
  | R.INeg a -> iexpr_slots acc a

(* Translation state for one candidate loop body. *)
type ktrans = {
  mutable instrs : R.kinstr list;  (* reversed *)
  mutable nregs : int;
  mutable sites : (R.ksite * int) list;  (* (site, number), reversed *)
  mutable nsites : int;
  mutable site_loads : (int * int) list;  (* site -> per-iter loads *)
  mutable site_stores : (int * int) list;
  slot_reg : (int, int) Hashtbl.t;  (* float slot -> dedicated register *)
  mutable entry : (int * int) list;  (* (slot, reg) entry loads *)
  mutable written_now : (int, unit) Hashtbl.t;  (* written so far, body order *)
  mutable c : counted;  (* accumulated per-iteration body counts *)
}

let specialize_pass (stats : stats) (cp : R.t) : R.t =
  let env = type_program cp in
  let rewrite_func fi (f : R.cfunc) : R.cfunc =
    let lt = env.locals.(fi) in
    (* attempt to compile one innermost SFor body to a kernel *)
    let try_kernel (sf : (* SFor payload *) int * R.var_ref * R.expr * R.expr * bool * R.expr * R.block) :
        R.kernel option =
      let fsid, slot, init, bound, inclusive, step, body = sf in
      match slot with
      | R.Unbound _ | R.Global _ -> None
      | R.Local idx_slot -> (
          try
            let group =
              match body with
              | [ g ] -> g
              | [] -> raise Not_kernel
              | _ -> raise Not_kernel
            in
            let k =
              {
                instrs = [];
                nregs = 0;
                sites = [];
                nsites = 0;
                site_loads = [];
                site_stores = [];
                slot_reg = Hashtbl.create 8;
                entry = [];
                written_now = Hashtbl.create 8;
                c = czero;
              }
            in
            let fresh_reg () =
              let r = k.nregs in
              k.nregs <- k.nregs + 1;
              r
            in
            let emit i = k.instrs <- i :: k.instrs in
            let bump c = k.c <- cadd k.c c in
            let reg_of_slot s =
              match Hashtbl.find_opt k.slot_reg s with
              | Some r -> r
              | None ->
                  let r = fresh_reg () in
                  Hashtbl.add k.slot_reg s r;
                  r
            in
            (* reading a float slot: entry-load it unless the body has
               already written it (straight-line order) *)
            let read_slot s =
              let r = reg_of_slot s in
              if
                (not (Hashtbl.mem k.written_now s))
                && not (List.mem_assoc s k.entry)
              then k.entry <- (s, r) :: k.entry;
              r
            in
            let new_site base idx_e =
              let ie, nops, _deg = affine env lt ~idx_slot idx_e in
              (* invariant int slots read silently at entry must not be
                 written by the body — the body writes only float slots
                 and the (rejected) index, so a clash means rejection *)
              List.iter
                (fun s ->
                  if s <> idx_slot && not (not_f lt.(s)) then raise Not_kernel)
                (iexpr_slots [] ie);
              let n = k.nsites in
              k.nsites <- k.nsites + 1;
              k.sites <- ({ R.ks_base = base; ks_idx = ie }, n) :: k.sites;
              (n, nops)
            in
            let add_site_load n =
              k.site_loads <-
                (n, (try List.assoc n k.site_loads with Not_found -> 0) + 1)
                :: List.remove_assoc n k.site_loads
            in
            let add_site_store n =
              k.site_stores <-
                (n, (try List.assoc n k.site_stores with Not_found -> 0) + 1)
                :: List.remove_assoc n k.site_stores
            in
            (* per-iteration int-op bumps accumulate here *)
            let int_ops = ref 0 in
            (* compile a float-valued expression into a register *)
            let rec cf (e : R.expr) : int =
              match e.e with
              | R.ELit (VFloat f) ->
                  let r = fresh_reg () in
                  emit (R.KLit (r, f));
                  r
              | R.ELit (VInt n) ->
                  (* consumed via [to_float] in every float context *)
                  let r = fresh_reg () in
                  emit (R.KLit (r, float_of_int n));
                  r
              | R.ELit (VBool b) ->
                  let r = fresh_reg () in
                  emit (R.KLit (r, if b then 1.0 else 0.0));
                  r
              | R.EVar (R.Local i) when i = idx_slot ->
                  let r = fresh_reg () in
                  emit (R.KItoF r);
                  r
              | R.EVar (R.Local i) -> (
                  match lt.(i) with
                  | TFloat -> read_slot i
                  | TInt | TBool ->
                      (* invariant int: the body writes only floats, so
                         its value is fixed — entry-convert it once *)
                      if Hashtbl.mem k.slot_reg i then raise Not_kernel;
                      read_slot i
                  | _ -> raise Not_kernel)
              | R.EArith (op, fresid, a, b) | R.EArithF (op, fresid, a, b) ->
                  let ta = ety env lt a and tb = ety env lt b in
                  if not (is_f ta || is_f tb) then raise Not_kernel;
                  let ra = cf a in
                  let rb = cf b in
                  let rd = fresh_reg () in
                  (match op with
                  | Minic.Ast.Add -> emit (R.KAdd (rd, ra, rb))
                  | Minic.Ast.Sub -> emit (R.KSub (rd, ra, rb))
                  | Minic.Ast.Mul -> emit (R.KMul (rd, ra, rb))
                  | _ -> raise Not_kernel);
                  bump { n_flops = 1; n_sfu = 0; n_dyn = fresid; n_ops = 0 };
                  rd
              | R.EDiv (a, b) | R.EDivF (a, b) ->
                  let ta = ety env lt a and tb = ety env lt b in
                  if not (is_f ta || is_f tb) then raise Not_kernel;
                  let ra = cf a in
                  let rb = cf b in
                  let rd = fresh_reg () in
                  emit (R.KDiv (rd, ra, rb));
                  bump { n_flops = 1; n_sfu = 0; n_dyn = C.float_div; n_ops = 0 };
                  rd
              | R.ENeg a ->
                  if not (is_f (ety env lt a)) then raise Not_kernel;
                  let ra = cf a in
                  let rd = fresh_reg () in
                  emit (R.KNeg (rd, ra));
                  bump { n_flops = 1; n_sfu = 0; n_dyn = 0.0; n_ops = 0 };
                  rd
              | R.ECast ((Minic.Ast.Tfloat | Minic.Ast.Tdouble), a) -> (
                  match a.e with
                  | R.EVar (R.Local i) when i = idx_slot ->
                      let r = fresh_reg () in
                      emit (R.KItoF r);
                      r
                  | _ ->
                      if is_f (ety env lt a) then cf a
                      else (
                        match a.e with
                        | R.EVar (R.Local i) -> (
                            match lt.(i) with
                            | TInt | TBool ->
                                if Hashtbl.mem k.slot_reg i then
                                  raise Not_kernel;
                                read_slot i
                            | _ -> raise Not_kernel)
                        | R.ELit (VInt n) ->
                            let r = fresh_reg () in
                            emit (R.KLit (r, float_of_int n));
                            r
                        | _ -> raise Not_kernel))
              | R.ECall { callee = R.Math { mimpl = R.M1 g; mflops }; cargs }
                -> (
                  match cargs with
                  | [ a ] ->
                      let ra = cf a in
                      let rd = fresh_reg () in
                      emit (R.KMath1 (rd, g, ra));
                      bump
                        { n_flops = mflops; n_sfu = 1; n_dyn = 0.0; n_ops = 0 };
                      rd
                  | _ -> raise Not_kernel)
              | R.ECall { callee = R.Math { mimpl = R.M2 g; mflops }; cargs }
                -> (
                  match cargs with
                  | [ a; b ] ->
                      let ra = cf a in
                      let rb = cf b in
                      let rd = fresh_reg () in
                      emit (R.KMath2 (rd, g, ra, rb));
                      bump
                        { n_flops = mflops; n_sfu = 1; n_dyn = 0.0; n_ops = 0 };
                      rd
                  | _ -> raise Not_kernel)
              | R.EIndex (a, idx_e) -> (
                  match a.e with
                  | R.EVar (R.Local b) -> (
                      match lt.(b) with
                      | TPtr (Minic.Ast.Tfloat | Minic.Ast.Tdouble) ->
                          let n, nops = new_site b idx_e in
                          int_ops := !int_ops + nops;
                          add_site_load n;
                          let rd = fresh_reg () in
                          emit (R.KLoad (rd, n));
                          rd
                      | _ -> raise Not_kernel)
                  | _ -> raise Not_kernel)
              | R.EFolded { fval; f_flops; f_int_ops; f_dyn } -> (
                  match fval with
                  | VFloat fv ->
                      let r = fresh_reg () in
                      emit (R.KLit (r, fv));
                      bump
                        {
                          n_flops = f_flops;
                          n_sfu = 0;
                          n_dyn = f_dyn;
                          n_ops = 0;
                        };
                      int_ops := !int_ops + f_int_ops;
                      r
                  | VInt n ->
                      let r = fresh_reg () in
                      emit (R.KLit (r, float_of_int n));
                      bump
                        {
                          n_flops = f_flops;
                          n_sfu = 0;
                          n_dyn = f_dyn;
                          n_ops = 0;
                        };
                      int_ops := !int_ops + f_int_ops;
                      r
                  | _ -> raise Not_kernel)
              | _ -> raise Not_kernel
            in
            let mark_written s = Hashtbl.replace k.written_now s () in
            let do_stmt (s : R.stmt) =
              match s with
              | R.SDeclVar
                  {
                    slot = R.Local s;
                    typ = Minic.Ast.Tfloat | Minic.Ast.Tdouble;
                    init = Some e;
                  } ->
                  if s = idx_slot then raise Not_kernel;
                  let r = cf e in
                  let rd = reg_of_slot s in
                  emit (R.KMov (rd, r));
                  mark_written s
              | R.SAssign { slot = R.Local s; aop; rhs } -> (
                  if s = idx_slot then raise Not_kernel;
                  if not (is_f lt.(s)) then raise Not_kernel;
                  if not (is_f (ety env lt rhs)) then raise Not_kernel;
                  match aop with
                  | Minic.Ast.Set ->
                      let r = cf rhs in
                      let rd = reg_of_slot s in
                      emit (R.KMov (rd, r));
                      mark_written s
                  | Minic.Ast.AddEq | Minic.Ast.SubEq | Minic.Ast.MulEq
                  | Minic.Ast.DivEq ->
                      let r = cf rhs in
                      let rd = read_slot s in
                      (match aop with
                      | Minic.Ast.AddEq ->
                          emit (R.KAdd (rd, rd, r));
                          bump { n_flops = 1; n_sfu = 0; n_dyn = 0.0; n_ops = 0 }
                      | Minic.Ast.SubEq ->
                          emit (R.KSub (rd, rd, r));
                          bump { n_flops = 1; n_sfu = 0; n_dyn = 0.0; n_ops = 0 }
                      | Minic.Ast.MulEq ->
                          emit (R.KMul (rd, rd, r));
                          bump { n_flops = 1; n_sfu = 0; n_dyn = 0.0; n_ops = 0 }
                      | Minic.Ast.DivEq ->
                          emit (R.KDiv (rd, rd, r));
                          bump
                            {
                              n_flops = 1;
                              n_sfu = 0;
                              n_dyn = C.float_div;
                              n_ops = 0;
                            }
                      | Minic.Ast.Set -> assert false);
                      mark_written s)
              | R.SStore { arr; idx; aop; rhs } -> (
                  match arr.e with
                  | R.EVar (R.Local b) -> (
                      match lt.(b) with
                      | TPtr (Minic.Ast.Tfloat | Minic.Ast.Tdouble) -> (
                          if not (is_f (ety env lt rhs)) then raise Not_kernel;
                          (* evaluation order: rhs, then arr/idx *)
                          let r = cf rhs in
                          let n, nops = new_site b idx in
                          int_ops := !int_ops + nops;
                          match aop with
                          | Minic.Ast.Set ->
                              emit (R.KStore (n, r));
                              add_site_store n
                          | Minic.Ast.AddEq ->
                              emit (R.KStoreAdd (n, r));
                              add_site_load n;
                              add_site_store n;
                              bump
                                {
                                  n_flops = 1;
                                  n_sfu = 0;
                                  n_dyn = 0.0;
                                  n_ops = 0;
                                }
                          | Minic.Ast.SubEq ->
                              emit (R.KStoreSub (n, r));
                              add_site_load n;
                              add_site_store n;
                              bump
                                {
                                  n_flops = 1;
                                  n_sfu = 0;
                                  n_dyn = 0.0;
                                  n_ops = 0;
                                }
                          | Minic.Ast.MulEq ->
                              emit (R.KStoreMul (n, r));
                              add_site_load n;
                              add_site_store n;
                              bump
                                {
                                  n_flops = 1;
                                  n_sfu = 0;
                                  n_dyn = 0.0;
                                  n_ops = 0;
                                }
                          | Minic.Ast.DivEq ->
                              emit (R.KStoreDiv (n, r));
                              add_site_load n;
                              add_site_store n;
                              bump
                                {
                                  n_flops = 1;
                                  n_sfu = 0;
                                  n_dyn = C.float_div;
                                  n_ops = 0;
                                })
                      | _ -> raise Not_kernel)
                  | _ -> raise Not_kernel)
              | _ -> raise Not_kernel
            in
            List.iter do_stmt group.R.gstmts;
            let ie_init, init_ops = invariant_int env lt ~idx_slot init in
            let ie_bound, bound_ops = invariant_int env lt ~idx_slot bound in
            let ie_step, step_ops = invariant_int env lt ~idx_slot step in
            (* bound/step slots must be loop-invariant: the body writes
               only float slots, and silent slots are int-typed, so any
               overlap was already rejected; the index slot itself may
               not appear (checked by [invariant_int]) *)
            List.iter
              (fun s -> if Hashtbl.mem k.written_now s then raise Not_kernel)
              (iexpr_slots
                 (iexpr_slots (iexpr_slots [] ie_init) ie_bound)
                 ie_step);
            let nstmts = List.length group.R.gstmts in
            let sites =
              let a = Array.make k.nsites { R.ks_base = 0; ks_idx = R.ILit 0 } in
              List.iter (fun (s, n) -> a.(n) <- s) k.sites;
              a
            in
            let site_counts assoc =
              Array.init k.nsites (fun n ->
                  try List.assoc n assoc with Not_found -> 0)
            in
            let out =
              Hashtbl.fold
                (fun s r acc ->
                  if Hashtbl.mem k.written_now s then (s, r) :: acc else acc)
                k.slot_reg []
              |> List.sort compare
            in
            stats.kernels_specialized <- stats.kernels_specialized + 1;
            Some
              {
                R.k_body = Array.of_list (List.rev k.instrs);
                k_nfregs = k.nregs;
                k_sites = sites;
                k_site_loads = site_counts k.site_loads;
                k_site_stores = site_counts k.site_stores;
                k_in = Array.of_list (List.rev k.entry);
                k_out = Array.of_list out;
                k_idx_slot = idx_slot;
                k_fsid = fsid;
                k_inclusive = inclusive;
                k_init = ie_init;
                k_bound = ie_bound;
                k_step = ie_step;
                k_nstmts = nstmts;
                k_flops = k.c.n_flops;
                k_sfu = k.c.n_sfu;
                k_int_ops = !int_ops;
                k_init_int_ops = init_ops;
                k_bound_int_ops = bound_ops;
                k_step_int_ops = step_ops;
                k_dyn_cycles = k.c.n_dyn;
                k_gcost = group.R.gcost;
                k_icost = init.R.ecost;
                k_bcost = C.branch +. bound.R.ecost;
                k_scost = step.R.ecost;
              }
          with Not_kernel -> None)
    in
    let rec has_loop (b : R.block) =
      let found = ref false in
      iter_stmts
        (fun s ->
          match s with
          | R.SFor _ | R.SWhile _ | R.SFused _ -> found := true
          | _ -> ())
        b;
      !found
    and go_block (b : R.block) : R.block =
      List.map
        (fun (g : R.group) ->
          { g with R.gstmts = List.map go_stmt g.gstmts })
        b
    and go_stmt (s : R.stmt) : R.stmt =
      match s with
      | R.SFor sf -> (
          let body' = go_block sf.body in
          let s' = R.SFor { sf with body = body' } in
          if has_loop body' then s'
          else
            match
              try_kernel
                ( sf.fsid,
                  sf.slot,
                  sf.init,
                  sf.bound,
                  sf.inclusive,
                  sf.step,
                  body' )
            with
            | Some kern -> R.SFused { forig = s'; kern }
            | None -> s')
      | R.SWhile sw -> R.SWhile { sw with body = go_block sw.body }
      | R.SIf (c, b1, b2) -> R.SIf (c, go_block b1, Option.map go_block b2)
      | R.SBlock b -> R.SBlock (go_block b)
      | s -> s
    in
    { f with R.cf_body = go_block f.cf_body }
  in
  { cp with R.cfuncs = Array.mapi rewrite_func cp.cfuncs }

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let publish (s : stats) =
  let m = Flow_obs.Metrics.global in
  let bump name v = if v > 0 then Flow_obs.Metrics.incr ~by:v m name in
  bump "opt_consts_folded" s.consts_folded;
  bump "opt_ops_strength_reduced" s.ops_strength_reduced;
  bump "opt_slots_eliminated" s.slots_eliminated;
  bump "opt_exprs_hoisted" s.exprs_hoisted;
  bump "opt_kernels_specialized" s.kernels_specialized

let optimize ?(config = all_passes) (cp : R.t) : R.t =
  let stats =
    {
      consts_folded = 0;
      ops_strength_reduced = 0;
      slots_eliminated = 0;
      exprs_hoisted = 0;
      kernels_specialized = 0;
    }
  in
  let cp = if config.fold then fold_pass stats cp else cp in
  let cp = if config.strength then strength_pass stats cp else cp in
  let cp = if config.dead then dead_pass stats cp else cp in
  let cp = if config.specialize then specialize_pass stats cp else cp in
  let cp = if config.hoist then hoist_pass stats cp else cp in
  publish stats;
  cp

