(** Flat register-bytecode lowering of the slot IR.

    {!lower} compiles a resolved (and usually {!Opt}-optimized) program
    into dense instruction arrays with integer-register operands — the
    VM executor in {!Eval} dispatches over them with a single [match]
    per instruction instead of one OCaml closure call per IR node.
    Frames are flat [Value.t array]s laid out [slots | consts | temps]:
    variable slots keep their {!Resolve} indices, literal operands are
    blitted from a per-function constant pool at call entry, and
    expression temporaries are allocated monotonically per statement.

    Specialized loop kernels ({!Resolve.kernel}) are lowered a second
    time into micro-programs of {!kop}s.  A profile-guided
    superinstruction selector additionally rewrites the micro-programs
    of {e hot} loops (per the [hot] predicate, typically
    {!hot_of_profile} over a {!Fused_profile} run):

    - [KLit] constants and loop-invariant loads are hoisted out of the
      body into entry banks ([kp_lits]/[kp_prefetch]);
    - adjacent producer/consumer pairs whose link register is written
      and read exactly once are fused into single opcodes
      (load+arith, arith+arith, arith+store, math+div/mul, and the
      dot-product step [(a*b)+(c*d)]), repeated to fixpoint.

    Fusion never re-associates floating-point arithmetic and never
    reorders memory accesses (only strictly adjacent ops fuse), so the
    fused body computes bit-identical values in bit-identical order.

    The selector also classifies each kernel as domain-shardable: a
    kernel with no loop-carried register dependence (no op reads a
    register before it is written in the same iteration when the body
    writes it at all) can have its iteration space split across
    domains — the remaining per-region memory checks are done at run
    time by the executor.  Everything observable (cycles, counters,
    fuel, loop stats) is charged in bulk on the calling domain exactly
    like the threaded engine's kernel protocol, so outputs stay
    bit-identical for every domain count.

    Selector and lowering statistics are published to
    {!Flow_obs.Metrics.global} as [vm_*] counters. *)

module R = Resolve
module C = Profile.Cost

(* ================================================================== *)
(* Kernel micro-programs                                               *)
(* ================================================================== *)

(** One micro-op of a specialized loop body.  Plain ops mirror
    {!Resolve.kinstr} one-to-one; the fused ops each replace an
    adjacent pair (or triple, built by repeated pairing) whose link
    register died immediately.  [A]/[B] suffixes say whether the first
    op's result feeds the {e left} or {e right} operand of the second —
    float arithmetic is never commuted. *)
type kop =
  | OLit of int * float
  | OMov of int * int
  | OAdd of int * int * int
  | OSub of int * int * int
  | OMul of int * int * int
  | ODiv of int * int * int
  | ONeg of int * int
  | OItoF of int
  | OMath1 of int * (float -> float) * int
  | OMath2 of int * (float -> float -> float) * int * int
  | OLoad of int * int  (** dst <- site *)
  | OStore of int * int  (** site <- src *)
  | OStoreAdd of int * int
  | OStoreSub of int * int
  | OStoreMul of int * int
  | OStoreDiv of int * int
  (* load + arith *)
  | OLAddA of int * int * int  (** d <- [s] + b *)
  | OLAddB of int * int * int  (** d <- a + [s] *)
  | OLSubA of int * int * int  (** d <- [s] - b *)
  | OLSubB of int * int * int  (** d <- a - [s] *)
  | OLMulA of int * int * int
  | OLMulB of int * int * int
  | OLDivA of int * int * int
  | OLDivB of int * int * int
  (* arith + arith: (d, a, b, c) with A = (a op1 b) op2 c, B = c op2 (a op1 b) *)
  | OAddAddA of int * int * int * int
  | OAddAddB of int * int * int * int
  | OAddSubA of int * int * int * int
  | OAddSubB of int * int * int * int
  | OAddMulA of int * int * int * int
  | OAddMulB of int * int * int * int
  | OSubAddA of int * int * int * int
  | OSubAddB of int * int * int * int
  | OSubSubA of int * int * int * int
  | OSubSubB of int * int * int * int
  | OSubMulA of int * int * int * int
  | OSubMulB of int * int * int * int
  | OMulAddA of int * int * int * int
  | OMulAddB of int * int * int * int
  | OMulSubA of int * int * int * int
  | OMulSubB of int * int * int * int
  | OMulMulA of int * int * int * int
  | OMulMulB of int * int * int * int
  (* math1 + div/mul *)
  | OGDiv of int * (float -> float) * int * int  (** d <- g(a) / b *)
  | ODivG of int * int * (float -> float) * int  (** d <- a / g(b) *)
  | OGMul of int * (float -> float) * int * int  (** d <- g(a) * b *)
  | OMulG of int * int * (float -> float) * int  (** d <- a * g(b) *)
  (* arith + store *)
  | OAddStore of int * int * int  (** [s] <- a + b : (s, a, b) *)
  | OSubStore of int * int * int
  | OMulStore of int * int * int
  | ODivStore of int * int * int
  (* the dot-product step: mul feeding a mul-add accumulator *)
  | OMulMulAdd of int * int * int * int * int  (** d <- (a*b) + (p*q) *)
  (* the 3-D distance idiom: dx*dx + dy*dy + dz*dz (+ softening) *)
  | ODot3 of int * int * int * int * int * int * int
      (** d <- ((a*b) + (p*q)) + (x*y) *)
  | ODot3Add of int * int * int * int * int * int * int * int
      (** d <- (((a*b) + (p*q)) + (x*y)) + e *)

(** A lowered kernel: the original {!Resolve.kernel} (whose statically
    counted totals drive the bulk accounting and whose [k_body] still
    runs verbatim on the focus-tracking path) plus the fused micro-ops
    and their hoisted entry banks. *)
type kprog = {
  kp_kern : R.kernel;
  kp_ops : kop array;
  kp_lits : (int * float) array;  (** entry: freg <- literal *)
  kp_prefetch : (int * int) array;  (** entry: freg <- invariant site load *)
  kp_fused : bool;  (** the superinstruction selector rewrote the body *)
  kp_shardable : bool;  (** no loop-carried register dependence *)
}

(* ================================================================== *)
(* Generic instructions                                                *)
(* ================================================================== *)

(** Comparison kind: operand-dynamic, statically float, statically
    int — mirrors [ECmp]/[ECmpF]/[ECmpI]. *)
type ckind = KDyn | KFlt | KInt

(** One VM instruction.  Register operands index the current frame;
    [tgt] fields hold label ids during lowering and absolute pcs after
    {!lower} resolves them.  Every instruction replays the exact
    charges, counter bumps, fuel spends and error points of the
    threaded engine (see DESIGN.md §14). *)
type instr =
  | IFuel
  | ICharge of float
  | IJmp of int
  | IJmpFalse of int * int  (** (src, tgt): jump when [to_bool] is false *)
  | IBrCmp of { op : Minic.Ast.binop; kind : ckind; a : int; b : int; tgt : int }
      (** fused compare+branch: jump to [tgt] when the comparison is false *)
  | IMov of int * int
  | IGetG of int * int  (** dst <- garray.(g) *)
  | ISetG of int * int  (** garray.(g) <- src *)
  | IErrVar of string
  | IErrMsg of string  (** raise a precomputed runtime error *)
  | IFailHd  (** [List.hd []] of the reference engines' builtin paths *)
  | INeg of int * int
  | INot of int * int
  | IArith of { op : Minic.Ast.binop; fresid : float; d : int; a : int; b : int }
  | IArithF of { op : Minic.Ast.binop; fresid : float; d : int; a : int; b : int }
  | IArithI of { op : Minic.Ast.binop; d : int; a : int; b : int }
  | IDiv of int * int * int
  | IDivF of int * int * int
  | IDivI of int * int * int
  | IMod of int * int * int
  | ICmp of { op : Minic.Ast.binop; kind : ckind; d : int; a : int; b : int }
  | ICastI of int * int
  | ICastF of int * int
  | ICastB of int * int
  | IIndex of { d : int; a : int; i : int }
  | IFolded of { d : int; fval : Value.t; f_flops : int; f_int_ops : int; f_dyn : float }
  | IHoisted of {
      glob : bool;
      hslot : int;
      h_flops : int;
      h_sfu : int;
      h_dyn : float;
      d : int;
      tgt : int;
    }  (** cache hit: replay effects, jump [tgt]; miss: fall through *)
  | IHoistSave of { glob : bool; hslot : int; d : int; src : int }
  | IHoistReset of { glob : bool; slots : int array }
  | IAndTest of { d : int; src : int; bcost : float; tgt : int }
  | IOrTest of { d : int; src : int; bcost : float; tgt : int }
  | ICallUser of { d : int; fidx : int; args : int array }
  | IMath1 of { d : int; g : float -> float; mflops : int; a : int }
  | IMath2 of { d : int; g : float -> float -> float; mflops : int; a : int; b : int }
  | IMathGen of { d : int; mimpl : R.math_impl; mflops : int; args : int array }
  | IRand01 of int
  | IRandInt of int * int
  | IPrintInt of int
  | IPrintFloat of int
  | ITimerStart of int
  | ITimerStop of int
  | IAlloc of { d : int; typ : Minic.Ast.typ; name : string; src : int }
  | IApplyAssign of { d : int; aop : Minic.Ast.assign_op; old : int; rhs : int }
  | IStore of { arr : int; idx : int; src : int }
  | IStoreOp of { aop : Minic.Ast.assign_op; arr : int; idx : int; src : int }
  | IDropChk of { co : Minic.Ast.typ; src : int }
  | IRet of int
  | IRetRaise of int  (** [return] in the globals block: raise like both engines *)
  | ILoopEnterW of { lidx : int; sid : int; t0 : int; trips : int }
  | ILoopEnterF of { lidx : int; sid : int; t0 : int; trips : int; icost : float }
  | IWhileIter of { src : int; lidx : int; sid : int; trips : int; tgt : int }
  | IForInit of { slot : R.var_ref; src : int }
  | IForTest of {
      slot : R.var_ref;
      bound : int;
      inclusive : bool;
      lidx : int;
      sid : int;
      trips : int;
      tgt : int;
    }
  | IForStep of { slot : R.var_ref; src : int }
  | ILoopExit of { lidx : int; sid : int; t0 : int; trips : int }
  | IKernel of { glob : bool; lidx : int; kp : kprog; tgt : int }
      (** specialized loop: on kernel success jump [tgt]; on
          [Kernel_unfit] fall through to the generic loop code *)

(** One lowered function (or the globals block). *)
type fn = {
  bc_code : instr array;
  bc_nregs : int;  (** frame size: slots + consts + temps, >= 1 *)
  bc_cbase : int;  (** first constant register *)
  bc_cvals : Value.t array;  (** blitted to [bc_cbase..] at call entry *)
  bc_nsi : int;  (** loop int-scratch slots (trip counters) *)
  bc_nsf : int;  (** loop float-scratch slots (entry cycle stamps) *)
}

type program = {
  bc_cp : R.t;
  bc_funcs : fn array;
  bc_globals : fn;
  bc_nloops : int;  (** dense loop count, sizes the per-run stat cache *)
}

(* ================================================================== *)
(* Kernel lift and the superinstruction selector                       *)
(* ================================================================== *)

let rec invariant_idx = function
  | R.ILit _ | R.ISlot _ -> true
  | R.IIdx -> false
  | R.IAdd (a, b) | R.ISub (a, b) | R.IMul (a, b) ->
      invariant_idx a && invariant_idx b
  | R.INeg a -> invariant_idx a

let kinstr_writes = function
  | R.KLit (d, _) | R.KMov (d, _) | R.KAdd (d, _, _) | R.KSub (d, _, _)
  | R.KMul (d, _, _) | R.KDiv (d, _, _) | R.KNeg (d, _) | R.KItoF d
  | R.KMath1 (d, _, _) | R.KMath2 (d, _, _, _) | R.KLoad (d, _) ->
      Some d
  | R.KStore _ | R.KStoreAdd _ | R.KStoreSub _ | R.KStoreMul _
  | R.KStoreDiv _ ->
      None

let kinstr_reads = function
  | R.KLit _ | R.KItoF _ | R.KLoad _ -> []
  | R.KMov (_, a) | R.KNeg (_, a) | R.KMath1 (_, _, a) -> [ a ]
  | R.KAdd (_, a, b) | R.KSub (_, a, b) | R.KMul (_, a, b) | R.KDiv (_, a, b)
  | R.KMath2 (_, _, a, b) ->
      [ a; b ]
  | R.KStore (_, r) | R.KStoreAdd (_, r) | R.KStoreSub (_, r)
  | R.KStoreMul (_, r) | R.KStoreDiv (_, r) ->
      [ r ]

let kop_of_kinstr = function
  | R.KLit (d, x) -> OLit (d, x)
  | R.KMov (d, a) -> OMov (d, a)
  | R.KAdd (d, a, b) -> OAdd (d, a, b)
  | R.KSub (d, a, b) -> OSub (d, a, b)
  | R.KMul (d, a, b) -> OMul (d, a, b)
  | R.KDiv (d, a, b) -> ODiv (d, a, b)
  | R.KNeg (d, a) -> ONeg (d, a)
  | R.KItoF d -> OItoF d
  | R.KMath1 (d, g, a) -> OMath1 (d, g, a)
  | R.KMath2 (d, g, a, b) -> OMath2 (d, g, a, b)
  | R.KLoad (d, si) -> OLoad (d, si)
  | R.KStore (si, r) -> OStore (si, r)
  | R.KStoreAdd (si, r) -> OStoreAdd (si, r)
  | R.KStoreSub (si, r) -> OStoreSub (si, r)
  | R.KStoreMul (si, r) -> OStoreMul (si, r)
  | R.KStoreDiv (si, r) -> OStoreDiv (si, r)

let kop_writes = function
  | OLit (d, _) | OMov (d, _) | ONeg (d, _) | OItoF d
  | OAdd (d, _, _) | OSub (d, _, _) | OMul (d, _, _) | ODiv (d, _, _)
  | OMath1 (d, _, _) | OMath2 (d, _, _, _) | OLoad (d, _)
  | OLAddA (d, _, _) | OLAddB (d, _, _) | OLSubA (d, _, _) | OLSubB (d, _, _)
  | OLMulA (d, _, _) | OLMulB (d, _, _) | OLDivA (d, _, _) | OLDivB (d, _, _)
  | OAddAddA (d, _, _, _) | OAddAddB (d, _, _, _)
  | OAddSubA (d, _, _, _) | OAddSubB (d, _, _, _)
  | OAddMulA (d, _, _, _) | OAddMulB (d, _, _, _)
  | OSubAddA (d, _, _, _) | OSubAddB (d, _, _, _)
  | OSubSubA (d, _, _, _) | OSubSubB (d, _, _, _)
  | OSubMulA (d, _, _, _) | OSubMulB (d, _, _, _)
  | OMulAddA (d, _, _, _) | OMulAddB (d, _, _, _)
  | OMulSubA (d, _, _, _) | OMulSubB (d, _, _, _)
  | OMulMulA (d, _, _, _) | OMulMulB (d, _, _, _)
  | OGDiv (d, _, _, _) | ODivG (d, _, _, _)
  | OGMul (d, _, _, _) | OMulG (d, _, _, _)
  | OMulMulAdd (d, _, _, _, _)
  | ODot3 (d, _, _, _, _, _, _)
  | ODot3Add (d, _, _, _, _, _, _, _) ->
      Some d
  | OStore _ | OStoreAdd _ | OStoreSub _ | OStoreMul _ | OStoreDiv _
  | OAddStore _ | OSubStore _ | OMulStore _ | ODivStore _ ->
      None

let kop_reads = function
  | OLit _ | OItoF _ | OLoad _ -> []
  | OMov (_, a) | ONeg (_, a) | OMath1 (_, _, a) -> [ a ]
  | OAdd (_, a, b) | OSub (_, a, b) | OMul (_, a, b) | ODiv (_, a, b)
  | OMath2 (_, _, a, b) ->
      [ a; b ]
  | OStore (_, r) | OStoreAdd (_, r) | OStoreSub (_, r) | OStoreMul (_, r)
  | OStoreDiv (_, r) ->
      [ r ]
  | OLAddA (_, _, b) | OLSubA (_, _, b) | OLMulA (_, _, b) | OLDivA (_, _, b)
    ->
      [ b ]
  | OLAddB (_, a, _) | OLSubB (_, a, _) | OLMulB (_, a, _) | OLDivB (_, a, _)
    ->
      [ a ]
  | OAddAddA (_, a, b, c) | OAddAddB (_, a, b, c)
  | OAddSubA (_, a, b, c) | OAddSubB (_, a, b, c)
  | OAddMulA (_, a, b, c) | OAddMulB (_, a, b, c)
  | OSubAddA (_, a, b, c) | OSubAddB (_, a, b, c)
  | OSubSubA (_, a, b, c) | OSubSubB (_, a, b, c)
  | OSubMulA (_, a, b, c) | OSubMulB (_, a, b, c)
  | OMulAddA (_, a, b, c) | OMulAddB (_, a, b, c)
  | OMulSubA (_, a, b, c) | OMulSubB (_, a, b, c)
  | OMulMulA (_, a, b, c) | OMulMulB (_, a, b, c) ->
      [ a; b; c ]
  | OGDiv (_, _, a, b) | OGMul (_, _, a, b) -> [ a; b ]
  | ODivG (_, a, _, b) | OMulG (_, a, _, b) -> [ a; b ]
  | OAddStore (_, a, b) | OSubStore (_, a, b) | OMulStore (_, a, b)
  | ODivStore (_, a, b) ->
      [ a; b ]
  | OMulMulAdd (_, a, b, p, q) -> [ a; b; p; q ]
  | ODot3 (_, a, b, p, q, x, y) -> [ a; b; p; q; x; y ]
  | ODot3Add (_, a, b, p, q, x, y, e) -> [ a; b; p; q; x; y; e ]

(* Retarget a register-writing op's destination.  Total over every op
   with [kop_writes = Some _]; the store-class ops (no register write)
   are never picked as the producer of a link register. *)
let kop_retarget op d =
  match op with
  | OLit (_, x) -> OLit (d, x)
  | OMov (_, a) -> OMov (d, a)
  | OAdd (_, a, b) -> OAdd (d, a, b)
  | OSub (_, a, b) -> OSub (d, a, b)
  | OMul (_, a, b) -> OMul (d, a, b)
  | ODiv (_, a, b) -> ODiv (d, a, b)
  | ONeg (_, a) -> ONeg (d, a)
  | OItoF _ -> OItoF d
  | OMath1 (_, g, a) -> OMath1 (d, g, a)
  | OMath2 (_, g, a, b) -> OMath2 (d, g, a, b)
  | OLoad (_, si) -> OLoad (d, si)
  | OLAddA (_, s, b) -> OLAddA (d, s, b)
  | OLAddB (_, a, s) -> OLAddB (d, a, s)
  | OLSubA (_, s, b) -> OLSubA (d, s, b)
  | OLSubB (_, a, s) -> OLSubB (d, a, s)
  | OLMulA (_, s, b) -> OLMulA (d, s, b)
  | OLMulB (_, a, s) -> OLMulB (d, a, s)
  | OLDivA (_, s, b) -> OLDivA (d, s, b)
  | OLDivB (_, a, s) -> OLDivB (d, a, s)
  | OAddAddA (_, a, b, c) -> OAddAddA (d, a, b, c)
  | OAddAddB (_, a, b, c) -> OAddAddB (d, a, b, c)
  | OAddSubA (_, a, b, c) -> OAddSubA (d, a, b, c)
  | OAddSubB (_, a, b, c) -> OAddSubB (d, a, b, c)
  | OAddMulA (_, a, b, c) -> OAddMulA (d, a, b, c)
  | OAddMulB (_, a, b, c) -> OAddMulB (d, a, b, c)
  | OSubAddA (_, a, b, c) -> OSubAddA (d, a, b, c)
  | OSubAddB (_, a, b, c) -> OSubAddB (d, a, b, c)
  | OSubSubA (_, a, b, c) -> OSubSubA (d, a, b, c)
  | OSubSubB (_, a, b, c) -> OSubSubB (d, a, b, c)
  | OSubMulA (_, a, b, c) -> OSubMulA (d, a, b, c)
  | OSubMulB (_, a, b, c) -> OSubMulB (d, a, b, c)
  | OMulAddA (_, a, b, c) -> OMulAddA (d, a, b, c)
  | OMulAddB (_, a, b, c) -> OMulAddB (d, a, b, c)
  | OMulSubA (_, a, b, c) -> OMulSubA (d, a, b, c)
  | OMulSubB (_, a, b, c) -> OMulSubB (d, a, b, c)
  | OMulMulA (_, a, b, c) -> OMulMulA (d, a, b, c)
  | OMulMulB (_, a, b, c) -> OMulMulB (d, a, b, c)
  | OGDiv (_, g, a, q) -> OGDiv (d, g, a, q)
  | ODivG (_, p, g, a) -> ODivG (d, p, g, a)
  | OGMul (_, g, a, q) -> OGMul (d, g, a, q)
  | OMulG (_, p, g, a) -> OMulG (d, p, g, a)
  | OMulMulAdd (_, a, b, p, q) -> OMulMulAdd (d, a, b, p, q)
  | ODot3 (_, a, b, p, q, x, y) -> ODot3 (d, a, b, p, q, x, y)
  | ODot3Add (_, a, b, p, q, x, y, e) -> ODot3Add (d, a, b, p, q, x, y, e)
  | OStore _ | OStoreAdd _ | OStoreSub _ | OStoreMul _ | OStoreDiv _
  | OAddStore _ | OSubStore _ | OMulStore _ | ODivStore _ ->
      op

(* [fuse_pair t x y]: [x] writes link register [t] (write-once,
   read-once, dead after [y]); [y] immediately follows and is [t]'s
   only reader.  Returns the fused op, preserving operand order and the
   internal memory-access order of the pair. *)
let fuse_pair t x y =
  match (x, y) with
  (* copy elimination: the slot-IR lowering materializes assignments as
     compute-into-temp + move; retargeting the producer's destination is
     exact because [t]'s only read is the move itself *)
  | x, OMov (d, s) when s = t -> Some (kop_retarget x d)
  (* load + arith *)
  | OLoad (_, s), OAdd (d, a, b) ->
      Some (if a = t then OLAddA (d, s, b) else OLAddB (d, a, s))
  | OLoad (_, s), OSub (d, a, b) ->
      Some (if a = t then OLSubA (d, s, b) else OLSubB (d, a, s))
  | OLoad (_, s), OMul (d, a, b) ->
      Some (if a = t then OLMulA (d, s, b) else OLMulB (d, a, s))
  | OLoad (_, s), ODiv (d, a, b) ->
      Some (if a = t then OLDivA (d, s, b) else OLDivB (d, a, s))
  (* arith + store (Set only: rmw stores keep their own load) *)
  | OAdd (_, a, b), OStore (s, _) -> Some (OAddStore (s, a, b))
  | OSub (_, a, b), OStore (s, _) -> Some (OSubStore (s, a, b))
  | OMul (_, a, b), OStore (s, _) -> Some (OMulStore (s, a, b))
  | ODiv (_, a, b), OStore (s, _) -> Some (ODivStore (s, a, b))
  (* arith + arith *)
  | OAdd (_, a, b), OAdd (d, p, q) ->
      Some (if p = t then OAddAddA (d, a, b, q) else OAddAddB (d, a, b, p))
  | OAdd (_, a, b), OSub (d, p, q) ->
      Some (if p = t then OAddSubA (d, a, b, q) else OAddSubB (d, a, b, p))
  | OAdd (_, a, b), OMul (d, p, q) ->
      Some (if p = t then OAddMulA (d, a, b, q) else OAddMulB (d, a, b, p))
  | OSub (_, a, b), OAdd (d, p, q) ->
      Some (if p = t then OSubAddA (d, a, b, q) else OSubAddB (d, a, b, p))
  | OSub (_, a, b), OSub (d, p, q) ->
      Some (if p = t then OSubSubA (d, a, b, q) else OSubSubB (d, a, b, p))
  | OSub (_, a, b), OMul (d, p, q) ->
      Some (if p = t then OSubMulA (d, a, b, q) else OSubMulB (d, a, b, p))
  | OMul (_, a, b), OAdd (d, p, q) ->
      Some (if p = t then OMulAddA (d, a, b, q) else OMulAddB (d, a, b, p))
  | OMul (_, a, b), OSub (d, p, q) ->
      Some (if p = t then OMulSubA (d, a, b, q) else OMulSubB (d, a, b, p))
  | OMul (_, a, b), OMul (d, p, q) ->
      Some (if p = t then OMulMulA (d, a, b, q) else OMulMulB (d, a, b, p))
  (* mul feeding a mul-add accumulator: the dot-product step *)
  | OMul (_, a, b), OMulAddB (d, p, q, c) when c = t ->
      (* (p*q) + (a*b) ... OMulAddB (d, p, q, c) = c + (p*q) with c = a*b *)
      Some (OMulMulAdd (d, a, b, p, q))
  | OMul (_, a, b), OMulAddA (d, p, q, c) when c = t ->
      (* (p*q) + (a*b) *)
      Some (OMulMulAdd (d, p, q, a, b))
  (* the dot product keeps absorbing mul-add accumulators and a trailing
     scalar add (the distance-softening term); association order is
     preserved exactly, so the float result is bit-identical *)
  | OMulMulAdd (_, a, b, p, q), OMulAddB (d, x, y, c) when c = t ->
      (* ((a*b) + (p*q)) + (x*y) *)
      Some (ODot3 (d, a, b, p, q, x, y))
  | ODot3 (_, a, b, p, q, x, y), OAdd (d, u, e) when u = t ->
      (* (dot3) + e *)
      Some (ODot3Add (d, a, b, p, q, x, y, e))
  (* math1 + div/mul *)
  | OMath1 (_, g, a), ODiv (d, p, q) ->
      Some (if p = t then OGDiv (d, g, a, q) else ODivG (d, p, g, a))
  | OMath1 (_, g, a), OMul (d, p, q) ->
      Some (if p = t then OGMul (d, g, a, q) else OMulG (d, p, g, a))
  | _ -> None

(* One fusion pass over [ops]: greedy leftmost adjacent pair whose link
   register is written once, read once, and is not a kernel output.
   Returns [None] when no pair fused. *)
let fuse_once ~out ops =
  let nregs = Array.fold_left (fun acc op ->
      let acc = match kop_writes op with Some d -> max acc (d + 1) | None -> acc in
      List.fold_left (fun acc r -> max acc (r + 1)) acc (kop_reads op))
      0 ops
  in
  let writes = Array.make (max 1 nregs) 0 in
  let reads = Array.make (max 1 nregs) 0 in
  Array.iter
    (fun op ->
      (match kop_writes op with Some d -> writes.(d) <- writes.(d) + 1 | None -> ());
      List.iter (fun r -> reads.(r) <- reads.(r) + 1) (kop_reads op))
    ops;
  let n = Array.length ops in
  let rec scan i =
    if i + 1 >= n then None
    else
      let x = ops.(i) and y = ops.(i + 1) in
      match kop_writes x with
      | Some t
        when t < Array.length out
             && (not out.(t))
             && writes.(t) = 1 && reads.(t) = 1
             && List.mem t (kop_reads y) -> (
          match fuse_pair t x y with
          | Some fused ->
              let ops' =
                Array.concat
                  [
                    Array.sub ops 0 i;
                    [| fused |];
                    Array.sub ops (i + 2) (n - i - 2);
                  ]
              in
              Some ops'
          | None -> scan (i + 1))
      | _ -> scan (i + 1)
  in
  scan 0

let fuse ~out ops =
  let rec go ops changed =
    match fuse_once ~out ops with
    | Some ops' -> go ops' true
    | None -> (ops, changed)
  in
  go ops false

(* A kernel is domain-shardable when no register value flows between
   iterations: every register the body writes is written before it is
   read within one iteration.  (The loop index and invariant inputs
   live in [k_in]/per-shard state; memory aliasing between the shards'
   store ranges is checked at run time by the executor.) *)
let shardable (k : R.kernel) =
  let nregs = k.R.k_nfregs in
  let written_in_body = Array.make (max 1 nregs) false in
  Array.iter
    (fun ki ->
      match kinstr_writes ki with
      | Some d -> written_in_body.(d) <- true
      | None -> ())
    k.R.k_body;
  let written = Array.make (max 1 nregs) false in
  let carried = ref false in
  Array.iter
    (fun ki ->
      List.iter
        (fun r -> if written_in_body.(r) && not written.(r) then carried := true)
        (kinstr_reads ki);
      match kinstr_writes ki with
      | Some d -> written.(d) <- true
      | None -> ())
    k.R.k_body;
  not !carried

(* Hoist single-assignment literal registers (and, in store-free
   kernels, loads through loop-invariant sites) out of the body: they
   are computed once at kernel entry instead of every iteration.  Legal
   only when the register is written exactly once in the body and never
   read before that write (so the entry value is the value every
   iteration sees). *)
let hoist_entry (k : R.kernel) ops =
  let nregs = k.R.k_nfregs in
  let writes = Array.make (max 1 nregs) 0 in
  Array.iter
    (fun op ->
      match kop_writes op with
      | Some d -> writes.(d) <- writes.(d) + 1
      | None -> ())
    ops;
  let any_stores = Array.exists (fun c -> c > 0) k.R.k_site_stores in
  let read_before = Array.make (max 1 nregs) false in
  let lits = ref [] and pref = ref [] in
  let keep = ref [] in
  Array.iter
    (fun op ->
      let hoisted =
        match op with
        | OLit (d, x) when writes.(d) = 1 && not read_before.(d) ->
            lits := (d, x) :: !lits;
            true
        | OLoad (d, si)
          when (not any_stores) && writes.(d) = 1 && not read_before.(d)
               && invariant_idx k.R.k_sites.(si).R.ks_idx ->
            pref := (d, si) :: !pref;
            true
        | _ -> false
      in
      if not hoisted then begin
        List.iter (fun r -> read_before.(r) <- true) (kop_reads op);
        keep := op :: !keep
      end)
    ops;
  ( Array.of_list (List.rev !keep),
    Array.of_list (List.rev !lits),
    Array.of_list (List.rev !pref) )

(** Lift one kernel into a micro-program.  [hot sid] gates the
    superinstruction selector: cold kernels get the plain one-to-one
    lift (still dispatch-cheap, but unfused so selector decisions stay
    attributable to the profile). *)
let lift_kernel ~hot (k : R.kernel) : kprog =
  let m = Flow_obs.Metrics.global in
  Flow_obs.Metrics.incr m "vm_kernels";
  let plain = Array.map kop_of_kinstr k.R.k_body in
  let shard = shardable k in
  if shard then Flow_obs.Metrics.incr m "vm_kernels_shardable";
  if not (hot k.R.k_fsid) then begin
    Flow_obs.Metrics.incr m "vm_kernels_cold";
    {
      kp_kern = k;
      kp_ops = plain;
      kp_lits = [||];
      kp_prefetch = [||];
      kp_fused = false;
      kp_shardable = shard;
    }
  end
  else begin
    let before = Array.length plain in
    let ops, lits, pref = hoist_entry k plain in
    let out = Array.make (max 1 k.R.k_nfregs) false in
    Array.iter (fun (_, freg) -> out.(freg) <- true) k.R.k_out;
    let ops, fused_any = fuse ~out ops in
    let fused =
      fused_any || Array.length lits > 0 || Array.length pref > 0
    in
    if fused then Flow_obs.Metrics.incr m "vm_kernels_fused";
    Flow_obs.Metrics.incr m "vm_kernel_ops_before" ~by:before;
    Flow_obs.Metrics.incr m "vm_kernel_ops_after" ~by:(Array.length ops);
    Flow_obs.Metrics.incr m "vm_kernel_lits" ~by:(Array.length lits);
    Flow_obs.Metrics.incr m "vm_kernel_prefetch" ~by:(Array.length pref);
    {
      kp_kern = k;
      kp_ops = ops;
      kp_lits = lits;
      kp_prefetch = pref;
      kp_fused = fused;
      kp_shardable = shard;
    }
  end

(** Hotness predicate from a measured profile: a loop is hot when it
    accounts for at least [min_share] of total virtual cycles.  With no
    cycle data everything is hot (first run, no profile yet). *)
let hot_of_profile ?(min_share = 0.02) (p : Profile.t) : int -> bool =
  let total = p.Profile.cycles in
  if total <= 0.0 then fun _ -> true
  else fun sid ->
    match Hashtbl.find_opt p.Profile.loops sid with
    | Some (ls : Profile.loop_stat) -> ls.Profile.cycles /. total >= min_share
    | None -> false

(* ================================================================== *)
(* Lowering                                                            *)
(* ================================================================== *)

type item = Lab of int | Ins of instr

type lctx = {
  cp : R.t;
  glob : bool;  (** lowering the globals block: the frame is [garray] *)
  hot : int -> bool;
  nloops : int ref;  (** dense loop numbering, shared across functions *)
  cbase : int;
  tbase : int;
  cof : Value.t -> int;  (** constant-pool register of a literal *)
  mutable rev : item list;  (** emitted items, newest first *)
  mutable nlab : int;
  mutable ntmp : int;
  mutable maxtmp : int;
  mutable nsi : int;
  mutable maxsi : int;
  mutable nsf : int;
  mutable maxsf : int;
}

let emit ctx i = ctx.rev <- Ins i :: ctx.rev

let fresh_lab ctx =
  let l = ctx.nlab in
  ctx.nlab <- l + 1;
  l

let place ctx l = ctx.rev <- Lab l :: ctx.rev

let tmp ctx =
  let r = ctx.tbase + ctx.ntmp in
  ctx.ntmp <- ctx.ntmp + 1;
  if ctx.ntmp > ctx.maxtmp then ctx.maxtmp <- ctx.ntmp;
  r

let alloc_si ctx =
  let s = ctx.nsi in
  ctx.nsi <- s + 1;
  if ctx.nsi > ctx.maxsi then ctx.maxsi <- ctx.nsi;
  s

let alloc_sf ctx =
  let s = ctx.nsf in
  ctx.nsf <- s + 1;
  if ctx.nsf > ctx.maxsf then ctx.maxsf <- ctx.nsf;
  s

let fresh_loop ctx =
  let l = !(ctx.nloops) in
  incr ctx.nloops;
  l

(* In the globals block the running frame IS the global frame, so the
   optimizer's [Local] references (hoist slots, kernel slots) resolve
   through [garray]. *)
let eff ctx vr =
  if ctx.glob then match vr with R.Local i -> R.Global i | x -> x else vr

(* ------------------------------------------------------------------ *)
(* Constant-pool prescan                                               *)
(* ------------------------------------------------------------------ *)

let vkey = function
  | Value.VUnit -> "u"
  | Value.VBool b -> if b then "b1" else "b0"
  | Value.VInt n -> "i" ^ string_of_int n
  | Value.VFloat f -> "f" ^ Int64.to_string (Int64.bits_of_float f)
  | Value.VPtr { mem_id; off } -> Printf.sprintf "p%d+%d" mem_id off

let rec scan_e f (e : R.expr) =
  match e.R.e with
  | R.ELit v -> f v
  | R.EVar (R.Unbound _) -> f Value.VUnit  (* dummy result register *)
  | R.EVar _ -> ()
  | R.ENeg a | R.ENot a | R.ECast (_, a) -> scan_e f a
  | R.EArith (_, _, a, b) | R.EArithF (_, _, a, b) ->
      scan_e f a;
      scan_e f b
  | R.EArithI (_, a, b)
  | R.ECmp (_, a, b)
  | R.ECmpF (_, a, b)
  | R.ECmpI (_, a, b) ->
      scan_e f a;
      scan_e f b
  | R.EDiv (a, b) | R.EDivF (a, b) | R.EDivI (a, b) | R.EMod (a, b)
  | R.EAnd (a, b) | R.EOr (a, b) | R.EIndex (a, b) ->
      scan_e f a;
      scan_e f b
  | R.ECall { cargs; _ } ->
      List.iter (scan_e f) cargs;
      f Value.VUnit  (* builtin/error dummy results *)
  | R.EFolded _ -> ()
  | R.EHoisted { horig; _ } -> scan_e f horig

let rec scan_s f = function
  | R.SDeclVar { typ; init; _ } -> (
      match init with
      | Some e -> scan_e f e
      | None -> f (Value.zero_of_typ typ))
  | R.SDeclArr { size; _ } -> scan_e f size
  | R.SAssign { rhs; _ } -> scan_e f rhs
  | R.SStore { arr; idx; rhs; _ } ->
      scan_e f rhs;
      scan_e f arr;
      scan_e f idx
  | R.SExpr e -> scan_e f e
  | R.SIf (c, b1, b2) ->
      scan_e f c;
      scan_b f b1;
      Option.iter (scan_b f) b2
  | R.SWhile { cond; body; _ } ->
      scan_e f cond;
      scan_b f body
  | R.SFor { init; bound; step; body; _ } ->
      scan_e f init;
      scan_e f bound;
      scan_e f step;
      scan_b f body
  | R.SReturn eo -> Option.iter (scan_e f) eo
  | R.SBlock b -> scan_b f b
  | R.SDrop { drhs; _ } -> Option.iter (scan_e f) drhs
  | R.SHoistReset _ -> ()
  | R.SFused { forig; _ } -> scan_s f forig

and scan_b f (b : R.block) =
  List.iter (fun (g : R.group) -> List.iter (scan_s f) g.R.gstmts) b

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

(* [lx] lowers an expression and returns the register holding its
   result.  Literals resolve to constant-pool registers (no code);
   locals resolve to their slot register directly — valid because no
   MiniC construct writes a local slot mid-expression (assignments are
   statements and the optimizer's hoist slots are never [EVar]'d) —
   while globals are snapshotted into a temp at their evaluation point
   (a user call later in the expression may overwrite them). *)
let rec lx ctx (e : R.expr) : int =
  match e.R.e with
  | R.ELit v -> ctx.cof v
  | R.EVar vr -> (
      match eff ctx vr with
      | R.Local i -> i
      | R.Global g ->
          let t = tmp ctx in
          emit ctx (IGetG (t, g));
          t
      | R.Unbound n ->
          emit ctx (IErrVar n);
          ctx.cof Value.VUnit)
  | R.ENeg a ->
      let ra = lx ctx a in
      let t = tmp ctx in
      emit ctx (INeg (t, ra));
      t
  | R.ENot a ->
      let ra = lx ctx a in
      let t = tmp ctx in
      emit ctx (INot (t, ra));
      t
  | R.EArith (op, fresid, a, b) ->
      let ra = lx ctx a in
      let rb = lx ctx b in
      let t = tmp ctx in
      emit ctx (IArith { op; fresid; d = t; a = ra; b = rb });
      t
  | R.EArithF (op, fresid, a, b) ->
      let ra = lx ctx a in
      let rb = lx ctx b in
      let t = tmp ctx in
      emit ctx (IArithF { op; fresid; d = t; a = ra; b = rb });
      t
  | R.EArithI (op, a, b) ->
      let ra = lx ctx a in
      let rb = lx ctx b in
      let t = tmp ctx in
      emit ctx (IArithI { op; d = t; a = ra; b = rb });
      t
  | R.EDiv (a, b) ->
      let ra = lx ctx a in
      let rb = lx ctx b in
      let t = tmp ctx in
      emit ctx (IDiv (t, ra, rb));
      t
  | R.EDivF (a, b) ->
      let ra = lx ctx a in
      let rb = lx ctx b in
      let t = tmp ctx in
      emit ctx (IDivF (t, ra, rb));
      t
  | R.EDivI (a, b) ->
      let ra = lx ctx a in
      let rb = lx ctx b in
      let t = tmp ctx in
      emit ctx (IDivI (t, ra, rb));
      t
  | R.EMod (a, b) ->
      let ra = lx ctx a in
      let rb = lx ctx b in
      let t = tmp ctx in
      emit ctx (IMod (t, ra, rb));
      t
  | R.ECmp (op, a, b) ->
      let ra = lx ctx a in
      let rb = lx ctx b in
      let t = tmp ctx in
      emit ctx (ICmp { op; kind = KDyn; d = t; a = ra; b = rb });
      t
  | R.ECmpF (op, a, b) ->
      let ra = lx ctx a in
      let rb = lx ctx b in
      let t = tmp ctx in
      emit ctx (ICmp { op; kind = KFlt; d = t; a = ra; b = rb });
      t
  | R.ECmpI (op, a, b) ->
      let ra = lx ctx a in
      let rb = lx ctx b in
      let t = tmp ctx in
      emit ctx (ICmp { op; kind = KInt; d = t; a = ra; b = rb });
      t
  | R.EAnd (a, b) ->
      let d = tmp ctx in
      let ra = lx ctx a in
      let l = fresh_lab ctx in
      emit ctx (IAndTest { d; src = ra; bcost = b.R.ecost; tgt = l });
      let rb = lx ctx b in
      emit ctx (ICastB (d, rb));
      place ctx l;
      d
  | R.EOr (a, b) ->
      let d = tmp ctx in
      let ra = lx ctx a in
      let l = fresh_lab ctx in
      emit ctx (IOrTest { d; src = ra; bcost = b.R.ecost; tgt = l });
      let rb = lx ctx b in
      emit ctx (ICastB (d, rb));
      place ctx l;
      d
  | R.EIndex (a, i) ->
      let ra = lx ctx a in
      let ri = lx ctx i in
      let t = tmp ctx in
      emit ctx (IIndex { d = t; a = ra; i = ri });
      t
  | R.ECast (t, a) -> (
      let ra = lx ctx a in
      match t with
      | Minic.Ast.Tint ->
          let d = tmp ctx in
          emit ctx (ICastI (d, ra));
          d
      | Minic.Ast.Tfloat | Minic.Ast.Tdouble ->
          let d = tmp ctx in
          emit ctx (ICastF (d, ra));
          d
      | Minic.Ast.Tbool ->
          let d = tmp ctx in
          emit ctx (ICastB (d, ra));
          d
      | _ -> ra)
  | R.ECall { callee; cargs } -> lcall ctx callee cargs
  | R.EFolded { fval; f_flops; f_int_ops; f_dyn } ->
      let t = tmp ctx in
      emit ctx (IFolded { d = t; fval; f_flops; f_int_ops; f_dyn });
      t
  | R.EHoisted { hslot; h_flops; h_sfu; h_dyn; horig } ->
      let d = tmp ctx in
      let l = fresh_lab ctx in
      emit ctx
        (IHoisted { glob = ctx.glob; hslot; h_flops; h_sfu; h_dyn; d; tgt = l });
      let rh = lx ctx horig in
      emit ctx (IHoistSave { glob = ctx.glob; hslot; d; src = rh });
      place ctx l;
      d

(* Arguments lower left to right (an explicit fold: the emission order
   is the evaluation order). *)
and largs ctx cargs =
  List.rev (List.fold_left (fun acc a -> lx ctx a :: acc) [] cargs)

and lcall ctx callee cargs : int =
  match callee with
  | R.User idx ->
      let f = ctx.cp.R.cfuncs.(idx) in
      if List.length cargs <> List.length f.R.cf_params then begin
        ignore (largs ctx cargs);
        emit ctx
          (IErrMsg
             (Printf.sprintf "call to '%s' with wrong arity" f.R.cf_name));
        ctx.cof Value.VUnit
      end
      else begin
        let rs = largs ctx cargs in
        let t = tmp ctx in
        emit ctx (ICallUser { d = t; fidx = idx; args = Array.of_list rs });
        t
      end
  | R.Math { mimpl = R.M1 g; mflops } -> (
      match cargs with
      | [ a ] ->
          let ra = lx ctx a in
          let t = tmp ctx in
          emit ctx (IMath1 { d = t; g; mflops; a = ra });
          t
      | _ ->
          let rs = largs ctx cargs in
          let t = tmp ctx in
          emit ctx
            (IMathGen { d = t; mimpl = R.M1 g; mflops; args = Array.of_list rs });
          t)
  | R.Math { mimpl = R.M2 g; mflops } -> (
      match cargs with
      | [ a; b ] ->
          let ra = lx ctx a in
          let rb = lx ctx b in
          let t = tmp ctx in
          emit ctx (IMath2 { d = t; g; mflops; a = ra; b = rb });
          t
      | _ ->
          let rs = largs ctx cargs in
          let t = tmp ctx in
          emit ctx
            (IMathGen { d = t; mimpl = R.M2 g; mflops; args = Array.of_list rs });
          t)
  | R.Math_unimpl base ->
      ignore (largs ctx cargs);
      emit ctx (IErrMsg (Printf.sprintf "unimplemented math builtin '%s'" base));
      ctx.cof Value.VUnit
  | R.Rand01 ->
      ignore (largs ctx cargs);
      let t = tmp ctx in
      emit ctx (IRand01 t);
      t
  | R.Rand_int -> (
      match largs ctx cargs with
      | r :: _ ->
          let t = tmp ctx in
          emit ctx (IRandInt (t, r));
          t
      | [] ->
          emit ctx IFailHd;
          ctx.cof Value.VUnit)
  | R.Print_int ->
      (match largs ctx cargs with
      | r :: _ -> emit ctx (IPrintInt r)
      | [] -> emit ctx IFailHd);
      ctx.cof Value.VUnit
  | R.Print_float ->
      (match largs ctx cargs with
      | r :: _ -> emit ctx (IPrintFloat r)
      | [] -> emit ctx IFailHd);
      ctx.cof Value.VUnit
  | R.Timer_start ->
      (match largs ctx cargs with
      | r :: _ -> emit ctx (ITimerStart r)
      | [] -> emit ctx IFailHd);
      ctx.cof Value.VUnit
  | R.Timer_stop ->
      (match largs ctx cargs with
      | r :: _ -> emit ctx (ITimerStop r)
      | [] -> emit ctx IFailHd);
      ctx.cof Value.VUnit
  | R.Unknown fname ->
      ignore (largs ctx cargs);
      emit ctx (IErrMsg (Printf.sprintf "call to unknown function '%s'" fname));
      ctx.cof Value.VUnit

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

and store_slot ctx vr src =
  match eff ctx vr with
  | R.Local i -> if i <> src then emit ctx (IMov (i, src))
  | R.Global g -> emit ctx (ISetG (g, src))
  | R.Unbound n -> emit ctx (IErrVar n)

(* Declaration-initializer store: the coercion (and its error) happens
   before an unbound-variable error, exactly like [co (ce ...)] feeding
   the failing setter in the threaded engine. *)
and store_coerced ctx vr typ src =
  match typ with
  | Minic.Ast.Tint | Minic.Ast.Tfloat | Minic.Ast.Tdouble | Minic.Ast.Tbool
    -> (
      let cast d =
        match typ with
        | Minic.Ast.Tint -> ICastI (d, src)
        | Minic.Ast.Tbool -> ICastB (d, src)
        | _ -> ICastF (d, src)
      in
      match eff ctx vr with
      | R.Local i -> emit ctx (cast i)
      | R.Global g ->
          let t = tmp ctx in
          emit ctx (cast t);
          emit ctx (ISetG (g, t))
      | R.Unbound n ->
          let t = tmp ctx in
          emit ctx (cast t);
          emit ctx (IErrVar n))
  | _ -> store_slot ctx vr src

and ls ctx (s : R.stmt) =
  (* temp watermark: expression temporaries die at statement end *)
  let t0 = ctx.ntmp in
  (match s with
  | R.SDeclVar { slot; typ; init } -> (
      emit ctx IFuel;
      match init with
      | Some e ->
          let rv = lx ctx e in
          store_coerced ctx slot typ rv
      | None -> store_slot ctx slot (ctx.cof (Value.zero_of_typ typ)))
  | R.SDeclArr { slot; typ; name; size } ->
      emit ctx IFuel;
      let rs = lx ctx size in
      let t = tmp ctx in
      emit ctx (IAlloc { d = t; typ; name; src = rs });
      store_slot ctx slot t
  | R.SAssign { slot; aop; rhs } -> (
      emit ctx IFuel;
      let rv = lx ctx rhs in
      match aop with
      | Minic.Ast.Set -> store_slot ctx slot rv
      | aop -> (
          match eff ctx slot with
          | R.Local i -> emit ctx (IApplyAssign { d = i; aop; old = i; rhs = rv })
          | R.Global g ->
              let t = tmp ctx in
              emit ctx (IGetG (t, g));
              emit ctx (IApplyAssign { d = t; aop; old = t; rhs = rv });
              emit ctx (ISetG (g, t))
          | R.Unbound n -> emit ctx (IErrVar n)))
  | R.SStore { arr; idx; aop; rhs } -> (
      emit ctx IFuel;
      let rv = lx ctx rhs in
      let ra = lx ctx arr in
      let ri = lx ctx idx in
      match aop with
      | Minic.Ast.Set -> emit ctx (IStore { arr = ra; idx = ri; src = rv })
      | aop -> emit ctx (IStoreOp { aop; arr = ra; idx = ri; src = rv }))
  | R.SExpr e ->
      emit ctx IFuel;
      ignore (lx ctx e)
  | R.SIf (c, b1, b2) -> (
      emit ctx IFuel;
      let lelse = fresh_lab ctx in
      (match c.R.e with
      | R.ECmp (op, a, b) ->
          let ra = lx ctx a in
          let rb = lx ctx b in
          Flow_obs.Metrics.incr Flow_obs.Metrics.global "vm_fused_cmp_branch";
          emit ctx (IBrCmp { op; kind = KDyn; a = ra; b = rb; tgt = lelse })
      | R.ECmpF (op, a, b) ->
          let ra = lx ctx a in
          let rb = lx ctx b in
          Flow_obs.Metrics.incr Flow_obs.Metrics.global "vm_fused_cmp_branch";
          emit ctx (IBrCmp { op; kind = KFlt; a = ra; b = rb; tgt = lelse })
      | R.ECmpI (op, a, b) ->
          let ra = lx ctx a in
          let rb = lx ctx b in
          Flow_obs.Metrics.incr Flow_obs.Metrics.global "vm_fused_cmp_branch";
          emit ctx (IBrCmp { op; kind = KInt; a = ra; b = rb; tgt = lelse })
      | _ ->
          let rc = lx ctx c in
          emit ctx (IJmpFalse (rc, lelse)));
      lb ctx b1;
      match b2 with
      | None -> place ctx lelse
      | Some b2 ->
          let lend = fresh_lab ctx in
          emit ctx (IJmp lend);
          place ctx lelse;
          lb ctx b2;
          place ctx lend)
  | R.SWhile { wsid; cond; body } ->
      emit ctx IFuel;
      let lidx = fresh_loop ctx in
      let si0 = ctx.nsi and sf0 = ctx.nsf in
      let trips = alloc_si ctx and t0 = alloc_sf ctx in
      emit ctx (ILoopEnterW { lidx; sid = wsid; t0; trips });
      let ltest = fresh_lab ctx and lexit = fresh_lab ctx in
      place ctx ltest;
      if cond.R.ecost <> 0.0 then emit ctx (ICharge cond.R.ecost);
      let rc = lx ctx cond in
      emit ctx (IWhileIter { src = rc; lidx; sid = wsid; trips; tgt = lexit });
      lb ctx body;
      emit ctx (IJmp ltest);
      place ctx lexit;
      emit ctx (ILoopExit { lidx; sid = wsid; t0; trips });
      ctx.nsi <- si0;
      ctx.nsf <- sf0
  | R.SFor { fsid; slot; init; bound; inclusive; step; body } ->
      lfor ctx (fresh_loop ctx) ~fsid ~slot ~init ~bound ~inclusive ~step
        ~body
  | R.SReturn eo ->
      emit ctx IFuel;
      let rv =
        match eo with Some e -> lx ctx e | None -> ctx.cof Value.VUnit
      in
      emit ctx (if ctx.glob then IRetRaise rv else IRet rv)
  | R.SBlock b ->
      emit ctx IFuel;
      lb ctx b
  | R.SDrop { dtyp; drhs } -> (
      emit ctx IFuel;
      match drhs with
      | None -> ()
      | Some e -> (
          let rv = lx ctx e in
          match dtyp with
          | Some
              ((Minic.Ast.Tint | Minic.Ast.Tfloat | Minic.Ast.Tdouble
               | Minic.Ast.Tbool) as t) ->
              emit ctx (IDropChk { co = t; src = rv })
          | Some _ | None -> ()))
  | R.SHoistReset slots ->
      emit ctx (IHoistReset { glob = ctx.glob; slots = Array.of_list slots })
  | R.SFused { forig; kern } -> (
      match forig with
      | R.SFor { fsid; slot; init; bound; inclusive; step; body } ->
          let lidx = fresh_loop ctx in
          let ldone = fresh_lab ctx in
          let kp = lift_kernel ~hot:ctx.hot kern in
          emit ctx (IKernel { glob = ctx.glob; lidx; kp; tgt = ldone });
          lfor ctx lidx ~fsid ~slot ~init ~bound ~inclusive ~step ~body;
          place ctx ldone
      | s -> ls ctx s));
  ctx.ntmp <- t0

and lfor ctx lidx ~fsid ~slot ~init ~bound ~inclusive ~step ~body =
  emit ctx IFuel;
  let si0 = ctx.nsi and sf0 = ctx.nsf in
  let trips = alloc_si ctx and t0 = alloc_sf ctx in
  emit ctx
    (ILoopEnterF { lidx; sid = fsid; t0; trips; icost = init.R.ecost });
  let ri = lx ctx init in
  let slot = eff ctx slot in
  emit ctx (IForInit { slot; src = ri });
  let ltest = fresh_lab ctx and lexit = fresh_lab ctx in
  place ctx ltest;
  emit ctx (ICharge (C.branch +. bound.R.ecost));
  let rb = lx ctx bound in
  emit ctx
    (IForTest { slot; bound = rb; inclusive; lidx; sid = fsid; trips; tgt = lexit });
  lb ctx body;
  if step.R.ecost <> 0.0 then emit ctx (ICharge step.R.ecost);
  let rs = lx ctx step in
  emit ctx (IForStep { slot; src = rs });
  emit ctx (IJmp ltest);
  place ctx lexit;
  emit ctx (ILoopExit { lidx; sid = fsid; t0; trips });
  ctx.nsi <- si0;
  ctx.nsf <- sf0

and lg ctx (g : R.group) =
  if g.R.gcost <> 0.0 then emit ctx (ICharge g.R.gcost);
  List.iter (ls ctx) g.R.gstmts

and lb ctx (b : R.block) = List.iter (lg ctx) b

(* ------------------------------------------------------------------ *)
(* Label resolution and entry points                                   *)
(* ------------------------------------------------------------------ *)

let patch lp = function
  | IJmp l -> IJmp lp.(l)
  | IJmpFalse (s, l) -> IJmpFalse (s, lp.(l))
  | IBrCmp r -> IBrCmp { r with tgt = lp.(r.tgt) }
  | IAndTest r -> IAndTest { r with tgt = lp.(r.tgt) }
  | IOrTest r -> IOrTest { r with tgt = lp.(r.tgt) }
  | IHoisted r -> IHoisted { r with tgt = lp.(r.tgt) }
  | IWhileIter r -> IWhileIter { r with tgt = lp.(r.tgt) }
  | IForTest r -> IForTest { r with tgt = lp.(r.tgt) }
  | IKernel r -> IKernel { r with tgt = lp.(r.tgt) }
  | i -> i

let lower_fn (cp : R.t) ~glob ~hot ~nloops ~nslots (body : R.block) : fn =
  (* constant-pool prescan first so every register index is final *)
  let tbl = Hashtbl.create 16 in
  let consts = ref [] and ncon = ref 0 in
  let add v =
    let k = vkey v in
    if not (Hashtbl.mem tbl k) then begin
      Hashtbl.add tbl k !ncon;
      consts := v :: !consts;
      incr ncon
    end
  in
  add Value.VUnit;
  scan_b add body;
  let cvals = Array.of_list (List.rev !consts) in
  let cbase = nslots in
  let ctx =
    {
      cp;
      glob;
      hot;
      nloops;
      cbase;
      tbase = cbase + !ncon;
      cof = (fun v -> cbase + Hashtbl.find tbl (vkey v));
      rev = [];
      nlab = 0;
      ntmp = 0;
      maxtmp = 0;
      nsi = 0;
      maxsi = 0;
      nsf = 0;
      maxsf = 0;
    }
  in
  lb ctx body;
  (* fall off the end: both engines return VUnit *)
  emit ctx (IRet (ctx.cof Value.VUnit));
  let items = List.rev ctx.rev in
  let lp = Array.make (max 1 ctx.nlab) 0 in
  let n = ref 0 in
  List.iter (function Lab l -> lp.(l) <- !n | Ins _ -> incr n) items;
  let code = Array.make !n IFuel in
  let pc = ref 0 in
  List.iter
    (function
      | Lab _ -> ()
      | Ins i ->
          code.(!pc) <- patch lp i;
          incr pc)
    items;
  Flow_obs.Metrics.incr Flow_obs.Metrics.global "vm_instrs"
    ~by:(Array.length code);
  {
    bc_code = code;
    bc_nregs = max 1 (ctx.tbase + ctx.maxtmp);
    bc_cbase = cbase;
    bc_cvals = cvals;
    bc_nsi = ctx.maxsi;
    bc_nsf = ctx.maxsf;
  }

(** Lower a resolved (optionally optimized) program.  [hot] gates the
    superinstruction selector per loop statement id; by default every
    specialized kernel is fused (profile-free compile).  Pass
    [hot_of_profile p] to fuse only loops that matter in [p]. *)
let lower ?(hot = fun (_ : int) -> true) (cp : R.t) : program =
  let nloops = ref 0 in
  let funcs =
    Array.map
      (fun (cf : R.cfunc) ->
        lower_fn cp ~glob:false ~hot ~nloops ~nslots:cf.R.cf_nslots
          cf.R.cf_body)
      cp.R.cfuncs
  in
  let globals = lower_fn cp ~glob:true ~hot ~nloops ~nslots:0 cp.R.cglobals in
  Flow_obs.Metrics.incr Flow_obs.Metrics.global "vm_programs";
  { bc_cp = cp; bc_funcs = funcs; bc_globals = globals; bc_nloops = !nloops }
