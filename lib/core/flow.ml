(** PSA-flow orchestration: branching task sequences with Path Selection
    Automation.

    A flow is a tree of tasks, sequences and branch points.  A branch
    point holds named paths and a selection strategy; running a branch
    duplicates the context into every selected path ("uninformed" mode
    selects all paths, producing every design; an "informed" PSA strategy
    selects one).  Selecting no path terminates the flow on that context
    without modification — Fig. 3's "design-flow terminates" outcome. *)

type selection =
  | All  (** uninformed: generate designs for every path *)
  | Paths of string list  (** informed: the chosen path(s) *)
  | Stop of string  (** terminate without offloading, with a reason *)

type t =
  | Task of Task.t
  | Seq of t list
  | Branch of branch_point

and branch_point = {
  bp_name : string;
  paths : (string * t) list;
  select : Context.t -> selection;
}

(** Sequential composition. *)
let seq ts = Seq ts

let task t = Task t

(** A branch point with a PSA strategy. *)
let branch bp_name ~select paths = Branch { bp_name; paths; select }

(** The uninformed strategy: take every path. *)
let select_all _ = All

exception Unknown_path of string * string

(** Run a flow; returns the terminal contexts (one per reached leaf). *)
let rec run (flow : t) (ctx : Context.t) : Context.t list =
  match flow with
  | Task t -> [ Task.apply t ctx ]
  | Seq fs ->
      List.fold_left
        (fun ctxs f -> List.concat_map (run f) ctxs)
        [ ctx ] fs
  | Branch bp -> (
      match bp.select ctx with
      | Stop reason ->
          [ Context.logf ctx "branch %s: stop (%s)" bp.bp_name reason ]
      | All ->
          let ctx =
            Context.logf ctx "branch %s: uninformed, all %d paths" bp.bp_name
              (List.length bp.paths)
          in
          (* the uninformed fan-out explores every path: independent
             sub-flows, evaluated by the domain pool (order-preserving,
             so results are identical to the sequential traversal) *)
          List.concat
            (Dse.Pool.map
               (fun (name, f) ->
                 run f (Context.logf ctx "branch %s -> %s" bp.bp_name name))
               bp.paths)
      | Paths names ->
          let selected =
            List.map
              (fun name ->
                match List.assoc_opt name bp.paths with
                | None -> raise (Unknown_path (bp.bp_name, name))
                | Some f -> (name, f))
              names
          in
          List.concat
            (Dse.Pool.map
               (fun (name, f) ->
                 run f
                   (Context.logf ctx "branch %s: PSA selected %s" bp.bp_name
                      name))
               selected))

(** All tasks mentioned in a flow, in definition order (the "repository"
    listing of Fig. 4). *)
let rec tasks = function
  | Task t -> [ t ]
  | Seq fs -> List.concat_map tasks fs
  | Branch bp -> List.concat_map (fun (_, f) -> tasks f) bp.paths

(** Rewrite the selection strategy of the branch point named [name]
    (how the evaluation switches branch point A between informed and
    uninformed modes, and how users plug in custom strategies). *)
let rec override_selection ~name ~select = function
  | Task t -> Task t
  | Seq fs -> Seq (List.map (override_selection ~name ~select) fs)
  | Branch bp ->
      let paths =
        List.map
          (fun (n, f) -> (n, override_selection ~name ~select f))
          bp.paths
      in
      if bp.bp_name = name then Branch { bp with paths; select }
      else Branch { bp with paths }
