(** PSA-flow orchestration: branching task sequences with Path Selection
    Automation.

    A flow is a tree of tasks, sequences and branch points.  A branch
    point holds named paths and a selection strategy; running a branch
    duplicates the context into every selected path ("uninformed" mode
    selects all paths, producing every design; an "informed" PSA strategy
    selects one).  Selecting no path terminates the flow on that context
    without modification — Fig. 3's "design-flow terminates" outcome. *)

type selection =
  | All  (** uninformed: generate designs for every path *)
  | Paths of string list  (** informed: the chosen path(s) *)
  | Stop of string  (** terminate without offloading, with a reason *)

type t =
  | Task of Task.t
  | Seq of t list
  | Branch of branch_point

and branch_point = {
  bp_name : string;
  paths : (string * t) list;
  select : Context.t -> selection;
  strategy_label : string;  (** provenance: which strategy is plugged in *)
  evidence : (Context.t -> (string * Flow_obs.Attr.value) list) option;
      (** provenance: analysis facts the strategy consulted *)
}

(** Sequential composition. *)
let seq ts = Seq ts

let task t = Task t

(** A branch point with a PSA strategy.  [strategy_label] and [evidence]
    feed the decision-provenance record written to the context whenever
    the branch fires. *)
let branch ?(strategy_label = "custom") ?evidence bp_name ~select paths =
  Branch { bp_name; paths; select; strategy_label; evidence }

(** The uninformed strategy: take every path. *)
let select_all _ = All

exception Unknown_path of string * string

(** Provenance evidence of a branch point on a context; a failing
    evidence callback (analyses not run yet) yields no evidence rather
    than aborting the flow. *)
let branch_evidence bp ctx =
  match bp.evidence with
  | None -> []
  | Some f -> ( try f ctx with _ -> [])

(** Run a flow; returns the terminal contexts (one per reached leaf). *)
let rec run (flow : t) (ctx : Context.t) : Context.t list =
  match flow with
  | Task t ->
      Flow_obs.Trace.with_span ~cat:"task" t.Task.name
        ~args:
          [
            ( "class",
              Flow_obs.Attr.String
                (Task.classification_letter t.Task.classification) );
            ("dynamic", Flow_obs.Attr.Bool t.Task.dynamic);
          ]
      @@ fun () -> [ Task.apply t ctx ]
  | Seq fs ->
      Flow_obs.Trace.with_span ~cat:"flow" "seq"
        ~args:[ ("length", Flow_obs.Attr.Int (List.length fs)) ]
      @@ fun () ->
      List.fold_left
        (fun ctxs f -> List.concat_map (run f) ctxs)
        [ ctx ] fs
  | Branch bp ->
      Flow_obs.Trace.with_span ~cat:"branch" ("branch " ^ bp.bp_name)
      @@ fun () ->
      let selection = bp.select ctx in
      let decision =
        let evidence = branch_evidence bp ctx in
        match selection with
        | Stop reason ->
            {
              Flow_obs.Provenance.branch = bp.bp_name;
              strategy = bp.strategy_label;
              selected = [];
              reason = Some reason;
              evidence;
            }
        | All ->
            {
              Flow_obs.Provenance.branch = bp.bp_name;
              strategy = "uninformed";
              selected = List.map fst bp.paths;
              reason = None;
              evidence;
            }
        | Paths names ->
            {
              Flow_obs.Provenance.branch = bp.bp_name;
              strategy = bp.strategy_label;
              selected = names;
              reason = None;
              evidence;
            }
      in
      Flow_obs.Trace.add_args
        [
          ("strategy", Flow_obs.Attr.String decision.strategy);
          ( "selected",
            Flow_obs.Attr.String
              (Flow_obs.Provenance.selection_to_string decision) );
        ];
      Flow_obs.Metrics.incr Flow_obs.Metrics.global "flow_branch_decisions";
      let ctx = Context.record_decision decision ctx in
      (match selection with
      | Stop reason ->
          [ Context.logf ctx "branch %s: stop (%s)" bp.bp_name reason ]
      | All ->
          let ctx =
            Context.logf ctx "branch %s: uninformed, all %d paths" bp.bp_name
              (List.length bp.paths)
          in
          (* the uninformed fan-out explores every path: independent
             sub-flows, evaluated by the domain pool (order-preserving,
             so results are identical to the sequential traversal) *)
          List.concat
            (Dse.Pool.map
               (fun (name, f) ->
                 run f (Context.logf ctx "branch %s -> %s" bp.bp_name name))
               bp.paths)
      | Paths names ->
          let selected =
            List.map
              (fun name ->
                match List.assoc_opt name bp.paths with
                | None -> raise (Unknown_path (bp.bp_name, name))
                | Some f -> (name, f))
              names
          in
          List.concat
            (Dse.Pool.map
               (fun (name, f) ->
                 run f
                   (Context.logf ctx "branch %s: PSA selected %s" bp.bp_name
                      name))
               selected))

(** All tasks mentioned in a flow, in definition order (the "repository"
    listing of Fig. 4). *)
let rec tasks = function
  | Task t -> [ t ]
  | Seq fs -> List.concat_map tasks fs
  | Branch bp -> List.concat_map (fun (_, f) -> tasks f) bp.paths

(** Rewrite the selection strategy of the branch point named [name]
    (how the evaluation switches branch point A between informed and
    uninformed modes, and how users plug in custom strategies).
    [strategy_label] renames the provenance label of the replaced
    strategy (default ["custom"]); the evidence callback is kept, so
    custom strategies still surface the analysis facts in [explain]. *)
let rec override_selection ?(strategy_label = "custom") ~name ~select =
  function
  | Task t -> Task t
  | Seq fs ->
      Seq (List.map (override_selection ~strategy_label ~name ~select) fs)
  | Branch bp ->
      let paths =
        List.map
          (fun (n, f) -> (n, override_selection ~strategy_label ~name ~select f))
          bp.paths
      in
      if bp.bp_name = name then
        Branch { bp with paths; select; strategy_label }
      else Branch { bp with paths }
