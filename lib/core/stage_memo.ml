(** Stage-level memoization of flow artifacts.

    Typed {!Flow_memo.Cache} instances for the target-independent
    prefix of the flow: parsed ASTs per source digest, extracted
    kernels per (program digest, hotspot loop id), reduction-annotated
    kernels per (program digest, kernel name).  Wired through
    {!Std_flow}'s repository tasks and the service resolver so daemon
    submissions that share a source — variant traffic differing only
    in workload, budget or strategy — share the derived ASTs instead
    of re-deriving them per request.

    Sharing the AST *objects* (not just skipping the work) is what
    makes the rest of the hierarchy effective: MiniC statement ids are
    allocated from a process-global counter at parse/transform time
    and participate in every downstream profile key, so two parses of
    the same source never hit the same profile-cache entry.  With the
    parse/extract/reduce artifacts memoized, a variant request reaches
    the fused-profile stage with bit-identical keys and its
    interpreter runs all hit.  The ASTs are immutable ([Minic.Ast]
    has no mutable fields), so cross-domain sharing is safe.

    Keys follow {!Minic_interp.Profile_cache.key}: a digest of the
    pretty-printed program plus the pre-order loop statement ids —
    loop ids are the only statement ids observable downstream (profile
    statistics, "loop #N" log lines).  Failures (parse errors,
    non-extractable hotspots) are never cached; error paths re-raise
    and recompute exactly as without memoization.

    All three caches follow the hierarchy-wide rules of {!Flow_memo}:
    disabled by [PSAFLOW_NO_MEMO], bypassed while the global tracer
    records (a traced run allocates fresh statement ids and records
    the same span tree as an unmemoized run), bounded by
    [PSAFLOW_MEMO_CAP], striped over [PSAFLOW_MEMO_SHARDS], and
    counted in the global metrics registry as
    [memo_ast_*]/[memo_extract_*]/[memo_reduce_*]. *)

(** Content key of a program: digest of pretty-printed source plus
    pre-order loop statement ids (see {!Minic_interp.Profile_cache.key}). *)
let program_key (p : Minic.Ast.program) : string =
  Digest.to_hex (Minic_interp.Profile_cache.key p)

let parse_cache : Minic.Ast.program Flow_memo.Cache.t =
  Flow_memo.Cache.create ~name:"ast" ()

(** Parse MiniC source, memoized per source digest.  Every request for
    the same source text observes the same program object — and
    therefore the same statement ids. *)
let parse (src : string) : Minic.Ast.program =
  Flow_memo.Cache.find_or_compute parse_cache
    ~key:("ast:" ^ Digest.to_hex (Digest.string src))
    (fun () -> Minic.Parser.parse_program src)

let extract_cache : Transforms.Extract.result Flow_memo.Cache.t =
  Flow_memo.Cache.create ~name:"extract" ()

(** {!Transforms.Extract.hotspot}, memoized per (program digest,
    hotspot loop id). *)
let extract (p : Minic.Ast.program) ~loop_sid : Transforms.Extract.result =
  Flow_memo.Cache.find_or_compute extract_cache
    ~key:(Printf.sprintf "x:%s:%d" (program_key p) loop_sid)
    (fun () -> Transforms.Extract.hotspot p ~loop_sid)

let reduce_cache : (Minic.Ast.program * int) Flow_memo.Cache.t =
  Flow_memo.Cache.create ~name:"reduce" ()

(** {!Transforms.Reduction.remove_array_dependencies}, memoized per
    (program digest, kernel name). *)
let reduce (p : Minic.Ast.program) ~kernel : Minic.Ast.program * int =
  Flow_memo.Cache.find_or_compute reduce_cache
    ~key:(Printf.sprintf "r:%s:%s" (program_key p) kernel)
    (fun () -> Transforms.Reduction.remove_array_dependencies p ~kernel)

(** Drop all parse/extract/reduce entries (tests). *)
let clear () =
  Flow_memo.Cache.clear parse_cache;
  Flow_memo.Cache.clear extract_cache;
  Flow_memo.Cache.clear reduce_cache
