(** Path Selection Automation strategies for branch point A.

    {!fig3} is the paper's example strategy (Fig. 3), driven by the
    accrued analysis facts; {!model_based} is the estimation-driven
    alternative Section II-B discusses, built on quick device-model
    probes. *)

type decision =
  | Cpu_path
  | Gpu_path
  | Fpga_path
  | No_offload of string  (** terminate, with the reason *)

type explanation = {
  transfer_seconds : float;  (** estimated accelerator transfer time *)
  cpu_seconds : float;  (** single-thread hotspot time *)
  transfer_dominates : bool;
  flops_per_byte : float;  (** w.r.t. offload traffic *)
  x_threshold : float;
  compute_bound : bool;
  outer_parallel : bool;
  dependent_inner_loops : bool;
  fully_unrollable : bool;
  decision : decision;
}

val decision_to_string : decision -> string

(** Evaluate the Fig. 3 strategy on a context whose analyses have run,
    returning every intermediate test along with the decision. *)
val fig3_explain : Context.t -> explanation

val pp_explanation : Format.formatter -> explanation -> unit

(** Every intermediate test of the Fig. 3 decision diamond, as
    displayable provenance attributes. *)
val evidence_of_explanation :
  explanation -> (string * Flow_obs.Attr.value) list

(** Evidence callback for branch point A ([Flow.branch ~evidence]):
    {!evidence_of_explanation} of {!fig3_explain}, or [[]] when the
    analyses have not produced features yet. *)
val branch_a_evidence : Context.t -> (string * Flow_obs.Attr.value) list

(** The Fig. 3 strategy as a branch-point selection function for branch
    point A with paths named "cpu", "gpu", "fpga". *)
val fig3 : Context.t -> Flow.selection

(** {1 Model-based PSA} *)

(** What a model-based strategy optimises for. *)
type objective = Performance | Monetary_cost | Energy

val objective_to_string : objective -> string

(** Predicted best outcome of each feasible target, from quick
    device-model probes (each probe assumes its path's optimisation
    tasks and runs the device's DSE). *)
val probe_targets : Context.t -> (string * Devices.Simulate.result) list

(** Score of one probed outcome under an objective (lower is better):
    seconds, dollars, or joules. *)
val score : objective -> Devices.Simulate.result -> float

(** A model-based PSA strategy for branch point A: probe every target
    and take the one minimising [objective] (default: performance). *)
val model_based : ?objective:objective -> Context.t -> Flow.selection
