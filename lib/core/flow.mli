(** PSA-flow orchestration: branching task sequences with Path Selection
    Automation.

    A flow is a tree of tasks, sequences and branch points.  Running a
    branch duplicates the context into every selected path: the
    "uninformed" mode selects all paths and produces every design; an
    informed PSA strategy selects one; selecting none terminates the flow
    without modification (Fig. 3's fourth outcome). *)

type selection =
  | All  (** uninformed: generate designs for every path *)
  | Paths of string list  (** informed: the chosen path(s) *)
  | Stop of string  (** terminate without offloading, with a reason *)

type t =
  | Task of Task.t
  | Seq of t list
  | Branch of branch_point

and branch_point = {
  bp_name : string;
  paths : (string * t) list;
  select : Context.t -> selection;  (** the PSA strategy *)
  strategy_label : string;  (** provenance: which strategy is plugged in *)
  evidence : (Context.t -> (string * Flow_obs.Attr.value) list) option;
      (** provenance: analysis facts the strategy consulted *)
}

(** Sequential composition. *)
val seq : t list -> t

val task : Task.t -> t

(** A branch point with a PSA strategy.  [strategy_label] (default
    ["custom"]) and [evidence] feed the decision-provenance record
    written to the context whenever the branch fires. *)
val branch :
  ?strategy_label:string ->
  ?evidence:(Context.t -> (string * Flow_obs.Attr.value) list) ->
  string ->
  select:(Context.t -> selection) ->
  (string * t) list ->
  t

(** The uninformed strategy: take every path. *)
val select_all : Context.t -> selection

(** Raised when a strategy names a path the branch point does not have. *)
exception Unknown_path of string * string

(** Run a flow; returns the terminal contexts (one per reached leaf). *)
val run : t -> Context.t -> Context.t list

(** All tasks mentioned in a flow, in definition order (the Fig. 4
    repository listing). *)
val tasks : t -> Task.t list

(** Rewrite the selection strategy of the branch point named [name] —
    how the evaluation switches branch point A between informed and
    uninformed modes, and how users plug in custom strategies.
    [strategy_label] (default ["custom"]) becomes the provenance label
    of the new strategy; any evidence callback is kept. *)
val override_selection :
  ?strategy_label:string ->
  name:string ->
  select:(Context.t -> selection) ->
  t ->
  t
