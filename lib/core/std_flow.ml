(** The implemented PSA-flow of the paper's Fig. 4.

    Target-independent partitioning and analysis tasks feed branch point
    A (mapping, PSA strategy of Fig. 3), whose paths run the
    target-specific code generation and optimisation tasks, branching
    again (B, C) into device-specific optimisation + DSE before
    finalising timed designs.

    Dynamic analyses share one fused profiling pass per (program size,
    focus) request — see {!Minic_interp.Fused_profile} — exactly as the
    paper's tasks share instrumented executions. *)

open Context

(* ------------------------------------------------------------------ *)
(* Shared kernel preparation (also applied to the secondary-size copy)  *)
(* ------------------------------------------------------------------ *)

exception Flow_error of string

(** Detect, extract and reduction-annotate the hotspot of a program:
    the partitioning prefix of the flow, reused for the secondary
    profiling size. *)
let prepare_kernel (p : Minic.Ast.program) =
  match Analysis.Hotspot.detect p with
  | None -> raise (Flow_error "no hotspot loop found")
  | Some h ->
      let ex = Stage_memo.extract p ~loop_sid:h.loop_sid in
      let program, _ = Stage_memo.reduce ex.program ~kernel:ex.kernel_name in
      (program, ex.kernel_name, h)

(** Like {!prepare_kernel} with the hotspot already known — used to
    reuse the profile-size hotspot decision on the secondary-size copy
    instead of re-profiling it just to re-derive the same loop.  Loop
    node ids are allocated globally per parse, so the decision transfers
    by the hotspot's pre-order ordinal, which is stable across parses of
    the same source template. *)
let prepare_kernel_at (p : Minic.Ast.program) ~(hotspot : Analysis.Hotspot.t) =
  let cands = Analysis.Hotspot.candidates ~func:hotspot.func_name p in
  match List.nth_opt cands hotspot.ordinal with
  | None ->
      raise
        (Transforms.Extract.Not_extractable
           (Printf.sprintf "hotspot ordinal %d out of range" hotspot.ordinal))
  | Some m ->
      let ex = Stage_memo.extract p ~loop_sid:m.Artisan.Query.stmt.sid in
      let program, _ = Stage_memo.reduce ex.program ~kernel:ex.kernel_name in
      (program, ex.kernel_name)

(** Compute (and cache) kernel features, extrapolating to the evaluation
    scale when the context carries a secondary profile size. *)
let ensure_features (ctx : Context.t) : Context.t =
  match ctx.features with
  | Some _ -> ctx
  | None ->
      let kernel = kernel_exn ctx in
      let f1, eval_features =
        match (ctx.secondary, ctx.eval_n) with
        | Some (n2, p2), Some n_eval when ctx.profile_n > 0 ->
            (* the profile-size and secondary-size analysis chains are
               independent: evaluate both on the domain pool *)
            let f1, f2 =
              match
                Dse.Pool.map
                  (fun thunk -> thunk ())
                  [
                    (fun () -> Analysis.Features.analyze ctx.program ~kernel);
                    (fun () ->
                      (* reuse the profile-size hotspot decision on the
                         secondary copy (same source template, same loop
                         ordinal) instead of re-profiling it.  Falls
                         back to a fresh detection if the transfer is
                         structurally impossible. *)
                      let p2' =
                        match ctx.hotspot with
                        | Some h -> (
                            try fst (prepare_kernel_at p2 ~hotspot:h)
                            with Transforms.Extract.Not_extractable _ ->
                              let p2', _, _ = prepare_kernel p2 in
                              p2')
                        | None ->
                            let p2', _, _ = prepare_kernel p2 in
                            p2'
                      in
                      Analysis.Features.analyze p2' ~kernel);
                  ]
              with
              | [ f1; f2 ] -> (f1, f2)
              | _ -> assert false
            in
            ( f1,
              Some
                (Analysis.Extrapolate.features ~n1:ctx.profile_n f1 ~n2 f2
                   ~n:n_eval) )
        | _ ->
            let f1 = Analysis.Features.analyze ctx.program ~kernel in
            (f1, Some f1)
      in
      { ctx with features = Some f1; eval_features }

(** Data-movement summary in the form the code generators consume. *)
let data_of_features (f : Analysis.Features.t) : Analysis.Data_inout.t =
  {
    Analysis.Data_inout.kernel = f.kernel;
    calls = f.calls;
    args =
      List.map
        (fun (a : Analysis.Features.arg_feat) ->
          {
            Analysis.Data_inout.name = a.af_name;
            bytes_in = int_of_float (a.af_bytes_in *. float_of_int f.calls);
            bytes_out = int_of_float (a.af_bytes_out *. float_of_int f.calls);
          })
        f.args;
    total_in =
      int_of_float (f.bytes_in_per_call *. float_of_int f.calls);
    total_out =
      int_of_float (f.bytes_out_per_call *. float_of_int f.calls);
    kernel_cycles = f.cpu_cycles_per_call *. float_of_int f.calls;
    kernel_flops =
      int_of_float (f.flops_per_call *. float_of_int f.calls);
  }

let current_exn ctx =
  match ctx.current with
  | Some d -> d
  | None -> raise (Flow_error "no design under construction on this path")

let with_current ctx d = { ctx with current = Some d }

(* ------------------------------------------------------------------ *)
(* Task repository (Fig. 4, left)                                      *)
(* ------------------------------------------------------------------ *)

module Repository = struct
  let identify_hotspot =
    Task.make ~dynamic:true "Identify Hotspot Loops" Task.Analysis_task
      (fun ctx ->
        match Analysis.Hotspot.detect ctx.program with
        | None -> raise (Flow_error "no hotspot loop found")
        | Some h ->
            logf
              { ctx with hotspot = Some h }
              "hotspot: loop #%d in %s, %.1f%% of runtime" h.loop_sid
              h.func_name (100.0 *. h.share))

  let extract_hotspot =
    Task.make "Hotspot Loop Extraction" Task.Transform (fun ctx ->
        match ctx.hotspot with
        | None -> raise (Flow_error "hotspot detection has not run")
        | Some h ->
            let ex = Stage_memo.extract ctx.program ~loop_sid:h.loop_sid in
            logf
              { ctx with program = ex.program; kernel = Some ex.kernel_name }
              "extracted kernel %s(%s)" ex.kernel_name
              (String.concat ", " (List.map snd ex.params)))

  let remove_array_dependency =
    Task.make "Remove Array += Dependency" Task.Transform (fun ctx ->
        let kernel = kernel_exn ctx in
        let program, n = Stage_memo.reduce ctx.program ~kernel in
        logf { ctx with program } "%d loop(s) annotated for reduction removal" n)

  let pointer_analysis =
    Task.make ~dynamic:true "Pointer Analysis" Task.Analysis_task (fun ctx ->
        let ctx = ensure_features ctx in
        let f = features_exn ctx in
        if not f.no_alias then
          raise (Flow_error "kernel pointer arguments alias; cannot offload");
        logf { ctx with alias_ok = Some true } "pointer arguments do not alias")

  let intensity_analysis =
    Task.make "Arithmetic Intensity Analysis" Task.Analysis_task (fun ctx ->
        let ctx = ensure_features ctx in
        let f = Context.eval_features_exn ctx in
        logf ctx "arithmetic intensity: %.2f FLOPs/B (offload traffic), %.2f (static)"
          (Analysis.Features.offload_intensity f)
          f.intensity.Analysis.Intensity.flops_per_byte)

  let data_inout_analysis =
    Task.make ~dynamic:true "Data In/Out Analysis" Task.Analysis_task
      (fun ctx ->
        let ctx = ensure_features ctx in
        let f = Context.eval_features_exn ctx in
        logf ctx "data movement per call: %.3g B in, %.3g B out"
          f.bytes_in_per_call f.bytes_out_per_call)

  let dependence_analysis =
    Task.make "Loop Dependence Analysis" Task.Analysis_task (fun ctx ->
        let ctx = ensure_features ctx in
        let f = features_exn ctx in
        logf ctx "outer loop %s%s"
          (if f.outer_parallel then "parallel" else "sequential")
          (if f.outer_has_reductions then " (with reductions)" else ""))

  let trip_count_analysis =
    Task.make ~dynamic:true "Loop Trip-Count Analysis" Task.Analysis_task
      (fun ctx ->
        let ctx = ensure_features ctx in
        let f = Context.eval_features_exn ctx in
        logf ctx "outer trip count %.0f over %d call(s); %d inner loop(s)"
          f.outer_trip f.calls
          (List.length f.inner_loops))

  (* ---------------- CPU path ---------------- *)

  let generate_openmp =
    Task.make "Generate OpenMP Design" Task.Code_generation (fun ctx ->
        let kernel = kernel_exn ctx in
        let d = Codegen.Openmp_gen.generate ctx.program ~kernel in
        with_current ctx d)

  (* Surrogate-guided sweeps report how they chose (branch "D.<design>"
     in [psaflow explain]); exhaustive sweeps record nothing, so
     PSAFLOW_NO_SURROGATE reproduces today's provenance bit-for-bit. *)
  let record_dse_decision decision ctx =
    match decision with
    | Some d -> Context.record_decision d ctx
    | None -> ctx

  let omp_threads_dse =
    Task.make "OMP Num. Threads DSE" Task.Optimisation (fun ctx ->
        let d = current_exn ctx in
        let r = Dse.Threads_dse.run d (Context.eval_features_exn ctx) in
        let ctx = record_dse_decision r.decision (with_current ctx r.design) in
        logf ctx "threads DSE chose %d threads" r.chosen_threads)

  (* ---------------- GPU path ---------------- *)

  let generate_hip =
    Task.make "Generate HIP Design" Task.Code_generation (fun ctx ->
        let kernel = kernel_exn ctx in
        let ctx = ensure_features ctx in
        let data = data_of_features (features_exn ctx) in
        let d = Codegen.Hip_gen.generate ~data ctx.program ~kernel in
        with_current ctx d)

  let pinned_memory =
    Task.make "Employ HIP Pinned Memory" Task.Transform (fun ctx ->
        with_current ctx (Codegen.Hip_gen.employ_pinned_memory (current_exn ctx)))

  let gpu_sp_math =
    Task.make "Employ SP Math Fns" Task.Transform (fun ctx ->
        let d = current_exn ctx in
        let program =
          Transforms.Sp_math.employ_sp_math d.program ~kernel:d.device_kernel
        in
        with_current ctx { d with Codegen.Design.program })

  let gpu_sp_literals =
    Task.make "Employ SP Numeric Literals" Task.Transform (fun ctx ->
        let d = current_exn ctx in
        let program =
          Transforms.Sp_math.demote_kernel_types
            (Transforms.Sp_math.employ_sp_literals d.program
               ~kernel:d.device_kernel)
            ~kernel:d.device_kernel
        in
        with_current ctx
          (Codegen.Design.note "kernel converted to single precision"
             { d with Codegen.Design.program; single_precision = true }))

  let shared_mem =
    Task.make "Introduce Shared Mem Buf" Task.Transform (fun ctx ->
        with_current ctx (Codegen.Hip_gen.introduce_shared_mem (current_exn ctx)))

  let specialised_math =
    Task.make "Employ Specialised Math Fns" Task.Transform (fun ctx ->
        with_current ctx (Codegen.Hip_gen.employ_intrinsics (current_exn ctx)))

  let blocksize_dse device_id label =
    Task.make (label ^ " Blocksize DSE") Task.Optimisation (fun ctx ->
        let d = current_exn ctx in
        let d =
          { d with Codegen.Design.device_id; name = "hip_" ^ device_id }
        in
        let r = Dse.Blocksize_dse.run d (Context.eval_features_exn ctx) in
        let ctx = record_dse_decision r.decision (with_current ctx r.design) in
        logf ctx "%s blocksize DSE chose %d" label r.chosen_blocksize)

  (* ---------------- FPGA path ---------------- *)

  let generate_oneapi =
    Task.make "Generate oneAPI Design" Task.Code_generation (fun ctx ->
        let kernel = kernel_exn ctx in
        let ctx = ensure_features ctx in
        let data = data_of_features (features_exn ctx) in
        let d = Codegen.Oneapi_gen.generate ~data ctx.program ~kernel in
        with_current ctx d)

  let unroll_fixed =
    Task.make "Unroll Fixed Loops" Task.Transform (fun ctx ->
        with_current ctx (Codegen.Oneapi_gen.unroll_fixed_loops (current_exn ctx)))

  let fpga_sp_math =
    Task.make "Employ SP Math Fns" Task.Transform (fun ctx ->
        let d = current_exn ctx in
        let program =
          Transforms.Sp_math.employ_sp_math d.program ~kernel:d.device_kernel
        in
        with_current ctx { d with Codegen.Design.program })

  let fpga_sp_literals =
    Task.make "Employ SP Numeric Literals" Task.Transform (fun ctx ->
        let d = current_exn ctx in
        let program =
          Transforms.Sp_math.demote_kernel_types
            (Transforms.Sp_math.employ_sp_literals d.program
               ~kernel:d.device_kernel)
            ~kernel:d.device_kernel
        in
        with_current ctx
          (Codegen.Design.note "kernel converted to single precision"
             { d with Codegen.Design.program; single_precision = true }))

  let zero_copy =
    Task.make "Zero-Copy Data Transfer" Task.Transform (fun ctx ->
        let ctx = ensure_features ctx in
        let data = data_of_features (features_exn ctx) in
        with_current ctx
          (Codegen.Oneapi_gen.employ_zero_copy ~data (current_exn ctx)))

  let unroll_dse device_id label =
    Task.make (label ^ " Unroll Until Overmap DSE") Task.Optimisation
      (fun ctx ->
        let d = current_exn ctx in
        let d =
          { d with Codegen.Design.device_id; name = "oneapi_" ^ device_id }
        in
        let r = Dse.Unroll_dse.run d (Context.eval_features_exn ctx) in
        let ctx = record_dse_decision r.decision (with_current ctx r.design) in
        if r.synthesizable then
          logf ctx "%s unroll DSE chose factor %d (%d steps)" label
            r.chosen_factor (List.length r.steps)
        else
          logf ctx
            "%s unroll DSE: design overmaps the device even at factor 1 \
             (unsynthesizable)"
            label)

  (* ---------------- finalisation ---------------- *)

  let finalize =
    Task.make "Evaluate Design" Task.Analysis_task (fun ctx ->
        let d = current_exn ctx in
        let f = Context.eval_features_exn ctx in
        let r = Devices.Simulate.run d f in
        (* train the surrogate on the finalized design's real outcome
           too — into a per-design "final" model, never the sweep
           models, so sweep memos stay authoritative for their own
           objective *)
        if Flow_surrogate.Surrogate.active () then
          Flow_surrogate.Surrogate.observe ("final:" ^ d.name)
            ~x:
              (Flow_surrogate.Featvec.extract ~design:d ~unroll:d.unroll_factor
                 ~blocksize:d.blocksize ~threads:d.num_threads f)
            ~y:(Flow_surrogate.Surrogate.y_of_seconds r.seconds)
            ~payload:[| r.seconds; r.speedup |];
        let ctx =
          logf ctx "%s: %.4g s, speedup %.1fx%s" d.name r.seconds r.speedup
            (if r.feasible then "" else " (not synthesizable)")
        in
        let ctx =
          match Cost.check_budget ctx r with
          | Cost.Within_budget c when ctx.budget <> None ->
              logf ctx "cost $%.4f within budget" c
          | Cost.Over_budget c -> logf ctx "cost $%.4f OVER budget" c
          | _ -> ctx
        in
        Context.finish r ctx)
end

(* ------------------------------------------------------------------ *)
(* The Fig. 4 flow                                                     *)
(* ------------------------------------------------------------------ *)

open Repository

let target_independent =
  Flow.seq
    (List.map Flow.task
       [
         identify_hotspot;
         extract_hotspot;
         pointer_analysis;
         intensity_analysis;
         data_inout_analysis;
         dependence_analysis;
         trip_count_analysis;
         remove_array_dependency;
       ])

let cpu_path =
  Flow.seq
    [ Flow.task generate_openmp; Flow.task omp_threads_dse; Flow.task finalize ]

let gpu_path ~select_b =
  Flow.seq
    [
      Flow.task generate_hip;
      Flow.task pinned_memory;
      Flow.task gpu_sp_math;
      Flow.task gpu_sp_literals;
      Flow.task shared_mem;
      Flow.task specialised_math;
      Flow.branch "B" ~select:select_b
        [
          ( "gtx1080ti",
            Flow.seq
              [ Flow.task (blocksize_dse "gtx1080ti" "GTX 1080");
                Flow.task finalize ] );
          ( "rtx2080ti",
            Flow.seq
              [ Flow.task (blocksize_dse "rtx2080ti" "RTX 2080");
                Flow.task finalize ] );
        ];
    ]

let fpga_path ~select_c =
  Flow.seq
    [
      Flow.task generate_oneapi;
      Flow.task unroll_fixed;
      Flow.task fpga_sp_math;
      Flow.task fpga_sp_literals;
      Flow.branch "C" ~select:select_c
        [
          ( "arria10",
            Flow.seq
              [ Flow.task (unroll_dse "arria10" "A10"); Flow.task finalize ] );
          ( "stratix10",
            Flow.seq
              [
                Flow.task zero_copy;
                Flow.task (unroll_dse "stratix10" "S10");
                Flow.task finalize;
              ] );
        ];
    ]

(** The complete PSA-flow.  Branch point A's strategy is parameterised:
    [Strategy.fig3] gives the informed flow, [Flow.select_all] the
    uninformed one.  B and C default to selecting both devices, as in the
    paper's implementation.  [label_a] names the plugged-in strategy in
    the decision provenance ([psaflow explain]). *)
let flow ?(select_a = Strategy.fig3) ?(label_a = "fig3")
    ?(select_b = Flow.select_all) ?(select_c = Flow.select_all) () =
  Flow.seq
    [
      target_independent;
      Flow.branch "A" ~strategy_label:label_a
        ~evidence:Strategy.branch_a_evidence ~select:select_a
        [
          ("cpu", cpu_path);
          ("gpu", gpu_path ~select_b);
          ("fpga", fpga_path ~select_c);
        ];
    ]

(* ------------------------------------------------------------------ *)
(* Drivers                                                             *)
(* ------------------------------------------------------------------ *)

type outcome = {
  contexts : Context.t list;
  results : Devices.Simulate.result list;
  log : string list;
}

let run_flow flow ctx =
  let contexts = Flow.run flow ctx in
  {
    contexts;
    results = Context.collect_results contexts;
    log = Context.collect_logs contexts;
  }

(** Informed mode: branch point A runs the Fig. 3 PSA strategy.  With a
    budget on the context, over-budget outcomes feed back and the
    decision is revised to the next-best in-budget target (Fig. 3's
    feedback edge). *)
let run_informed ?(x_threshold = 2.0) ?budget ctx =
  let ctx = { ctx with Context.x_threshold; budget } in
  let outcome = run_flow (flow ()) ctx in
  match budget with
  | None -> outcome
  | Some b ->
      let over r = Cost.of_result r > b in
      if outcome.results <> [] && List.for_all over outcome.results then
        (* feedback: revise the mapping decision, try remaining targets *)
        let tried =
          List.map
            (fun (r : Devices.Simulate.result) ->
              match r.design.target with
              | Codegen.Design.Cpu_openmp -> "cpu"
              | Codegen.Design.Gpu_hip -> "gpu"
              | Codegen.Design.Fpga_oneapi -> "fpga")
            outcome.results
        in
        let remaining =
          List.filter (fun p -> not (List.mem p tried)) [ "cpu"; "gpu"; "fpga" ]
        in
        let revised =
          run_flow
            (flow
               ~select_a:(fun _ -> Flow.Paths remaining)
               ~label_a:"budget-feedback" ())
            (Context.log "budget feedback: revising mapping decision" ctx)
        in
        let in_budget =
          List.filter (fun r -> not (over r)) revised.results
        in
        {
          revised with
          results =
            (if in_budget = [] then outcome.results @ revised.results
             else in_budget);
        }
      else outcome

(** Uninformed mode: all paths at branch point A — generates all five
    designs. *)
let run_uninformed ?(x_threshold = 2.0) ctx =
  run_flow (flow ~select_a:Flow.select_all ()) { ctx with Context.x_threshold }

(** The repository listing (Fig. 4's left column). *)
let repository_tasks =
  [
    ("T-INDEP", identify_hotspot);
    ("T-INDEP", extract_hotspot);
    ("T-INDEP", pointer_analysis);
    ("T-INDEP", intensity_analysis);
    ("T-INDEP", data_inout_analysis);
    ("T-INDEP", dependence_analysis);
    ("T-INDEP", trip_count_analysis);
    ("T-INDEP", remove_array_dependency);
    ("FPGA", generate_oneapi);
    ("FPGA", unroll_fixed);
    ("FPGA", fpga_sp_math);
    ("FPGA", fpga_sp_literals);
    ("FPGA-A10", unroll_dse "arria10" "A10");
    ("FPGA-S10", zero_copy);
    ("FPGA-S10", unroll_dse "stratix10" "S10");
    ("GPU", generate_hip);
    ("GPU", pinned_memory);
    ("GPU", gpu_sp_math);
    ("GPU", gpu_sp_literals);
    ("GPU", shared_mem);
    ("GPU", specialised_math);
    ("GPU-1080", blocksize_dse "gtx1080ti" "GTX 1080");
    ("GPU-2080", blocksize_dse "rtx2080ti" "RTX 2080");
    ("CPU-OMP", generate_openmp);
    ("CPU-OMP", omp_threads_dse);
  ]
