(** The design-flow context threaded through every PSA-flow task.

    A context starts from an unoptimised high-level reference program and
    accumulates what the flow learns (hotspot, kernel features) and what
    it produces (the current path's design under construction, finished
    timed designs).  Branch points duplicate the context per selected
    path; contexts are immutable records, so paths never interfere. *)

open Minic

type t = {
  benchmark : string;
  reference : Ast.program;  (** the untouched input source *)
  program : Ast.program;  (** current working program *)
  (* workload scaling: the flow profiles at [profile_n]; [secondary]
     provides the same application at another size for power-law fitting;
     [eval_n] is the paper-scale size features are extrapolated to *)
  profile_n : int;
  secondary : (int * Ast.program) option;
  eval_n : int option;
  (* accrued knowledge *)
  kernel : string option;
  hotspot : Analysis.Hotspot.t option;
  features : Analysis.Features.t option;  (** at profile scale *)
  eval_features : Analysis.Features.t option;  (** at evaluation scale *)
  alias_ok : bool option;
  (* products *)
  current : Codegen.Design.t option;  (** design being built on this path *)
  results : Devices.Simulate.result list;  (** finished, timed designs *)
  (* configuration *)
  x_threshold : float;  (** FLOPs/B threshold X of the Fig. 3 strategy *)
  budget : float option;  (** cost budget, $ per run (Fig. 3 feedback) *)
  log : string list;  (** reverse-chronological event log *)
  decisions : Flow_obs.Provenance.decision list;
      (** reverse-chronological branch-decision provenance *)
}

(* Workload-size validation: a nonsensical size is a caller bug and is
   rejected outright; suspicious-but-legal combinations (extrapolation
   data without a profile size, evaluation scale below profile scale)
   are loudly recorded in the context log, where every flow report
   surfaces them. *)
let validate_sizes ~benchmark ~profile_n ~secondary ~eval_n =
  if profile_n < 0 then
    invalid_arg
      (Printf.sprintf "Context.make: profile_n = %d must be >= 0" profile_n);
  (match secondary with
  | Some (n2, _) when n2 <= 0 ->
      invalid_arg
        (Printf.sprintf "Context.make: secondary size %d must be positive" n2)
  | _ -> ());
  (match eval_n with
  | Some e when e <= 0 ->
      invalid_arg (Printf.sprintf "Context.make: eval_n = %d must be positive" e)
  | _ -> ());
  let warnings = ref [] in
  let warn fmt = Printf.ksprintf (fun m -> warnings := m :: !warnings) fmt in
  if profile_n = 0 && (secondary <> None || eval_n <> None) then
    warn
      "warning: %s: profile_n is 0, so features cannot be extrapolated \
       and the secondary/eval workload sizes are ignored"
      benchmark;
  (match (secondary, profile_n) with
  | Some (n2, _), p when p > 0 && n2 = p ->
      warn
        "warning: %s: secondary size %d equals profile_n, power-law \
         fitting is degenerate"
        benchmark n2
  | _ -> ());
  (match eval_n with
  | Some e when profile_n > 0 && e < profile_n ->
      warn
        "warning: %s: eval_n %d is smaller than profile_n %d — \
         extrapolating downwards"
        benchmark e profile_n
  | _ -> ());
  !warnings

let make ?(benchmark = "app") ?(profile_n = 0) ?secondary ?eval_n
    ?(x_threshold = 2.0) ?budget (reference : Ast.program) : t =
  let warnings = validate_sizes ~benchmark ~profile_n ~secondary ~eval_n in
  {
    benchmark;
    reference;
    program = reference;
    profile_n;
    secondary;
    eval_n;
    kernel = None;
    hotspot = None;
    features = None;
    eval_features = None;
    alias_ok = None;
    current = None;
    results = [];
    x_threshold;
    budget;
    log = warnings;
    decisions = [];
  }

let log msg ctx = { ctx with log = msg :: ctx.log }

let logf ctx fmt = Printf.ksprintf (fun m -> log m ctx) fmt

(** The event log in chronological order. *)
let events ctx = List.rev ctx.log

exception Missing of string

(** Kernel name; raises if extraction has not run yet. *)
let kernel_exn ctx =
  match ctx.kernel with
  | Some k -> k
  | None -> raise (Missing "kernel (hotspot extraction has not run)")

(** Features at evaluation scale (falls back to profile scale). *)
let eval_features_exn ctx =
  match (ctx.eval_features, ctx.features) with
  | Some f, _ | None, Some f -> f
  | None, None -> raise (Missing "features (analysis tasks have not run)")

let features_exn ctx =
  match ctx.features with
  | Some f -> f
  | None -> raise (Missing "features (analysis tasks have not run)")

(** Record a finished design with its simulated time. *)
let finish result ctx =
  { ctx with results = ctx.results @ [ result ]; current = None }

(** All finished designs across a list of terminal contexts (the output
    of running a branching flow). *)
let collect_results ctxs = List.concat_map (fun c -> c.results) ctxs

(** Merged event log of all terminal contexts: branch fan-out duplicates
    the shared prefix into every leaf, so drop each leaf's longest common
    prefix with the previous one. *)
let collect_logs ctxs =
  let rec drop_common prev cur =
    match (prev, cur) with
    | p :: prev', c :: cur' when p = c -> drop_common prev' cur'
    | _ -> cur
  in
  let rec go prev = function
    | [] -> []
    | c :: rest ->
        let ev = events c in
        drop_common prev ev @ go ev rest
  in
  go [] ctxs

(** Record a branch decision (provenance) on the context. *)
let record_decision d ctx = { ctx with decisions = d :: ctx.decisions }

(** Branch decisions of one context, in chronological order. *)
let decisions ctx = List.rev ctx.decisions

(** Merged decision provenance of all terminal contexts; like
    {!collect_logs}, fan-out duplicates the shared prefix into every
    leaf, so each leaf contributes only its novel suffix. *)
let collect_decisions ctxs =
  let rec drop_common prev cur =
    match (prev, cur) with
    | (p : Flow_obs.Provenance.decision) :: prev', c :: cur' when p = c ->
        drop_common prev' cur'
    | _ -> cur
  in
  let rec go prev = function
    | [] -> []
    | c :: rest ->
        let ds = decisions c in
        drop_common prev ds @ go ds rest
  in
  go [] ctxs
