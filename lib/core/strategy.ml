(** Path Selection Automation strategies.

    {!fig3} implements the paper's example strategy for branch point A
    (Fig. 3) verbatim:

    + if the estimated accelerator transfer time exceeds the hotspot's
      single-thread CPU time, or the arithmetic intensity is below the
      tunable threshold X, offloading cannot pay: select the multi-thread
      CPU branch when the outer loop is parallel, otherwise terminate;
    + if offloading pays and the outer loop is parallel: inner loops
      carrying dependences that are fully unrollable favour pipelined
      FPGA execution; otherwise the GPU's data-parallel execution wins;
    + a non-parallel outer loop maps to the FPGA (pipelining does not
      need a parallel loop).

    The strategy is plain code over the context: swapping in a custom one
    is one [Flow.override_selection] call (see examples/custom_strategy). *)

type decision =
  | Cpu_path
  | Gpu_path
  | Fpga_path
  | No_offload of string

type explanation = {
  transfer_seconds : float;
  cpu_seconds : float;
  transfer_dominates : bool;
  flops_per_byte : float;  (** w.r.t. offload traffic *)
  x_threshold : float;
  compute_bound : bool;
  outer_parallel : bool;
  dependent_inner_loops : bool;
  fully_unrollable : bool;
  decision : decision;
}

let decision_to_string = function
  | Cpu_path -> "multi-thread CPU"
  | Gpu_path -> "CPU+GPU"
  | Fpga_path -> "CPU+FPGA"
  | No_offload r -> "no offload (" ^ r ^ ")"

(** Evaluate the Fig. 3 strategy on a context whose analyses have run. *)
let fig3_explain (ctx : Context.t) : explanation =
  let f = Context.eval_features_exn ctx in
  let transfer_seconds = Devices.Transfer.estimated_seconds f in
  let cpu_seconds = Devices.Cpu_model.reference_seconds f in
  let transfer_dominates = transfer_seconds > cpu_seconds in
  let flops_per_byte = Analysis.Features.offload_intensity f in
  let compute_bound = flops_per_byte > ctx.x_threshold in
  let outer_parallel = f.outer_parallel in
  let dependent_inner_loops = Analysis.Features.has_dependent_inner_loops f in
  let fully_unrollable =
    Analysis.Features.inner_loops_fully_unrollable f
  in
  let decision =
    if transfer_dominates || not compute_bound then
      if outer_parallel then Cpu_path
      else
        No_offload
          "memory-bound hotspot with a sequential outer loop: no target \
           profits"
    else if outer_parallel then
      if dependent_inner_loops && fully_unrollable then Fpga_path
      else Gpu_path
    else Fpga_path
  in
  {
    transfer_seconds;
    cpu_seconds;
    transfer_dominates;
    flops_per_byte;
    x_threshold = ctx.x_threshold;
    compute_bound;
    outer_parallel;
    dependent_inner_loops;
    fully_unrollable;
    decision;
  }

let pp_explanation fmt e =
  Format.fprintf fmt
    "T_data=%.3gs vs T_cpu=%.3gs (%s); FLOPs/B=%.2f vs X=%.2f (%s); outer \
     %s%s -> %s"
    e.transfer_seconds e.cpu_seconds
    (if e.transfer_dominates then "transfer dominates" else "transfer ok")
    e.flops_per_byte e.x_threshold
    (if e.compute_bound then "compute-bound" else "memory-bound")
    (if e.outer_parallel then "parallel" else "sequential")
    (if e.dependent_inner_loops then
       Printf.sprintf ", dependent inner loops (%s)"
         (if e.fully_unrollable then "fully unrollable" else "not unrollable")
     else "")
    (decision_to_string e.decision)

(** Provenance evidence of an explanation: every intermediate test of
    the Fig. 3 decision diamond, as displayable attributes. *)
let evidence_of_explanation (e : explanation) :
    (string * Flow_obs.Attr.value) list =
  [
    ("transfer_seconds", Flow_obs.Attr.Float e.transfer_seconds);
    ("cpu_seconds", Flow_obs.Attr.Float e.cpu_seconds);
    ("transfer_dominates", Flow_obs.Attr.Bool e.transfer_dominates);
    ("flops_per_byte", Flow_obs.Attr.Float e.flops_per_byte);
    ("x_threshold", Flow_obs.Attr.Float e.x_threshold);
    ("compute_bound", Flow_obs.Attr.Bool e.compute_bound);
    ("outer_parallel", Flow_obs.Attr.Bool e.outer_parallel);
    ("dependent_inner_loops", Flow_obs.Attr.Bool e.dependent_inner_loops);
    ("fully_unrollable", Flow_obs.Attr.Bool e.fully_unrollable);
  ]

(** Evidence callback for branch point A: the Fig. 3 facts, or nothing
    when the analyses have not produced features yet (e.g. uninformed
    mode on a context that stopped earlier). *)
let branch_a_evidence (ctx : Context.t) :
    (string * Flow_obs.Attr.value) list =
  try evidence_of_explanation (fig3_explain ctx) with _ -> []

(** The Fig. 3 strategy as a branch-point selection function for branch
    point A with paths named "cpu", "gpu", "fpga". *)
let fig3 (ctx : Context.t) : Flow.selection =
  let e = fig3_explain ctx in
  match e.decision with
  | Cpu_path -> Flow.Paths [ "cpu" ]
  | Gpu_path -> Flow.Paths [ "gpu" ]
  | Fpga_path -> Flow.Paths [ "fpga" ]
  | No_offload reason -> Flow.Stop reason

(* ------------------------------------------------------------------ *)
(* Model-based PSA                                                     *)
(* ------------------------------------------------------------------ *)

(** What a model-based strategy optimises for. *)
type objective = Performance | Monetary_cost | Energy

let objective_to_string = function
  | Performance -> "performance"
  | Monetary_cost -> "cost"
  | Energy -> "energy"

(** Predicted seconds of each target's best device, from quick model
    probes — the paper's "performance estimation" branch-point mechanism
    (Section II-B), cheap enough to run at every branch point because the
    analytic models evaluate in sub-microsecond time.

    Each probe assumes the optimisation tasks its path would apply
    (pinned memory, single precision, intrinsics and shared-memory
    staging on the GPU path; single precision and zero-copy where
    supported on the FPGA path) and runs the device's DSE. *)
let probe_targets (ctx : Context.t) :
    (string * Devices.Simulate.result) list =
  let f = Context.eval_features_exn ctx in
  let kernel = Context.kernel_exn ctx in
  let probe_design target device_id =
    let d =
      Codegen.Design.make
        ~name:("probe_" ^ device_id)
        ~target ~device_id ~program:ctx.program ~kernel ~device_kernel:kernel
    in
    match target with
    | Codegen.Design.Cpu_openmp -> d
    | Codegen.Design.Gpu_hip ->
        {
          d with
          Codegen.Design.single_precision = true;
          pinned_memory = true;
          gpu_intrinsics = true;
          shared_mem = f.inner_read_bytes > 0 || f.gathered_args <> [];
          reductions_removed = f.outer_has_reductions;
        }
    | Codegen.Design.Fpga_oneapi ->
        let fp = Devices.Spec.find_fpga device_id in
        { d with Codegen.Design.single_precision = true;
                 zero_copy = fp.supports_usm }
  in
  let cpu =
    (* sweep the CPU model directly (no source edits: probes may run
       before any design exists) *)
    let c = Devices.Spec.find_cpu "epyc7543" in
    let best_threads =
      List.fold_left
        (fun (bt, bs) t ->
          let r = Devices.Cpu_model.time c f ~threads:t in
          if r.t_parallel < bs then (t, r.t_parallel) else (bt, bs))
        (1, infinity)
        [ 1; 2; 4; 8; 16; 32 ]
      |> fst
    in
    let d = probe_design Codegen.Design.Cpu_openmp "epyc7543" in
    { d with Codegen.Design.num_threads = best_threads }
  in
  let gpu device_id =
    let d = probe_design Codegen.Design.Gpu_hip device_id in
    (Dse.Blocksize_dse.run d f).design
  in
  let fpga device_id =
    let d = probe_design Codegen.Design.Fpga_oneapi device_id in
    (Dse.Unroll_dse.run d f).design
  in
  let best path ds =
    let results = List.map (fun d -> Devices.Simulate.run d f) ds in
    match
      List.filter (fun (r : Devices.Simulate.result) -> r.feasible) results
    with
    | [] -> None
    | feasible ->
        Some
          ( path,
            List.fold_left
              (fun (acc : Devices.Simulate.result) (r : Devices.Simulate.result) ->
                if r.seconds < acc.seconds then r else acc)
              (List.hd feasible) (List.tl feasible) )
  in
  List.filter_map Fun.id
    [
      best "cpu" [ cpu ];
      best "gpu" [ gpu "gtx1080ti"; gpu "rtx2080ti" ];
      best "fpga" [ fpga "arria10"; fpga "stratix10" ];
    ]

(** Score of one probed outcome under an objective (lower is better). *)
let score objective (r : Devices.Simulate.result) =
  match objective with
  | Performance -> r.seconds
  | Monetary_cost -> Cost.of_result r
  | Energy -> Devices.Spec.board_watts_of_id r.design.device_id *. r.seconds

(** A model-based PSA strategy for branch point A: probe every target
    with the device models and take the one minimising [objective]
    (default: predicted performance).

    Where Fig. 3 encodes expert heuristics over analysis facts, this
    strategy *predicts each outcome* — the trade-off Section II-B
    discusses between quick heuristics and estimation-based selection,
    and a stepping stone to the ML-based strategies the paper leaves as
    future work. *)
let model_based ?(objective = Performance) (ctx : Context.t) : Flow.selection
    =
  match probe_targets ctx with
  | [] -> Flow.Stop "no target is feasible"
  | probes ->
      let path, _ =
        List.fold_left
          (fun (bp, bs) (p, r) ->
            let s = score objective r in
            if s < bs then (p, s) else (bp, bs))
          ("", infinity)
          (List.map (fun (p, r) -> (p, r)) probes)
      in
      if path = "" then Flow.Stop "no target is feasible"
      else Flow.Paths [ path ]
