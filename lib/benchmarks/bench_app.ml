(** Common shape of a benchmark application: a MiniC source generator
    parameterised by problem size, plus the sizes used for profiling,
    power-law fitting and paper-scale evaluation. *)

type t = {
  id : string;  (** short key, e.g. ["nbody"] *)
  name : string;  (** paper name, e.g. ["N-Body Simulation"] *)
  source : n:int -> string;  (** MiniC source at problem size [n] *)
  profile_n : int;  (** size the flow profiles at *)
  secondary_n : int;  (** second size for power-law fitting *)
  eval_n : int;  (** paper-scale size features are extrapolated to *)
  description : string;
}

(* Memoized per source digest: repeated submissions of the same
   benchmark at the same size share one parsed AST (see
   {!Psa.Stage_memo}). *)
let program (b : t) ~n = Psa.Stage_memo.parse (b.source ~n)

(** Fresh PSA-flow context for this benchmark, wired for workload
    extrapolation. *)
let context ?x_threshold ?budget (b : t) : Psa.Context.t =
  Psa.Context.make ~benchmark:b.id ~profile_n:b.profile_n
    ~secondary:(b.secondary_n, program b ~n:b.secondary_n)
    ~eval_n:b.eval_n ?x_threshold ?budget
    (program b ~n:b.profile_n)

(** The reference program at profiling size (Table I's LOC baseline). *)
let reference (b : t) = program b ~n:b.profile_n
