(** Deterministic request-mix generator for the [bench svc-load] harness.

    A schedule is a seeded, reproducible sequence of operations drawn
    from four populations, sized to exercise every disposition and
    rejection path of the daemon:

    - {e hot}: submissions drawn from a small pool of distinct inline
      kernels, so the first occurrence executes fresh and every repeat
      is a store hit ([`Cached]) or an in-flight dedup ([`Coalesced]);
    - {e cold}: a never-repeating inline kernel per request (a unique
      constant folded into the loop body) — always a fresh execution;
    - {e poison}: MiniC sources that fail to parse or typecheck, which
      the daemon must reject with a typed error at submit time without
      executing anything;
    - {e storm}: a whole batch of unique kernels in one [submit_batch]
      frame, sized past the daemon's queue capacity so the tail of the
      batch reports [Queue_full] backpressure.

    The generator is pure: same [seed] and [total], same schedule, so a
    load run is replayable and its sampled results can be compared
    byte-for-byte against direct {!Flow_exec} execution. *)

module Protocol = Flow_service.Protocol

type kind = Hot | Cold | Poison | Storm

type op = {
  index : int;
  kind : kind;
  subs : Protocol.submission list;
      (** singleton for hot/cold/poison; the whole burst for a storm *)
}

(* Same LCG discipline (and constants) as the engine's [rand01]:
   explicit state, no global RNG, so schedules never depend on
   generation order. *)
let lcg state =
  let s = ((1103515245 * state) + 12345) land 0x3FFFFFFF in
  (s, s lsr 7)

(** An extractable MiniC kernel distinguished by [tag]: the hotspot loop
    sits in [main] (where {!Analysis.Hotspot} looks) and writes an array
    (scalar-accumulating hotspots are not extractable); the folded
    constant makes each source — and so each store digest — unique. *)
let kernel_source tag =
  Printf.sprintf
    {|int main() {
  double a[64];
  double b[64];
  for (int i = 0; i < 64; i++) { b[i] = a[i] * 1.5 + %d.0; }
  return 0;
}|}
    tag

let hot_pool_size = 8

let hot_submission slot =
  Protocol.submission (Protocol.Inline (kernel_source slot))

(* Cold tags start far above the hot pool so the two populations can
   never alias. *)
let cold_submission uniq =
  Protocol.submission (Protocol.Inline (kernel_source (1_000_000 + uniq)))

let poison_submission variant =
  let src =
    match variant mod 3 with
    | 0 -> "int main( {"                         (* parse error *)
    | 1 -> "int main() { x = 1; return 0; }"     (* unbound variable *)
    | _ -> "int main() { return g(); }"          (* unbound function *)
  in
  Protocol.submission (Protocol.Inline src)

(** Generate a schedule of [total] single requests plus interspersed
    storms.  [storm_size] should exceed the daemon's queue capacity for
    the storm legs to observe [Queue_full]. *)
let schedule ~seed ~total ~storm_size : op array =
  if total <= 0 then invalid_arg "Workload.schedule: total must be positive";
  let state = ref (if seed = 0 then 0x5eed else seed) in
  let roll bound =
    let s, r = lcg !state in
    state := s;
    r mod bound
  in
  let cold_uniq = ref 0 in
  let next_cold () =
    incr cold_uniq;
    cold_submission !cold_uniq
  in
  Array.init total (fun index ->
      let r = roll 100 in
      if r < 60 then { index; kind = Hot; subs = [ hot_submission (roll hot_pool_size) ] }
      else if r < 85 then { index; kind = Cold; subs = [ next_cold () ] }
      else if r < 95 then { index; kind = Poison; subs = [ poison_submission (roll 3) ] }
      else
        {
          index;
          kind = Storm;
          subs = List.init storm_size (fun _ -> next_cold ());
        })

let kind_to_string = function
  | Hot -> "hot"
  | Cold -> "cold"
  | Poison -> "poison"
  | Storm -> "storm"

(* ------------------------------------------------------------------ *)
(* Variants mix                                                        *)
(* ------------------------------------------------------------------ *)

(** A variant-traffic schedule: a pool of distinct sources, each
    submitted once cold with default parameters (phase A, sequential —
    the committed full-flow baseline), then re-submitted under varied
    (mode, strategy, x-threshold, budget) combinations (phase B,
    concurrent).  Every variant has a distinct {!Flow_service.Store}
    key by construction — the whole-result store never short-circuits
    it — so any latency drop against the cold baseline is attributable
    to the stage-memo hierarchy alone. *)
type variants_schedule = {
  colds : Protocol.submission array;
      (** one default-parameter submission per pool source *)
  variants : Protocol.submission array;  (** shuffled variant replays *)
}

(** Heavier than {!kernel_source}: enough loop trips and flops per trip
    that profiling/analysis dominate a cold flow, making the stage-memo
    saving measurable above protocol and scheduling overhead.  Still
    extractable (array-writing for-loop in [main]); [tag] folds into a
    constant so each pool source is textually distinct, [n] is the
    workload-size axis of the pool. *)
let variant_kernel_source ~tag ~n =
  Printf.sprintf
    {|int main() {
  double a[%d];
  double b[%d];
  for (int i = 0; i < %d; i++) {
    b[i] = ((a[i] * 1.5 + %d.0) * 0.875 + a[i] * 0.25) * 1.0625 + 2.0;
  }
  return 0;
}|}
    n n n tag

(* Workload sizes cycled across the pool (the "varied workload" axis:
   a different size is a different source text, so it colds once and
   then shares every size-independent stage with nothing — while its
   own variants share everything). *)
let variant_sizes = [| 24576; 32768; 49152 |]

(* Variant tags start far above cold tags so the populations can never
   alias with the classic mix. *)
let variant_source slot =
  variant_kernel_source
    ~tag:(2_000_000 + slot)
    ~n:variant_sizes.(slot mod Array.length variant_sizes)

(* The parameter grid replayed against each pool source.  Every entry
   differs from the phase-A default (informed, fig3, x=2.0, no budget)
   and from each other, so each variant is a distinct store key.  The
   budget is far above any simulated cost: the budget *field* varies
   the key without triggering the over-budget revision path, keeping
   variant flows deterministic. *)
let variant_params : (Protocol.mode * Protocol.strategy * float * float option) list =
  [
    (Protocol.Informed, Protocol.Fig3, 1.0, None);
    (Protocol.Informed, Protocol.Fig3, 4.0, None);
    (Protocol.Uninformed, Protocol.Fig3, 2.0, None);
    (Protocol.Informed, Protocol.Model_perf, 2.0, None);
    (Protocol.Informed, Protocol.Model_cost, 2.0, None);
    (Protocol.Informed, Protocol.Model_energy, 2.0, None);
    (Protocol.Informed, Protocol.Fig3, 2.0, Some 1.0e6);
    (Protocol.Uninformed, Protocol.Fig3, 4.0, None);
    (Protocol.Informed, Protocol.Model_perf, 4.0, None);
    (Protocol.Informed, Protocol.Model_cost, 1.0, Some 1.0e6);
    (Protocol.Informed, Protocol.Model_energy, 4.0, None);
    (Protocol.Uninformed, Protocol.Fig3, 1.0, None);
  ]

(** Build a variants schedule over [sources] pool entries with
    [per_source] parameter variants each (capped at the grid size).
    Pure in [seed]: the variant order is a seeded Fisher–Yates shuffle,
    so phase B interleaves different sources on concurrent connections
    deterministically. *)
let variants_schedule ~seed ~sources ~per_source : variants_schedule =
  if sources <= 0 then
    invalid_arg "Workload.variants_schedule: sources must be positive";
  let per_source = max 1 (min per_source (List.length variant_params)) in
  let colds =
    Array.init sources (fun i ->
        Protocol.submission (Protocol.Inline (variant_source i)))
  in
  let variants =
    Array.concat
      (List.init sources (fun i ->
           let src = Protocol.Inline (variant_source i) in
           Array.of_list
             (List.filteri
                (fun j _ -> j < per_source)
                (List.map
                   (fun (mode, strategy, x_threshold, budget) ->
                     Protocol.submission ~mode ~strategy ~x_threshold ?budget
                       src)
                   variant_params))))
  in
  let state = ref (if seed = 0 then 0x5eed else seed) in
  let roll bound =
    let s, r = lcg !state in
    state := s;
    r mod bound
  in
  for i = Array.length variants - 1 downto 1 do
    let j = roll (i + 1) in
    let tmp = variants.(i) in
    variants.(i) <- variants.(j);
    variants.(j) <- tmp
  done;
  { colds; variants }

(** Total submissions in a schedule (storms count each burst member):
    the request volume the daemon actually sees. *)
let submission_count (ops : op array) =
  Array.fold_left (fun acc op -> acc + List.length op.subs) 0 ops
