(** Replay a {!Workload} schedule against a live daemon and measure it.

    [run] drives the schedule from [connections] client threads, each
    holding one persistent connection (systhreads: the client side is
    I/O-bound; the daemon's worker {e domains} do the computing).  Every
    operation's latency is recorded in full — submit to final result for
    hot/cold jobs, submit to typed rejection for poison, frame
    round-trip plus drain for storms — into a per-thread
    {!Flow_obs.Metrics.Hist} log-bucketed sketch; the sketches are
    merged at the end, so percentiles are constant-memory regardless of
    run length and come from the same histogram type the daemon serves
    in [svc-metrics].  Every submission carries a client-minted request
    id (protocol v3), so load traffic is traceable via [svc-trace].

    Correctness is checked on a deterministic sample: every
    [sample_every]-th successful result is compared byte-for-byte
    (report text and serialized result JSON) against a direct
    {!Flow_exec} execution of the same submission in this process.  A
    daemon that returns approximately-right results fails the run. *)

module Protocol = Flow_service.Protocol
module Client = Flow_service.Client
module Flow_exec = Flow_service.Flow_exec
module Json = Flow_service.Json
module Hist = Flow_obs.Metrics.Hist

type config = {
  addr : Protocol.addr;
  connections : int;
  total_ops : int;
  seed : int;
  storm_size : int;
  sample_every : int;
}

type outcome = {
  wall_s : float;
  ops : int;  (** schedule entries replayed *)
  requests : int;  (** submissions the daemon saw (storms expanded) *)
  throughput_rps : float;  (** requests / wall_s *)
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  max_ms : float;
  fresh : int;
  coalesced : int;
  cached : int;
  poison_rejected : int;
  queue_full : int;
  other_errors : int;
  identity_checked : int;
  identity_ok : bool;
}

type counters = {
  mutable fresh : int;
  mutable coalesced : int;
  mutable cached : int;
  mutable poison_rejected : int;
  mutable queue_full : int;
  mutable other_errors : int;
}

(* One thread's view of the run; merged under [lock] at the end. *)
type shared = {
  ops_arr : Workload.op array;
  next : int Atomic.t;
  lock : Mutex.t;
  lat_hist : Hist.t;  (** seconds; thread-local sketches merge in here *)
  totals : counters;
  samples : (string, Protocol.submission * Protocol.job_result) Hashtbl.t;
      (** keyed by source text: first sampled result per distinct job *)
  sample_every : int;
}

let source_text (s : Protocol.submission) =
  match s.Protocol.source with
  | Protocol.Inline src -> src
  | Protocol.Bench id -> "bench:" ^ id

let record_sample sh op_index (sub : Protocol.submission)
    (r : Protocol.job_result) =
  if sh.sample_every > 0 && op_index mod sh.sample_every = 0 then begin
    let k = source_text sub in
    Mutex.lock sh.lock;
    if not (Hashtbl.mem sh.samples k) then Hashtbl.add sh.samples k (sub, r);
    Mutex.unlock sh.lock
  end

(* Poll one job on the persistent connection until Done/Failed. *)
let rec await_result c job_id =
  match Client.request c (Protocol.Fetch_result job_id) with
  | Protocol.Result (_, r) -> Some r
  | Protocol.Status { state = Protocol.Failed _; _ } -> None
  | Protocol.Status _ ->
      Thread.delay 0.002;
      await_result c job_id
  | _ -> None

let run_single sh c (t : counters) (op : Workload.op) sub =
  match snd (Client.submit c sub) with
  | Ok (job_id, disposition) -> (
      (match disposition with
      | `Fresh -> t.fresh <- t.fresh + 1
      | `Coalesced -> t.coalesced <- t.coalesced + 1
      | `Cached -> t.cached <- t.cached + 1);
      match await_result c job_id with
      | Some r -> record_sample sh op.Workload.index sub r
      | None -> t.other_errors <- t.other_errors + 1)
  | Error (Protocol.Minic_parse_error _ | Protocol.Minic_type_error _) ->
      t.poison_rejected <- t.poison_rejected + 1
  | Error Protocol.Queue_full -> t.queue_full <- t.queue_full + 1
  | Error _ -> t.other_errors <- t.other_errors + 1

(* A storm: one submit_batch frame, then drain our accepted jobs with
   fetch_batch polls so the burst's execution cost stays inside the
   measured wall clock. *)
let run_storm sh c (t : counters) (op : Workload.op) =
  let items = Client.submit_batch c op.Workload.subs in
  let ids =
    List.filter_map
      (fun item ->
        match item with
        | Ok (job_id, disposition) ->
            (match disposition with
            | `Fresh -> t.fresh <- t.fresh + 1
            | `Coalesced -> t.coalesced <- t.coalesced + 1
            | `Cached -> t.cached <- t.cached + 1);
            Some job_id
        | Error Protocol.Queue_full ->
            t.queue_full <- t.queue_full + 1;
            None
        | Error (Protocol.Minic_parse_error _ | Protocol.Minic_type_error _) ->
            t.poison_rejected <- t.poison_rejected + 1;
            None
        | Error _ ->
            t.other_errors <- t.other_errors + 1;
            None)
      items
  in
  let rec drain ids =
    match ids with
    | [] -> ()
    | _ ->
        let pending =
          List.filter_map
            (fun (id, item) ->
              match item with
              | Ok ({ Protocol.state = Protocol.Done; _ }, Some _)
              | Ok ({ Protocol.state = Protocol.Failed _; _ }, _) ->
                  None
              | Ok _ -> Some id
              | Error _ -> None)
            (List.combine ids (Client.fetch_batch c ids))
        in
        if pending <> [] then begin
          Thread.delay 0.005;
          drain pending
        end
  in
  drain ids

let worker sh addr () =
  let c = Client.connect addr in
  let t =
    {
      fresh = 0;
      coalesced = 0;
      cached = 0;
      poison_rejected = 0;
      queue_full = 0;
      other_errors = 0;
    }
  in
  let mine = Hist.create () in
  let n = Array.length sh.ops_arr in
  let rec loop () =
    let i = Atomic.fetch_and_add sh.next 1 in
    if i < n then begin
      let op = sh.ops_arr.(i) in
      let t0 = Unix.gettimeofday () in
      (try
         match op.Workload.kind with
         | Workload.Storm -> run_storm sh c t op
         | _ -> List.iter (run_single sh c t op) op.Workload.subs
       with
      | Client.Protocol_failure _ | Client.Client_error _ ->
          t.other_errors <- t.other_errors + 1);
      Hist.observe mine (Unix.gettimeofday () -. t0);
      loop ()
    end
  in
  loop ();
  Client.close c;
  Mutex.lock sh.lock;
  Hist.merge ~into:sh.lat_hist mine;
  sh.totals.fresh <- sh.totals.fresh + t.fresh;
  sh.totals.coalesced <- sh.totals.coalesced + t.coalesced;
  sh.totals.cached <- sh.totals.cached + t.cached;
  sh.totals.poison_rejected <- sh.totals.poison_rejected + t.poison_rejected;
  sh.totals.queue_full <- sh.totals.queue_full + t.queue_full;
  sh.totals.other_errors <- sh.totals.other_errors + t.other_errors;
  Mutex.unlock sh.lock

(* MiniC statement ids are allocated from a process-global [Atomic]
   counter, so the "hotspot: loop #N in main" log line is the one place
   a result's bytes depend on how many programs the process parsed
   before this one.  Canonicalize that token (and only it) to "loop #_"
   on both sides; every other byte must match exactly. *)
let canonicalize_sids s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let marker = "loop #" in
  let m = String.length marker in
  let i = ref 0 in
  while !i < n do
    if !i + m <= n && String.sub s !i m = marker then begin
      Buffer.add_string buf marker;
      i := !i + m;
      while !i < n && s.[!i] >= '0' && s.[!i] <= '9' do
        incr i
      done;
      Buffer.add_char buf '_'
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

(* First index at which two strings differ, with context, for the
   hard-fail diagnostic. *)
let diff_at a b =
  let n = min (String.length a) (String.length b) in
  let rec go i = if i < n && a.[i] = b.[i] then go (i + 1) else i in
  let i = go 0 in
  let ctx s =
    let lo = max 0 (i - 30) in
    String.sub s lo (min 60 (String.length s - lo))
  in
  Printf.sprintf "byte %d: daemon %S vs direct %S" i (ctx b) (ctx a)

(* Compare one fetched daemon result against a direct re-execution of
   the same submission in this process.  [key] only labels the
   diagnostic. *)
let verify_one key (sub : Protocol.submission)
    (fetched : Protocol.job_result) : bool =
  match Flow_exec.resolve sub with
  | Error _ -> false
  | Ok { run; _ } ->
      let direct = run ~request_id:None () in
      let report_ok =
        String.equal direct.Protocol.report fetched.Protocol.report
      in
      let direct_data = canonicalize_sids (Json.to_string direct.Protocol.data) in
      let fetched_data = canonicalize_sids (Json.to_string fetched.Protocol.data) in
      let data_ok = String.equal direct_data fetched_data in
      if not report_ok then
        Printf.eprintf "svc-load identity: report mismatch for %s\n  %s\n%!"
          (String.sub key 0 (min 40 (String.length key)))
          (diff_at direct.Protocol.report fetched.Protocol.report);
      if not data_ok then
        Printf.eprintf "svc-load identity: data mismatch for %s\n  %s\n%!"
          (String.sub key 0 (min 40 (String.length key)))
          (diff_at direct_data fetched_data);
      report_ok && data_ok

(** Re-execute each sampled submission directly (no daemon) and compare
    bytes.  Returns [(checked, all_ok)]; mismatches are detailed on
    stderr. *)
let verify_samples samples =
  Hashtbl.fold
    (fun key (sub, fetched) (n, ok) ->
      (n + 1, ok && verify_one key sub fetched))
    samples (0, true)

let run (cfg : config) : outcome =
  let ops_arr =
    Workload.schedule ~seed:cfg.seed ~total:cfg.total_ops
      ~storm_size:cfg.storm_size
  in
  let sh =
    {
      ops_arr;
      next = Atomic.make 0;
      lock = Mutex.create ();
      lat_hist = Hist.create ();
      totals =
        {
          fresh = 0;
          coalesced = 0;
          cached = 0;
          poison_rejected = 0;
          queue_full = 0;
          other_errors = 0;
        };
      samples = Hashtbl.create 64;
      sample_every = cfg.sample_every;
    }
  in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init (max 1 cfg.connections) (fun _ ->
        Thread.create (worker sh cfg.addr) ())
  in
  List.iter Thread.join threads;
  let wall_s = Unix.gettimeofday () -. t0 in
  let lat = sh.lat_hist in
  let requests = Workload.submission_count ops_arr in
  let identity_checked, identity_ok = verify_samples sh.samples in
  let summary = Hist.summary lat in
  {
    wall_s;
    ops = Array.length ops_arr;
    requests;
    throughput_rps = float_of_int requests /. wall_s;
    p50_ms = 1000.0 *. Hist.percentile lat 50.0;
    p90_ms = 1000.0 *. Hist.percentile lat 90.0;
    p99_ms = 1000.0 *. Hist.percentile lat 99.0;
    max_ms = 1000.0 *. summary.Flow_obs.Metrics.s_max;
    fresh = sh.totals.fresh;
    coalesced = sh.totals.coalesced;
    cached = sh.totals.cached;
    poison_rejected = sh.totals.poison_rejected;
    queue_full = sh.totals.queue_full;
    other_errors = sh.totals.other_errors;
    identity_checked;
    identity_ok;
  }

(* ------------------------------------------------------------------ *)
(* Variants replay                                                     *)
(* ------------------------------------------------------------------ *)

type variants_config = {
  v_addr : Protocol.addr;
  v_connections : int;
  v_seed : int;
  v_sources : int;  (** distinct pool sources (phase-A cold flows) *)
  v_per_source : int;  (** parameter variants replayed per source *)
  v_sample_every : int;
}

type stage_counters = { stage : string; s_hits : int; s_misses : int }

type variants_outcome = {
  v_wall_s : float;  (** both phases *)
  v_requests : int;  (** colds + variants *)
  v_throughput_rps : float;  (** phase-B variants over phase-B wall *)
  cold_n : int;
  cold_mean_ms : float;
  cold_p50_ms : float;
  cold_p99_ms : float;
  variant_n : int;
  variant_mean_ms : float;
  variant_p50_ms : float;
  variant_p99_ms : float;
  latency_ratio : float;  (** variant mean / cold mean *)
  memo_stages : stage_counters list;  (** phase-B counter deltas *)
  memo_hit_rate : float;  (** phase-B hits / (hits + misses) *)
  v_fresh : int;
  v_unexpected_dispositions : int;
      (** store hits/coalesces — zero by construction, nonzero means
          the schedule failed to make every variant a distinct key *)
  v_errors : int;
  v_identity_checked : int;
  v_identity_ok : bool;
}

(* Stage caches whose hit/miss counters attribute the phase-B saving
   (prefixes as registered in {!Flow_obs.Metrics.global}). *)
let memo_stage_prefixes =
  [
    "memo_ast";
    "memo_extract";
    "memo_reduce";
    "memo_features";
    "memo_compile";
    "memo_dse_unroll";
    "memo_dse_blocksize";
    "memo_dse_threads";
    "profile_cache";
  ]

let memo_counters () =
  List.map
    (fun p ->
      ( p,
        Flow_obs.Metrics.counter_value Flow_obs.Metrics.global (p ^ "_hits"),
        Flow_obs.Metrics.counter_value Flow_obs.Metrics.global (p ^ "_misses")
      ))
    memo_stage_prefixes

(* Submit one variant and await its result; returns [Ok disposition]
   on success. *)
let variant_once c (sub : Protocol.submission) =
  match snd (Client.submit c sub) with
  | Ok (job_id, disposition) -> (
      match await_result c job_id with
      | Some r -> Ok (disposition, r)
      | None -> Error `Failed)
  | Error _ -> Error `Rejected

(** Replay a {!Workload.variants_schedule}: phase A submits every pool
    source once, sequentially, with default parameters — the committed
    cold full-flow baseline; phase B replays the shuffled parameter
    variants from [v_connections] concurrent client threads.  Sampled
    phase-B results are then compared byte-for-byte against direct
    re-execution with the stage-memo hierarchy {e disabled}
    ([Flow_memo.set_globally_enabled false]), proving memoized daemon
    answers identical to unmemoized computation. *)
let run_variants (cfg : variants_config) : variants_outcome =
  let sched =
    Workload.variants_schedule ~seed:cfg.v_seed ~sources:cfg.v_sources
      ~per_source:cfg.v_per_source
  in
  let errors = Atomic.make 0 in
  let unexpected = Atomic.make 0 in
  let fresh = Atomic.make 0 in
  let t0 = Unix.gettimeofday () in
  (* Phase A: sequential colds on one connection. *)
  let cold_hist = Hist.create () in
  let ca = Client.connect cfg.v_addr in
  Array.iter
    (fun sub ->
      let t = Unix.gettimeofday () in
      (match variant_once ca sub with
      | Ok (`Fresh, _) -> Atomic.incr fresh
      | Ok _ -> Atomic.incr unexpected
      | Error _ -> Atomic.incr errors);
      Hist.observe cold_hist (Unix.gettimeofday () -. t))
    sched.Workload.colds;
  Client.close ca;
  (* Phase B: concurrent variant replay. *)
  let before = memo_counters () in
  let var_hist = Hist.create () in
  let lock = Mutex.create () in
  let samples = ref [] in
  let next = Atomic.make 0 in
  let n = Array.length sched.Workload.variants in
  let tb = Unix.gettimeofday () in
  let worker () =
    let c = Client.connect cfg.v_addr in
    let mine = Hist.create () in
    let my_samples = ref [] in
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        let sub = sched.Workload.variants.(i) in
        let t = Unix.gettimeofday () in
        (try
           match variant_once c sub with
           | Ok (`Fresh, r) ->
               Atomic.incr fresh;
               if cfg.v_sample_every > 0 && i mod cfg.v_sample_every = 0 then
                 my_samples := (i, sub, r) :: !my_samples
           | Ok _ -> Atomic.incr unexpected
           | Error _ -> Atomic.incr errors
         with Client.Protocol_failure _ | Client.Client_error _ ->
           Atomic.incr errors);
        Hist.observe mine (Unix.gettimeofday () -. t);
        loop ()
      end
    in
    loop ();
    Client.close c;
    Mutex.lock lock;
    Hist.merge ~into:var_hist mine;
    samples := !my_samples @ !samples;
    Mutex.unlock lock
  in
  let threads =
    List.init (max 1 cfg.v_connections) (fun _ -> Thread.create worker ())
  in
  List.iter Thread.join threads;
  let phase_b_s = Unix.gettimeofday () -. tb in
  let wall_s = Unix.gettimeofday () -. t0 in
  let after = memo_counters () in
  let memo_stages =
    List.map2
      (fun (p, h0, m0) (_, h1, m1) ->
        { stage = p; s_hits = h1 - h0; s_misses = m1 - m0 })
      before after
  in
  let hits = List.fold_left (fun a s -> a + s.s_hits) 0 memo_stages in
  let misses = List.fold_left (fun a s -> a + s.s_misses) 0 memo_stages in
  (* Identity: daemon idle now; re-execute the sample with the memo
     hierarchy off and require byte equality (after sid
     canonicalization — the memo-off side re-parses, so statement ids
     differ even though nothing else may). *)
  let identity_checked, identity_ok =
    Flow_memo.set_globally_enabled false;
    Fun.protect ~finally:(fun () -> Flow_memo.set_globally_enabled true)
    @@ fun () ->
    List.fold_left
      (fun (cnt, ok) (i, sub, r) ->
        (cnt + 1, ok && verify_one (Printf.sprintf "variant[%d]" i) sub r))
      (0, true) !samples
  in
  let cold = Hist.summary cold_hist in
  let var = Hist.summary var_hist in
  {
    v_wall_s = wall_s;
    v_requests = Array.length sched.Workload.colds + n;
    v_throughput_rps = float_of_int n /. phase_b_s;
    cold_n = cold.Flow_obs.Metrics.s_count;
    cold_mean_ms = 1000.0 *. cold.Flow_obs.Metrics.s_mean;
    cold_p50_ms = 1000.0 *. Hist.percentile cold_hist 50.0;
    cold_p99_ms = 1000.0 *. Hist.percentile cold_hist 99.0;
    variant_n = var.Flow_obs.Metrics.s_count;
    variant_mean_ms = 1000.0 *. var.Flow_obs.Metrics.s_mean;
    variant_p50_ms = 1000.0 *. Hist.percentile var_hist 50.0;
    variant_p99_ms = 1000.0 *. Hist.percentile var_hist 99.0;
    latency_ratio =
      (if cold.Flow_obs.Metrics.s_mean > 0.0 then
         var.Flow_obs.Metrics.s_mean /. cold.Flow_obs.Metrics.s_mean
       else Float.nan);
    memo_stages;
    memo_hit_rate =
      (if hits + misses > 0 then
         float_of_int hits /. float_of_int (hits + misses)
       else 0.0);
    v_fresh = Atomic.get fresh;
    v_unexpected_dispositions = Atomic.get unexpected;
    v_errors = Atomic.get errors;
    v_identity_checked = identity_checked;
    v_identity_ok = identity_ok;
  }
