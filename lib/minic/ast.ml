(** Abstract syntax tree for MiniC, the C-like kernel language in which
    all benchmark applications are written.

    MiniC plays the role of the C++ subset that the paper's Artisan
    framework operates on: it has functions, scalar types (with an explicit
    single/double precision distinction so that the "employ SP math
    functions / numeric literals" transforms are meaningful), pointers and
    arrays, canonical [for] loops, compound assignments ([+=] etc., needed
    by the "remove array += dependency" transform), calls to math builtins,
    and [#pragma] annotations attached to statements.

    Every expression and statement carries a unique integer id.  Ids are
    the handles used by the meta-programming layer ({!module:Artisan}) to
    address nodes for querying and instrumentation, exactly as Artisan
    addresses Clang AST nodes.  Transformations preserve the ids of nodes
    they do not touch, so analysis results keyed by id remain valid across
    instrumentation passes. *)

(** Scalar and pointer types. *)
type typ =
  | Tvoid
  | Tbool
  | Tint
  | Tfloat  (** single precision *)
  | Tdouble  (** double precision *)
  | Tptr of typ
[@@deriving show { with_path = false }, eq, ord]

(** Floating-point literal precision. [Single] literals print with an 'f'
    suffix, as produced by the "employ SP numeric literals" transform. *)
type fkind = Single | Double [@@deriving show { with_path = false }, eq, ord]

type unop = Neg | Not [@@deriving show { with_path = false }, eq, ord]

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | LAnd
  | LOr
[@@deriving show { with_path = false }, eq, ord]

(** Compound-assignment operators: [x = e], [x += e], ... *)
type assign_op = Set | AddEq | SubEq | MulEq | DivEq
[@@deriving show { with_path = false }, eq, ord]

type expr = { eid : int; enode : enode; eloc : Loc.t }

and enode =
  | Int_lit of int
  | Float_lit of float * fkind
  | Bool_lit of bool
  | Var of string
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Index of expr * expr  (** [a[i]] *)
  | Call of string * expr list
  | Cast of typ * expr
[@@deriving show { with_path = false }]

(** Assignment targets: a scalar variable or an array element. *)
type lvalue = Lvar of string | Lindex of expr * expr
[@@deriving show { with_path = false }]

(** A pragma annotation attached to a statement, e.g.
    [#pragma omp parallel for] is [{ pname = "omp"; pargs = ["parallel"; "for"] }]. *)
type pragma = { pname : string; pargs : string list }
[@@deriving show { with_path = false }, eq, ord]

(** Canonical [for]-loop header: [for (int index = init; index < bound; index += step)].
    The comparison is [<] when [inclusive] is false and [<=] otherwise.
    Canonical headers are what the loop analyses (trip count, dependence)
    reason about; MiniC's parser only accepts canonical loops, matching the
    paper's benchmarks which are all counted loops. *)
type for_header = {
  index : string;
  init : expr;
  bound : expr;
  inclusive : bool;
  step : expr;
}
[@@deriving show { with_path = false }]

type stmt = { sid : int; snode : snode; sloc : Loc.t; pragmas : pragma list }

and snode =
  | Decl of decl
  | Assign of lvalue * assign_op * expr
  | Expr_stmt of expr
  | If of expr * block * block option
  | For of for_header * block
  | While of expr * block
  | Return of expr option
  | Block of block

and decl = {
  dtyp : typ;
  dname : string;
  dsize : expr option;  (** [Some n] for an array declaration [T name[n]] *)
  dinit : expr option;
}

and block = stmt list [@@deriving show { with_path = false }]

(** Function parameter. *)
type param = { ptyp : typ; pname_ : string }
[@@deriving show { with_path = false }]

type func = {
  fname : string;
  fret : typ;
  fparams : param list;
  fbody : block;
  floc : Loc.t;
}
[@@deriving show { with_path = false }]

(** A whole translation unit: global declarations followed by functions.
    Execution starts at the function named ["main"]. *)
type program = { globals : stmt list; funcs : func list }
[@@deriving show { with_path = false }]

(* ------------------------------------------------------------------ *)
(* Node-id supply                                                      *)
(* ------------------------------------------------------------------ *)

(* Atomic so that programs may be parsed / transformed from several
   domains concurrently (the DSE pool does this) without ever handing
   two nodes the same id. *)
let id_counter = Atomic.make 0

(** Allocate a fresh node id. *)
let fresh_id () = Atomic.fetch_and_add id_counter 1 + 1

(** Reset the id supply. Only used by tests that need reproducible ids. *)
let reset_ids () = Atomic.set id_counter 0

(* ------------------------------------------------------------------ *)
(* Constructors                                                        *)
(* ------------------------------------------------------------------ *)

let mk_expr ?(loc = Loc.none) enode = { eid = fresh_id (); enode; eloc = loc }

let mk_stmt ?(loc = Loc.none) ?(pragmas = []) snode =
  { sid = fresh_id (); snode; sloc = loc; pragmas }

(* ------------------------------------------------------------------ *)
(* Generic traversal                                                   *)
(* ------------------------------------------------------------------ *)

(** [iter_expr f e] applies [f] to [e] and all its sub-expressions,
    pre-order. *)
let rec iter_expr f e =
  f e;
  match e.enode with
  | Int_lit _ | Float_lit _ | Bool_lit _ | Var _ -> ()
  | Unop (_, a) | Cast (_, a) -> iter_expr f a
  | Binop (_, a, b) | Index (a, b) ->
      iter_expr f a;
      iter_expr f b
  | Call (_, args) -> List.iter (iter_expr f) args

(** Expressions appearing directly in a statement (not in nested
    statements). *)
let stmt_exprs s =
  match s.snode with
  | Decl d -> Option.to_list d.dsize @ Option.to_list d.dinit
  | Assign (lv, _, e) -> (
      match lv with Lvar _ -> [ e ] | Lindex (a, i) -> [ a; i; e ])
  | Expr_stmt e -> [ e ]
  | If (c, _, _) -> [ c ]
  | For (h, _) -> [ h.init; h.bound; h.step ]
  | While (c, _) -> [ c ]
  | Return eo -> Option.to_list eo
  | Block _ -> []

(** Sub-blocks of a statement. *)
let stmt_blocks s =
  match s.snode with
  | If (_, b1, b2) -> b1 :: Option.to_list b2
  | For (_, b) | While (_, b) -> [ b ]
  | Block b -> [ b ]
  | Decl _ | Assign _ | Expr_stmt _ | Return _ -> []

(** [iter_stmt f s] applies [f] to [s] and all nested statements,
    pre-order. *)
let rec iter_stmt f s =
  f s;
  List.iter (fun b -> List.iter (iter_stmt f) b) (stmt_blocks s)

(** Apply [f] to every statement in a block, pre-order. *)
let iter_block f b = List.iter (iter_stmt f) b

(** Apply [f] to every statement of a function body. *)
let iter_func f fn = iter_block f fn.fbody

(** Apply [fs] to every statement and [fe] to every expression of a
    program, pre-order. *)
let iter_program ?(fs = fun _ -> ()) ?(fe = fun _ -> ()) p =
  let on_stmt s =
    fs s;
    List.iter (iter_expr fe) (stmt_exprs s)
  in
  List.iter (iter_stmt on_stmt) p.globals;
  List.iter (fun fn -> iter_block on_stmt fn.fbody) p.funcs

(** Find the function named [name]. Raises [Not_found]. *)
let find_func p name = List.find (fun f -> f.fname = name) p.funcs

let find_func_opt p name = List.find_opt (fun f -> f.fname = name) p.funcs

(** All statements of a program as a flat pre-order list. *)
let all_stmts p =
  let acc = ref [] in
  iter_program ~fs:(fun s -> acc := s :: !acc) p;
  List.rev !acc

(** All statement ids occurring in a program. *)
let all_stmt_ids p = List.map (fun s -> s.sid) (all_stmts p)

(** True if any node id appears twice in the program; transformations
    must never produce such a program. *)
let has_duplicate_ids p =
  let tbl = Hashtbl.create 256 in
  let dup = ref false in
  let check id =
    if Hashtbl.mem tbl id then dup := true else Hashtbl.add tbl id ()
  in
  iter_program ~fs:(fun s -> check s.sid) ~fe:(fun e -> check e.eid) p;
  !dup

(* ------------------------------------------------------------------ *)
(* Type utilities                                                      *)
(* ------------------------------------------------------------------ *)

let rec string_of_typ = function
  | Tvoid -> "void"
  | Tbool -> "bool"
  | Tint -> "int"
  | Tfloat -> "float"
  | Tdouble -> "double"
  | Tptr t -> string_of_typ t ^ "*"

let is_float_typ = function Tfloat | Tdouble -> true | _ -> false

(** Size in bytes of a scalar of type [t] (pointers are 8 bytes). *)
let sizeof = function
  | Tvoid -> 0
  | Tbool -> 1
  | Tint -> 4
  | Tfloat -> 4
  | Tdouble -> 8
  | Tptr _ -> 8
