(** Dynamic data in/out (data movement) analysis.

    Runs the program with the kernel function as profiling focus and
    reports, per pointer argument, the bytes that an accelerator offload
    would have to move: elements whose first kernel access is a read must
    be copied host->device ([bytes_in]); elements written must be copied
    back ([bytes_out]).  Totals accumulate over every kernel invocation,
    modelling one transfer pair per offloaded call. *)

open Minic

type arg = {
  name : string;
  bytes_in : int;
  bytes_out : int;
}

type t = {
  kernel : string;
  calls : int;
  args : arg list;
  total_in : int;
  total_out : int;
  kernel_cycles : float;  (** single-thread CPU cycles spent in the kernel *)
  kernel_flops : int;
}

let total t = t.total_in + t.total_out

(** Bytes moved per kernel invocation. *)
let bytes_per_call t =
  if t.calls = 0 then 0.0 else float_of_int (total t) /. float_of_int t.calls

(** Project the data-movement record out of kernel observations. *)
let of_kernel_obs ~kernel (k : Minic_interp.Profile.kernel_obs) : t =
  let args =
    Array.to_list k.args
    |> List.map (fun (a : Minic_interp.Profile.arg_obs) ->
           { name = a.arg_name; bytes_in = a.bytes_in; bytes_out = a.bytes_out })
  in
  let total_in = List.fold_left (fun acc a -> acc + a.bytes_in) 0 args in
  let total_out = List.fold_left (fun acc a -> acc + a.bytes_out) 0 args in
  {
    kernel;
    calls = k.calls;
    args;
    total_in;
    total_out;
    kernel_cycles = k.k_cycles;
    kernel_flops = k.k_flops;
  }

(** Project the data-movement record out of a fused profile (focused on
    the kernel). *)
let of_fused (fp : Minic_interp.Fused_profile.t) ~kernel : t =
  match Minic_interp.Fused_profile.kernel_obs fp with
  | None ->
      {
        kernel;
        calls = 0;
        args = [];
        total_in = 0;
        total_out = 0;
        kernel_cycles = 0.0;
        kernel_flops = 0;
      }
  | Some k -> of_kernel_obs ~kernel k

(** Analyse data movement of calls to [kernel] in [p] (one shared fused
    profiling run). *)
let analyze (p : Ast.program) ~kernel : t =
  Flow_obs.Trace.with_span ~cat:"analysis" "analysis.data_inout"
    ~args:[ ("kernel", Flow_obs.Attr.String kernel) ]
  @@ fun () ->
  Flow_obs.Metrics.incr Flow_obs.Metrics.global "analysis_data_inout";
  of_fused (Minic_interp.Fused_profile.get ~focus:kernel p) ~kernel

let pp fmt t =
  Format.fprintf fmt
    "data in/out of %s: %d calls, %d B in, %d B out (%.3g cycles on CPU)"
    t.kernel t.calls t.total_in t.total_out t.kernel_cycles
