(** Dynamic data in/out (data movement) analysis: per pointer argument,
    the bytes an accelerator offload would have to move — elements whose
    first kernel access is a read (host->device) and elements written
    (device->host), accumulated over every kernel invocation. *)

open Minic

type arg = { name : string; bytes_in : int; bytes_out : int }

type t = {
  kernel : string;
  calls : int;
  args : arg list;
  total_in : int;
  total_out : int;
  kernel_cycles : float;  (** single-thread CPU cycles in the kernel *)
  kernel_flops : int;
}

val total : t -> int

(** Bytes moved per kernel invocation. *)
val bytes_per_call : t -> float

(** Project data movement of calls to [kernel] out of already-collected
    kernel observations. *)
val of_kernel_obs : kernel:string -> Minic_interp.Profile.kernel_obs -> t

(** Project data movement out of a kernel-focused fused profile. *)
val of_fused : Minic_interp.Fused_profile.t -> kernel:string -> t

(** Analyse data movement of calls to [kernel]. *)
val analyze : Ast.program -> kernel:string -> t

val pp : Format.formatter -> t -> unit
