(** Static arithmetic-intensity analysis.

    Estimates FLOPs per byte of memory traffic for a kernel function by
    walking its body: floating-point operators and math builtins
    contribute FLOPs, array accesses contribute bytes, and fixed-bound
    inner loops multiply their body's contribution by the static trip
    count (unknown-bound loops use a neutral weight of 1 per invocation
    so the ratio reflects one iteration's balance).

    The PSA strategy compares the resulting FLOPs/B against its tunable
    threshold X to classify the hotspot as compute- or memory-bound
    (Fig. 3). *)

open Minic

type t = {
  flops : float;  (** weighted FLOP estimate *)
  bytes : float;  (** weighted bytes of array traffic *)
  flops_per_byte : float;
}

let flops_of_binop (op : Ast.binop) =
  match op with
  | Ast.Add | Ast.Sub | Ast.Mul -> 1.0
  | Ast.Div -> 4.0
  | _ -> 0.0

(* Types are not tracked here: MiniC benchmarks only index float/double
   arrays in kernels, and scalar int arithmetic contributes no FLOPs.  We
   distinguish float ops from int ops syntactically: an operator counts as
   floating when either operand contains a float literal, float-typed
   array access, or math call.  To stay simple and deterministic we use
   the typechecker's environment instead. *)

let rec expr_is_floaty vars (e : Ast.expr) =
  match e.enode with
  | Ast.Float_lit _ -> true
  | Ast.Int_lit _ | Ast.Bool_lit _ -> false
  | Ast.Var v -> (
      match Hashtbl.find_opt vars v with
      | Some (Ast.Tfloat | Ast.Tdouble) -> true
      | Some (Ast.Tptr (Ast.Tfloat | Ast.Tdouble)) -> true
      | _ -> false)
  | Ast.Unop (_, a) -> expr_is_floaty vars a
  | Ast.Binop (_, a, b) -> expr_is_floaty vars a || expr_is_floaty vars b
  | Ast.Index (a, _) -> expr_is_floaty vars a
  | Ast.Call (f, _) -> (
      match Minic.Builtins.lookup f with
      | Some s -> Ast.is_float_typ s.ret
      | None -> true)
  | Ast.Cast (t, _) -> Ast.is_float_typ t

(** FLOPs and bytes of one evaluation of [e]. *)
let rec expr_cost vars (e : Ast.expr) =
  match e.enode with
  | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Bool_lit _ | Ast.Var _ -> (0.0, 0.0)
  | Ast.Unop (_, a) | Ast.Cast (_, a) -> expr_cost vars a
  | Ast.Binop (op, a, b) ->
      let fa, ba = expr_cost vars a and fb, bb = expr_cost vars b in
      let f =
        if expr_is_floaty vars a || expr_is_floaty vars b then
          flops_of_binop op
        else 0.0
      in
      (fa +. fb +. f, ba +. bb)
  | Ast.Index (a, i) ->
      let fa, ba = expr_cost vars a and fi, bi = expr_cost vars i in
      let elem =
        match a.enode with
        | Ast.Var v -> (
            match Hashtbl.find_opt vars v with
            | Some (Ast.Tptr t) -> float_of_int (Ast.sizeof t)
            | _ -> 8.0)
        | _ -> 8.0
      in
      (fa +. fi, ba +. bi +. elem)
  | Ast.Call (f, args) ->
      let fc =
        match Minic.Builtins.cost_class f with
        | Some c -> float_of_int (Minic.Builtins.flops_of_class c)
        | None -> 0.0
      in
      List.fold_left
        (fun (facc, bacc) a ->
          let fa, ba = expr_cost vars a in
          (facc +. fa, bacc +. ba))
        (fc, 0.0) args

let lvalue_cost vars = function
  | Ast.Lvar _ -> (0.0, 0.0)
  | Ast.Lindex (a, i) ->
      let fa, ba = expr_cost vars a and fi, bi = expr_cost vars i in
      let elem =
        match a.enode with
        | Ast.Var v -> (
            match Hashtbl.find_opt vars v with
            | Some (Ast.Tptr t) -> float_of_int (Ast.sizeof t)
            | _ -> 8.0)
        | _ -> 8.0
      in
      (fa +. fi, ba +. bi +. elem)

let rec stmt_cost vars (s : Ast.stmt) =
  match s.snode with
  | Ast.Decl d ->
      Hashtbl.replace vars d.dname
        (match d.dsize with Some _ -> Ast.Tptr d.dtyp | None -> d.dtyp);
      (match d.dinit with Some e -> expr_cost vars e | None -> (0.0, 0.0))
  | Ast.Assign (lv, op, e) ->
      let fl, bl = lvalue_cost vars lv in
      let fe, be = expr_cost vars e in
      let extra =
        (* compound assignment performs the op and re-reads the target *)
        if op <> Ast.Set then 1.0 else 0.0
      in
      (fl +. fe +. extra, bl +. be)
  | Ast.Expr_stmt e -> expr_cost vars e
  | Ast.Return (Some e) -> expr_cost vars e
  | Ast.Return None -> (0.0, 0.0)
  | Ast.If (c, b1, b2) ->
      let fc, bc = expr_cost vars c in
      let f1, bb1 = block_cost vars b1 in
      let f2, bb2 =
        match b2 with Some b -> block_cost vars b | None -> (0.0, 0.0)
      in
      (* both branches weighted half: static average *)
      (fc +. (0.5 *. (f1 +. f2)), bc +. (0.5 *. (bb1 +. bb2)))
  | Ast.While (c, b) ->
      let fc, bc = expr_cost vars c in
      let fb, bb = block_cost vars b in
      (fc +. fb, bc +. bb)
  | Ast.For (h, b) ->
      Hashtbl.replace vars h.index Ast.Tint;
      let trips =
        match Artisan.Query.static_trip_count s with
        | Some n -> float_of_int n
        | None -> 1.0
      in
      let fb, bb = block_cost vars b in
      (trips *. fb, trips *. bb)
  | Ast.Block b -> block_cost vars b

and block_cost vars b =
  List.fold_left
    (fun (f, by) s ->
      let fs, bs = stmt_cost vars s in
      (f +. fs, by +. bs))
    (0.0, 0.0) b

(** Arithmetic intensity of the function [fname]'s body, per outermost
    iteration. *)
let analyze (p : Ast.program) fname : t =
  Flow_obs.Trace.with_span ~cat:"analysis" "analysis.intensity"
    ~args:[ ("function", Flow_obs.Attr.String fname) ]
  @@ fun () ->
  Flow_obs.Metrics.incr Flow_obs.Metrics.global "analysis_intensity";
  let f = Ast.find_func p fname in
  let vars = Hashtbl.create 16 in
  List.iter
    (fun (pr : Ast.param) -> Hashtbl.replace vars pr.pname_ pr.ptyp)
    f.fparams;
  (* globals *)
  List.iter
    (fun (g : Ast.stmt) ->
      match g.snode with
      | Ast.Decl d ->
          Hashtbl.replace vars d.dname
            (match d.dsize with Some _ -> Ast.Tptr d.dtyp | None -> d.dtyp)
      | _ -> ())
    p.globals;
  let flops, bytes = block_cost vars f.fbody in
  {
    flops;
    bytes;
    flops_per_byte = (if bytes > 0.0 then flops /. bytes else Float.infinity);
  }

(** Dynamic intensity: kernel FLOPs per byte actually *transferred*
    (in + out), from a focused profile.  This is the ratio the offload
    decision ultimately cares about. *)
let dynamic_of_kernel (k : Minic_interp.Profile.kernel_obs) =
  let bytes_inout =
    Array.fold_left
      (fun acc (a : Minic_interp.Profile.arg_obs) ->
        acc + a.bytes_in + a.bytes_out)
      0 k.args
  in
  if bytes_inout = 0 then Float.infinity
  else float_of_int k.k_flops /. float_of_int bytes_inout
