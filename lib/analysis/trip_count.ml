(** Dynamic loop trip-count analysis.

    Executes the program and reports, for every loop, how many times it
    was entered and its min/mean/max iterations per entry.  The PSA
    strategy uses this to decide whether an inner loop is "fully
    unrollable" on an FPGA (fixed trip count under a threshold), and the
    device models use outer trip counts as the available parallelism. *)

open Minic

type stat = {
  loop_sid : int;
  invocations : int;
  total_iterations : int;
  min_trip : int;
  max_trip : int;
  mean_trip : float;
  fixed : bool;  (** every invocation ran the same number of iterations *)
}

type t = (int, stat) Hashtbl.t

let of_profile (prof : Minic_interp.Profile.t) : t =
  let out = Hashtbl.create 32 in
  Hashtbl.iter
    (fun sid (s : Minic_interp.Profile.loop_stat) ->
      let min_trip = if s.invocations = 0 then 0 else s.min_trip in
      Hashtbl.replace out sid
        {
          loop_sid = sid;
          invocations = s.invocations;
          total_iterations = s.iterations;
          min_trip;
          max_trip = s.max_trip;
          mean_trip = Minic_interp.Profile.mean_trip s;
          fixed = s.invocations > 0 && min_trip = s.max_trip;
        })
    prof.loops;
  out

(** Project the trip counts out of a fused profile. *)
let of_fused (fp : Minic_interp.Fused_profile.t) : t =
  of_profile (Minic_interp.Fused_profile.profile fp)

(** Run the program (one shared fused profiling run) and collect trip
    counts of every loop. *)
let analyze (p : Ast.program) : t =
  Flow_obs.Trace.with_span ~cat:"analysis" "analysis.trip_count" @@ fun () ->
  Flow_obs.Metrics.incr Flow_obs.Metrics.global "analysis_trip_count";
  of_fused (Minic_interp.Fused_profile.get p)

let find (t : t) sid = Hashtbl.find_opt t sid

(** Mean trip count of the loop with id [sid], 0 if it never ran. *)
let mean (t : t) sid =
  match find t sid with Some s -> s.mean_trip | None -> 0.0
