(** Kernel feature vector.

    Bundles everything the target-independent analyses learned about an
    extracted hotspot kernel into one record.  This is the "information
    accrued from target-independent analysis tasks" that the PSA strategy
    consumes at branch point A (Fig. 3), and the input from which the
    device models price candidate designs. *)

open Minic

(** One inner (non-outermost) loop of the kernel. *)
type inner_loop = {
  il_sid : int;
  il_static_trip : int option;
  il_mean_trip : float;
  il_iters_per_outer : float;
      (** total iterations of this loop per outer-loop iteration *)
  il_innermost : bool;
  il_parallel : bool;
  il_has_reduction : bool;
  il_fully_unrollable : bool;
      (** fixed trip count at or under the unroll threshold *)
}

(** Per-pointer-argument observations. *)
type arg_feat = {
  af_name : string;
  af_footprint : int;  (** bytes of the touched range *)
  af_bytes_in : float;  (** per call *)
  af_bytes_out : float;  (** per call *)
}

type t = {
  kernel : string;
  calls : int;  (** kernel invocations over the whole run *)
  outer_trip : float;  (** mean outer-loop iterations per invocation *)
  (* dynamic, per invocation *)
  flops_per_call : float;
  sfu_per_call : float;
  bytes_accessed_per_call : float;  (** on-device array traffic *)
  bytes_in_per_call : float;  (** host->device transfer requirement *)
  bytes_out_per_call : float;
  cpu_cycles_per_call : float;  (** single-thread reference cost *)
  (* static, per outer iteration *)
  ops_per_iter : Opcount.t;
      (** total work of one outer iteration (inner loops weighted by trip
          count) — drives throughput models *)
  hw_ops_per_iter : Opcount.t;
      (** operator instances a pipelined implementation must place: fixed
          small inner loops weighted by their (unrolled) trip count,
          unbounded inner loops by 1 (hardware is reused across their
          iterations) — drives the FPGA resource model *)
  inner_read_bytes : int;
      (** footprint of read-only arrays read inside inner loops: data a
          pipelined design banks into BRAM, replicated per unroll *)
  (* structure *)
  outer_parallel : bool;
  outer_has_reductions : bool;
  inner_loops : inner_loop list;
  regs_estimate : int;  (** GPU registers per thread estimate *)
  locals_count : int;  (** scalar locals (FPGA pipeline state depth) *)
  gather_fraction : float;  (** fraction of indirect array accesses *)
  gathered_args : string list;  (** pointer args accessed indirectly *)
  args : arg_feat list;
      (** per pointer arg: footprint and transfer requirements (on-chip
          caching feasibility for BRAM / shared memory) *)
  intensity : Intensity.t;
  no_alias : bool;
}

(** Threshold under which a fixed-bound inner loop counts as fully
    unrollable on an FPGA (Fig. 3's "can fully unroll?" test). *)
let full_unroll_threshold = 64

(* ------------------------------------------------------------------ *)
(* Register pressure estimate                                          *)
(* ------------------------------------------------------------------ *)

(** Estimate GPU registers per thread for the kernel: scalar locals stay
    live across the (often long) straight-line body, math calls need
    temporary ranges, and deep expressions need scratch registers.  The
    estimate is clamped to the architectural maximum of 255. *)
let estimate_registers (p : Ast.program) kernel =
  let f = Ast.find_func p kernel in
  let locals = ref 0 in
  let math_sites = ref 0 in
  let max_depth = ref 0 in
  let rec expr_depth (e : Ast.expr) =
    match e.enode with
    | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Bool_lit _ | Ast.Var _ -> 1
    | Ast.Unop (_, a) | Ast.Cast (_, a) -> 1 + expr_depth a
    | Ast.Binop (_, a, b) | Ast.Index (a, b) ->
        1 + max (expr_depth a) (expr_depth b)
    | Ast.Call (_, args) ->
        1 + List.fold_left (fun m a -> max m (expr_depth a)) 0 args
  in
  Ast.iter_func
    (fun s ->
      (match s.snode with
      | Ast.Decl { dsize = None; _ } -> incr locals
      | _ -> ());
      List.iter
        (fun e ->
          max_depth := max !max_depth (expr_depth e);
          Ast.iter_expr
            (fun sub ->
              match sub.enode with
              | Ast.Call (name, _) when Minic.Builtins.cost_class name <> None ->
                  incr math_sites
              | _ -> ())
            e)
        (Ast.stmt_exprs s))
    f;
  let estimate =
    16 + (2 * !locals) + (2 * !math_sites) + !max_depth
    + (2 * List.length f.fparams)
  in
  (min 255 estimate, !locals)

(* ------------------------------------------------------------------ *)
(* Gather fraction                                                     *)
(* ------------------------------------------------------------------ *)

(** Fraction of array accesses in the kernel whose index is not affine in
    any enclosing loop index — indirect "gather" accesses that neither
    coalesce on a GPU nor burst on an FPGA — together with the names of
    the arrays accessed that way. *)
let gather_info (p : Ast.program) kernel =
  let f = Ast.find_func p kernel in
  let names = ref [] in
  let data_derived = Hashtbl.create 8 in
  let total = ref 0 and gathers = ref 0 in
  let rec walk loop_idxs (s : Ast.stmt) =
    let idxs =
      match s.snode with
      | Ast.For (h, _) -> h.index :: loop_idxs
      | _ -> loop_idxs
    in
    (* scalar locals assigned from array contents: indexing through them
       is a data-dependent gather, e.g. w[c] where c was computed from
       data *)
    let reads_array e =
      let found = ref false in
      Ast.iter_expr
        (fun sub ->
          match sub.enode with Ast.Index _ -> found := true | _ -> ())
        e;
      !found
    in
    (match s.snode with
    | Ast.Decl { dname; dsize = None; dinit = Some init; _ }
      when reads_array init ->
        Hashtbl.replace data_derived dname ()
    | Ast.Assign (Ast.Lvar v, _, rhs) when reads_array rhs ->
        Hashtbl.replace data_derived v ()
    | _ -> ());
    let check_expr e =
      Ast.iter_expr
        (fun sub ->
          match sub.enode with
          | Ast.Index (base, i) ->
              incr total;
              (* a gather reads through an index that is non-affine in an
                 enclosing loop variable (e.g. w[idx[k]]) or goes through
                 a data-derived scalar (e.g. w[c] with c computed from
                 array contents) *)
              let non_affine =
                List.exists
                  (fun v ->
                    Dependence.mentions_var v i
                    && Dependence.affine_coeff v i = None)
                  idxs
              in
              let data_dependent =
                let found = ref false in
                Ast.iter_expr
                  (fun e ->
                    match e.enode with
                    | Ast.Var v when Hashtbl.mem data_derived v -> found := true
                    | _ -> ())
                  i;
                !found
              in
              if non_affine || data_dependent then (
                incr gathers;
                match base.enode with
                | Ast.Var a when not (List.mem a !names) -> names := a :: !names
                | _ -> ())
          | _ -> ())
        e
    in
    List.iter check_expr (Ast.stmt_exprs s);
    List.iter (fun b -> List.iter (walk idxs) b) (Ast.stmt_blocks s)
  in
  List.iter (walk []) f.fbody;
  let fraction =
    if !total = 0 then 0.0 else float_of_int !gathers /. float_of_int !total
  in
  (fraction, List.rev !names)

(* ------------------------------------------------------------------ *)
(* Assembly                                                            *)
(* ------------------------------------------------------------------ *)

(** Assemble the feature vector from a fused profile (focused on the
    kernel): pure projection of the dynamic observations (data in/out,
    alias, trip counts, kernel cost) plus the static analyses
    (dependence, intensity, op census, register estimate). *)
let of_fused (fp : Minic_interp.Fused_profile.t) ~kernel : t =
  let p = fp.Minic_interp.Fused_profile.source in
  let prof = Minic_interp.Fused_profile.profile fp in
  let trips = Trip_count.of_profile prof in
  let kobs =
    match Minic_interp.Fused_profile.kernel_obs fp with
    | Some k -> k
    | None ->
        Minic_interp.Value.err
          "kernel '%s' was never called during feature analysis" kernel
  in
  let calls = max 1 kobs.calls in
  let fcalls = float_of_int calls in
  let outer_sid, outer_dep =
    match Dependence.outermost p kernel with
    | Some info -> (Some info.loop_sid, Some info)
    | None -> (None, None)
  in
  let outer_trip =
    match outer_sid with
    | Some sid -> Trip_count.mean trips sid
    | None -> 1.0
  in
  let dyn_trip sid = Trip_count.mean trips sid in
  let total_outer_iters =
    Float.max 1.0 (outer_trip *. float_of_int calls)
  in
  let inner_loops =
    Dependence.inner_loops p kernel
    |> List.map (fun (info : Dependence.loop_info) ->
           let stmt_ctx =
             match
               Artisan.Query.(
                 stmts_in
                   ~where:(fun ctx -> ctx.stmt.sid = info.loop_sid)
                   p kernel)
             with
             | m :: _ -> Some m
             | [] -> None
           in
           let static_trip =
             Option.bind stmt_ctx (fun m ->
                 Artisan.Query.static_trip_count m.Artisan.Query.stmt)
           in
           let innermost =
             match stmt_ctx with
             | Some m -> Artisan.Query.is_innermost_loop m
             | None -> false
           in
           let total_iters =
             match Trip_count.find trips info.loop_sid with
             | Some s -> float_of_int s.total_iterations
             | None -> 0.0
           in
           {
             il_sid = info.loop_sid;
             il_static_trip = static_trip;
             il_mean_trip = Trip_count.mean trips info.loop_sid;
             il_iters_per_outer = total_iters /. total_outer_iters;
             il_innermost = innermost;
             il_parallel = info.parallel;
             il_has_reduction = info.reductions <> [];
             il_fully_unrollable =
               (match static_trip with
               | Some n -> n <= full_unroll_threshold
               | None -> false);
           })
  in
  let alias = Alias.of_kernel_obs ~kernel kobs in
  let total_in =
    Array.fold_left
      (fun acc (a : Minic_interp.Profile.arg_obs) -> acc + a.bytes_in)
      0 kobs.args
  in
  let total_out =
    Array.fold_left
      (fun acc (a : Minic_interp.Profile.arg_obs) -> acc + a.bytes_out)
      0 kobs.args
  in
  let kernel_fn = Ast.find_func p kernel in
  let elem_bytes_of name =
    match
      List.find_opt (fun (pr : Ast.param) -> pr.pname_ = name) kernel_fn.fparams
    with
    | Some { ptyp = Ast.Tptr t; _ } -> Ast.sizeof t
    | _ -> 8
  in
  let args =
    Array.to_list kobs.args
    |> List.map (fun (a : Minic_interp.Profile.arg_obs) ->
           let span =
             List.fold_left
               (fun acc (_, lo, hi) -> acc + (hi - lo + 1))
               0 a.regions_touched
           in
           {
             af_name = a.arg_name;
             af_footprint = span * elem_bytes_of a.arg_name;
             af_bytes_in = float_of_int a.bytes_in /. fcalls;
             af_bytes_out = float_of_int a.bytes_out /. fcalls;
           })
  in
  let regs_estimate, locals_count = estimate_registers p kernel in
  let gather_fraction, gathered_args = gather_info p kernel in
  (* read-only arrays read inside inner loops *)
  let written_arrays = Hashtbl.create 8 in
  Ast.iter_func
    (fun s ->
      match s.snode with
      | Ast.Assign (Ast.Lindex ({ enode = Ast.Var a; _ }, _), _, _) ->
          Hashtbl.replace written_arrays a ()
      | _ -> ())
    kernel_fn;
  let outer_index =
    match outer_dep with Some d -> d.Dependence.index | None -> ""
  in
  let inner_read_names = ref [] in
  let rec scan_depth depth (s : Ast.stmt) =
    let depth' =
      match s.snode with Ast.For _ | Ast.While _ -> depth + 1 | _ -> depth
    in
    if depth' >= 2 then
      List.iter
        (fun e ->
          Ast.iter_expr
            (fun sub ->
              match sub.enode with
              | Ast.Index ({ enode = Ast.Var a; _ }, ix)
                when (not (Hashtbl.mem written_arrays a))
                     && (not (Dependence.mentions_var outer_index ix))
                     && not (List.mem a !inner_read_names) ->
                  (* arrays whose inner-loop reads do not move with the
                     outer index are re-read every outer iteration:
                     on-chip caching candidates.  Outer-indexed arrays
                     stream instead. *)
                  inner_read_names := a :: !inner_read_names
              | _ -> ())
            e)
        (Ast.stmt_exprs s);
    List.iter
      (fun b -> List.iter (scan_depth depth') b)
      (Ast.stmt_blocks s)
  in
  List.iter (scan_depth 0) kernel_fn.fbody;
  {
    kernel;
    calls;
    outer_trip;
    flops_per_call = float_of_int kobs.k_flops /. fcalls;
    sfu_per_call = float_of_int kobs.k_sfu /. fcalls;
    bytes_accessed_per_call =
      float_of_int (kobs.k_bytes_read + kobs.k_bytes_written) /. fcalls;
    bytes_in_per_call = float_of_int total_in /. fcalls;
    bytes_out_per_call = float_of_int total_out /. fcalls;
    cpu_cycles_per_call = kobs.k_cycles /. fcalls;
    ops_per_iter = Opcount.per_outer_iteration ~dyn_trip p kernel;
    hw_ops_per_iter =
      Opcount.per_outer_iteration ~dyn_trip:(fun _ -> 1.0) p kernel;
    inner_read_bytes =
      List.fold_left
        (fun acc a ->
          if List.mem a.af_name !inner_read_names then acc + a.af_footprint
          else acc)
        0 args;
    outer_parallel =
      (match outer_dep with
      | Some d -> d.parallel_with_reductions
      | None -> false);
    outer_has_reductions =
      (match outer_dep with Some d -> d.reductions <> [] | None -> false);
    inner_loops;
    regs_estimate;
    locals_count;
    gather_fraction;
    gathered_args;
    args;
    intensity = Intensity.analyze p kernel;
    no_alias = alias.no_alias;
  }

(** Run the full target-independent analysis battery on the extracted
    kernel [kernel] of program [p] and assemble the feature vector: one
    shared fused profiling run, then a pure projection. *)
(* Feature records are pure projections of the fused profile, so they
   memoize per focused program key (program digest + loop ids + focus;
   the workload size is baked into the program text).  The memo rides
   the stage hierarchy: off under PSAFLOW_NO_MEMO, bypassed while the
   global tracer records so traced runs keep their profile spans. *)
let memo : t Flow_memo.Cache.t = Flow_memo.Cache.create ~name:"features" ()

let analyze (p : Ast.program) ~kernel : t =
  Flow_obs.Trace.with_span ~cat:"analysis" "analysis.features"
    ~args:[ ("kernel", Flow_obs.Attr.String kernel) ]
  @@ fun () ->
  Flow_obs.Metrics.incr Flow_obs.Metrics.global "analysis_features";
  Flow_memo.Cache.find_or_compute memo
    ~key:
      ("f:" ^ Digest.to_hex (Minic_interp.Profile_cache.key ~focus:kernel p))
    (fun () -> of_fused (Minic_interp.Fused_profile.get ~focus:kernel p) ~kernel)

(** Total single-thread CPU seconds of the hotspot over the whole run —
    the Fig. 5 baseline denominator. *)
let cpu_seconds ?(clock_hz = 2.8e9) t =
  t.cpu_cycles_per_call *. float_of_int t.calls /. clock_hz

(** Arithmetic intensity with respect to offload traffic: kernel FLOPs per
    byte that a host<->accelerator transfer would have to move.  This is
    the FLOPs/B the Fig. 3 strategy compares against its threshold X. *)
let offload_intensity t =
  let bytes = t.bytes_in_per_call +. t.bytes_out_per_call in
  if bytes <= 0.0 then Float.infinity else t.flops_per_call /. bytes

(** Fig. 3's "inner loops w/ deps?" test: is there an inner loop carrying
    a dependence (pipelinable on FPGA rather than data-parallel)? *)
let has_dependent_inner_loops t =
  List.exists (fun il -> not il.il_parallel) t.inner_loops

(** Fig. 3's "can fully unroll?" test. *)
let inner_loops_fully_unrollable t =
  t.inner_loops <> []
  && List.for_all (fun il -> il.il_fully_unrollable) t.inner_loops
