(** Hotspot loop detection — dynamic design-flow task.

    Executes the program (one shared fused profiling run, see
    {!Minic_interp.Fused_profile}) and identifies the most
    time-consuming loop as the acceleration candidate, descending
    through sequential driver loops (convergence iterations, ODE
    timestepping) to the parallel work loop inside.  Detection projects
    the interpreter's per-loop cycle accounting, which measures
    bit-identically what the paper's timer instrumentation would; the
    instrumentation helper ({!instrument}) is kept as the reference the
    projection is tested against. *)

open Minic

type t = {
  loop_sid : int;  (** node id of the hotspot loop in the original AST *)
  ordinal : int;
      (** position of the loop in the pre-order {!candidates} list of
          [func_name]; identifies "the same loop" in another parse of
          the same source template (node ids are per-parse) *)
  func_name : string;
  cycles : float;  (** virtual cycles spent in the loop (inclusive) *)
  total_cycles : float;
  share : float;  (** fraction of program time spent in the loop *)
  descended_from : int list;  (** enclosing loops skipped as sequential *)
}

val pp : Format.formatter -> t -> unit

(** Fraction of a parent loop's time a nested loop must capture for the
    selection to descend into it. *)
val descend_threshold : float

(** All candidate loops of [func] (default ["main"]), any depth. *)
val candidates : ?func:string -> Ast.program -> Artisan.Query.match_ctx list

(** Instrument each candidate loop with a timer keyed by its node id
    (the paper's mechanism — reference for the fused projection). *)
val instrument : ?func:string -> Ast.program -> Ast.program

(** Project the hotspot loop out of a fused profile of the program;
    [None] when the function contains no loop. *)
val of_fused : ?func:string -> Minic_interp.Fused_profile.t -> t option

(** Detect the hotspot loop (one shared fused profiling run, then a pure
    projection); [None] when the function contains no loop. *)
val detect : ?func:string -> Ast.program -> t option
