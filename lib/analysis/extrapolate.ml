(** Workload extrapolation of kernel features.

    The interpreter profiles benchmarks at tractable problem sizes; the
    paper's evaluation runs at hardware scale.  Following standard
    performance-model practice, each numeric feature is fitted to a power
    law [v(n) = v1 * (n/n1)^e] from two profiled sizes and evaluated at
    the target size.  Structural features (parallelism, register
    pressure, unrollability) are size-invariant and taken from the first
    profile.  DESIGN.md documents this substitution. *)

let fit_exponent ~n1 ~n2 v1 v2 =
  if v1 <= 0.0 || v2 <= 0.0 || n1 = n2 then 0.0
  else log (v2 /. v1) /. log (float_of_int n2 /. float_of_int n1)

(** [scale ~n1 ~n2 ~n v1 v2] evaluates the power law fitted through
    [(n1, v1)] and [(n2, v2)] at [n]. *)
let scale ~n1 ~n2 ~n v1 v2 =
  if v1 <= 0.0 then 0.0
  else
    let e = fit_exponent ~n1 ~n2 v1 v2 in
    v1 *. ((float_of_int n /. float_of_int n1) ** e)

let scale_int ~n1 ~n2 ~n v1 v2 =
  int_of_float
    (Float.round (scale ~n1 ~n2 ~n (float_of_int v1) (float_of_int v2)))

(** Extrapolate a feature vector to problem size [n] from profiles taken
    at sizes [n1] and [n2] (of the same benchmark, so the two vectors are
    structurally identical). *)
let features ~n1 (f1 : Features.t) ~n2 (f2 : Features.t) ~n : Features.t =
  Flow_obs.Trace.with_span ~cat:"analysis" "analysis.extrapolate"
    ~args:
      [
        ("n1", Flow_obs.Attr.Int n1);
        ("n2", Flow_obs.Attr.Int n2);
        ("n", Flow_obs.Attr.Int n);
      ]
  @@ fun () ->
  Flow_obs.Metrics.incr Flow_obs.Metrics.global "analysis_extrapolate";
  let s v1 v2 = scale ~n1 ~n2 ~n v1 v2 in
  let inner_loops =
    List.map2
      (fun (a : Features.inner_loop) (b : Features.inner_loop) ->
        {
          a with
          il_mean_trip = s a.il_mean_trip b.il_mean_trip;
          il_iters_per_outer = s a.il_iters_per_outer b.il_iters_per_outer;
        })
      f1.inner_loops f2.inner_loops
  in
  let args =
    List.map2
      (fun (a : Features.arg_feat) (b : Features.arg_feat) ->
        {
          a with
          Features.af_footprint =
            scale_int ~n1 ~n2 ~n a.af_footprint b.af_footprint;
          af_bytes_in = s a.af_bytes_in b.af_bytes_in;
          af_bytes_out = s a.af_bytes_out b.af_bytes_out;
        })
      f1.args f2.args
  in
  (* per-outer-iteration op census grows with inner-loop trip counts *)
  let per_iter_growth =
    let w1 = f1.flops_per_call /. Float.max 1.0 f1.outer_trip in
    let w2 = f2.flops_per_call /. Float.max 1.0 f2.outer_trip in
    let wn = s w1 w2 in
    if w1 > 0.0 then wn /. w1 else 1.0
  in
  let intensity =
    let flops = s f1.intensity.Intensity.flops f2.intensity.Intensity.flops in
    let bytes = s f1.intensity.Intensity.bytes f2.intensity.Intensity.bytes in
    {
      Intensity.flops;
      bytes;
      flops_per_byte = (if bytes > 0.0 then flops /. bytes else Float.infinity);
    }
  in
  (* transfer totals: sum the per-argument fits rather than fitting the
     total, so one saturating argument (a lookup table already fully
     touched at profile scale) cannot skew the others' growth *)
  let bytes_in_per_call =
    List.fold_left (fun acc (a : Features.arg_feat) -> acc +. a.af_bytes_in)
      0.0 args
  in
  let bytes_out_per_call =
    List.fold_left (fun acc (a : Features.arg_feat) -> acc +. a.af_bytes_out)
      0.0 args
  in
  {
    f1 with
    calls =
      max 1
        (scale_int ~n1 ~n2 ~n f1.calls f2.calls);
    outer_trip = s f1.outer_trip f2.outer_trip;
    flops_per_call = s f1.flops_per_call f2.flops_per_call;
    sfu_per_call = s f1.sfu_per_call f2.sfu_per_call;
    bytes_accessed_per_call =
      s f1.bytes_accessed_per_call f2.bytes_accessed_per_call;
    bytes_in_per_call;
    bytes_out_per_call;
    cpu_cycles_per_call = s f1.cpu_cycles_per_call f2.cpu_cycles_per_call;
    ops_per_iter = Opcount.scale per_iter_growth f1.ops_per_iter;
    (* hardware census is structural: fixed-bound weights do not change
       with problem size *)
    inner_loops;
    args;
    inner_read_bytes =
      scale_int ~n1 ~n2 ~n f1.inner_read_bytes f2.inner_read_bytes;
    intensity;
  }
