(** Dynamic pointer alias analysis.

    The paper runs this before offloading to "ensure that pointer
    arguments do not reference overlapping memory locations" — a
    precondition for the restrict-style code generation all three
    backends rely on.

    Implementation: execute with the kernel as focus; the interpreter
    records, per pointer argument, which memory regions were touched and
    over which offset range.  Two arguments alias if they touched the
    same region with intersecting ranges. *)

open Minic

type overlap = {
  arg_a : string;
  arg_b : string;
  region : int;
  range_a : int * int;
  range_b : int * int;
}

type t = {
  kernel : string;
  no_alias : bool;
  overlaps : overlap list;
}

let ranges_intersect (lo1, hi1) (lo2, hi2) = lo1 <= hi2 && lo2 <= hi1

let of_kernel_obs ~kernel (k : Minic_interp.Profile.kernel_obs) : t =
  let args = Array.to_list k.args in
  let overlaps = ref [] in
  let rec pairs = function
    | [] -> ()
    | (a : Minic_interp.Profile.arg_obs) :: rest ->
        List.iter
          (fun (b : Minic_interp.Profile.arg_obs) ->
            List.iter
              (fun (rid_a, lo_a, hi_a) ->
                List.iter
                  (fun (rid_b, lo_b, hi_b) ->
                    if rid_a = rid_b && ranges_intersect (lo_a, hi_a) (lo_b, hi_b)
                    then
                      overlaps :=
                        {
                          arg_a = a.arg_name;
                          arg_b = b.arg_name;
                          region = rid_a;
                          range_a = (lo_a, hi_a);
                          range_b = (lo_b, hi_b);
                        }
                        :: !overlaps)
                  b.regions_touched)
              a.regions_touched)
          rest;
        pairs rest
  in
  pairs args;
  { kernel; no_alias = !overlaps = []; overlaps = List.rev !overlaps }

(** Project the alias verdict out of a fused profile (focused on the
    kernel). *)
let of_fused (fp : Minic_interp.Fused_profile.t) ~kernel : t =
  match Minic_interp.Fused_profile.kernel_obs fp with
  | None -> { kernel; no_alias = true; overlaps = [] }
  | Some k -> of_kernel_obs ~kernel k

(** Run the alias analysis on calls to [kernel] in [p] (one shared fused
    profiling run). *)
let analyze (p : Ast.program) ~kernel : t =
  Flow_obs.Trace.with_span ~cat:"analysis" "analysis.alias"
    ~args:[ ("kernel", Flow_obs.Attr.String kernel) ]
  @@ fun () ->
  Flow_obs.Metrics.incr Flow_obs.Metrics.global "analysis_alias";
  of_fused (Minic_interp.Fused_profile.get ~focus:kernel p) ~kernel
