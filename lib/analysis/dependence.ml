(** Static loop dependence analysis.

    Classifies each canonical [for] loop as parallel or not by examining
    writes performed in its body:

    - writes to variables declared inside the body (or to nested loop
      indices) are private and create no dependence;
    - a compound assignment ([+=], [*=], ...) to a non-private scalar is a
      {e reduction}: a removable dependence (OpenMP reduction clause, GPU
      atomics, FPGA accumulator replication);
    - a write to [a\[e\]] where [e] is affine in the loop index with a
      non-zero coefficient partitions the array across iterations and is
      independent, {e provided} every read of [a] in the body uses a
      syntactically identical index expression (or [a] is write-only);
    - a compound assignment to [a\[e\]] where [e] does {e not} depend on
      the loop index is an {e array reduction} — the pattern targeted by
      the paper's "Remove Array += Dependency" task;
    - anything else is a loop-carried dependence.

    The affinity test is syntactic and intentionally conservative-simple;
    it is exact for the access patterns of the five benchmark
    applications (documented limitation, see DESIGN.md). *)

open Minic

type dep_kind =
  | Scalar_reduction of Ast.assign_op
  | Array_reduction of Ast.assign_op
  | Carried of string  (** human-readable reason *)

type dep = {
  var : string;  (** written variable or array *)
  kind : dep_kind;
  sid : int;  (** statement performing the write *)
}

type loop_info = {
  loop_sid : int;
  index : string;
  parallel : bool;  (** no non-reduction carried dependence *)
  parallel_with_reductions : bool;  (** parallel once reductions handled *)
  reductions : dep list;
  carried : dep list;
}

let dep_kind_to_string = function
  | Scalar_reduction _ -> "scalar reduction"
  | Array_reduction _ -> "array reduction"
  | Carried r -> "carried (" ^ r ^ ")"

(* ------------------------------------------------------------------ *)
(* Expression utilities                                                *)
(* ------------------------------------------------------------------ *)

let rec mentions_var name (e : Ast.expr) =
  match e.enode with
  | Ast.Var v -> v = name
  | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Bool_lit _ -> false
  | Ast.Unop (_, a) | Ast.Cast (_, a) -> mentions_var name a
  | Ast.Binop (_, a, b) | Ast.Index (a, b) ->
      mentions_var name a || mentions_var name b
  | Ast.Call (_, args) -> List.exists (mentions_var name) args

(** [affine_coeff i e] is [Some c] when [e] = [c*i + rest] with [rest]
    independent of [i] and [c] a compile-time integer; [None] otherwise.
    Array reads inside [e] make it non-affine (indirect indexing). *)
let rec affine_coeff index (e : Ast.expr) : int option =
  match e.enode with
  | Ast.Var v when v = index -> Some 1
  | Ast.Var _ | Ast.Int_lit _ -> Some 0
  | Ast.Float_lit _ | Ast.Bool_lit _ -> Some 0
  | Ast.Unop (Ast.Neg, a) -> Option.map (fun c -> -c) (affine_coeff index a)
  | Ast.Binop (Ast.Add, a, b) -> (
      match (affine_coeff index a, affine_coeff index b) with
      | Some ca, Some cb -> Some (ca + cb)
      | _ -> None)
  | Ast.Binop (Ast.Sub, a, b) -> (
      match (affine_coeff index a, affine_coeff index b) with
      | Some ca, Some cb -> Some (ca - cb)
      | _ -> None)
  | Ast.Binop (Ast.Mul, a, b) -> (
      (* constant * affine or affine * constant *)
      match (a.enode, affine_coeff index b) with
      | Ast.Int_lit k, Some cb -> Some (k * cb)
      | _ -> (
          match (affine_coeff index a, b.enode) with
          | Some ca, Ast.Int_lit k -> Some (ca * k)
          | _ -> None))
  | Ast.Cast (_, a) -> affine_coeff index a
  | _ -> if mentions_var index e then None else Some 0

(** Canonical string of an index expression, for syntactic comparison. *)
let index_fingerprint e = Pretty.expr_to_string e

(* ------------------------------------------------------------------ *)
(* Collecting accesses                                                 *)
(* ------------------------------------------------------------------ *)

type access = {
  acc_array : string;  (** base variable of the [Index]; "" when complex *)
  acc_index : Ast.expr;
  acc_write : bool;
  acc_compound : Ast.assign_op option;  (** [Some op] for compound writes *)
  acc_sid : int;
}

let base_array_name (e : Ast.expr) =
  match e.enode with Ast.Var v -> v | _ -> ""

(** All array accesses and scalar writes in a block, with the set of
    private names (declared inside, or nested loop indices). *)
let collect_body (body : Ast.block) =
  let privates = Hashtbl.create 16 in
  let accesses = ref [] in
  let scalar_writes = ref [] in
  let add_reads_of_expr sid (e : Ast.expr) =
    Ast.iter_expr
      (fun sub ->
        match sub.enode with
        | Ast.Index (a, i) ->
            accesses :=
              {
                acc_array = base_array_name a;
                acc_index = i;
                acc_write = false;
                acc_compound = None;
                acc_sid = sid;
              }
              :: !accesses
        | _ -> ())
      e
  in
  let visit (s : Ast.stmt) =
    (match s.snode with
    | Ast.Decl d -> Hashtbl.replace privates d.dname ()
    | Ast.For (h, _) -> Hashtbl.replace privates h.index ()
    | _ -> ());
    (match s.snode with
    | Ast.Assign (Ast.Lvar v, op, _) ->
        scalar_writes := (v, op, s.sid) :: !scalar_writes
    | Ast.Assign (Ast.Lindex (a, i), op, _) ->
        accesses :=
          {
            acc_array = base_array_name a;
            acc_index = i;
            acc_write = true;
            acc_compound = (if op = Ast.Set then None else Some op);
            acc_sid = s.sid;
          }
          :: !accesses;
        add_reads_of_expr s.sid i
    | _ -> ());
    List.iter (add_reads_of_expr s.sid) (Ast.stmt_exprs s)
  in
  List.iter (Ast.iter_stmt visit) body;
  (privates, List.rev !accesses, List.rev !scalar_writes)

(* ------------------------------------------------------------------ *)
(* Loop classification                                                 *)
(* ------------------------------------------------------------------ *)

(** Analyse one canonical [for] loop statement. *)
let analyze_loop (s : Ast.stmt) : loop_info =
  match s.snode with
  | Ast.For (h, body) ->
      let privates, accesses, scalar_writes = collect_body body in
      let is_private v = Hashtbl.mem privates v in
      let reductions = ref [] in
      let carried = ref [] in
      (* scalar writes to non-private variables *)
      List.iter
        (fun (v, op, sid) ->
          if (not (is_private v)) && v <> h.index then
            match op with
            | Ast.Set ->
                carried :=
                  { var = v; kind = Carried "scalar overwritten each iteration"; sid }
                  :: !carried
            | op -> reductions := { var = v; kind = Scalar_reduction op; sid } :: !reductions)
        scalar_writes;
      (* array writes *)
      let writes = List.filter (fun a -> a.acc_write) accesses in
      let reads = List.filter (fun a -> not a.acc_write) accesses in
      List.iter
        (fun w ->
          match affine_coeff h.index w.acc_index with
          | Some c when c <> 0 ->
              (* partitioned by the loop index: check read indices of the
                 same array agree syntactically *)
              let fp = index_fingerprint w.acc_index in
              let conflicting =
                List.exists
                  (fun r ->
                    r.acc_array = w.acc_array
                    && index_fingerprint r.acc_index <> fp
                    && mentions_var h.index r.acc_index)
                  reads
                || List.exists
                     (fun r ->
                       r.acc_array = w.acc_array
                       && (not (mentions_var h.index r.acc_index))
                       && index_fingerprint r.acc_index <> fp)
                     reads
              in
              if conflicting then
                carried :=
                  {
                    var = w.acc_array;
                    kind = Carried "array written and read at differing indices";
                    sid = w.acc_sid;
                  }
                  :: !carried
          | Some _ (* index independent of loop variable *) -> (
              match w.acc_compound with
              | Some op ->
                  reductions :=
                    { var = w.acc_array; kind = Array_reduction op; sid = w.acc_sid }
                    :: !reductions
              | None ->
                  carried :=
                    {
                      var = w.acc_array;
                      kind = Carried "array element overwritten each iteration";
                      sid = w.acc_sid;
                    }
                    :: !carried)
          | None -> (
              (* indirect or non-affine index *)
              match w.acc_compound with
              | Some op ->
                  reductions :=
                    { var = w.acc_array; kind = Array_reduction op; sid = w.acc_sid }
                    :: !reductions
              | None ->
                  carried :=
                    {
                      var = w.acc_array;
                      kind = Carried "non-affine write index";
                      sid = w.acc_sid;
                    }
                    :: !carried))
        writes;
      let reductions = List.rev !reductions and carried = List.rev !carried in
      {
        loop_sid = s.sid;
        index = h.index;
        parallel = carried = [] && reductions = [];
        parallel_with_reductions = carried = [];
        reductions;
        carried;
      }
  | _ -> invalid_arg "Dependence.analyze_loop: not a for loop"

(** Analyse every [for] loop of the function named [fname]. *)
let analyze_function (p : Ast.program) fname : loop_info list =
  Flow_obs.Trace.with_span ~cat:"analysis" "analysis.dependence"
    ~args:[ ("function", Flow_obs.Attr.String fname) ]
  @@ fun () ->
  Flow_obs.Metrics.incr Flow_obs.Metrics.global "analysis_dependence";
  Artisan.Query.(stmts_in ~where:is_for p fname)
  |> List.map (fun (m : Artisan.Query.match_ctx) -> analyze_loop m.stmt)

(** Info for the outermost loop of a function, when it exists. *)
let outermost (p : Ast.program) fname : loop_info option =
  match
    Artisan.Query.(stmts_in ~where:(is_for &&& is_outermost_loop) p fname)
  with
  | m :: _ -> Some (analyze_loop m.Artisan.Query.stmt)
  | [] -> None

(** Inner loops (non-outermost) of a function with their info. *)
let inner_loops (p : Ast.program) fname : loop_info list =
  Artisan.Query.(
    stmts_in ~where:(is_for &&& not_ is_outermost_loop) p fname)
  |> List.map (fun (m : Artisan.Query.match_ctx) -> analyze_loop m.stmt)
