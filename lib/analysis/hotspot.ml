(** Hotspot loop detection — dynamic design-flow task.

    Mirrors the paper: the task instruments candidate loops with loop
    timers ([__timer_start]/[__timer_stop] calls around each loop),
    executes the instrumented code, and identifies the most
    time-consuming loop as the acceleration candidate.

    Selection starts at the most expensive outermost loop of [main] and
    descends while the current loop is not parallelisable (per the static
    dependence analysis) and a directly nested loop captures most of its
    time — so an application whose top-level loop is a sequential driver
    (K-Means' convergence iterations, an ODE solver's timestepping)
    offloads the parallel work loop inside it, invoked once per driver
    iteration, which is how the paper's designs transfer data per kernel
    call. *)

open Minic

type t = {
  loop_sid : int;  (** node id of the hotspot loop in the original AST *)
  func_name : string;  (** function containing the loop *)
  cycles : float;  (** virtual cycles spent in the loop (inclusive) *)
  total_cycles : float;  (** whole-program cycles *)
  share : float;  (** fraction of program time spent in the loop *)
  descended_from : int list;  (** enclosing loops skipped as sequential *)
}

let pp fmt h =
  Format.fprintf fmt "hotspot loop #%d in %s: %.3g cycles (%.1f%% of total)"
    h.loop_sid h.func_name h.cycles (100.0 *. h.share)

(** Fraction of a parent loop's time a nested loop must capture for the
    selection to descend into it. *)
let descend_threshold = 0.5

(** All [for] loops of [func] (any depth) with their contexts. *)
let candidates ?(func = "main") (p : Ast.program) =
  Artisan.Query.(stmts_in ~where:is_for p func)

(** Instrument each candidate loop with a timer keyed by its node id. *)
let instrument ?func (p : Ast.program) =
  List.fold_left
    (fun acc (m : Artisan.Query.match_ctx) ->
      Artisan.Instrument.wrap_with_timer ~target:m.stmt.sid ~key:m.stmt.sid acc)
    p (candidates ?func p)

(** Detect the hotspot loop of [p] by instrumented execution.
    Returns [None] when [func] contains no loop. *)
let detect ?(func = "main") (p : Ast.program) : t option =
  Flow_obs.Trace.with_span ~cat:"analysis" "analysis.hotspot"
    ~args:[ ("function", Flow_obs.Attr.String func) ]
  @@ fun () ->
  Flow_obs.Metrics.incr Flow_obs.Metrics.global "analysis_hotspot";
  let cands = candidates ~func p in
  if cands = [] then None
  else
    let instrumented = instrument ~func p in
    let run = Minic_interp.Profile_cache.run instrumented in
    let total_cycles = run.profile.cycles in
    let cycles_of sid = Minic_interp.Profile.timer_total run.profile sid in
    (* direct loop children: candidate whose nearest enclosing loop is the
       given loop *)
    let nearest_enclosing_loop (m : Artisan.Query.match_ctx) =
      List.find_opt Artisan.Query.is_stmt_loop m.path
      |> Option.map (fun (s : Ast.stmt) -> s.sid)
    in
    let children sid =
      List.filter (fun m -> nearest_enclosing_loop m = Some sid) cands
    in
    let top_level =
      List.filter (fun m -> nearest_enclosing_loop m = None) cands
    in
    let pick ms =
      List.fold_left
        (fun best (m : Artisan.Query.match_ctx) ->
          let c = cycles_of m.stmt.sid in
          match best with
          | Some (_, bc) when bc >= c -> best
          | _ -> Some (m, c))
        None ms
    in
    match pick top_level with
    | None -> None
    | Some (start, _) ->
        let rec descend (m : Artisan.Query.match_ctx) skipped =
          let info = Dependence.analyze_loop m.stmt in
          if info.parallel_with_reductions then (m, skipped)
          else
            match pick (children m.stmt.sid) with
            | Some (child, child_cycles)
              when child_cycles
                   >= descend_threshold *. cycles_of m.stmt.sid ->
                descend child (m.stmt.sid :: skipped)
            | _ -> (m, skipped)
        in
        let chosen, skipped = descend start [] in
        let cycles = cycles_of chosen.stmt.sid in
        Flow_obs.Trace.add_args
          [
            ("loop_sid", Flow_obs.Attr.Int chosen.stmt.sid);
            ( "share",
              Flow_obs.Attr.Float
                (if total_cycles > 0.0 then cycles /. total_cycles else 0.0) );
          ];
        Some
          {
            loop_sid = chosen.stmt.sid;
            func_name = chosen.func.fname;
            cycles;
            total_cycles;
            share = (if total_cycles > 0.0 then cycles /. total_cycles else 0.0);
            descended_from = List.rev skipped;
          }
