(** Hotspot loop detection — dynamic design-flow task.

    Mirrors the paper: the task executes the program and identifies the
    most time-consuming loop as the acceleration candidate.  The paper's
    implementation wraps candidate loops in timers
    ([__timer_start]/[__timer_stop]) and runs the instrumented copy;
    here detection projects the interpreter's own per-loop cycle
    accounting out of the shared fused profile ({!Minic_interp.Fused_profile}),
    which measures exactly what the timers would — the timer calls carry
    zero virtual-cycle cost, so [timer_total sid] of an instrumented run
    equals [loop_stat sid].cycles of the bare run bit-for-bit (asserted
    by the test suite).  The instrumentation helpers remain available
    ({!instrument}) for the reference comparison.

    Selection starts at the most expensive outermost loop of [main] and
    descends while the current loop is not parallelisable (per the static
    dependence analysis) and a directly nested loop captures most of its
    time — so an application whose top-level loop is a sequential driver
    (K-Means' convergence iterations, an ODE solver's timestepping)
    offloads the parallel work loop inside it, invoked once per driver
    iteration, which is how the paper's designs transfer data per kernel
    call. *)

open Minic

type t = {
  loop_sid : int;  (** node id of the hotspot loop in the original AST *)
  ordinal : int;
      (** position of the loop in the pre-order {!candidates} list of
          [func_name] — node ids are globally allocated per parse, so
          the ordinal (not the id) is what identifies "the same loop" in
          another parse of the same source template, e.g. the
          secondary-workload-size copy *)
  func_name : string;  (** function containing the loop *)
  cycles : float;  (** virtual cycles spent in the loop (inclusive) *)
  total_cycles : float;  (** whole-program cycles *)
  share : float;  (** fraction of program time spent in the loop *)
  descended_from : int list;  (** enclosing loops skipped as sequential *)
}

let pp fmt h =
  Format.fprintf fmt "hotspot loop #%d in %s: %.3g cycles (%.1f%% of total)"
    h.loop_sid h.func_name h.cycles (100.0 *. h.share)

(** Fraction of a parent loop's time a nested loop must capture for the
    selection to descend into it. *)
let descend_threshold = 0.5

(** All [for] loops of [func] (any depth) with their contexts. *)
let candidates ?(func = "main") (p : Ast.program) =
  Artisan.Query.(stmts_in ~where:is_for p func)

(** Instrument each candidate loop with a timer keyed by its node id
    (the paper's mechanism — kept as the reference the fused projection
    is checked against). *)
let instrument ?func (p : Ast.program) =
  List.fold_left
    (fun acc (m : Artisan.Query.match_ctx) ->
      Artisan.Instrument.wrap_with_timer ~target:m.stmt.sid ~key:m.stmt.sid acc)
    p (candidates ?func p)

(** Project the hotspot loop out of a fused profile of the program.
    Returns [None] when [func] contains no loop. *)
let of_fused ?(func = "main") (fp : Minic_interp.Fused_profile.t) : t option =
  let p = fp.Minic_interp.Fused_profile.source in
  let cands = candidates ~func p in
  if cands = [] then None
  else
    let total_cycles = Minic_interp.Fused_profile.total_cycles fp in
    let cycles_of sid = Minic_interp.Fused_profile.loop_cycles fp sid in
    (* direct loop children: candidate whose nearest enclosing loop is the
       given loop *)
    let nearest_enclosing_loop (m : Artisan.Query.match_ctx) =
      List.find_opt Artisan.Query.is_stmt_loop m.path
      |> Option.map (fun (s : Ast.stmt) -> s.sid)
    in
    let children sid =
      List.filter (fun m -> nearest_enclosing_loop m = Some sid) cands
    in
    let top_level =
      List.filter (fun m -> nearest_enclosing_loop m = None) cands
    in
    let pick ms =
      List.fold_left
        (fun best (m : Artisan.Query.match_ctx) ->
          let c = cycles_of m.stmt.sid in
          match best with
          | Some (_, bc) when bc >= c -> best
          | _ -> Some (m, c))
        None ms
    in
    match pick top_level with
    | None -> None
    | Some (start, _) ->
        let rec descend (m : Artisan.Query.match_ctx) skipped =
          let info = Dependence.analyze_loop m.stmt in
          if info.parallel_with_reductions then (m, skipped)
          else
            match pick (children m.stmt.sid) with
            | Some (child, child_cycles)
              when child_cycles
                   >= descend_threshold *. cycles_of m.stmt.sid ->
                descend child (m.stmt.sid :: skipped)
            | _ -> (m, skipped)
        in
        let chosen, skipped = descend start [] in
        let cycles = cycles_of chosen.stmt.sid in
        let ordinal =
          let rec find i = function
            | [] -> 0
            | (m : Artisan.Query.match_ctx) :: rest ->
                if m.stmt.sid = chosen.stmt.sid then i else find (i + 1) rest
          in
          find 0 cands
        in
        Some
          {
            loop_sid = chosen.stmt.sid;
            ordinal;
            func_name = chosen.func.fname;
            cycles;
            total_cycles;
            share = (if total_cycles > 0.0 then cycles /. total_cycles else 0.0);
            descended_from = List.rev skipped;
          }

(** Detect the hotspot loop of [p]: one shared fused profiling run, then
    a pure projection.  Returns [None] when [func] contains no loop. *)
let detect ?(func = "main") (p : Ast.program) : t option =
  Flow_obs.Trace.with_span ~cat:"analysis" "analysis.hotspot"
    ~args:[ ("function", Flow_obs.Attr.String func) ]
  @@ fun () ->
  Flow_obs.Metrics.incr Flow_obs.Metrics.global "analysis_hotspot";
  let result = of_fused ~func (Minic_interp.Fused_profile.get p) in
  (match result with
  | Some h ->
      Flow_obs.Trace.add_args
        [
          ("loop_sid", Flow_obs.Attr.Int h.loop_sid);
          ("share", Flow_obs.Attr.Float h.share);
        ]
  | None -> ());
  result
