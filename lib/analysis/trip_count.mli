(** Dynamic loop trip-count analysis: per-loop invocation and min/mean/max
    iteration statistics from an instrumented run, keyed by the loop
    statement's node id. *)

open Minic

type stat = {
  loop_sid : int;
  invocations : int;
  total_iterations : int;
  min_trip : int;
  max_trip : int;
  mean_trip : float;
  fixed : bool;  (** every invocation ran the same number of iterations *)
}

type t = (int, stat) Hashtbl.t

(** Extract trip counts from an existing profile. *)
val of_profile : Minic_interp.Profile.t -> t

(** Project trip counts out of a fused profile. *)
val of_fused : Minic_interp.Fused_profile.t -> t

(** Run the program and collect trip counts of every loop. *)
val analyze : Ast.program -> t

val find : t -> int -> stat option

(** Mean trip count of the loop with id [sid], 0 if it never ran. *)
val mean : t -> int -> float
