(** Dynamic pointer alias analysis: ensures kernel pointer arguments do
    not reference overlapping memory (the paper's offload precondition),
    from the per-argument touched ranges the focused interpreter run
    records. *)

open Minic

type overlap = {
  arg_a : string;
  arg_b : string;
  region : int;
  range_a : int * int;
  range_b : int * int;
}

type t = {
  kernel : string;
  no_alias : bool;
  overlaps : overlap list;
}

(** Analyse already-collected kernel observations. *)
val of_kernel_obs : kernel:string -> Minic_interp.Profile.kernel_obs -> t

(** Project the alias verdict out of a kernel-focused fused profile. *)
val of_fused : Minic_interp.Fused_profile.t -> kernel:string -> t

(** Run the program with [kernel] as focus and analyse. *)
val analyze : Ast.program -> kernel:string -> t
