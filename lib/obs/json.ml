(** Minimal self-contained JSON: an immutable value type with an
    encoder (compact and pretty, deterministic field order, float
    round-tripping via shortest-repr), a strict recursive-descent parser
    (UTF-8 escapes, surrogate pairs, trailing-garbage rejection) and
    total accessors.

    Lives in [lib/obs] (stdlib-only, like the rest of the library) so
    the metrics registry, the perf-history database and the service
    protocol all share one value type and one rendering path;
    [Flow_service.Json] re-exports it. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string * int

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

(* Shortest decimal form that round-trips, forced to contain '.' or an
   exponent so the value re-parses as a Float, not an Int. *)
let float_repr f =
  if not (Float.is_finite f) then
    invalid_arg "Json: cannot encode nan/infinity";
  let s =
    let s15 = Printf.sprintf "%.15g" f in
    if float_of_string s15 = f then s15
    else
      let s16 = Printf.sprintf "%.16g" f in
      if float_of_string s16 = f then s16 else Printf.sprintf "%.17g" f
  in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
  else s ^ ".0"

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec encode buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape_into buf s
  | List vs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          encode buf v)
        vs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_into buf k;
          Buffer.add_char buf ':';
          encode buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  encode buf v;
  Buffer.contents buf

let to_string_pretty v =
  let buf = Buffer.create 256 in
  let pad n = Buffer.add_string buf (String.make n ' ') in
  let rec go indent = function
    | (Null | Bool _ | Int _ | Float _ | String _) as v -> encode buf v
    | List [] -> Buffer.add_string buf "[]"
    | Obj [] -> Buffer.add_string buf "{}"
    | List vs ->
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (indent + 2);
            go (indent + 2) v)
          vs;
        Buffer.add_char buf '\n';
        pad indent;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (indent + 2);
            escape_into buf k;
            Buffer.add_string buf ": ";
            go (indent + 2) v)
          fields;
        Buffer.add_char buf '\n';
        pad indent;
        Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type cursor = { src : string; mutable pos : int }

let fail c msg = raise (Parse_error (msg, c.pos))
let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.src
    && match c.src.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | _ -> fail c (Printf.sprintf "expected %C" ch)

let literal c word v =
  let n = String.length word in
  if
    c.pos + n <= String.length c.src
    && String.sub c.src c.pos n = word
  then (
    c.pos <- c.pos + n;
    v)
  else fail c (Printf.sprintf "invalid literal (expected %s)" word)

(* A \uXXXX escape, encoded into the buffer as UTF-8; surrogate pairs are
   combined when both halves are present. *)
let parse_hex4 c =
  if c.pos + 4 > String.length c.src then fail c "truncated \\u escape";
  let s = String.sub c.src c.pos 4 in
  match int_of_string_opt ("0x" ^ s) with
  | Some n ->
      c.pos <- c.pos + 4;
      n
  | None -> fail c "invalid \\u escape"

let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then (
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F))))
  else if cp < 0x10000 then (
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F))))
  else (
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F))))

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' -> (
        c.pos <- c.pos + 1;
        match peek c with
        | None -> fail c "unterminated escape"
        | Some e ->
            c.pos <- c.pos + 1;
            (match e with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                let hi = parse_hex4 c in
                if
                  hi >= 0xD800 && hi <= 0xDBFF
                  && c.pos + 1 < String.length c.src
                  && c.src.[c.pos] = '\\'
                  && c.src.[c.pos + 1] = 'u'
                then (
                  c.pos <- c.pos + 2;
                  let lo = parse_hex4 c in
                  if lo >= 0xDC00 && lo <= 0xDFFF then
                    add_utf8 buf
                      (0x10000 + ((hi - 0xD800) lsl 10) + (lo - 0xDC00))
                  else (
                    add_utf8 buf hi;
                    add_utf8 buf lo))
                else add_utf8 buf hi
            | _ -> fail c "invalid escape character");
            go ())
    | Some ch when Char.code ch < 0x20 -> fail c "raw control char in string"
    | Some ch ->
        Buffer.add_char buf ch;
        c.pos <- c.pos + 1;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    c.pos < String.length c.src && is_num_char c.src.[c.pos]
  do
    c.pos <- c.pos + 1
  done;
  let s = String.sub c.src start (c.pos - start) in
  let is_floatish =
    String.exists (fun ch -> ch = '.' || ch = 'e' || ch = 'E') s
  in
  if not is_floatish then
    match int_of_string_opt s with
    | Some n -> Int n
    | None -> (
        (* out of int range: fall back to float *)
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> fail { c with pos = start } "invalid number")
  else
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail { c with pos = start } "invalid number"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '{' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some '}' then (
        c.pos <- c.pos + 1;
        Obj [])
      else
        let rec fields acc =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              fields ((k, v) :: acc)
          | Some '}' ->
              c.pos <- c.pos + 1;
              Obj (List.rev ((k, v) :: acc))
          | _ -> fail c "expected ',' or '}'"
        in
        fields []
  | Some '[' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some ']' then (
        c.pos <- c.pos + 1;
        List [])
      else
        let rec elems acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              elems (v :: acc)
          | Some ']' ->
              c.pos <- c.pos + 1;
              List (List.rev (v :: acc))
          | _ -> fail c "expected ',' or ']'"
        in
        elems []
  | Some '"' -> String (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c (Printf.sprintf "unexpected character %C" ch)

let parse s =
  let c = { src = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then fail c "trailing garbage after document";
  v

let parse_result s =
  match parse s with
  | v -> Ok v
  | exception Parse_error (msg, pos) ->
      Error (Printf.sprintf "offset %d: %s" pos msg)

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let to_int_opt = function
  | Int n -> Some n
  | Float f when Float.is_integer f && Float.abs f < 1e15 ->
      Some (int_of_float f)
  | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None
let to_list_opt = function List vs -> Some vs | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool a, Bool b -> a = b
  | Int a, Int b -> a = b
  | Float a, Float b ->
      Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)
  | String a, String b -> String.equal a b
  | List a, List b -> List.length a = List.length b && List.for_all2 equal a b
  | Obj a, Obj b ->
      List.length a = List.length b
      && List.for_all2
           (fun (ka, va) (kb, vb) -> String.equal ka kb && equal va vb)
           a b
  | _ -> false
