(** Leveled diagnostic logger for the whole toolchain.

    One process-wide level; messages below it are dropped before
    formatting work happens.  The default sink writes one line per
    message to stderr ([psaflow[level] message]), so CLI product output
    on stdout is never interleaved with diagnostics.

    Controlled three ways, in increasing precedence: the [PSAFLOW_LOG]
    environment variable at startup ([quiet]/[error]/[warn]/[info]/
    [debug]), {!set_level} (the CLI's [--verbose]/[--quiet] flags), and
    a custom {!set_sink} for tests. *)

type level = Quiet | Error | Warn | Info | Debug

let severity = function
  | Quiet -> 0
  | Error -> 1
  | Warn -> 2
  | Info -> 3
  | Debug -> 4

let to_string = function
  | Quiet -> "quiet"
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"
  | Debug -> "debug"

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "quiet" | "none" | "off" -> Some Quiet
  | "error" -> Some Error
  | "warn" | "warning" -> Some Warn
  | "info" -> Some Info
  | "debug" -> Some Debug
  | _ -> None

let default_level () =
  match Option.bind (Sys.getenv_opt "PSAFLOW_LOG") of_string with
  | Some l -> l
  | None -> Warn

let current = ref (default_level ())
let set_level l = current := l
let level () = !current

(** Would a message at [l] be emitted right now? *)
let enabled l = severity l <= severity !current && l <> Quiet

let default_sink ~level msg =
  prerr_endline (Printf.sprintf "psaflow[%s] %s" (to_string level) msg)

let sink = ref default_sink

(** Replace the output sink (tests); {!set_sink} [default_sink] restores
    stderr output. *)
let set_sink f = sink := f

let logf lvl fmt =
  Printf.ksprintf (fun m -> if enabled lvl then !sink ~level:lvl m) fmt

let errorf fmt = logf Error fmt
let warnf fmt = logf Warn fmt
let infof fmt = logf Info fmt
let debugf fmt = logf Debug fmt
