(** Attribute values attached to trace spans, provenance records and log
    lines.  A tiny closed universe keeps the observability layer
    stdlib-only: richer consumers (the service's JSON module) convert
    these into their own value types. *)

type value =
  | Bool of bool
  | Int of int
  | Float of float
  | String of string

(** Human-oriented rendering (log lines, [psaflow explain]). *)
let to_display = function
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.6g" f
  | String s -> s

(* Shortest float representation that round-trips, always re-parseable
   as a JSON number.  Non-finite floats have no JSON representation and
   are emitted as strings. *)
let float_repr f =
  let shortest =
    let s15 = Printf.sprintf "%.15g" f in
    if float_of_string s15 = f then s15
    else
      let s16 = Printf.sprintf "%.16g" f in
      if float_of_string s16 = f then s16 else Printf.sprintf "%.17g" f
  in
  if
    String.exists (fun c -> c = '.' || c = 'e' || c = 'E' || c = 'n') shortest
  then shortest
  else shortest ^ ".0"

let escape_json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(** One value as a JSON token. *)
let to_json_token = function
  | Bool b -> if b then "true" else "false"
  | Int i -> string_of_int i
  | Float f when Float.is_finite f -> float_repr f
  | Float f -> escape_json_string (Printf.sprintf "%h" f)
  | String s -> escape_json_string s

(** A [(key, value)] list as a JSON object. *)
let list_to_json_object kvs =
  let buf = Buffer.create 64 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (escape_json_string k);
      Buffer.add_char buf ':';
      Buffer.add_string buf (to_json_token v))
    kvs;
  Buffer.add_char buf '}';
  Buffer.contents buf
