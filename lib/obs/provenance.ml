(** Decision provenance: why a branch point chose the path(s) it did.

    Every branch point records one {!decision} into the flow context —
    which strategy fired, what it selected, and the analysis evidence
    it looked at (data-transfer vs CPU time, arithmetic intensity,
    parallelism facts).  [psaflow explain] renders these; the service
    surfaces them as the [explain] field of job results, so every
    generated design answers "why this target?". *)

type decision = {
  branch : string;  (** branch point name, e.g. "A" *)
  strategy : string;  (** "fig3", "model_perf", "uninformed", ... *)
  selected : string list;  (** chosen paths; [[]] means the flow stopped *)
  reason : string option;  (** stop reason, when [selected = []] *)
  evidence : (string * Attr.value) list;  (** the facts the strategy saw *)
}

let selection_to_string d =
  match (d.selected, d.reason) with
  | [], Some r -> Printf.sprintf "stop (%s)" r
  | [], None -> "stop"
  | ps, _ -> String.concat ", " ps

(** One decision as an indented paragraph: header line plus one
    [key = value] line per piece of evidence. *)
let render (d : decision) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "branch %s [%s]: selected %s\n" d.branch d.strategy
       (selection_to_string d));
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf
        (Printf.sprintf "  %-24s = %s\n" k (Attr.to_display v)))
    d.evidence;
  Buffer.contents buf

let render_all ds = String.concat "" (List.map render ds)
