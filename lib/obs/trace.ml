(** Span tracer: nested, attributed spans over the whole flow engine,
    exported as Chrome trace-event JSON ([chrome://tracing] /
    [ui.perfetto.dev] load it directly).

    Disabled by default; the fast path of every probe is one atomic
    load, so instrumentation left in hot code (interpreter runs, DSE
    candidates) costs nothing when no trace is being recorded.

    Recording is mutex-guarded and domain-safe: spans carry the id of
    the domain (or, with {!set_tid_provider}, the systhread) that opened
    them, and nesting is tracked per tid, so pool workers produce
    correctly nested per-track spans.  Each span records two kinds of
    time: wall-clock from the installed {!set_clock} (default
    [Sys.time], processor seconds — the CLI and daemon install
    [Unix.gettimeofday]), and a pair of global sequence numbers taken at
    open and close.  The sequence numbers drive the [~normalize:true]
    export, which is byte-deterministic for a deterministic execution
    (e.g. with [PSAFLOW_JOBS=1]) regardless of timer resolution.

    Independently of the global recording, a thread can open a
    {e request recording} ({!request_begin} / {!request_end}): every
    span and instant the thread emits while the recording is open is
    captured into a private buffer with its own sequence numbers and
    epoch, regardless of whether global tracing is enabled.  The daemon
    uses this to capture a complete trace of each sampled or slow job
    without ever touching the global tracer; the fast path grows by one
    atomic load.  A request recording only sees the opening thread's
    spans — work fanned out to pool domains mid-request lands on other
    tids and is not captured (the service executes one job per worker
    domain, so a job's own spans all share its tid). *)

type kind = Span | Instant

type span = {
  sp_name : string;
  sp_cat : string;
  sp_tid : int;
  sp_kind : kind;
  sp_begin : int;  (** global sequence number at open *)
  mutable sp_end : int;  (** sequence number at close; [-1] while open *)
  sp_ts : float;  (** seconds since {!start}, from the installed clock *)
  mutable sp_dur : float;
  mutable sp_args : (string * Attr.value) list;
}

let lock = Mutex.create ()
let enabled_flag = Atomic.make false
let events : span list ref = ref []  (* reverse open order *)
let seq = ref 0
let stacks : (int, span list) Hashtbl.t = Hashtbl.create 8
let clock = ref Sys.time
let epoch = ref 0.0
let default_tid () = (Domain.self () :> int)
let tid_provider = ref default_tid

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(** Install the wall-clock source (e.g. [Unix.gettimeofday]; the
    observability library itself is stdlib-only and defaults to
    [Sys.time]). *)
let set_clock f = clock := f

(** Install the track-id source.  The default distinguishes domains;
    the service daemon installs a provider that also distinguishes
    systhreads, so concurrent jobs land on separate tracks. *)
let set_tid_provider f = tid_provider := f

let is_enabled () = Atomic.get enabled_flag

(* Request recordings: per-tid private span buffers, keyed by the tid
   that opened them.  [active_requests] mirrors the table size so the
   disabled-everything fast path stays two atomic loads with no lock. *)
type recording = {
  mutable rq_events : span list;  (** reverse open order *)
  mutable rq_stack : span list;
  mutable rq_seq : int;
  rq_epoch : float;
}

let requests : (int, recording) Hashtbl.t = Hashtbl.create 8
let active_requests = Atomic.make 0

(** Drop any previous recording and start a new one. *)
let start () =
  with_lock (fun () ->
      events := [];
      seq := 0;
      Hashtbl.reset stacks;
      epoch := !clock ());
  Atomic.set enabled_flag true

(** Stop recording (the events stay available for {!export}). *)
let stop () = Atomic.set enabled_flag false

let push_locked tid sp =
  events := sp :: !events;
  let st = Option.value ~default:[] (Hashtbl.find_opt stacks tid) in
  Hashtbl.replace stacks tid (sp :: st)

let pop_locked tid sp =
  match Hashtbl.find_opt stacks tid with
  | Some (top :: rest) when top == sp -> Hashtbl.replace stacks tid rest
  | Some st -> Hashtbl.replace stacks tid (List.filter (fun s -> s != sp) st)
  | None -> ()

let make_span ~name ~cat ~tid ~kind ~sp_begin ~sp_end ~ts ~args =
  {
    sp_name = name;
    sp_cat = cat;
    sp_tid = tid;
    sp_kind = kind;
    sp_begin;
    sp_end;
    sp_ts = ts;
    sp_dur = 0.0;
    sp_args = args;
  }

(** Run [f] inside a span.  When neither global tracing nor a request
    recording is active this is just [f ()].  The span closes even if
    [f] raises.  When both sinks are active the span is recorded into
    each with its own sequence numbers (the two recordings stay
    independently deterministic). *)
let with_span ?(cat = "flow") ?(args = []) name f =
  if not (is_enabled () || Atomic.get active_requests > 0) then f ()
  else begin
    let tid = !tid_provider () in
    let opened =
      with_lock (fun () ->
          let g =
            if Atomic.get enabled_flag then begin
              incr seq;
              let sp =
                make_span ~name ~cat ~tid ~kind:Span ~sp_begin:!seq ~sp_end:(-1)
                  ~ts:(!clock () -. !epoch) ~args
              in
              push_locked tid sp;
              Some sp
            end
            else None
          in
          let r =
            match Hashtbl.find_opt requests tid with
            | None -> None
            | Some rq ->
                rq.rq_seq <- rq.rq_seq + 1;
                let sp =
                  make_span ~name ~cat ~tid ~kind:Span ~sp_begin:rq.rq_seq
                    ~sp_end:(-1)
                    ~ts:(!clock () -. rq.rq_epoch)
                    ~args
                in
                rq.rq_events <- sp :: rq.rq_events;
                rq.rq_stack <- sp :: rq.rq_stack;
                Some (rq, sp)
          in
          (g, r))
    in
    match opened with
    | None, None -> f ()  (* raced with stop/request_end: no sink *)
    | g, r ->
        Fun.protect
          ~finally:(fun () ->
            with_lock (fun () ->
                (match g with
                | Some sp ->
                    incr seq;
                    sp.sp_end <- !seq;
                    sp.sp_dur <- !clock () -. !epoch -. sp.sp_ts;
                    pop_locked tid sp
                | None -> ());
                match r with
                | Some (rq, sp) ->
                    rq.rq_seq <- rq.rq_seq + 1;
                    sp.sp_end <- rq.rq_seq;
                    sp.sp_dur <- !clock () -. rq.rq_epoch -. sp.sp_ts;
                    (match rq.rq_stack with
                    | top :: rest when top == sp -> rq.rq_stack <- rest
                    | st -> rq.rq_stack <- List.filter (fun s -> s != sp) st)
                | None -> ()))
          f
  end

(** Append attributes to the innermost open span of the calling
    domain/thread (in the global recording and the thread's request
    recording alike); no-op when no span is open. *)
let add_args kvs =
  if (is_enabled () || Atomic.get active_requests > 0) && kvs <> [] then
    let tid = !tid_provider () in
    with_lock (fun () ->
        (match Hashtbl.find_opt stacks tid with
        | Some (top :: _) when is_enabled () ->
            top.sp_args <- top.sp_args @ kvs
        | _ -> ());
        match Hashtbl.find_opt requests tid with
        | Some { rq_stack = top :: _; _ } -> top.sp_args <- top.sp_args @ kvs
        | _ -> ())

(** A zero-duration marker event (job lifecycle transitions, etc.). *)
let instant ?(cat = "flow") ?(args = []) name =
  if is_enabled () || Atomic.get active_requests > 0 then
    let tid = !tid_provider () in
    with_lock (fun () ->
        if Atomic.get enabled_flag then begin
          incr seq;
          events :=
            make_span ~name ~cat ~tid ~kind:Instant ~sp_begin:!seq ~sp_end:!seq
              ~ts:(!clock () -. !epoch) ~args
            :: !events
        end;
        match Hashtbl.find_opt requests tid with
        | Some rq ->
            rq.rq_seq <- rq.rq_seq + 1;
            rq.rq_events <-
              make_span ~name ~cat ~tid ~kind:Instant ~sp_begin:rq.rq_seq
                ~sp_end:rq.rq_seq
                ~ts:(!clock () -. rq.rq_epoch)
                ~args
              :: rq.rq_events
        | None -> ())

(* ------------------------------------------------------------------ *)
(* Request recordings                                                  *)
(* ------------------------------------------------------------------ *)

(** Open a request recording bound to the calling thread.  Every span
    and instant this thread emits until {!request_end} is captured,
    independent of the global tracer.  A second [request_begin] on the
    same thread discards the first recording. *)
let request_begin () =
  let tid = !tid_provider () in
  with_lock (fun () ->
      if not (Hashtbl.mem requests tid) then Atomic.incr active_requests;
      Hashtbl.replace requests tid
        { rq_events = []; rq_stack = []; rq_seq = 0; rq_epoch = !clock () })

(** Close the calling thread's request recording and return its
    completed spans in open order (still-open spans are dropped).
    Returns [[]] when no recording is open. *)
let request_end () =
  let tid = !tid_provider () in
  with_lock (fun () ->
      match Hashtbl.find_opt requests tid with
      | None -> []
      | Some rq ->
          Hashtbl.remove requests tid;
          Atomic.decr active_requests;
          List.rev (List.filter (fun s -> s.sp_end >= 0) rq.rq_events))

(** Closed spans and instants of the current recording, in open order.
    Spans still open (e.g. when called mid-trace) are excluded. *)
let completed_spans () =
  with_lock (fun () ->
      List.rev (List.filter (fun s -> s.sp_end >= 0) !events))

(** Number of completed spans matching [cat] (and [name], if given). *)
let count ?name ~cat () =
  List.length
    (List.filter
       (fun s ->
         s.sp_cat = cat
         && match name with None -> true | Some n -> s.sp_name = n)
       (completed_spans ()))

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export                                           *)
(* ------------------------------------------------------------------ *)

let micros f = f *. 1e6

(** An explicit span list (e.g. from {!request_end}) as a Chrome
    trace-event JSON document.  Events appear in span-open order.  With
    [~normalize:true], timestamps and durations are replaced by the
    recording's open/close sequence numbers (one tick per event
    boundary): the output depends only on the order of instrumented
    operations, so a deterministic execution exports byte-identical
    documents on every run. *)
let export_spans ?(normalize = false) spans =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  List.iteri
    (fun i sp ->
      if i > 0 then Buffer.add_string buf ",\n";
      let ts, dur =
        if normalize then
          (float_of_int sp.sp_begin, float_of_int (sp.sp_end - sp.sp_begin))
        else (micros sp.sp_ts, micros sp.sp_dur)
      in
      Buffer.add_string buf "{\"name\":";
      Buffer.add_string buf (Attr.escape_json_string sp.sp_name);
      Buffer.add_string buf ",\"cat\":";
      Buffer.add_string buf (Attr.escape_json_string sp.sp_cat);
      Buffer.add_string buf
        (match sp.sp_kind with
        | Span -> ",\"ph\":\"X\""
        | Instant -> ",\"ph\":\"i\",\"s\":\"t\"");
      Buffer.add_string buf (Printf.sprintf ",\"pid\":1,\"tid\":%d" sp.sp_tid);
      Buffer.add_string buf (Printf.sprintf ",\"ts\":%.3f" ts);
      (match sp.sp_kind with
      | Span -> Buffer.add_string buf (Printf.sprintf ",\"dur\":%.3f" dur)
      | Instant -> ());
      if sp.sp_args <> [] then begin
        Buffer.add_string buf ",\"args\":";
        Buffer.add_string buf (Attr.list_to_json_object sp.sp_args)
      end;
      Buffer.add_char buf '}')
    spans;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf

(** The global recording as a Chrome trace-event JSON document. *)
let export ?normalize () = export_spans ?normalize (completed_spans ())
