(** Unified metrics registry: named counters, gauges and histograms.

    Promoted out of the service layer so the flow engine itself can
    register sources (profile-cache hits/misses/evictions, pool
    activity, interpreter virtual cycles, DSE candidates); the daemon's
    [svc-metrics] and [bench/main.exe perf] both read the same
    process-wide {!global} registry.  Libraries that need their own
    isolated registry (the daemon's per-server request counters, tests)
    use {!create}.

    Histograms are streaming log-bucketed sketches ({!Hist}): constant
    memory regardless of observation count, exact count/sum/min/max,
    percentiles answered from geometric bucket midpoints with bounded
    relative error, and lossless merging of independently collected
    histograms (load-generator threads, scheduler domains, store
    shards).  Percentile queries are total: empty and single-sample
    histograms answer without raising and never produce NaN, and NaN
    observations are dropped at the door rather than poisoning the
    summary.  All registry operations are mutex-guarded; recording is
    cheap enough for per-request and per-candidate use. *)

(** Read-only histogram summary.  An empty histogram is all zeros (not
    infinities), so any serialization of it stays finite. *)
type summary = {
  s_count : int;
  s_sum : float;
  s_mean : float;
  s_min : float;
  s_max : float;
  s_p50 : float;
  s_p90 : float;
  s_p99 : float;
}

let empty_summary =
  {
    s_count = 0;
    s_sum = 0.0;
    s_mean = 0.0;
    s_min = 0.0;
    s_max = 0.0;
    s_p50 = 0.0;
    s_p90 = 0.0;
    s_p99 = 0.0;
  }

(** Streaming log-bucketed histogram.

    Values are binned by [floor (log_gamma (v / vmin))] with
    [gamma = 1.08], so every bucket spans an 8% relative range and a
    percentile answered from a bucket's geometric midpoint is within a
    factor [sqrt gamma] (~4%) of every sample in that bucket.  The
    fixed bucket array covers [vmin, vmin * gamma^n_buckets) —
    about [1e-9, 2.5e12) — which comfortably spans nanoseconds to
    half-hours when observing seconds, or sub-microsecond to a month
    when observing milliseconds.  Values at or below [vmin] (including
    zero and negatives) land in a dedicated underflow bucket
    represented by the exact minimum; values beyond the top land in the
    last bucket, clamped to the exact maximum.

    A histogram is a plain unsynchronised value: each thread observes
    into its own and the results {!merge} losslessly, or a shared one
    lives behind a registry's mutex. *)
module Hist = struct
  let gamma = 1.08
  let vmin = 1e-9
  let n_buckets = 640
  let log_gamma = log gamma

  type t = {
    mutable count : int;
    mutable sum : float;
    mutable min_v : float;
    mutable max_v : float;
    mutable underflow : int;  (** observations <= vmin (incl. <= 0) *)
    buckets : int array;
  }

  let create () =
    {
      count = 0;
      sum = 0.0;
      min_v = infinity;
      max_v = neg_infinity;
      underflow = 0;
      buckets = Array.make n_buckets 0;
    }

  let bucket_of v =
    let i = int_of_float (floor (log (v /. vmin) /. log_gamma)) in
    if i < 0 then 0 else if i >= n_buckets then n_buckets - 1 else i

  let observe h v =
    (* a NaN observation would defeat min/max/percentiles for good *)
    if not (Float.is_nan v) then begin
      h.count <- h.count + 1;
      h.sum <- h.sum +. v;
      if v < h.min_v then h.min_v <- v;
      if v > h.max_v then h.max_v <- v;
      if v <= vmin then h.underflow <- h.underflow + 1
      else h.buckets.(bucket_of v) <- h.buckets.(bucket_of v) + 1
    end

  (** Fold [src] into [into].  Exact: the merged histogram is
      indistinguishable from one that observed both input streams. *)
  let merge ~into src =
    into.count <- into.count + src.count;
    into.sum <- into.sum +. src.sum;
    if src.min_v < into.min_v then into.min_v <- src.min_v;
    if src.max_v > into.max_v then into.max_v <- src.max_v;
    into.underflow <- into.underflow + src.underflow;
    for i = 0 to n_buckets - 1 do
      into.buckets.(i) <- into.buckets.(i) + src.buckets.(i)
    done

  (* Nearest-rank percentile: walk the cumulative counts to the bucket
     holding the rank-th observation and answer its geometric midpoint,
     clamped into [min_v, max_v] so the sketch never reports a value
     outside the observed range.  Total: an empty histogram answers
     0. *)
  let percentile h p =
    if h.count = 0 then 0.0
    else begin
      let rank =
        let r = int_of_float (ceil (p /. 100.0 *. float_of_int h.count)) in
        if r < 1 then 1 else if r > h.count then h.count else r
      in
      if rank <= h.underflow then h.min_v
      else begin
        let seen = ref h.underflow in
        let idx = ref (n_buckets - 1) in
        (try
           for i = 0 to n_buckets - 1 do
             seen := !seen + h.buckets.(i);
             if !seen >= rank then begin
               idx := i;
               raise Exit
             end
           done
         with Exit -> ());
        let mid = vmin *. (gamma ** (float_of_int !idx +. 0.5)) in
        Float.max h.min_v (Float.min h.max_v mid)
      end
    end

  let summary h =
    if h.count = 0 then empty_summary
    else
      {
        s_count = h.count;
        s_sum = h.sum;
        s_mean = h.sum /. float_of_int h.count;
        s_min = h.min_v;
        s_max = h.max_v;
        s_p50 = percentile h 50.0;
        s_p90 = percentile h 90.0;
        s_p99 = percentile h 99.0;
      }
end

type metric =
  | MCounter of int ref
  | MGauge of float ref
  | MHistogram of Hist.t

type t = {
  lock : Mutex.t;
  table : (string, metric) Hashtbl.t;
  mutable order : string list;  (** registration order, reversed *)
}

let create () = { lock = Mutex.create (); table = Hashtbl.create 32; order = [] }

(** The process-wide registry every engine-side source records into. *)
let global = create ()

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let get_or_register t name make =
  match Hashtbl.find_opt t.table name with
  | Some m -> m
  | None ->
      let m = make () in
      Hashtbl.add t.table name m;
      t.order <- name :: t.order;
      m

let incr ?(by = 1) t name =
  with_lock t (fun () ->
      match get_or_register t name (fun () -> MCounter (ref 0)) with
      | MCounter r -> r := !r + by
      | _ -> invalid_arg (name ^ " is not a counter"))

let set_gauge t name v =
  with_lock t (fun () ->
      match get_or_register t name (fun () -> MGauge (ref 0.0)) with
      | MGauge r -> r := v
      | _ -> invalid_arg (name ^ " is not a gauge"))

let observe t name v =
  (* a lone NaN must not even register the histogram: dropping it at
     the door keeps [histogram_summary] None until a real value lands *)
  if not (Float.is_nan v) then
    with_lock t (fun () ->
        match get_or_register t name (fun () -> MHistogram (Hist.create ())) with
        | MHistogram h -> Hist.observe h v
        | _ -> invalid_arg (name ^ " is not a histogram"))

(** Fold an independently collected histogram into the registry's
    histogram [name] (scheduler domains and store shards merge their
    local sketches through this). *)
let observe_hist t name src =
  with_lock t (fun () ->
      match get_or_register t name (fun () -> MHistogram (Hist.create ())) with
      | MHistogram h -> Hist.merge ~into:h src
      | _ -> invalid_arg (name ^ " is not a histogram"))

let counter_value t name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table name with
      | Some (MCounter r) -> !r
      | _ -> 0)

let gauge_value t name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table name with
      | Some (MGauge r) -> !r
      | _ -> 0.0)

(** Summary of a histogram; [None] when no such histogram exists. *)
let histogram_summary t name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table name with
      | Some (MHistogram h) -> Some (Hist.summary h)
      | _ -> None)

(** One registered metric's current value. *)
type snap = Counter of int | Gauge of float | Histogram of summary

(** Every metric in registration order. *)
let snapshot t : (string * snap) list =
  with_lock t (fun () ->
      List.rev_map
        (fun name ->
          let v =
            match Hashtbl.find t.table name with
            | MCounter r -> Counter !r
            | MGauge r -> Gauge !r
            | MHistogram h -> Histogram (Hist.summary h)
          in
          (name, v))
        t.order)

(** Drop every metric (benchmarks isolate measurement phases with
    this). *)
let reset t =
  with_lock t (fun () ->
      Hashtbl.reset t.table;
      t.order <- [])

let summary_json (s : summary) : Json.t =
  let open Json in
  if s.s_count = 0 then Obj [ ("count", Int 0) ]
  else
    Obj
      [
        ("count", Int s.s_count);
        ("sum", Float s.s_sum);
        ("mean", Float s.s_mean);
        ("min", Float s.s_min);
        ("max", Float s.s_max);
        ("p50", Float s.s_p50);
        ("p90", Float s.s_p90);
        ("p99", Float s.s_p99);
      ]

(** One object with a field per metric, in registration order.  Extra
    [(name, value)] pairs can be appended by the caller (the server adds
    store/scheduler snapshots this registry does not own). *)
let to_json ?(extra = []) t : Json.t =
  let fields =
    List.map
      (fun (name, snap) ->
        let v =
          match snap with
          | Counter n -> Json.Int n
          | Gauge g -> Json.Float g
          | Histogram s -> summary_json s
        in
        (name, v))
      (snapshot t)
  in
  Json.Obj (fields @ extra)
