(** Unified metrics registry: named counters, gauges and histograms.

    Promoted out of the service layer so the flow engine itself can
    register sources (profile-cache hits/misses/evictions, pool
    activity, interpreter virtual cycles, DSE candidates); the daemon's
    [svc-metrics] and [bench/main.exe perf] both read the same
    process-wide {!global} registry.  Libraries that need their own
    isolated registry (the daemon's per-server request counters, tests)
    use {!create}.

    Histograms keep full-precision summary statistics (count/sum/min/
    max) plus a bounded ring of recent observations from which
    percentiles are computed (nearest-rank over the retained window).
    Percentile queries are total: empty and single-sample histograms
    answer without raising and never produce NaN, and NaN observations
    are dropped at the door rather than poisoning the summary.  All
    operations are mutex-guarded; recording is cheap enough for
    per-request and per-candidate use. *)

type histogram = {
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  window : float array;  (** ring buffer of recent observations *)
  mutable filled : int;  (** number of valid cells in [window] *)
  mutable next : int;  (** ring write cursor *)
}

type metric =
  | MCounter of int ref
  | MGauge of float ref
  | MHistogram of histogram

type t = {
  lock : Mutex.t;
  table : (string, metric) Hashtbl.t;
  mutable order : string list;  (** registration order, reversed *)
}

let window_size = 1024

let create () = { lock = Mutex.create (); table = Hashtbl.create 32; order = [] }

(** The process-wide registry every engine-side source records into. *)
let global = create ()

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let get_or_register t name make =
  match Hashtbl.find_opt t.table name with
  | Some m -> m
  | None ->
      let m = make () in
      Hashtbl.add t.table name m;
      t.order <- name :: t.order;
      m

let incr ?(by = 1) t name =
  with_lock t (fun () ->
      match get_or_register t name (fun () -> MCounter (ref 0)) with
      | MCounter r -> r := !r + by
      | _ -> invalid_arg (name ^ " is not a counter"))

let set_gauge t name v =
  with_lock t (fun () ->
      match get_or_register t name (fun () -> MGauge (ref 0.0)) with
      | MGauge r -> r := v
      | _ -> invalid_arg (name ^ " is not a gauge"))

let observe t name v =
  (* a NaN observation would defeat min/max/percentiles for good *)
  if not (Float.is_nan v) then
    with_lock t (fun () ->
        match
          get_or_register t name (fun () ->
              MHistogram
                {
                  count = 0;
                  sum = 0.0;
                  min_v = infinity;
                  max_v = neg_infinity;
                  window = Array.make window_size 0.0;
                  filled = 0;
                  next = 0;
                })
        with
        | MHistogram h ->
            h.count <- h.count + 1;
            h.sum <- h.sum +. v;
            if v < h.min_v then h.min_v <- v;
            if v > h.max_v then h.max_v <- v;
            h.window.(h.next) <- v;
            h.next <- (h.next + 1) mod window_size;
            if h.filled < window_size then h.filled <- h.filled + 1
        | _ -> invalid_arg (name ^ " is not a histogram"))

let counter_value t name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table name with
      | Some (MCounter r) -> !r
      | _ -> 0)

let gauge_value t name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table name with
      | Some (MGauge r) -> !r
      | _ -> 0.0)

(* Nearest-rank percentile over the retained window.  Total: an empty
   window answers 0. *)
let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

(** Read-only histogram summary.  An empty histogram is all zeros (not
    infinities), so any serialization of it stays finite. *)
type summary = {
  s_count : int;
  s_sum : float;
  s_mean : float;
  s_min : float;
  s_max : float;
  s_p50 : float;
  s_p90 : float;
  s_p99 : float;
}

let empty_summary =
  {
    s_count = 0;
    s_sum = 0.0;
    s_mean = 0.0;
    s_min = 0.0;
    s_max = 0.0;
    s_p50 = 0.0;
    s_p90 = 0.0;
    s_p99 = 0.0;
  }

let summary_of_histogram_locked (h : histogram) =
  if h.count = 0 then empty_summary
  else begin
    let sorted = Array.sub h.window 0 h.filled in
    Array.sort compare sorted;
    {
      s_count = h.count;
      s_sum = h.sum;
      s_mean = h.sum /. float_of_int h.count;
      s_min = h.min_v;
      s_max = h.max_v;
      s_p50 = percentile sorted 50.0;
      s_p90 = percentile sorted 90.0;
      s_p99 = percentile sorted 99.0;
    }
  end

(** Summary of a histogram; [None] when no such histogram exists. *)
let histogram_summary t name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table name with
      | Some (MHistogram h) -> Some (summary_of_histogram_locked h)
      | _ -> None)

(** One registered metric's current value. *)
type snap = Counter of int | Gauge of float | Histogram of summary

(** Every metric in registration order. *)
let snapshot t : (string * snap) list =
  with_lock t (fun () ->
      List.rev_map
        (fun name ->
          let v =
            match Hashtbl.find t.table name with
            | MCounter r -> Counter !r
            | MGauge r -> Gauge !r
            | MHistogram h -> Histogram (summary_of_histogram_locked h)
          in
          (name, v))
        t.order)

(** Drop every metric (benchmarks isolate measurement phases with
    this). *)
let reset t =
  with_lock t (fun () ->
      Hashtbl.reset t.table;
      t.order <- [])
