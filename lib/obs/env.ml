(** Hardened environment-knob parsing.

    The engine's tuning knobs ([PSAFLOW_JOBS], [PSAFLOW_CACHE_CAP],
    [PSAFLOW_SERVICE_WORKERS], ...) are positive integers.  Reading them
    with a bare [int_of_string_opt] silently accepted zero and negative
    values — each call site then "handled" them differently (ignore,
    crash in [Scheduler.create], allocate a zero-capacity cache).  This
    module gives every knob the same contract: non-integers are ignored
    with a warning, below-minimum values are clamped to the minimum with
    a warning, and each distinct complaint is logged once per process
    through {!Log} no matter how often the knob is re-read. *)

let warned : (string, unit) Hashtbl.t = Hashtbl.create 8
let warned_mutex = Mutex.create ()

let warn_once key fmt =
  let fresh =
    Mutex.lock warned_mutex;
    let fresh = not (Hashtbl.mem warned key) in
    if fresh then Hashtbl.replace warned key ();
    Mutex.unlock warned_mutex;
    fresh
  in
  if fresh then Log.warnf fmt else Printf.ifprintf () fmt

(** Forget which warnings were already emitted (tests). *)
let reset_warnings () =
  Mutex.lock warned_mutex;
  Hashtbl.reset warned;
  Mutex.unlock warned_mutex

(** Read integer knob [name].  [None] when unset or unparsable (with a
    once-per-process warning for the latter); values below [min] clamp
    to [min] with a once-per-process warning. *)
let int_opt ~name ~min:lo () =
  match Sys.getenv_opt name with
  | None -> None
  | Some raw -> (
      match int_of_string_opt (String.trim raw) with
      | None ->
          warn_once (name ^ "#parse") "%s=%S is not an integer; ignoring" name
            raw;
          None
      | Some v when v < lo ->
          warn_once (name ^ "#clamp") "%s=%d is below the minimum of %d; using %d"
            name v lo lo;
          Some lo
      | Some v -> Some v)

(** Like {!int_opt} with a [default] when the knob is unset or
    unparsable. *)
let int ~name ~default ~min () =
  match int_opt ~name ~min () with Some v -> v | None -> default

(** Read boolean kill-switch knob [name]: true iff the variable is set
    to ["1"], ["true"] or ["yes"] (the [PSAFLOW_NO_CACHE] convention,
    shared by [PSAFLOW_NO_OPT]).  Any other value — including empty —
    leaves the switch off, with a once-per-process warning so a typo'd
    [PSAFLOW_NO_OPT=on] does not silently run the optimizer. *)
let flag ~name () =
  match Sys.getenv_opt name with
  | None -> false
  | Some ("1" | "true" | "yes") -> true
  | Some raw ->
      warn_once (name ^ "#flag")
        "%s=%S is not one of 1/true/yes; treating the switch as off" name raw;
      false
