(** Domain-parallel work pool.

    A small work-queue [map] over OCaml 5 [Domain]s, used by the DSE
    candidate sweeps and the uninformed flow's branch fan-out.  No
    external dependencies.

    Sizing: the [PSAFLOW_JOBS] environment variable overrides the worker
    count; programmatic callers (benchmarks, tests) can force it through
    {!override}.  By default the pool uses
    [Domain.recommended_domain_count ()], capped at 8 — flow evaluation
    is memory-bandwidth-hungry and wider pools stop paying off.  With
    one job the pool degrades to a plain in-place [List.map], so
    sequential and parallel runs traverse items in the same order and
    produce identical result lists.

    Work items are claimed from a shared [Atomic] counter; results land
    in a pre-sized array, so the output order always matches the input
    order regardless of which domain ran which item.  The first
    exception raised by any item is re-raised in the caller (remaining
    items may still have been evaluated speculatively). *)

(** Forced worker count, taking precedence over [PSAFLOW_JOBS].
    [None] = auto. *)
let override : int option ref = ref None

(* Zero/negative values clamp to 1 (sequential) with a once-per-process
   warning instead of being silently ignored. *)
let env_jobs () = Flow_obs.Env.int_opt ~name:"PSAFLOW_JOBS" ~min:1 ()

(** The worker count a [map] will use right now. *)
let jobs () =
  match !override with
  | Some j -> max 1 j
  | None -> (
      match env_jobs () with
      | Some j -> j
      | None -> min 8 (Domain.recommended_domain_count ()))

exception Item_error of exn

(* ------------------------------------------------------------------ *)
(* Persistent worker sets                                              *)
(* ------------------------------------------------------------------ *)

(** A fixed set of long-lived worker domains, used by subsystems that
    keep workers blocked on a condition variable between jobs (the
    service scheduler) rather than fanning one batch out through
    {!map}.  The pool does not own a queue: the caller's [loop] is the
    entire worker body and is expected to block on the caller's own
    synchronisation until told to return.  [Mutex]/[Condition] are
    domain-safe, so the same drain discipline that worked across
    systhreads works across domains. *)
type workers = { domains : unit Domain.t array }

(** [spawn_workers n loop] starts [n] domains each running [loop i].
    An exception escaping [loop] is re-raised by {!join_workers}. *)
let spawn_workers n loop : workers =
  if n <= 0 then invalid_arg "Pool.spawn_workers: n must be positive";
  let m = Flow_obs.Metrics.global in
  Flow_obs.Metrics.incr ~by:n m "pool_worker_domains_spawned";
  { domains = Array.init n (fun i -> Domain.spawn (fun () -> loop i)) }

(** Join every worker domain.  The caller must already have arranged
    for each [loop] to return (drained queue, stop flag, ...);
    otherwise this blocks forever, exactly like [Thread.join] on a
    worker that never exits. *)
let join_workers (w : workers) = Array.iter Domain.join w.domains

let worker_count (w : workers) = Array.length w.domains

(** [map f xs]: like [List.map f xs], evaluated by {!jobs} domains.
    Result order matches input order; with one job this is exactly
    [List.map]. *)
let map ?jobs:j f xs =
  let nworkers = match j with Some n -> max 1 n | None -> jobs () in
  let items = Array.of_list xs in
  let n = Array.length items in
  let m = Flow_obs.Metrics.global in
  Flow_obs.Metrics.incr ~by:n m "pool_items";
  Flow_obs.Metrics.set_gauge m "pool_workers" (float_of_int nworkers);
  if nworkers <= 1 || n <= 1 then begin
    Flow_obs.Metrics.incr m "pool_sequential_maps";
    List.map f xs
  end
  else begin
    Flow_obs.Metrics.incr m "pool_parallel_maps";
    Flow_obs.Metrics.observe m "pool_map_width" (float_of_int n);
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n && Atomic.get failure = None then begin
          (try results.(i) <- Some (f items.(i))
           with e ->
             (* keep the first failure; losing a race is fine *)
             ignore (Atomic.compare_and_set failure None (Some e)));
          loop ()
        end
      in
      loop ()
    in
    let spawned =
      List.init (min nworkers n - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join spawned;
    (match Atomic.get failure with Some e -> raise e | None -> ());
    Array.to_list
      (Array.map
         (function Some r -> r | None -> raise (Item_error Not_found))
         results)
  end
