(** "OMP Num Threads DSE".

    Sweeps the OpenMP thread count (powers of two up to the core count)
    and keeps the fastest — the maximum available threads for the
    paper's embarrassingly parallel benchmarks, yielding the 28-30x
    Fig. 5 CPU bars. *)

type step = { threads : int; seconds : float; speedup : float }

type result = {
  design : Codegen.Design.t;  (** with the chosen thread count *)
  chosen_threads : int;
  steps : step list;
  decision : Flow_obs.Provenance.decision option;
      (** surrogate sweep provenance; [None] on exhaustive sweeps *)
}

(** Run the DSE for an OpenMP design on its CPU device. *)
val run : Codegen.Design.t -> Analysis.Features.t -> result
