(** GPU blocksize DSE ("GTX 1080 / RTX 2080 Blocksize DSE").

    Sweeps the launch blocksize over the architecturally valid range and
    keeps the value minimising modelled execution time.  The same kernel
    typically lands on different blocksizes per device because register
    files, SM counts and occupancy curves differ. *)

type step = {
  blocksize : int;
  occupancy : float;
  seconds : float;
  feasible : bool;
}

type result = {
  design : Codegen.Design.t;  (** with the chosen blocksize *)
  chosen_blocksize : int;
  steps : step list;
  decision : Flow_obs.Provenance.decision option;
      (** surrogate sweep provenance; [None] on exhaustive sweeps *)
}

(** The swept blocksizes (filtered to the device maximum at run time). *)
val candidate_blocksizes : int list

(** Run the DSE for a HIP design on its GPU device. *)
val run : Codegen.Design.t -> Analysis.Features.t -> result
