(** Memoized DSE sweep outcomes.

    A sweep's result is a pure function of the device spec, the
    candidate set and the analytic model inputs: the feature vector of
    {!Flow_surrogate.Featvec} is a verified superset of every device
    model's inputs, so (sweep name, device id, design name, base
    feature vector, candidate set) fully determines the chosen knob
    value, the step trajectory and the decision provenance — in every
    state of surrogate training, because guided sweeps reconstruct the
    exhaustive trajectory over authoritative values.  Budget or
    strategy variants of a request therefore replay sweeps without
    re-simulating.

    Only the knob choice, steps and decision are cached — never the
    design itself.  A hit re-applies the chosen knob to the *incoming*
    design with the same setter the sweep would have used, so the
    returned design is built from the caller's artifacts, not a
    previous request's.

    The caches follow the hierarchy rules ([PSAFLOW_NO_MEMO],
    [PSAFLOW_MEMO_CAP], [PSAFLOW_MEMO_SHARDS], tracer bypass, metrics
    under [memo_dse_*]).  A hit skips the analytic model calls and the
    surrogate observations of the sweep, so [dse_simulate_calls] and
    the surrogate training counters advance only on misses —
    harnesses that *measure* sweep cost (the perf bench's DSE section,
    the surrogate test-suite) disable the sweep memo via
    {!set_enabled} so their counter arithmetic keeps measuring the
    model, not the cache. *)

let switches : (bool -> unit) list ref = ref []
let clearers : (unit -> unit) list ref = ref []

(** Create one sweep cache and register it for {!set_enabled}/{!clear}. *)
let create ~name () =
  let c = Flow_memo.Cache.create ~name () in
  switches := Flow_memo.Cache.set_enabled c :: !switches;
  clearers := (fun () -> Flow_memo.Cache.clear c) :: !clearers;
  c

(** Enable or disable every sweep cache (bench and test harnesses that
    measure simulate-call counts turn them off). *)
let set_enabled b = List.iter (fun f -> f b) !switches

(** Drop all sweep entries. *)
let clear () = List.iter (fun f -> f ()) !clearers

(** Content key of one sweep request.  [candidates] is any exact
    printout of the candidate set (it is device-derived, but keying it
    explicitly keeps the entry safe against spec changes at runtime). *)
let key ~sweep ~(design : Codegen.Design.t) (features : Analysis.Features.t)
    ~candidates : string =
  let fv =
    Flow_surrogate.Featvec.extract ~design ~unroll:design.unroll_factor
      ~blocksize:design.blocksize ~threads:design.num_threads features
  in
  Printf.sprintf "%s:%s:%s:%s:surr=%b" sweep design.device_id design.name
    (Digest.to_hex
       (Digest.string (Flow_surrogate.Featvec.key fv ^ "|" ^ candidates)))
    (Flow_surrogate.Surrogate.enabled ())
