(** "Unroll Until Overmap" DSE — the meta-program of the paper's Fig. 2.

    Doubles the kernel's outer-loop unroll factor, reading the FPGA
    resource model's utilisation report after each step, until the device
    overmaps (> 90 %).  The last fitting design is kept; a design whose
    single-pipeline configuration already exceeds the device is
    unsynthesizable (the paper's Rush Larsen outcome). *)

type step = {
  factor : int;
  utilization : float;
  alm_util : float;
  dsp_util : float;
  overmapped : bool;  (** above the 90 % DSE cutoff *)
}

type result = {
  design : Codegen.Design.t;  (** annotated with the chosen factor *)
  chosen_factor : int;
  synthesizable : bool;
  steps : step list;  (** DSE trajectory, in exploration order *)
  decision : Flow_obs.Provenance.decision option;
      (** surrogate sweep provenance; [None] on exhaustive sweeps *)
}

(** Upper bound on explored factors (runaway guard). *)
val max_factor : int

(** Run the DSE for a oneAPI design on its FPGA device. *)
val run : Codegen.Design.t -> Analysis.Features.t -> result
