(** GPU blocksize DSE ("GTX 1080 Blocksize DSE" / "RTX 2080 Blocksize
    DSE").

    Sweeps the launch blocksize over the architecturally valid range and
    keeps the value minimising modelled execution time — the paper's goal
    of minimising latency and maximising occupancy per device.  The same
    kernel typically lands on different blocksizes per device because the
    register file, SM count and occupancy curves differ.

    When the surrogate is active the sweep is guided: candidates are
    scored by the learned model and the analytic GPU model runs only for
    the ranked top-k plus every candidate without a memo-exact
    prediction (see {!Threads_dse} for the identity argument). *)

module Surrogate = Flow_surrogate.Surrogate
module Featvec = Flow_surrogate.Featvec

type step = {
  blocksize : int;
  occupancy : float;
  seconds : float;
  feasible : bool;
}

type result = {
  design : Codegen.Design.t;  (** with the chosen blocksize *)
  chosen_blocksize : int;
  steps : step list;
  decision : Flow_obs.Provenance.decision option;
      (** surrogate sweep provenance; [None] on exhaustive sweeps *)
}

let candidate_blocksizes = [ 32; 64; 96; 128; 192; 256; 384; 512; 768; 1024 ]

let run_uncached (design : Codegen.Design.t) (features : Analysis.Features.t) :
    result =
  let gpu = Devices.Spec.find_gpu design.device_id in
  let candidates =
    List.filter (fun bs -> bs <= gpu.max_blocksize) candidate_blocksizes
  in
  let mname = "blocksize:" ^ design.device_id in
  let eval ?x bs =
    Flow_obs.Trace.with_span ~cat:"dse" "dse.blocksize_candidate"
      ~args:[ ("blocksize", Flow_obs.Attr.Int bs) ]
    @@ fun () ->
    let m = Flow_obs.Metrics.global in
    Flow_obs.Metrics.incr m "dse_candidates";
    Flow_obs.Metrics.incr m "dse_simulate_calls";
    let d = { design with Codegen.Design.blocksize = bs } in
    let r = Devices.Gpu_model.time gpu d features in
    if not r.feasible then Flow_obs.Metrics.incr m "dse_rejected";
    Flow_obs.Trace.add_args
      [
        ("seconds", Flow_obs.Attr.Float r.total);
        ("feasible", Flow_obs.Attr.Bool r.feasible);
      ];
    (match x with
    | Some x ->
        Surrogate.observe mname ~x
          ~y:(Surrogate.y_of_seconds r.total)
          ~payload:
            [| r.total; r.occupancy; (if r.feasible then 1.0 else 0.0) |]
    | None -> ());
    {
      blocksize = bs;
      occupancy = r.occupancy;
      seconds = r.total;
      feasible = r.feasible;
    }
  in
  let guided = Surrogate.active () in
  let steps, plan_info =
    if not guided then
      (* candidate evaluations are independent: sweep them on the pool
         (order-preserving, so the first-best tie-break is unchanged) *)
      (Pool.map (fun bs -> eval bs) candidates, None)
    else begin
      let cand = Array.of_list candidates in
      let xs =
        Array.map
          (fun bs ->
            Featvec.extract ~design ~unroll:design.unroll_factor ~blocksize:bs
              ~threads:design.num_threads features)
          cand
      in
      let preds = Array.map (Surrogate.predict mname) xs in
      let scored =
        Array.map
          (fun p ->
            ( p,
              match p with
              | Surrogate.Exact payload ->
                  if payload.(2) = 0.0 then infinity
                  else Surrogate.y_of_seconds payload.(0)
              | Surrogate.Estimate v -> v
              | Surrogate.Cold -> infinity ))
          preds
      in
      let k = Surrogate.topk () in
      let plan = Surrogate.plan ~k scored in
      if plan.Surrogate.fallback then
        Flow_obs.Metrics.incr Flow_obs.Metrics.global "surrogate_fallbacks";
      let steps =
        Pool.map
          (fun i ->
            if plan.Surrogate.simulate.(i) then eval ~x:xs.(i) cand.(i)
            else
              match preds.(i) with
              | Surrogate.Exact p ->
                  {
                    blocksize = cand.(i);
                    occupancy = p.(1);
                    seconds = p.(0);
                    feasible = p.(2) <> 0.0;
                  }
              | _ -> assert false)
          (List.init (Array.length cand) Fun.id)
      in
      (steps, Some (plan, cand))
    end
  in
  let best =
    List.fold_left
      (fun acc s ->
        match acc with
        | Some b when b.seconds <= s.seconds || not s.feasible -> Some b
        | _ -> if s.feasible then Some s else acc)
      None steps
  in
  let chosen =
    match best with Some s -> s.blocksize | None -> design.blocksize
  in
  (match (plan_info, best) with
  | Some (plan, cand), Some b ->
      let won = ref false in
      Array.iteri
        (fun i bs ->
          if bs = b.blocksize && plan.Surrogate.in_topk.(i) then won := true)
        cand;
      if !won then
        Flow_obs.Metrics.incr Flow_obs.Metrics.global "surrogate_hit_topk"
  | _ -> ());
  (* recorded whenever the knob is on — including traced runs, where the
     sweep itself stays exhaustive — so explain output depends only on
     configuration, never on tracing or model warmth *)
  let decision =
    if not (Surrogate.enabled ()) then None
    else
      Some
        (Surrogate.decision ~design_name:design.name ~sweep:"blocksize"
           ~device:design.device_id ~candidates:(List.length candidates)
           ~chosen:(Printf.sprintf "blocksize %d" chosen)
           ~evidence:
             (match best with
             | Some b ->
                 [
                   ("seconds", Flow_obs.Attr.Float b.seconds);
                   ("occupancy", Flow_obs.Attr.Float b.occupancy);
                 ]
             | None -> []))
  in
  {
    design = Codegen.Hip_gen.set_blocksize design chosen;
    chosen_blocksize = chosen;
    steps;
    decision;
  }

(* Sweep memo: knob choice, trajectory and provenance cached; the
   design is rebuilt from the incoming design with the same setter the
   sweep applies (see {!Sweep_memo}). *)
type cached = {
  c_blocksize : int;
  c_steps : step list;
  c_decision : Flow_obs.Provenance.decision option;
}

let cache : cached Flow_memo.Cache.t =
  Sweep_memo.create ~name:"dse_blocksize" ()

(** Run the DSE for [design] on its GPU device (memoized per sweep
    key — see {!Sweep_memo}). *)
let run (design : Codegen.Design.t) (features : Analysis.Features.t) : result =
  let gpu = Devices.Spec.find_gpu design.device_id in
  let candidates =
    List.filter (fun bs -> bs <= gpu.max_blocksize) candidate_blocksizes
  in
  let fresh = ref None in
  let e =
    Flow_memo.Cache.find_or_compute cache
      ~key:
        (Sweep_memo.key ~sweep:"blocksize" ~design features
           ~candidates:(String.concat "," (List.map string_of_int candidates)))
      (fun () ->
        let r = run_uncached design features in
        fresh := Some r;
        {
          c_blocksize = r.chosen_blocksize;
          c_steps = r.steps;
          c_decision = r.decision;
        })
  in
  match !fresh with
  | Some r -> r
  | None ->
      {
        design = Codegen.Hip_gen.set_blocksize design e.c_blocksize;
        chosen_blocksize = e.c_blocksize;
        steps = e.c_steps;
        decision = e.c_decision;
      }
