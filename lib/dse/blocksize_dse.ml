(** GPU blocksize DSE ("GTX 1080 Blocksize DSE" / "RTX 2080 Blocksize
    DSE").

    Sweeps the launch blocksize over the architecturally valid range and
    keeps the value minimising modelled execution time — the paper's goal
    of minimising latency and maximising occupancy per device.  The same
    kernel typically lands on different blocksizes per device because the
    register file, SM count and occupancy curves differ. *)

type step = {
  blocksize : int;
  occupancy : float;
  seconds : float;
  feasible : bool;
}

type result = {
  design : Codegen.Design.t;  (** with the chosen blocksize *)
  chosen_blocksize : int;
  steps : step list;
}

let candidate_blocksizes = [ 32; 64; 96; 128; 192; 256; 384; 512; 768; 1024 ]

(** Run the DSE for [design] on its GPU device. *)
let run (design : Codegen.Design.t) (features : Analysis.Features.t) : result =
  let gpu = Devices.Spec.find_gpu design.device_id in
  let steps =
    (* candidate evaluations are independent: sweep them on the pool
       (order-preserving, so the first-best tie-break is unchanged) *)
    Pool.map
      (fun bs ->
        Flow_obs.Trace.with_span ~cat:"dse" "dse.blocksize_candidate"
          ~args:[ ("blocksize", Flow_obs.Attr.Int bs) ]
        @@ fun () ->
        let m = Flow_obs.Metrics.global in
        Flow_obs.Metrics.incr m "dse_candidates";
        let d = { design with Codegen.Design.blocksize = bs } in
        let r = Devices.Gpu_model.time gpu d features in
        if not r.feasible then Flow_obs.Metrics.incr m "dse_rejected";
        Flow_obs.Trace.add_args
          [
            ("seconds", Flow_obs.Attr.Float r.total);
            ("feasible", Flow_obs.Attr.Bool r.feasible);
          ];
        {
          blocksize = bs;
          occupancy = r.occupancy;
          seconds = r.total;
          feasible = r.feasible;
        })
      (List.filter (fun bs -> bs <= gpu.max_blocksize) candidate_blocksizes)
  in
  let best =
    List.fold_left
      (fun acc s ->
        match acc with
        | Some b when b.seconds <= s.seconds || not s.feasible -> Some b
        | _ -> if s.feasible then Some s else acc)
      None steps
  in
  let chosen =
    match best with Some s -> s.blocksize | None -> design.blocksize
  in
  { design = Codegen.Hip_gen.set_blocksize design chosen;
    chosen_blocksize = chosen;
    steps }
