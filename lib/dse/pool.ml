(** Domain-parallel work pool.

    The implementation lives in {!Flow_par.Pool} since the interpreter's
    domain-sharded loop execution (which sits {e below} the DSE layer in
    the library graph) shares it.  This alias keeps the historical
    [Dse.Pool] path working for the candidate sweeps, the flow fan-out
    and every existing caller; [override] is the same mutable cell, so
    forcing a worker count through either path affects both. *)

include Flow_par.Pool
