(** "Unroll Until Overmap" DSE — the meta-program of the paper's Fig. 2.

    Iteratively doubles the kernel's outer-loop unroll factor, asking the
    FPGA resource model (standing in for the HLS high-level design
    report) for estimated utilisation after each step, until the device
    overmaps (> 90 %).  The last fitting design is kept; if even unroll 1
    overmaps, the design is unsynthesizable for this device — exactly the
    paper's Rush Larsen outcome.

    When the surrogate is active the speculative sweep is guided: the
    learned model ranks the candidate factors (largest predicted-fitting
    factor first — the predicted overmap boundary) and the analytic
    resource model runs only for the top-k plus every candidate without
    a memo-exact prediction.  The doubling walk is then reconstructed
    over authoritative values only, so the trajectory and the chosen
    factor are identical to the exhaustive sweep in every state of
    training. *)

module Surrogate = Flow_surrogate.Surrogate
module Featvec = Flow_surrogate.Featvec

type step = {
  factor : int;
  utilization : float;
  alm_util : float;
  dsp_util : float;
  overmapped : bool;
}

type result = {
  design : Codegen.Design.t;  (** annotated with the chosen factor *)
  chosen_factor : int;
  synthesizable : bool;
  steps : step list;  (** DSE trajectory, in exploration order *)
  decision : Flow_obs.Provenance.decision option;
      (** surrogate sweep provenance; [None] on exhaustive sweeps *)
}

let max_factor = 1 lsl 16

(* The doubling candidate ladder 1, 2, 4, ... up to one past
   [max_factor] — static, but part of the sweep-memo key. *)
let factors =
  let rec go n acc =
    if n > max_factor then List.rev (n :: acc) else go (n * 2) (n :: acc)
  in
  go 1 []

let run_uncached (design : Codegen.Design.t) (features : Analysis.Features.t) :
    result =
  let fpga = Devices.Spec.find_fpga design.device_id in
  let mname = "unroll:" ^ design.device_id in
  let eval ?x n =
    Flow_obs.Trace.with_span ~cat:"dse" "dse.unroll_candidate"
      ~args:[ ("factor", Flow_obs.Attr.Int n) ]
    @@ fun () ->
    let m = Flow_obs.Metrics.global in
    Flow_obs.Metrics.incr m "dse_candidates";
    Flow_obs.Metrics.incr m "dse_simulate_calls";
    let r = Devices.Fpga_model.resources fpga design features ~unroll:n in
    if r.overmapped then Flow_obs.Metrics.incr m "dse_rejected";
    Flow_obs.Trace.add_args
      [
        ("utilization", Flow_obs.Attr.Float r.utilization);
        ("overmapped", Flow_obs.Attr.Bool r.overmapped);
      ];
    (match x with
    | Some x ->
        Surrogate.observe mname ~x
          ~y:(Float.log1p (Float.max 0.0 r.utilization))
          ~payload:
            [|
              r.utilization;
              r.alm_util;
              r.dsp_util;
              (if r.overmapped then 1.0 else 0.0);
            |]
    | None -> ());
    {
      factor = n;
      utilization = r.utilization;
      alm_util = r.alm_util;
      dsp_util = r.dsp_util;
      overmapped = r.overmapped;
    }
  in
  (* Speculative sweep: every candidate factor is evaluated up front by
     the domain pool (the model is pure, so extra evaluations beyond the
     stopping point are unobservable), then the sequential
     doubling-until-overmap walk is reconstructed over the results.
     [chosen_factor] and [steps] are therefore bit-identical to the
     incremental exploration. *)
  let guided = Surrogate.active () in
  let evaluated, plan_info =
    if not guided then (Pool.map (fun n -> (n, eval n)) factors, None)
    else begin
      let cand = Array.of_list factors in
      let xs =
        Array.map
          (fun n ->
            Featvec.extract ~design ~unroll:n ~blocksize:design.blocksize
              ~threads:design.num_threads features)
          cand
      in
      let preds = Array.map (Surrogate.predict mname) xs in
      (* rank the largest factor predicted to fit first: the predicted
         overmap boundary is exactly where a fresh evaluation is most
         valuable *)
      let scored =
        Array.mapi
          (fun i p ->
            let fits_score fits =
              if fits then -.float_of_int cand.(i) else infinity
            in
            ( p,
              match p with
              | Surrogate.Exact payload -> fits_score (payload.(3) = 0.0)
              | Surrogate.Estimate v -> fits_score (Float.expm1 v <= 0.9)
              | Surrogate.Cold -> infinity ))
          preds
      in
      let k = Surrogate.topk () in
      let plan = Surrogate.plan ~k scored in
      if plan.Surrogate.fallback then
        Flow_obs.Metrics.incr Flow_obs.Metrics.global "surrogate_fallbacks";
      let evaluated =
        Pool.map
          (fun i ->
            let n = cand.(i) in
            if plan.Surrogate.simulate.(i) then (n, eval ~x:xs.(i) n)
            else
              match preds.(i) with
              | Surrogate.Exact p ->
                  ( n,
                    {
                      factor = n;
                      utilization = p.(0);
                      alm_util = p.(1);
                      dsp_util = p.(2);
                      overmapped = p.(3) <> 0.0;
                    } )
              | _ -> assert false)
          (List.init (Array.length cand) Fun.id)
      in
      (evaluated, Some (plan, cand))
    end
  in
  let rec walk best steps = function
    | [] -> (best, steps)
    | (n, s) :: rest ->
        let steps = s :: steps in
        if s.overmapped || n > max_factor then (best, steps)
        else walk (Some n) steps rest
  in
  let best, steps = walk None [] evaluated in
  (match (plan_info, best) with
  | Some (plan, cand), Some factor ->
      let won = ref false in
      Array.iteri
        (fun i n -> if n = factor && plan.Surrogate.in_topk.(i) then won := true)
        cand;
      if !won then
        Flow_obs.Metrics.incr Flow_obs.Metrics.global "surrogate_hit_topk"
  | _ -> ());
  (* recorded whenever the knob is on — including traced runs, where the
     sweep itself stays exhaustive — so explain output depends only on
     configuration, never on tracing or model warmth *)
  let decision ~chosen ~synthesizable =
    if not (Surrogate.enabled ()) then None
    else
      Some
        (Surrogate.decision ~design_name:design.name ~sweep:"unroll"
           ~device:design.device_id ~candidates:(List.length factors)
           ~chosen:
             (if synthesizable then Printf.sprintf "unroll factor %d" chosen
              else "unsynthesizable")
           ~evidence:[ ("synthesizable", Flow_obs.Attr.Bool synthesizable) ])
  in
  match best with
  | Some factor ->
      {
        design = Codegen.Oneapi_gen.set_unroll_factor design factor;
        chosen_factor = factor;
        synthesizable = true;
        steps = List.rev steps;
        decision = decision ~chosen:factor ~synthesizable:true;
      }
  | None ->
      (* the single-pipeline design already exceeds the 90% DSE headroom:
         it is still synthesizable if it physically fits the device
         (<= 100%), just with no unroll; beyond that it is not (the
         paper's Rush Larsen FPGA outcome).  The factor-1 candidate is
         always the sweep's first evaluation, and [fits] is by
         definition [utilization <= 1.0], so no extra model call is
         needed. *)
      let fits =
        match evaluated with
        | (1, s) :: _ -> s.utilization <= 1.0
        | _ ->
            Flow_obs.Metrics.incr Flow_obs.Metrics.global "dse_simulate_calls";
            (Devices.Fpga_model.resources fpga design features ~unroll:1).fits
      in
      let design = Codegen.Oneapi_gen.set_unroll_factor design 1 in
      {
        design = { design with Codegen.Design.synthesizable = fits };
        chosen_factor = 1;
        synthesizable = fits;
        steps = List.rev steps;
        decision = decision ~chosen:1 ~synthesizable:fits;
      }

(* Sweep memo: the knob choice, trajectory and provenance are cached;
   the design is always rebuilt from the *incoming* design with the
   same setter the sweep applies.  Designs reach this DSE with
   [synthesizable = true] (nothing earlier in the flow clears it), so
   re-asserting the cached flag reproduces both exit branches of
   [run_uncached] exactly. *)
type cached = {
  c_factor : int;
  c_synth : bool;
  c_steps : step list;
  c_decision : Flow_obs.Provenance.decision option;
}

let cache : cached Flow_memo.Cache.t = Sweep_memo.create ~name:"dse_unroll" ()

(** Run the DSE for [design] on its FPGA device (memoized per sweep
    key — see {!Sweep_memo}). *)
let run (design : Codegen.Design.t) (features : Analysis.Features.t) : result =
  let fresh = ref None in
  let e =
    Flow_memo.Cache.find_or_compute cache
      ~key:
        (Sweep_memo.key ~sweep:"unroll" ~design features
           ~candidates:(String.concat "," (List.map string_of_int factors)))
      (fun () ->
        let r = run_uncached design features in
        fresh := Some r;
        {
          c_factor = r.chosen_factor;
          c_synth = r.synthesizable;
          c_steps = r.steps;
          c_decision = r.decision;
        })
  in
  match !fresh with
  | Some r -> r
  | None ->
      let d = Codegen.Oneapi_gen.set_unroll_factor design e.c_factor in
      {
        design = { d with Codegen.Design.synthesizable = e.c_synth };
        chosen_factor = e.c_factor;
        synthesizable = e.c_synth;
        steps = e.c_steps;
        decision = e.c_decision;
      }
