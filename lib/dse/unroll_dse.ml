(** "Unroll Until Overmap" DSE — the meta-program of the paper's Fig. 2.

    Iteratively doubles the kernel's outer-loop unroll factor, asking the
    FPGA resource model (standing in for the HLS high-level design
    report) for estimated utilisation after each step, until the device
    overmaps (> 90 %).  The last fitting design is kept; if even unroll 1
    overmaps, the design is unsynthesizable for this device — exactly the
    paper's Rush Larsen outcome. *)

type step = {
  factor : int;
  utilization : float;
  alm_util : float;
  dsp_util : float;
  overmapped : bool;
}

type result = {
  design : Codegen.Design.t;  (** annotated with the chosen factor *)
  chosen_factor : int;
  synthesizable : bool;
  steps : step list;  (** DSE trajectory, in exploration order *)
}

let max_factor = 1 lsl 16

(** Run the DSE for [design] on its FPGA device. *)
let run (design : Codegen.Design.t) (features : Analysis.Features.t) : result =
  let fpga = Devices.Spec.find_fpga design.device_id in
  let eval n =
    Flow_obs.Trace.with_span ~cat:"dse" "dse.unroll_candidate"
      ~args:[ ("factor", Flow_obs.Attr.Int n) ]
    @@ fun () ->
    let m = Flow_obs.Metrics.global in
    Flow_obs.Metrics.incr m "dse_candidates";
    let r = Devices.Fpga_model.resources fpga design features ~unroll:n in
    if r.overmapped then Flow_obs.Metrics.incr m "dse_rejected";
    Flow_obs.Trace.add_args
      [
        ("utilization", Flow_obs.Attr.Float r.utilization);
        ("overmapped", Flow_obs.Attr.Bool r.overmapped);
      ];
    {
      factor = n;
      utilization = r.utilization;
      alm_util = r.alm_util;
      dsp_util = r.dsp_util;
      overmapped = r.overmapped;
    }
  in
  (* Speculative sweep: every candidate factor is evaluated up front by
     the domain pool (the model is pure, so extra evaluations beyond the
     stopping point are unobservable), then the sequential
     doubling-until-overmap walk is reconstructed over the results.
     [chosen_factor] and [steps] are therefore bit-identical to the
     incremental exploration. *)
  let factors =
    let rec go n acc =
      if n > max_factor then List.rev (n :: acc) else go (n * 2) (n :: acc)
    in
    go 1 []
  in
  let evaluated = Pool.map (fun n -> (n, eval n)) factors in
  let rec walk best steps = function
    | [] -> (best, steps)
    | (n, s) :: rest ->
        let steps = s :: steps in
        if s.overmapped || n > max_factor then (best, steps)
        else walk (Some n) steps rest
  in
  let best, steps = walk None [] evaluated in
  match best with
  | Some factor ->
      {
        design = Codegen.Oneapi_gen.set_unroll_factor design factor;
        chosen_factor = factor;
        synthesizable = true;
        steps = List.rev steps;
      }
  | None ->
      (* the single-pipeline design already exceeds the 90% DSE headroom:
         it is still synthesizable if it physically fits the device
         (<= 100%), just with no unroll; beyond that it is not (the
         paper's Rush Larsen FPGA outcome) *)
      let fits =
        (Devices.Fpga_model.resources fpga design features ~unroll:1).fits
      in
      let design = Codegen.Oneapi_gen.set_unroll_factor design 1 in
      {
        design = { design with Codegen.Design.synthesizable = fits };
        chosen_factor = 1;
        synthesizable = fits;
        steps = List.rev steps;
      }
