(** "OMP Num Threads DSE".

    Sweeps the OpenMP thread count from 1 to the core count and keeps the
    fastest.  For the paper's embarrassingly parallel benchmarks this
    selects the maximum available threads (32 on the EPYC 7543), yielding
    the 28-30x Fig. 5 CPU bars.

    When the surrogate is active ({!Flow_surrogate.Surrogate.active})
    the sweep is guided: every candidate is scored by the learned model
    first and the analytic CPU model runs only for the surrogate-ranked
    top-k plus every candidate without a certain (memo-exact)
    prediction.  Skipped candidates replay their memoized outcome
    bit-for-bit, so [steps], the winner and the tie-break are identical
    to the exhaustive sweep in every state of training. *)

module Surrogate = Flow_surrogate.Surrogate
module Featvec = Flow_surrogate.Featvec

type step = { threads : int; seconds : float; speedup : float }

type result = {
  design : Codegen.Design.t;  (** with the chosen thread count *)
  chosen_threads : int;
  steps : step list;
  decision : Flow_obs.Provenance.decision option;
      (** surrogate sweep provenance; [None] on exhaustive sweeps *)
}

(* Doubling ladder 1, 2, 4, ... capped at the device's core count. *)
let candidate_threads (cpu : Devices.Spec.cpu) =
  let rec doubling n acc =
    if n >= cpu.cores then List.rev (cpu.cores :: acc)
    else doubling (n * 2) (n :: acc)
  in
  doubling 1 []

let run_uncached (design : Codegen.Design.t) (features : Analysis.Features.t) :
    result =
  let cpu = Devices.Spec.find_cpu design.device_id in
  let candidates = candidate_threads cpu in
  let mname = "threads:" ^ design.device_id in
  let eval ?x t =
    Flow_obs.Trace.with_span ~cat:"dse" "dse.threads_candidate"
      ~args:[ ("threads", Flow_obs.Attr.Int t) ]
    @@ fun () ->
    let m = Flow_obs.Metrics.global in
    Flow_obs.Metrics.incr m "dse_candidates";
    Flow_obs.Metrics.incr m "dse_simulate_calls";
    let r = Devices.Cpu_model.time cpu features ~threads:t in
    Flow_obs.Trace.add_args [ ("seconds", Flow_obs.Attr.Float r.t_parallel) ];
    (match x with
    | Some x ->
        Surrogate.observe mname ~x
          ~y:(Surrogate.y_of_seconds r.t_parallel)
          ~payload:[| r.t_parallel; r.speedup |]
    | None -> ());
    { threads = t; seconds = r.t_parallel; speedup = r.speedup }
  in
  let guided = Surrogate.active () in
  let steps, plan_info =
    if not guided then
      (* candidate evaluations are independent: sweep them on the pool
         (order-preserving, so the first-best tie-break is unchanged) *)
      (Pool.map (fun t -> eval t) candidates, None)
    else begin
      let cand = Array.of_list candidates in
      let xs =
        Array.map
          (fun t ->
            Featvec.extract ~design ~unroll:design.unroll_factor
              ~blocksize:design.blocksize ~threads:t features)
          cand
      in
      let preds = Array.map (Surrogate.predict mname) xs in
      let scored =
        Array.map
          (fun p ->
            ( p,
              match p with
              | Surrogate.Exact payload -> Surrogate.y_of_seconds payload.(0)
              | Surrogate.Estimate v -> v
              | Surrogate.Cold -> infinity ))
          preds
      in
      let k = Surrogate.topk () in
      let plan = Surrogate.plan ~k scored in
      if plan.Surrogate.fallback then
        Flow_obs.Metrics.incr Flow_obs.Metrics.global "surrogate_fallbacks";
      let steps =
        Pool.map
          (fun i ->
            if plan.Surrogate.simulate.(i) then eval ~x:xs.(i) cand.(i)
            else
              match preds.(i) with
              | Surrogate.Exact p ->
                  { threads = cand.(i); seconds = p.(0); speedup = p.(1) }
              | _ -> assert false)
          (List.init (Array.length cand) Fun.id)
      in
      (steps, Some (plan, cand))
    end
  in
  let best =
    List.fold_left
      (fun acc s ->
        match acc with
        | Some b when b.seconds <= s.seconds -> Some b
        | _ -> Some s)
      None steps
  in
  let chosen = match best with Some s -> s.threads | None -> cpu.cores in
  (match (plan_info, best) with
  | Some (plan, cand), Some b ->
      let won = ref false in
      Array.iteri
        (fun i t ->
          if t = b.threads && plan.Surrogate.in_topk.(i) then won := true)
        cand;
      if !won then
        Flow_obs.Metrics.incr Flow_obs.Metrics.global "surrogate_hit_topk"
  | _ -> ());
  (* recorded whenever the knob is on — including traced runs, where the
     sweep itself stays exhaustive — so explain output depends only on
     configuration, never on tracing or model warmth *)
  let decision =
    if not (Surrogate.enabled ()) then None
    else
      Some
        (Surrogate.decision ~design_name:design.name ~sweep:"threads"
           ~device:design.device_id ~candidates:(List.length candidates)
           ~chosen:(Printf.sprintf "%d threads" chosen)
           ~evidence:
             (match best with
             | Some b -> [ ("seconds", Flow_obs.Attr.Float b.seconds) ]
             | None -> []))
  in
  {
    design = Codegen.Openmp_gen.set_num_threads design chosen;
    chosen_threads = chosen;
    steps;
    decision;
  }

(* Sweep memo: knob choice, trajectory and provenance cached; the
   design is rebuilt from the incoming design with the same setter the
   sweep applies (see {!Sweep_memo}). *)
type cached = {
  c_threads : int;
  c_steps : step list;
  c_decision : Flow_obs.Provenance.decision option;
}

let cache : cached Flow_memo.Cache.t = Sweep_memo.create ~name:"dse_threads" ()

(** Run the DSE for [design] on its CPU device (memoized per sweep
    key — see {!Sweep_memo}). *)
let run (design : Codegen.Design.t) (features : Analysis.Features.t) : result =
  let cpu = Devices.Spec.find_cpu design.device_id in
  let fresh = ref None in
  let e =
    Flow_memo.Cache.find_or_compute cache
      ~key:
        (Sweep_memo.key ~sweep:"threads" ~design features
           ~candidates:
             (String.concat ","
                (List.map string_of_int (candidate_threads cpu))))
      (fun () ->
        let r = run_uncached design features in
        fresh := Some r;
        {
          c_threads = r.chosen_threads;
          c_steps = r.steps;
          c_decision = r.decision;
        })
  in
  match !fresh with
  | Some r -> r
  | None ->
      {
        design = Codegen.Openmp_gen.set_num_threads design e.c_threads;
        chosen_threads = e.c_threads;
        steps = e.c_steps;
        decision = e.c_decision;
      }
