(** "OMP Num Threads DSE".

    Sweeps the OpenMP thread count from 1 to the core count and keeps the
    fastest.  For the paper's embarrassingly parallel benchmarks this
    selects the maximum available threads (32 on the EPYC 7543), yielding
    the 28-30x Fig. 5 CPU bars. *)

type step = { threads : int; seconds : float; speedup : float }

type result = {
  design : Codegen.Design.t;  (** with the chosen thread count *)
  chosen_threads : int;
  steps : step list;
}

(** Run the DSE for [design] on its CPU device. *)
let run (design : Codegen.Design.t) (features : Analysis.Features.t) : result =
  let cpu = Devices.Spec.find_cpu design.device_id in
  let candidates =
    let rec doubling n acc =
      if n >= cpu.cores then List.rev (cpu.cores :: acc)
      else doubling (n * 2) (n :: acc)
    in
    doubling 1 []
  in
  let steps =
    (* candidate evaluations are independent: sweep them on the pool
       (order-preserving, so the first-best tie-break is unchanged) *)
    Pool.map
      (fun t ->
        Flow_obs.Trace.with_span ~cat:"dse" "dse.threads_candidate"
          ~args:[ ("threads", Flow_obs.Attr.Int t) ]
        @@ fun () ->
        Flow_obs.Metrics.incr Flow_obs.Metrics.global "dse_candidates";
        let r = Devices.Cpu_model.time cpu features ~threads:t in
        Flow_obs.Trace.add_args [ ("seconds", Flow_obs.Attr.Float r.t_parallel) ];
        { threads = t; seconds = r.t_parallel; speedup = r.speedup })
      candidates
  in
  let best =
    List.fold_left
      (fun acc s ->
        match acc with
        | Some b when b.seconds <= s.seconds -> Some b
        | _ -> Some s)
      None steps
  in
  let chosen = match best with Some s -> s.threads | None -> cpu.cores in
  {
    design = Codegen.Openmp_gen.set_num_threads design chosen;
    chosen_threads = chosen;
    steps;
  }
