(** Cross-request artifact memoization.

    The daemon's only reuse unit used to be the whole-result store: a
    resubmission with a different budget, strategy or workload size
    recomputed parse, extraction, analysis and DSE from zero even
    though most stages do not depend on the field that changed.  This
    module provides the shared machinery for build-system-style stage
    memoization: a content-addressed, sharded, capacity-bounded cache
    with single-flight computation, so concurrent scheduler domains
    asking for the same artifact run the stage once and everyone else
    waits for the result instead of duplicating it.

    Each stage (parsed AST, extracted kernel, reduced kernel, analysis
    features, compiled program, fused profile run, DSE sweep outcome)
    creates one ['a Cache.t] instance holding its typed artifacts;
    stage keys are digests of everything the stage output depends on
    (see DESIGN.md §18 for the key scheme per stage).

    Semantics and invariants:

    - Entries are returned by reference: cached artifacts must be
      treated as read-only.  All memoized stages store immutable
      values (MiniC ASTs carry no mutable fields; [Eval.run] profiles
      are treated as read-only by every consumer).
    - Eviction is true LRU: every hit re-stamps the entry, using a
      lazy-deletion stamp queue so hits cost O(1) amortized.
    - Caches whose artifacts would swallow trace spans (everything
      except the fused-profile stage, whose span structure predates
      this module) bypass themselves while the global tracer is
      recording, so a [--trace] run's span tree is byte-identical to
      an unmemoized run.
    - [PSAFLOW_NO_MEMO=1] disables every cache except those created
      with [~no_memo_exempt:true] (the fused-profile stage, which
      predates the hierarchy and keeps its own [PSAFLOW_NO_CACHE]
      kill-switch), restoring pre-memoization behavior bit-for-bit.
    - [PSAFLOW_MEMO_CAP] (default 512) bounds each cache's entry
      count; [PSAFLOW_MEMO_SHARDS] (default 8) sets the lock-striping
      width.  Both follow the hardened {!Flow_obs.Env} grammar.

    Every cache mirrors its hit/miss/eviction/single-flight counters
    into {!Flow_obs.Metrics.global} as
    [<prefix>_hits]/[_misses]/[_evictions]/[_single_flight] (prefix
    [memo_<name>] by default), so the whole hierarchy is visible in
    [psaflow svc-metrics] and the bench reports. *)

let default_capacity = 512

let env_capacity () =
  Flow_obs.Env.int ~name:"PSAFLOW_MEMO_CAP" ~default:default_capacity ~min:1 ()

let env_shards () =
  Flow_obs.Env.int ~name:"PSAFLOW_MEMO_SHARDS" ~default:8 ~min:1 ()

(* Process-wide kill-switch: [PSAFLOW_NO_MEMO] at startup, overridable
   at runtime for tests and identity-comparison harnesses. *)
let globally_enabled =
  Atomic.make (not (Flow_obs.Env.flag ~name:"PSAFLOW_NO_MEMO" ()))

let set_globally_enabled b = Atomic.set globally_enabled b
let is_globally_enabled () = Atomic.get globally_enabled

module Cache = struct
  type stats = {
    hits : int;
    misses : int;
    evictions : int;
    single_flight : int;
  }

  type 'a entry = { value : 'a; mutable stamp : int }

  type 'a shard = {
    lock : Mutex.t;
    cond : Condition.t;
    table : (string, 'a entry) Hashtbl.t;
    inflight : (string, unit) Hashtbl.t;
    (* Lazy-deletion LRU: every insert and hit pushes (key, stamp);
       only the newest stamp of a key matches its entry, older stamps
       are skipped during eviction and squeezed out by compaction. *)
    stamps : (string * int) Queue.t;
    mutable clock : int;
    mutable hits : int;
    mutable misses : int;
    mutable evictions : int;
    mutable single_flight : int;
  }

  type 'a t = {
    name : string;
    metric_prefix : string;
    trace_bypass : bool;
    no_memo_exempt : bool;
    mutable capacity : int; (* total across shards *)
    mutable enabled : bool;
    shards : 'a shard array;
  }

  let make_shard () =
    {
      lock = Mutex.create ();
      cond = Condition.create ();
      table = Hashtbl.create 32;
      inflight = Hashtbl.create 4;
      stamps = Queue.create ();
      clock = 0;
      hits = 0;
      misses = 0;
      evictions = 0;
      single_flight = 0;
    }

  (** [create ~name ()] makes a stage cache.  [cap] defaults to
      [PSAFLOW_MEMO_CAP]; [shards] to [PSAFLOW_MEMO_SHARDS].
      [trace_bypass] (default true) computes fresh while the global
      tracer records so memo hits cannot swallow spans;
      [no_memo_exempt] (default false) opts the cache out of
      [PSAFLOW_NO_MEMO] (only the pre-existing fused-profile stage
      does this — it keeps its own kill-switch). *)
  let create ~name ?cap ?shards ?(trace_bypass = true)
      ?(no_memo_exempt = false) ?metric_prefix () : 'a t =
    let cap = match cap with Some c -> max 1 c | None -> env_capacity () in
    let n = match shards with Some s -> max 1 s | None -> env_shards () in
    {
      name;
      metric_prefix =
        (match metric_prefix with Some p -> p | None -> "memo_" ^ name);
      trace_bypass;
      no_memo_exempt;
      capacity = cap;
      enabled = true;
      shards = Array.init n (fun _ -> make_shard ());
    }

  let set_enabled t b = t.enabled <- b

  let set_capacity t c =
    if c < 1 then invalid_arg "Flow_memo.Cache.set_capacity: capacity >= 1";
    t.capacity <- c

  (** Whether a lookup right now would consult the table at all. *)
  let active t =
    t.enabled
    && (t.no_memo_exempt || Atomic.get globally_enabled)
    && not (t.trace_bypass && Flow_obs.Trace.is_enabled ())

  let gincr name = Flow_obs.Metrics.incr Flow_obs.Metrics.global name

  let shard_of t key =
    let n = Array.length t.shards in
    if n = 1 then t.shards.(0) else t.shards.(Hashtbl.hash key mod n)

  let per_shard_cap t =
    let n = Array.length t.shards in
    max 1 ((t.capacity + n - 1) / n)

  (* All [_locked] helpers run with the shard lock held. *)

  let touch_locked sh key (e : 'a entry) =
    sh.clock <- sh.clock + 1;
    e.stamp <- sh.clock;
    Queue.push (key, sh.clock) sh.stamps

  let compact_locked sh =
    if Queue.length sh.stamps > (8 * Hashtbl.length sh.table) + 64 then begin
      let live =
        Queue.fold
          (fun acc (k, s) ->
            match Hashtbl.find_opt sh.table k with
            | Some e when e.stamp = s -> (k, s) :: acc
            | _ -> acc)
          [] sh.stamps
      in
      Queue.clear sh.stamps;
      List.iter (fun ks -> Queue.push ks sh.stamps) (List.rev live)
    end

  let evict_excess_locked t sh =
    let cap = per_shard_cap t in
    let evicted = ref 0 in
    while Hashtbl.length sh.table > cap && not (Queue.is_empty sh.stamps) do
      let k, s = Queue.pop sh.stamps in
      match Hashtbl.find_opt sh.table k with
      | Some e when e.stamp = s ->
          Hashtbl.remove sh.table k;
          sh.evictions <- sh.evictions + 1;
          incr evicted
      | _ -> () (* stale stamp: the key was re-touched or removed *)
    done;
    !evicted

  (** [find_or_compute t ~key f] returns the cached artifact for [key]
      or computes it with [f] exactly once process-wide: a concurrent
      request for an in-flight key blocks until the computing domain
      publishes (single-flight).  [f] runs outside the shard lock.  An
      exception from [f] is re-raised to the computing caller and
      unblocks the waiters, which retry (nothing is cached, so error
      paths behave exactly as without memoization).  [on] (if given)
      observes the outcome: [true] for a hit — including a
      single-flight wait — [false] for a computing miss; it is not
      called when the cache is bypassed. *)
  let find_or_compute (t : 'a t) ?on ~key (f : unit -> 'a) : 'a =
    if not (active t) then f ()
    else begin
      let sh = shard_of t key in
      let report b = match on with Some g -> g b | None -> () in
      let rec acquire ~waited =
        match Hashtbl.find_opt sh.table key with
        | Some e ->
            touch_locked sh key e;
            sh.hits <- sh.hits + 1;
            `Hit e.value
        | None ->
            if Hashtbl.mem sh.inflight key then begin
              if not waited then sh.single_flight <- sh.single_flight + 1;
              Condition.wait sh.cond sh.lock;
              acquire ~waited:true
            end
            else begin
              Hashtbl.replace sh.inflight key ();
              sh.misses <- sh.misses + 1;
              `Compute
            end
      in
      Mutex.lock sh.lock;
      let outcome = acquire ~waited:false in
      Mutex.unlock sh.lock;
      match outcome with
      | `Hit v ->
          gincr (t.metric_prefix ^ "_hits");
          report true;
          v
      | `Compute -> (
          gincr (t.metric_prefix ^ "_misses");
          report false;
          match f () with
          | v ->
              Mutex.lock sh.lock;
              Hashtbl.remove sh.inflight key;
              if not (Hashtbl.mem sh.table key) then begin
                sh.clock <- sh.clock + 1;
                Hashtbl.replace sh.table key { value = v; stamp = sh.clock };
                Queue.push (key, sh.clock) sh.stamps;
                compact_locked sh
              end;
              let evicted = evict_excess_locked t sh in
              Condition.broadcast sh.cond;
              Mutex.unlock sh.lock;
              for _ = 1 to evicted do
                gincr (t.metric_prefix ^ "_evictions")
              done;
              v
          | exception e ->
              let bt = Printexc.get_raw_backtrace () in
              Mutex.lock sh.lock;
              Hashtbl.remove sh.inflight key;
              Condition.broadcast sh.cond;
              Mutex.unlock sh.lock;
              Printexc.raise_with_backtrace e bt)
    end

  (** Whether [key] is resident (tests; does not touch LRU order). *)
  let mem t key =
    let sh = shard_of t key in
    Mutex.lock sh.lock;
    let r = Hashtbl.mem sh.table key in
    Mutex.unlock sh.lock;
    r

  let length t =
    Array.fold_left
      (fun acc sh ->
        Mutex.lock sh.lock;
        let n = Hashtbl.length sh.table in
        Mutex.unlock sh.lock;
        acc + n)
      0 t.shards

  (** Drop all entries (keeps counters; in-flight computations finish
      and publish into the emptied table). *)
  let clear t =
    Array.iter
      (fun sh ->
        Mutex.lock sh.lock;
        Hashtbl.reset sh.table;
        Queue.clear sh.stamps;
        Mutex.unlock sh.lock)
      t.shards

  let stats t : stats =
    Array.fold_left
      (fun (acc : stats) sh ->
        Mutex.lock sh.lock;
        let r =
          {
            hits = acc.hits + sh.hits;
            misses = acc.misses + sh.misses;
            evictions = acc.evictions + sh.evictions;
            single_flight = acc.single_flight + sh.single_flight;
          }
        in
        Mutex.unlock sh.lock;
        r)
      { hits = 0; misses = 0; evictions = 0; single_flight = 0 }
      t.shards

  let reset_stats t =
    Array.iter
      (fun sh ->
        Mutex.lock sh.lock;
        sh.hits <- 0;
        sh.misses <- 0;
        sh.evictions <- 0;
        sh.single_flight <- 0;
        Mutex.unlock sh.lock)
      t.shards
end
