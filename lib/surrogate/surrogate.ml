(** Learned surrogate cost model for the device DSEs.

    Each DSE sweep (thread count, GPU blocksize, FPGA unroll factor)
    asks this module to *predict* every candidate's quality before
    paying for the analytic device model, then simulates only the
    candidates that need it: the surrogate-ranked top-k (a continuous
    validation of the ranking) plus every candidate whose prediction is
    uncertain.  Models are trained online, inside the flow, from the
    real outcomes the sweeps and [Devices.Simulate] produce — there is
    no offline fitting step and no persisted state.

    Two predictors run side by side over {!Featvec} vectors:

    - an exact memo: outcomes keyed by the raw vector's bit pattern
      ({!Featvec.key}).  Because the vector is a superset of every
      device-model input, a hit replays a value bit-identical to
      re-running the model — the only kind of prediction the engine
      ever substitutes for a real evaluation;
    - a smooth estimator — the mean of a ridge regression (normal
      equations over log-scaled features, solved lazily) and a
      distance-weighted k-NN over recent samples (standardized by
      running per-dimension moments) — used solely to *rank* candidates
      for the top-k choice.

    Uncertainty rule: a prediction is certain iff it is a memo hit
    (nearest-neighbour distance zero).  Interpolated estimates carry
    residual risk, and the engine's correctness bar — guided DSE must
    select the same winner as the exhaustive sweep, and recorded
    artifacts must be byte-identical across surrogate warmth — prices
    any nonzero risk as "uncertain", so estimates steer which
    candidates get fresh evaluations but are never recorded anywhere.

    Activity: off under [PSAFLOW_NO_SURROGATE] (exhaustive sweeps,
    bit-for-bit today's behaviour, not even training), and off while
    global tracing is enabled so traced runs keep their full
    per-candidate span streams. *)

type prediction =
  | Exact of float array
      (** memoized outcome payload of a bit-identical earlier
          evaluation; safe to substitute for the analytic model *)
  | Estimate of float
      (** interpolated objective (ranking only; always uncertain) *)
  | Cold  (** no trained model for this sweep yet *)

(* ------------------------------------------------------------------ *)
(* Env knobs                                                           *)
(* ------------------------------------------------------------------ *)

module Env = Flow_obs.Env

let enabled_override : bool option ref = ref None
let topk_override : int option ref = ref None

(** Benchmark/test override of the [PSAFLOW_NO_SURROGATE] knob
    ([Some true] forces the surrogate on, [Some false] off, [None]
    defers to the environment). *)
let set_enabled o = enabled_override := o

(** Benchmark/test override of [PSAFLOW_SURROGATE_TOPK]. *)
let set_topk o = topk_override := o

let enabled () =
  match !enabled_override with
  | Some b -> b
  | None -> not (Env.flag ~name:"PSAFLOW_NO_SURROGATE" ())

(** Whether guided DSE is in effect: enabled and not globally tracing
    (traced runs stay exhaustive so their span streams are complete and
    warmth-independent). *)
let active () = enabled () && not (Flow_obs.Trace.is_enabled ())

(** How many top-ranked candidates receive a fresh analytic evaluation
    even when their prediction is certain. *)
let topk () =
  match !topk_override with
  | Some k -> max 1 k
  | None -> Env.int ~name:"PSAFLOW_SURROGATE_TOPK" ~default:1 ~min:1 ()

(* ------------------------------------------------------------------ *)
(* Model store                                                         *)
(* ------------------------------------------------------------------ *)

let d_aug = Featvec.dim + 1 (* ridge design dimension incl. bias *)
let lambda = 1.0 (* ridge regularizer: A = lambda*I + sum z z^T *)
let knn_k = 5
let sample_cap = 512 (* k-NN working set: most recent samples kept *)

type model = {
  memo : (string, float array) Hashtbl.t;
  mutable n : int;  (** distinct observations *)
  mean : float array;  (** running per-dim mean of log-scaled vectors *)
  m2 : float array;  (** running per-dim sum of squared deviations *)
  mutable samples : (float array * float) list;
      (** most-recent-first (log-scaled x, y), capped at [sample_cap] *)
  xtx : float array array;  (** normal-equation accumulator, bias-augmented *)
  xty : float array;
  mutable weights : float array option;  (** lazily solved; None = stale *)
}

let lock = Mutex.create ()
let models : (string, model) Hashtbl.t = Hashtbl.create 8

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let new_model () =
  {
    memo = Hashtbl.create 64;
    n = 0;
    mean = Array.make Featvec.dim 0.0;
    m2 = Array.make Featvec.dim 0.0;
    samples = [];
    xtx = Array.make_matrix d_aug d_aug 0.0;
    xty = Array.make d_aug 0.0;
    weights = None;
  }

(** Drop every trained model and memo (benchmarks isolate measurement
    phases with this; overrides are untouched). *)
let reset () = with_lock (fun () -> Hashtbl.reset models)

(* log-scale a raw vector: compresses the 1..1e9 dynamic range of
   trip counts and byte footprints so no single dimension dominates
   distances or the ridge fit *)
let scale (x : float array) =
  Array.map (fun v -> Float.log1p (Float.max 0.0 (Featvec.finite v))) x

(* standardized squared distance under the model's current moments *)
let dist2 (m : model) (a : float array) (b : float array) =
  let acc = ref 0.0 in
  for j = 0 to Featvec.dim - 1 do
    let sd =
      if m.n > 1 then sqrt (m.m2.(j) /. float_of_int (m.n - 1)) else 0.0
    in
    let s = Float.max sd 1e-6 in
    let d = (a.(j) -. b.(j)) /. s in
    acc := !acc +. (d *. d)
  done;
  !acc

(* distance-weighted k-NN over the sample window *)
let knn_estimate (m : model) (u : float array) =
  let best = Array.make knn_k (infinity, 0.0) in
  List.iter
    (fun (su, y) ->
      let d2 = dist2 m u su in
      (* insertion into the fixed-size worst-out array *)
      let rec place i (d2, y) =
        if i < knn_k then
          if d2 < fst best.(i) then begin
            let evicted = best.(i) in
            best.(i) <- (d2, y);
            place (i + 1) evicted
          end
          else place (i + 1) (d2, y)
      in
      place 0 (d2, y))
    m.samples;
  let wsum = ref 0.0 and vsum = ref 0.0 in
  Array.iter
    (fun (d2, y) ->
      if d2 < infinity then begin
        let w = 1.0 /. (d2 +. 1e-9) in
        wsum := !wsum +. w;
        vsum := !vsum +. (w *. y)
      end)
    best;
  if !wsum > 0.0 then Some (!vsum /. !wsum) else None

(* solve (lambda*I + X^T X) w = X^T y by Gaussian elimination with
   partial pivoting; d_aug is small (57) so O(d^3) is microseconds *)
let solve_ridge (m : model) =
  match m.weights with
  | Some w -> Some w
  | None ->
      let n = d_aug in
      let a = Array.init n (fun i -> Array.copy m.xtx.(i)) in
      for i = 0 to n - 1 do
        a.(i).(i) <- a.(i).(i) +. lambda
      done;
      let v = Array.copy m.xty in
      (try
         for col = 0 to n - 1 do
           let piv = ref col in
           for r = col + 1 to n - 1 do
             if Float.abs a.(r).(col) > Float.abs a.(!piv).(col) then piv := r
           done;
           if Float.abs a.(!piv).(col) < 1e-12 then raise Exit;
           if !piv <> col then begin
             let t = a.(col) in
             a.(col) <- a.(!piv);
             a.(!piv) <- t;
             let t = v.(col) in
             v.(col) <- v.(!piv);
             v.(!piv) <- t
           end;
           for r = col + 1 to n - 1 do
             let f = a.(r).(col) /. a.(col).(col) in
             if f <> 0.0 then begin
               for c = col to n - 1 do
                 a.(r).(c) <- a.(r).(c) -. (f *. a.(col).(c))
               done;
               v.(r) <- v.(r) -. (f *. v.(col))
             end
           done
         done;
         let w = Array.make n 0.0 in
         for i = n - 1 downto 0 do
           let s = ref v.(i) in
           for c = i + 1 to n - 1 do
             s := !s -. (a.(i).(c) *. w.(c))
           done;
           w.(i) <- !s /. a.(i).(i)
         done;
         m.weights <- Some w;
         Some w
       with Exit -> None)

let ridge_estimate (m : model) (u : float array) =
  match solve_ridge m with
  | None -> None
  | Some w ->
      let acc = ref w.(0) in
      for j = 0 to Featvec.dim - 1 do
        acc := !acc +. (w.(j + 1) *. u.(j))
      done;
      if Float.is_nan !acc then None else Some !acc

(* ------------------------------------------------------------------ *)
(* Predict / observe                                                   *)
(* ------------------------------------------------------------------ *)

(** Predict the outcome of evaluating feature vector [x] under model
    [name] (one model per (sweep kind, device), e.g.
    ["blocksize:rtx2080ti"]). *)
let predict name (x : float array) : prediction =
  Flow_obs.Metrics.incr Flow_obs.Metrics.global "surrogate_predictions";
  with_lock (fun () ->
      match Hashtbl.find_opt models name with
      | None -> Cold
      | Some m -> (
          match Hashtbl.find_opt m.memo (Featvec.key x) with
          | Some payload -> Exact payload
          | None when m.n = 0 -> Cold
          | None -> (
              let u = scale x in
              let knn = knn_estimate m u in
              let ridge = ridge_estimate m u in
              match (knn, ridge) with
              | Some a, Some b -> Estimate (0.5 *. (a +. b))
              | Some v, None | None, Some v -> Estimate v
              | None, None -> Cold)))

(** Record a real evaluation: [payload] is the full outcome (replayed
    verbatim on a future memo hit), [y] the scalar training target the
    estimators fit (e.g. log seconds, utilization).  Re-observing a
    known key refreshes the memo without double-counting the sample. *)
let observe name ~(x : float array) ~(y : float) ~(payload : float array) =
  with_lock (fun () ->
      let m =
        match Hashtbl.find_opt models name with
        | Some m -> m
        | None ->
            let m = new_model () in
            Hashtbl.replace models name m;
            m
      in
      let k = Featvec.key x in
      if Hashtbl.mem m.memo k then Hashtbl.replace m.memo k payload
      else begin
        Hashtbl.replace m.memo k payload;
        if not (Float.is_nan y) then begin
          let u = scale x in
          m.n <- m.n + 1;
          let nf = float_of_int m.n in
          for j = 0 to Featvec.dim - 1 do
            let delta = u.(j) -. m.mean.(j) in
            m.mean.(j) <- m.mean.(j) +. (delta /. nf);
            m.m2.(j) <- m.m2.(j) +. (delta *. (u.(j) -. m.mean.(j)))
          done;
          m.samples <- (u, y) :: m.samples;
          if m.n mod (2 * sample_cap) = 0 then
            m.samples <- List.filteri (fun i _ -> i < sample_cap) m.samples;
          (* bias-augmented normal-equation accumulators *)
          let z j = if j = 0 then 1.0 else u.(j - 1) in
          for r = 0 to d_aug - 1 do
            let zr = z r in
            if zr <> 0.0 then begin
              let row = m.xtx.(r) in
              for c = 0 to d_aug - 1 do
                row.(c) <- row.(c) +. (zr *. z c)
              done;
              m.xty.(r) <- m.xty.(r) +. (zr *. y)
            end
          done;
          m.weights <- None
        end
      end)

(** Monotone, finite training/ranking target for a seconds-valued
    objective: log-compressed, with infeasible candidates (infinite
    modelled time) clamped to a worst-case sentinel so they rank last
    without poisoning the accumulators. *)
let y_of_seconds s = log (Float.min (Float.max s 1e-12) 1e12)

(* ------------------------------------------------------------------ *)
(* Sweep planning                                                      *)
(* ------------------------------------------------------------------ *)

type plan = {
  simulate : bool array;
      (** candidate must receive a fresh analytic evaluation *)
  in_topk : bool array;  (** candidate is in the surrogate's top-k *)
  fallback : bool;
      (** no certain prediction anywhere: the sweep degenerates to the
          exhaustive evaluation (and trains the model for next time) *)
}

(** Decide which candidates to simulate.  [scored] pairs each
    candidate's prediction with its ranking score (lower is better;
    ties break toward the earlier candidate, matching the sweeps'
    first-best tie-break).  Simulated = the top-[k] ranked candidates
    plus every candidate whose prediction is not a memo hit. *)
let plan ~k (scored : (prediction * float) array) : plan =
  let n = Array.length scored in
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      let sa = snd scored.(a) and sb = snd scored.(b) in
      if sa < sb then -1 else if sa > sb then 1 else compare a b)
    order;
  let in_topk = Array.make n false in
  for r = 0 to min k n - 1 do
    in_topk.(order.(r)) <- true
  done;
  let simulate =
    Array.mapi
      (fun i (p, _) ->
        in_topk.(i) || match p with Exact _ -> false | _ -> true)
      scored
  in
  let fallback =
    not (Array.exists (fun (p, _) -> match p with Exact _ -> true | _ -> false)
           scored)
  in
  { simulate; in_topk; fallback }

(* ------------------------------------------------------------------ *)
(* Provenance                                                          *)
(* ------------------------------------------------------------------ *)

(** The sweep's provenance record ([psaflow explain] branch "D.<design>").
    Every field is warmth-invariant — the same whether the sweep ran
    exhaustively (cold fallback) or replayed memoized candidates — so
    recorded flow artifacts stay byte-identical across surrogate
    state. *)
let decision ~design_name ~sweep ~device ~candidates ~chosen ~evidence :
    Flow_obs.Provenance.decision =
  {
    Flow_obs.Provenance.branch = "D." ^ design_name;
    strategy = "surrogate";
    selected = [ chosen ];
    reason = None;
    evidence =
      [
        ( "policy",
          Flow_obs.Attr.String
            "surrogate-ranked; analytic model for top-k + uncertain" );
        ("sweep", Flow_obs.Attr.String sweep);
        ("device", Flow_obs.Attr.String device);
        ("candidates", Flow_obs.Attr.Int candidates);
        ("topk", Flow_obs.Attr.Int (topk ()));
      ]
      @ evidence;
  }
